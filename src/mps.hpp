// Umbrella header for the MPS library — Modular Partitioning for
// Asynchronous Circuit Synthesis (Puri & Gu, DAC 1994), reproduced.
//
// Layering (each depends only on those above it):
//   util   -> petri -> stg -> sg -> {sat, logic} -> encoding -> core
//   baseline (uses encoding/core), bdd (standalone), benchmarks (stg),
//   verify (everything).
#pragma once

#include "baseline/lavagno.hpp"
#include "baseline/vanbekbergen.hpp"
#include "bdd/bdd.hpp"
#include "bdd/csc_bdd.hpp"
#include "benchmarks/benchmarks.hpp"
#include "benchmarks/generators.hpp"
#include "core/input_set.hpp"
#include "core/module_graph.hpp"
#include "core/partition_sat.hpp"
#include "core/synthesis.hpp"
#include "encoding/csc_sat.hpp"
#include "logic/cover.hpp"
#include "logic/cube.hpp"
#include "logic/extract.hpp"
#include "logic/minimize.hpp"
#include "logic/pla.hpp"
#include "netlist/build.hpp"
#include "netlist/netlist.hpp"
#include "netlist/verilog.hpp"
#include "netlist/verify_si.hpp"
#include "petri/analysis.hpp"
#include "petri/net.hpp"
#include "sat/cnf.hpp"
#include "sat/dimacs.hpp"
#include "sat/local_search.hpp"
#include "sat/solver.hpp"
#include "sg/assignments.hpp"
#include "sg/csc.hpp"
#include "sg/expand.hpp"
#include "sg/projection.hpp"
#include "sg/state_graph.hpp"
#include "stg/builder.hpp"
#include "stg/parser.hpp"
#include "stg/stg.hpp"
#include "stg/writer.hpp"
#include "util/bitvec.hpp"
#include "util/common.hpp"
#include "util/text.hpp"
#include "util/thread_pool.hpp"
#include "verify/verify.hpp"

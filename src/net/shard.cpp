#include "net/shard.hpp"

#include "util/common.hpp"

namespace mps::net {

std::size_t shard_of(std::string_view digest_hex, std::size_t num_shards) {
  MPS_ASSERT(num_shards > 0);
  MPS_ASSERT(digest_hex.size() >= 8);
  std::uint32_t prefix = 0;
  for (int i = 0; i < 8; ++i) {
    const char c = digest_hex[static_cast<std::size_t>(i)];
    std::uint32_t nibble;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<std::uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      nibble = static_cast<std::uint32_t>(c - 'A' + 10);
    } else {
      MPS_ASSERT(false && "shard_of: non-hex digest");
      nibble = 0;
    }
    prefix = (prefix << 4) | nibble;
  }
  return prefix % num_shards;
}

WorkerTable::WorkerTable(std::vector<Endpoint> workers, const WorkerBackoff& backoff)
    : backoff_(backoff) {
  MPS_ASSERT(!workers.empty());
  MPS_ASSERT(workers.size() <= 64);  // tried_mask is a uint64 bitset
  for (auto& ep : workers) workers_.emplace_back(std::move(ep));
}

std::int64_t WorkerTable::now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::size_t WorkerTable::owner(std::string_view digest_hex) const {
  return shard_of(digest_hex, workers_.size());
}

bool WorkerTable::available(std::size_t i) const {
  return workers_[i].retry_at_ns.load(std::memory_order_relaxed) <= now_ns();
}

std::size_t WorkerTable::pick(std::string_view digest_hex, std::uint64_t tried_mask,
                              bool* was_owner) const {
  const std::size_t own = owner(digest_hex);
  const auto untried = [&](std::size_t i) { return (tried_mask & (1ull << i)) == 0; };
  if (untried(own) && available(own)) {
    *was_owner = true;
    return own;
  }
  *was_owner = false;
  // Least-loaded available worker, then (all backing off) least-loaded of
  // the untried — a request only fails over to size() with no worker left.
  std::size_t best = workers_.size();
  for (int pass = 0; pass < 2 && best == workers_.size(); ++pass) {
    std::int64_t best_load = 0;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      if (!untried(i)) continue;
      if (pass == 0 && !available(i)) continue;
      const std::int64_t load = workers_[i].inflight.load(std::memory_order_relaxed);
      if (best == workers_.size() || load < best_load ||
          (load == best_load && i < best)) {
        best = i;
        best_load = load;
      }
    }
  }
  if (best == own) *was_owner = true;  // owner was tried-last but untried
  return best;
}

void WorkerTable::begin_request(std::size_t i) {
  workers_[i].inflight.fetch_add(1, std::memory_order_relaxed);
  workers_[i].routed.fetch_add(1, std::memory_order_relaxed);
}

void WorkerTable::end_request(std::size_t i) {
  workers_[i].inflight.fetch_sub(1, std::memory_order_relaxed);
}

void WorkerTable::report_success(std::size_t i) {
  workers_[i].failure_streak.store(0, std::memory_order_relaxed);
  workers_[i].retry_at_ns.store(0, std::memory_order_relaxed);
}

void WorkerTable::report_failure(std::size_t i) {
  Worker& w = workers_[i];
  w.failures.fetch_add(1, std::memory_order_relaxed);
  const std::int64_t streak = w.failure_streak.fetch_add(1, std::memory_order_relaxed) + 1;
  double delay = backoff_.base_s;
  for (std::int64_t k = 1; k < streak && delay < backoff_.max_s; ++k) delay *= 2.0;
  if (delay > backoff_.max_s) delay = backoff_.max_s;
  w.retry_at_ns.store(now_ns() + static_cast<std::int64_t>(delay * 1e9),
                      std::memory_order_relaxed);
}

}  // namespace mps::net

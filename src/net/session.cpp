#include "net/session.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include "util/common.hpp"

namespace mps::net {

const char* session_state_name(SessionState s) {
  switch (s) {
    case SessionState::Connecting: return "connecting";
    case SessionState::Handshake: return "handshake";
    case SessionState::Streaming: return "streaming";
    case SessionState::Draining: return "draining";
    case SessionState::Closed: return "closed";
  }
  return "?";
}

Session::Session(int fd, const SessionLimits& limits) : fd_(fd), limits_(limits) {
  MPS_ASSERT(fd >= 0);
}

Session::~Session() { close(); }

void Session::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  state_ = SessionState::Closed;
}

void Session::shutdown_transport() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Session::advance(SessionState next) {
  // Forward-only: the enum order is the machine's order.
  if (static_cast<int>(next) > static_cast<int>(state_)) state_ = next;
}

bool Session::has_buffered_line() const {
  return buffer_.find('\n') != std::string::npos;
}

Session::Read Session::read_line(std::string* line, const Deadline& idle) {
  MPS_ASSERT(line != nullptr);
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    // The cap applies to the frame whether it is complete or still
    // buffering — a huge line that arrived in one chunk is just as rogue.
    const std::size_t frame_bytes = nl == std::string::npos ? buffer_.size() : nl;
    if (frame_bytes > limits_.max_line_bytes) {
      buffer_.clear();
      frame_in_progress_ = false;
      return Read::Oversized;
    }
    if (nl != std::string::npos) {
      line->assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      frame_in_progress_ = !buffer_.empty();
      if (frame_in_progress_) frame_deadline_ = Deadline::after(limits_.frame_timeout_s);
      return Read::Line;
    }

    // No complete frame buffered: wait for bytes.  A frame already under way
    // runs against its frame deadline; otherwise only the caller's idle
    // budget applies.
    Deadline wait = idle;
    if (frame_in_progress_) wait = wait.min(frame_deadline_);
    switch (read_chunk(fd_, &buffer_, wait)) {
      case IoStatus::Ok:
        if (!frame_in_progress_ && !buffer_.empty()) {
          frame_in_progress_ = true;
          frame_deadline_ = Deadline::after(limits_.frame_timeout_s);
        }
        break;  // loop: maybe a full frame now
      case IoStatus::Eof:
        return Read::Eof;
      case IoStatus::Timeout:
        if (frame_in_progress_ && frame_deadline_.expired()) return Read::FrameTimeout;
        return Read::Idle;
      case IoStatus::Error:
        return Read::Error;
    }
  }
}

IoStatus Session::write_line(std::string_view line) {
  std::string framed;
  framed.reserve(line.size() + 1);
  framed.append(line);
  framed.push_back('\n');
  return write_all(fd_, framed, Deadline::after(limits_.write_timeout_s));
}

}  // namespace mps::net

#include "net/endpoint.hpp"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/common.hpp"
#include "util/parse.hpp"
#include "util/text.hpp"

namespace mps::net {

namespace {

constexpr std::size_t kMaxUnixPath = sizeof(sockaddr_un::sun_path) - 1;

sockaddr_un unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  MPS_ASSERT(path.size() <= kMaxUnixPath);  // parse() enforced the limit
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// getaddrinfo for a TCP endpoint; caller freeaddrinfo()s the result.
addrinfo* resolve_tcp(const Endpoint& ep, bool for_listen) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_protocol = IPPROTO_TCP;
  if (for_listen) hints.ai_flags = AI_PASSIVE;
  const std::string port = std::to_string(ep.port);
  addrinfo* result = nullptr;
  const int rc = ::getaddrinfo(ep.host.empty() ? nullptr : ep.host.c_str(), port.c_str(),
                               &hints, &result);
  if (rc != 0) {
    throw util::Error(
        util::format("net: resolve %s: %s", ep.str().c_str(), ::gai_strerror(rc)));
  }
  return result;
}

void set_blocking(int fd, bool blocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return;
  const int want = blocking ? (flags & ~O_NONBLOCK) : (flags | O_NONBLOCK);
  if (want != flags) ::fcntl(fd, F_SETFL, want);
}

}  // namespace

Endpoint Endpoint::unix_path(std::string p) {
  Endpoint ep;
  ep.kind = Kind::Unix;
  ep.path = std::move(p);
  return ep;
}

Endpoint Endpoint::tcp(std::string host, std::uint16_t port) {
  Endpoint ep;
  ep.kind = Kind::Tcp;
  ep.host = std::move(host);
  ep.port = port;
  return ep;
}

Endpoint Endpoint::parse(const std::string& text) {
  if (text.empty()) throw util::Error("net: empty endpoint");

  std::string body = text;
  bool force_unix = false, force_tcp = false;
  if (body.rfind("unix:", 0) == 0) {
    force_unix = true;
    body = body.substr(5);
  } else if (body.rfind("tcp:", 0) == 0) {
    force_tcp = true;
    body = body.substr(4);
  }

  const std::size_t colon = body.rfind(':');
  const bool looks_tcp = colon != std::string::npos && body.find('/') == std::string::npos;
  if (!force_unix && (force_tcp || looks_tcp)) {
    if (colon == std::string::npos) {
      throw util::Error(util::format("net: TCP endpoint needs host:port: '%s'", text.c_str()));
    }
    const std::string host = body.substr(0, colon);
    const auto port = util::parse_int(body.substr(colon + 1), 0, 65535);
    if (!port.has_value()) {
      throw util::Error(util::format("net: bad port in endpoint '%s'", text.c_str()));
    }
    if (host.empty()) {
      throw util::Error(util::format("net: empty host in endpoint '%s'", text.c_str()));
    }
    return tcp(host, static_cast<std::uint16_t>(*port));
  }

  if (body.empty()) throw util::Error("net: empty unix socket path");
  if (body.size() > kMaxUnixPath) {
    throw util::Error(util::format("net: socket path too long (%zu bytes, max %zu): %s",
                                   body.size(), kMaxUnixPath, body.c_str()));
  }
  return unix_path(body);
}

std::string Endpoint::str() const {
  if (kind == Kind::Unix) return path;
  return host + ":" + std::to_string(port);
}

int listen_on(const Endpoint& ep, int backlog) {
  if (backlog <= 0) throw util::Error("net: backlog must be positive");

  if (ep.kind == Endpoint::Kind::Unix) {
    if (ep.path.empty()) throw util::Error("net: empty socket path");
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw util::Error(util::format("net: socket: %s", std::strerror(errno)));
    // A stale socket file from a crashed daemon would make bind fail; replace it.
    ::unlink(ep.path.c_str());
    const sockaddr_un addr = unix_addr(ep.path);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, backlog) != 0) {
      const int err = errno;
      ::close(fd);
      throw util::Error(util::format("net: listen(%s): %s", ep.path.c_str(),
                                     std::strerror(err)));
    }
    return fd;
  }

  addrinfo* addrs = resolve_tcp(ep, /*for_listen=*/true);
  int fd = -1;
  int last_err = 0;
  for (addrinfo* ai = addrs; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_err = errno;
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 && ::listen(fd, backlog) == 0) break;
    last_err = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(addrs);
  if (fd < 0) {
    throw util::Error(
        util::format("net: listen(%s): %s", ep.str().c_str(), std::strerror(last_err)));
  }
  return fd;
}

Endpoint bound_endpoint(int listen_fd, const Endpoint& requested) {
  if (requested.kind == Endpoint::Kind::Unix) return requested;
  sockaddr_storage ss{};
  socklen_t len = sizeof(ss);
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&ss), &len) != 0) return requested;
  Endpoint ep = requested;
  if (ss.ss_family == AF_INET) {
    ep.port = ntohs(reinterpret_cast<const sockaddr_in&>(ss).sin_port);
  } else if (ss.ss_family == AF_INET6) {
    ep.port = ntohs(reinterpret_cast<const sockaddr_in6&>(ss).sin6_port);
  }
  return ep;
}

int connect_to(const Endpoint& ep, double timeout_s) {
  // Non-blocking connect + poll gives the timeout; the fd is switched back
  // to blocking before it is returned (all session I/O is poll-then-read).
  auto finish_connect = [&](int fd) -> bool {
    if (timeout_s > 0) {
      pollfd pfd{fd, POLLOUT, 0};
      const int timeout_ms = static_cast<int>(timeout_s * 1000.0);
      int rc;
      do {
        rc = ::poll(&pfd, 1, timeout_ms < 1 ? 1 : timeout_ms);
      } while (rc < 0 && errno == EINTR);
      if (rc == 0) {
        errno = ETIMEDOUT;
        return false;
      }
      if (rc < 0) return false;
    } else {
      pollfd pfd{fd, POLLOUT, 0};
      int rc;
      do {
        rc = ::poll(&pfd, 1, -1);
      } while (rc < 0 && errno == EINTR);
      if (rc < 0) return false;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) return false;
    if (err != 0) {
      errno = err;
      return false;
    }
    return true;
  };

  auto try_connect = [&](int fd, const sockaddr* sa, socklen_t salen) -> bool {
    set_blocking(fd, false);
    if (::connect(fd, sa, salen) == 0 || errno == EINPROGRESS) {
      if (finish_connect(fd)) {
        set_blocking(fd, true);
        return true;
      }
    }
    return false;
  };

  if (ep.kind == Endpoint::Kind::Unix) {
    if (ep.path.empty() || ep.path.size() > kMaxUnixPath) {
      throw util::Error(util::format("net: bad socket path: '%s'", ep.path.c_str()));
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw util::Error(util::format("net: socket: %s", std::strerror(errno)));
    const sockaddr_un addr = unix_addr(ep.path);
    if (!try_connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr))) {
      const int err = errno;
      ::close(fd);
      throw util::Error(
          util::format("net: connect(%s): %s", ep.path.c_str(), std::strerror(err)));
    }
    return fd;
  }

  addrinfo* addrs = resolve_tcp(ep, /*for_listen=*/false);
  int fd = -1;
  int last_err = 0;
  for (addrinfo* ai = addrs; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_err = errno;
      continue;
    }
    if (try_connect(fd, ai->ai_addr, ai->ai_addrlen)) break;
    last_err = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(addrs);
  if (fd < 0) {
    throw util::Error(
        util::format("net: connect(%s): %s", ep.str().c_str(), std::strerror(last_err)));
  }
  // Request/response lines are small; batching them behind Nagle only adds
  // tail latency.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace mps::net

// net::Endpoint — one address type for both transports the service layer
// speaks: AF_UNIX socket paths and TCP host:port.  Everything above this
// header (svc::Server, svc::Client, the front door) is transport-agnostic:
// it parses a string into an Endpoint and calls listen_on / connect_to.
//
// Textual forms accepted by parse():
//   /path/to.sock, ./rel.sock      -> Unix (anything containing '/')
//   unix:PATH                      -> Unix (explicit, for paths w/o '/')
//   host:port, tcp:host:port       -> TCP  (host = name or IPv4 literal)
//
// Ephemeral ports: listen_on() binds whatever the endpoint says; asking for
// TCP port 0 lets the kernel pick a free port, and bound_endpoint() reads
// the actual port back — the collision-free way for parallel ctests to get
// a listening address (never "pick a random port and hope").
#pragma once

#include <cstdint>
#include <string>

namespace mps::net {

struct Endpoint {
  enum class Kind { Unix, Tcp };

  Kind kind = Kind::Unix;
  std::string path;            ///< Unix only
  std::string host;            ///< TCP only
  std::uint16_t port = 0;      ///< TCP only; 0 = kernel-assigned (listen)

  static Endpoint unix_path(std::string p);
  static Endpoint tcp(std::string host, std::uint16_t port);

  /// Parse the textual forms above.  Throws util::Error on an empty string,
  /// a bad port, or a Unix path too long for sockaddr_un.
  static Endpoint parse(const std::string& text);

  /// Canonical text ("path" / "host:port") — parse(str()) round-trips.
  std::string str() const;

  bool is_tcp() const { return kind == Kind::Tcp; }
};

/// Create + bind + listen a socket for `ep`; returns the listening fd.
/// Unix: an existing socket file is replaced (stale daemon crash leftovers).
/// TCP: SO_REUSEADDR, binds all resolved addresses' first match.
/// Throws util::Error on any failure.
int listen_on(const Endpoint& ep, int backlog);

/// The endpoint `listen_fd` actually bound — identical to the request except
/// that a TCP port 0 is resolved to the kernel-assigned port.
Endpoint bound_endpoint(int listen_fd, const Endpoint& requested);

/// Blocking-connect with a timeout (non-blocking connect + poll under the
/// hood; <=0 = wait forever).  Returns a connected fd in blocking mode.
/// Throws util::Error on failure or timeout.
int connect_to(const Endpoint& ep, double timeout_s);

}  // namespace mps::net

// net::Session — one accepted (or dialed) connection speaking the NDJSON
// protocol: framing, frame-size limits, per-session read/write timeouts, and
// the explicit session state machine.
//
// States (§ DESIGN.md 11):
//   Connecting -> Handshake -> Streaming -> Draining -> Closed
// A session lands in Handshake as soon as the transport is up.  The first
// request may be {"op":"version"} to pin the protocol version; any other
// first request is an implicit handshake at the current version (this keeps
// PR-5 AF_UNIX clients working unchanged).  Draining means "answer what was
// already received, accept nothing new"; Closed is terminal.
//
// Framing: newline-delimited JSON, one object per line.  read_line()
// enforces `max_line_bytes` *while buffering* — an oversized frame is
// reported as Read::Oversized with the partial data discarded, so a rogue
// client can hold at most max_line_bytes + one chunk of memory, never an
// unbounded buffer.  A frame that stays incomplete past the per-session
// frame timeout is Read::FrameTimeout (slow-loris guard); an idle gap
// *between* frames is Read::Idle and the caller decides (servers use short
// idle slices to notice drains).
#pragma once

#include <cstddef>
#include <string>

#include "net/io.hpp"

namespace mps::net {

enum class SessionState { Connecting, Handshake, Streaming, Draining, Closed };

/// Human-readable state name ("handshake", ...).
const char* session_state_name(SessionState s);

struct SessionLimits {
  /// Max bytes of one request/response line (excluding '\n').
  std::size_t max_line_bytes = 8u << 20;
  /// Budget for finishing a frame whose first byte arrived (0 = none).
  double frame_timeout_s = 0.0;
  /// Budget for one blocked write (0 = none).
  double write_timeout_s = 0.0;
};

class Session {
 public:
  /// Takes ownership of `fd` (closed on destruction/close()); the session
  /// starts in Handshake — the transport connect already happened.
  Session(int fd, const SessionLimits& limits);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  enum class Read {
    Line,          ///< *line holds one complete frame (no '\n')
    Idle,          ///< no frame started before `idle` expired
    FrameTimeout,  ///< a started frame did not complete in frame_timeout_s
    Oversized,     ///< frame exceeded max_line_bytes (buffer discarded)
    Eof,           ///< peer closed cleanly with no buffered frame
    Error,         ///< transport error
  };

  /// Next frame.  `idle` bounds how long to wait for a frame to *start*;
  /// already-buffered complete frames are returned without touching the fd.
  Read read_line(std::string* line, const Deadline& idle);

  /// True when a complete frame is already buffered (read_line() would
  /// return immediately) — drain logic uses this for the final scoop.
  bool has_buffered_line() const;

  /// Write `line` + '\n' under the write timeout.
  IoStatus write_line(std::string_view line);

  SessionState state() const { return state_; }
  /// Advance the state machine; transitions only forward (a Draining
  /// session never goes back to Streaming).
  void advance(SessionState next);

  int fd() const { return fd_; }
  void close();

  /// Disable further transport I/O (::shutdown(2)) from *any* thread —
  /// blocked reads/writes in the owning thread wake with EOF/error.  The
  /// owning thread still closes the fd; safe while the caller holds a
  /// shared_ptr keeping the session alive (svc::Server::shutdown_hard).
  void shutdown_transport();

 private:
  int fd_;
  SessionLimits limits_;
  SessionState state_ = SessionState::Handshake;
  std::string buffer_;
  /// Deadline for the currently-buffering frame; re-armed per frame.
  Deadline frame_deadline_;
  bool frame_in_progress_ = false;
};

}  // namespace mps::net

#include "net/io.hpp"

#include <cerrno>

#include <poll.h>
#include <sys/socket.h>

namespace mps::net {

Deadline Deadline::after(double seconds) {
  Deadline d;
  if (seconds > 0) {
    d.armed_ = true;
    d.at_ = std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(seconds));
  }
  return d;
}

bool Deadline::expired() const {
  return armed_ && std::chrono::steady_clock::now() >= at_;
}

int Deadline::poll_ms() const {
  if (!armed_) return -1;
  const auto left = at_ - std::chrono::steady_clock::now();
  if (left <= std::chrono::steady_clock::duration::zero()) return 0;
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(left).count();
  // Round up so a 0.4 ms remainder polls 1 ms instead of busy-spinning at 0.
  return static_cast<int>(ms) + 1;
}

Deadline Deadline::min(const Deadline& other) const {
  if (never()) return other;
  if (other.never()) return *this;
  return at_ <= other.at_ ? *this : other;
}

namespace {

/// Poll `fd` for `events` until the deadline; Ok = ready.
IoStatus wait_ready(int fd, short events, const Deadline& deadline) {
  for (;;) {
    pollfd pfd{fd, events, 0};
    const int rc = ::poll(&pfd, 1, deadline.poll_ms());
    if (rc < 0) {
      if (errno == EINTR) continue;
      return IoStatus::Error;
    }
    if (rc == 0) return IoStatus::Timeout;
    // Readability/writability OR an error/hangup: let the actual read/write
    // observe and classify it (POLLHUP with pending data must still read).
    return IoStatus::Ok;
  }
}

}  // namespace

IoStatus write_all(int fd, std::string_view data, const Deadline& deadline) {
  while (!data.empty()) {
    const IoStatus ready = wait_ready(fd, POLLOUT, deadline);
    if (ready != IoStatus::Ok) return ready;
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return IoStatus::Error;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return IoStatus::Ok;
}

IoStatus read_chunk(int fd, std::string* buf, const Deadline& deadline) {
  for (;;) {
    const IoStatus ready = wait_ready(fd, POLLIN, deadline);
    if (ready != IoStatus::Ok) return ready;
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return IoStatus::Error;
    }
    if (n == 0) return IoStatus::Eof;
    buf->append(chunk, static_cast<std::size_t>(n));
    return IoStatus::Ok;
  }
}

}  // namespace mps::net

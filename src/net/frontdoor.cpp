#include "net/frontdoor.hpp"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstring>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/obs.hpp"
#include "svc/service.hpp"
#include "util/common.hpp"
#include "util/text.hpp"

namespace mps::net {

namespace {

constexpr std::size_t kLatencyRing = 8192;

FrontDoor* g_signal_frontdoor = nullptr;
int g_signal_wake_fd = -1;

void handle_term_signal(int) {
  if (g_signal_wake_fd >= 0) {
    const char b = 'T';
    [[maybe_unused]] ssize_t n = ::write(g_signal_wake_fd, &b, 1);
  }
}

}  // namespace

FrontDoor::FrontDoor(const FrontDoorOptions& opts) : opts_(opts) {
  if (opts_.workers.empty()) throw util::Error("frontdoor: no workers configured");
  std::vector<Endpoint> eps;
  eps.reserve(opts_.workers.size());
  for (const auto& w : opts_.workers) eps.push_back(Endpoint::parse(w));
  table_ = std::make_unique<WorkerTable>(std::move(eps), opts_.backoff);
  latencies_.reserve(kLatencyRing);
}

FrontDoor::~FrontDoor() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (int fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
  }
  if (g_signal_frontdoor == this) {
    g_signal_frontdoor = nullptr;
    g_signal_wake_fd = -1;
  }
  for (auto& t : connections_) {
    if (t.joinable()) t.join();
  }
  if (endpoint_.kind == Endpoint::Kind::Unix && !endpoint_.path.empty()) {
    ::unlink(endpoint_.path.c_str());
  }
}

void FrontDoor::start() {
  MPS_ASSERT(listen_fd_ < 0);  // start called twice
  endpoint_ = Endpoint::parse(opts_.listen);
  if (::pipe(wake_pipe_) != 0) {
    throw util::Error(util::format("frontdoor: pipe: %s", std::strerror(errno)));
  }
  listen_fd_ = listen_on(endpoint_, opts_.backlog);
  bound_ = mps::net::bound_endpoint(listen_fd_, endpoint_);
}

void FrontDoor::install_signal_handlers() {
  MPS_ASSERT(wake_pipe_[1] >= 0);  // install_signal_handlers before start
  g_signal_frontdoor = this;
  g_signal_wake_fd = wake_pipe_[1];
  struct sigaction sa{};
  sa.sa_handler = handle_term_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);
}

void FrontDoor::request_drain() {
  draining_.store(true);
  if (wake_pipe_[1] >= 0) {
    const char b = 'D';
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
  }
}

void FrontDoor::run() {
  MPS_ASSERT(listen_fd_ >= 0);  // run before start
  obs::Span span("net.frontdoor.run");

  while (!draining_.load()) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw util::Error(util::format("frontdoor: poll: %s", std::strerror(errno)));
    }
    if (fds[1].revents != 0) {
      char buf[16];
      [[maybe_unused]] ssize_t n = ::read(wake_pipe_[0], buf, sizeof(buf));
      draining_.store(true);
      break;
    }
    if ((fds[0].revents & POLLIN) != 0) {
      const int conn = ::accept(listen_fd_, nullptr, nullptr);
      if (conn < 0) {
        if (errno == EINTR || errno == ECONNABORTED) continue;
        throw util::Error(util::format("frontdoor: accept: %s", std::strerror(errno)));
      }
      obs::counter_add("net.accepted", 1);
      const SessionLimits limits{opts_.max_line_bytes, opts_.frame_timeout_s,
                                 opts_.write_timeout_s};
      auto session = std::make_shared<Session>(conn, limits);
      std::lock_guard<std::mutex> lock(threads_mutex_);
      connections_.emplace_back(
          [this, s = std::move(session)]() mutable { connection_loop(std::move(s)); });
    }
  }

  ::close(listen_fd_);
  listen_fd_ = -1;
  for (;;) {
    std::vector<std::thread> batch;
    {
      std::lock_guard<std::mutex> lock(threads_mutex_);
      batch.swap(connections_);
    }
    if (batch.empty()) break;
    for (auto& t : batch) t.join();
  }
}

void FrontDoor::connection_loop(std::shared_ptr<Session> session) {
  obs::set_thread_name("fd-conn");
  // Downstream worker connections are per-session: each client connection
  // thread dials its own, so no two threads ever interleave frames on one
  // worker socket.  Dropped on any failure, re-dialed on next use.
  std::unordered_map<std::size_t, svc::Client> pool;

  auto handle = [&](const std::string& line) -> bool {
    obs::Span span("net.request");
    obs::counter_add("net.requests", 1);
    const std::string response = handle_line(line, pool);
    if (session->write_line(response) != IoStatus::Ok) return false;
    session->advance(SessionState::Streaming);
    return true;
  };

  bool open = true;
  while (open) {
    std::string line;
    switch (session->read_line(&line, Deadline::after(0.2))) {
      case Session::Read::Line:
        open = handle(line);
        break;
      case Session::Read::Idle:
        break;
      case Session::Read::Oversized:
        obs::counter_add("net.oversized", 1);
        session->write_line(svc::protocol_error(
            "", "bad_request",
            util::format("request line exceeds %zu bytes", opts_.max_line_bytes)));
        open = false;
        break;
      case Session::Read::FrameTimeout:
        obs::counter_add("net.frame_timeout", 1);
        session->write_line(svc::protocol_error(
            "", "bad_request",
            util::format("frame incomplete after %.1f s", opts_.frame_timeout_s)));
        open = false;
        break;
      case Session::Read::Eof:
      case Session::Read::Error:
        open = false;
        break;
    }
    if (open && draining_.load()) {
      session->advance(SessionState::Draining);
      for (;;) {
        const auto st = session->read_line(&line, Deadline::after(0.001));
        if (st != Session::Read::Line || !handle(line)) break;
      }
      open = false;
    }
  }
}

std::string FrontDoor::handle_line(const std::string& line,
                                   std::unordered_map<std::size_t, svc::Client>& pool) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests;
  }
  svc::Json req;
  try {
    req = svc::Json::parse(line);
  } catch (const util::Error& e) {
    return svc::protocol_error("", "bad_request", e.what());
  }
  if (!req.is_object()) {
    return svc::protocol_error("", "bad_request", "request must be an object");
  }
  const std::string op = req.get_string("op", "");

  try {
    if (op == "ping") {
      svc::Json j = svc::Json::object();
      j.set("ok", svc::Json(true));
      j.set("op", "ping");
      return j.dump();
    }
    if (op == "version") {
      const std::int64_t asked = req.get_int("protocol", svc::kProtocolVersion);
      if (asked != svc::kProtocolVersion) {
        svc::Json j = svc::Json::parse(svc::protocol_error(
            "version", "version",
            util::format("protocol mismatch: client %lld, server %lld",
                         static_cast<long long>(asked),
                         static_cast<long long>(svc::kProtocolVersion))));
        j.set("protocol", svc::Json(svc::kProtocolVersion));
        return j.dump();
      }
      svc::Json j = svc::Json::object();
      j.set("ok", svc::Json(true));
      j.set("op", "version");
      j.set("protocol", svc::Json(svc::kProtocolVersion));
      return j.dump();
    }
    if (op == "stats") return stats_json().dump();
    if (op == "drain") {
      request_drain();
      svc::Json j = svc::Json::object();
      j.set("ok", svc::Json(true));
      j.set("op", "drain");
      return j.dump();
    }
    if (op == "synth") return forward_synth(req, pool);
    return svc::protocol_error(op, "bad_request", "unknown op: '" + op + "'");
  } catch (const std::exception& e) {
    return svc::protocol_error(op, "internal", e.what());
  }
}

std::string FrontDoor::forward_synth(const svc::Json& req,
                                     std::unordered_map<std::size_t, svc::Client>& pool) {
  obs::Span span("net.route");
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.synth_requests;
  }
  // Validate + digest locally: malformed requests are answered here with
  // the same error a worker would produce, and never consume an attempt.
  std::string error_line;
  const auto parsed = svc::parse_synth_request(req, &error_line);
  if (!parsed.has_value()) return error_line;
  const std::string& digest = parsed->digest;

  // End-to-end deadline: a request that budgets its synthesis also bounds
  // how long we will wait for any worker to answer it.
  const double wait_s = parsed->options.deadline_s > 0
                            ? parsed->options.deadline_s + opts_.deadline_margin_s
                            : opts_.worker_io_timeout_s;

  util::Timer timer;
  std::uint64_t tried = 0;
  double backoff = opts_.backoff.base_s;
  std::string last_error;
  const int attempts = std::max(opts_.max_attempts, 1);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    bool was_owner = false;
    const std::size_t idx = table_->pick(digest, tried, &was_owner);
    if (idx == table_->size()) break;  // every worker already failed this request
    if (attempt > 0) {
      obs::counter_add("net.retries", 1);
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.retries;
    }
    {
      obs::counter_add(was_owner ? "net.routed.shard_hit" : "net.routed.fallback", 1);
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++(was_owner ? stats_.shard_hits : stats_.shard_fallbacks);
    }

    table_->begin_request(idx);
    try {
      auto it = pool.find(idx);
      if (it == pool.end()) {
        svc::ClientOptions copts;
        copts.connect_timeout_s = opts_.worker_connect_timeout_s;
        copts.connect_attempts = 2;
        copts.backoff_s = opts_.backoff.base_s;
        copts.backoff_max_s = opts_.backoff.max_s;
        copts.handshake = true;  // refuse to route through a version-skewed worker
        it = pool.emplace(idx, svc::Client(table_->endpoint(idx), copts)).first;
      }
      const svc::Json resp = it->second.request(req, wait_s);
      table_->end_request(idx);

      if (!resp.get_bool("ok", false) && resp.get_string("kind", "") == "overloaded") {
        // The worker is healthy but full: try a sibling, no backoff mark.
        tried |= 1ull << idx;
        last_error = "worker " + table_->endpoint(idx).str() + " overloaded";
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
        backoff = std::min(backoff * 2.0, opts_.backoff.max_s);
        continue;
      }
      table_->report_success(idx);
      record_latency(timer.seconds());
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.synth_relayed;
      }
      // Relay verbatim: dump(parse(x)) is byte-identical for our JSON, so
      // clients cannot tell the front door from a direct worker connection.
      return resp.dump();
    } catch (const util::Error& e) {
      // Connect/send/recv/timeout failure: the worker is suspect.  Drop the
      // cached connection, put the worker on backoff, fail over.
      table_->end_request(idx);
      table_->report_failure(idx);
      pool.erase(idx);
      tried |= 1ull << idx;
      last_error = e.what();
      obs::counter_add("net.failover", 1);
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.failovers;
      }
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      backoff = std::min(backoff * 2.0, opts_.backoff.max_s);
    }
  }

  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.synth_unavailable;
  }
  return svc::protocol_error(
      "synth", "unavailable",
      last_error.empty() ? "no worker available" : "no worker available: " + last_error);
}

void FrontDoor::record_latency(double seconds) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++latency_count_;
  if (latencies_.size() < kLatencyRing) {
    latencies_.push_back(seconds);
  } else {
    latencies_[latency_next_] = seconds;
    latency_next_ = (latency_next_ + 1) % kLatencyRing;
  }
}

FrontDoorStats FrontDoor::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

svc::Json FrontDoor::stats_json() const {
  svc::Json j = svc::Json::object();
  j.set("ok", svc::Json(true));
  j.set("op", "stats");
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    j.set("requests", svc::Json(stats_.requests));
    j.set("synth_requests", svc::Json(stats_.synth_requests));
    j.set("synth_relayed", svc::Json(stats_.synth_relayed));
    j.set("synth_unavailable", svc::Json(stats_.synth_unavailable));
    j.set("shard_hits", svc::Json(stats_.shard_hits));
    j.set("shard_fallbacks", svc::Json(stats_.shard_fallbacks));
    j.set("retries", svc::Json(stats_.retries));
    j.set("failovers", svc::Json(stats_.failovers));

    svc::Json lat = svc::Json::object();
    lat.set("count", svc::Json(latency_count_));
    std::vector<double> sorted = latencies_;
    if (!sorted.empty()) {
      std::sort(sorted.begin(), sorted.end());
      const auto pct = [&](double p) {
        const std::size_t i =
            static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
        return sorted[i];
      };
      lat.set("p50_ms", svc::Json(pct(0.50) * 1e3));
      lat.set("p99_ms", svc::Json(pct(0.99) * 1e3));
      lat.set("max_ms", svc::Json(sorted.back() * 1e3));
    }
    j.set("latency", std::move(lat));
  }
  svc::Json workers = svc::Json::array();
  for (std::size_t i = 0; i < table_->size(); ++i) {
    svc::Json w = svc::Json::object();
    w.set("endpoint", table_->endpoint(i).str());
    w.set("inflight", svc::Json(table_->inflight(i)));
    w.set("routed", svc::Json(table_->routed(i)));
    w.set("failures", svc::Json(table_->failures(i)));
    w.set("available", svc::Json(table_->available(i)));
    workers.push_back(std::move(w));
  }
  j.set("workers", std::move(workers));
  return j;
}

}  // namespace mps::net

// net::io — EINTR-safe, deadline-aware socket I/O primitives shared by the
// server sessions, the client, and the front door.
//
// All fds stay in blocking mode; timeouts come from poll()ing before every
// read/write with the time remaining until the deadline, so a peer that
// stalls mid-frame (slow loris) or stops draining its receive buffer can
// never wedge a thread forever.  Short writes and EINTR are retried until
// the deadline; results are status codes, not exceptions — the callers
// decide which statuses are errors in their protocol state.
#pragma once

#include <chrono>
#include <string>
#include <string_view>

namespace mps::net {

/// Absolute steady-clock deadline; default-constructed = never expires.
class Deadline {
 public:
  Deadline() = default;
  /// A deadline `seconds` from now; <=0 means "never".
  static Deadline after(double seconds);

  bool never() const { return !armed_; }
  bool expired() const;
  /// Milliseconds until expiry for poll(): -1 when never, >=0 otherwise
  /// (clamped to 0 when already expired, never negative).
  int poll_ms() const;
  /// The earlier of this deadline and `other`.
  Deadline min(const Deadline& other) const;

 private:
  bool armed_ = false;
  std::chrono::steady_clock::time_point at_{};
};

enum class IoStatus {
  Ok,       ///< progress was made
  Eof,      ///< orderly close by the peer (reads only)
  Timeout,  ///< the deadline expired before progress
  Error,    ///< errno-level failure (reset, bad fd, ...)
};

/// Write all of `data`, retrying EINTR/short writes, polling for writability
/// until `deadline`.  SIGPIPE is suppressed (MSG_NOSIGNAL).
IoStatus write_all(int fd, std::string_view data, const Deadline& deadline);

/// Read one chunk (<=4 KiB) and append it to `*buf`.  Blocks (via poll)
/// until data, EOF, error, or the deadline.
IoStatus read_chunk(int fd, std::string* buf, const Deadline& deadline);

}  // namespace mps::net

// net::FrontDoor — the fleet's load-balancing entry point.
//
// Clients connect here (TCP or AF_UNIX) and speak the exact mps_serve
// protocol; the front door routes every synth request to a worker daemon by
// digest shard (net/shard.hpp) and relays the worker's response verbatim —
// so a response through the front door is byte-identical to one from a
// direct worker connection, which is byte-identical to local mps_synth.
//
// Request handling:
//   ping / version / stats / drain  — answered locally (stats reports the
//       front door's routing/latency/worker table, not a worker's);
//   synth — validated locally (a malformed spec never ties up a worker),
//       digested, routed to the shard owner; on owner failure or backoff,
//       to the least-loaded live worker (a "fallback" — fleet-wide
//       single-flight degrades gracefully, correctness never depends on
//       it).  A worker that dies mid-request triggers a bounded-backoff
//       retry on a different worker: synthesis is idempotent and content-
//       addressed, so retries are always safe.  Per-request deadlines are
//       enforced end-to-end: the worker maps deadline_s onto its solver
//       deadline, and the front door bounds its own wait to deadline_s plus
//       a grace margin so a wedged worker cannot absorb a client forever.
//
// Shutdown mirrors svc::Server: SIGTERM / {"op":"drain"} stops accepting,
// answers everything already received, then run() returns (workers keep
// running — drain them separately).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/endpoint.hpp"
#include "net/session.hpp"
#include "net/shard.hpp"
#include "svc/client.hpp"
#include "svc/json.hpp"

namespace mps::net {

struct FrontDoorOptions {
  /// Client-facing endpoint text; TCP port 0 = kernel-assigned.
  std::string listen;
  /// Worker daemon endpoints (>=1); index order defines the shard map.
  std::vector<std::string> workers;
  int backlog = 64;
  std::size_t max_line_bytes = 8u << 20;
  double frame_timeout_s = 30.0;
  double write_timeout_s = 30.0;
  /// Per-attempt connect timeout towards a worker.
  double worker_connect_timeout_s = 5.0;
  /// Response wait for requests without a deadline (a synthesis can
  /// legitimately run minutes; this only bounds a truly wedged worker).
  double worker_io_timeout_s = 600.0;
  /// A request with deadline_s waits deadline_s + this grace for the
  /// worker's answer (the worker needs a moment to package the artifact).
  double deadline_margin_s = 10.0;
  /// Max routing attempts per request (first try + failovers).
  int max_attempts = 3;
  WorkerBackoff backoff;
};

struct FrontDoorStats {
  std::int64_t requests = 0;        ///< frames received (all ops)
  std::int64_t synth_requests = 0;
  std::int64_t synth_relayed = 0;   ///< worker answers relayed to clients
  std::int64_t synth_unavailable = 0;
  std::int64_t shard_hits = 0;      ///< routed to the digest's shard owner
  std::int64_t shard_fallbacks = 0; ///< owner down/backing off: least-loaded
  std::int64_t retries = 0;         ///< attempts after the first
  std::int64_t failovers = 0;       ///< worker failures that moved a request
};

class FrontDoor {
 public:
  explicit FrontDoor(const FrontDoorOptions& opts);
  ~FrontDoor();

  FrontDoor(const FrontDoor&) = delete;
  FrontDoor& operator=(const FrontDoor&) = delete;

  /// Bind + listen; throws util::Error on failure (workers are dialed
  /// lazily per request, so workers may start after the front door).
  void start();
  /// Accept and serve until a drain is requested; graceful (see above).
  void run();
  void request_drain();
  /// SIGTERM/SIGINT -> request_drain() (one instance per process).
  void install_signal_handlers();

  /// Valid after start(); TCP port 0 resolved to the bound port.
  const Endpoint& bound_endpoint() const { return bound_; }

  FrontDoorStats stats() const;
  const WorkerTable& workers() const { return *table_; }
  /// The stats-op response body (also what tests inspect): counters,
  /// latency percentiles, per-worker table.
  svc::Json stats_json() const;

 private:
  void connection_loop(std::shared_ptr<Session> session);
  /// One request line in, one response line out (never throws).
  std::string handle_line(const std::string& line,
                          std::unordered_map<std::size_t, svc::Client>& pool);
  std::string forward_synth(const svc::Json& req,
                            std::unordered_map<std::size_t, svc::Client>& pool);
  void record_latency(double seconds);

  FrontDoorOptions opts_;
  std::unique_ptr<WorkerTable> table_;
  Endpoint endpoint_;
  Endpoint bound_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> draining_{false};
  std::mutex threads_mutex_;
  std::vector<std::thread> connections_;

  mutable std::mutex stats_mutex_;
  FrontDoorStats stats_;
  /// Bounded ring of recent synth latencies (seconds) for p50/p99.
  std::vector<double> latencies_;
  std::size_t latency_next_ = 0;
  std::int64_t latency_count_ = 0;
};

}  // namespace mps::net

// net::shard — digest-prefix sharding of the content-addressed result space
// across worker daemons, plus the live worker table the front door routes
// with.
//
// Routing invariant: shard_of() is a pure function of the request digest and
// the fleet size, so every front door (and every retry) sends a given digest
// to the same worker while that worker is alive.  That makes the worker's
// single-flight scheduler and content-addressed cache *fleet-wide*: N
// identical concurrent requests, arriving via any mix of client connections,
// collapse to one synthesis on one node.
//
// Failure handling: a worker that fails an attempt is put on backoff
// (exponential, bounded); while it is backing off, pick() routes its shards
// to the least-loaded available worker instead (counted as a fallback — the
// dedup guarantee degrades to per-surviving-worker until the owner heals,
// correctness never depends on it).  A success clears the backoff.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <string_view>
#include <vector>

#include "net/endpoint.hpp"

namespace mps::net {

/// Shard index for `digest_hex` (>=8 hex chars — svc digests are 64) among
/// `num_shards` shards: the first 32 digest bits, reduced mod num_shards.
/// SHA-256 prefixes are uniform, so shards balance without rehashing.
std::size_t shard_of(std::string_view digest_hex, std::size_t num_shards);

struct WorkerBackoff {
  double base_s = 0.05;  ///< first backoff after a failure
  double max_s = 2.0;    ///< cap; repeated failures double up to this
};

/// Shared, thread-safe view of the worker fleet: who owns which shard, who
/// is backing off, who is least loaded.  Indexes are stable for the table's
/// lifetime (the fleet is fixed at front-door start).
class WorkerTable {
 public:
  WorkerTable(std::vector<Endpoint> workers, const WorkerBackoff& backoff = {});

  std::size_t size() const { return workers_.size(); }
  const Endpoint& endpoint(std::size_t i) const { return workers_[i].ep; }

  /// The shard owner for `digest_hex` (ignores liveness).
  std::size_t owner(std::string_view digest_hex) const;

  /// Route one attempt: the shard owner when it is available and not in
  /// `tried_mask` (bit i = worker i already failed this request); otherwise
  /// the least-loaded available untried worker; otherwise the least-loaded
  /// untried worker even if backing off (a request never gives up while an
  /// untried worker exists).  Returns size() when every worker was tried.
  /// `*was_owner` reports whether the pick is the shard owner (hit vs
  /// fallback, for the stats).
  std::size_t pick(std::string_view digest_hex, std::uint64_t tried_mask,
                   bool* was_owner) const;

  /// Attempt bookkeeping (drives least-loaded + backoff).
  void begin_request(std::size_t i);
  void end_request(std::size_t i);
  void report_success(std::size_t i);
  void report_failure(std::size_t i);

  bool available(std::size_t i) const;  ///< not currently backing off
  std::int64_t inflight(std::size_t i) const { return workers_[i].inflight.load(); }
  std::int64_t routed(std::size_t i) const { return workers_[i].routed.load(); }
  std::int64_t failures(std::size_t i) const { return workers_[i].failures.load(); }

 private:
  struct Worker {
    explicit Worker(Endpoint e) : ep(std::move(e)) {}
    Endpoint ep;
    std::atomic<std::int64_t> inflight{0};
    std::atomic<std::int64_t> routed{0};
    std::atomic<std::int64_t> failures{0};
    /// Consecutive failures (resets on success); scales the backoff.
    std::atomic<std::int64_t> failure_streak{0};
    /// steady_clock nanos-since-epoch until which the worker is skipped.
    std::atomic<std::int64_t> retry_at_ns{0};
  };

  static std::int64_t now_ns();

  /// deque: Worker holds atomics (immovable) and indexes must stay stable.
  std::deque<Worker> workers_;
  WorkerBackoff backoff_;
};

}  // namespace mps::net

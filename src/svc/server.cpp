#include "svc/server.hpp"

#include <csignal>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/obs.hpp"
#include "util/common.hpp"
#include "util/text.hpp"

namespace mps::svc {

namespace {

// SIGTERM/SIGINT handlers can only touch async-signal-safe state: the
// handler write()s one byte to the instance's wake pipe and sets nothing
// else; all real drain work happens on the accept thread.
Server* g_signal_server = nullptr;
int g_signal_wake_fd = -1;

void handle_term_signal(int) {
  if (g_signal_wake_fd >= 0) {
    const char b = 'T';
    [[maybe_unused]] ssize_t n = ::write(g_signal_wake_fd, &b, 1);
  }
}

}  // namespace

Server::Server(const ServerOptions& opts) : opts_(opts), service_(opts.service) {}

Server::~Server() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (int fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
  }
  if (g_signal_server == this) {
    g_signal_server = nullptr;
    g_signal_wake_fd = -1;
  }
  for (auto& t : connections_) {
    if (t.joinable()) t.join();
  }
  if (endpoint_.kind == net::Endpoint::Kind::Unix && !endpoint_.path.empty()) {
    ::unlink(endpoint_.path.c_str());
  }
}

void Server::start() {
  MPS_ASSERT(listen_fd_ < 0);  // Server::start called twice
  if (!opts_.socket_path.empty()) {
    endpoint_ = net::Endpoint::parse("unix:" + opts_.socket_path);
  } else if (!opts_.listen.empty()) {
    endpoint_ = net::Endpoint::parse(opts_.listen);
  } else {
    throw util::Error("svc: no listen endpoint (set socket_path or listen)");
  }

  if (::pipe(wake_pipe_) != 0) {
    throw util::Error(util::format("svc: pipe: %s", std::strerror(errno)));
  }
  listen_fd_ = net::listen_on(endpoint_, opts_.backlog);
  bound_ = net::bound_endpoint(listen_fd_, endpoint_);
}

void Server::install_signal_handlers() {
  MPS_ASSERT(wake_pipe_[1] >= 0);  // install_signal_handlers before start
  g_signal_server = this;
  g_signal_wake_fd = wake_pipe_[1];
  struct sigaction sa{};
  sa.sa_handler = handle_term_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  // A client vanishing mid-response must not kill the daemon.
  ::signal(SIGPIPE, SIG_IGN);
}

void Server::request_drain() {
  draining_.store(true);
  if (wake_pipe_[1] >= 0) {
    const char b = 'D';
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
  }
}

void Server::shutdown_hard() {
  hard_stop_.store(true);
  draining_.store(true);
  if (wake_pipe_[1] >= 0) {
    const char b = 'K';
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
  }
  // threads_mutex_ also serializes against run()'s close of listen_fd_:
  // we must never ::shutdown a fd number the run thread already closed
  // (it could have been reused by another connection by then).
  std::lock_guard<std::mutex> lock(threads_mutex_);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  for (auto& weak : sessions_) {
    if (auto session = weak.lock()) session->shutdown_transport();
  }
}

void Server::run() {
  MPS_ASSERT(listen_fd_ >= 0);  // Server::run before start
  obs::Span span("svc.server.run");

  while (!draining_.load()) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw util::Error(util::format("svc: poll: %s", std::strerror(errno)));
    }
    if (fds[1].revents != 0) {
      char buf[16];
      [[maybe_unused]] ssize_t n = ::read(wake_pipe_[0], buf, sizeof(buf));
      draining_.store(true);
      break;
    }
    if ((fds[0].revents & POLLIN) != 0) {
      const int conn = ::accept(listen_fd_, nullptr, nullptr);
      if (conn < 0) {
        if (errno == EINTR || errno == ECONNABORTED) continue;
        if (hard_stop_.load()) break;
        throw util::Error(util::format("svc: accept: %s", std::strerror(errno)));
      }
      obs::counter_add("svc.server.connections", 1);
      obs::counter_add("net.accepted", 1);
      const net::SessionLimits limits{opts_.max_line_bytes, opts_.frame_timeout_s,
                                      opts_.write_timeout_s};
      auto session = std::make_shared<net::Session>(conn, limits);
      std::lock_guard<std::mutex> lock(threads_mutex_);
      sessions_.push_back(session);
      connections_.emplace_back(
          [this, s = std::move(session)]() mutable { connection_loop(std::move(s)); });
    }
  }

  // Drain: stop accepting immediately, then let every connection thread
  // finish the requests it already read (the scheduler completes all
  // admitted jobs, so blocked waiters get their responses).  The close is
  // under threads_mutex_ so a concurrent shutdown_hard() either sees the
  // live fd or -1, never a closed (possibly reused) fd number.
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (;;) {
    std::vector<std::thread> batch;
    {
      std::lock_guard<std::mutex> lock(threads_mutex_);
      batch.swap(connections_);
      sessions_.clear();
    }
    if (batch.empty()) break;
    for (auto& t : batch) t.join();
  }
  if (!hard_stop_.load()) service_.drain();
}

void Server::connection_loop(std::shared_ptr<net::Session> session) {
  obs::set_thread_name("svc-conn");

  // Handle one received frame; returns false when the session must close.
  auto handle = [&](const std::string& line) -> bool {
    obs::Span span("net.request");
    obs::counter_add("net.requests", 1);
    const std::string response = service_.handle_line(line);
    if (session->write_line(response) != net::IoStatus::Ok) return false;
    // First answered request completes the handshake (explicit version op
    // or the PR-5 implicit form — see net/session.hpp).
    session->advance(net::SessionState::Streaming);
    if (service_.drain_requested()) request_drain();
    return true;
  };

  bool open = true;
  while (open && !hard_stop_.load()) {
    std::string line;
    // Short idle slices so the thread notices a drain triggered elsewhere
    // (signal, another connection's drain request).
    switch (session->read_line(&line, net::Deadline::after(0.2))) {
      case net::Session::Read::Line:
        open = handle(line);
        break;
      case net::Session::Read::Idle:
        break;
      case net::Session::Read::Oversized:
        obs::counter_add("net.oversized", 1);
        session->write_line(protocol_error(
            "", "bad_request",
            util::format("request line exceeds %zu bytes", opts_.max_line_bytes)));
        open = false;
        break;
      case net::Session::Read::FrameTimeout:
        obs::counter_add("net.frame_timeout", 1);
        session->write_line(protocol_error(
            "", "bad_request",
            util::format("frame incomplete after %.1f s", opts_.frame_timeout_s)));
        open = false;
        break;
      case net::Session::Read::Eof:
      case net::Session::Read::Error:
        open = false;
        break;
    }
    if (open && draining_.load() && !hard_stop_.load()) {
      // Final scoop: answer any requests whose lines already arrived, then
      // close.  New data after this point is the client's race to lose.
      session->advance(net::SessionState::Draining);
      for (;;) {
        const auto st = session->read_line(&line, net::Deadline::after(0.001));
        if (st == net::Session::Read::Line) {
          if (!handle(line)) break;
          continue;
        }
        break;
      }
      open = false;
    }
  }
  // The session's destructor (this thread owns the last reference once the
  // server's weak_ptr expires) closes the fd.
}

}  // namespace mps::svc

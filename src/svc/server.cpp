#include "svc/server.hpp"

#include <csignal>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/obs.hpp"
#include "util/common.hpp"
#include "util/text.hpp"

namespace mps::svc {

namespace {

// SIGTERM/SIGINT handlers can only touch async-signal-safe state: the
// handler write()s one byte to the instance's wake pipe and sets nothing
// else; all real drain work happens on the accept thread.
Server* g_signal_server = nullptr;
int g_signal_wake_fd = -1;

void handle_term_signal(int) {
  if (g_signal_wake_fd >= 0) {
    const char b = 'T';
    [[maybe_unused]] ssize_t n = ::write(g_signal_wake_fd, &b, 1);
  }
}

/// write() the whole buffer, retrying on EINTR / short writes.
bool write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Server::Server(const ServerOptions& opts) : opts_(opts), service_(opts.service) {}

Server::~Server() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (int fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
  }
  if (g_signal_server == this) {
    g_signal_server = nullptr;
    g_signal_wake_fd = -1;
  }
  for (auto& t : connections_) {
    if (t.joinable()) t.join();
  }
  if (!opts_.socket_path.empty()) ::unlink(opts_.socket_path.c_str());
}

void Server::start() {
  MPS_ASSERT(listen_fd_ < 0);  // Server::start called twice
  if (opts_.socket_path.empty()) throw util::Error("svc: empty socket path");

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opts_.socket_path.size() >= sizeof(addr.sun_path)) {
    throw util::Error(util::format("svc: socket path too long (%zu bytes, max %zu): %s",
                                   opts_.socket_path.size(), sizeof(addr.sun_path) - 1,
                                   opts_.socket_path.c_str()));
  }
  std::memcpy(addr.sun_path, opts_.socket_path.c_str(), opts_.socket_path.size() + 1);

  if (::pipe(wake_pipe_) != 0) {
    throw util::Error(util::format("svc: pipe: %s", std::strerror(errno)));
  }

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw util::Error(util::format("svc: socket: %s", std::strerror(errno)));
  }
  // A stale socket file from a crashed daemon would make bind fail; replace it.
  ::unlink(opts_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw util::Error(
        util::format("svc: bind(%s): %s", opts_.socket_path.c_str(), std::strerror(errno)));
  }
  if (::listen(listen_fd_, 64) != 0) {
    throw util::Error(
        util::format("svc: listen(%s): %s", opts_.socket_path.c_str(), std::strerror(errno)));
  }
}

void Server::install_signal_handlers() {
  MPS_ASSERT(wake_pipe_[1] >= 0);  // install_signal_handlers before start
  g_signal_server = this;
  g_signal_wake_fd = wake_pipe_[1];
  struct sigaction sa{};
  sa.sa_handler = handle_term_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  // A client vanishing mid-response must not kill the daemon.
  ::signal(SIGPIPE, SIG_IGN);
}

void Server::request_drain() {
  draining_.store(true);
  if (wake_pipe_[1] >= 0) {
    const char b = 'D';
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
  }
}

void Server::run() {
  MPS_ASSERT(listen_fd_ >= 0);  // Server::run before start
  obs::Span span("svc.server.run");

  while (!draining_.load()) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw util::Error(util::format("svc: poll: %s", std::strerror(errno)));
    }
    if (fds[1].revents != 0) {
      char buf[16];
      [[maybe_unused]] ssize_t n = ::read(wake_pipe_[0], buf, sizeof(buf));
      draining_.store(true);
      break;
    }
    if ((fds[0].revents & POLLIN) != 0) {
      const int conn = ::accept(listen_fd_, nullptr, nullptr);
      if (conn < 0) {
        if (errno == EINTR || errno == ECONNABORTED) continue;
        throw util::Error(util::format("svc: accept: %s", std::strerror(errno)));
      }
      obs::counter_add("svc.server.connections", 1);
      std::lock_guard<std::mutex> lock(threads_mutex_);
      connections_.emplace_back([this, conn] { connection_loop(conn); });
    }
  }

  // Drain: stop accepting immediately, then let every connection thread
  // finish the requests it already read (the scheduler completes all
  // admitted jobs, so blocked waiters get their responses).
  ::close(listen_fd_);
  listen_fd_ = -1;
  for (;;) {
    std::vector<std::thread> batch;
    {
      std::lock_guard<std::mutex> lock(threads_mutex_);
      batch.swap(connections_);
    }
    if (batch.empty()) break;
    for (auto& t : batch) t.join();
  }
  service_.drain();
}

void Server::connection_loop(int fd) {
  obs::set_thread_name("svc-conn");
  std::string buffer;
  char chunk[4096];
  bool open = true;

  // Process every complete line currently in `buffer`; returns false if a
  // write failed (peer gone).
  auto process_buffered = [&]() -> bool {
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      std::string response = service_.handle_line(line);
      response.push_back('\n');
      if (!write_all(fd, response.data(), response.size())) return false;
      if (service_.drain_requested()) request_drain();
    }
    buffer.erase(0, start);
    return true;
  };

  while (open) {
    // Poll with a short timeout so the thread notices a drain that was
    // triggered elsewhere (signal, another connection's drain request).
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 200);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc > 0 && (pfd.revents & (POLLIN | POLLHUP)) != 0) {
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        break;  // EOF or error: peer closed
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
      if (!process_buffered()) break;
    }
    if (draining_.load()) {
      // Final scoop: answer any requests whose lines already arrived, then
      // close.  New data after this point is the client's race to lose.
      pollfd last{fd, POLLIN, 0};
      while (::poll(&last, 1, 0) > 0 && (last.revents & POLLIN) != 0) {
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n <= 0) break;
        buffer.append(chunk, static_cast<std::size_t>(n));
      }
      process_buffered();
      open = false;
    }
  }
  ::close(fd);
}

}  // namespace mps::svc

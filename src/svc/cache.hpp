// svc::Cache — a content-addressed, two-tier result cache.
//
// Tier 1 is an in-memory LRU over the serialized payloads; tier 2 is a
// directory of one file per digest.  Keys are 64-hex-char SHA-256 digests
// computed by the caller (see svc::request_digest: canonical .g text +
// options fingerprint + cache schema version), so distinct inputs or
// options can never alias and a schema bump invalidates every old entry by
// changing the key, not by versioned reads.
//
// Durability contract: put() writes <dir>/<digest>.entry via a temp file +
// atomic rename, so a crash mid-write can never leave a half-written entry
// under the final name.  Reads validate a small header (magic, digest,
// payload length); anything corrupt, truncated, or foreign is treated as a
// miss — never an error — and the offending file is removed.
//
// Thread safety: all methods are safe to call concurrently (one mutex; the
// disk I/O happens under it, which is fine at the request rates a synthesis
// daemon sees — entries are a few KB and reads are one open+read).
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace mps::svc {

struct CacheOptions {
  /// On-disk tier directory; empty = memory-only.  Created (one level) on
  /// first put if missing.
  std::string dir;
  /// Max entries held in the in-memory LRU tier; 0 disables the tier.
  std::size_t mem_entries = 256;
};

struct CacheStats {
  std::int64_t mem_hits = 0;
  std::int64_t disk_hits = 0;   ///< served from disk (and promoted to memory)
  std::int64_t misses = 0;
  std::int64_t puts = 0;
  std::int64_t evictions = 0;   ///< memory-tier LRU evictions
  std::int64_t corrupt = 0;     ///< disk entries dropped by validation
  std::int64_t entries_mem = 0; ///< current memory-tier size
};

class Cache {
 public:
  explicit Cache(const CacheOptions& opts = {});

  /// Payload for `digest`, or nullopt.  A disk hit is promoted into the
  /// memory tier.  Bumps the matching obs:: svc.cache.* counter.
  std::optional<std::string> get(const std::string& digest);

  /// Store `payload` under `digest` in both tiers.  Overwrites an existing
  /// entry (same digest => same content by construction, so this is
  /// idempotent).  Disk write failures are swallowed: the cache is an
  /// accelerator, a read-only cache directory must not fail requests.
  void put(const std::string& digest, const std::string& payload);

  CacheStats stats() const;

  /// Path of the disk entry for `digest` ("" when no disk tier).
  std::string entry_path(const std::string& digest) const;

 private:
  void touch_locked(const std::string& digest, const std::string& payload);

  CacheOptions opts_;
  mutable std::mutex mutex_;
  /// LRU: most-recent at front; map values point into the list.
  std::list<std::pair<std::string, std::string>> lru_;
  std::unordered_map<std::string, std::list<std::pair<std::string, std::string>>::iterator>
      index_;
  CacheStats stats_;
};

}  // namespace mps::svc

// svc::Artifact — the serialized synthesis result the service caches and
// ships over the wire, plus the one place that runs a synthesis request.
//
// An artifact carries everything a client needs to reproduce mps_synth's
// outputs byte-for-byte without the state graph: quality numbers, the
// final-graph signal table, per-output covers (positional cube strings),
// the structural Verilog, the verify verdict, and the SolverTotals behind
// bench/table1's schema-3 stats columns.
//
// Identity contract: svc::run_synthesis and examples/mps_synth build their
// per-method option structs through the same default_request_options(), so
// a daemon answer and a local mps_synth run of the same .g text cannot
// drift apart (tested across all Table-1 benchmarks).
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "baseline/lavagno.hpp"
#include "baseline/vanbekbergen.hpp"
#include "core/synthesis.hpp"
#include "logic/cover.hpp"
#include "sat/solver.hpp"
#include "stg/stg.hpp"
#include "svc/json.hpp"

namespace mps::svc {

/// Everything that determines a synthesis request's result.  The embedded
/// option structs default to the values examples/mps_synth uses, so the
/// daemon and the CLI agree; bench/table1 overrides the limits with its own.
struct RequestOptions {
  std::string method = "modular";  ///< modular | direct | lavagno
  /// Worker threads for the modular module loop (results are bit-identical
  /// for any value, so this is NOT part of the fingerprint).
  unsigned threads = 1;
  /// Per-request wall-clock budget; <=0 = none.  Mapped onto the PR-1
  /// sat::SolveOptions::deadline plumbing (via SynthesisOptions::deadline /
  /// the baselines' solve.deadline).  Part of the fingerprint: a deadline
  /// that fires changes results.
  double deadline_s = 0.0;
  core::SynthesisOptions modular;
  baseline::DirectOptions direct;
  baseline::LavagnoOptions lavagno;
};

/// RequestOptions with the per-method limits examples/mps_synth applies
/// (direct: 5M backtracks / 120 s; lavagno: 300 s overall).
RequestOptions default_request_options(const std::string& method);

/// Select the SAT engine for every method's solve options.  The engine is
/// result-affecting and lives inside each method's sat::SolveOptions; this
/// helper keeps the three in sync so a request's fingerprint always matches
/// the options the active method actually runs with.
void set_engine(RequestOptions* opts, sat::Engine engine);

/// Canonical text encoding of every result-affecting RequestOptions field
/// (method, deadline budget, and the active method's option struct).
std::string request_fingerprint(const RequestOptions& opts);

/// The cache key: SHA-256 over the canonical .g text (stg::write_g_canonical),
/// the request fingerprint, and the cache schema version — so a schema bump
/// invalidates old entries by never colliding with their keys.
std::string request_digest(const stg::Stg& spec, const RequestOptions& opts);

struct Artifact {
  /// Bump on any serialization change; deserialize() rejects other versions
  /// (and request_digest folds kVersion into the key, so stale disk entries
  /// are simply never looked up).  v2: solver object gained restarts/learned.
  static constexpr int kVersion = 2;

  std::string name;    ///< spec (STG) name
  std::string method;
  bool success = false;
  bool hit_limit = false;  ///< the baselines' "SAT Backtrack Limit" outcome
  std::string failure_reason;

  std::size_t initial_states = 0, initial_signals = 0;
  std::size_t final_states = 0, final_signals = 0;
  std::size_t literals = 0;

  /// Final-graph signal table, in signal-id order (the variable order of
  /// every cover cube, and the name list mps_synth passes to write_pla).
  std::vector<std::string> signal_names;
  /// Names of the state signals the synthesis inserted (ids >= initial_signals).
  std::vector<std::string> inserted_signals;
  /// One entry per non-input signal: output name + positional cube strings
  /// ("10-1", variables = signal_names).
  std::vector<std::pair<std::string, std::vector<std::string>>> covers;

  std::string verilog;  ///< netlist::write_verilog text ("" when none)
  std::size_t gates = 0, transistors = 0;

  bool verify_ok = false;
  std::vector<std::string> verify_issues;

  sat::SolverTotals solver;
  double seconds = 0.0;  ///< wall time of the original (cold) synthesis

  Json to_json() const;
  std::string serialize() const { return to_json().dump(); }
  /// nullopt on parse failure or version mismatch — cache layers treat
  /// either as a miss, never an error.
  static std::optional<Artifact> deserialize(const std::string& text);

  /// Rebuild the logic::Cover list (for write_pla / verification replay).
  std::vector<std::pair<std::string, logic::Cover>> rebuild_covers() const;
};

/// Execute one request end to end: state graph, the chosen method, logic
/// verification, netlist + Verilog.  Never throws for synthesis-level
/// failures (success=false + failure_reason instead); propagates only
/// programming errors.  This is the single execution path shared by the
/// daemon, bench/table1 --cache-dir, and the identity tests.
Artifact run_synthesis(const stg::Stg& spec, const RequestOptions& opts);

}  // namespace mps::svc

// SHA-256 (FIPS 180-4), hand-rolled: the content-addressed cache needs a
// collision-resistant digest and the container bakes in no crypto library.
// Correctness is pinned against the FIPS test vectors in tests/svc_test.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace mps::svc {

/// 64-character lowercase hex SHA-256 of `data`.
std::string sha256_hex(std::string_view data);

/// Incremental variant for digesting several segments without
/// concatenating: update() any number of times, then hex_digest() once.
class Sha256 {
 public:
  Sha256();
  void update(std::string_view data);
  /// Finalizes; the object must not be update()d afterwards.
  std::string hex_digest();

 private:
  void process_block(const unsigned char* block);

  std::uint32_t state_[8];
  std::uint64_t total_bytes_ = 0;
  unsigned char buffer_[64];
  std::size_t buffered_ = 0;
};

}  // namespace mps::svc

#include "svc/scheduler.hpp"

#include "obs/obs.hpp"
#include "util/common.hpp"
#include "util/thread_pool.hpp"

namespace mps::svc {

/// One keyed unit of work plus its completion latch.  Shared by the queue,
/// the executing worker and every joined waiter.
struct Scheduler::Ticket::Job {
  std::string key;
  Work work;
  std::mutex mutex;
  std::condition_variable done_cv;
  bool done = false;
  Result result;
};

const Scheduler::Result& Scheduler::Ticket::wait() const {
  MPS_ASSERT(job_ != nullptr);
  std::unique_lock<std::mutex> lock(job_->mutex);
  job_->done_cv.wait(lock, [&] { return job_->done; });
  return job_->result;
}

Scheduler::Scheduler(const SchedulerOptions& opts) : opts_(opts) {
  const unsigned n =
      opts_.num_threads == 0 ? util::ThreadPool::hardware_threads() : opts_.num_threads;
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] {
      obs::set_thread_name("svc-worker-" + std::to_string(i));
      worker_loop();
    });
  }
}

Scheduler::~Scheduler() {
  drain();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::pair<Scheduler::Admit, Scheduler::Ticket> Scheduler::submit(const std::string& key,
                                                                 Work work) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = inflight_.find(key); it != inflight_.end()) {
    ++stats_.joined;
    obs::counter_add("svc.singleflight.joined", 1);
    return {Admit::Joined, Ticket(it->second)};
  }
  if (draining_ || queue_.size() >= opts_.queue_cap) {
    ++stats_.rejected;
    obs::counter_add("svc.queue.rejected", 1);
    return {Admit::Overloaded, Ticket()};
  }
  auto job = std::make_shared<Ticket::Job>();
  job->key = key;
  job->work = std::move(work);
  queue_.push_back(job);
  inflight_[key] = job;
  ++stats_.submitted;
  stats_.queue_depth = static_cast<std::int64_t>(queue_.size());
  obs::counter_add("svc.queue.submitted", 1);
  work_cv_.notify_one();
  return {Admit::Started, Ticket(std::move(job))};
}

void Scheduler::worker_loop() {
  for (;;) {
    std::shared_ptr<Ticket::Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      job = std::move(queue_.front());
      queue_.pop_front();
      stats_.queue_depth = static_cast<std::int64_t>(queue_.size());
      ++stats_.running;
    }

    Result result;
    {
      obs::Span span("svc.job", job->key);
      try {
        result = job->work();
      } catch (const std::exception& e) {
        result.error = std::string("job failed: ") + e.what();
      } catch (...) {
        result.error = "job failed: unknown exception";
      }
      span.arg("ok", result.ok() ? 1 : 0);
    }

    {
      std::lock_guard<std::mutex> lock(mutex_);
      inflight_.erase(job->key);
      --stats_.running;
      ++stats_.completed;
    }
    {
      std::lock_guard<std::mutex> job_lock(job->mutex);
      job->result = std::move(result);
      job->done = true;
    }
    job->done_cv.notify_all();
    drain_cv_.notify_all();
  }
}

void Scheduler::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  draining_ = true;
  drain_cv_.wait(lock, [&] { return queue_.empty() && stats_.running == 0; });
}

SchedulerStats Scheduler::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace mps::svc

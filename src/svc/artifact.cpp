#include "svc/artifact.hpp"

#include <chrono>

#include "netlist/build.hpp"
#include "netlist/netlist.hpp"
#include "netlist/verilog.hpp"
#include "obs/obs.hpp"
#include "sg/state_graph.hpp"
#include "stg/writer.hpp"
#include "svc/digest.hpp"
#include "util/common.hpp"
#include "util/text.hpp"
#include "verify/verify.hpp"

namespace mps::svc {

namespace {

/// Result-affecting fields shared by both baseline methods' sub-structs.
std::string solve_fingerprint(const sat::SolveOptions& s) {
  return util::format("engine=%s;max_backtracks=%lld;solve_time_limit_s=%.17g;"
                      "restart_interval=%lld;seed=%llu",
                      sat::engine_name(s.engine), static_cast<long long>(s.max_backtracks),
                      s.time_limit_s, static_cast<long long>(s.restart_interval),
                      static_cast<unsigned long long>(s.seed));
}

std::string encode_fingerprint(const encoding::EncodeOptions& e) {
  return util::format("input_properness=%d;naive_max_m=%zu;enforce_usc=%d",
                      e.input_properness ? 1 : 0, e.naive_max_m, e.enforce_usc ? 1 : 0);
}

std::string minimize_fingerprint(const logic::MinimizeOptions& m) {
  return util::format("try_exact=%d;exact_max_vars=%zu;exact_max_primes=%zu;"
                      "exact_max_branch_nodes=%lld;heuristic_loops=%d",
                      m.try_exact ? 1 : 0, m.exact_max_vars, m.exact_max_primes,
                      static_cast<long long>(m.exact_max_branch_nodes), m.heuristic_loops);
}

std::chrono::steady_clock::time_point request_deadline(const RequestOptions& opts) {
  if (opts.deadline_s <= 0) return {};
  return std::chrono::steady_clock::now() +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             std::chrono::duration<double>(opts.deadline_s));
}

Json string_array(const std::vector<std::string>& v) {
  Json arr = Json::array();
  for (const std::string& s : v) arr.push_back(s);
  return arr;
}

std::optional<std::vector<std::string>> parse_string_array(const Json* v) {
  if (v == nullptr || !v->is_array()) return std::nullopt;
  std::vector<std::string> out;
  for (const Json& item : v->items()) {
    if (!item.is_string()) return std::nullopt;
    out.push_back(item.as_string());
  }
  return out;
}

/// The netlist columns; {0,0,""} when the netlist cannot be built (mirrors
/// bench/table1's gate_counts helper).
void fill_netlist(const sg::StateGraph& g,
                  const std::vector<std::pair<std::string, logic::Cover>>& covers,
                  Artifact* a) {
  try {
    const netlist::Netlist n = netlist::build_netlist(g, covers);
    a->gates = n.num_gates();
    a->transistors = n.transistor_estimate();
    a->verilog = netlist::write_verilog(n);
  } catch (const util::Error&) {
    a->gates = a->transistors = 0;
    a->verilog.clear();
  }
}

void fill_common(const sg::StateGraph& final_graph,
                 const std::vector<std::pair<std::string, logic::Cover>>& covers,
                 Artifact* a) {
  for (sg::SignalId s = 0; s < final_graph.num_signals(); ++s) {
    a->signal_names.push_back(final_graph.signal(s).name);
    if (s >= a->initial_signals) a->inserted_signals.push_back(final_graph.signal(s).name);
  }
  for (const auto& [output, cover] : covers) {
    std::vector<std::string> cubes;
    cubes.reserve(cover.size());
    for (const logic::Cube& c : cover.cubes()) cubes.push_back(c.to_string());
    a->covers.emplace_back(output, std::move(cubes));
  }
  const auto report = verify::verify_synthesis(final_graph, covers);
  a->verify_ok = report.ok();
  a->verify_issues = report.issues;
  fill_netlist(final_graph, covers, a);
}

}  // namespace

RequestOptions default_request_options(const std::string& method) {
  RequestOptions opts;
  opts.method = method;
  // The examples/mps_synth per-method limits; keep the two in sync by
  // construction — mps_synth builds its options from this function.
  opts.direct.solve.max_backtracks = 5'000'000;
  opts.direct.solve.time_limit_s = 120.0;
  opts.lavagno.time_limit_s = 300.0;
  return opts;
}

void set_engine(RequestOptions* opts, sat::Engine engine) {
  opts->modular.sat.solve.engine = engine;
  opts->direct.solve.engine = engine;
  opts->lavagno.solve.engine = engine;
}

std::string request_fingerprint(const RequestOptions& opts) {
  std::string fp =
      util::format("req-v1;method=%s;deadline_s=%.17g;", opts.method.c_str(), opts.deadline_s);
  if (opts.method == "modular") {
    fp += core::options_fingerprint(opts.modular);
  } else if (opts.method == "direct") {
    const auto& d = opts.direct;
    fp += "direct-v2;" + encode_fingerprint(d.encode) + ";" + solve_fingerprint(d.solve) +
          ";" + minimize_fingerprint(d.minimize) + ";" +
          util::format("max_new_signals=%zu;max_rounds=%d;derive_logic=%d",
                       d.max_new_signals, d.max_rounds, d.derive_logic ? 1 : 0);
  } else if (opts.method == "lavagno") {
    const auto& l = opts.lavagno;
    fp += "lavagno-v2;" + solve_fingerprint(l.solve) + ";" + minimize_fingerprint(l.minimize) +
          ";" + encode_fingerprint(l.encode) + ";" +
          util::format("max_insertions=%d;max_signals_per_class=%zu;time_limit_s=%.17g;"
                       "derive_logic=%d",
                       l.max_insertions, l.max_signals_per_class, l.time_limit_s,
                       l.derive_logic ? 1 : 0);
  } else {
    throw util::Error("unknown synthesis method: " + opts.method);
  }
  return fp;
}

std::string request_digest(const stg::Stg& spec, const RequestOptions& opts) {
  Sha256 h;
  h.update(stg::write_g_canonical(spec));
  h.update(std::string_view("\x00", 1));  // unambiguous segment separator
  h.update(request_fingerprint(opts));
  h.update(std::string_view("\x00", 1));
  h.update("artifact-v" + std::to_string(Artifact::kVersion));
  return h.hex_digest();
}

Artifact run_synthesis(const stg::Stg& spec, const RequestOptions& opts) {
  obs::Span span("svc.synth", spec.name());
  Artifact a;
  a.name = spec.name();
  a.method = opts.method;

  const sg::StateGraph g = sg::StateGraph::from_stg(spec);
  const auto deadline = request_deadline(opts);

  if (opts.method == "modular") {
    core::SynthesisOptions mopts = opts.modular;
    mopts.num_threads = opts.threads;
    mopts.deadline = deadline;
    const auto r = core::modular_synthesis(g, mopts);
    a.success = r.success;
    a.failure_reason = r.failure_reason;
    a.initial_states = r.initial_states;
    a.initial_signals = r.initial_signals;
    a.final_states = r.final_states;
    a.final_signals = r.final_signals;
    a.literals = r.total_literals;
    a.solver = r.solver_totals;
    a.seconds = r.seconds;
    if (r.success) fill_common(r.final_graph, r.covers, &a);
  } else if (opts.method == "direct") {
    baseline::DirectOptions vopts = opts.direct;
    vopts.solve.deadline = deadline;
    const auto r = baseline::direct_synthesis(g, vopts);
    a.success = r.success;
    a.hit_limit = r.hit_limit;
    a.failure_reason = r.failure_reason;
    a.initial_states = r.initial_states;
    a.initial_signals = r.initial_signals;
    a.final_states = r.final_states;
    a.final_signals = r.final_signals;
    a.literals = r.total_literals;
    a.solver = r.solver_totals;
    a.seconds = r.seconds;
    if (r.success) fill_common(r.final_graph, r.covers, &a);
  } else if (opts.method == "lavagno") {
    baseline::LavagnoOptions lopts = opts.lavagno;
    lopts.solve.deadline = deadline;
    const auto r = baseline::lavagno_synthesis(g, lopts);
    a.success = r.success;
    a.hit_limit = r.hit_limit;
    a.failure_reason = r.failure_reason;
    a.initial_states = r.initial_states;
    a.initial_signals = r.initial_signals;
    a.final_states = r.final_states;
    a.final_signals = r.final_signals;
    a.literals = r.total_literals;
    a.solver = r.solver_totals;
    a.seconds = r.seconds;
    if (r.success) fill_common(r.final_graph, r.covers, &a);
  } else {
    throw util::Error("unknown synthesis method: " + opts.method);
  }

  span.arg("success", a.success ? 1 : 0);
  span.arg("final_states", static_cast<std::int64_t>(a.final_states));
  return a;
}

Json Artifact::to_json() const {
  Json j = Json::object();
  j.set("artifact_version", Json(kVersion));
  j.set("name", name);
  j.set("method", method);
  j.set("success", Json(success));
  j.set("hit_limit", Json(hit_limit));
  j.set("failure_reason", failure_reason);
  j.set("initial_states", initial_states);
  j.set("initial_signals", initial_signals);
  j.set("final_states", final_states);
  j.set("final_signals", final_signals);
  j.set("literals", literals);
  j.set("signal_names", string_array(signal_names));
  j.set("inserted_signals", string_array(inserted_signals));
  Json cover_arr = Json::array();
  for (const auto& [output, cubes] : covers) {
    Json entry = Json::object();
    entry.set("output", output);
    entry.set("cubes", string_array(cubes));
    cover_arr.push_back(std::move(entry));
  }
  j.set("covers", std::move(cover_arr));
  j.set("verilog", verilog);
  j.set("gates", gates);
  j.set("transistors", transistors);
  j.set("verify_ok", Json(verify_ok));
  j.set("verify_issues", string_array(verify_issues));
  Json solver_obj = Json::object();
  solver_obj.set("decisions", Json(solver.decisions));
  solver_obj.set("propagations", Json(solver.propagations));
  solver_obj.set("conflicts", Json(solver.conflicts));
  solver_obj.set("restarts", Json(solver.restarts));
  solver_obj.set("learned", Json(solver.learned));
  j.set("solver", std::move(solver_obj));
  j.set("seconds", Json(seconds));
  return j;
}

std::optional<Artifact> Artifact::deserialize(const std::string& text) {
  Json j;
  try {
    j = Json::parse(text);
  } catch (const util::Error&) {
    return std::nullopt;
  }
  if (!j.is_object() || j.get_int("artifact_version", -1) != kVersion) return std::nullopt;

  Artifact a;
  a.name = j.get_string("name", "");
  a.method = j.get_string("method", "");
  a.success = j.get_bool("success", false);
  a.hit_limit = j.get_bool("hit_limit", false);
  a.failure_reason = j.get_string("failure_reason", "");
  a.initial_states = static_cast<std::size_t>(j.get_int("initial_states", 0));
  a.initial_signals = static_cast<std::size_t>(j.get_int("initial_signals", 0));
  a.final_states = static_cast<std::size_t>(j.get_int("final_states", 0));
  a.final_signals = static_cast<std::size_t>(j.get_int("final_signals", 0));
  a.literals = static_cast<std::size_t>(j.get_int("literals", 0));

  auto names = parse_string_array(j.find("signal_names"));
  auto inserted = parse_string_array(j.find("inserted_signals"));
  auto issues = parse_string_array(j.find("verify_issues"));
  if (!names.has_value() || !inserted.has_value() || !issues.has_value()) {
    return std::nullopt;
  }
  a.signal_names = std::move(*names);
  a.inserted_signals = std::move(*inserted);
  a.verify_issues = std::move(*issues);

  const Json* cover_arr = j.find("covers");
  if (cover_arr == nullptr || !cover_arr->is_array()) return std::nullopt;
  for (const Json& entry : cover_arr->items()) {
    if (!entry.is_object()) return std::nullopt;
    auto cubes = parse_string_array(entry.find("cubes"));
    if (!cubes.has_value()) return std::nullopt;
    a.covers.emplace_back(entry.get_string("output", ""), std::move(*cubes));
  }

  a.verilog = j.get_string("verilog", "");
  a.gates = static_cast<std::size_t>(j.get_int("gates", 0));
  a.transistors = static_cast<std::size_t>(j.get_int("transistors", 0));
  a.verify_ok = j.get_bool("verify_ok", false);
  if (const Json* solver_obj = j.find("solver"); solver_obj != nullptr) {
    a.solver.decisions = solver_obj->get_int("decisions", 0);
    a.solver.propagations = solver_obj->get_int("propagations", 0);
    a.solver.conflicts = solver_obj->get_int("conflicts", 0);
    a.solver.restarts = solver_obj->get_int("restarts", 0);
    a.solver.learned = solver_obj->get_int("learned", 0);
  }
  a.seconds = j.get_double("seconds", 0.0);
  return a;
}

std::vector<std::pair<std::string, logic::Cover>> Artifact::rebuild_covers() const {
  std::vector<std::pair<std::string, logic::Cover>> out;
  for (const auto& [output, cubes] : covers) {
    logic::Cover cover(signal_names.size());
    for (const std::string& pattern : cubes) cover.add(logic::Cube::from_string(pattern));
    out.emplace_back(output, std::move(cover));
  }
  return out;
}

}  // namespace mps::svc

#include "svc/json.hpp"

#include <cmath>
#include <cstdio>

#include "util/common.hpp"
#include "util/text.hpp"

namespace mps::svc {

bool Json::as_bool() const {
  MPS_ASSERT(kind_ == Kind::Bool);
  return bool_;
}

std::int64_t Json::as_int() const {
  if (kind_ == Kind::Double) {
    MPS_ASSERT(double_ == std::floor(double_));
    return static_cast<std::int64_t>(double_);
  }
  MPS_ASSERT(kind_ == Kind::Int);
  return int_;
}

double Json::as_double() const {
  if (kind_ == Kind::Int) return static_cast<double>(int_);
  MPS_ASSERT(kind_ == Kind::Double);
  return double_;
}

const std::string& Json::as_string() const {
  MPS_ASSERT(kind_ == Kind::String);
  return str_;
}

const std::vector<Json>& Json::items() const {
  MPS_ASSERT(kind_ == Kind::Array);
  return arr_;
}

void Json::push_back(Json v) {
  MPS_ASSERT(kind_ == Kind::Array);
  arr_.push_back(std::move(v));
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  MPS_ASSERT(kind_ == Kind::Object);
  return obj_;
}

const Json* Json::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::set(std::string key, Json v) {
  MPS_ASSERT(kind_ == Kind::Object);
  obj_.emplace_back(std::move(key), std::move(v));
}

std::int64_t Json::get_int(std::string_view key, std::int64_t fallback) const {
  const Json* v = find(key);
  return v != nullptr && v->is_number() ? v->as_int() : fallback;
}

double Json::get_double(std::string_view key, double fallback) const {
  const Json* v = find(key);
  return v != nullptr && v->is_number() ? v->as_double() : fallback;
}

bool Json::get_bool(std::string_view key, bool fallback) const {
  const Json* v = find(key);
  return v != nullptr && v->kind() == Kind::Bool ? v->as_bool() : fallback;
}

std::string Json::get_string(std::string_view key, const std::string& fallback) const {
  const Json* v = find(key);
  return v != nullptr && v->is_string() ? v->as_string() : fallback;
}

namespace {

void dump_string(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += util::format("\\u%04x", c);
        } else {
          out->push_back(c);  // UTF-8 bytes pass through verbatim
        }
    }
  }
  out->push_back('"');
}

void dump_value(const Json& v, std::string* out) {
  switch (v.kind()) {
    case Json::Kind::Null: *out += "null"; break;
    case Json::Kind::Bool: *out += v.as_bool() ? "true" : "false"; break;
    case Json::Kind::Int: *out += std::to_string(v.as_int()); break;
    case Json::Kind::Double: {
      const double d = v.as_double();
      if (std::isfinite(d)) {
        std::string text = util::format("%.17g", d);
        // Keep the Double kind through a round trip: "5" would parse back
        // as an Int, so integral values must carry a decimal point.
        if (text.find_first_of(".eE") == std::string::npos) text += ".0";
        *out += text;
      } else {
        *out += "null";  // JSON has no Inf/NaN; artifacts never produce them
      }
      break;
    }
    case Json::Kind::String: dump_string(v.as_string(), out); break;
    case Json::Kind::Array: {
      out->push_back('[');
      bool first = true;
      for (const Json& item : v.items()) {
        if (!first) out->push_back(',');
        first = false;
        dump_value(item, out);
      }
      out->push_back(']');
      break;
    }
    case Json::Kind::Object: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : v.members()) {
        if (!first) out->push_back(',');
        first = false;
        dump_string(key, out);
        out->push_back(':');
        dump_value(value, out);
      }
      out->push_back('}');
      break;
    }
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json run() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw util::ParseError("JSON: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json();
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      const char next = peek();
      ++pos_;
      if (next == '}') return obj;
      if (next != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      const char next = peek();
      ++pos_;
      if (next == ']') return arr;
      if (next != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Encode as UTF-8.  Surrogate pairs are not combined — the
          // serializer only ever emits \u00xx for control characters.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") fail("bad number");
    if (!is_double) {
      try {
        return Json(static_cast<std::int64_t>(std::stoll(token)));
      } catch (const std::exception&) {
        is_double = true;  // out of int64 range; fall through to double
      }
    }
    try {
      return Json(std::stod(token));
    } catch (const std::exception&) {
      fail("bad number '" + token + "'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string Json::dump() const {
  std::string out;
  dump_value(*this, &out);
  return out;
}

Json Json::parse(std::string_view text) { return Parser(text).run(); }

}  // namespace mps::svc

#include "svc/service.hpp"

#include "obs/obs.hpp"
#include "stg/parser.hpp"
#include "svc/artifact.hpp"
#include "svc/json.hpp"
#include "util/common.hpp"
#include "util/text.hpp"

namespace mps::svc {

std::string protocol_error(const std::string& op, const std::string& kind,
                           const std::string& message) {
  Json j = Json::object();
  j.set("ok", Json(false));
  j.set("op", op);
  j.set("kind", kind);
  j.set("error", message);
  return j.dump();
}

std::optional<SynthRequest> parse_synth_request(const Json& req, std::string* error_line) {
  const Json* g_text = req.find("g");
  if (g_text == nullptr || !g_text->is_string()) {
    *error_line = protocol_error("synth", "bad_request", "missing string field 'g'");
    return std::nullopt;
  }
  const std::string method = req.get_string("method", "modular");
  if (method != "modular" && method != "direct" && method != "lavagno") {
    *error_line = protocol_error(
        "synth", "bad_request",
        "unknown method: '" + method + "' (expected modular|direct|lavagno)");
    return std::nullopt;
  }
  const std::string engine_str = req.get_string("engine", "dpll");
  const auto engine = sat::engine_from_name(engine_str);
  if (!engine.has_value()) {
    *error_line = protocol_error(
        "synth", "bad_request", "unknown engine: '" + engine_str + "' (expected dpll|cdcl)");
    return std::nullopt;
  }

  SynthRequest out;
  try {
    out.spec = stg::parse_g(g_text->as_string());
  } catch (const util::Error& e) {
    *error_line = protocol_error("synth", "parse", e.what());
    return std::nullopt;
  }
  out.options = default_request_options(method);
  out.options.threads = static_cast<unsigned>(req.get_int("threads", 1));
  out.options.deadline_s = req.get_double("deadline_s", 0.0);
  set_engine(&out.options, *engine);
  out.digest = request_digest(out.spec, out.options);
  return out;
}

namespace {

std::string error_response(const std::string& op, const std::string& kind,
                           const std::string& message) {
  return protocol_error(op, kind, message);
}

Json scheduler_stats_json(const SchedulerStats& s, std::size_t queue_cap) {
  Json j = Json::object();
  j.set("submitted", Json(s.submitted));
  j.set("joined", Json(s.joined));
  j.set("rejected", Json(s.rejected));
  j.set("completed", Json(s.completed));
  j.set("queue_depth", Json(s.queue_depth));
  j.set("running", Json(s.running));
  j.set("queue_cap", queue_cap);
  return j;
}

Json cache_stats_json(const CacheStats& s) {
  Json j = Json::object();
  j.set("mem_hits", Json(s.mem_hits));
  j.set("disk_hits", Json(s.disk_hits));
  j.set("misses", Json(s.misses));
  j.set("puts", Json(s.puts));
  j.set("evictions", Json(s.evictions));
  j.set("corrupt", Json(s.corrupt));
  j.set("entries_mem", Json(s.entries_mem));
  return j;
}

}  // namespace

Service::Service(const ServiceOptions& opts)
    : opts_(opts), cache_(opts.cache), sched_(opts.sched) {}

std::string Service::handle_line(const std::string& line) {
  obs::Span span("svc.request");
  obs::counter_add("svc.requests", 1);
  Json req;
  try {
    req = Json::parse(line);
  } catch (const util::Error& e) {
    return error_response("", "bad_request", e.what());
  }
  if (!req.is_object()) return error_response("", "bad_request", "request must be an object");
  const std::string op = req.get_string("op", "");

  try {
    if (op == "ping") {
      Json j = Json::object();
      j.set("ok", Json(true));
      j.set("op", "ping");
      return j.dump();
    }
    if (op == "version") {
      const std::int64_t asked = req.get_int("protocol", kProtocolVersion);
      if (asked != kProtocolVersion) {
        Json j = Json::parse(protocol_error(
            "version", "version",
            util::format("protocol mismatch: client %lld, server %lld",
                         static_cast<long long>(asked),
                         static_cast<long long>(kProtocolVersion))));
        j.set("protocol", Json(kProtocolVersion));
        return j.dump();
      }
      Json j = Json::object();
      j.set("ok", Json(true));
      j.set("op", "version");
      j.set("protocol", Json(kProtocolVersion));
      return j.dump();
    }
    if (op == "synth") return handle_synth(req);
    if (op == "stats") return handle_stats();
    if (op == "drain") {
      drain_requested_.store(true);
      Json j = Json::object();
      j.set("ok", Json(true));
      j.set("op", "drain");
      return j.dump();
    }
    return error_response(op, "bad_request", "unknown op: '" + op + "'");
  } catch (const std::exception& e) {
    return error_response(op, "internal", e.what());
  }
}

std::string Service::handle_synth(const Json& req) {
  obs::Span span("svc.synth_request");
  synth_requests_.fetch_add(1);

  std::string error_line;
  auto parsed = parse_synth_request(req, &error_line);
  if (!parsed.has_value()) return error_line;
  const stg::Stg& spec = parsed->spec;
  const RequestOptions& ropts = parsed->options;
  const std::string& digest = parsed->digest;
  span.arg("threads", ropts.threads);

  auto respond = [&](const std::string& payload, bool cached) -> std::string {
    Json artifact;
    try {
      artifact = Json::parse(payload);
    } catch (const util::Error& e) {
      return error_response("synth", "internal",
                            std::string("artifact serialization: ") + e.what());
    }
    if (cached) cached_responses_.fetch_add(1);
    Json j = Json::object();
    j.set("ok", Json(true));
    j.set("op", "synth");
    j.set("cached", Json(cached));
    j.set("digest", digest);
    j.set("artifact", std::move(artifact));
    return j.dump();
  };

  if (auto payload = cache_.get(digest); payload.has_value()) {
    return respond(*payload, /*cached=*/true);
  }

  auto [admit, ticket] = sched_.submit(digest, [this, spec, ropts, digest] {
    Scheduler::Result result;
    result.payload = run_synthesis(spec, ropts).serialize();
    cache_.put(digest, result.payload);
    return result;
  });
  if (admit == Scheduler::Admit::Overloaded) {
    return error_response("synth", "overloaded",
                          "queue full or draining; retry later");
  }
  const Scheduler::Result& result = ticket.wait();
  if (!result.ok()) return error_response("synth", "internal", result.error);
  return respond(result.payload, /*cached=*/false);
}

std::string Service::handle_stats() {
  Json j = Json::object();
  j.set("ok", Json(true));
  j.set("op", "stats");
  j.set("cache", cache_stats_json(cache_.stats()));
  j.set("scheduler", scheduler_stats_json(sched_.stats(), opts_.sched.queue_cap));
  j.set("synth_requests", Json(synth_requests_.load()));
  j.set("cached_responses", Json(cached_responses_.load()));
  Json counters = Json::object();
  for (const char* name :
       {"svc.requests", "svc.cache.hit.mem", "svc.cache.hit.disk", "svc.cache.miss",
        "svc.cache.put", "svc.queue.submitted", "svc.queue.rejected",
        "svc.singleflight.joined", "net.accepted", "net.requests", "net.oversized",
        "net.frame_timeout"}) {
    counters.set(name, Json(obs::counter_value(name)));
  }
  j.set("counters", std::move(counters));
  return j.dump();
}

}  // namespace mps::svc

// svc::Service — the transport-independent request handler: one JSON line
// in, one JSON line out.  The Unix-socket server (svc/server.hpp) and the
// in-process tests both speak to this class, so the protocol is testable
// without sockets.
//
// Protocol (newline-delimited JSON; one object per line; see DESIGN.md §10
// for the grammar):
//   {"op":"ping"}                       -> {"ok":true,"op":"ping"}
//   {"op":"version","protocol":V}       -> {"ok":true,"op":"version",
//                                           "protocol":kProtocolVersion}
//   {"op":"synth","g":"<.g text>",      -> {"ok":true,"op":"synth","cached":B,
//    "method":"modular","threads":N,        "digest":"<64 hex>",
//    "deadline_s":S}                        "artifact":{...}}   (svc::Artifact)
//   {"op":"stats"}                      -> {"ok":true,"op":"stats",...}
//   {"op":"drain"}                      -> {"ok":true,"op":"drain"}  + drain flag
// Error responses: {"ok":false,"op":"<op>","kind":"<k>","error":"<msg>"}
// with kind in {bad_request, parse, overloaded, internal, version,
// unavailable}.  A synthesis that *ran* but failed (CSC unresolved,
// deadline fired) is NOT a protocol error: the response is ok:true with
// artifact.success=false, mirroring mps_synth's exit-1-with-reason
// behaviour.
//
// The version op is the session handshake (net/session.hpp): a client that
// cares about compatibility sends it first; a mismatched "protocol" gets
// kind:"version" back (with the server's version) and should disconnect.
// Requests without a handshake are served at the current version — the PR-5
// wire format is version 1, so old AF_UNIX clients keep working.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "stg/stg.hpp"
#include "svc/artifact.hpp"
#include "svc/cache.hpp"
#include "svc/scheduler.hpp"

namespace mps::svc {

/// NDJSON protocol version; bump on incompatible wire changes.
constexpr std::int64_t kProtocolVersion = 1;

/// One protocol error line: {"ok":false,"op":op,"kind":kind,"error":msg}.
/// Shared by Service, the transport loops (oversized frames), and the front
/// door, so every error a client can see has the same shape.
std::string protocol_error(const std::string& op, const std::string& kind,
                           const std::string& message);

/// A validated synth request: the parsed spec, the full request options and
/// the routing/cache digest.  parse_synth_request() is the one place the
/// wire fields (g/method/engine/threads/deadline_s) are interpreted —
/// Service executes the result locally, the front door routes on `digest`.
struct SynthRequest {
  stg::Stg spec;
  RequestOptions options;
  std::string digest;
};

/// Validate + parse a {"op":"synth"} request.  On failure returns nullopt
/// and sets *error_line to the exact response to send.
std::optional<SynthRequest> parse_synth_request(const Json& req, std::string* error_line);

struct ServiceOptions {
  CacheOptions cache;
  SchedulerOptions sched;
};

class Service {
 public:
  explicit Service(const ServiceOptions& opts);

  /// Handle one request line (no trailing newline); always returns exactly
  /// one response line (no trailing newline), never throws.  Safe to call
  /// concurrently from any number of connection threads; a synth miss
  /// blocks the calling thread until the scheduler ran the job.
  std::string handle_line(const std::string& line);

  /// True once a {"op":"drain"} request was handled; the transport is
  /// expected to stop accepting and shut down (Server::run polls this).
  bool drain_requested() const { return drain_requested_.load(); }

  /// Stop admission and run every admitted job to completion.
  void drain() { sched_.drain(); }

  Cache& cache() { return cache_; }
  Scheduler& scheduler() { return sched_; }

 private:
  std::string handle_synth(const class Json& req);
  std::string handle_stats();

  ServiceOptions opts_;
  Cache cache_;
  Scheduler sched_;
  std::atomic<bool> drain_requested_{false};
  std::atomic<std::int64_t> synth_requests_{0};
  std::atomic<std::int64_t> cached_responses_{0};
};

}  // namespace mps::svc

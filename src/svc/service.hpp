// svc::Service — the transport-independent request handler: one JSON line
// in, one JSON line out.  The Unix-socket server (svc/server.hpp) and the
// in-process tests both speak to this class, so the protocol is testable
// without sockets.
//
// Protocol (newline-delimited JSON; one object per line; see DESIGN.md §10
// for the grammar):
//   {"op":"ping"}                       -> {"ok":true,"op":"ping"}
//   {"op":"synth","g":"<.g text>",      -> {"ok":true,"op":"synth","cached":B,
//    "method":"modular","threads":N,        "digest":"<64 hex>",
//    "deadline_s":S}                        "artifact":{...}}   (svc::Artifact)
//   {"op":"stats"}                      -> {"ok":true,"op":"stats",...}
//   {"op":"drain"}                      -> {"ok":true,"op":"drain"}  + drain flag
// Error responses: {"ok":false,"op":"<op>","kind":"<k>","error":"<msg>"}
// with kind in {bad_request, parse, overloaded, internal}.  A synthesis
// that *ran* but failed (CSC unresolved, deadline fired) is NOT a protocol
// error: the response is ok:true with artifact.success=false, mirroring
// mps_synth's exit-1-with-reason behaviour.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "svc/cache.hpp"
#include "svc/scheduler.hpp"

namespace mps::svc {

struct ServiceOptions {
  CacheOptions cache;
  SchedulerOptions sched;
};

class Service {
 public:
  explicit Service(const ServiceOptions& opts);

  /// Handle one request line (no trailing newline); always returns exactly
  /// one response line (no trailing newline), never throws.  Safe to call
  /// concurrently from any number of connection threads; a synth miss
  /// blocks the calling thread until the scheduler ran the job.
  std::string handle_line(const std::string& line);

  /// True once a {"op":"drain"} request was handled; the transport is
  /// expected to stop accepting and shut down (Server::run polls this).
  bool drain_requested() const { return drain_requested_.load(); }

  /// Stop admission and run every admitted job to completion.
  void drain() { sched_.drain(); }

  Cache& cache() { return cache_; }
  Scheduler& scheduler() { return sched_; }

 private:
  std::string handle_synth(const class Json& req);
  std::string handle_stats();

  ServiceOptions opts_;
  Cache cache_;
  Scheduler sched_;
  std::atomic<bool> drain_requested_{false};
  std::atomic<std::int64_t> synth_requests_{0};
  std::atomic<std::int64_t> cached_responses_{0};
};

}  // namespace mps::svc

// svc::Server — a Unix-domain-socket daemon around svc::Service.
//
// One accept loop (poll on the listen socket plus a self-pipe wake fd), one
// thread per connection reading newline-delimited JSON requests and writing
// one response line per request.  POSIX sockets only, no framework.
//
// Graceful drain (SIGTERM, or a {"op":"drain"} request):
//   1. stop accepting — the listen socket closes immediately;
//   2. connection threads stop reading *new* requests, but every request
//      whose line was already received is processed and answered (the
//      scheduler runs every admitted job to completion — no accepted
//      request ever loses its response);
//   3. run() returns once all connections closed and the queue is empty;
//      the daemon then exits 0.
// A client blocked waiting for a response keeps its connection until that
// response is written; an idle client is disconnected (EOF) right away.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "svc/service.hpp"

namespace mps::svc {

struct ServerOptions {
  std::string socket_path;
  ServiceOptions service;
};

class Server {
 public:
  explicit Server(const ServerOptions& opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen on the socket path (an existing socket file is replaced).
  /// Throws util::Error on failure.  Separate from run() so callers can
  /// report "listening" before blocking.
  void start();

  /// Accept and serve until a drain is requested, then shut down gracefully
  /// (see file comment) and return.  Call start() first.
  void run();

  /// Trigger a graceful drain from another thread.  Also what the SIGTERM
  /// handler invokes via the self-pipe (the handler itself only write()s).
  void request_drain();

  /// Route SIGTERM and SIGINT to request_drain() for this instance (at most
  /// one instance per process may install handlers).
  void install_signal_handlers();

  Service& service() { return service_; }
  const std::string& socket_path() const { return opts_.socket_path; }

 private:
  void connection_loop(int fd);

  ServerOptions opts_;
  Service service_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> draining_{false};
  std::mutex threads_mutex_;
  std::vector<std::thread> connections_;
};

}  // namespace mps::svc

// svc::Server — the synthesis daemon around svc::Service, on either
// transport: an AF_UNIX socket path or a TCP host:port (net::Endpoint).
// The accept loop, session handling, framing, limits and drain semantics
// are one code path — the transports differ only in listen_on/connect_to.
//
// One accept loop (poll on the listen socket plus a self-pipe wake fd), one
// thread per connection running a net::Session (handshake -> streaming ->
// draining state machine, NDJSON framing, frame-size cap, per-session
// timeouts).  POSIX sockets only, no framework.
//
// Graceful drain (SIGTERM, or a {"op":"drain"} request):
//   1. stop accepting — the listen socket closes immediately;
//   2. connection threads stop reading *new* requests, but every request
//      whose line was already received is processed and answered (the
//      scheduler runs every admitted job to completion — no accepted
//      request ever loses its response);
//   3. run() returns once all connections closed and the queue is empty;
//      the daemon then exits 0.
// A client blocked waiting for a response keeps its connection until that
// response is written; an idle client is disconnected (EOF) right away.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/endpoint.hpp"
#include "net/session.hpp"
#include "svc/service.hpp"

namespace mps::svc {

struct ServerOptions {
  /// AF_UNIX transport: the socket path (kept as its own field for the
  /// PR-5 call sites; wins over `listen` when both are set).
  std::string socket_path;
  /// Any net::Endpoint text — "host:port" for TCP, a path for AF_UNIX.
  /// TCP port 0 binds a kernel-assigned port; see bound_endpoint().
  std::string listen;
  /// listen(2) backlog (was hardcoded 64 before PR 8).
  int backlog = 64;
  /// Max bytes of one request line; longer frames get a JSON error + close
  /// instead of unbounded buffering.
  std::size_t max_line_bytes = 8u << 20;
  /// Per-session frame/write timeouts (0 = none): a frame that stays
  /// incomplete longer than frame_timeout_s, or a response write blocked
  /// longer than write_timeout_s, closes that session only.
  double frame_timeout_s = 30.0;
  double write_timeout_s = 30.0;
  ServiceOptions service;
};

class Server {
 public:
  explicit Server(const ServerOptions& opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen on the configured endpoint (an existing Unix socket file
  /// is replaced).  Throws util::Error on failure.  Separate from run() so
  /// callers can report "listening" before blocking.
  void start();

  /// Accept and serve until a drain is requested, then shut down gracefully
  /// (see file comment) and return.  Call start() first.
  void run();

  /// Trigger a graceful drain from another thread.  Also what the SIGTERM
  /// handler invokes via the self-pipe (the handler itself only write()s).
  void request_drain();

  /// Abrupt stop for failure-injection tests: close the listen socket and
  /// shut down every live session's transport without answering anything
  /// in flight, making run() return as fast as possible.  Looks exactly
  /// like a crashed worker to peers (mid-request EOF / reset).
  void shutdown_hard();

  /// Route SIGTERM and SIGINT to request_drain() for this instance (at most
  /// one instance per process may install handlers).
  void install_signal_handlers();

  Service& service() { return service_; }
  const std::string& socket_path() const { return opts_.socket_path; }
  /// The endpoint actually bound (TCP port 0 resolved); valid after start().
  const net::Endpoint& bound_endpoint() const { return bound_; }

 private:
  void connection_loop(std::shared_ptr<net::Session> session);

  ServerOptions opts_;
  Service service_;
  net::Endpoint endpoint_;
  net::Endpoint bound_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> draining_{false};
  std::atomic<bool> hard_stop_{false};
  std::mutex threads_mutex_;
  std::vector<std::thread> connections_;
  /// Live sessions, for shutdown_hard()'s transport teardown.
  std::vector<std::weak_ptr<net::Session>> sessions_;
};

}  // namespace mps::svc

// Minimal JSON for the service layer: the wire protocol (newline-delimited
// JSON over a Unix socket) and the cache artifact format.  No external
// dependency; the subset implemented is exactly what the protocol needs —
// null/bool/number/string/array/object, with objects kept as *ordered*
// key-value vectors so dump(parse(dump(v))) is byte-identical (the cache
// digests serialized artifacts, so serialization must be deterministic).
//
// Numbers distinguish integers from doubles: every count in an artifact is
// an int64 (rendered without a decimal point, so 5 never becomes 5.0 across
// a round trip); doubles are rendered with %.17g (round-trip exact).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mps::svc {

class Json {
 public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  Json() = default;  // null
  Json(bool b) : kind_(Kind::Bool), bool_(b) {}
  Json(std::int64_t v) : kind_(Kind::Int), int_(v) {}
  Json(int v) : kind_(Kind::Int), int_(v) {}
  Json(std::size_t v) : kind_(Kind::Int), int_(static_cast<std::int64_t>(v)) {}
  Json(double v) : kind_(Kind::Double), double_(v) {}
  Json(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
  Json(const char* s) : kind_(Kind::String), str_(s) {}

  static Json array() {
    Json j;
    j.kind_ = Kind::Array;
    return j;
  }
  static Json object() {
    Json j;
    j.kind_ = Kind::Object;
    return j;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_object() const { return kind_ == Kind::Object; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_number() const { return kind_ == Kind::Int || kind_ == Kind::Double; }

  bool as_bool() const;                ///< MPS_ASSERTs on kind mismatch
  std::int64_t as_int() const;         ///< Int, or a Double with integral value
  double as_double() const;            ///< Int or Double
  const std::string& as_string() const;

  /// Array access.
  const std::vector<Json>& items() const;
  void push_back(Json v);

  /// Object access.  Lookup is linear — protocol objects are small.
  const std::vector<std::pair<std::string, Json>>& members() const;
  /// nullptr when absent or not an object.
  const Json* find(std::string_view key) const;
  /// Append (no duplicate-key check; callers build objects once).
  void set(std::string key, Json v);

  /// Typed convenience lookups for protocol parsing: value of `key` when
  /// present and of the right kind, `fallback` otherwise.
  std::int64_t get_int(std::string_view key, std::int64_t fallback) const;
  double get_double(std::string_view key, double fallback) const;
  bool get_bool(std::string_view key, bool fallback) const;
  std::string get_string(std::string_view key, const std::string& fallback) const;

  /// Compact single-line rendering (deterministic; see file comment).
  std::string dump() const;

  /// Parse a complete JSON document; trailing non-whitespace, unterminated
  /// strings, bad escapes etc. throw util::ParseError.
  static Json parse(std::string_view text);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace mps::svc

#include "svc/client.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include <unistd.h>

#include "net/io.hpp"
#include "svc/service.hpp"  // kProtocolVersion
#include "util/common.hpp"
#include "util/text.hpp"

namespace mps::svc {

Client::Client(const std::string& target, const ClientOptions& opts)
    : Client(net::Endpoint::parse(target), opts) {}

Client::Client(const net::Endpoint& endpoint, const ClientOptions& opts)
    : endpoint_(endpoint), opts_(opts) {
  connect();
}

void Client::connect() {
  const int attempts = opts_.connect_attempts < 1 ? 1 : opts_.connect_attempts;
  double backoff = opts_.backoff_s;
  std::string last_error;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      backoff = std::min(backoff * 2.0, opts_.backoff_max_s);
    }
    try {
      fd_ = net::connect_to(endpoint_, opts_.connect_timeout_s);
      break;
    } catch (const util::Error& e) {
      last_error = e.what();
      fd_ = -1;
    }
  }
  if (fd_ < 0) {
    throw util::Error(util::format("svc: connect(%s) failed after %d attempt(s): %s",
                                   endpoint_.str().c_str(), attempts, last_error.c_str()));
  }
  if (opts_.handshake) {
    try {
      version();
    } catch (...) {
      ::close(fd_);
      fd_ = -1;
      throw;
    }
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : endpoint_(std::move(other.endpoint_)),
      opts_(other.opts_),
      fd_(other.fd_),
      buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    endpoint_ = std::move(other.endpoint_);
    opts_ = other.opts_;
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

Json Client::request(const Json& req, double timeout_s) {
  MPS_ASSERT(fd_ >= 0);  // request on closed client
  const double budget = timeout_s > 0 ? timeout_s : opts_.io_timeout_s;
  const net::Deadline deadline = net::Deadline::after(budget);

  std::string line = req.dump();
  line.push_back('\n');
  switch (net::write_all(fd_, line, deadline)) {
    case net::IoStatus::Ok:
      break;
    case net::IoStatus::Timeout:
      throw util::Error(util::format("svc: send to %s timed out after %.1f s",
                                     endpoint_.str().c_str(), budget));
    default:
      throw util::Error(util::format("svc: send to %s failed: %s", endpoint_.str().c_str(),
                                     std::strerror(errno)));
  }

  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string response = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return Json::parse(response);
    }
    switch (net::read_chunk(fd_, &buffer_, deadline)) {
      case net::IoStatus::Ok:
        break;
      case net::IoStatus::Eof:
        throw util::Error("svc: connection closed by daemon before response");
      case net::IoStatus::Timeout:
        throw util::Error(util::format("svc: no response from %s after %.1f s",
                                       endpoint_.str().c_str(), budget));
      case net::IoStatus::Error:
        throw util::Error(
            util::format("svc: recv from %s failed: %s", endpoint_.str().c_str(),
                         std::strerror(errno)));
    }
  }
}

Json Client::ping() {
  Json j = Json::object();
  j.set("op", "ping");
  return request(j);
}

Json Client::stats() {
  Json j = Json::object();
  j.set("op", "stats");
  return request(j);
}

Json Client::drain() {
  Json j = Json::object();
  j.set("op", "drain");
  return request(j);
}

Json Client::version() {
  Json j = Json::object();
  j.set("op", "version");
  j.set("protocol", Json(kProtocolVersion));
  const Json resp = request(j, opts_.connect_timeout_s);
  if (!resp.get_bool("ok", false)) {
    throw util::Error(util::format(
        "svc: %s: %s", endpoint_.str().c_str(),
        resp.get_string("error", "protocol version handshake failed").c_str()));
  }
  return resp;
}

Json Client::synth(const std::string& g_text, const std::string& method, unsigned threads,
                   double deadline_s, const std::string& engine) {
  Json j = Json::object();
  j.set("op", "synth");
  j.set("g", g_text);
  j.set("method", method);
  j.set("threads", Json(static_cast<std::int64_t>(threads)));
  if (deadline_s > 0.0) j.set("deadline_s", Json(deadline_s));
  if (!engine.empty()) j.set("engine", engine);
  return request(j);
}

}  // namespace mps::svc

#include "svc/client.hpp"

#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/common.hpp"
#include "util/text.hpp"

namespace mps::svc {

Client::Client(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    throw util::Error(util::format("svc: bad socket path: '%s'", socket_path.c_str()));
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw util::Error(util::format("svc: socket: %s", std::strerror(errno)));
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw util::Error(
        util::format("svc: connect(%s): %s", socket_path.c_str(), std::strerror(err)));
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

Json Client::request(const Json& req) {
  MPS_ASSERT(fd_ >= 0);  // request on closed client
  std::string line = req.dump();
  line.push_back('\n');
  const char* data = line.data();
  std::size_t len = line.size();
  while (len > 0) {
    const ssize_t n = ::send(fd_, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw util::Error(util::format("svc: send: %s", std::strerror(errno)));
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }

  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string response = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return Json::parse(response);
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw util::Error(util::format("svc: recv: %s", std::strerror(errno)));
    }
    if (n == 0) throw util::Error("svc: connection closed by daemon before response");
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

Json Client::ping() {
  Json j = Json::object();
  j.set("op", "ping");
  return request(j);
}

Json Client::stats() {
  Json j = Json::object();
  j.set("op", "stats");
  return request(j);
}

Json Client::drain() {
  Json j = Json::object();
  j.set("op", "drain");
  return request(j);
}

Json Client::synth(const std::string& g_text, const std::string& method, unsigned threads,
                   double deadline_s, const std::string& engine) {
  Json j = Json::object();
  j.set("op", "synth");
  j.set("g", g_text);
  j.set("method", method);
  j.set("threads", Json(static_cast<std::int64_t>(threads)));
  if (deadline_s > 0.0) j.set("deadline_s", Json(deadline_s));
  if (!engine.empty()) j.set("engine", engine);
  return request(j);
}

}  // namespace mps::svc

#include "svc/cache.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "obs/obs.hpp"
#include "util/common.hpp"
#include "util/parse.hpp"
#include "util/text.hpp"

namespace mps::svc {

namespace {

constexpr char kMagic[] = "mps-cache";

/// Header line: "mps-cache <digest> <payload_bytes>\n", then the payload.
std::string encode_entry(const std::string& digest, const std::string& payload) {
  return std::string(kMagic) + " " + digest + " " + std::to_string(payload.size()) + "\n" +
         payload;
}

/// Validate and strip the header; nullopt on any mismatch.
std::optional<std::string> decode_entry(const std::string& digest, const std::string& raw) {
  const std::size_t nl = raw.find('\n');
  if (nl == std::string::npos) return std::nullopt;
  const auto fields = util::split_ws(std::string_view(raw).substr(0, nl));
  if (fields.size() != 3 || fields[0] != kMagic || fields[1] != digest) return std::nullopt;
  const auto size = util::parse_int(fields[2], 0, std::numeric_limits<std::int64_t>::max());
  if (!size.has_value()) return std::nullopt;
  std::string payload = raw.substr(nl + 1);
  if (payload.size() != static_cast<std::size_t>(*size)) return std::nullopt;
  return payload;
}

bool is_hex_digest(const std::string& digest) {
  if (digest.size() != 64) return false;
  for (const char c : digest) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  }
  return true;
}

}  // namespace

Cache::Cache(const CacheOptions& opts) : opts_(opts) {
  if (!opts_.dir.empty()) {
    ::mkdir(opts_.dir.c_str(), 0777);  // EEXIST is fine; real failures surface on put
  }
}

std::string Cache::entry_path(const std::string& digest) const {
  if (opts_.dir.empty()) return {};
  return opts_.dir + "/" + digest + ".entry";
}

void Cache::touch_locked(const std::string& digest, const std::string& payload) {
  if (opts_.mem_entries == 0) return;
  const auto it = index_.find(digest);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(digest, payload);
  index_[digest] = lru_.begin();
  if (lru_.size() > opts_.mem_entries) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
  stats_.entries_mem = static_cast<std::int64_t>(lru_.size());
}

std::optional<std::string> Cache::get(const std::string& digest) {
  MPS_ASSERT(is_hex_digest(digest));  // keys come from sha256_hex, never user text
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(digest);
  if (it != index_.end()) {
    ++stats_.mem_hits;
    obs::counter_add("svc.cache.hit.mem", 1);
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }
  const std::string path = entry_path(digest);
  if (!path.empty()) {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      auto payload = decode_entry(digest, ss.str());
      if (payload.has_value()) {
        ++stats_.disk_hits;
        obs::counter_add("svc.cache.hit.disk", 1);
        touch_locked(digest, *payload);
        return payload;
      }
      // Corrupt / truncated / foreign: drop it and fall through to a miss.
      ++stats_.corrupt;
      obs::counter_add("svc.cache.corrupt", 1);
      ::unlink(path.c_str());
    }
  }
  ++stats_.misses;
  obs::counter_add("svc.cache.miss", 1);
  return std::nullopt;
}

void Cache::put(const std::string& digest, const std::string& payload) {
  MPS_ASSERT(is_hex_digest(digest));
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.puts;
  obs::counter_add("svc.cache.put", 1);
  touch_locked(digest, payload);
  const std::string path = entry_path(digest);
  if (path.empty()) return;
  // Atomic write-rename; a unique temp name keeps concurrent writers of the
  // same digest (possible across processes — e.g. two bench runs sharing a
  // --cache-dir) from trampling each other's partial writes.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;  // unwritable cache dir: stay a pure accelerator
    out << encode_entry(digest, payload);
    if (!out.flush()) {
      ::unlink(tmp.c_str());
      return;
    }
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) ::unlink(tmp.c_str());
}

CacheStats Cache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace mps::svc

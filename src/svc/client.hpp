// svc::Client — blocking client for the mps_serve / mps_frontdoor NDJSON
// protocol, over either transport (AF_UNIX path or TCP host:port): one JSON
// object per request line, one per response line.  Used by
// examples/mps_client, the front door's worker connections, and the
// concurrency tests.
//
// Robustness: connect honours a timeout and retries with bounded
// exponential backoff (a worker that is restarting is not an instant
// failure); request() honours a per-request read timeout so a hung or dead
// peer throws instead of blocking recv forever.
#pragma once

#include <string>

#include "net/endpoint.hpp"
#include "svc/json.hpp"

namespace mps::svc {

struct ClientOptions {
  /// Per-attempt connect timeout; <=0 = OS default (blocking connect).
  double connect_timeout_s = 10.0;
  /// Total connection attempts (>=1); attempts after the first sleep an
  /// exponential backoff starting at backoff_s, doubling, capped at
  /// backoff_max_s.
  int connect_attempts = 1;
  double backoff_s = 0.05;
  double backoff_max_s = 1.0;
  /// Per-request response timeout; <=0 = wait forever (the PR-5 default —
  /// in-process tests legitimately wait minutes for a synthesis).
  double io_timeout_s = 0.0;
  /// Send {"op":"version"} on connect and fail fast on a protocol
  /// mismatch.  Off by default: the handshake is optional on the wire.
  bool handshake = false;
};

class Client {
 public:
  /// Connect to `target` (an endpoint string: socket path or host:port).
  /// Throws util::Error when every connect attempt failed, or on a
  /// handshake version mismatch.
  explicit Client(const std::string& target, const ClientOptions& opts = {});
  explicit Client(const net::Endpoint& endpoint, const ClientOptions& opts = {});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Send one request and block for its response line.  Throws util::Error
  /// on I/O failure, EOF (daemon gone), or the io timeout; protocol-level
  /// errors come back as {"ok":false,...} objects, not exceptions.
  /// `timeout_s` > 0 overrides opts.io_timeout_s for this request.
  Json request(const Json& req, double timeout_s = 0.0);

  /// Convenience wrappers over request().
  Json ping();
  Json stats();
  Json drain();
  /// The version handshake; throws util::Error when the server speaks a
  /// different protocol version.
  Json version();
  /// `engine` is the wire spelling ("dpll"/"cdcl", sat::engine_name); empty
  /// omits the field and lets the daemon default (dpll).
  Json synth(const std::string& g_text, const std::string& method,
             unsigned threads = 1, double deadline_s = 0.0,
             const std::string& engine = "");

  const net::Endpoint& endpoint() const { return endpoint_; }

 private:
  void connect();

  net::Endpoint endpoint_;
  ClientOptions opts_;
  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the last response line
};

}  // namespace mps::svc

// svc::Client — blocking Unix-domain-socket client for the mps_serve
// protocol: one JSON object per request line, one per response line.
// Used by examples/mps_client and the concurrency tests.
#pragma once

#include <string>

#include "svc/json.hpp"

namespace mps::svc {

class Client {
 public:
  /// Connect to the daemon's socket.  Throws util::Error on failure.
  explicit Client(const std::string& socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Send one request and block for its response line.  Throws util::Error
  /// on I/O failure or EOF (daemon gone); protocol-level errors come back
  /// as {"ok":false,...} objects, not exceptions.
  Json request(const Json& req);

  /// Convenience wrappers over request().
  Json ping();
  Json stats();
  Json drain();
  /// `engine` is the wire spelling ("dpll"/"cdcl", sat::engine_name); empty
  /// omits the field and lets the daemon default (dpll).
  Json synth(const std::string& g_text, const std::string& method,
             unsigned threads = 1, double deadline_s = 0.0,
             const std::string& engine = "");

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the last response line
};

}  // namespace mps::svc

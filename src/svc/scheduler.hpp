// svc::Scheduler — a bounded, single-flight job queue in front of the
// synthesis flow.
//
// Admission control: at most `queue_cap` jobs may be queued-but-not-running
// at once.  A submit that would exceed the cap is rejected immediately with
// Admit::Overloaded — the daemon answers "overloaded" in microseconds
// instead of stacking unbounded latency onto every queued client.
//
// Single-flight deduplication: jobs are keyed (by the request digest).  If
// a submit's key matches a job already queued or running, no new job is
// created — the caller joins the existing one and all waiters receive the
// same result when it completes (Admit::Joined; counted by the
// svc.singleflight.joined obs counter).  N identical concurrent requests
// cost one synthesis.
//
// Execution: `num_threads` dedicated workers pop jobs FIFO.  Each job's
// work closure typically runs core::modular_synthesis, which parallelizes
// its module loop on its own util::ThreadPool — this queue sits *in front*
// of that pool; see DESIGN.md §10.  Per-request deadlines are the work
// closure's business (svc::run_synthesis maps them onto
// sat::SolveOptions::deadline via SynthesisOptions::deadline).
//
// Drain: drain() stops admission (further submits are rejected) but runs
// every already-admitted job to completion, so no accepted request ever
// loses its response; it returns when the last job finished.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace mps::svc {

struct SchedulerOptions {
  /// Worker threads executing jobs; 0 = one per hardware thread.
  unsigned num_threads = 0;
  /// Max queued-but-not-running jobs before submits are rejected.
  std::size_t queue_cap = 64;
};

struct SchedulerStats {
  std::int64_t submitted = 0;  ///< jobs actually enqueued (excludes joins)
  std::int64_t joined = 0;     ///< submits deduplicated onto an in-flight job
  std::int64_t rejected = 0;   ///< submits refused by the queue cap
  std::int64_t completed = 0;
  std::int64_t queue_depth = 0;  ///< currently queued (not running)
  std::int64_t running = 0;      ///< currently executing
};

class Scheduler {
 public:
  /// What one job produces: an opaque payload, or an error message.  The
  /// work closure must not throw; wrap and report via `error` instead
  /// (run_synthesis does).  A closure that does throw poisons the job with
  /// its exception text — waiters see it as an error, never a hang.
  struct Result {
    std::string payload;
    std::string error;  ///< non-empty = failed
    bool ok() const { return error.empty(); }
  };
  using Work = std::function<Result()>;

  enum class Admit {
    Started,     ///< a new job was enqueued
    Joined,      ///< deduplicated onto an existing job with the same key
    Overloaded,  ///< rejected: queue at cap (or draining); no job exists
  };

  /// A handle to one admitted job; wait() blocks until its result exists.
  /// Handles are shared — every waiter of a single-flight group holds the
  /// same underlying job.
  class Ticket {
   public:
    Ticket() = default;
    bool valid() const { return job_ != nullptr; }
    /// Blocks until the job completed; returns its (shared) result.
    const Result& wait() const;

   private:
    friend class Scheduler;
    struct Job;
    explicit Ticket(std::shared_ptr<Job> job) : job_(std::move(job)) {}
    std::shared_ptr<Job> job_;
  };

  explicit Scheduler(const SchedulerOptions& opts = {});
  /// Drains (see drain()) and joins the workers.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Admit `work` under `key`.  On Overloaded the returned ticket is
  /// invalid; otherwise ticket.wait() yields the job's result.
  std::pair<Admit, Ticket> submit(const std::string& key, Work work);

  /// Stop admitting; run every admitted job to completion; return when the
  /// queue is empty and no job is running.  Idempotent.
  void drain();

  SchedulerStats stats() const;
  unsigned num_threads() const { return static_cast<unsigned>(workers_.size()); }

 private:
  void worker_loop();

  SchedulerOptions opts_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   // workers wait for jobs
  std::condition_variable drain_cv_;  // drain() waits for quiescence
  std::deque<std::shared_ptr<Ticket::Job>> queue_;
  /// Key -> queued-or-running job, for single-flight joins.
  std::unordered_map<std::string, std::shared_ptr<Ticket::Job>> inflight_;
  SchedulerStats stats_;
  bool draining_ = false;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace mps::svc

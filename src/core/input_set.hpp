// determine_input_set (Figure 2): greedily find the minimum signal set
// needed to implement output o — the immediate (trigger) inputs plus every
// signal whose hiding would increase the CSC conflict count or the lower
// bound on state signals, plus the state signals still needed for
// separation.
#pragma once

#include <vector>

#include "sg/assignments.hpp"
#include "sg/state_graph.hpp"
#include "util/bitvec.hpp"

namespace mps::core {

struct InputSetOptions {
  /// Candidate-hiding order (ablation knob; the paper leaves it
  /// unspecified).
  enum class Order {
    SignalId,            ///< ascending id (default)
    FewestEdgesFirst,    ///< try to hide rarely-switching signals first
    MostEdgesFirst,
  };
  Order order = Order::SignalId;
};

struct InputSetResult {
  /// kept.test(s) — signal s is in I_S(o) ∪ {o}.
  util::BitVec kept;
  /// Indices (into the supplied Assignments) of state signals to carry
  /// into the module.
  std::vector<std::size_t> kept_state_signals;
  /// Trigger (immediate input) signals of o.
  std::vector<sg::SignalId> triggers;
  /// Conflict count / lower bound on the final module projection.
  std::size_t module_conflicts = 0;
  int module_lower_bound = 0;
};

/// Trigger signals of `o` at the state-graph level: signals u such that
/// some u-labelled edge newly excites o (o excited in the target but not in
/// the source state).  Matches the STG notion of "transitions immediately
/// preceding o*" on the graphs synthesis runs on.
std::vector<sg::SignalId> sg_trigger_signals(const sg::StateGraph& g, sg::SignalId o);

InputSetResult determine_input_set(const sg::StateGraph& g, sg::SignalId o,
                                   const sg::Assignments& assigns,
                                   const InputSetOptions& opts = {});

}  // namespace mps::core

// modular_synthesis (Figure 6): the paper's complete flow.
//
//   derive Σ from the STG
//   for each output o:  determine_input_set → partition_sat → propagate
//   expand Σ with the inserted signals, re-check CSC (outer safety loop),
//   derive and minimize the next-state logic of every non-input signal.
#pragma once

#include <chrono>
#include <string>
#include <vector>

#include "core/input_set.hpp"
#include "core/partition_sat.hpp"
#include "logic/cover.hpp"
#include "logic/minimize.hpp"
#include "sg/expand.hpp"
#include "stg/stg.hpp"

namespace mps::core {

struct SynthesisOptions {
  InputSetOptions input_set;
  PartitionSatOptions sat;
  logic::MinimizeOptions minimize;
  sg::BuildOptions build;
  /// Integration of local solutions is not optimal (§3.1); residual CSC
  /// conflicts re-enter the loop on the expanded graph, up to this bound.
  int max_rounds = 6;
  /// Derive + minimize logic (disable for timing-only experiments).
  bool derive_logic = true;
  /// Worker threads for the per-output module loop.  0 = one per hardware
  /// thread; 1 = fully serial (today's single-threaded flow).  Any value
  /// produces bit-identical results — see DESIGN.md "Parallel synthesis".
  unsigned num_threads = 0;
  /// Wall-clock budget per synthesis round, shared by all module solves of
  /// the round as a common deadline; <=0 = unlimited.  A module whose solve
  /// is cut off by the deadline behaves exactly like one that hit its
  /// backtrack cap (the rescue path / next round picks up the slack), but
  /// note that a deadline that fires makes results timing-dependent.
  double round_time_limit_s = 0.0;
  /// Absolute wall-clock cutoff for the whole synthesis (svc:: per-request
  /// deadlines map here); default-constructed = none.  Combines with
  /// round_time_limit_s: every module solve gets the earlier of the two
  /// deadlines, and a round that would start past the cutoff fails fast
  /// with "deadline exceeded".  Like round_time_limit_s, a deadline that
  /// fires makes results timing-dependent.
  std::chrono::steady_clock::time_point deadline{};
};

/// Canonical text encoding of every result-affecting SynthesisOptions field
/// (svc::Cache key material).  Excludes num_threads (results are
/// bit-identical for any value by contract) and the absolute `deadline`
/// time point — callers that admit per-request deadlines must fold the
/// requested *budget* into their own key, since a deadline that fires
/// changes results.  The relative round_time_limit_s budget is included.
/// Bump the leading version token when a new result-affecting field is
/// added.
std::string options_fingerprint(const SynthesisOptions& opts);

/// Per-output record of what the partitioning did (module sizes and the
/// SAT formulas solved — the data behind the paper's mmu0 narrative).
struct ModuleReport {
  std::string output;
  int round = 0;
  std::size_t input_set_size = 0;     ///< |I_S(o)| excluding o
  std::size_t module_states = 0;
  std::size_t module_conflicts = 0;
  std::size_t new_signals = 0;
  std::vector<FormulaStat> formulas;
  /// Wall time of this module's input-set + projection + SAT work (the
  /// module was possibly computed concurrently with others).
  double seconds = 0.0;
};

struct SynthesisResult {
  bool success = false;
  std::string failure_reason;

  std::size_t initial_states = 0;
  std::size_t initial_signals = 0;
  std::size_t final_states = 0;
  std::size_t final_signals = 0;

  /// The expanded, CSC-satisfying state graph.
  sg::StateGraph final_graph;

  /// Minimized covers per non-input signal of the final graph.
  std::vector<std::pair<std::string, logic::Cover>> covers;
  std::size_t total_literals = 0;

  std::vector<ModuleReport> modules;
  int rounds = 0;
  double seconds = 0.0;
  /// Search effort summed over every adopted module formula plus the rescue
  /// path — i.e. over the formulas whose results the flow actually used, so
  /// the totals are bit-identical for any num_threads (cancelled speculative
  /// solves are excluded by construction, like everything else about them).
  sat::SolverTotals solver_totals;
};

/// Run the modular partitioning synthesis on a state graph.
SynthesisResult modular_synthesis(const sg::StateGraph& g, const SynthesisOptions& opts = {});

/// Convenience: build the state graph from an STG first.
SynthesisResult modular_synthesis(const stg::Stg& stg, const SynthesisOptions& opts = {});

/// Shared by the baselines: derive + minimize the logic of every non-input
/// signal of a CSC-satisfying graph; returns total literal count.
std::size_t derive_all_logic(const sg::StateGraph& g, const logic::MinimizeOptions& opts,
                             std::vector<std::pair<std::string, logic::Cover>>* covers);

}  // namespace mps::core

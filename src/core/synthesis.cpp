#include "core/synthesis.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "logic/extract.hpp"
#include "obs/obs.hpp"
#include "sg/csc.hpp"
#include "sg/projection.hpp"
#include "util/common.hpp"
#include "util/text.hpp"
#include "util/thread_pool.hpp"

namespace mps::core {

namespace {

bool has_silent_edges(const sg::StateGraph& g) {
  for (sg::StateId s = 0; s < g.num_states(); ++s) {
    for (const sg::Edge& e : g.out(s)) {
      if (e.is_silent()) return true;
    }
  }
  return false;
}

/// Rescue path: when every per-output module reports no conflicts but the
/// complete graph still violates CSC (conflicting states merged away by
/// the projections), fall back to a direct encoding of the remaining
/// conflicts on the complete graph.
bool rescue_direct(const sg::StateGraph& g, const PartitionSatOptions& opts,
                   sg::Assignments* assigns, std::vector<FormulaStat>* formulas) {
  obs::Span span("synth.rescue");
  const auto analysis = sg::analyze_csc(g, assigns->empty() ? nullptr : assigns);
  if (analysis.satisfied()) return true;
  std::size_t m = static_cast<std::size_t>(std::max(1, analysis.lower_bound));
  for (; m <= opts.max_new_signals; ++m) {
    const encoding::Encoding enc(g, m, analysis.conflicts, analysis.compatible_pairs,
                                 opts.encode);
    FormulaStat stat;
    stat.num_new_signals = m;
    stat.num_vars = enc.cnf().num_vars();
    stat.num_clauses = enc.cnf().num_clauses();
    util::Timer timer;
    sat::Model model;
    sat::SolveStats sstats;
    const sat::Outcome outcome = sat::Solver().solve(enc.cnf(), &model, &sstats, opts.solve);
    stat.outcome = outcome;
    stat.backtracks = sstats.backtracks;
    stat.conflicts = sstats.conflicts;
    stat.decisions = sstats.decisions;
    stat.propagations = sstats.propagations;
    stat.restarts = sstats.restarts;
    stat.learned = sstats.learned;
    stat.seconds = timer.seconds();
    formulas->push_back(stat);
    if (outcome == sat::Outcome::Sat) {
      sg::Assignments fresh(g.num_states());
      enc.decode(model, &fresh, "rescue");
      for (std::size_t k = 0; k < fresh.num_signals(); ++k) {
        std::vector<sg::V4> values(fresh.values(k));
        assigns->add_signal("csc" + std::to_string(g.num_signals() + assigns->num_signals()),
                            std::move(values));
      }
      return true;
    }
    if (outcome == sat::Outcome::Limit) return false;
  }
  return false;
}

/// One per-output unit of a synthesis round: everything up to — but not
/// including — the sequential merge/propagate step.
struct ModuleWork {
  ModuleGraph module;
  ModuleReport report;
  PartitionSatResult psr;
  bool inserts = false;  ///< solved its conflicts and produced new signals
};

/// Compute the module of output `o` against a fixed snapshot of the
/// accumulated state-signal assignments.  Pure w.r.t. shared state, so any
/// number of these can run concurrently; `cancel` lets the merge logic stop
/// a solve whose result is already known to be stale.
void compute_module(const sg::StateGraph& g, sg::SignalId o, const sg::Assignments& snapshot,
                    const SynthesisOptions& opts, int round,
                    std::chrono::steady_clock::time_point deadline,
                    const std::atomic<bool>* cancel, ModuleWork* w) {
  util::Timer timer;
  // Runs on whichever pool thread claimed this output, so module spans are
  // what makes per-wave speculation (and its waste) visible in the trace.
  obs::Span span("synth.module", g.signal(o).name);
  span.arg("round", round);
  const InputSetResult isr = determine_input_set(g, o, snapshot, opts.input_set);
  w->module = build_module(g, o, isr, snapshot);

  w->report.output = g.signal(o).name;
  w->report.round = round;
  w->report.input_set_size = isr.kept.count() - 1;  // excluding o itself
  w->report.module_states = w->module.proj.graph.num_states();
  w->report.module_conflicts = w->module.conflicts.size();

  if (!w->module.conflicts.empty()) {
    PartitionSatOptions sat_opts = opts.sat;
    sat_opts.solve.interrupt = cancel;
    sat_opts.solve.deadline = deadline;
    w->psr = partition_sat(w->module, "m", sat_opts);
    w->inserts = w->psr.success && w->psr.module_assignments.num_signals() > 0;
  }
  w->report.seconds = timer.seconds();
  span.arg("module_states", static_cast<std::int64_t>(w->report.module_states));
  span.arg("conflicts", static_cast<std::int64_t>(w->report.module_conflicts));
  span.arg("inserts", w->inserts ? 1 : 0);
}

}  // namespace

std::size_t derive_all_logic(const sg::StateGraph& g, const logic::MinimizeOptions& opts,
                             std::vector<std::pair<std::string, logic::Cover>>* covers) {
  std::size_t total = 0;
  for (sg::SignalId s = 0; s < g.num_signals(); ++s) {
    if (g.is_input(s)) continue;
    const logic::SopSpec spec = logic::extract_next_state(g, s);
    logic::Cover cover = logic::minimize(spec, opts);
    total += cover.literal_count();
    if (covers != nullptr) covers->emplace_back(g.signal(s).name, std::move(cover));
  }
  return total;
}

SynthesisResult modular_synthesis(const sg::StateGraph& input, const SynthesisOptions& opts) {
  util::Timer timer;
  obs::Span synth_span("synth.modular");
  SynthesisResult result;

  sg::StateGraph g = has_silent_edges(input) ? sg::contract_silent(input) : input;
  result.initial_states = g.num_states();
  result.initial_signals = g.num_signals();

  util::ThreadPool pool(opts.num_threads == 0 ? util::ThreadPool::hardware_threads()
                                              : opts.num_threads);

  bool failed = false;
  for (int round = 1; round <= opts.max_rounds; ++round) {
    // Deadline first: an already-expired request must fail fast even when
    // the spec happens to be conflict-free (the service layer relies on
    // this to bound per-request work).
    if (opts.deadline != std::chrono::steady_clock::time_point{} &&
        std::chrono::steady_clock::now() >= opts.deadline) {
      result.failure_reason = "deadline exceeded";
      failed = true;
      break;
    }
    if (sg::analyze_csc(g).satisfied()) break;
    result.rounds = round;

    std::chrono::steady_clock::time_point deadline = opts.deadline;
    if (opts.round_time_limit_s > 0) {
      const auto round_deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(opts.round_time_limit_s));
      if (deadline == std::chrono::steady_clock::time_point{} || round_deadline < deadline) {
        deadline = round_deadline;
      }
    }

    sg::Assignments assigns(g.num_states());

    std::vector<sg::SignalId> outputs;
    for (sg::SignalId o = 0; o < g.num_signals(); ++o) {
      if (!g.is_input(o)) outputs.push_back(o);
    }

    // Figure 6 main loop: one module per output signal.  Modules are
    // independent given a fixed set of already-inserted signals, so each
    // *wave* solves all still-pending outputs concurrently against a
    // snapshot of `assigns`.  The serial flow lets output k see the signals
    // outputs < k inserted this round; to stay bit-identical the wave only
    // adopts results up to and including the first output that inserts
    // signals — later speculations were computed against a stale snapshot,
    // so they are cancelled and recomputed in the next wave.  Outputs that
    // insert nothing are unaffected by the snapshot, hence most rounds
    // finish in (#inserting outputs + 1) waves.
    std::size_t done = 0;
    int wave_no = 0;
    while (done < outputs.size()) {
      const std::size_t wave = outputs.size() - done;
      obs::Span wave_span("synth.wave");
      wave_span.arg("round", round);
      wave_span.arg("wave", ++wave_no);
      wave_span.arg("size", static_cast<std::int64_t>(wave));
      const sg::Assignments snapshot = assigns;
      std::vector<ModuleWork> work(wave);
      std::vector<std::atomic<bool>> cancel(wave);
      std::atomic<std::size_t> first_insert{wave};

      pool.parallel_for(wave, [&](std::size_t i) {
        if (cancel[i].load(std::memory_order_relaxed)) return;  // stale speculation
        compute_module(g, outputs[done + i], snapshot, opts, round, deadline, &cancel[i],
                       &work[i]);
        if (!work[i].inserts) return;
        std::size_t cur = first_insert.load(std::memory_order_relaxed);
        while (i < cur && !first_insert.compare_exchange_weak(cur, i)) {
        }
        // Every module past the earliest inserter is stale; stop its solve.
        for (std::size_t j = first_insert.load(std::memory_order_relaxed) + 1; j < wave;
             ++j) {
          cancel[j].store(true, std::memory_order_relaxed);
        }
      });

      // Sequential merge in output order (identical to the serial flow).
      const std::size_t adopt = std::min(first_insert.load() + 1, wave);
      wave_span.arg("adopted", static_cast<std::int64_t>(adopt));
      for (std::size_t i = 0; i < adopt; ++i) {
        ModuleWork& w = work[i];
        if (!w.module.conflicts.empty()) {
          w.report.formulas = w.psr.formulas;
          if (w.psr.success) {
            w.report.new_signals = w.psr.module_assignments.num_signals();
            propagate(w.module, w.psr.module_assignments, &assigns,
                      /*name_offset=*/g.num_signals());
          } else {
            result.failure_reason =
                "partition SAT hit its limit for output " + w.report.output;
          }
        }
        result.modules.push_back(std::move(w.report));
      }
      done += adopt;
    }

    if (assigns.empty()) {
      // No module saw a conflict, yet the complete graph has some:
      // projections can merge conflicting states (§3.4 worst case).
      ModuleReport report;
      report.output = "(rescue: complete graph)";
      report.round = round;
      report.module_states = g.num_states();
      PartitionSatOptions rescue_opts = opts.sat;
      rescue_opts.solve.deadline = deadline;
      const bool ok = rescue_direct(g, rescue_opts, &assigns, &report.formulas);
      report.new_signals = assigns.num_signals();
      report.module_conflicts = sg::analyze_csc(g).conflicts.size();
      result.modules.push_back(std::move(report));
      if (!ok || assigns.empty()) {
        if (result.failure_reason.empty()) {
          result.failure_reason = "unable to resolve residual CSC conflicts";
        }
        failed = true;
        break;
      }
    }

    const sg::Expansion ex = sg::expand(g, assigns);
    g = ex.graph;
  }

  const auto final_analysis = sg::analyze_csc(g);
  result.success = !failed && final_analysis.satisfied();
  if (result.success) result.failure_reason.clear();  // transient module limits recovered
  if (!result.success && result.failure_reason.empty()) {
    result.failure_reason = "CSC conflicts remain after " + std::to_string(opts.max_rounds) +
                            " rounds";
  }

  result.final_states = g.num_states();
  result.final_signals = g.num_signals();
  result.final_graph = std::move(g);

  if (result.success && opts.derive_logic) {
    result.total_literals =
        derive_all_logic(result.final_graph, opts.minimize, &result.covers);
  }
  for (const ModuleReport& m : result.modules) {
    for (const FormulaStat& f : m.formulas) {
      result.solver_totals.decisions += f.decisions;
      result.solver_totals.propagations += f.propagations;
      // Bugfix: this summed f.backtracks, which silently undercounts the
      // moment an engine stops backtracking once per conflict (CDCL's
      // non-chronological backjumps).
      result.solver_totals.conflicts += f.conflicts;
      result.solver_totals.restarts += f.restarts;
      result.solver_totals.learned += f.learned;
    }
  }
  result.seconds = timer.seconds();
  synth_span.arg("rounds", result.rounds);
  synth_span.arg("final_states", static_cast<std::int64_t>(result.final_states));
  synth_span.arg("decisions", result.solver_totals.decisions);
  synth_span.arg("success", result.success ? 1 : 0);
  return result;
}

SynthesisResult modular_synthesis(const stg::Stg& stg, const SynthesisOptions& opts) {
  return modular_synthesis(sg::StateGraph::from_stg(stg, opts.build), opts);
}

std::string options_fingerprint(const SynthesisOptions& opts) {
  // One key=value token per result-affecting field, ';'-joined, with a
  // leading version token.  Doubles are rendered with %.17g (round-trip
  // exact), enums as their integer value.
  return util::format(
      "core-v2;order=%d;input_properness=%d;naive_max_m=%zu;enforce_usc=%d;"
      "engine=%d;"
      "max_backtracks=%lld;solve_time_limit_s=%.17g;restart_interval=%lld;seed=%llu;"
      "use_local_search=%d;use_bdd=%d;max_new_signals=%zu;seed_lower_bound=%d;"
      "try_exact=%d;exact_max_vars=%zu;exact_max_primes=%zu;exact_max_branch_nodes=%lld;"
      "heuristic_loops=%d;max_states=%zu;require_safe=%d;max_rounds=%d;derive_logic=%d;"
      "round_time_limit_s=%.17g",
      static_cast<int>(opts.input_set.order), opts.sat.encode.input_properness ? 1 : 0,
      opts.sat.encode.naive_max_m, opts.sat.encode.enforce_usc ? 1 : 0,
      static_cast<int>(opts.sat.solve.engine),
      static_cast<long long>(opts.sat.solve.max_backtracks), opts.sat.solve.time_limit_s,
      static_cast<long long>(opts.sat.solve.restart_interval),
      static_cast<unsigned long long>(opts.sat.solve.seed),
      opts.sat.use_local_search ? 1 : 0, opts.sat.use_bdd ? 1 : 0, opts.sat.max_new_signals,
      opts.sat.seed_lower_bound ? 1 : 0, opts.minimize.try_exact ? 1 : 0,
      opts.minimize.exact_max_vars, opts.minimize.exact_max_primes,
      static_cast<long long>(opts.minimize.exact_max_branch_nodes),
      opts.minimize.heuristic_loops, opts.build.max_states, opts.build.require_safe ? 1 : 0,
      opts.max_rounds, opts.derive_logic ? 1 : 0, opts.round_time_limit_s);
}

}  // namespace mps::core

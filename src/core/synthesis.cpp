#include "core/synthesis.hpp"

#include <algorithm>

#include "logic/extract.hpp"
#include "sg/csc.hpp"
#include "sg/projection.hpp"
#include "util/common.hpp"

namespace mps::core {

namespace {

bool has_silent_edges(const sg::StateGraph& g) {
  for (sg::StateId s = 0; s < g.num_states(); ++s) {
    for (const sg::Edge& e : g.out(s)) {
      if (e.is_silent()) return true;
    }
  }
  return false;
}

/// Rescue path: when every per-output module reports no conflicts but the
/// complete graph still violates CSC (conflicting states merged away by
/// the projections), fall back to a direct encoding of the remaining
/// conflicts on the complete graph.
bool rescue_direct(const sg::StateGraph& g, const PartitionSatOptions& opts,
                   sg::Assignments* assigns, std::vector<FormulaStat>* formulas) {
  const auto analysis = sg::analyze_csc(g, assigns->empty() ? nullptr : assigns);
  if (analysis.satisfied()) return true;
  std::size_t m = static_cast<std::size_t>(std::max(1, analysis.lower_bound));
  for (; m <= opts.max_new_signals; ++m) {
    const encoding::Encoding enc(g, m, analysis.conflicts, analysis.compatible_pairs,
                                 opts.encode);
    FormulaStat stat;
    stat.num_new_signals = m;
    stat.num_vars = enc.cnf().num_vars();
    stat.num_clauses = enc.cnf().num_clauses();
    util::Timer timer;
    sat::Model model;
    sat::SolveStats sstats;
    const sat::Outcome outcome = sat::Solver().solve(enc.cnf(), &model, &sstats, opts.solve);
    stat.outcome = outcome;
    stat.backtracks = sstats.backtracks;
    stat.seconds = timer.seconds();
    formulas->push_back(stat);
    if (outcome == sat::Outcome::Sat) {
      sg::Assignments fresh(g.num_states());
      enc.decode(model, &fresh, "rescue");
      for (std::size_t k = 0; k < fresh.num_signals(); ++k) {
        std::vector<sg::V4> values(fresh.values(k));
        assigns->add_signal("csc" + std::to_string(g.num_signals() + assigns->num_signals()),
                            std::move(values));
      }
      return true;
    }
    if (outcome == sat::Outcome::Limit) return false;
  }
  return false;
}

}  // namespace

std::size_t derive_all_logic(const sg::StateGraph& g, const logic::MinimizeOptions& opts,
                             std::vector<std::pair<std::string, logic::Cover>>* covers) {
  std::size_t total = 0;
  for (sg::SignalId s = 0; s < g.num_signals(); ++s) {
    if (g.is_input(s)) continue;
    const logic::SopSpec spec = logic::extract_next_state(g, s);
    logic::Cover cover = logic::minimize(spec, opts);
    total += cover.literal_count();
    if (covers != nullptr) covers->emplace_back(g.signal(s).name, std::move(cover));
  }
  return total;
}

SynthesisResult modular_synthesis(const sg::StateGraph& input, const SynthesisOptions& opts) {
  util::Timer timer;
  SynthesisResult result;

  sg::StateGraph g = has_silent_edges(input) ? sg::contract_silent(input) : input;
  result.initial_states = g.num_states();
  result.initial_signals = g.num_signals();

  bool failed = false;
  for (int round = 1; round <= opts.max_rounds; ++round) {
    if (sg::analyze_csc(g).satisfied()) break;
    result.rounds = round;

    sg::Assignments assigns(g.num_states());

    // Figure 6 main loop: one module per output signal.
    for (sg::SignalId o = 0; o < g.num_signals(); ++o) {
      if (g.is_input(o)) continue;

      const InputSetResult isr = determine_input_set(g, o, assigns, opts.input_set);
      const ModuleGraph module = build_module(g, o, isr, assigns);

      ModuleReport report;
      report.output = g.signal(o).name;
      report.round = round;
      report.input_set_size = isr.kept.count() - 1;  // excluding o itself
      report.module_states = module.proj.graph.num_states();
      report.module_conflicts = module.conflicts.size();

      if (!module.conflicts.empty()) {
        const PartitionSatResult psr = partition_sat(module, "m", opts.sat);
        report.formulas = psr.formulas;
        if (psr.success) {
          report.new_signals = psr.module_assignments.num_signals();
          propagate(module, psr.module_assignments, &assigns,
                    /*name_offset=*/g.num_signals());
        } else {
          result.failure_reason =
              "partition SAT hit its limit for output " + report.output;
        }
      }
      result.modules.push_back(std::move(report));
    }

    if (assigns.empty()) {
      // No module saw a conflict, yet the complete graph has some:
      // projections can merge conflicting states (§3.4 worst case).
      ModuleReport report;
      report.output = "(rescue: complete graph)";
      report.round = round;
      report.module_states = g.num_states();
      const bool ok = rescue_direct(g, opts.sat, &assigns, &report.formulas);
      report.new_signals = assigns.num_signals();
      report.module_conflicts = sg::analyze_csc(g).conflicts.size();
      result.modules.push_back(std::move(report));
      if (!ok || assigns.empty()) {
        if (result.failure_reason.empty()) {
          result.failure_reason = "unable to resolve residual CSC conflicts";
        }
        failed = true;
        break;
      }
    }

    const sg::Expansion ex = sg::expand(g, assigns);
    g = ex.graph;
  }

  const auto final_analysis = sg::analyze_csc(g);
  result.success = !failed && final_analysis.satisfied();
  if (result.success) result.failure_reason.clear();  // transient module limits recovered
  if (!result.success && result.failure_reason.empty()) {
    result.failure_reason = "CSC conflicts remain after " + std::to_string(opts.max_rounds) +
                            " rounds";
  }

  result.final_states = g.num_states();
  result.final_signals = g.num_signals();
  result.final_graph = std::move(g);

  if (result.success && opts.derive_logic) {
    result.total_literals =
        derive_all_logic(result.final_graph, opts.minimize, &result.covers);
  }
  result.seconds = timer.seconds();
  return result;
}

SynthesisResult modular_synthesis(const stg::Stg& stg, const SynthesisOptions& opts) {
  return modular_synthesis(sg::StateGraph::from_stg(stg, opts.build), opts);
}

}  // namespace mps::core

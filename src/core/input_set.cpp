#include "core/input_set.hpp"

#include <algorithm>
#include <numeric>

#include "sg/csc.hpp"
#include "sg/projection.hpp"
#include "util/common.hpp"

namespace mps::core {

std::vector<sg::SignalId> sg_trigger_signals(const sg::StateGraph& g, sg::SignalId o) {
  std::vector<bool> is_trigger(g.num_signals(), false);
  for (sg::StateId s = 0; s < g.num_states(); ++s) {
    const bool excited_before =
        g.excited_dir(s, o, true) || g.excited_dir(s, o, false);
    for (const sg::Edge& e : g.out(s)) {
      if (e.is_silent() || e.sig == o) continue;
      const bool excited_after =
          g.excited_dir(e.to, o, true) || g.excited_dir(e.to, o, false);
      if (excited_after && !excited_before) is_trigger[e.sig] = true;
    }
  }
  std::vector<sg::SignalId> out;
  for (sg::SignalId s = 0; s < g.num_signals(); ++s) {
    if (is_trigger[s]) out.push_back(s);
  }
  return out;
}

namespace {

/// Conflict count and lower bound of the module graph obtained by hiding
/// `hidden`, focused on output o.  Returns nullopt if the hiding merges
/// states with inconsistent state-signal values (Fig. 3 violation).
struct ProbeResult {
  std::size_t conflicts;
  int lower_bound;
};

std::optional<ProbeResult> probe(const sg::StateGraph& g, sg::SignalId o,
                                 const util::BitVec& hidden, const sg::Assignments& assigns) {
  const sg::Projection proj = sg::hide_signals(g, hidden, assigns.empty() ? nullptr : &assigns);
  if (!proj.assignments_consistent) return std::nullopt;
  // Remap o into the projection's signal space.
  sg::SignalId focus = stg::kNoSignal;
  for (std::size_t i = 0; i < proj.kept.size(); ++i) {
    if (proj.kept[i] == o) focus = static_cast<sg::SignalId>(i);
  }
  MPS_ASSERT(focus != stg::kNoSignal);
  sg::CscOptions copts;
  copts.focus_signal = focus;
  const auto analysis =
      sg::analyze_csc(proj.graph, proj.assignments.empty() ? nullptr : &proj.assignments, copts);
  return ProbeResult{analysis.conflicts.size(), analysis.lower_bound};
}

}  // namespace

InputSetResult determine_input_set(const sg::StateGraph& g, sg::SignalId o,
                                   const sg::Assignments& assigns, const InputSetOptions& opts) {
  MPS_ASSERT(o < g.num_signals());
  InputSetResult result;
  result.triggers = sg_trigger_signals(g, o);

  // Start: keep o and its immediate input set; everything else is a
  // candidate for hiding.
  util::BitVec hidden(g.num_signals());
  result.kept = util::BitVec(g.num_signals());
  result.kept.set(o);
  for (const sg::SignalId t : result.triggers) result.kept.set(t);

  std::vector<sg::SignalId> candidates;
  for (sg::SignalId s = 0; s < g.num_signals(); ++s) {
    if (!result.kept.test(s)) candidates.push_back(s);
  }
  if (opts.order != InputSetOptions::Order::SignalId) {
    std::vector<std::size_t> edge_count(g.num_signals(), 0);
    for (sg::StateId st = 0; st < g.num_states(); ++st) {
      for (const sg::Edge& e : g.out(st)) {
        if (!e.is_silent()) ++edge_count[e.sig];
      }
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [&](sg::SignalId a, sg::SignalId b) {
                       return opts.order == InputSetOptions::Order::FewestEdgesFirst
                                  ? edge_count[a] < edge_count[b]
                                  : edge_count[a] > edge_count[b];
                     });
  }

  // Baseline conflicts/lower-bound on the unhidden graph.
  const auto base = probe(g, o, hidden, assigns);
  MPS_ASSERT(base.has_value());
  std::size_t n_csc = base->conflicts;
  int lb = base->lower_bound;

  // Greedy hiding (Figure 2 main loop), iterated to a fixed point: a
  // signal rejected early in the pass can become hideable once later
  // signals are gone, so re-try the rejects until nothing changes.
  std::vector<sg::SignalId> pending = candidates;
  for (int pass = 0; pass < 4 && !pending.empty(); ++pass) {
    std::vector<sg::SignalId> rejected;
    for (const sg::SignalId s : pending) {
      hidden.set(s);
      const auto probed = probe(g, o, hidden, assigns);
      if (probed.has_value() && probed->conflicts <= n_csc && probed->lower_bound <= lb) {
        n_csc = probed->conflicts;
        lb = probed->lower_bound;
      } else {
        hidden.reset(s);  // signal (still) required
        rejected.push_back(s);
      }
    }
    if (rejected.size() == pending.size()) {
      pending = std::move(rejected);
      break;
    }
    pending = std::move(rejected);
  }
  for (const sg::SignalId s : pending) result.kept.set(s);

  // State-signal retention (Figure 2 tail loop): drop each state signal
  // unless dropping it increases the module's conflicts.
  std::vector<std::size_t> kept_ss(assigns.num_signals());
  std::iota(kept_ss.begin(), kept_ss.end(), 0u);
  {
    const auto full = probe(g, o, hidden, assigns.subset(kept_ss));
    MPS_ASSERT(full.has_value());
    std::size_t current = full->conflicts;
    for (std::size_t k = assigns.num_signals(); k-- > 0;) {
      std::vector<std::size_t> without;
      for (const std::size_t x : kept_ss) {
        if (x != k) without.push_back(x);
      }
      const auto probed = probe(g, o, hidden, assigns.subset(without));
      if (probed.has_value() && probed->conflicts <= current) {
        kept_ss = std::move(without);
        current = probed->conflicts;
      }
    }
    n_csc = current;
  }
  result.kept_state_signals = std::move(kept_ss);
  result.module_conflicts = n_csc;
  result.module_lower_bound = lb;
  return result;
}

}  // namespace mps::core

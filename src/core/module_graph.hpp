// Modular state graph generation (§3.3): project the complete graph onto
// the input set of an output, carrying existing state-signal assignments
// through the Figure-3 merge rules, and locate the module's CSC conflicts.
#pragma once

#include <utility>
#include <vector>

#include "core/input_set.hpp"
#include "sg/projection.hpp"

namespace mps::core {

struct ModuleGraph {
  sg::Projection proj;   ///< quotient graph + cover map + merged assignments
  sg::SignalId focus;    ///< the output o, remapped into module signal space
  /// CSC conflicts of the module (focused on `focus`, accounting for the
  /// carried state signals).
  std::vector<std::pair<sg::StateId, sg::StateId>> conflicts;
  /// Code-equal compatible pairs of the module (constrained, not separated).
  std::vector<std::pair<sg::StateId, sg::StateId>> compatible_pairs;
  int lower_bound = 0;
};

/// Build the module for output `o` given the input-set decision.  `assigns`
/// are the global state-signal assignments; only `kept_state_signals` are
/// carried in.
ModuleGraph build_module(const sg::StateGraph& g, sg::SignalId o, const InputSetResult& input_set,
                         const sg::Assignments& assigns);

}  // namespace mps::core

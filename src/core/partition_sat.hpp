// partition_sat (Figure 4): satisfy the module's CSC constraints by SAT,
// starting from the lower bound on new state signals and adding one signal
// at a time until the formula is satisfiable.
#pragma once

#include <string>
#include <vector>

#include "core/module_graph.hpp"
#include "encoding/csc_sat.hpp"
#include "sat/solver.hpp"

namespace mps::core {

/// Size and solve statistics of one SAT attempt (reported in Table 1 /
/// the clause-count bench).
struct FormulaStat {
  std::size_t num_new_signals = 0;
  std::size_t num_vars = 0;
  std::size_t num_clauses = 0;
  sat::Outcome outcome = sat::Outcome::Unsat;
  double seconds = 0.0;
  /// Search effort (zero when the BDD or local-search path solved the
  /// formula first).  `backtracks` counts chronological backtracks (DPLL)
  /// or backjumps (CDCL); `conflicts` is the engine-independent effort
  /// measure the solver totals aggregate.
  std::int64_t backtracks = 0;
  std::int64_t conflicts = 0;
  std::int64_t decisions = 0;
  std::int64_t propagations = 0;
  std::int64_t restarts = 0;
  std::int64_t learned = 0;
};

struct PartitionSatOptions {
  encoding::EncodeOptions encode;
  /// Module formulas are tiny, but pathological UNSAT escalations exist;
  /// a backtrack cap keeps a single module from stalling the flow (the
  /// rescue path then finishes the job on the complete graph).
  sat::SolveOptions solve{.max_backtracks = 150'000, .time_limit_s = 5.0};
  /// Try WalkSAT before DPLL (Gu-style local search; cannot prove UNSAT,
  /// so DPLL remains the decision procedure).
  bool use_local_search = false;
  /// Solve module formulas by BDD characteristic functions first (the
  /// paper's ref. [19] divide-and-conquer follow-up); falls back to DPLL
  /// when the BDD blows past its node cap.
  bool use_bdd = false;
  std::size_t max_new_signals = 10;
  /// Start the signal-count loop at the module's lower bound (Figure 4);
  /// off = always start at 1 (ablation knob).
  bool seed_lower_bound = true;
};

struct PartitionSatResult {
  bool success = false;
  /// New signals' assignments on the *module* states.
  sg::Assignments module_assignments;
  std::vector<FormulaStat> formulas;
};

PartitionSatResult partition_sat(const ModuleGraph& module, const std::string& name_prefix,
                                 const PartitionSatOptions& opts = {});

/// propagate (Figure 5): copy the module's new-signal values to every
/// complete-graph state through the cover map, appending to `global`.
void propagate(const ModuleGraph& module, const sg::Assignments& module_assignments,
               sg::Assignments* global, std::size_t name_offset = 0);

}  // namespace mps::core

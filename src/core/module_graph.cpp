#include "core/module_graph.hpp"

#include "sg/csc.hpp"
#include "util/common.hpp"

namespace mps::core {

ModuleGraph build_module(const sg::StateGraph& g, sg::SignalId o, const InputSetResult& input_set,
                         const sg::Assignments& assigns) {
  ModuleGraph module;

  util::BitVec hidden(g.num_signals(), true);
  for (sg::SignalId s = 0; s < g.num_signals(); ++s) {
    if (input_set.kept.test(s)) hidden.reset(s);
  }

  const sg::Assignments carried = assigns.subset(input_set.kept_state_signals);
  module.proj = sg::hide_signals(g, hidden, carried.empty() ? nullptr : &carried);

  module.focus = stg::kNoSignal;
  for (std::size_t i = 0; i < module.proj.kept.size(); ++i) {
    if (module.proj.kept[i] == o) module.focus = static_cast<sg::SignalId>(i);
  }
  MPS_ASSERT(module.focus != stg::kNoSignal);

  sg::CscOptions copts;
  copts.focus_signal = module.focus;
  const auto analysis = sg::analyze_csc(
      module.proj.graph, module.proj.assignments.empty() ? nullptr : &module.proj.assignments,
      copts);
  module.conflicts = analysis.conflicts;
  module.compatible_pairs = analysis.compatible_pairs;
  module.lower_bound = analysis.lower_bound;
  return module;
}

}  // namespace mps::core

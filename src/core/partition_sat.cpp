#include "core/partition_sat.hpp"

#include <algorithm>

#include "bdd/csc_bdd.hpp"
#include "sat/local_search.hpp"
#include "util/common.hpp"

namespace mps::core {

PartitionSatResult partition_sat(const ModuleGraph& module, const std::string& name_prefix,
                                 const PartitionSatOptions& opts) {
  PartitionSatResult result;
  result.module_assignments = sg::Assignments(module.proj.graph.num_states());
  if (module.conflicts.empty()) {
    result.success = true;  // nothing to resolve for this output
    return result;
  }

  std::size_t m = opts.seed_lower_bound
                      ? static_cast<std::size_t>(std::max(1, module.lower_bound))
                      : 1;
  for (; m <= opts.max_new_signals; ++m) {
    const encoding::Encoding enc(module.proj.graph, m, module.conflicts,
                                 module.compatible_pairs, opts.encode);

    FormulaStat stat;
    stat.num_new_signals = m;
    stat.num_vars = enc.cnf().num_vars();
    stat.num_clauses = enc.cnf().num_clauses();

    sat::Model model;
    bool sat_found = false;
    bool bdd_proved_unsat = false;
    util::Timer timer;
    if (opts.use_bdd) {
      try {
        if (const auto m_bdd = bdd::solve_cnf_bdd(enc.cnf()); m_bdd.has_value()) {
          model = *m_bdd;
          sat_found = true;
        } else {
          bdd_proved_unsat = true;
        }
      } catch (const util::LimitError&) {
        // BDD blow-up: fall through to the search-based solvers.
      }
    }
    if (!sat_found && !bdd_proved_unsat && opts.use_local_search) {
      sat_found = sat::walksat(enc.cnf(), &model);
    }
    if (!sat_found && !bdd_proved_unsat) {
      sat::SolveStats sstats;
      const sat::Outcome outcome =
          sat::Solver().solve(enc.cnf(), &model, &sstats, opts.solve);
      stat.outcome = outcome;
      stat.backtracks = sstats.backtracks;
      stat.conflicts = sstats.conflicts;
      stat.decisions = sstats.decisions;
      stat.propagations = sstats.propagations;
      stat.restarts = sstats.restarts;
      stat.learned = sstats.learned;
      sat_found = outcome == sat::Outcome::Sat;
      // On Outcome::Limit fall through: treat like Unsat and escalate m —
      // a larger signal count often has easy solutions where the smaller
      // formula was a hard (likely unsatisfiable) instance.
    } else {
      stat.outcome = sat_found ? sat::Outcome::Sat : sat::Outcome::Unsat;
    }
    stat.seconds = timer.seconds();
    result.formulas.push_back(stat);

    if (sat_found) {
      sg::Assignments decoded(module.proj.graph.num_states());
      enc.decode(model, &decoded, name_prefix);
      // A constant signal separates nothing: the bound overshot; drop it.
      for (std::size_t k = 0; k < decoded.num_signals(); ++k) {
        const auto& vals = decoded.values(k);
        bool constant = true;
        for (const sg::V4 v : vals) {
          if (v != vals.front()) {
            constant = false;
            break;
          }
        }
        if (!constant) {
          result.module_assignments.add_signal(decoded.name(k),
                                               std::vector<sg::V4>(vals));
        }
      }
      result.success = true;
      return result;
    }
    // UNSAT with m signals: add a state signal (Figure 4 while-loop).
  }
  return result;
}

void propagate(const ModuleGraph& module, const sg::Assignments& module_assignments,
               sg::Assignments* global, std::size_t name_offset) {
  const auto& cover = module.proj.state_map;
  MPS_ASSERT(cover.size() == global->num_states());
  for (std::size_t k = 0; k < module_assignments.num_signals(); ++k) {
    std::vector<sg::V4> values(global->num_states());
    for (sg::StateId s = 0; s < global->num_states(); ++s) {
      values[s] = module_assignments.value(k, cover[s]);
    }
    // Globally unique name: per-module names could collide across modules.
    global->add_signal("csc" + std::to_string(name_offset + global->num_signals()),
                       std::move(values));
  }
}

}  // namespace mps::core

#include "baseline/vanbekbergen.hpp"

#include <algorithm>

#include "sg/csc.hpp"
#include "sg/expand.hpp"
#include "sg/projection.hpp"
#include "util/common.hpp"

namespace mps::baseline {

DirectResult direct_synthesis(const sg::StateGraph& input, const DirectOptions& opts) {
  util::Timer timer;
  DirectResult result;

  sg::StateGraph g = input;
  result.initial_states = g.num_states();
  result.initial_signals = g.num_signals();

  for (int round = 1; round <= opts.max_rounds; ++round) {
    const auto analysis = sg::analyze_csc(g);
    if (analysis.satisfied()) break;
    result.rounds = round;

    sg::Assignments assigns(g.num_states());
    bool solved = false;
    std::size_t m = static_cast<std::size_t>(std::max(1, analysis.lower_bound));
    for (; m <= opts.max_new_signals; ++m) {
      const encoding::Encoding enc(g, m, analysis.conflicts, analysis.compatible_pairs,
                                   opts.encode);
      core::FormulaStat stat;
      stat.num_new_signals = m;
      stat.num_vars = enc.cnf().num_vars();
      stat.num_clauses = enc.cnf().num_clauses();

      util::Timer attempt;
      sat::Model model;
      sat::SolveStats sstats;
      const sat::Outcome outcome = sat::Solver().solve(enc.cnf(), &model, &sstats, opts.solve);
      stat.outcome = outcome;
      stat.backtracks = sstats.backtracks;
      stat.conflicts = sstats.conflicts;
      stat.decisions = sstats.decisions;
      stat.propagations = sstats.propagations;
      stat.restarts = sstats.restarts;
      stat.learned = sstats.learned;
      stat.seconds = attempt.seconds();
      result.formulas.push_back(stat);
      result.solver_totals.add(sstats);

      if (outcome == sat::Outcome::Limit) {
        result.hit_limit = true;
        result.failure_reason = "SAT backtrack/time limit on the direct formula";
        result.final_states = g.num_states();
        result.final_signals = g.num_signals();
        result.final_graph = std::move(g);
        result.seconds = timer.seconds();
        return result;
      }
      if (outcome == sat::Outcome::Sat) {
        enc.decode(model, &assigns, "csc" + std::to_string(g.num_signals()) + "_");
        solved = true;
        break;
      }
    }
    if (!solved) {
      result.failure_reason = "no assignment within the state-signal bound";
      break;
    }
    g = sg::expand(g, assigns, /*check_consistency=*/false).graph;
  }

  const auto final_analysis = sg::analyze_csc(g);
  result.success = final_analysis.satisfied();
  result.final_states = g.num_states();
  result.final_signals = g.num_signals();
  result.final_graph = std::move(g);
  if (result.success && opts.derive_logic) {
    result.total_literals =
        core::derive_all_logic(result.final_graph, opts.minimize, &result.covers);
  }
  result.seconds = timer.seconds();
  return result;
}

DirectResult direct_synthesis(const stg::Stg& stg, const DirectOptions& opts) {
  sg::StateGraph g = sg::StateGraph::from_stg(stg);
  // Mirror the modular flow's handling of dummy transitions.
  bool silent = false;
  for (sg::StateId s = 0; s < g.num_states() && !silent; ++s) {
    for (const sg::Edge& e : g.out(s)) {
      if (e.is_silent()) silent = true;
    }
  }
  if (silent) g = sg::contract_silent(g);
  return direct_synthesis(g, opts);
}

}  // namespace mps::baseline

// A Lavagno/Moon-style monolithic baseline [13], reconstructed: state
// signals are inserted one at a time at the level of the *complete* state
// graph (no decomposition), each insertion targeting the currently worst
// code-equal conflict class, with the graph re-expanded and re-analysed
// after every insertion.  This reproduces the cost profile of the original
// (whole-graph manipulation per inserted signal, repeated global
// re-analysis) without its FSM state-minimization machinery — see
// DESIGN.md's substitution table.
#pragma once

#include <string>
#include <vector>

#include "core/synthesis.hpp"
#include "logic/minimize.hpp"
#include "sg/state_graph.hpp"

namespace mps::baseline {

struct LavagnoOptions {
  sat::SolveOptions solve;
  logic::MinimizeOptions minimize;
  encoding::EncodeOptions encode;
  int max_insertions = 64;
  /// Signals tried for one conflict class before giving up.
  std::size_t max_signals_per_class = 4;
  double time_limit_s = 0.0;  ///< overall wall-clock budget; <=0 = unlimited
  bool derive_logic = true;
};

struct LavagnoResult {
  bool success = false;
  bool hit_limit = false;
  std::string failure_reason;

  std::size_t initial_states = 0;
  std::size_t initial_signals = 0;
  std::size_t final_states = 0;
  std::size_t final_signals = 0;
  std::size_t total_literals = 0;
  int insertions = 0;

  sg::StateGraph final_graph;
  std::vector<std::pair<std::string, logic::Cover>> covers;
  double seconds = 0.0;
  /// DPLL effort summed over every insertion's formula attempts (walksat
  /// successes contribute nothing — no DPLL search ran for them).
  sat::SolverTotals solver_totals;
};

LavagnoResult lavagno_synthesis(const sg::StateGraph& g, const LavagnoOptions& opts = {});
LavagnoResult lavagno_synthesis(const stg::Stg& stg, const LavagnoOptions& opts = {});

}  // namespace mps::baseline

#include "baseline/lavagno.hpp"

#include <algorithm>
#include <unordered_map>

#include "encoding/csc_sat.hpp"
#include "sat/local_search.hpp"
#include "sat/solver.hpp"
#include "sg/csc.hpp"
#include "sg/expand.hpp"
#include "sg/projection.hpp"
#include "util/common.hpp"

namespace mps::baseline {

namespace {

/// The conflicts of the code class with the most conflicts (the "worst"
/// class), plus a single fallback pair.
std::vector<std::pair<sg::StateId, sg::StateId>> worst_class_conflicts(
    const sg::StateGraph& g, const std::vector<std::pair<sg::StateId, sg::StateId>>& conflicts) {
  std::unordered_map<util::BitVec, std::vector<std::pair<sg::StateId, sg::StateId>>,
                     util::BitVecHash>
      by_code;
  for (const auto& pair : conflicts) by_code[g.code(pair.first)].push_back(pair);
  std::vector<std::pair<sg::StateId, sg::StateId>> best;
  for (auto& [code, pairs] : by_code) {
    if (pairs.size() > best.size() ||
        (pairs.size() == best.size() && !best.empty() && pairs.front() < best.front())) {
      best = pairs;
    }
  }
  std::sort(best.begin(), best.end());
  return best;
}

}  // namespace

LavagnoResult lavagno_synthesis(const sg::StateGraph& input, const LavagnoOptions& opts) {
  util::Timer timer;
  LavagnoResult result;

  sg::StateGraph g = input;
  result.initial_states = g.num_states();
  result.initial_signals = g.num_signals();

  for (int iter = 0; iter < opts.max_insertions; ++iter) {
    if (opts.time_limit_s > 0 && timer.seconds() > opts.time_limit_s) {
      result.hit_limit = true;
      result.failure_reason = "time limit";
      break;
    }
    const auto analysis = sg::analyze_csc(g);
    if (analysis.satisfied()) break;

    // Resolve one code class per iteration, escalating the signal count for
    // that class until its conflicts are separable — whole-graph encodings
    // throughout, never any decomposition.
    const auto class_conflicts = worst_class_conflicts(g, analysis.conflicts);
    sg::Assignments assigns(g.num_states());
    bool solved = false;
    for (std::size_t m = 1; m <= opts.max_signals_per_class && !solved; ++m) {
      const encoding::Encoding enc(g, m, class_conflicts, analysis.compatible_pairs,
                                   opts.encode);
      sat::Model model;
      sat::SolveStats sstats;
      sat::Outcome outcome = sat::Outcome::Unsat;
      if (sat::walksat(enc.cnf(), &model, nullptr,
                       {/*seed=*/m, /*max_flips=*/50000, /*max_tries=*/2, /*noise=*/0.5})) {
        outcome = sat::Outcome::Sat;
      } else {
        outcome = sat::Solver().solve(enc.cnf(), &model, &sstats, opts.solve);
        result.solver_totals.add(sstats);
      }
      if (outcome == sat::Outcome::Limit) {
        result.hit_limit = true;  // keep escalating m; note the limit
        continue;
      }
      if (outcome == sat::Outcome::Sat) {
        sg::Assignments decoded(g.num_states());
        enc.decode(model, &decoded, "x" + std::to_string(g.num_signals()) + "_");
        for (std::size_t k = 0; k < decoded.num_signals(); ++k) {
          const auto& vals = decoded.values(k);
          bool constant = true;
          for (const sg::V4 v : vals) {
            if (v != vals.front()) {
              constant = false;
              break;
            }
          }
          if (!constant) assigns.add_signal(decoded.name(k), std::vector<sg::V4>(vals));
        }
        solved = !assigns.empty();
      }
    }
    if (!solved) {
      if (result.failure_reason.empty()) {
        result.failure_reason = result.hit_limit
                                    ? "SAT limit during class insertion"
                                    : "target class not separable within the signal bound";
      }
      break;
    }
    // Per-insertion re-expansion is this baseline's inner loop: skip the
    // O(V·E) structural re-check, the expansion itself enforces the
    // invariants.
    g = sg::expand(g, assigns, /*check_consistency=*/false).graph;
    result.insertions += static_cast<int>(assigns.num_signals());
  }

  const auto final_analysis = sg::analyze_csc(g);
  result.success = final_analysis.satisfied();
  if (result.success) result.hit_limit = false;  // transient per-attempt limits recovered
  if (!result.success && result.failure_reason.empty()) {
    result.failure_reason = "insertion budget exhausted";
    result.hit_limit = true;
  }
  result.final_states = g.num_states();
  result.final_signals = g.num_signals();
  result.final_graph = std::move(g);
  if (result.success && opts.derive_logic) {
    result.total_literals =
        core::derive_all_logic(result.final_graph, opts.minimize, &result.covers);
  }
  result.seconds = timer.seconds();
  return result;
}

LavagnoResult lavagno_synthesis(const stg::Stg& stg, const LavagnoOptions& opts) {
  sg::StateGraph g = sg::StateGraph::from_stg(stg);
  bool silent = false;
  for (sg::StateId s = 0; s < g.num_states() && !silent; ++s) {
    for (const sg::Edge& e : g.out(s)) {
      if (e.is_silent()) silent = true;
    }
  }
  if (silent) g = sg::contract_silent(g);
  return lavagno_synthesis(g, opts);
}

}  // namespace mps::baseline

// The direct (no-decomposition) baseline: Vanbekbergen et al.'s generalized
// state assignment [22], reconstructed.  One SAT formula over the complete
// state graph encodes all consistency, semi-modularity and CSC constraints
// for m state signals; m starts at the lower bound and grows until
// satisfiable.  This is the method whose formulas reach tens of thousands
// of clauses (mmu0: 35,386 in the paper) and whose search hits the
// backtrack limit on the large Table-1 entries.
#pragma once

#include <string>
#include <vector>

#include "core/partition_sat.hpp"
#include "core/synthesis.hpp"
#include "logic/minimize.hpp"
#include "sg/state_graph.hpp"

namespace mps::baseline {

struct DirectOptions {
  encoding::EncodeOptions encode;
  sat::SolveOptions solve;          ///< set max_backtracks/time_limit_s for Table-1 runs
  logic::MinimizeOptions minimize;
  std::size_t max_new_signals = 10;
  int max_rounds = 6;
  bool derive_logic = true;
};

struct DirectResult {
  bool success = false;
  bool hit_limit = false;  ///< the paper's "SAT Backtrack Limit" outcome
  std::string failure_reason;

  std::size_t initial_states = 0;
  std::size_t initial_signals = 0;
  std::size_t final_states = 0;
  std::size_t final_signals = 0;
  std::size_t total_literals = 0;

  sg::StateGraph final_graph;
  std::vector<std::pair<std::string, logic::Cover>> covers;
  std::vector<core::FormulaStat> formulas;
  int rounds = 0;
  double seconds = 0.0;
  /// DPLL effort summed over every formula attempt (including the one that
  /// hit the limit on the "SAT Backtrack Limit" rows).
  sat::SolverTotals solver_totals;
};

DirectResult direct_synthesis(const sg::StateGraph& g, const DirectOptions& opts = {});
DirectResult direct_synthesis(const stg::Stg& stg, const DirectOptions& opts = {});

}  // namespace mps::baseline

// The Table-1 benchmark suite, re-authored (see DESIGN.md §2: the original
// HP/SIS .g files are not redistributable; these STGs match the published
// signal counts and interface roles, and land in the same state-count
// regime — EXPERIMENTS.md reports paper-vs-measured for every row).
//
// Each entry carries the paper's reported numbers so the bench harness can
// print them side by side with ours.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "stg/stg.hpp"

namespace mps::benchmarks {

/// One row of the paper's Table 1 (values as printed there).
struct PaperRow {
  int initial_states = 0;
  int initial_signals = 0;
  // Our Method (Decomposition)
  int m_final_states = 0;
  int m_final_signals = 0;
  int m_area = 0;
  double m_cpu_s = 0.0;
  // Vanbekbergen et al. (No Decomposition); limit == true -> "SAT
  // Backtrack Limit" row, the numeric fields then hold 0.
  bool v_limit = false;
  int v_final_states = 0;
  int v_final_signals = 0;
  int v_area = 0;
  double v_cpu_s = 0.0;
  // Lavagno & Moon et al.; note != nullptr -> non-numeric cell
  // ("Internal State Error", "Non-Free-Choice STG").
  const char* l_note = nullptr;
  int l_final_signals = 0;
  int l_area = 0;
  double l_cpu_s = 0.0;
};

struct Benchmark {
  std::string name;
  stg::Stg (*make)();
  PaperRow paper;
};

/// All 23 Table-1 benchmarks, in the paper's (descending state count) order.
const std::vector<Benchmark>& table1_benchmarks();

/// Lookup by name; nullopt if unknown.
const Benchmark* find_benchmark(const std::string& name);

}  // namespace mps::benchmarks

#include "benchmarks/benchmarks.hpp"

#include "benchmarks/generators.hpp"

namespace mps::benchmarks {

namespace {

// Shorthand fragment builders.  A "hs" is a four-phase handshake
// (r+ a+ r- a-), a "dhs" runs the handshake twice per cycle, and a
// "pulse" is a bare x+ x- (the classic CSC-conflict producer: the state
// before x+ and after x- share a code).
Frag hs(SpStg& s, const std::string& r, const std::string& a) {
  return s.chain({r + "+", a + "+", r + "-", a + "-"});
}
Frag dhs(SpStg& s, const std::string& r, const std::string& a) {
  return s.chain({r + "+", a + "+", r + "-", a + "-", r + "+/1", a + "+/1", r + "-/1",
                  a + "-/1"});
}
Frag hs2(SpStg& s, const std::string& r, const std::string& a) {  // second instance
  return s.chain({r + "+/1", a + "+/1", r + "-/1", a + "-/1"});
}
Frag pulse(SpStg& s, const std::string& x) { return s.chain({x + "+", x + "-"}); }

// --- large controllers -------------------------------------------------

// mr0: a memory-read controller, 11 signals.  Two phases of three-way
// concurrent bank handshakes (the banks are re-used across phases), with a
// transfer strobe between them and a data-done pulse overlapping phase 2.
stg::Stg make_mr0() {
  SpStg s("mr0");
  s.input("req").output("ack");
  s.output("r0").input("a0").output("r1").input("a1").output("r2").input("a2");
  s.output("x").output("d").input("e");
  const Frag body = s.seq({
      s.chain({"req+"}),
      s.par({hs(s, "r0", "a0"), hs(s, "r1", "a1"), hs(s, "r2", "a2")}),
      s.chain({"x+"}),
      s.par({hs2(s, "r0", "a0"), hs2(s, "r1", "a1"),
             s.chain({"d+", "e+", "d-", "e-", "d+/1", "d-/1"})}),
      s.chain({"x-", "ack+", "req-", "ack-"}),
  });
  return s.close_loop(body);
}

// mr1: the smaller memory-read controller, 8 signals: two banks with
// double handshakes per cycle plus a precharge pulse in parallel.
stg::Stg make_mr1() {
  SpStg s("mr1");
  s.input("req").output("ack");
  s.output("r0").input("a0").output("r1").input("a1");
  s.output("pr").input("pa");
  const Frag body = s.seq({
      s.chain({"req+"}),
      s.par({dhs(s, "r0", "a0"),
             s.chain({"r1+", "a1+", "r1-", "a1-", "r1+/1", "r1-/1"}), pulse(s, "pr")}),
      s.chain({"pa+", "ack+", "req-", "pa-", "ack-"}),
  });
  return s.close_loop(body);
}

// mmu0: memory-management unit, 8 signals: three concurrent activities
// (a translation channel that fires twice, a table-walk handshake, a map
// strobe) joined by a completion detector v that alone triggers ack — the
// structure that lets the per-output modules stay small.
stg::Stg make_mmu0() {
  SpStg s("mmu0");
  s.input("req").output("ack");
  s.output("t0").input("u0").output("t1").input("u1");
  s.output("m").input("v");
  const Frag body = s.seq({
      s.chain({"req+"}),
      s.par({s.chain({"t0+", "u0+", "t0-", "u0-", "t0+/1", "t0-/1"}), hs(s, "t1", "u1"),
             s.chain({"m+", "m-", "m+/1", "m-/1"})}),
      s.chain({"v+", "ack+", "req-", "v-", "ack-"}),
  });
  return s.close_loop(body);
}

// mmu1: the smaller MMU, 8 signals, a single concurrent phase.
stg::Stg make_mmu1() {
  SpStg s("mmu1");
  s.input("req").output("ack");
  s.output("t0").input("u0").output("t1").input("u1");
  s.output("m").input("v");
  const Frag body = s.seq({
      s.chain({"req+"}),
      s.par({hs(s, "t0", "u0"), hs(s, "t1", "u1"), pulse(s, "m")}),
      s.chain({"v+", "ack+", "req-", "v-", "ack-"}),
  });
  return s.close_loop(body);
}

// sbuf-ram-write: 10 signals, two consecutive two-way concurrent phases.
stg::Stg make_sbuf_ram_write() {
  SpStg s("sbuf-ram-write");
  s.input("req").output("ack");
  s.output("w0").input("b0").output("w1").input("b1");
  s.output("w2").input("b2").output("w3").input("b3");
  const Frag body = s.seq({
      s.chain({"req+"}),
      s.par({hs(s, "w0", "b0"), hs(s, "w1", "b1")}),
      s.par({hs(s, "w2", "b2"), hs(s, "w3", "b3")}),
      s.chain({"ack+", "req-", "ack-"}),
  });
  return s.close_loop(body);
}

// vbe4a: 6 signals, one wide concurrent phase with asymmetric channels.
stg::Stg make_vbe4a() {
  SpStg s("vbe4a");
  s.input("a").output("f");
  s.output("b").input("c").output("d").input("e");
  const Frag body = s.seq({
      s.chain({"a+"}),
      s.par({hs(s, "b", "c"),
             s.chain({"d+", "e+", "d-", "e-", "d+/1", "e+/1", "d-/1", "e-/1", "d+/2",
                      "d-/2"})}),
      s.chain({"f+", "a-", "f-"}),
  });
  return s.close_loop(body);
}

// nak-pa: negative-acknowledge protocol adapter, 9 signals.
stg::Stg make_nak_pa() {
  SpStg s("nak-pa");
  s.input("req").output("ack");
  s.output("r0").input("a0").output("r1").input("a1");
  s.output("n").output("p").input("q");
  const Frag body = s.seq({
      s.chain({"req+"}),
      s.par({hs(s, "r0", "a0"), dhs(s, "r1", "a1")}),
      s.chain({"n+", "n-"}),
      s.par({pulse(s, "p"), s.chain({"q+", "q-"})}),
      s.chain({"ack+", "req-", "ack-"}),
  });
  return s.close_loop(body);
}

// pe-rcv-ifc-fc: a free-choice receiver interface, 8 signals: the packet
// kind chooses between two handshake branches.
stg::Stg make_pe_rcv_ifc_fc() {
  SpStg s("pe-rcv-ifc-fc");
  s.input("rcv").output("done");
  s.input("p").output("q").output("u").internal("k");
  s.input("t").output("v");
  const Frag branch_data =
      s.seq({s.chain({"p+"}),
             s.par({s.chain({"u+", "u-", "u+/1", "u-/1"}),
                    s.chain({"k+", "k-", "k+/1", "k-/1"})}),
             s.chain({"q+", "p-", "q-"})});
  const Frag branch_ctl = hs(s, "t", "v");
  const Frag body = s.seq({
      s.chain({"rcv+"}),
      s.choice("kind", {branch_data, branch_ctl}),
      s.chain({"done+", "rcv-", "done-"}),
  });
  return s.close_loop(body);
}

// ram-read-sbuf: 10 signals, a mostly sequential read with one concurrent
// precharge phase.
stg::Stg make_ram_read_sbuf() {
  SpStg s("ram-read-sbuf");
  s.input("req").output("ack");
  s.output("ra").input("rd");
  s.output("pc").input("pd");
  s.output("s0").input("s1");
  s.output("ld").input("dn");
  const Frag body = s.seq({
      s.chain({"req+", "ra+", "rd+"}),
      s.par({s.chain({"pc+", "pc-", "pc+/1", "pc-/1"}),
             s.chain({"s0+", "s1+", "s0-", "s1-"})}),
      s.chain({"ra-", "rd-", "ld+", "dn+", "ld-", "dn-", "pd+", "ack+", "req-", "pd-",
               "ack-"}),
  });
  return s.close_loop(body);
}

// alex-nonfc: a NON-free-choice arbiter between two clients (the shared
// mutual-exclusion place feeds transitions with different presets).  Built
// on the raw builder: the fragment algebra only makes free-choice nets.
stg::Stg make_alex_nonfc() {
  stg::Builder b("alex-nonfc");
  b.inputs({"r1", "r2"}).outputs({"g1", "d1", "g2", "d2"});
  // Client i: ri+ -> gi+ -> di+ -> di- -> ri- -> gi- -> (back to ri+).
  for (const char* i : {"1", "2"}) {
    const std::string r = std::string("r") + i;
    const std::string g = std::string("g") + i;
    const std::string d = std::string("d") + i;
    b.arc(r + "+", g + "+");
    b.arc(g + "+", d + "+");
    b.arc(d + "+", d + "-");
    b.arc(d + "-", r + "-");
    b.arc(r + "-", g + "-");
    b.arc(g + "-", r + "+");
    b.token(g + "-", r + "+");
  }
  // The arbiter: grants exclude each other.  g1+ consumes the token of
  // place "me"; g1- returns it (same for client 2) — non-free-choice.
  b.arc("me", "g1+").arc("me", "g2+");
  b.arc("g1-", "me").arc("g2-", "me");
  b.token_on("me");
  return b.build();
}

// sbuf-send-pkt2: 6 signals, sequential with one short concurrent burst.
stg::Stg make_sbuf_send_pkt2() {
  SpStg s("sbuf-send-pkt2");
  s.input("send").output("done");
  s.output("p0").input("q0").output("p1").input("q1");
  const Frag body = s.seq({
      s.chain({"send+", "p0+", "q0+"}),
      s.par({s.chain({"p0-", "q0-"}), s.chain({"p1+", "p1-", "p1+/1", "p1-/1"})}),
      s.chain({"q1+", "done+", "send-", "q1-", "done-"}),
  });
  return s.close_loop(body);
}

// sbuf-send-ctl: 6 signals, two sequential internal handshakes per cycle.
stg::Stg make_sbuf_send_ctl() {
  SpStg s("sbuf-send-ctl");
  s.input("send").output("done");
  s.output("c0").input("e0").output("c1").input("e1");
  const Frag body = s.seq({
      s.chain({"send+"}),
      hs(s, "c0", "e0"),
      s.par({hs(s, "c1", "e1"), pulse(s, "done")}),
      s.chain({"send-"}),
  });
  return s.close_loop(body);
}

// atod: analog-to-digital controller, 6 signals, sequential convert /
// sample phases.
stg::Stg make_atod() {
  SpStg s("atod");
  s.input("go").output("rdy");
  s.output("sm").input("se").output("cv").input("ce");
  const Frag body = s.seq({
      s.chain({"go+"}),
      s.par({hs(s, "sm", "se"), pulse(s, "cv")}),
      s.chain({"ce+", "rdy+", "go-", "ce-", "rdy-"}),
  });
  return s.close_loop(body);
}

// pa: 4 signals, one asymmetric concurrent phase.
stg::Stg make_pa() {
  SpStg s("pa");
  s.input("r").output("a");
  s.output("x").output("y");
  const Frag body = s.seq({
      s.chain({"r+"}),
      s.par({s.chain({"x+", "x-", "x+/1", "x-/1"}), pulse(s, "y")}),
      s.chain({"a+", "r-", "a-"}),
  });
  return s.close_loop(body);
}

// alloc-outbound: 7 signals, sequential allocate with a parallel tail.
stg::Stg make_alloc_outbound() {
  SpStg s("alloc-outbound");
  s.input("req").output("ack");
  s.output("al").input("av");
  s.output("sd").input("sv").output("fr");
  const Frag body = s.seq({
      s.chain({"req+", "al+", "av+"}),
      s.par({s.chain({"al-", "av-"}), s.chain({"sd+", "sv+"})}),
      s.chain({"sd-", "sv-", "fr+", "ack+", "req-", "fr-", "ack-"}),
  });
  return s.close_loop(body);
}

// wrdata: 4 signals, write-data strobe with a double pulse.
stg::Stg make_wrdata() {
  SpStg s("wrdata");
  s.input("w").output("k");
  s.output("d").input("v");
  const Frag body = s.seq({
      s.chain({"w+"}),
      s.par({s.chain({"d+", "d-", "d+/1", "d-/1"}), pulse(s, "v")}),
      s.chain({"k+", "w-", "k-"}),
  });
  return s.close_loop(body);
}

// fifo: 4 signals, one-stage pipeline control.
stg::Stg make_fifo() {
  SpStg s("fifo");
  s.input("ri").output("ao");
  s.output("r0").input("a0");
  const Frag body = s.seq({
      s.chain({"ri+", "r0+", "a0+"}),
      s.par({s.chain({"r0-", "a0-"}), s.chain({"ao+", "ao-", "ao+/1", "ao-/1"})}),
      s.chain({"ri-"}),
  });
  return s.close_loop(body);
}

// sbuf-read-ctl: 6 signals, short sequential cycle.
stg::Stg make_sbuf_read_ctl() {
  SpStg s("sbuf-read-ctl");
  s.input("rd").output("dn");
  s.output("c").input("e").output("s").input("t");
  const Frag body = s.seq({
      s.chain({"rd+", "c+", "e+"}),
      s.par({s.chain({"c-", "e-"}), s.chain({"s+", "t+"})}),
      s.chain({"dn+", "rd-", "s-", "t-", "dn-"}),
  });
  return s.close_loop(body);
}

// nouse: 3 signals, the classic two-pulse fork.
stg::Stg make_nouse() {
  SpStg s("nouse");
  s.input("a");
  s.output("b").output("c");
  const Frag body = s.seq({
      s.chain({"a+"}),
      s.par({pulse(s, "b"), pulse(s, "c")}),
      s.chain({"a-"}),
  });
  return s.close_loop(body);
}

// vbe-ex2: 2 signals, both pulsing twice per cycle (needs 2 state signals).
stg::Stg make_vbe_ex2() {
  SpStg s("vbe-ex2");
  s.output("x").output("y");
  const Frag body = s.chain({"x+", "x-", "y+", "y-", "x+/1", "x-/1", "y+/1", "y-/1"});
  return s.close_loop(body);
}

// nousc-ser: 3 signals, serial pulses with one repeated signal.
stg::Stg make_nousc_ser() {
  SpStg s("nousc-ser");
  s.input("a").output("b").output("c");
  const Frag body = s.chain({"a+", "b+", "b-", "a-", "b+/1", "c+", "c-", "b-/1"});
  return s.close_loop(body);
}

// sendr-done: 3 signals, a send strobe with a concurrent done pulse.
stg::Stg make_sendr_done() {
  SpStg s("sendr-done");
  s.input("s").output("d").output("e");
  const Frag body = s.seq({
      s.chain({"s+", "d+"}),
      s.par({s.chain({"d-"}), pulse(s, "e")}),
      s.chain({"s-"}),
  });
  return s.close_loop(body);
}

// vbe-ex1: 2 signals, each pulsing once — the minimal CSC-violation STG.
stg::Stg make_vbe_ex1() {
  SpStg s("vbe-ex1");
  s.output("x").output("y");
  const Frag body = s.chain({"x+", "x-", "y+", "y-"});
  return s.close_loop(body);
}

std::vector<Benchmark> build_table() {
  std::vector<Benchmark> t;
  auto add = [&](const char* name, stg::Stg (*make)(), PaperRow row) {
    t.push_back(Benchmark{name, make, row});
  };
  // Paper values transcribed from Table 1.
  add("mr0", make_mr0,
      {302, 11, 469, 14, 41, 2.80, true, 0, 0, 0, 3600.0, nullptr, 13, 86, 1084.5});
  add("mr1", make_mr1,
      {190, 8, 373, 12, 55, 1.73, true, 0, 0, 0, 872.9, nullptr, 10, 53, 237.5});
  add("mmu0", make_mmu0,
      {174, 8, 441, 11, 49, 0.87, true, 0, 0, 0, 406.3, "Internal State Error", 0, 0, 0.0});
  add("mmu1", make_mmu1,
      {82, 8, 131, 10, 50, 0.37, true, 0, 0, 0, 101.3, nullptr, 10, 37, 47.8});
  add("sbuf-ram-write", make_sbuf_ram_write,
      {58, 10, 93, 12, 59, 0.36, false, 90, 12, 74, 5.21, nullptr, 12, 35, 54.6});
  add("vbe4a", make_vbe4a,
      {58, 6, 106, 8, 37, 0.19, false, 116, 8, 40, 0.25, nullptr, 8, 41, 5.5});
  add("nak-pa", make_nak_pa,
      {56, 9, 59, 10, 25, 0.20, false, 58, 10, 32, 0.08, nullptr, 10, 41, 20.8});
  add("pe-rcv-ifc-fc", make_pe_rcv_ifc_fc,
      {46, 8, 50, 9, 48, 0.24, false, 53, 9, 50, 0.13, nullptr, 9, 62, 14.3});
  add("ram-read-sbuf", make_ram_read_sbuf,
      {36, 10, 44, 11, 28, 0.15, false, 53, 11, 44, 0.06, nullptr, 11, 23, 65.2});
  add("alex-nonfc", make_alex_nonfc,
      {24, 6, 31, 7, 26, 0.05, false, 28, 7, 22, 0.03, "Non-Free-Choice STG", 0, 0, 0.0});
  add("sbuf-send-pkt2", make_sbuf_send_pkt2,
      {21, 6, 26, 7, 20, 0.04, false, 27, 7, 29, 0.04, nullptr, 7, 14, 8.6});
  add("sbuf-send-ctl", make_sbuf_send_ctl,
      {20, 6, 32, 8, 33, 0.09, false, 28, 8, 35, 0.03, nullptr, 8, 43, 3.4});
  add("atod", make_atod,
      {20, 6, 26, 7, 15, 0.02, false, 24, 7, 16, 0.01, nullptr, 7, 19, 2.9});
  add("pa", make_pa,
      {18, 4, 34, 6, 18, 0.12, false, 31, 6, 22, 0.06, "Internal State Error", 0, 0, 0.0});
  add("alloc-outbound", make_alloc_outbound,
      {17, 7, 29, 9, 33, 0.09, false, 24, 9, 27, 0.04, nullptr, 9, 23, 2.5});
  add("wrdata", make_wrdata,
      {16, 4, 20, 5, 17, 0.03, false, 19, 5, 18, 0.01, nullptr, 5, 21, 0.9});
  add("fifo", make_fifo,
      {16, 4, 23, 5, 15, 0.03, false, 20, 5, 17, 0.02, nullptr, 5, 15, 0.7});
  add("sbuf-read-ctl", make_sbuf_read_ctl,
      {14, 6, 18, 7, 16, 0.06, false, 16, 7, 20, 0.01, nullptr, 7, 15, 1.5});
  add("nouse", make_nouse,
      {12, 3, 16, 4, 12, 0.01, false, 16, 4, 12, 0.01, nullptr, 4, 14, 0.5});
  add("vbe-ex2", make_vbe_ex2,
      {8, 2, 12, 4, 18, 0.08, false, 12, 4, 18, 0.03, nullptr, 4, 21, 0.5});
  add("nousc-ser", make_nousc_ser,
      {8, 3, 10, 4, 9, 0.02, false, 10, 4, 9, 0.01, nullptr, 4, 11, 0.4});
  add("sendr-done", make_sendr_done,
      {7, 3, 10, 4, 8, 0.02, false, 10, 4, 8, 0.01, nullptr, 4, 6, 0.4});
  add("vbe-ex1", make_vbe_ex1,
      {5, 2, 8, 3, 7, 0.01, false, 8, 3, 7, 0.01, nullptr, 3, 7, 0.3});
  return t;
}

}  // namespace

const std::vector<Benchmark>& table1_benchmarks() {
  static const std::vector<Benchmark> table = build_table();
  return table;
}

const Benchmark* find_benchmark(const std::string& name) {
  for (const Benchmark& b : table1_benchmarks()) {
    if (b.name == name) return &b;
  }
  return nullptr;
}

}  // namespace mps::benchmarks

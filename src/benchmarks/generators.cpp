#include "benchmarks/generators.hpp"

#include <algorithm>

namespace mps::benchmarks {

Frag SpStg::chain(const std::vector<std::string>& tokens) {
  MPS_ASSERT(!tokens.empty());
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    builder_.arc(tokens[i], tokens[i + 1]);
  }
  return Frag{{tokens.front()}, {tokens.back()}, false, false};
}

void SpStg::connect(const Frag& from, const Frag& to, bool with_token) {
  MPS_ASSERT(!(from.tail_is_place && to.head_is_place));
  // A place feeding several transitions is a *choice*; in series
  // composition that would be accidental, so forbid it.
  MPS_ASSERT(!(from.tail_is_place && to.heads.size() > 1));
  for (const auto& src : from.tails) {
    for (const auto& dst : to.heads) {
      builder_.arc(src, dst);
      if (with_token && !from.tail_is_place && !to.head_is_place) {
        builder_.token(src, dst);
      }
    }
  }
  if (with_token && from.tail_is_place) {
    for (const auto& src : from.tails) builder_.token_on(src);
  }
  if (with_token && to.head_is_place) {
    for (const auto& dst : to.heads) builder_.token_on(dst);
  }
}

Frag SpStg::seq(const std::vector<Frag>& frags) {
  MPS_ASSERT(!frags.empty());
  for (std::size_t i = 0; i + 1 < frags.size(); ++i) {
    connect(frags[i], frags[i + 1], /*with_token=*/false);
  }
  Frag out;
  out.heads = frags.front().heads;
  out.head_is_place = frags.front().head_is_place;
  out.tails = frags.back().tails;
  out.tail_is_place = frags.back().tail_is_place;
  return out;
}

Frag SpStg::par(const std::vector<Frag>& frags) {
  MPS_ASSERT(frags.size() >= 2);
  Frag out;
  for (const Frag& f : frags) {
    MPS_ASSERT(!f.head_is_place && !f.tail_is_place);  // transition boundaries only
    out.heads.insert(out.heads.end(), f.heads.begin(), f.heads.end());
    out.tails.insert(out.tails.end(), f.tails.begin(), f.tails.end());
  }
  return out;
}

Frag SpStg::choice(const std::string& name, const std::vector<Frag>& frags) {
  MPS_ASSERT(frags.size() >= 2);
  const std::string split = name + "_c";
  const std::string merge = name + "_m";
  for (const Frag& f : frags) {
    MPS_ASSERT(!f.head_is_place && f.heads.size() == 1);
    MPS_ASSERT(!f.tail_is_place);
    builder_.arc(split, f.heads.front());
    for (const auto& t : f.tails) builder_.arc(t, merge);
  }
  return Frag{{split}, {merge}, true, true};
}

stg::Stg SpStg::close_loop(const Frag& top) {
  connect(top, top, /*with_token=*/true);
  return builder_.build();
}

// ---------------------------------------------------------------------

stg::Stg gen_parallelizer(const std::string& name, int channels) {
  MPS_ASSERT(channels >= 1);
  SpStg s(name);
  s.input("rm").output("am");
  std::vector<Frag> slaves;
  SpStg* sp = &s;
  for (int i = 0; i < channels; ++i) {
    const std::string r = "r" + std::to_string(i);
    const std::string a = "a" + std::to_string(i);
    s.output(r).input(a);
    slaves.push_back(sp->chain({r + "+", a + "+", r + "-", a + "-"}));
  }
  const Frag body = channels == 1
                        ? s.seq({s.chain({"rm+"}), slaves[0], s.chain({"am+", "rm-", "am-"})})
                        : s.seq({s.chain({"rm+"}), s.par(slaves),
                                 s.chain({"am+", "rm-", "am-"})});
  return s.close_loop(body);
}

stg::Stg gen_sequencer(const std::string& name, int stages) {
  MPS_ASSERT(stages >= 1);
  SpStg s(name);
  s.input("r").output("a");
  std::vector<std::string> tokens{"r+"};
  for (int i = 0; i < stages; ++i) {
    const std::string p = "p" + std::to_string(i);
    const std::string q = "q" + std::to_string(i);
    s.output(p).input(q);
    for (const char* suffix : {"+", "-"}) {
      tokens.push_back(p + suffix);
      tokens.push_back(q + suffix);
    }
    // Full internal handshake per stage: p+ q+ p- q-.
    std::swap(tokens[tokens.size() - 2], tokens[tokens.size() - 3]);
  }
  tokens.push_back("a+");
  tokens.push_back("r-");
  tokens.push_back("a-");
  return s.close_loop(s.chain(tokens));
}

namespace {

Frag pipeline_stage(SpStg& s, int i, int stages) {
  const std::string r = "r" + std::to_string(i);
  const std::string a = "a" + std::to_string(i);
  s.output(r).input(a);
  const Frag rise = s.chain({r + "+", a + "+"});
  const Frag fall = s.chain({r + "-", a + "-"});
  if (i + 1 == stages) return s.seq({rise, fall});
  // Return-to-zero overlaps with the downstream stage.
  const Frag next = pipeline_stage(s, i + 1, stages);
  return s.seq({rise, s.par({fall, next})});
}

}  // namespace

stg::Stg gen_pipeline(const std::string& name, int stages) {
  MPS_ASSERT(stages >= 1);
  SpStg s(name);
  // A leading environment handshake keeps stage 0's fork well-formed.
  s.input("ri").output("ao");
  const Frag body =
      s.seq({s.chain({"ri+"}), pipeline_stage(s, 0, stages), s.chain({"ao+", "ri-", "ao-"})});
  return s.close_loop(body);
}

stg::Stg gen_toggle_ring(const std::string& name, int signals) {
  MPS_ASSERT(signals >= 2);
  SpStg s(name);
  std::vector<std::string> tokens;
  for (int i = 0; i < signals; ++i) {
    const std::string x = "x" + std::to_string(i);
    s.output(x);
    tokens.push_back(x + "+");
    tokens.push_back(x + "-");
  }
  return s.close_loop(s.chain(tokens));
}

namespace {

struct RandomCtx {
  SpStg* s;
  util::Rng* rng;
  const RandomStgOptions* opts;
  int next_signal = 0;
  int guards = 0;

  std::string fresh_signal() {
    const std::string n = "x" + std::to_string(next_signal++);
    if (rng->chance(opts->input_prob)) {
      s->input(n);
    } else {
      s->output(n);
    }
    return n;
  }
  std::string fresh_guard() {
    const std::string n = "g" + std::to_string(guards++);
    s->internal(n);
    return n;
  }
  int remaining() const { return opts->num_signals - next_signal; }
};

Frag random_block(RandomCtx& ctx, int depth) {
  if (depth <= 0 || ctx.remaining() <= 1) {
    const std::string x = ctx.fresh_signal();
    if (ctx.remaining() > 0 && ctx.rng->chance(0.4)) {
      // Handshake leaf.
      const std::string y = ctx.fresh_signal();
      return ctx.s->chain({x + "+", y + "+", x + "-", y + "-"});
    }
    return ctx.s->chain({x + "+", x + "-"});  // pulse leaf: high conflict density
  }
  const double dice = ctx.rng->uniform();
  if (dice < ctx.opts->choice_prob && ctx.remaining() >= 3) {
    // Guarded choice between two alternatives.
    const std::string g = ctx.fresh_guard();
    const Frag alt1 = random_block(ctx, depth - 1);
    const Frag alt2 = random_block(ctx, depth - 1);
    const Frag ch = ctx.s->choice(g + "ch", {alt1, alt2});
    return ctx.s->seq({ctx.s->chain({g + "+"}), ch, ctx.s->chain({g + "-"})});
  }
  if (dice < 0.55 && ctx.remaining() >= 3) {
    // Guarded parallel.
    const std::string g = ctx.fresh_guard();
    const int width =
        2 + static_cast<int>(ctx.rng->below(
                static_cast<std::uint64_t>(std::max(1, ctx.opts->max_par_width - 1))));
    std::vector<Frag> branches;
    for (int i = 0; i < width && ctx.remaining() > 0; ++i) {
      branches.push_back(random_block(ctx, depth - 1));
    }
    if (branches.size() < 2) return ctx.s->seq({ctx.s->chain({g + "+", g + "-"}), branches[0]});
    return ctx.s->seq(
        {ctx.s->chain({g + "+"}), ctx.s->par(branches), ctx.s->chain({g + "-"})});
  }
  // Series of two blocks.
  const Frag a = random_block(ctx, depth - 1);
  const Frag b = random_block(ctx, depth - 1);
  return ctx.s->seq({a, b});
}

}  // namespace

stg::Stg random_stg(util::Rng& rng, const RandomStgOptions& opts) {
  SpStg s("random");
  RandomCtx ctx{&s, &rng, &opts, 0, 0};
  Frag body = random_block(ctx, opts.max_depth);
  if (body.head_is_place || body.tail_is_place) {
    const std::string g = ctx.fresh_guard();
    body = s.seq({s.chain({g + "+"}), body, s.chain({g + "-"})});
  }
  return s.close_loop(body);
}

}  // namespace mps::benchmarks

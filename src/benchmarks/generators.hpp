// Parametric STG construction.
//
// The paper's Table 1 uses the HP/SIS asynchronous benchmark suite, which
// is not redistributable here; DESIGN.md records the substitution.  This
// module provides the machinery the re-authored suite (benchmarks.cpp) and
// the property/scaling benches are built from:
//
//   * SpStg — a series / parallel / choice fragment algebra over signal
//     transitions that yields live, safe, consistent STGs by construction,
//   * generator families (handshake chains, parallelizers, pipelines,
//     sequencers) with tunable concurrency and CSC-conflict structure,
//   * a seeded random well-formed STG generator for property tests.
#pragma once

#include <string>
#include <vector>

#include "stg/builder.hpp"
#include "stg/stg.hpp"
#include "util/common.hpp"

namespace mps::benchmarks {

/// A fragment of behaviour with transition (or place) boundaries.
struct Frag {
  std::vector<std::string> heads;  ///< entry tokens
  std::vector<std::string> tails;  ///< exit tokens
  bool head_is_place = false;      ///< heads = single explicit place name
  bool tail_is_place = false;
};

/// Fragment algebra on top of stg::Builder.  Typical use:
///
///   SpStg s("mmu0");
///   s.input("ri"); s.output("ro"); ...
///   auto body = s.seq({s.chain({"ri+", "ro+"}),
///                      s.par({s.chain({"a+", "a-"}), s.chain({"b+", "b-"})}),
///                      s.chain({"ro-", "ri-"})});
///   auto stg = s.close_loop(body);
///
/// Liveness/safety/consistency hold by construction: fragments are
/// single-entry/single-exit regions composed in series, parallel (fork /
/// join on the neighbouring transitions) or guarded choice (explicit
/// place), and close_loop() puts the initial tokens on the back arcs.
class SpStg {
 public:
  explicit SpStg(std::string name) : builder_(std::move(name)) {}

  SpStg& input(const std::string& n) {
    builder_.input(n);
    return *this;
  }
  SpStg& output(const std::string& n) {
    builder_.output(n);
    return *this;
  }
  SpStg& internal(const std::string& n) {
    builder_.internal(n);
    return *this;
  }

  /// Sequential chain of transition tokens ("a+", "b-/1", ...).
  Frag chain(const std::vector<std::string>& tokens);
  /// Series composition.
  Frag seq(const std::vector<Frag>& frags);
  /// Parallel composition: callers must place it between transitions (the
  /// neighbouring seq elements fork/join it).
  Frag par(const std::vector<Frag>& frags);
  /// Guarded choice through explicit places `<name>_c` / `<name>_m`:
  /// each alternative must start and end with a transition.
  Frag choice(const std::string& name, const std::vector<Frag>& frags);

  /// Close the top-level loop (tails -> heads arcs carry the initial
  /// tokens) and build the STG.
  stg::Stg close_loop(const Frag& top);

  stg::Builder& raw() { return builder_; }

 private:
  void connect(const Frag& from, const Frag& to, bool with_token);

  stg::Builder builder_;
  int place_counter_ = 0;
};

// ---------------------------------------------------------------------
// Generator families.
// ---------------------------------------------------------------------

/// A master handshake that forks into `channels` parallel slave handshakes
/// (2 signals per channel) and joins before acknowledging — the structure
/// of DMA/memory controllers.  Signals: 2 + 2*channels.
stg::Stg gen_parallelizer(const std::string& name, int channels);

/// An n-stage handshake sequencer: one request/acknowledge pair served by
/// n sequential internal handshakes.  CSC conflicts arise between the
/// phases of the sequential section.
stg::Stg gen_sequencer(const std::string& name, int stages);

/// A simple self-timed pipeline control of `stages` stages.
stg::Stg gen_pipeline(const std::string& name, int stages);

/// A pure cycle alternating the given signals twice (rise pass then fall
/// pass): maximal USC/CSC conflict density, tiny state count.
stg::Stg gen_toggle_ring(const std::string& name, int signals);

struct RandomStgOptions {
  int num_signals = 6;
  int max_par_width = 3;
  int max_depth = 3;
  double choice_prob = 0.15;
  double input_prob = 0.4;
};

/// Random well-formed STG (live, safe, consistent by construction).
stg::Stg random_stg(util::Rng& rng, const RandomStgOptions& opts = {});

}  // namespace mps::benchmarks

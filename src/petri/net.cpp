#include "petri/net.hpp"

#include <algorithm>

namespace mps::petri {

std::string Marking::to_string() const {
  std::string s = "{";
  bool first = true;
  for (std::size_t p = 0; p < tokens_.size(); ++p) {
    for (int k = 0; k < tokens_[p]; ++k) {
      if (!first) s += ", ";
      s += "p" + std::to_string(p);
      first = false;
    }
  }
  s += "}";
  return s;
}

PlaceId Net::add_place(std::string name) {
  places_.push_back(Place{std::move(name), {}, {}});
  return static_cast<PlaceId>(places_.size() - 1);
}

TransId Net::add_transition(std::string name) {
  transitions_.push_back(Transition{std::move(name), {}, {}});
  return static_cast<TransId>(transitions_.size() - 1);
}

void Net::connect_pt(PlaceId p, TransId t) {
  MPS_ASSERT(p < places_.size() && t < transitions_.size());
  places_[p].post.push_back(t);
  transitions_[t].pre.push_back(p);
}

void Net::connect_tp(TransId t, PlaceId p) {
  MPS_ASSERT(p < places_.size() && t < transitions_.size());
  transitions_[t].post.push_back(p);
  places_[p].pre.push_back(t);
}

bool Net::enabled(const Marking& m, TransId t) const {
  MPS_ASSERT(m.size() == places_.size());
  for (PlaceId p : transitions_[t].pre) {
    if (m.tokens(p) == 0) return false;
  }
  return true;
}

std::vector<TransId> Net::enabled_transitions(const Marking& m) const {
  std::vector<TransId> out;
  enabled_transitions(m, &out);
  return out;
}

void Net::enabled_transitions(const Marking& m, std::vector<TransId>* out) const {
  out->clear();
  for (TransId t = 0; t < transitions_.size(); ++t) {
    if (enabled(m, t)) out->push_back(t);
  }
}

Marking Net::fire(const Marking& m, TransId t) const {
  Marking next;
  fire_into(m, t, &next);
  return next;
}

void Net::fire_into(const Marking& m, TransId t, Marking* out) const {
  MPS_ASSERT(enabled(m, t));
  *out = m;  // copy-assign reuses *out's storage in the reachability loop
  for (PlaceId p : transitions_[t].pre) out->remove_token(p);
  for (PlaceId p : transitions_[t].post) out->add_token(p);
}

}  // namespace mps::petri

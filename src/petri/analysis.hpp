// Structural and behavioural analyses of Petri nets:
//   * structural class predicates (marked graph, free choice) — these are the
//     classes the paper contrasts its generality against (§1: methods limited
//     to marked graphs or safe free-choice nets),
//   * bounded reachability (marking enumeration with limits),
//   * liveness and safety checks on the reachable set.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "petri/net.hpp"

namespace mps::petri {

/// A marked graph: every place has exactly one fan-in and one fan-out
/// transition — pure concurrency, no choice.
bool is_marked_graph(const Net& net);

/// A free-choice net: whenever a place feeds several transitions, it is the
/// *only* fan-in place of each of them (choice is never influenced by
/// concurrency).  Extended free choice (equal presets) is accepted too.
bool is_free_choice(const Net& net);

struct ReachabilityOptions {
  std::size_t max_markings = 1u << 20;  ///< abort above this many markings
  int max_tokens_per_place = 1;         ///< safety bound (1 = safe net)
};

struct ReachabilityResult {
  std::vector<Marking> markings;  ///< index = marking id; [0] is M0
  /// Edges: (from marking id, transition, to marking id), in discovery order.
  struct Edge {
    std::uint32_t from;
    TransId trans;
    std::uint32_t to;
  };
  std::vector<Edge> edges;
  bool safe = true;        ///< no reachable marking puts >1 token in a place
  bool complete = true;    ///< false if max_markings was hit
};

/// Exhaustive token-game exploration from `m0` (breadth-first, deterministic
/// order).  Throws util::LimitError if a marking exceeds max_tokens_per_place
/// + 1 would overflow, sets complete=false if max_markings is reached.
ReachabilityResult reachability(const Net& net, const Marking& m0,
                                const ReachabilityOptions& opts = {});

/// Live = every transition can fire from every reachable marking's future.
/// Checked on the (already computed) reachability graph: every transition
/// appears on an edge, and the graph restricted to states that can reach a
/// firing of each transition covers all states.  For the strongly connected
/// specifications used as benchmarks this degenerates to: the reachability
/// graph is one SCC and every transition occurs.
bool is_live(const Net& net, const ReachabilityResult& reach);

/// True if the reachability graph is a single strongly connected component.
bool is_strongly_connected(const ReachabilityResult& reach);

}  // namespace mps::petri

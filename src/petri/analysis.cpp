#include "petri/analysis.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "obs/obs.hpp"

namespace mps::petri {

bool is_marked_graph(const Net& net) {
  for (PlaceId p = 0; p < net.num_places(); ++p) {
    if (net.place_pre(p).size() != 1 || net.place_post(p).size() != 1) return false;
  }
  return true;
}

bool is_free_choice(const Net& net) {
  // Extended free choice: if two transitions share any fan-in place, their
  // presets must be identical.
  for (PlaceId p = 0; p < net.num_places(); ++p) {
    const auto& post = net.place_post(p);
    if (post.size() <= 1) continue;
    auto preset = [&](TransId t) {
      auto pre = net.trans_pre(t);
      std::sort(pre.begin(), pre.end());
      return pre;
    };
    const auto first = preset(post[0]);
    for (std::size_t i = 1; i < post.size(); ++i) {
      if (preset(post[i]) != first) return false;
    }
  }
  return true;
}

ReachabilityResult reachability(const Net& net, const Marking& m0,
                                const ReachabilityOptions& opts) {
  obs::Span span("petri.reachability");
  ReachabilityResult result;
  const auto finish = [&] {
    span.arg("markings", static_cast<std::int64_t>(result.markings.size()));
    span.arg("edges", static_cast<std::int64_t>(result.edges.size()));
    span.arg("complete", result.complete ? 1 : 0);
  };
  std::unordered_map<Marking, std::uint32_t, MarkingHash> index;

  result.markings.push_back(m0);
  index.emplace(m0, 0);
  // Safety of the initial marking is checked across all places exactly once;
  // after that, a firing can only add tokens to the fired transition's
  // postset, so the per-expansion check below is restricted to it.
  for (PlaceId p = 0; p < net.num_places(); ++p) {
    if (m0.tokens(p) > opts.max_tokens_per_place) result.safe = false;
  }

  // Scratch state reused across expansions: the source-marking copy (needed
  // because result.markings may reallocate while we push successors), the
  // fired marking, and the enabled-transition list.  This keeps the loop
  // allocation-free except for genuinely new markings.
  Marking m, next;
  std::vector<TransId> enabled;

  std::deque<std::uint32_t> frontier{0};
  while (!frontier.empty()) {
    const std::uint32_t from = frontier.front();
    frontier.pop_front();
    m = result.markings[from];
    net.enabled_transitions(m, &enabled);
    for (TransId t : enabled) {
      net.fire_into(m, t, &next);
      for (PlaceId p : net.trans_post(t)) {
        if (next.tokens(p) > opts.max_tokens_per_place) result.safe = false;
      }
      const auto it = index.find(next);
      if (it != index.end()) {
        result.edges.push_back({from, t, it->second});
        continue;
      }
      if (result.markings.size() >= opts.max_markings) {
        result.complete = false;
        finish();
        return result;
      }
      const std::uint32_t id = static_cast<std::uint32_t>(result.markings.size());
      index.emplace(next, id);
      result.markings.push_back(next);
      frontier.push_back(id);
      result.edges.push_back({from, t, id});
    }
  }
  finish();
  return result;
}

namespace {

/// Kosaraju-style SCC count via two BFS passes (graphs here are small).
std::size_t count_sccs(std::size_t n, const std::vector<ReachabilityResult::Edge>& edges) {
  if (n == 0) return 0;
  std::vector<std::vector<std::uint32_t>> fwd(n), rev(n);
  for (const auto& e : edges) {
    fwd[e.from].push_back(e.to);
    rev[e.to].push_back(e.from);
  }
  // Iterative DFS finish order.
  std::vector<int> state(n, 0);  // 0 unvisited, 1 on stack, 2 done
  std::vector<std::uint32_t> order;
  order.reserve(n);
  for (std::uint32_t start = 0; start < n; ++start) {
    if (state[start] != 0) continue;
    std::vector<std::pair<std::uint32_t, std::size_t>> stack{{start, 0}};
    state[start] = 1;
    while (!stack.empty()) {
      auto& [v, i] = stack.back();
      if (i < fwd[v].size()) {
        const std::uint32_t w = fwd[v][i++];
        if (state[w] == 0) {
          state[w] = 1;
          stack.emplace_back(w, 0);
        }
      } else {
        state[v] = 2;
        order.push_back(v);
        stack.pop_back();
      }
    }
  }
  // Reverse pass in decreasing finish order.
  std::vector<bool> seen(n, false);
  std::size_t sccs = 0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (seen[*it]) continue;
    ++sccs;
    std::vector<std::uint32_t> stack{*it};
    seen[*it] = true;
    while (!stack.empty()) {
      const std::uint32_t v = stack.back();
      stack.pop_back();
      for (std::uint32_t w : rev[v]) {
        if (!seen[w]) {
          seen[w] = true;
          stack.push_back(w);
        }
      }
    }
  }
  return sccs;
}

}  // namespace

bool is_strongly_connected(const ReachabilityResult& reach) {
  return count_sccs(reach.markings.size(), reach.edges) == 1;
}

bool is_live(const Net& net, const ReachabilityResult& reach) {
  if (!reach.complete) return false;
  std::vector<bool> fires(net.num_transitions(), false);
  for (const auto& e : reach.edges) fires[e.trans] = true;
  if (std::find(fires.begin(), fires.end(), false) != fires.end()) return false;
  // For cyclic specifications: single SCC + every transition firing somewhere
  // implies every transition remains fireable from everywhere.
  return is_strongly_connected(reach);
}

}  // namespace mps::petri

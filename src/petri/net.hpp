// Petri nets: the underlying formalism of signal transition graphs.
//
// A net is <P, T, F, M0>: places, transitions, a flow relation and an
// initial marking (§2 of the paper).  Nets here are place/transition nets
// with unit arc weights — exactly what STGs need.  Markings are general
// (a place may hold more than one token) so that safety violations in a
// user specification are *detected*, not silently mangled; the reachability
// engine in sg:: caps both the token count per place and the number of
// markings explored.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace mps::petri {

using PlaceId = std::uint32_t;
using TransId = std::uint32_t;
inline constexpr std::uint32_t kNoId = 0xFFFFFFFFu;

/// A marking: tokens per place.  Token counts are capped at 255; STG
/// state graphs of interest are safe (0/1 tokens), the slack exists only
/// so unsafe specifications fail loudly in analysis rather than here.
class Marking {
 public:
  Marking() = default;
  explicit Marking(std::size_t num_places) : tokens_(num_places, 0) {}

  std::size_t size() const { return tokens_.size(); }
  std::uint8_t tokens(PlaceId p) const { return tokens_[p]; }

  void add_token(PlaceId p) {
    if (tokens_[p] == 255) throw util::SemanticsError("marking overflow: place token count > 255");
    ++tokens_[p];
  }
  void remove_token(PlaceId p) {
    MPS_ASSERT(tokens_[p] > 0);
    --tokens_[p];
  }

  bool operator==(const Marking& other) const { return tokens_ == other.tokens_; }
  bool operator!=(const Marking& other) const { return !(*this == other); }

  std::uint64_t hash() const {
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (auto t : tokens_) h = util::hash_combine(h, t);
    return h;
  }

  /// True if no place holds more than one token.
  bool is_safe() const {
    for (auto t : tokens_)
      if (t > 1) return false;
    return true;
  }

  std::string to_string() const;

 private:
  std::vector<std::uint8_t> tokens_;
};

struct MarkingHash {
  std::size_t operator()(const Marking& m) const { return static_cast<std::size_t>(m.hash()); }
};

/// A place/transition net with unit arc weights.
class Net {
 public:
  PlaceId add_place(std::string name);
  TransId add_transition(std::string name);

  /// Arc place -> transition.
  void connect_pt(PlaceId p, TransId t);
  /// Arc transition -> place.
  void connect_tp(TransId t, PlaceId p);

  std::size_t num_places() const { return places_.size(); }
  std::size_t num_transitions() const { return transitions_.size(); }

  const std::string& place_name(PlaceId p) const { return places_[p].name; }
  const std::string& transition_name(TransId t) const { return transitions_[t].name; }

  const std::vector<TransId>& place_pre(PlaceId p) const { return places_[p].pre; }
  const std::vector<TransId>& place_post(PlaceId p) const { return places_[p].post; }
  const std::vector<PlaceId>& trans_pre(TransId t) const { return transitions_[t].pre; }
  const std::vector<PlaceId>& trans_post(TransId t) const { return transitions_[t].post; }

  /// A transition is enabled when every fan-in place holds a token.
  bool enabled(const Marking& m, TransId t) const;

  /// All enabled transitions in `m`, in id order.
  std::vector<TransId> enabled_transitions(const Marking& m) const;
  /// Allocation-free variant for hot loops: `*out` is cleared and refilled.
  void enabled_transitions(const Marking& m, std::vector<TransId>* out) const;

  /// Fire an enabled transition: M --t--> M'.
  Marking fire(const Marking& m, TransId t) const;
  /// Allocation-free variant: `*out` receives M' (reusing its storage).
  void fire_into(const Marking& m, TransId t, Marking* out) const;

  Marking empty_marking() const { return Marking(places_.size()); }

 private:
  struct Place {
    std::string name;
    std::vector<TransId> pre;   // transitions feeding this place
    std::vector<TransId> post;  // transitions consuming from this place
  };
  struct Transition {
    std::string name;
    std::vector<PlaceId> pre;   // fan-in places
    std::vector<PlaceId> post;  // fan-out places
  };

  std::vector<Place> places_;
  std::vector<Transition> transitions_;
};

}  // namespace mps::petri

// Cubes in positional (two-bit-per-variable) notation, the representation
// used by espresso: for each binary variable, bit0 = "value 0 allowed",
// bit1 = "value 1 allowed".
//   01 -> literal  x'   (variable must be 0)
//   10 -> literal  x    (variable must be 1)
//   11 -> no literal    (don't care)
//   00 -> empty cube    (contradiction)
#pragma once

#include <optional>
#include <string>

#include "util/bitvec.hpp"

namespace mps::logic {

class Cube {
 public:
  Cube() = default;
  /// The universal cube (no literals) over n variables.
  explicit Cube(std::size_t num_vars) : bits_(2 * num_vars, true), num_vars_(num_vars) {}

  /// The minterm cube of a code (every variable a literal).
  static Cube minterm(const util::BitVec& code);
  /// Parse "10-1" (1 = positive literal, 0 = negative, '-' = absent).
  static Cube from_string(std::string_view pattern);

  std::size_t num_vars() const { return num_vars_; }

  bool allows(std::size_t var, bool value) const { return bits_.test(2 * var + (value ? 1 : 0)); }
  /// 0 -> must be 0, 1 -> must be 1, nullopt -> free (or empty).
  std::optional<bool> literal(std::size_t var) const;
  bool has_literal(std::size_t var) const {
    return bits_.test(2 * var) != bits_.test(2 * var + 1);
  }
  /// Set variable to a fixed value (adds/overwrites the literal).
  void set_literal(std::size_t var, bool value);
  /// Remove the literal on `var` (both values allowed).
  void free_var(std::size_t var);

  /// True if some variable allows neither value.
  bool is_empty() const;
  /// Number of literals.
  std::size_t literal_count() const;
  /// log2 of the number of minterms (free variable count), empty -> -1.
  int free_count() const { return static_cast<int>(num_vars_ - literal_count()); }

  /// Does this cube contain the given minterm code?
  bool contains_code(const util::BitVec& code) const;
  /// Cube containment: does this cube contain every minterm of `other`?
  bool contains(const Cube& other) const { return other.bits_.is_subset_of(bits_); }
  /// Do the two cubes share a minterm?
  bool intersects(const Cube& other) const;
  /// Intersection (may be empty; check is_empty()).
  Cube intersect(const Cube& other) const;
  /// Smallest cube containing both.
  Cube supercube(const Cube& other) const;

  /// Number of variables where the cubes' parts are disjoint (espresso
  /// "distance"; 0 = intersecting, 1 = consensus exists).
  std::size_t distance(const Cube& other) const;
  /// Consensus (sharp of the distance-1 merge); nullopt if distance != 1.
  std::optional<Cube> consensus(const Cube& other) const;

  bool operator==(const Cube&) const = default;
  std::uint64_t hash() const { return bits_.hash(); }

  /// "10-1" rendering.
  std::string to_string() const;

 private:
  util::BitVec bits_;
  std::size_t num_vars_ = 0;
};

}  // namespace mps::logic

// Covers: sums of cubes (single-output SOP form).
#pragma once

#include <string>
#include <vector>

#include "logic/cube.hpp"

namespace mps::logic {

class Cover {
 public:
  Cover() = default;
  explicit Cover(std::size_t num_vars) : num_vars_(num_vars) {}
  Cover(std::size_t num_vars, std::vector<Cube> cubes)
      : cubes_(std::move(cubes)), num_vars_(num_vars) {}

  std::size_t num_vars() const { return num_vars_; }
  std::size_t size() const { return cubes_.size(); }
  bool empty() const { return cubes_.empty(); }

  void add(Cube c);
  const Cube& operator[](std::size_t i) const { return cubes_[i]; }
  const std::vector<Cube>& cubes() const { return cubes_; }
  std::vector<Cube>& cubes() { return cubes_; }

  /// Does any cube contain the code?
  bool covers_code(const util::BitVec& code) const;

  /// Total literal count — the paper's "2level Area literals" metric
  /// (unfactored prime irredundant cover, as with espresso -Dso -S1).
  std::size_t literal_count() const;

  /// Remove cubes contained in another single cube of the cover.
  void remove_single_cube_containment();

  /// "10-1 + 1-01" rendering, or named-literal SOP ("a b' + c").
  std::string to_string() const;
  std::string to_expression(const std::vector<std::string>& var_names) const;

 private:
  std::vector<Cube> cubes_;
  std::size_t num_vars_ = 0;
};

}  // namespace mps::logic

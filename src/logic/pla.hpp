// Berkeley PLA (espresso) format I/O for single-output functions: lets the
// extracted next-state functions be dumped for inspection or fed to an
// external espresso for cross-checking, and gives tests a compact fixture
// syntax.
#pragma once

#include <string>
#include <string_view>

#include "logic/minimize.hpp"

namespace mps::logic {

/// Render a minimized cover as a single-output PLA (".i n .o 1", one line
/// per cube, output column 1).
std::string write_pla(const Cover& cover, const std::vector<std::string>& input_names = {});

/// Render an ON/OFF spec as PLA with "1" lines for ON and "0" lines for OFF
/// (type fr).
std::string write_pla(const SopSpec& spec);

/// Parse a single-output PLA: cube lines "<pattern> 1|0|-".  Lines with
/// output 1 populate `on`, 0 populate `off`, '-' are ignored (don't care).
SopSpec parse_pla(std::string_view text);

}  // namespace mps::logic

#include "logic/cube.hpp"

#include "util/common.hpp"

namespace mps::logic {

Cube Cube::minterm(const util::BitVec& code) {
  Cube c(code.size());
  for (std::size_t v = 0; v < code.size(); ++v) c.set_literal(v, code.test(v));
  return c;
}

Cube Cube::from_string(std::string_view pattern) {
  Cube c(pattern.size());
  for (std::size_t v = 0; v < pattern.size(); ++v) {
    switch (pattern[v]) {
      case '0': c.set_literal(v, false); break;
      case '1': c.set_literal(v, true); break;
      case '-':
      case '2': break;
      default: throw util::ParseError(std::string("bad cube character: ") + pattern[v]);
    }
  }
  return c;
}

std::optional<bool> Cube::literal(std::size_t var) const {
  const bool a0 = bits_.test(2 * var);
  const bool a1 = bits_.test(2 * var + 1);
  if (a0 == a1) return std::nullopt;
  return a1;
}

void Cube::set_literal(std::size_t var, bool value) {
  bits_.set(2 * var, !value);
  bits_.set(2 * var + 1, value);
}

void Cube::free_var(std::size_t var) {
  bits_.set(2 * var, true);
  bits_.set(2 * var + 1, true);
}

bool Cube::is_empty() const {
  for (std::size_t v = 0; v < num_vars_; ++v) {
    if (!bits_.test(2 * v) && !bits_.test(2 * v + 1)) return true;
  }
  return false;
}

std::size_t Cube::literal_count() const {
  std::size_t n = 0;
  for (std::size_t v = 0; v < num_vars_; ++v) n += has_literal(v) ? 1 : 0;
  return n;
}

bool Cube::contains_code(const util::BitVec& code) const {
  MPS_ASSERT(code.size() == num_vars_);
  for (std::size_t v = 0; v < num_vars_; ++v) {
    if (!allows(v, code.test(v))) return false;
  }
  return true;
}

bool Cube::intersects(const Cube& other) const { return distance(other) == 0; }

Cube Cube::intersect(const Cube& other) const {
  MPS_ASSERT(num_vars_ == other.num_vars_);
  Cube c = *this;
  c.bits_ &= other.bits_;
  return c;
}

Cube Cube::supercube(const Cube& other) const {
  MPS_ASSERT(num_vars_ == other.num_vars_);
  Cube c = *this;
  c.bits_ |= other.bits_;
  return c;
}

std::size_t Cube::distance(const Cube& other) const {
  MPS_ASSERT(num_vars_ == other.num_vars_);
  std::size_t d = 0;
  for (std::size_t v = 0; v < num_vars_; ++v) {
    const bool a0 = bits_.test(2 * v) && other.bits_.test(2 * v);
    const bool a1 = bits_.test(2 * v + 1) && other.bits_.test(2 * v + 1);
    if (!a0 && !a1) ++d;
  }
  return d;
}

std::optional<Cube> Cube::consensus(const Cube& other) const {
  if (distance(other) != 1) return std::nullopt;
  Cube c = intersect(other);
  for (std::size_t v = 0; v < num_vars_; ++v) {
    if (!c.bits_.test(2 * v) && !c.bits_.test(2 * v + 1)) {
      c.free_var(v);
      break;
    }
  }
  return c;
}

std::string Cube::to_string() const {
  std::string s;
  s.reserve(num_vars_);
  for (std::size_t v = 0; v < num_vars_; ++v) {
    const auto lit = literal(v);
    if (!bits_.test(2 * v) && !bits_.test(2 * v + 1)) {
      s.push_back('x');  // empty part
    } else if (!lit.has_value()) {
      s.push_back('-');
    } else {
      s.push_back(*lit ? '1' : '0');
    }
  }
  return s;
}

}  // namespace mps::logic

#include "logic/pla.hpp"

#include <sstream>

#include "util/common.hpp"
#include "util/text.hpp"

namespace mps::logic {

std::string write_pla(const Cover& cover, const std::vector<std::string>& input_names) {
  std::ostringstream out;
  out << ".i " << cover.num_vars() << "\n.o 1\n";
  if (!input_names.empty()) {
    MPS_ASSERT(input_names.size() == cover.num_vars());
    out << ".ilb";
    for (const auto& n : input_names) out << ' ' << n;
    out << '\n';
  }
  out << ".p " << cover.size() << '\n';
  for (const Cube& c : cover.cubes()) {
    std::string pat = c.to_string();
    out << pat << " 1\n";
  }
  out << ".e\n";
  return out.str();
}

std::string write_pla(const SopSpec& spec) {
  std::ostringstream out;
  out << ".i " << spec.num_vars << "\n.o 1\n.type fr\n";
  for (const auto& code : spec.on) out << code.to_string() << " 1\n";
  for (const auto& code : spec.off) out << code.to_string() << " 0\n";
  out << ".e\n";
  return out.str();
}

namespace {

/// Expand a cube pattern into minterm codes (bounded).
void expand_pattern(const std::string& pattern, std::vector<util::BitVec>* out) {
  std::vector<std::size_t> free_vars;
  util::BitVec base(pattern.size());
  for (std::size_t v = 0; v < pattern.size(); ++v) {
    if (pattern[v] == '1') {
      base.set(v);
    } else if (pattern[v] == '-' || pattern[v] == '2') {
      free_vars.push_back(v);
    } else if (pattern[v] != '0') {
      throw util::ParseError(std::string("bad PLA cube character: ") + pattern[v]);
    }
  }
  if (free_vars.size() > 16) throw util::ParseError("PLA cube expansion too large");
  for (std::uint64_t x = 0; x < (std::uint64_t{1} << free_vars.size()); ++x) {
    util::BitVec code = base;
    for (std::size_t i = 0; i < free_vars.size(); ++i) code.set(free_vars[i], (x >> i) & 1);
    out->push_back(std::move(code));
  }
}

}  // namespace

SopSpec parse_pla(std::string_view text) {
  SopSpec spec;
  std::istringstream in{std::string(text)};
  std::string line;
  int line_no = 0;
  long declared_inputs = -1;
  while (std::getline(in, line)) {
    ++line_no;
    const auto view = util::trim(line);
    if (view.empty() || view[0] == '#') continue;
    const auto toks = util::split_ws(view);
    if (toks[0] == ".i") {
      declared_inputs = std::stol(toks.at(1));
      spec.num_vars = static_cast<std::size_t>(declared_inputs);
    } else if (toks[0] == ".o") {
      if (std::stol(toks.at(1)) != 1) throw util::ParseError("only single-output PLA", line_no);
    } else if (toks[0][0] == '.') {
      continue;  // .p/.e/.type/.ilb etc.
    } else {
      if (toks.size() != 2) throw util::ParseError("bad PLA cube line", line_no);
      if (declared_inputs < 0) throw util::ParseError("cube before .i", line_no);
      if (toks[0].size() != spec.num_vars) throw util::ParseError("cube width mismatch", line_no);
      if (toks[1] == "1") {
        expand_pattern(toks[0], &spec.on);
      } else if (toks[1] == "0") {
        expand_pattern(toks[0], &spec.off);
      } else if (toks[1] != "-" && toks[1] != "2") {
        throw util::ParseError("bad PLA output value: " + toks[1], line_no);
      }
    }
  }
  return spec;
}

}  // namespace mps::logic

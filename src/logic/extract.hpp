// Next-state function extraction (§3.5): the logic of a non-input signal
// is read off the (CSC-satisfying) state graph as the implied value of the
// signal in every reachable code; unreachable codes are don't-cares.
#pragma once

#include "logic/minimize.hpp"
#include "sg/state_graph.hpp"

namespace mps::logic {

/// The implied value of non-input signal `s` in state `st`: 1 if the signal
/// is 1 and not excited to fall, or 0 and excited to rise.
bool implied_value(const sg::StateGraph& g, sg::StateId st, sg::SignalId s);

/// Build the ON/OFF minterm spec of `s`'s next-state function over all
/// graph signals.  Throws util::SemanticsError if two states share a code
/// but imply different values — i.e. the graph violates CSC for `s`.
SopSpec extract_next_state(const sg::StateGraph& g, sg::SignalId s);

}  // namespace mps::logic

#include "logic/minimize.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "util/common.hpp"

namespace mps::logic {

namespace {

bool cube_hits_off(const Cube& cube, const std::vector<util::BitVec>& off) {
  for (const auto& code : off) {
    if (cube.contains_code(code)) return true;
  }
  return false;
}

/// Expand: free literals in the given variable order while the cube stays
/// disjoint from OFF.  Produces a prime cube.
Cube expand_cube(Cube cube, const std::vector<util::BitVec>& off,
                 const std::vector<std::size_t>& var_order) {
  for (const std::size_t v : var_order) {
    if (!cube.has_literal(v)) continue;
    Cube widened = cube;
    widened.free_var(v);
    if (!cube_hits_off(widened, off)) cube = std::move(widened);
  }
  return cube;
}

/// Irredundant: keep essential cubes (sole coverer of some ON minterm),
/// then greedily cover the remaining ON minterms.
Cover make_irredundant(const Cover& cover, const std::vector<util::BitVec>& on) {
  const std::size_t nc = cover.size();
  std::vector<std::vector<std::uint32_t>> coverers(on.size());
  for (std::size_t mi = 0; mi < on.size(); ++mi) {
    for (std::uint32_t ci = 0; ci < nc; ++ci) {
      if (cover[ci].contains_code(on[mi])) coverers[mi].push_back(ci);
    }
    MPS_ASSERT(!coverers[mi].empty());
  }
  std::vector<bool> selected(nc, false);
  std::vector<bool> covered(on.size(), false);
  for (std::size_t mi = 0; mi < on.size(); ++mi) {
    if (coverers[mi].size() == 1) selected[coverers[mi][0]] = true;
  }
  for (std::size_t mi = 0; mi < on.size(); ++mi) {
    for (const std::uint32_t ci : coverers[mi]) {
      if (selected[ci]) {
        covered[mi] = true;
        break;
      }
    }
  }
  // Greedy set cover for the rest: most new minterms, then fewest literals.
  for (;;) {
    std::size_t uncovered = 0;
    for (std::size_t mi = 0; mi < on.size(); ++mi) uncovered += covered[mi] ? 0 : 1;
    if (uncovered == 0) break;
    std::uint32_t best = 0;
    std::size_t best_gain = 0;
    std::size_t best_lits = ~std::size_t{0};
    for (std::uint32_t ci = 0; ci < nc; ++ci) {
      if (selected[ci]) continue;
      std::size_t gain = 0;
      for (std::size_t mi = 0; mi < on.size(); ++mi) {
        if (!covered[mi] && cover[ci].contains_code(on[mi])) ++gain;
      }
      const std::size_t lits = cover[ci].literal_count();
      if (gain > best_gain || (gain == best_gain && gain > 0 && lits < best_lits)) {
        best = ci;
        best_gain = gain;
        best_lits = lits;
      }
    }
    MPS_ASSERT(best_gain > 0);
    selected[best] = true;
    for (std::size_t mi = 0; mi < on.size(); ++mi) {
      if (!covered[mi] && cover[best].contains_code(on[mi])) covered[mi] = true;
    }
  }
  Cover out(cover.num_vars());
  for (std::uint32_t ci = 0; ci < nc; ++ci) {
    if (selected[ci]) out.add(cover[ci]);
  }
  return out;
}

/// Reduce (sequential, as in espresso): shrink each cube in turn to the
/// supercube of the ON minterms no *other current* cube covers; drop cubes
/// whose minterms are all covered elsewhere.  Processing against the
/// partially reduced cover preserves total ON coverage.
Cover reduce(const Cover& cover, const std::vector<util::BitVec>& on) {
  std::vector<std::optional<Cube>> work;
  for (const Cube& c : cover.cubes()) work.emplace_back(c);
  for (std::size_t ci = 0; ci < work.size(); ++ci) {
    std::optional<Cube> shrunk;
    for (const auto& code : on) {
      if (!work[ci].has_value() || !work[ci]->contains_code(code)) continue;
      bool elsewhere = false;
      for (std::size_t cj = 0; cj < work.size() && !elsewhere; ++cj) {
        if (cj != ci && work[cj].has_value() && work[cj]->contains_code(code)) elsewhere = true;
      }
      if (!elsewhere) {
        const Cube m = Cube::minterm(code);
        shrunk = shrunk.has_value() ? shrunk->supercube(m) : m;
      }
    }
    work[ci] = shrunk;  // nullopt drops a fully redundant cube
  }
  Cover out(cover.num_vars());
  for (auto& c : work) {
    if (c.has_value()) out.add(std::move(*c));
  }
  return out;
}

}  // namespace

Cover heuristic_minimize(const SopSpec& spec, int loops) {
  Cover cover(spec.num_vars);
  if (spec.on.empty()) return cover;

  std::vector<std::size_t> order(spec.num_vars);
  for (std::size_t v = 0; v < spec.num_vars; ++v) order[v] = v;
  std::vector<std::size_t> reversed(order.rbegin(), order.rend());

  for (const auto& code : spec.on) cover.add(Cube::minterm(code));

  std::size_t best_lits = ~std::size_t{0};
  Cover best = cover;
  bool forward = true;
  for (int loop = 0; loop < loops; ++loop) {
    // EXPAND
    Cover expanded(spec.num_vars);
    for (const Cube& c : cover.cubes()) {
      const Cube prime = expand_cube(c, spec.off, forward ? order : reversed);
      // Skip if already contained in an expanded cube.
      bool contained = false;
      for (const Cube& e : expanded.cubes()) {
        if (e.contains(prime)) {
          contained = true;
          break;
        }
      }
      if (!contained) expanded.add(prime);
    }
    expanded.remove_single_cube_containment();
    // IRREDUNDANT
    Cover irred = make_irredundant(expanded, spec.on);
    const std::size_t lits = irred.literal_count();
    if (lits < best_lits) {
      best_lits = lits;
      best = irred;
    }
    if (loop + 1 == loops) break;
    // REDUCE, then loop back to EXPAND in the other direction.
    cover = reduce(irred, spec.on);
    if (cover.empty()) break;
    forward = !forward;
  }
  MPS_ASSERT(cover_is_valid(spec, best));
  return best;
}

namespace {

/// QM implicant: fixed `values` on the non-dash positions.
struct Implicant {
  std::uint64_t values;  // bit v = value of variable v (0 where dashed)
  std::uint64_t dashes;  // bit v = variable v is free
  bool operator==(const Implicant&) const = default;
};
struct ImplicantHash {
  std::size_t operator()(const Implicant& a) const {
    return static_cast<std::size_t>(util::hash_combine(a.values, a.dashes));
  }
};

std::uint64_t code_to_u64(const util::BitVec& code) {
  std::uint64_t x = 0;
  for (std::size_t v = 0; v < code.size(); ++v) {
    if (code.test(v)) x |= std::uint64_t{1} << v;
  }
  return x;
}

Cube implicant_to_cube(const Implicant& imp, std::size_t num_vars) {
  Cube c(num_vars);
  for (std::size_t v = 0; v < num_vars; ++v) {
    if (!((imp.dashes >> v) & 1)) c.set_literal(v, (imp.values >> v) & 1);
  }
  return c;
}

/// Branch-and-bound unate covering: rows = ON minterms, cols = primes,
/// cost = literal count.  Returns selected column indices.
class CoveringSolver {
 public:
  CoveringSolver(std::size_t num_rows, std::vector<std::vector<std::uint32_t>> col_rows,
                 std::vector<int> col_cost, std::int64_t max_nodes)
      : num_rows_(num_rows),
        col_rows_(std::move(col_rows)),
        col_cost_(std::move(col_cost)),
        max_nodes_(max_nodes) {
    row_cols_.resize(num_rows_);
    for (std::uint32_t c = 0; c < col_rows_.size(); ++c) {
      for (const std::uint32_t r : col_rows_[c]) row_cols_[r].push_back(c);
    }
  }

  std::optional<std::vector<std::uint32_t>> solve() {
    std::vector<bool> covered(num_rows_, false);
    std::vector<std::uint32_t> chosen;
    best_cost_ = std::numeric_limits<int>::max();
    branch(covered, chosen, 0);
    if (nodes_ >= max_nodes_ && best_.empty() && num_rows_ > 0) return std::nullopt;
    return best_;
  }

 private:
  void branch(std::vector<bool>& covered, std::vector<std::uint32_t>& chosen, int cost) {
    if (++nodes_ >= max_nodes_ && !best_.empty()) return;
    if (cost >= best_cost_) return;
    // Find the uncovered row with the fewest candidate columns.
    std::uint32_t pick = 0xFFFFFFFFu;
    std::size_t fewest = ~std::size_t{0};
    for (std::uint32_t r = 0; r < num_rows_; ++r) {
      if (covered[r]) continue;
      std::size_t k = 0;
      for (const std::uint32_t c : row_cols_[r]) k += in_use(c, chosen) ? 0 : 1;
      if (k < fewest) {
        fewest = k;
        pick = r;
      }
    }
    if (pick == 0xFFFFFFFFu) {  // all covered
      best_cost_ = cost;
      best_ = chosen;
      return;
    }
    // Simple lower bound: at least one more column is needed.
    int min_extra = std::numeric_limits<int>::max();
    for (const std::uint32_t c : row_cols_[pick]) min_extra = std::min(min_extra, col_cost_[c]);
    if (min_extra == std::numeric_limits<int>::max() || cost + min_extra >= best_cost_) return;

    for (const std::uint32_t c : row_cols_[pick]) {
      std::vector<std::uint32_t> newly;
      for (const std::uint32_t r : col_rows_[c]) {
        if (!covered[r]) {
          covered[r] = true;
          newly.push_back(r);
        }
      }
      chosen.push_back(c);
      branch(covered, chosen, cost + col_cost_[c]);
      chosen.pop_back();
      for (const std::uint32_t r : newly) covered[r] = false;
      if (nodes_ >= max_nodes_ && !best_.empty()) return;
    }
  }

  static bool in_use(std::uint32_t c, const std::vector<std::uint32_t>& chosen) {
    return std::find(chosen.begin(), chosen.end(), c) != chosen.end();
  }

  std::size_t num_rows_;
  std::vector<std::vector<std::uint32_t>> col_rows_;
  std::vector<int> col_cost_;
  std::vector<std::vector<std::uint32_t>> row_cols_;
  std::int64_t max_nodes_;
  std::int64_t nodes_ = 0;
  int best_cost_ = 0;
  std::vector<std::uint32_t> best_;
};

}  // namespace

std::optional<Cover> exact_minimize(const SopSpec& spec, const MinimizeOptions& opts) {
  const std::size_t n = spec.num_vars;
  if (n > opts.exact_max_vars || n >= 64) return std::nullopt;
  if (spec.on.empty()) return Cover(n);

  // Enumerate ON ∪ DC (= everything not OFF) as the implicant seed set.
  std::unordered_set<std::uint64_t> off_set;
  for (const auto& code : spec.off) off_set.insert(code_to_u64(code));

  std::unordered_set<Implicant, ImplicantHash> current;
  const std::uint64_t space = std::uint64_t{1} << n;
  for (std::uint64_t x = 0; x < space; ++x) {
    if (!off_set.contains(x)) current.insert(Implicant{x, 0});
  }

  // Iterative pairwise combination, collecting primes (uncombined cubes).
  std::vector<Implicant> primes;
  while (!current.empty()) {
    if (current.size() > opts.exact_max_primes) return std::nullopt;
    std::unordered_set<Implicant, ImplicantHash> next;
    std::unordered_set<Implicant, ImplicantHash> combined;
    std::vector<Implicant> list(current.begin(), current.end());
    // Group by dash mask for O(k) neighbour probing.
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> by_dashes;
    std::unordered_set<Implicant, ImplicantHash> lookup(current.begin(), current.end());
    for (std::uint32_t i = 0; i < list.size(); ++i) by_dashes[list[i].dashes].push_back(i);
    for (const Implicant& imp : list) {
      for (std::size_t v = 0; v < n; ++v) {
        const std::uint64_t bit = std::uint64_t{1} << v;
        if (imp.dashes & bit) continue;
        const Implicant partner{imp.values ^ bit, imp.dashes};
        if (!lookup.contains(partner)) continue;
        combined.insert(imp);
        combined.insert(partner);
        next.insert(Implicant{imp.values & ~bit & ~(imp.dashes | bit), imp.dashes | bit});
      }
    }
    for (const Implicant& imp : list) {
      if (!combined.contains(imp)) primes.push_back(imp);
    }
    current = std::move(next);
    if (primes.size() > opts.exact_max_primes) return std::nullopt;
  }

  // Covering: only primes covering at least one ON minterm matter.
  std::vector<util::BitVec> on_codes = spec.on;
  std::vector<std::vector<std::uint32_t>> col_rows;
  std::vector<int> col_cost;
  std::vector<Implicant> cols;
  for (const Implicant& p : primes) {
    std::vector<std::uint32_t> rows;
    for (std::uint32_t r = 0; r < on_codes.size(); ++r) {
      const std::uint64_t code = code_to_u64(on_codes[r]);
      if ((code & ~p.dashes) == (p.values & ~p.dashes)) rows.push_back(r);
    }
    if (!rows.empty()) {
      col_rows.push_back(std::move(rows));
      col_cost.push_back(static_cast<int>(n - static_cast<std::size_t>(
                                                  std::popcount(p.dashes & (space - 1)))));
      cols.push_back(p);
    }
  }

  CoveringSolver solver(on_codes.size(), std::move(col_rows), std::move(col_cost),
                        opts.exact_max_branch_nodes);
  const auto chosen = solver.solve();
  if (!chosen.has_value()) return std::nullopt;

  Cover out(n);
  for (const std::uint32_t c : *chosen) out.add(implicant_to_cube(cols[c], n));
  MPS_ASSERT(cover_is_valid(spec, out));
  return out;
}

Cover minimize(const SopSpec& spec, const MinimizeOptions& opts) {
  Cover heur = heuristic_minimize(spec, opts.heuristic_loops);
  if (opts.try_exact) {
    if (const auto exact = exact_minimize(spec, opts); exact.has_value()) {
      if (exact->literal_count() < heur.literal_count()) return *exact;
    }
  }
  return heur;
}

bool cover_is_valid(const SopSpec& spec, const Cover& cover) {
  for (const auto& code : spec.on) {
    if (!cover.covers_code(code)) return false;
  }
  for (const auto& code : spec.off) {
    if (cover.covers_code(code)) return false;
  }
  return true;
}

bool cube_is_prime(const SopSpec& spec, const Cube& cube) {
  if (cube_hits_off(cube, spec.off)) return false;
  for (std::size_t v = 0; v < spec.num_vars; ++v) {
    if (!cube.has_literal(v)) continue;
    Cube widened = cube;
    widened.free_var(v);
    if (!cube_hits_off(widened, spec.off)) return false;
  }
  return true;
}

bool cover_is_irredundant(const SopSpec& spec, const Cover& cover) {
  for (std::size_t ci = 0; ci < cover.size(); ++ci) {
    bool needed = false;
    for (const auto& code : spec.on) {
      if (!cover[ci].contains_code(code)) continue;
      bool elsewhere = false;
      for (std::size_t cj = 0; cj < cover.size() && !elsewhere; ++cj) {
        if (cj != ci && cover[cj].contains_code(code)) elsewhere = true;
      }
      if (!elsewhere) {
        needed = true;
        break;
      }
    }
    if (!needed) return false;
  }
  return true;
}

}  // namespace mps::logic

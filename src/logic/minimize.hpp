// Two-level single-output minimization, replacing the paper's use of
// `espresso -Dso -S1`:
//   * a heuristic EXPAND / IRREDUNDANT / REDUCE loop (espresso-style), and
//   * an exact Quine-McCluskey + branch-and-bound covering path for
//     functions small enough to enumerate the don't-care set.
//
// Functions are specified by explicit ON and OFF minterm lists; everything
// else is a don't-care (exactly the situation for next-state functions
// extracted from a state graph, where unreachable codes are free).
#pragma once

#include <optional>
#include <vector>

#include "logic/cover.hpp"
#include "util/bitvec.hpp"

namespace mps::logic {

struct SopSpec {
  std::size_t num_vars = 0;
  std::vector<util::BitVec> on;   ///< ON-set minterms
  std::vector<util::BitVec> off;  ///< OFF-set minterms (DC = complement of both)
};

struct MinimizeOptions {
  /// Attempt the exact path when the variable count permits DC enumeration.
  bool try_exact = true;
  std::size_t exact_max_vars = 14;
  std::size_t exact_max_primes = 20000;
  std::int64_t exact_max_branch_nodes = 200000;
  int heuristic_loops = 4;
};

/// Minimize; returns a prime irredundant cover of ON against OFF (cubes may
/// use the don't-care space).  Picks the better of the heuristic and exact
/// results by literal count when both are available.
Cover minimize(const SopSpec& spec, const MinimizeOptions& opts = {});

/// The espresso-style heuristic loop only.
Cover heuristic_minimize(const SopSpec& spec, int loops = 4);

/// Exact Quine-McCluskey + covering.  nullopt if the instance exceeds the
/// configured limits (too many variables/primes) — never silently
/// approximate: callers fall back to the heuristic result.
std::optional<Cover> exact_minimize(const SopSpec& spec, const MinimizeOptions& opts = {});

/// Validation (used by tests and verify::): cover contains every ON minterm
/// and no OFF minterm.
bool cover_is_valid(const SopSpec& spec, const Cover& cover);

/// Is the cube prime (no literal can be removed without hitting OFF)?
bool cube_is_prime(const SopSpec& spec, const Cube& cube);

/// Is every cube needed (dropping any uncovers some ON minterm)?
bool cover_is_irredundant(const SopSpec& spec, const Cover& cover);

}  // namespace mps::logic

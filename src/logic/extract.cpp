#include "logic/extract.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/common.hpp"

namespace mps::logic {

bool implied_value(const sg::StateGraph& g, sg::StateId st, sg::SignalId s) {
  const bool value = g.value(st, s);
  if (value) return !g.excited_dir(st, s, /*rise=*/false);
  return g.excited_dir(st, s, /*rise=*/true);
}

SopSpec extract_next_state(const sg::StateGraph& g, sg::SignalId s) {
  MPS_ASSERT(!g.is_input(s));
  SopSpec spec;
  spec.num_vars = g.num_signals();

  std::unordered_map<util::BitVec, bool, util::BitVecHash> table;
  for (sg::StateId st = 0; st < g.num_states(); ++st) {
    const bool f = implied_value(g, st, s);
    const auto [it, inserted] = table.emplace(g.code(st), f);
    if (!inserted && it->second != f) {
      throw util::SemanticsError("CSC violation: signal " + g.signal(s).name +
                                 " has conflicting implied values for code " +
                                 g.code(st).to_string());
    }
  }
  for (const auto& [code, f] : table) {
    (f ? spec.on : spec.off).push_back(code);
  }
  // Deterministic order (hash maps iterate arbitrarily).
  const auto by_bits = [](const util::BitVec& a, const util::BitVec& b) {
    return a.to_string() < b.to_string();
  };
  std::sort(spec.on.begin(), spec.on.end(), by_bits);
  std::sort(spec.off.begin(), spec.off.end(), by_bits);
  return spec;
}

}  // namespace mps::logic

#include "logic/cover.hpp"

#include "util/common.hpp"

namespace mps::logic {

void Cover::add(Cube c) {
  MPS_ASSERT(c.num_vars() == num_vars_);
  cubes_.push_back(std::move(c));
}

bool Cover::covers_code(const util::BitVec& code) const {
  for (const Cube& c : cubes_) {
    if (c.contains_code(code)) return true;
  }
  return false;
}

std::size_t Cover::literal_count() const {
  std::size_t n = 0;
  for (const Cube& c : cubes_) n += c.literal_count();
  return n;
}

void Cover::remove_single_cube_containment() {
  std::vector<Cube> kept;
  for (std::size_t i = 0; i < cubes_.size(); ++i) {
    bool contained = false;
    for (std::size_t j = 0; j < cubes_.size() && !contained; ++j) {
      if (i == j) continue;
      // Strict: contained in a different cube; among equal cubes keep the first.
      if (cubes_[j].contains(cubes_[i]) && !(cubes_[i].contains(cubes_[j]) && i < j)) {
        contained = true;
      }
    }
    if (!contained) kept.push_back(cubes_[i]);
  }
  cubes_ = std::move(kept);
}

std::string Cover::to_string() const {
  std::string s;
  for (std::size_t i = 0; i < cubes_.size(); ++i) {
    if (i > 0) s += " + ";
    s += cubes_[i].to_string();
  }
  return s.empty() ? "0" : s;
}

std::string Cover::to_expression(const std::vector<std::string>& var_names) const {
  MPS_ASSERT(var_names.size() == num_vars_);
  if (cubes_.empty()) return "0";
  std::string s;
  for (std::size_t i = 0; i < cubes_.size(); ++i) {
    if (i > 0) s += " + ";
    bool any = false;
    for (std::size_t v = 0; v < num_vars_; ++v) {
      const auto lit = cubes_[i].literal(v);
      if (!lit.has_value()) continue;
      if (any) s += " ";
      s += var_names[v];
      if (!*lit) s += "'";
      any = true;
    }
    if (!any) s += "1";
  }
  return s;
}

}  // namespace mps::logic

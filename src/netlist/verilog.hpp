// Structural Verilog interchange.  The writer emits a canonical subset —
// grouped input/output/wire declarations, `assign` SOP per combinational
// gate, an `MPS_C` primitive instance per C latch — and the reader parses
// exactly that subset (plus whitespace/comment freedom), so
// write_verilog(parse_verilog(write_verilog(n))) == write_verilog(n)
// byte for byte.  parse_verilog(write_verilog(n)) reproduces n up to wire
// ordering (the writer groups declarations by role; gate order, names,
// functions and roles are preserved exactly).
#pragma once

#include <string>
#include <string_view>

#include "netlist/netlist.hpp"

namespace mps::netlist {

/// Render `n` as structural Verilog.
std::string write_verilog(const Netlist& n);

/// Parse the write_verilog() subset.  Throws util::ParseError on syntax
/// errors, util::SemanticsError on structural ones (undeclared wires,
/// doubly driven wires).
Netlist parse_verilog(std::string_view text);

}  // namespace mps::netlist

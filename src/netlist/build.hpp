// Map minimized covers onto gates.  Two mappings:
//
//   * kComplexGate (default) — each non-input signal becomes one atomic
//     SOP complex gate computing its next-state function, with feedback
//     from its own output as an ordinary fanin.  For a semi-modular,
//     CSC-satisfying state graph this implementation is speed-independent
//     by the classical complex-gate argument; verify_speed_independence()
//     checks it rather than assuming it.
//   * kStandardC — each non-input signal becomes a standard-C latch whose
//     set (reset) network is a fresh SOP gate covering exactly the
//     excitation region ER(o+) (ER(o-)) and off on every other reachable
//     code; unreachable codes are don't-cares.  The decomposition
//     introduces real internal nodes, so gate-level hazards become
//     possible — that is the point: the verifier can now find them.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "logic/cover.hpp"
#include "logic/minimize.hpp"
#include "netlist/netlist.hpp"
#include "sg/state_graph.hpp"

namespace mps::netlist {

enum class Mapping { kComplexGate, kStandardC };

struct BuildNetlistOptions {
  Mapping mapping = Mapping::kComplexGate;
  /// Minimizer configuration for the set/reset covers the kStandardC
  /// mapping derives from the graph (kComplexGate reuses the synthesis
  /// covers as-is).
  logic::MinimizeOptions minimize;
};

/// Build a netlist for the (final, CSC-satisfying) graph `g`.  `covers`
/// are the synthesis result's minimized next-state covers, one per
/// non-input signal, named to match the graph (the shape
/// core::modular_synthesis and both baselines produce).  Wire names are
/// sanitize_name()d signal names; kStandardC adds set_<o>/reset_<o>
/// internal wires.  Throws util::SemanticsError on a missing cover or a
/// cover/graph arity mismatch.
Netlist build_netlist(const sg::StateGraph& g,
                      const std::vector<std::pair<std::string, logic::Cover>>& covers,
                      const BuildNetlistOptions& opts = {});

/// The ER(o+)/ER(o-) set and reset specs of `s` over all graph signals
/// (exposed for tests): ON = codes where o is excited to rise (fall),
/// OFF = every other reachable code.  Throws util::SemanticsError if two
/// states share a code but disagree — a CSC violation.
std::pair<logic::SopSpec, logic::SopSpec> extract_set_reset(const sg::StateGraph& g,
                                                            sg::SignalId s);

}  // namespace mps::netlist

#include "netlist/netlist.hpp"

#include <unordered_set>

#include "util/common.hpp"

namespace mps::netlist {

WireId Netlist::find_wire(std::string_view name) const {
  for (WireId w = 0; w < wires_.size(); ++w) {
    if (wires_[w].name == name) return w;
  }
  return kNoWire;
}

WireId Netlist::add_wire(Wire w) {
  wires_.push_back(std::move(w));
  driver_.push_back(npos);
  return static_cast<WireId>(wires_.size() - 1);
}

void Netlist::add_gate(Gate g) {
  MPS_ASSERT(g.out < wires_.size());
  MPS_ASSERT(driver_[g.out] == npos);
  driver_[g.out] = gates_.size();
  gates_.push_back(std::move(g));
}

std::size_t Netlist::total_literals() const {
  std::size_t n = 0;
  for (const Gate& g : gates_) n += g.literal_count();
  return n;
}

std::size_t Netlist::transistor_estimate() const {
  std::size_t t = 0;
  std::unordered_set<WireId> complemented;
  for (const Gate& g : gates_) {
    if (g.kind == GateKind::kC) {
      t += 12;
      continue;
    }
    const std::size_t lits = g.fn.literal_count();
    bool pure_inverter = false;
    if (g.fn.size() == 1 && lits == 1) {
      for (std::size_t v = 0; v < g.fn.num_vars(); ++v) {
        if (g.fn[0].has_literal(v)) {
          pure_inverter = g.fn[0].literal(v) == false;
          break;
        }
      }
    }
    t += 2 * lits + (pure_inverter || lits == 0 ? 0 : 2);
    for (const logic::Cube& c : g.fn.cubes()) {
      for (std::size_t v = 0; v < g.fn.num_vars(); ++v) {
        if (c.literal(v) == false) complemented.insert(g.fanins[v]);
      }
    }
  }
  return t + 2 * complemented.size();
}

void Netlist::check() const {
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    if (g.out >= wires_.size()) throw util::SemanticsError("gate output wire out of range");
    if (driver_[g.out] != i) throw util::SemanticsError("wire driven by more than one gate");
    for (WireId f : g.fanins) {
      if (f >= wires_.size()) throw util::SemanticsError("gate fanin wire out of range");
    }
    if (g.kind == GateKind::kC) {
      if (g.fanins.size() != 2) {
        throw util::SemanticsError("C element must have exactly {set, reset} fanins");
      }
    } else if (g.fn.num_vars() != g.fanins.size()) {
      throw util::SemanticsError("SOP variable count does not match fanin count of gate " +
                                 wires_[g.out].name);
    }
  }
  for (WireId w = 0; w < wires_.size(); ++w) {
    const bool driven = driver_[w] != npos;
    if (wires_[w].role == WireRole::kInput && driven) {
      throw util::SemanticsError("primary input " + wires_[w].name + " is gate-driven");
    }
    if (wires_[w].role != WireRole::kInput && !driven) {
      throw util::SemanticsError("wire " + wires_[w].name + " has no driver");
    }
  }
}

std::string sanitize_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '$';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(out.begin(), '_');
  return out;
}

}  // namespace mps::netlist

#include "netlist/verilog.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <vector>

#include "util/common.hpp"

namespace mps::netlist {

namespace {

std::string render_sop(const Netlist& n, const Gate& g) {
  if (g.fn.empty()) return "1'b0";
  std::vector<std::string> cubes;
  for (const logic::Cube& c : g.fn.cubes()) {
    std::vector<std::string> lits;
    for (std::size_t v = 0; v < g.fn.num_vars(); ++v) {
      if (const auto lit = c.literal(v)) {
        lits.push_back((*lit ? "" : "~") + n.wire(g.fanins[v]).name);
      }
    }
    if (lits.empty()) {
      cubes.push_back("1'b1");
      continue;
    }
    std::string term;
    for (std::size_t i = 0; i < lits.size(); ++i) {
      if (i > 0) term += " & ";
      term += lits[i];
    }
    if (g.fn.size() > 1 && lits.size() > 1) term = "(" + term + ")";
    cubes.push_back(std::move(term));
  }
  std::string out;
  for (std::size_t i = 0; i < cubes.size(); ++i) {
    if (i > 0) out += " | ";
    out += cubes[i];
  }
  return out;
}

// --- tokenizer ---------------------------------------------------------

struct Lexer {
  std::string_view text;
  std::size_t pos = 0;
  int line = 1;

  void skip_space() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '\n') {
        ++line;
        ++pos;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos;
      } else if (c == '/' && pos + 1 < text.size() && text[pos + 1] == '/') {
        while (pos < text.size() && text[pos] != '\n') ++pos;
      } else {
        break;
      }
    }
  }

  /// Next token: identifier, "1'b0"/"1'b1", or single punctuation char.
  /// Empty string at end of input.
  std::string next() {
    skip_space();
    if (pos >= text.size()) return "";
    const char c = text[pos];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$') {
      std::size_t start = pos;
      while (pos < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[pos])) || text[pos] == '_' ||
              text[pos] == '$')) {
        ++pos;
      }
      return std::string(text.substr(start, pos - start));
    }
    if (c == '1' && pos + 3 < text.size() && text[pos + 1] == '\'' && text[pos + 2] == 'b') {
      const std::string tok(text.substr(pos, 4));
      pos += 4;
      return tok;
    }
    ++pos;
    return std::string(1, c);
  }

  std::string peek() {
    const std::size_t save_pos = pos;
    const int save_line = line;
    std::string tok = next();
    pos = save_pos;
    line = save_line;
    return tok;
  }

  [[noreturn]] void fail(const std::string& what) { throw util::ParseError(what, line); }

  void expect(const std::string& tok) {
    const std::string got = next();
    if (got != tok) fail("expected '" + tok + "', got '" + got + "'");
  }
};

bool is_identifier(const std::string& tok) {
  if (tok.empty()) return false;
  const char c = tok[0];
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

/// One parsed literal of an assign right-hand side.
struct PLit {
  std::string name;
  bool positive = true;
};

}  // namespace

std::string write_verilog(const Netlist& n) {
  std::ostringstream out;
  out << "// speed-independent gate-level netlist written by mps\n";
  out << "// MPS_C(set, reset, out) is a standard-C latch: out <= set ? 1 : reset ? 0 : "
         "out\n";
  out << "module " << n.name() << " (";
  bool first = true;
  for (WireRole role : {WireRole::kInput, WireRole::kOutput}) {
    for (const Wire& w : n.wires()) {
      if (w.role != role) continue;
      if (!first) out << ", ";
      out << w.name;
      first = false;
    }
  }
  out << ");\n";
  for (const Wire& w : n.wires()) {
    if (w.role == WireRole::kInput) out << "  input " << w.name << ";\n";
  }
  for (const Wire& w : n.wires()) {
    if (w.role == WireRole::kOutput) out << "  output " << w.name << ";\n";
  }
  for (const Wire& w : n.wires()) {
    if (w.role == WireRole::kInternal) out << "  wire " << w.name << ";\n";
  }
  out << "\n";
  for (std::size_t i = 0; i < n.num_gates(); ++i) {
    const Gate& g = n.gate(i);
    if (g.kind == GateKind::kSop) {
      out << "  assign " << n.wire(g.out).name << " = " << render_sop(n, g) << ";\n";
    } else {
      out << "  MPS_C u" << i << " (.set(" << n.wire(g.fanins[0]).name << "), .reset("
          << n.wire(g.fanins[1]).name << "), .out(" << n.wire(g.out).name << "));\n";
    }
  }
  out << "endmodule\n";
  return out.str();
}

Netlist parse_verilog(std::string_view text) {
  Lexer lex{text};

  lex.expect("module");
  const std::string module_name = lex.next();
  if (!is_identifier(module_name)) lex.fail("bad module name '" + module_name + "'");
  Netlist n(module_name);

  lex.expect("(");
  std::vector<std::string> ports;
  for (std::string tok = lex.next(); tok != ")"; tok = lex.next()) {
    if (tok == ",") continue;
    if (!is_identifier(tok)) lex.fail("bad port '" + tok + "'");
    ports.push_back(tok);
  }
  lex.expect(";");

  // Declarations (input/output/wire), one name per statement — the
  // writer's canonical shape.
  for (;;) {
    const std::string kw = lex.peek();
    WireRole role;
    if (kw == "input") role = WireRole::kInput;
    else if (kw == "output") role = WireRole::kOutput;
    else if (kw == "wire") role = WireRole::kInternal;
    else break;
    lex.next();
    const std::string name = lex.next();
    if (!is_identifier(name)) lex.fail("bad wire name '" + name + "'");
    if (n.find_wire(name) != kNoWire) lex.fail("wire '" + name + "' declared twice");
    n.add_wire({name, role});
    lex.expect(";");
  }
  for (const std::string& p : ports) {
    const WireId w = n.find_wire(p);
    if (w == kNoWire || n.wire(w).role == WireRole::kInternal) {
      throw util::SemanticsError("port " + p + " is not declared input or output");
    }
  }

  auto wire_of = [&](const std::string& name) -> WireId {
    const WireId w = n.find_wire(name);
    if (w == kNoWire) throw util::SemanticsError("undeclared wire: " + name);
    return w;
  };

  // Gate statements until endmodule.
  for (;;) {
    const std::string kw = lex.next();
    if (kw == "endmodule") break;
    if (kw == "assign") {
      const std::string out_name = lex.next();
      if (!is_identifier(out_name)) lex.fail("bad assign target '" + out_name + "'");
      lex.expect("=");
      // SOP: cube ('|' cube)*; cube := '(' lits ')' | lits; constants
      // stand alone.
      std::vector<std::vector<PLit>> cubes;
      bool const_zero = false, const_one = false;
      for (;;) {
        std::string tok = lex.next();
        if (tok == "1'b0") {
          const_zero = true;
        } else if (tok == "1'b1") {
          const_one = true;
        } else {
          const bool parens = tok == "(";
          if (parens) tok = lex.next();
          std::vector<PLit> cube;
          for (;;) {
            PLit lit;
            if (tok == "~") {
              lit.positive = false;
              tok = lex.next();
            }
            if (!is_identifier(tok)) lex.fail("bad literal '" + tok + "'");
            lit.name = tok;
            cube.push_back(std::move(lit));
            tok = lex.next();
            if (tok == "&") {
              tok = lex.next();
              continue;
            }
            if (parens && tok == ")") break;
            if (!parens) {
              // Lookahead consumed the terminator; handle below.
              break;
            }
            lex.fail("expected '&' or ')', got '" + tok + "'");
          }
          cubes.push_back(std::move(cube));
          if (!parens) {
            // `tok` holds the terminator (| or ;) already.
            if (tok == "|") continue;
            if (tok == ";") break;
            lex.fail("expected '|' or ';', got '" + tok + "'");
          }
        }
        const std::string sep = lex.next();
        if (sep == "|") continue;
        if (sep == ";") break;
        lex.fail("expected '|' or ';', got '" + sep + "'");
      }
      if ((const_zero || const_one) && !cubes.empty()) {
        lex.fail("constants cannot be mixed with cubes");
      }

      Gate g;
      g.kind = GateKind::kSop;
      g.out = wire_of(out_name);
      if (const_zero) {
        g.fn = logic::Cover(0);
      } else if (const_one) {
        logic::Cover fn(0);
        fn.add(logic::Cube(static_cast<std::size_t>(0)));
        g.fn = std::move(fn);
      } else {
        // Canonical fanin order: ascending wire name (what the writer and
        // build_netlist emit), so the round trip is a fixed point.
        std::vector<std::string> names;
        for (const auto& cube : cubes) {
          for (const PLit& lit : cube) {
            if (std::find(names.begin(), names.end(), lit.name) == names.end()) {
              names.push_back(lit.name);
            }
          }
        }
        std::sort(names.begin(), names.end());
        logic::Cover fn(names.size());
        for (const auto& cube : cubes) {
          logic::Cube c(names.size());
          for (const PLit& lit : cube) {
            const std::size_t v =
                std::find(names.begin(), names.end(), lit.name) - names.begin();
            if (c.has_literal(v) && c.literal(v) != lit.positive) {
              lex.fail("contradictory literals on '" + lit.name + "' in one cube");
            }
            c.set_literal(v, lit.positive);
          }
          fn.add(c);
        }
        for (const std::string& name : names) g.fanins.push_back(wire_of(name));
        g.fn = std::move(fn);
      }
      n.add_gate(std::move(g));
    } else if (kw == "MPS_C") {
      const std::string inst = lex.next();
      if (!is_identifier(inst)) lex.fail("bad instance name '" + inst + "'");
      lex.expect("(");
      std::string set_name, reset_name, out_name;
      for (int k = 0; k < 3; ++k) {
        lex.expect(".");
        const std::string port = lex.next();
        lex.expect("(");
        const std::string name = lex.next();
        if (!is_identifier(name)) lex.fail("bad connection '" + name + "'");
        lex.expect(")");
        if (port == "set") set_name = name;
        else if (port == "reset") reset_name = name;
        else if (port == "out") out_name = name;
        else lex.fail("unknown MPS_C port '." + port + "'");
        if (k < 2) lex.expect(",");
      }
      lex.expect(")");
      lex.expect(";");
      if (set_name.empty() || reset_name.empty() || out_name.empty()) {
        lex.fail("MPS_C instance must connect .set, .reset and .out");
      }
      Gate g;
      g.kind = GateKind::kC;
      g.out = wire_of(out_name);
      g.fanins = {wire_of(set_name), wire_of(reset_name)};
      n.add_gate(std::move(g));
    } else if (kw.empty()) {
      lex.fail("unexpected end of input (missing endmodule)");
    } else {
      lex.fail("unexpected token '" + kw + "'");
    }
  }

  n.check();
  return n;
}

}  // namespace mps::netlist

// Event-driven gate-level verification under the unbounded-delay
// (speed-independent) model, in the spirit of Verbeek & Schmaltz: verify
// the building blocks we emit rather than assuming them.
//
// The circuit is composed with the *mirror environment* of the
// specification state graph: the environment fires exactly the input
// transitions the spec enables, and observes every output transition the
// circuit produces.  A breadth-first search over the composed state space
// (spec state × all wire values, internal nodes included) checks:
//
//   * conformance — every output transition a gate produces is enabled by
//     the spec in the tracked spec state (and advances it);
//   * hazard-freedom — gate-level semi-modularity: no gate that is excited
//     (its evaluated function differs from its output wire) becomes
//     unexcited through the firing of anything else.  Disablings the
//     *specification itself* performs (environment/output choice — the
//     `allow_input_choice` convention of sg::semi_modularity_violations)
//     are sanctioned when `allow_spec_disabling` is set: the verifier
//     localizes hazards *introduced by the gate implementation*;
//   * quiescence — no composed state is circuit-quiescent while the spec
//     still requires an output transition.
//
// On failure the result carries a counterexample: the transition trace
// from the initial state to the violation.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "sg/state_graph.hpp"

namespace mps::netlist {

struct SiOptions {
  /// Composed-state budget; exceeding it fails the check (never silently
  /// passes on a truncated search).
  std::size_t max_states = 1u << 20;
  /// Sanction gate disablings that mirror a disabling the spec itself
  /// performs on that signal (environment / output choice).
  bool allow_spec_disabling = true;
  /// Flag circuit-quiescent states where the spec still expects outputs.
  bool check_quiescence = true;
};

struct SiResult {
  bool bound = false;         ///< every spec signal maps onto a wire correctly
  bool conforms = false;      ///< no unspecified output transition
  bool hazard_free = false;   ///< gate-level semi-modularity
  bool quiescence_ok = false; ///< no premature quiescence
  bool complete = false;      ///< search finished within max_states
  std::size_t states_explored = 0;
  std::vector<std::string> issues;
  /// Transition labels from the initial composed state to the first
  /// violation ("a+", "set_x-", ...); empty when ok() or for binding
  /// failures.
  std::vector<std::string> trace;

  bool ok() const { return bound && conforms && hazard_free && quiescence_ok && complete; }
};

/// Verify `n` against `spec` (a final, silent-edge-free state graph).
/// Wires are bound to spec signals by sanitize_name()d name.
SiResult verify_speed_independence(const Netlist& n, const sg::StateGraph& spec,
                                   const SiOptions& opts = {});

}  // namespace mps::netlist

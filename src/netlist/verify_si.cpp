#include "netlist/verify_si.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "util/bitvec.hpp"
#include "util/common.hpp"
#include "util/text.hpp"

namespace mps::netlist {

namespace {

/// Packed per-cube test over gathered fanin bits (fanin count <= 64).
struct CubeMask {
  std::uint64_t ones = 0;   ///< fanin bits that must be 1
  std::uint64_t zeros = 0;  ///< fanin bits that must be 0
};

struct GateEval {
  std::vector<CubeMask> cubes;  ///< kSop
  bool constant_one = false;    ///< kSop with a universal cube
};

/// A composed state: spec state plus every wire value.
struct Key {
  sg::StateId q = 0;
  util::BitVec wires;

  bool operator==(const Key& o) const { return q == o.q && wires == o.wires; }
};

struct KeyHash {
  std::size_t operator()(const Key& k) const {
    return static_cast<std::size_t>(util::hash_combine(k.q, k.wires.hash()));
  }
};

class Search {
 public:
  Search(const Netlist& n, const sg::StateGraph& spec, const SiOptions& opts,
         SiResult* result)
      : n_(n), spec_(spec), opts_(opts), r_(*result) {}

  bool bind() {
    wire_of_sig_.assign(spec_.num_signals(), kNoWire);
    sig_of_wire_.assign(n_.num_wires(), stg::kNoSignal);
    for (sg::SignalId s = 0; s < spec_.num_signals(); ++s) {
      const WireId w = n_.find_wire(sanitize_name(spec_.signal(s).name));
      if (w == kNoWire) {
        r_.issues.push_back("no wire for spec signal " + spec_.signal(s).name);
        return false;
      }
      const bool want_input = spec_.is_input(s);
      if (want_input != (n_.wire(w).role == WireRole::kInput)) {
        r_.issues.push_back("wire " + n_.wire(w).name + " role disagrees with spec signal " +
                            spec_.signal(s).name);
        return false;
      }
      wire_of_sig_[s] = w;
      sig_of_wire_[w] = s;
    }
    for (sg::StateId st = 0; st < spec_.num_states(); ++st) {
      for (const sg::Edge& e : spec_.out(st)) {
        if (e.is_silent()) {
          r_.issues.push_back("spec contains silent edges; contract them first");
          return false;
        }
      }
    }
    return true;
  }

  void prepare() {
    evals_.resize(n_.num_gates());
    for (std::size_t i = 0; i < n_.num_gates(); ++i) {
      const Gate& g = n_.gate(i);
      if (g.kind != GateKind::kSop) continue;
      MPS_ASSERT(g.fanins.size() <= 64);
      GateEval& ev = evals_[i];
      for (const logic::Cube& c : g.fn.cubes()) {
        CubeMask m;
        for (std::size_t v = 0; v < g.fn.num_vars(); ++v) {
          if (const auto lit = c.literal(v)) {
            (*lit ? m.ones : m.zeros) |= std::uint64_t{1} << v;
          }
        }
        if (m.ones == 0 && m.zeros == 0) ev.constant_one = true;
        ev.cubes.push_back(m);
      }
    }
  }

  bool next_value(std::size_t gate_idx, const util::BitVec& wires) const {
    const Gate& g = n_.gate(gate_idx);
    if (g.kind == GateKind::kC) {
      const bool set = wires.test(g.fanins[0]);
      const bool reset = wires.test(g.fanins[1]);
      // Both active is a normal transient under unbounded delays (the old
      // phase's network may still be stale when the new one rises); the
      // latch holds.  What must not happen — the latch losing an excitation
      // because the opposing network rose first — is caught as a disabling
      // by hazard_ok.
      if (set == reset) return wires.test(g.out);  // hold
      return set;
    }
    const GateEval& ev = evals_[gate_idx];
    if (ev.constant_one) return true;
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < g.fanins.size(); ++i) {
      if (wires.test(g.fanins[i])) v |= std::uint64_t{1} << i;
    }
    for (const CubeMask& m : ev.cubes) {
      if ((v & m.ones) == m.ones && (v & m.zeros) == 0) return true;
    }
    return false;
  }

  /// Gates whose next value differs from their output wire.
  util::BitVec excited(const util::BitVec& wires) const {
    util::BitVec e(n_.num_gates());
    for (std::size_t i = 0; i < n_.num_gates(); ++i) {
      if (next_value(i, wires) != wires.test(n_.gate(i).out)) e.set(i);
    }
    return e;
  }

  std::string label_of(WireId w, bool new_value) const {
    return n_.wire(w).name + (new_value ? "+" : "-");
  }

  void fail_with_trace(std::size_t state_idx, const std::string& label) {
    std::vector<std::string> trace;
    if (!label.empty()) trace.push_back(label);
    for (std::size_t i = state_idx; parent_[i].first != Netlist::npos; i = parent_[i].first) {
      trace.push_back(parent_[i].second);
    }
    std::reverse(trace.begin(), trace.end());
    r_.trace = std::move(trace);
  }

  /// Check one transition `from -> to` (label, fired gate or npos for an
  /// environment move) for implementation-introduced disablings.  Returns
  /// false (and fills the result) on a hazard.
  bool hazard_ok(const Key& from, const util::BitVec& from_excited, const Key& to,
                 std::size_t fired, std::size_t from_idx, const std::string& label) {
    const util::BitVec to_excited = excited(to.wires);
    for (std::size_t h = 0; h < n_.num_gates(); ++h) {
      if (h == fired || !from_excited.test(h) || to_excited.test(h)) continue;
      const WireId w = n_.gate(h).out;
      const sg::SignalId o = sig_of_wire_[w];
      if (opts_.allow_spec_disabling && o != stg::kNoSignal) {
        // Sanctioned iff the spec itself performs this disabling: o was
        // enabled (in the gate's pending direction) at `from.q` and is no
        // longer at `to.q`.
        const bool dir = !from.wires.test(w);
        if (spec_.excited_dir(from.q, o, dir) && !spec_.excited_dir(to.q, o, dir)) continue;
      }
      r_.hazard_free = false;
      r_.issues.push_back(util::format(
          "hazard: gate driving %s excited then disabled by %s (composed state %zu)",
          n_.wire(w).name.c_str(), label.c_str(), from_idx));
      fail_with_trace(from_idx, label);
      return false;
    }
    return true;
  }

  void run() {
    prepare();

    // Initial wires: externals take the spec's initial code; internal
    // nodes relax to a fixpoint of their gate functions (acyclic internal
    // logic settles; anything still excited is explored by the search).
    Key init;
    init.q = spec_.initial();
    init.wires.resize(n_.num_wires());
    for (sg::SignalId s = 0; s < spec_.num_signals(); ++s) {
      init.wires.set(wire_of_sig_[s], spec_.value(init.q, s));
    }
    for (std::size_t pass = 0; pass <= n_.num_gates(); ++pass) {
      bool changed = false;
      for (std::size_t i = 0; i < n_.num_gates(); ++i) {
        const WireId w = n_.gate(i).out;
        if (sig_of_wire_[w] != stg::kNoSignal) continue;  // external: spec-pinned
        const bool v = next_value(i, init.wires);
        if (v != init.wires.test(w)) {
          init.wires.set(w, v);
          changed = true;
        }
      }
      if (!changed) break;
    }

    states_.push_back(init);
    parent_.emplace_back(Netlist::npos, "");
    index_.emplace(init, 0);
    std::deque<std::size_t> frontier{0};

    while (!frontier.empty()) {
      const std::size_t cur = frontier.front();
      frontier.pop_front();
      const Key key = states_[cur];  // copy: states_ may reallocate below
      ++r_.states_explored;

      const util::BitVec exc = excited(key.wires);

      if (opts_.check_quiescence && exc.count() == 0) {
        for (const sg::Edge& e : spec_.out(key.q)) {
          if (!spec_.is_input(e.sig)) {
            r_.quiescence_ok = false;
            r_.issues.push_back("circuit is quiescent but the spec still requires " +
                                spec_.signal(e.sig).name + (e.rise ? "+" : "-"));
            fail_with_trace(cur, "");
            return;
          }
        }
      }

      // Gate moves first (a non-conforming gate is reported as the root
      // cause, not as a hazard of some environment move explored earlier);
      // every excited gate may fire.
      for (std::size_t gi = exc.find_first(); gi != util::BitVec::npos;
           gi = exc.find_next(gi)) {
        const WireId w = n_.gate(gi).out;
        const bool new_value = !key.wires.test(w);
        const std::string label = label_of(w, new_value);
        const sg::SignalId o = sig_of_wire_[w];
        if (o == stg::kNoSignal) {
          Key next = key;
          next.wires.flip(w);
          if (!hazard_ok(key, exc, next, gi, cur, label)) return;
          if (!enqueue(std::move(next), cur, label, &frontier)) return;
          continue;
        }
        bool matched = false;
        for (const sg::Edge& e : spec_.out(key.q)) {
          if (e.sig != o || e.rise != new_value) continue;
          matched = true;
          Key next = key;
          next.q = e.to;
          next.wires.flip(w);
          if (!hazard_ok(key, exc, next, gi, cur, label)) return;
          if (!enqueue(std::move(next), cur, label, &frontier)) return;
        }
        if (!matched) {
          r_.conforms = false;
          r_.issues.push_back("circuit fires " + label +
                              " which the specification does not enable here");
          fail_with_trace(cur, label);
          return;
        }
      }

      // Environment moves: the spec's input transitions.
      for (const sg::Edge& e : spec_.out(key.q)) {
        if (!spec_.is_input(e.sig)) continue;
        const WireId w = wire_of_sig_[e.sig];
        MPS_ASSERT(key.wires.test(w) == !e.rise);
        Key next = key;
        next.q = e.to;
        next.wires.flip(w);
        const std::string label = label_of(w, e.rise);
        if (!hazard_ok(key, exc, next, Netlist::npos, cur, label)) return;
        if (!enqueue(std::move(next), cur, label, &frontier)) return;
      }
    }
    r_.complete = true;
  }

 private:
  bool enqueue(Key next, std::size_t from, const std::string& label,
               std::deque<std::size_t>* frontier) {
    const auto [it, inserted] = index_.emplace(next, states_.size());
    if (!inserted) return true;
    if (states_.size() >= opts_.max_states) {
      r_.issues.push_back(util::format("composed state space exceeds the %zu-state budget",
                                       opts_.max_states));
      return false;  // complete stays false
    }
    states_.push_back(std::move(next));
    parent_.emplace_back(from, label);
    frontier->push_back(states_.size() - 1);
    return true;
  }

  const Netlist& n_;
  const sg::StateGraph& spec_;
  const SiOptions& opts_;
  SiResult& r_;

  std::vector<WireId> wire_of_sig_;
  std::vector<sg::SignalId> sig_of_wire_;
  std::vector<GateEval> evals_;

  std::vector<Key> states_;
  std::vector<std::pair<std::size_t, std::string>> parent_;
  std::unordered_map<Key, std::size_t, KeyHash> index_;
};

}  // namespace

SiResult verify_speed_independence(const Netlist& n, const sg::StateGraph& spec,
                                   const SiOptions& opts) {
  SiResult result;
  n.check();
  Search search(n, spec, opts, &result);
  if (!search.bind()) return result;
  result.bound = true;
  result.conforms = true;
  result.hazard_free = true;
  result.quiescence_ok = true;
  search.run();
  return result;
}

}  // namespace mps::netlist

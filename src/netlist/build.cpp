#include "netlist/build.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/common.hpp"

namespace mps::netlist {

namespace {

/// Restrict `cover` (over all graph signals) to its support: returns the
/// support signal list and the same cover re-expressed over it.
std::pair<std::vector<sg::SignalId>, logic::Cover> restrict_to_support(
    const logic::Cover& cover) {
  std::vector<sg::SignalId> support;
  for (std::size_t v = 0; v < cover.num_vars(); ++v) {
    for (const logic::Cube& c : cover.cubes()) {
      if (c.has_literal(v)) {
        support.push_back(static_cast<sg::SignalId>(v));
        break;
      }
    }
  }
  logic::Cover local(support.size());
  for (const logic::Cube& c : cover.cubes()) {
    logic::Cube lc(support.size());
    for (std::size_t i = 0; i < support.size(); ++i) {
      if (const auto lit = c.literal(support[i])) lc.set_literal(i, *lit);
    }
    local.add(lc);
  }
  return {std::move(support), std::move(local)};
}

/// Wire of signal `s`, creating spec wires on first use.
WireId spec_wire(Netlist& n, const sg::StateGraph& g, sg::SignalId s) {
  const WireId w = n.find_wire(sanitize_name(g.signal(s).name));
  MPS_ASSERT(w != kNoWire);
  return w;
}

/// Put `gate`'s fanins into the canonical order (ascending wire name) the
/// Verilog writer/reader round-trip relies on, permuting the SOP to match.
void canonicalize_fanins(const Netlist& n, Gate* gate) {
  std::vector<std::size_t> order(gate->fanins.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return n.wire(gate->fanins[a]).name < n.wire(gate->fanins[b]).name;
  });
  std::vector<WireId> fanins(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) fanins[i] = gate->fanins[order[i]];
  logic::Cover fn(order.size());
  for (const logic::Cube& c : gate->fn.cubes()) {
    logic::Cube nc(order.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (const auto lit = c.literal(order[i])) nc.set_literal(i, *lit);
    }
    fn.add(nc);
  }
  gate->fanins = std::move(fanins);
  gate->fn = std::move(fn);
}

std::string fresh_name(const Netlist& n, std::string base) {
  while (n.find_wire(base) != kNoWire) base += "_";
  return base;
}

}  // namespace

std::pair<logic::SopSpec, logic::SopSpec> extract_set_reset(const sg::StateGraph& g,
                                                            sg::SignalId s) {
  MPS_ASSERT(!g.is_input(s));
  // 0 = stable, 1 = excited-to-rise, 2 = excited-to-fall, per unique code.
  std::unordered_map<util::BitVec, int, util::BitVecHash> table;
  for (sg::StateId st = 0; st < g.num_states(); ++st) {
    int exc = 0;
    if (g.excited_dir(st, s, /*rise=*/true)) exc = 1;
    else if (g.excited_dir(st, s, /*rise=*/false)) exc = 2;
    const auto [it, inserted] = table.emplace(g.code(st), exc);
    if (!inserted && it->second != exc) {
      throw util::SemanticsError("CSC violation: signal " + g.signal(s).name +
                                 " has conflicting excitation for code " +
                                 g.code(st).to_string());
    }
  }
  // Monotonic-cover specs: the set network must hold ER(s+) and may keep
  // covering the quiescent region QR(s+) (stable-1 codes are don't-cares),
  // but must be off everywhere s is 0 and not excited.  Without the QR
  // don't-cares the minimizer keeps a ~s literal, the set wire goes stale
  // after s+ fires, and reset can rise while set is still high — a race
  // the speed-independence verifier rightly rejects.  Dually for reset.
  logic::SopSpec set_spec, reset_spec;
  set_spec.num_vars = reset_spec.num_vars = g.num_signals();
  for (const auto& [code, exc] : table) {
    const bool value = code.test(s);
    if (exc == 1) set_spec.on.push_back(code);
    else if (exc == 2 || !value) set_spec.off.push_back(code);
    if (exc == 2) reset_spec.on.push_back(code);
    else if (exc == 1 || value) reset_spec.off.push_back(code);
  }
  const auto by_bits = [](const util::BitVec& a, const util::BitVec& b) {
    return a.to_string() < b.to_string();
  };
  for (auto* spec : {&set_spec, &reset_spec}) {
    std::sort(spec->on.begin(), spec->on.end(), by_bits);
    std::sort(spec->off.begin(), spec->off.end(), by_bits);
  }
  return {std::move(set_spec), std::move(reset_spec)};
}

Netlist build_netlist(const sg::StateGraph& g,
                      const std::vector<std::pair<std::string, logic::Cover>>& covers,
                      const BuildNetlistOptions& opts) {
  Netlist n("circuit");
  for (sg::SignalId s = 0; s < g.num_signals(); ++s) {
    const std::string name = sanitize_name(g.signal(s).name);
    if (n.find_wire(name) != kNoWire) {
      throw util::SemanticsError("signal names collide after sanitization: " + name);
    }
    n.add_wire({name, g.is_input(s) ? WireRole::kInput : WireRole::kOutput});
  }

  for (sg::SignalId s = 0; s < g.num_signals(); ++s) {
    if (g.is_input(s)) continue;
    const WireId out = spec_wire(n, g, s);

    if (opts.mapping == Mapping::kComplexGate) {
      const auto it =
          std::find_if(covers.begin(), covers.end(),
                       [&](const auto& e) { return e.first == g.signal(s).name; });
      if (it == covers.end()) {
        throw util::SemanticsError("no cover for signal " + g.signal(s).name);
      }
      if (it->second.num_vars() != g.num_signals()) {
        throw util::SemanticsError("cover of " + g.signal(s).name +
                                   " has wrong variable count");
      }
      auto [support, local] = restrict_to_support(it->second);
      Gate gate;
      gate.kind = GateKind::kSop;
      gate.out = out;
      for (sg::SignalId sup : support) gate.fanins.push_back(spec_wire(n, g, sup));
      gate.fn = std::move(local);
      canonicalize_fanins(n, &gate);
      n.add_gate(std::move(gate));
      continue;
    }

    // kStandardC: set/reset SOP networks feeding a C latch.
    auto [set_spec, reset_spec] = extract_set_reset(g, s);
    const logic::Cover set_cover = logic::minimize(set_spec, opts.minimize);
    const logic::Cover reset_cover = logic::minimize(reset_spec, opts.minimize);
    WireId sr[2];
    const logic::Cover* fns[2] = {&set_cover, &reset_cover};
    const char* prefix[2] = {"set_", "reset_"};
    for (int k = 0; k < 2; ++k) {
      sr[k] = n.add_wire(
          {fresh_name(n, prefix[k] + sanitize_name(g.signal(s).name)), WireRole::kInternal});
      auto [support, local] = restrict_to_support(*fns[k]);
      Gate gate;
      gate.kind = GateKind::kSop;
      gate.out = sr[k];
      for (sg::SignalId sup : support) gate.fanins.push_back(spec_wire(n, g, sup));
      gate.fn = std::move(local);
      canonicalize_fanins(n, &gate);
      n.add_gate(std::move(gate));
    }
    Gate latch;
    latch.kind = GateKind::kC;
    latch.out = out;
    latch.fanins = {sr[0], sr[1]};
    n.add_gate(std::move(latch));
  }

  n.check();
  return n;
}

}  // namespace mps::netlist

// Gate-level netlist IR: the circuit the synthesis flow promises but the
// rest of the library only implies.  Two gate families cover the classical
// speed-independent implementation styles:
//
//   * kSop  — a combinational *complex gate*: one atomic AND/OR/INV
//     sum-of-products with a single output delay (the petrify/SIS
//     "complex gate" solution; feedback from the gate's own output is a
//     legal fanin and is how next-state functions become sequential),
//   * kC    — a state-holding standard-C latch: fanins {set, reset},
//     out' = 1 when only set is active, 0 when only reset is, hold
//     otherwise (both at once is a normal transient under unbounded
//     delays — the stale phase's network is still draining — and holds).
//
// Wires carry a role (primary input / output / internal node) and a name;
// the verifier (verify_si.hpp) binds spec signals to wires *by name*.
// The IR is deliberately flat: no hierarchy, no vectors, every gate
// drives exactly one wire.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "logic/cover.hpp"

namespace mps::netlist {

using WireId = std::uint32_t;
inline constexpr WireId kNoWire = 0xFFFFFFFFu;

enum class WireRole : std::uint8_t {
  kInput,     ///< primary input, driven by the environment
  kOutput,    ///< primary output (or observable internal spec signal)
  kInternal,  ///< internal node (set/reset network output etc.)
};

struct Wire {
  std::string name;
  WireRole role = WireRole::kInternal;
};

enum class GateKind : std::uint8_t { kSop, kC };

struct Gate {
  GateKind kind = GateKind::kSop;
  WireId out = kNoWire;
  /// Fanin wires; for kSop these are the cover's variables in order, for
  /// kC exactly {set, reset}.
  std::vector<WireId> fanins;
  /// kSop only: single-output SOP over fanins.size() variables.  An empty
  /// cover is constant 0; a single universal cube is constant 1.
  logic::Cover fn;

  /// Literals of the SOP (0 for kC).
  std::size_t literal_count() const { return kind == GateKind::kSop ? fn.literal_count() : 0; }
};

class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // --- wires ------------------------------------------------------------
  std::size_t num_wires() const { return wires_.size(); }
  const Wire& wire(WireId w) const { return wires_[w]; }
  const std::vector<Wire>& wires() const { return wires_; }
  /// Lowest WireId with this name, or kNoWire.
  WireId find_wire(std::string_view name) const;
  WireId add_wire(Wire w);

  // --- gates ------------------------------------------------------------
  std::size_t num_gates() const { return gates_.size(); }
  const Gate& gate(std::size_t i) const { return gates_[i]; }
  const std::vector<Gate>& gates() const { return gates_; }
  void add_gate(Gate g);
  /// Index of the gate driving `w`, or npos if undriven (primary input).
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t driver(WireId w) const { return driver_[w]; }

  // --- metrics ----------------------------------------------------------
  /// Total SOP literals over all gates (matches the paper's literal metric
  /// when every gate is a complex gate).
  std::size_t total_literals() const;
  /// Static-CMOS transistor-equivalent estimate, the netlist-level figure
  /// Table 1's "area" column abstracts:
  ///   * kSop gate: 2 transistors per literal (series/parallel AOI
  ///     network) plus 2 for the output inverter — except a pure inverter
  ///     (one cube, one negative literal), which *is* the output inverter: 2;
  ///   * kC latch: 12 (4-transistor set/reset stacks plus a 4T keeper and
  ///     staticizing inverter);
  ///   * plus 2 per distinct wire some SOP gate uses complemented (the
  ///     shared input inverter that polarity needs in static CMOS).
  std::size_t transistor_estimate() const;

  /// Structural validation: fanins/outputs in range, at most one driver
  /// per wire, every non-input wire driven, kC arity, SOP variable counts.
  /// Throws util::SemanticsError on violation.
  void check() const;

 private:
  std::string name_;
  std::vector<Wire> wires_;
  std::vector<Gate> gates_;
  std::vector<std::size_t> driver_;  // wire -> gate index or npos
};

/// Make `name` a legal Verilog identifier (replace foreign characters by
/// '_', prefix '_' if it starts with a digit).  Builder and verifier both
/// apply this, so spec-signal lookup by name stays consistent.
std::string sanitize_name(std::string_view name);

}  // namespace mps::netlist

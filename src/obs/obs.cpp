#include "obs/obs.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "util/common.hpp"
#include "util/text.hpp"

namespace mps::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

struct SpanEvent {
  const char* name;
  std::string detail;
  std::int64_t start_ns;
  std::int64_t dur_ns;
  const char* arg_keys[Span::kMaxArgs];
  std::int64_t arg_values[Span::kMaxArgs];
  int num_args;
};

/// One lane: owned jointly by the registry and the thread_local handle, so
/// it survives whichever dies first (pool workers die before export; the
/// registry may be torn down before a late thread exits at process end).
struct ThreadBuffer {
  std::mutex mutex;
  int tid = 0;
  std::string name;
  std::vector<SpanEvent> events;
};

class Registry {
 public:
  static Registry& instance() {
    static Registry r;
    return r;
  }

  std::int64_t now_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  ThreadBuffer& local_buffer() {
    thread_local std::shared_ptr<ThreadBuffer> buffer = [this] {
      auto b = std::make_shared<ThreadBuffer>();
      std::lock_guard lock(mutex_);
      b->tid = static_cast<int>(buffers_.size());
      buffers_.push_back(b);
      return b;
    }();
    return *buffer;
  }

  std::vector<std::shared_ptr<ThreadBuffer>> buffers() {
    std::lock_guard lock(mutex_);
    return buffers_;
  }

  void counter_add(const char* name, std::int64_t delta) {
    std::lock_guard lock(mutex_);
    counters_[name] += delta;
  }

  std::int64_t counter_value(std::string_view name) {
    std::lock_guard lock(mutex_);
    const auto it = counters_.find(std::string(name));
    return it == counters_.end() ? 0 : it->second;
  }

  std::map<std::string, std::int64_t> counters() {
    std::lock_guard lock(mutex_);
    return counters_;
  }

  void reset() {
    std::lock_guard lock(mutex_);
    counters_.clear();
    for (const auto& b : buffers_) {
      std::lock_guard bl(b->mutex);
      b->events.clear();
    }
  }

 private:
  Registry() : epoch_(std::chrono::steady_clock::now()) {}

  std::chrono::steady_clock::time_point epoch_;
  std::mutex mutex_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::map<std::string, std::int64_t> counters_;  // ordered for stable JSON
};

/// JSON string escaping for names/details (control chars, quote, backslash).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += util::format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) throw util::Error("cannot open " + path + " for writing");
  out << text;
  if (!out) throw util::Error("error writing " + path);
}

}  // namespace

void set_enabled(bool on) { detail::g_enabled.store(on, std::memory_order_relaxed); }

void reset() { Registry::instance().reset(); }

void set_thread_name(std::string_view name) {
  ThreadBuffer& b = Registry::instance().local_buffer();
  std::lock_guard lock(b.mutex);
  b.name.assign(name);
}

void counter_add(const char* name, std::int64_t delta) {
  if (!enabled()) return;
  Registry::instance().counter_add(name, delta);
}

std::int64_t counter_value(std::string_view name) {
  return Registry::instance().counter_value(name);
}

std::size_t num_events() {
  std::size_t n = 0;
  for (const auto& b : Registry::instance().buffers()) {
    std::lock_guard lock(b->mutex);
    n += b->events.size();
  }
  return n;
}

void Span::begin() { start_ns_ = Registry::instance().now_ns(); }

void Span::end() {
  Registry& reg = Registry::instance();
  const std::int64_t dur = reg.now_ns() - start_ns_;
  ThreadBuffer& b = reg.local_buffer();
  std::lock_guard lock(b.mutex);
  SpanEvent& e = b.events.emplace_back();
  e.name = name_;
  e.detail = std::move(detail_);
  e.start_ns = start_ns_;
  e.dur_ns = dur;
  e.num_args = num_args_;
  for (int i = 0; i < num_args_; ++i) {
    e.arg_keys[i] = arg_keys_[i];
    e.arg_values[i] = arg_values_[i];
  }
}

std::string chrome_trace_json() {
  std::ostringstream out;
  out << "[\n";
  bool first = true;
  const auto buffers = Registry::instance().buffers();
  for (const auto& b : buffers) {
    std::lock_guard lock(b->mutex);
    const std::string lane =
        b->name.empty() ? "thread-" + std::to_string(b->tid) : b->name;
    out << (first ? "" : ",\n")
        << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":" << b->tid
        << ",\"args\":{\"name\":\"" << json_escape(lane) << "\"}}";
    first = false;
  }
  for (const auto& b : buffers) {
    std::lock_guard lock(b->mutex);
    for (const SpanEvent& e : b->events) {
      out << (first ? "" : ",\n")
          << "{\"ph\":\"X\",\"cat\":\"mps\",\"name\":\"" << json_escape(e.name)
          << "\",\"pid\":0,\"tid\":" << b->tid
          << util::format(",\"ts\":%.3f,\"dur\":%.3f",
                          static_cast<double>(e.start_ns) / 1000.0,
                          static_cast<double>(e.dur_ns) / 1000.0);
      if (!e.detail.empty() || e.num_args > 0) {
        out << ",\"args\":{";
        bool first_arg = true;
        if (!e.detail.empty()) {
          out << "\"detail\":\"" << json_escape(e.detail) << "\"";
          first_arg = false;
        }
        for (int i = 0; i < e.num_args; ++i) {
          out << (first_arg ? "" : ",") << "\"" << json_escape(e.arg_keys[i])
              << "\":" << e.arg_values[i];
          first_arg = false;
        }
        out << "}";
      }
      out << "}";
      first = false;
    }
  }
  out << "\n]\n";
  return out.str();
}

std::string stats_json() {
  struct Agg {
    std::int64_t count = 0;
    std::int64_t total_ns = 0;
    std::int64_t max_ns = 0;
  };
  std::map<std::string, Agg> spans;  // ordered for stable output
  struct Lane {
    std::string name;
    std::int64_t events = 0;
    std::int64_t busy_ns = 0;  // sum of pool.task slices (caller + workers)
  };
  std::vector<Lane> lanes;

  const auto buffers = Registry::instance().buffers();
  for (const auto& b : buffers) {
    std::lock_guard lock(b->mutex);
    Lane lane;
    lane.name = b->name.empty() ? "thread-" + std::to_string(b->tid) : b->name;
    for (const SpanEvent& e : b->events) {
      Agg& a = spans[e.name];
      ++a.count;
      a.total_ns += e.dur_ns;
      a.max_ns = std::max(a.max_ns, e.dur_ns);
      ++lane.events;
      if (std::string_view(e.name) == "pool.task") lane.busy_ns += e.dur_ns;
    }
    lanes.push_back(std::move(lane));
  }

  std::ostringstream out;
  out << "{\n  \"spans\": {\n";
  bool first = true;
  for (const auto& [name, a] : spans) {
    out << (first ? "" : ",\n") << "    \"" << json_escape(name)
        << util::format("\": {\"count\": %lld, \"total_seconds\": %.6f, "
                        "\"max_seconds\": %.6f}",
                        static_cast<long long>(a.count),
                        static_cast<double>(a.total_ns) * 1e-9,
                        static_cast<double>(a.max_ns) * 1e-9);
    first = false;
  }
  out << "\n  },\n  \"counters\": {\n";
  first = true;
  for (const auto& [name, value] : Registry::instance().counters()) {
    out << (first ? "" : ",\n") << "    \"" << json_escape(name)
        << "\": " << value;
    first = false;
  }
  out << "\n  },\n  \"threads\": [\n";
  first = true;
  for (std::size_t tid = 0; tid < lanes.size(); ++tid) {
    const Lane& l = lanes[tid];
    out << (first ? "" : ",\n")
        << util::format("    {\"tid\": %zu, \"name\": \"%s\", \"events\": %lld, "
                        "\"busy_seconds\": %.6f}",
                        tid, json_escape(l.name).c_str(),
                        static_cast<long long>(l.events),
                        static_cast<double>(l.busy_ns) * 1e-9);
    first = false;
  }
  out << "\n  ]\n}\n";
  return out.str();
}

void write_chrome_trace(const std::string& path) { write_file(path, chrome_trace_json()); }

void write_stats_json(const std::string& path) { write_file(path, stats_json()); }

}  // namespace mps::obs

// Process-wide observability: scoped spans, named counters, and two export
// formats — Chrome trace-event JSON (load the file in chrome://tracing or
// Perfetto; one lane per registered thread) and a flat aggregate-stats JSON.
//
// The layer is compiled in unconditionally but *disabled* by default.  The
// entire hot-path cost in the disabled state is one relaxed atomic load and
// a branch per instrumentation site (pinned by bench/micro_obs.cpp), so the
// solver, the state-graph substrate and the synthesis flow keep their spans
// in place in every build.  Spans and counters record only while a client
// (mps_synth --trace / --stats-json, or a test) has called set_enabled(true).
//
// Threading model: every thread appends to its own buffer (registered once,
// on first use, under the registry mutex); export walks all buffers.  A
// buffer outlives its thread — util::ThreadPool workers die with their pool,
// their lanes survive until the trace is written.  Recording while other
// threads export is safe (per-buffer mutex); the usual pattern is to export
// after the instrumented work finished.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace mps::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True while recording.  Relaxed: instrumentation is advisory, a span that
/// straddles an enable/disable edge may be dropped or half-recorded.
inline bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }

/// Turn recording on or off (off drops nothing already recorded).
void set_enabled(bool on);

/// Drop every recorded event and counter (thread registrations and lane
/// names survive).  Test/benchmark hook.
void reset();

/// Name the calling thread's lane ("main", "worker-3").  Registers the
/// thread with the sink even while disabled — lane metadata is cheap and a
/// pool that outlives an enable edge should still have named lanes.
void set_thread_name(std::string_view name);

/// Add `delta` to the named process-wide counter.  `name` must be a string
/// literal (stored by pointer on the hot path).  No-op while disabled.
void counter_add(const char* name, std::int64_t delta);

/// Current value of a counter (0 if never bumped).  Test hook.
std::int64_t counter_value(std::string_view name);

/// Number of span events recorded so far across all threads.  Test hook.
std::size_t num_events();

/// A scoped span: records {name, detail, thread, start, duration} plus up to
/// kMaxArgs numeric arguments on destruction.  When the layer is disabled at
/// construction the span is inert: no clock read, no allocation, no
/// recording (arg() and the destructor become branches on a bool).
class Span {
 public:
  static constexpr int kMaxArgs = 10;

  /// `name` must be a string literal (stored by pointer until export).
  explicit Span(const char* name) : name_(name) {
    if (enabled()) begin();
  }
  /// A span with a dynamic detail string (e.g. the module's output signal);
  /// the detail is exported as a string arg, aggregation stays by `name`.
  Span(const char* name, std::string_view detail) : name_(name) {
    if (enabled()) {
      detail_.assign(detail);
      begin();
    }
  }
  ~Span() {
    if (active()) end();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach a numeric argument (exported into the trace event's "args" and
  /// ignored beyond kMaxArgs).  `key` must be a string literal.
  void arg(const char* key, std::int64_t value) {
    if (active() && num_args_ < kMaxArgs) {
      arg_keys_[num_args_] = key;
      arg_values_[num_args_] = value;
      ++num_args_;
    }
  }

  /// True when this span is recording (the layer was enabled at entry).
  bool active() const { return start_ns_ >= 0; }

 private:
  void begin();
  void end();

  const char* name_;
  std::string detail_;
  std::int64_t start_ns_ = -1;
  const char* arg_keys_[kMaxArgs];
  std::int64_t arg_values_[kMaxArgs];
  int num_args_ = 0;
};

/// Chrome trace-event JSON: a top-level array of thread_name metadata
/// records (one lane per registered thread) followed by one complete ("X")
/// event per span, timestamps in microseconds since the first registry use.
std::string chrome_trace_json();

/// Flat aggregate stats: per-span-name {count, total_seconds, max_seconds},
/// every counter, and per-thread lane summaries (event count, busy seconds).
std::string stats_json();

/// Write chrome_trace_json() / stats_json() to `path` (util::Error on I/O
/// failure).
void write_chrome_trace(const std::string& path);
void write_stats_json(const std::string& path);

}  // namespace mps::obs

// Symbolic (BDD) reachability and CSC analysis of signal transition graphs
// — the engine that takes the state-space analyses past the explicit
// token-game's enumeration ceiling (largest Table-1 state graph: 2,210
// states; this engine handles the generated pipeline family at 10⁵–10⁷).
//
// Design (DESIGN.md §12):
//
//   * State vector = (places, signal values).  A safe net's marking is one
//     bit per place; the STG's consistent code is one bit per non-dummy
//     signal.  Each state bit b gets an interleaved current/next variable
//     pair (2·pos(b), 2·pos(b)+1) in the shared Manager order.
//
//   * Variable order: state bits are sorted by structural position — a
//     place by its id (creation order follows the net's structure), a
//     signal right next to the first fan-in place of its transitions — so
//     pipeline-like specifications keep interacting bits adjacent.
//
//   * Partitioned transition relation: one conjunct per STG transition
//     (Mishchenko et al., partitioned representations; the natural
//     *disjunctive* partitioning of interleaving semantics).  A partition
//     only constrains the bits its transition touches; untouched bits have
//     no frame conjuncts at all — the image step quantifies exactly the
//     touched current variables (the early-quantification schedule) and
//     renames the touched next variables back, leaving the rest alone:
//
//       Img_t(S) = rename_next→current(∃ touched(t). S ∧ T_t)
//       Img(S)   = ∨_t Img_t(S)
//
//   * Frontier-based fixed point: each iteration computes the image of the
//     newly discovered states only, with mark-and-sweep GC between
//     iterations once the node table crosses a threshold.
//
//   * CSC without enumeration: for each non-input signal u the implied
//     next value F_u is a small formula over current variables
//     (F_u = (u ∧ ¬fall-excited) ∨ (¬u ∧ rise-excited)); projecting
//     R ∧ F_u and R ∧ ¬F_u onto the signal variables (one and_exists each)
//     yields the ON/OFF code sets, and CSC holds iff they are disjoint.
//
// Error contract mirrors sg::StateGraph::from_stg: util::SemanticsError
// for unsafe nets and inconsistent state assignments (detected
// symbolically on the reached set), util::LimitError when a node/op
// budget or the iteration cap is exceeded.
#pragma once

#include <cstdint>
#include <vector>

#include "bdd/bdd.hpp"
#include "stg/stg.hpp"
#include "util/bitvec.hpp"

namespace mps::bdd {

struct SymbolicOptions {
  /// Manager node budget (util::LimitError beyond it); 0 = unlimited.
  std::size_t max_nodes = 0;
  /// Manager operation budget; 0 = unlimited.
  std::uint64_t max_ops = 0;
  /// Run mark-and-sweep GC between image iterations once the node table
  /// exceeds this many nodes; 0 disables GC.
  std::size_t gc_node_threshold = 1u << 20;
  /// Cap on image iterations (≥ state-space diameter needed); 0 = none.
  std::size_t max_iterations = 0;
  /// The initial signal code is inferred from a bounded explicit walk (a
  /// token-game DFS stopped as soon as every signal's first rise/fall has
  /// been witnessed — typically after a handful of firings).  This caps the
  /// walk; signals still unresolved fall back to the declared initial
  /// value, matching the explicit builder's rule for never-firing signals.
  std::size_t probe_max_markings = 100'000;
};

struct CscVerdict {
  bool holds = true;
  /// Non-input signals with at least one coding conflict (STG signal ids).
  std::vector<stg::SignalId> conflicts;
};

/// The compiled symbolic engine for one STG.  Keeps its own copy of the
/// STG (so temporaries are fine to pass); the Manager, the partitioned
/// relation and the reached set live here.
class SymbolicStg {
 public:
  explicit SymbolicStg(stg::Stg stg, const SymbolicOptions& opts = {});

  Manager& manager() { return mgr_; }
  const stg::Stg& stg() const { return stg_; }

  /// Number of state bits (places + non-dummy signals).
  std::size_t num_state_bits() const { return num_bits_; }
  /// Current-state BDD variable of a place / signal bit.
  std::uint32_t place_var(petri::PlaceId p) const { return 2 * bit_pos_place_[p]; }
  std::uint32_t signal_var(stg::SignalId s) const;

  /// The reached set as a BDD over current variables (computed once,
  /// cached).  Runs the symbolic safety and consistency checks on the
  /// result before returning.
  NodeId reachable();
  /// Number of reachable states (= reachable safe markings).
  double num_states();
  /// Image iterations the fixed point took (valid after reachable()).
  std::size_t num_iterations() const { return iterations_; }

  /// Characteristic function of the reachable *codes*: ∃places. R, over
  /// the current signal variables.
  NodeId code_chi();
  /// True iff `code` (indexed like the explicit state graph's signal
  /// columns: STG order with dummies dropped) is the code of some
  /// reachable state.
  bool code_reachable(const util::BitVec& code);

  /// Symbolic CSC check over every non-input signal.
  CscVerdict check_csc();

  /// The initial code the engine inferred (STG order, dummies dropped) —
  /// exposed for cross-checks against the explicit builder.
  const util::BitVec& initial_code() const { return initial_code_; }

 private:
  /// One partition of the transition relation.
  struct Part {
    petri::TransId trans;
    NodeId rel;   ///< constraint over touched current+next variables
    NodeId cube;  ///< touched *current* variables, as a positive cube
    NodeId pre;   ///< marking-enabledness: fan-in places marked (current vars)
  };

  void assign_variable_order();
  void infer_initial_code();
  void compile();
  void collect_roots(std::vector<NodeId*>* roots);
  void check_safety_and_consistency(NodeId r);
  double count_states(NodeId f);

  stg::Stg stg_;
  SymbolicOptions opts_;
  std::size_t num_bits_ = 0;
  std::vector<std::uint32_t> bit_pos_place_;   // place id -> bit position
  std::vector<std::uint32_t> bit_pos_signal_;  // stg signal id -> bit position (kNoId for dummies)
  util::BitVec initial_code_;                  // dense (non-dummy) signal order
  Manager mgr_;

  bool compiled_ = false;
  std::vector<Part> parts_;
  NodeId s0_ = kFalse;
  NodeId place_cube_ = kTrue;  // all current place variables

  bool reached_ = false;
  NodeId r_ = kFalse;
  std::size_t iterations_ = 0;
  std::size_t gc_trigger_ = 0;
};

}  // namespace mps::bdd

// A reduced ordered BDD package — the substrate for the paper's cited
// follow-up ("the implementation area was further reduced by developing a
// BDD based constraint satisfaction approach [19]"), for exact equivalence
// checking in verify::, and for the symbolic reachability / CSC engine in
// bdd::SymbolicStg (symbolic.hpp).
//
// Classic design: a global-order unique table keyed by (var, low, high),
// hash-consed nodes addressed by index, complement-free (both terminals
// are materialized), memoized ITE.  Node 0 = false, node 1 = true.
//
// Beyond the textbook core the manager carries what image computation
// needs:
//   * a shared operation cache (restrict / exists_cube / and_exists /
//     rename_shift_down all memoize into one table, invalidated as a whole
//     by garbage collection),
//   * cube quantification (∃ over a variable set in one pass) and the
//     relational product and_exists(f, g, cube) = ∃cube. f ∧ g, which never
//     materializes f ∧ g,
//   * rename_shift_down: the next-state → current-state substitution for
//     the interleaved variable order (odd var 2i+1 ↦ even var 2i),
//   * mark-and-sweep garbage collection over caller-registered roots, with
//     full cache invalidation and node-id compaction,
//   * node and operation budgets surfaced as util::LimitError so runaway
//     fixed points fail cleanly instead of eating the machine.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "logic/cover.hpp"
#include "util/bitvec.hpp"

namespace mps::bdd {

using NodeId = std::uint32_t;
inline constexpr NodeId kFalse = 0;
inline constexpr NodeId kTrue = 1;

class Manager {
 public:
  explicit Manager(std::size_t num_vars);

  std::size_t num_vars() const { return num_vars_; }
  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t unique_size() const { return unique_.size(); }

  NodeId bdd_false() const { return kFalse; }
  NodeId bdd_true() const { return kTrue; }
  /// The function "variable v" (positive literal).
  NodeId var(std::uint32_t v);
  /// The function "¬v".
  NodeId nvar(std::uint32_t v);

  NodeId ite(NodeId f, NodeId g, NodeId h);
  NodeId bdd_not(NodeId f) { return ite(f, kFalse, kTrue); }
  NodeId bdd_and(NodeId f, NodeId g) { return ite(f, g, kFalse); }
  NodeId bdd_or(NodeId f, NodeId g) { return ite(f, kTrue, g); }
  NodeId bdd_xor(NodeId f, NodeId g) { return ite(f, bdd_not(g), g); }
  NodeId bdd_implies(NodeId f, NodeId g) { return ite(f, g, kTrue); }

  /// Cofactor with respect to v = value.  Memoized in the shared op cache:
  /// shared subgraphs are visited once per call, not once per path.
  NodeId restrict(NodeId f, std::uint32_t v, bool value);
  /// Reference implementation without memoization — exponential on shared
  /// graphs (it re-walks a subgraph once per path reaching it).  Kept only
  /// so bench/micro_bdd can pin the win of the memoized version and tests
  /// can cross-check results; never call it from library code.
  NodeId restrict_nomemo(NodeId f, std::uint32_t v, bool value);
  /// ∃v. f
  NodeId exists(NodeId f, std::uint32_t v);
  /// ∀v. f
  NodeId forall(NodeId f, std::uint32_t v);

  /// The positive cube x_{v1} ∧ x_{v2} ∧ … used as a quantification set.
  NodeId cube(const std::vector<std::uint32_t>& vars);
  /// ∃vars(cube). f — single pass, memoized per (f, cube).
  NodeId exists_cube(NodeId f, NodeId cube);
  /// Relational product ∃vars(cube). f ∧ g without building f ∧ g — the
  /// quantification happens *inside* the conjunction (early quantification:
  /// a variable disappears as soon as both cofactor pairs are combined, and
  /// the ∨ of cofactors cuts off at the first kTrue).  Own memo entries in
  /// the shared op cache keyed by the unordered pair {f, g} and the cube.
  NodeId and_exists(NodeId f, NodeId g, NodeId cube);
  /// Substitute every odd variable 2i+1 by its even partner 2i — the
  /// next-state → current-state renaming of the interleaved order used by
  /// the symbolic engine.  Requires (checked): whenever 2i+1 occurs in the
  /// support of f, 2i does not occur above/below it on the same path, so
  /// the substitution is order-preserving.
  NodeId rename_shift_down(NodeId f);

  /// Evaluate under a total assignment.
  bool eval(NodeId f, const util::BitVec& assignment) const;
  /// Number of satisfying assignments over all num_vars() variables.
  double sat_count(NodeId f) const;
  /// Any satisfying assignment; false if f == kFalse.
  bool pick_model(NodeId f, util::BitVec* out) const;

  /// Build from a sum-of-cubes cover (variables must match num_vars()).
  NodeId from_cover(const logic::Cover& cover);
  /// Build the characteristic function of a minterm list.
  NodeId from_minterms(const std::vector<util::BitVec>& codes);

  // --- budgets ----------------------------------------------------------
  /// Abort (util::LimitError) when the node table would exceed `n` nodes.
  /// 0 = unlimited (the default).
  void set_max_nodes(std::size_t n) { max_nodes_ = n; }
  /// Abort (util::LimitError) after `n` cache-miss operation steps across
  /// all recursive ops.  0 = unlimited (the default).
  void set_max_ops(std::uint64_t n) { max_ops_ = n; }

  // --- garbage collection -----------------------------------------------
  /// Mark-and-sweep over the given roots: every node not reachable from a
  /// root is freed, surviving nodes are compacted (ids change!) and the
  /// NodeIds behind the passed pointers are rewritten in place.  All other
  /// outstanding NodeIds are invalidated, and both operation caches are
  /// cleared.  Returns the number of collected nodes.
  std::size_t gc(const std::vector<NodeId*>& roots);

  struct Stats {
    std::uint64_t ops = 0;              ///< cache-miss recursion steps
    std::uint64_t cache_hits = 0;       ///< op-cache + ite-cache hits
    std::uint64_t cache_misses = 0;     ///< op-cache + ite-cache misses
    std::uint64_t gc_runs = 0;          ///< number of gc() calls
    std::uint64_t nodes_collected = 0;  ///< total nodes freed across gcs
  };
  const Stats& stats() const { return stats_; }

  struct Node {
    std::uint32_t var;  // 0xFFFFFFFF for terminals
    NodeId low, high;
  };
  const Node& node(NodeId id) const { return nodes_[id]; }

 private:
  NodeId make(std::uint32_t v, NodeId low, NodeId high);
  NodeId top_var(NodeId f, NodeId g, NodeId h) const;
  /// Budget bookkeeping for one cache-miss expansion.
  void tick_op();

  struct Key {
    std::uint32_t var;
    NodeId low, high;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return static_cast<std::size_t>(
          util::hash_combine(util::hash_combine(k.var, k.low), k.high));
    }
  };
  struct IteKey {
    NodeId f, g, h;
    bool operator==(const IteKey&) const = default;
  };
  struct IteKeyHash {
    std::size_t operator()(const IteKey& k) const {
      return static_cast<std::size_t>(util::hash_combine(util::hash_combine(k.f, k.g), k.h));
    }
  };
  /// One cache for every non-ITE operation; `op` packs the opcode with its
  /// scalar operand (variable+value for restrict), `a`/`b`/`c` hold node
  /// operands (cubes ride in `c`).
  struct OpKey {
    std::uint32_t op;
    NodeId a, b, c;
    bool operator==(const OpKey&) const = default;
  };
  struct OpKeyHash {
    std::size_t operator()(const OpKey& k) const {
      return static_cast<std::size_t>(util::hash_combine(
          util::hash_combine(util::hash_combine(k.op, k.a), k.b), k.c));
    }
  };
  enum OpCode : std::uint32_t {
    kOpRestrict0 = 1,  // + 4*var
    kOpRestrict1 = 2,  // + 4*var
    kOpExists = 3,
    kOpAndExists = 4,
    kOpRename = 5,
  };

  std::size_t num_vars_;
  std::vector<Node> nodes_;
  std::unordered_map<Key, NodeId, KeyHash> unique_;
  std::unordered_map<IteKey, NodeId, IteKeyHash> ite_cache_;
  std::unordered_map<OpKey, NodeId, OpKeyHash> op_cache_;
  std::size_t max_nodes_ = 0;
  std::uint64_t max_ops_ = 0;
  Stats stats_;
};

}  // namespace mps::bdd

// A reduced ordered BDD package — the substrate for the paper's cited
// follow-up ("the implementation area was further reduced by developing a
// BDD based constraint satisfaction approach [19]") and for exact
// equivalence checking in verify::.
//
// Classic design: a global-order unique table keyed by (var, low, high),
// hash-consed nodes addressed by index, complement-free (both terminals
// are materialized), memoized ITE.  Node 0 = false, node 1 = true.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "logic/cover.hpp"
#include "util/bitvec.hpp"

namespace mps::bdd {

using NodeId = std::uint32_t;
inline constexpr NodeId kFalse = 0;
inline constexpr NodeId kTrue = 1;

class Manager {
 public:
  explicit Manager(std::size_t num_vars);

  std::size_t num_vars() const { return num_vars_; }
  std::size_t num_nodes() const { return nodes_.size(); }

  NodeId bdd_false() const { return kFalse; }
  NodeId bdd_true() const { return kTrue; }
  /// The function "variable v" (positive literal).
  NodeId var(std::uint32_t v);
  /// The function "¬v".
  NodeId nvar(std::uint32_t v);

  NodeId ite(NodeId f, NodeId g, NodeId h);
  NodeId bdd_not(NodeId f) { return ite(f, kFalse, kTrue); }
  NodeId bdd_and(NodeId f, NodeId g) { return ite(f, g, kFalse); }
  NodeId bdd_or(NodeId f, NodeId g) { return ite(f, kTrue, g); }
  NodeId bdd_xor(NodeId f, NodeId g) { return ite(f, bdd_not(g), g); }
  NodeId bdd_implies(NodeId f, NodeId g) { return ite(f, g, kTrue); }

  /// Cofactor with respect to v = value.
  NodeId restrict(NodeId f, std::uint32_t v, bool value);
  /// ∃v. f
  NodeId exists(NodeId f, std::uint32_t v);
  /// ∀v. f
  NodeId forall(NodeId f, std::uint32_t v);

  /// Evaluate under a total assignment.
  bool eval(NodeId f, const util::BitVec& assignment) const;
  /// Number of satisfying assignments over all num_vars() variables.
  double sat_count(NodeId f) const;
  /// Any satisfying assignment; false if f == kFalse.
  bool pick_model(NodeId f, util::BitVec* out) const;

  /// Build from a sum-of-cubes cover (variables must match num_vars()).
  NodeId from_cover(const logic::Cover& cover);
  /// Build the characteristic function of a minterm list.
  NodeId from_minterms(const std::vector<util::BitVec>& codes);

  struct Node {
    std::uint32_t var;  // 0xFFFFFFFF for terminals
    NodeId low, high;
  };
  const Node& node(NodeId id) const { return nodes_[id]; }

 private:
  NodeId make(std::uint32_t v, NodeId low, NodeId high);
  NodeId top_var(NodeId f, NodeId g, NodeId h) const;

  struct Key {
    std::uint32_t var;
    NodeId low, high;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return static_cast<std::size_t>(
          util::hash_combine(util::hash_combine(k.var, k.low), k.high));
    }
  };
  struct IteKey {
    NodeId f, g, h;
    bool operator==(const IteKey&) const = default;
  };
  struct IteKeyHash {
    std::size_t operator()(const IteKey& k) const {
      return static_cast<std::size_t>(util::hash_combine(util::hash_combine(k.f, k.g), k.h));
    }
  };

  std::size_t num_vars_;
  std::vector<Node> nodes_;
  std::unordered_map<Key, NodeId, KeyHash> unique_;
  std::unordered_map<IteKey, NodeId, IteKeyHash> ite_cache_;
};

}  // namespace mps::bdd

#include "bdd/symbolic.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "obs/obs.hpp"
#include "util/common.hpp"

namespace mps::bdd {

namespace {
inline constexpr std::uint32_t kNoPos = 0xFFFFFFFFu;
}

SymbolicStg::SymbolicStg(stg::Stg stg, const SymbolicOptions& opts)
    : stg_(std::move(stg)), opts_(opts), mgr_(0) {
  assign_variable_order();
  mgr_ = Manager(2 * num_bits_);
  mgr_.set_max_nodes(opts_.max_nodes);
  mgr_.set_max_ops(opts_.max_ops);
  infer_initial_code();
}

std::uint32_t SymbolicStg::signal_var(stg::SignalId s) const {
  MPS_ASSERT(bit_pos_signal_[s] != kNoPos);
  return 2 * bit_pos_signal_[s];
}

void SymbolicStg::assign_variable_order() {
  const petri::Net& net = stg_.net();
  const std::size_t num_places = net.num_places();

  // Breadth-first traversal of the net from the initially marked places:
  // a place gets its bit position at discovery, a signal right after the
  // first transition touching it.  Discovery order follows the token flow,
  // so bits that one transition relates (fan-in places, fan-out places, the
  // signal) land next to each other — for replicated-module specifications
  // (pipelines, sequencer chains) this keeps each module's bits in one
  // contiguous band, which is what makes the reached set's BDD stay small.
  bit_pos_place_.assign(num_places, kNoPos);
  bit_pos_signal_.assign(stg_.num_signals(), kNoPos);
  std::uint32_t pos = 0;

  std::vector<char> trans_seen(net.num_transitions(), 0);
  std::vector<petri::PlaceId> queue;
  const petri::Marking& m0 = stg_.initial_marking();
  for (petri::PlaceId p = 0; p < num_places; ++p) {
    if (m0.tokens(p) > 0) {
      bit_pos_place_[p] = pos++;
      queue.push_back(p);
    }
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const petri::PlaceId p = queue[head];
    for (const petri::TransId t : net.place_post(p)) {
      if (trans_seen[t]) continue;
      trans_seen[t] = 1;
      const stg::Label& l = stg_.label(t);
      if (!l.is_silent() && stg_.signal_kind(l.sig) != stg::SignalKind::Dummy &&
          bit_pos_signal_[l.sig] == kNoPos) {
        bit_pos_signal_[l.sig] = pos++;
      }
      for (const petri::PlaceId q : net.trans_post(t)) {
        if (bit_pos_place_[q] == kNoPos) {
          bit_pos_place_[q] = pos++;
          queue.push_back(q);
        }
      }
    }
  }
  // Anything the traversal missed (structurally dead places, signals whose
  // transitions are all unreachable, non-dummy signals with no transitions)
  // goes at the bottom in id order.
  for (petri::PlaceId p = 0; p < num_places; ++p) {
    if (bit_pos_place_[p] == kNoPos) bit_pos_place_[p] = pos++;
  }
  for (stg::SignalId s = 0; s < stg_.num_signals(); ++s) {
    if (stg_.signal_kind(s) == stg::SignalKind::Dummy) continue;
    if (bit_pos_signal_[s] == kNoPos) bit_pos_signal_[s] = pos++;
  }
  num_bits_ = pos;
}

/// Bounded token-game DFS that stops as soon as every signal's initial
/// value is pinned.  The rule mirrors sg::infer_codes: a reachable firing
/// of s+ from a marking whose s-flip parity (relative to M0) is q pins the
/// initial value to q (the value at the firing marking must be 0); s- pins
/// it to ¬q.  DFS rather than BFS so one deep trajectory resolves far-away
/// stages after O(path) firings instead of O(breadth) markings.  Signals
/// left unresolved at the cap (or that never rise/fall) fall back to the
/// declared initial value, defaulting to 0 — the explicit builder's rule.
void SymbolicStg::infer_initial_code() {
  std::vector<char> resolved(stg_.num_signals(), 0);
  std::vector<char> base(stg_.num_signals(), 0);
  std::size_t unresolved = 0;
  for (stg::SignalId s = 0; s < stg_.num_signals(); ++s) {
    if (bit_pos_signal_[s] == kNoPos) continue;
    bool has_rise_fall = false;
    for (const petri::TransId t : stg_.transitions_of(s)) {
      const stg::Polarity pol = stg_.label(t).pol;
      has_rise_fall |= pol == stg::Polarity::Rise || pol == stg::Polarity::Fall;
    }
    if (has_rise_fall) {
      ++unresolved;
    } else {
      resolved[s] = 1;
      base[s] = stg_.initial_value(s).value_or(false) ? 1 : 0;
    }
  }

  const petri::Net& net = stg_.net();
  if (unresolved > 0) {
    struct Item {
      petri::Marking m;
      util::BitVec parity;
    };
    std::vector<Item> stack;
    std::unordered_set<petri::Marking, petri::MarkingHash> visited;
    stack.push_back({stg_.initial_marking(), util::BitVec(stg_.num_signals())});
    visited.insert(stg_.initial_marking());
    std::vector<petri::TransId> enabled;
    while (!stack.empty() && unresolved > 0 && visited.size() < opts_.probe_max_markings) {
      const Item item = std::move(stack.back());
      stack.pop_back();
      net.enabled_transitions(item.m, &enabled);
      for (const petri::TransId t : enabled) {
        const stg::Label& l = stg_.label(t);
        if (!l.is_silent() && !resolved[l.sig] &&
            (l.pol == stg::Polarity::Rise || l.pol == stg::Polarity::Fall)) {
          const bool q = item.parity.test(l.sig);
          base[l.sig] = (l.pol == stg::Polarity::Rise ? q : !q) ? 1 : 0;
          resolved[l.sig] = 1;
          if (--unresolved == 0) break;
        }
        petri::Marking next = net.fire(item.m, t);
        if (!next.is_safe()) continue;  // contact: reachable() will diagnose
        if (!visited.insert(next).second) continue;
        util::BitVec parity = item.parity;
        if (!l.is_silent()) parity.flip(l.sig);
        stack.push_back({std::move(next), std::move(parity)});
      }
    }
    for (stg::SignalId s = 0; s < stg_.num_signals(); ++s) {
      if (bit_pos_signal_[s] != kNoPos && !resolved[s]) {
        base[s] = stg_.initial_value(s).value_or(false) ? 1 : 0;
      }
    }
  }

  std::size_t dense = 0;
  for (stg::SignalId s = 0; s < stg_.num_signals(); ++s) {
    if (bit_pos_signal_[s] != kNoPos) ++dense;
  }
  initial_code_ = util::BitVec(dense);
  dense = 0;
  for (stg::SignalId s = 0; s < stg_.num_signals(); ++s) {
    if (bit_pos_signal_[s] == kNoPos) continue;
    initial_code_.set(dense++, base[s] != 0);
  }
}

void SymbolicStg::compile() {
  if (compiled_) return;
  const petri::Net& net = stg_.net();
  const petri::Marking& m0 = stg_.initial_marking();
  if (!m0.is_safe()) {
    throw util::SemanticsError("STG '" + stg_.name() +
                               "' is not safe (a place holds >1 token)");
  }

  // One partition per net transition; the relation constrains exactly the
  // touched bits (pre/post places plus the labelled signal).
  parts_.reserve(net.num_transitions());
  std::vector<std::uint32_t> cube_vars;
  // (var, required value) literals, plus an optional toggle pair.
  std::vector<std::pair<std::uint32_t, bool>> lits;
  for (petri::TransId t = 0; t < net.num_transitions(); ++t) {
    lits.clear();
    cube_vars.clear();
    const auto& pre = net.trans_pre(t);
    const auto& post = net.trans_post(t);
    auto in = [](const std::vector<petri::PlaceId>& v, petri::PlaceId p) {
      return std::find(v.begin(), v.end(), p) != v.end();
    };
    for (const petri::PlaceId p : pre) {
      const std::uint32_t cur = place_var(p);
      lits.push_back({cur, true});
      lits.push_back({cur + 1, in(post, p)});
      cube_vars.push_back(cur);
    }
    for (const petri::PlaceId p : post) {
      if (in(pre, p)) continue;
      const std::uint32_t cur = place_var(p);
      lits.push_back({cur, false});
      lits.push_back({cur + 1, true});
      cube_vars.push_back(cur);
    }
    const stg::Label& l = stg_.label(t);
    std::uint32_t toggle_var = kNoPos;
    if (!l.is_silent() && bit_pos_signal_[l.sig] != kNoPos) {
      const std::uint32_t cur = signal_var(l.sig);
      switch (l.pol) {
        case stg::Polarity::Rise:
          lits.push_back({cur, false});
          lits.push_back({cur + 1, true});
          break;
        case stg::Polarity::Fall:
          lits.push_back({cur, true});
          lits.push_back({cur + 1, false});
          break;
        case stg::Polarity::Toggle:
          toggle_var = cur;
          break;
        case stg::Polarity::Silent:
          break;
      }
      cube_vars.push_back(cur);
    }

    // Conjoin highest variable first so every intermediate stays a cube.
    std::sort(lits.begin(), lits.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    NodeId rel = kTrue;
    for (const auto& [v, value] : lits) {
      rel = mgr_.ite(mgr_.var(v), value ? rel : kFalse, value ? kFalse : rel);
    }
    if (toggle_var != kNoPos) {
      rel = mgr_.bdd_and(rel, mgr_.bdd_xor(mgr_.var(toggle_var), mgr_.var(toggle_var + 1)));
    }

    NodeId pre_cube = kTrue;
    std::vector<std::uint32_t> pre_vars;
    for (const petri::PlaceId p : pre) pre_vars.push_back(place_var(p));
    std::sort(pre_vars.begin(), pre_vars.end(), std::greater<>());
    for (const std::uint32_t v : pre_vars) pre_cube = mgr_.ite(mgr_.var(v), pre_cube, kFalse);

    parts_.push_back(Part{t, rel, mgr_.cube(cube_vars), pre_cube});
  }

  // Initial state: minterm of (M0, initial code) over current variables.
  std::vector<std::pair<std::uint32_t, bool>> s0_bits;
  for (petri::PlaceId p = 0; p < net.num_places(); ++p) {
    s0_bits.push_back({place_var(p), m0.tokens(p) > 0});
  }
  std::size_t dense = 0;
  std::vector<std::uint32_t> place_vars;
  for (petri::PlaceId p = 0; p < net.num_places(); ++p) place_vars.push_back(place_var(p));
  place_cube_ = mgr_.cube(place_vars);
  for (stg::SignalId s = 0; s < stg_.num_signals(); ++s) {
    if (bit_pos_signal_[s] == kNoPos) continue;
    s0_bits.push_back({signal_var(s), initial_code_.test(dense++)});
  }
  std::sort(s0_bits.begin(), s0_bits.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  s0_ = kTrue;
  for (const auto& [v, value] : s0_bits) {
    s0_ = mgr_.ite(mgr_.var(v), value ? s0_ : kFalse, value ? kFalse : s0_);
  }
  compiled_ = true;
}

void SymbolicStg::collect_roots(std::vector<NodeId*>* roots) {
  roots->push_back(&s0_);
  roots->push_back(&place_cube_);
  for (Part& part : parts_) {
    roots->push_back(&part.rel);
    roots->push_back(&part.cube);
    roots->push_back(&part.pre);
  }
  if (reached_) roots->push_back(&r_);
}

NodeId SymbolicStg::reachable() {
  if (reached_) return r_;
  obs::Span span("bdd.reach", stg_.name());
  const Manager::Stats before = mgr_.stats();
  compile();
  gc_trigger_ = opts_.gc_node_threshold;

  NodeId r = s0_;
  NodeId frontier = s0_;
  std::size_t iter = 0;
  while (frontier != kFalse) {
    obs::Span img("bdd.image");
    ++iter;
    if (opts_.max_iterations != 0 && iter > opts_.max_iterations) {
      throw util::LimitError("bdd: symbolic reachability of '" + stg_.name() + "' exceeded " +
                             std::to_string(opts_.max_iterations) + " image iterations");
    }
    NodeId next = kFalse;
    for (const Part& part : parts_) {
      // Img_t(frontier) = rename(∃ touched. frontier ∧ T_t): the relational
      // product quantifies the touched current variables on the fly, the
      // rename maps the touched next variables back to current; untouched
      // bits pass through unframed.
      next = mgr_.bdd_or(
          next, mgr_.rename_shift_down(mgr_.and_exists(frontier, part.rel, part.cube)));
    }
    frontier = mgr_.bdd_and(next, mgr_.bdd_not(r));
    r = mgr_.bdd_or(r, frontier);
    img.arg("iteration", static_cast<std::int64_t>(iter));
    img.arg("nodes", static_cast<std::int64_t>(mgr_.num_nodes()));

    if (gc_trigger_ != 0 && mgr_.num_nodes() > gc_trigger_) {
      std::vector<NodeId*> roots{&r, &frontier, &next};
      collect_roots(&roots);
      mgr_.gc(roots);
      // Re-arm above the live size so a dense reached set cannot thrash GC.
      gc_trigger_ = std::max(opts_.gc_node_threshold, 2 * mgr_.num_nodes());
    }
  }
  iterations_ = iter;
  check_safety_and_consistency(r);
  r_ = r;
  reached_ = true;

  const Manager::Stats after = mgr_.stats();
  span.arg("iterations", static_cast<std::int64_t>(iter));
  span.arg("nodes", static_cast<std::int64_t>(mgr_.num_nodes()));
  span.arg("unique_size", static_cast<std::int64_t>(mgr_.unique_size()));
  span.arg("gc_runs", static_cast<std::int64_t>(after.gc_runs - before.gc_runs));
  obs::counter_add("bdd.nodes", static_cast<std::int64_t>(mgr_.num_nodes()));
  obs::counter_add("bdd.unique_size", static_cast<std::int64_t>(mgr_.unique_size()));
  obs::counter_add("bdd.cache_hits",
                   static_cast<std::int64_t>(after.cache_hits - before.cache_hits));
  obs::counter_add("bdd.cache_misses",
                   static_cast<std::int64_t>(after.cache_misses - before.cache_misses));
  obs::counter_add("bdd.gc_collections",
                   static_cast<std::int64_t>(after.gc_runs - before.gc_runs));
  return r_;
}

/// The explicit builder rejects unsafe nets and inconsistent codings while
/// enumerating; symbolically both show up as non-empty intersections with
/// the reached set.  Contact: some reachable state marking-enables t while
/// a fresh output place already holds a token.  Inconsistency: some
/// reachable state marking-enables a rise (fall) of a signal that is
/// already 1 (0) — the relation blocks the firing, so without this check
/// the engine would silently under-approximate instead of failing loudly.
void SymbolicStg::check_safety_and_consistency(NodeId r) {
  const petri::Net& net = stg_.net();
  for (const Part& part : parts_) {
    const NodeId enabled = mgr_.bdd_and(r, part.pre);
    if (enabled == kFalse) continue;
    const auto& pre = net.trans_pre(part.trans);
    for (const petri::PlaceId p : net.trans_post(part.trans)) {
      if (std::find(pre.begin(), pre.end(), p) != pre.end()) continue;
      if (mgr_.bdd_and(enabled, mgr_.var(place_var(p))) != kFalse) {
        throw util::SemanticsError("STG '" + stg_.name() +
                                   "' is not safe (a place holds >1 token)");
      }
    }
    const stg::Label& l = stg_.label(part.trans);
    if (l.is_silent() || bit_pos_signal_[l.sig] == kNoPos) continue;
    if (l.pol != stg::Polarity::Rise && l.pol != stg::Polarity::Fall) continue;
    const std::uint32_t u = signal_var(l.sig);
    const NodeId wrong = l.pol == stg::Polarity::Rise ? mgr_.var(u) : mgr_.nvar(u);
    if (mgr_.bdd_and(enabled, wrong) != kFalse) {
      throw util::SemanticsError("STG '" + stg_.name() +
                                 "' has no consistent state assignment for signal " +
                                 stg_.signal_name(l.sig));
    }
  }
}

double SymbolicStg::count_states(NodeId f) {
  // sat_count restricted to the current (even) variables: positions are
  // var/2 and the total width is num_bits_.  The reached set never mentions
  // next variables, asserted below.
  const auto nbits = static_cast<std::uint32_t>(num_bits_);
  std::unordered_map<NodeId, double> memo;
  auto pos_of = [&](NodeId x) -> std::uint32_t {
    return x <= kTrue ? nbits : mgr_.node(x).var / 2;
  };
  auto count = [&](auto&& self, NodeId x) -> double {
    if (x == kFalse) return 0.0;
    if (x == kTrue) return 1.0;
    if (const auto it = memo.find(x); it != memo.end()) return it->second;
    const Manager::Node& n = mgr_.node(x);
    MPS_ASSERT((n.var & 1u) == 0);
    const std::uint32_t p = n.var / 2;
    const double total =
        self(self, n.low) * std::pow(2.0, static_cast<double>(pos_of(n.low) - p - 1)) +
        self(self, n.high) * std::pow(2.0, static_cast<double>(pos_of(n.high) - p - 1));
    memo.emplace(x, total);
    return total;
  };
  return count(count, f) * std::pow(2.0, static_cast<double>(pos_of(f)));
}

double SymbolicStg::num_states() { return count_states(reachable()); }

NodeId SymbolicStg::code_chi() { return mgr_.exists_cube(reachable(), place_cube_); }

bool SymbolicStg::code_reachable(const util::BitVec& code) {
  const NodeId chi = code_chi();
  util::BitVec assignment(mgr_.num_vars());
  std::size_t dense = 0;
  for (stg::SignalId s = 0; s < stg_.num_signals(); ++s) {
    if (bit_pos_signal_[s] == kNoPos) continue;
    MPS_ASSERT(dense < code.size());
    assignment.set(signal_var(s), code.test(dense++));
  }
  MPS_ASSERT(dense == code.size());
  return mgr_.eval(chi, assignment);
}

CscVerdict SymbolicStg::check_csc() {
  const NodeId r = reachable();
  obs::Span span("bdd.csc", stg_.name());
  CscVerdict verdict;
  for (stg::SignalId u = 0; u < stg_.num_signals(); ++u) {
    if (!stg_.is_non_input(u) || bit_pos_signal_[u] == kNoPos) continue;
    NodeId rise_en = kFalse, fall_en = kFalse, toggle_en = kFalse;
    for (const petri::TransId t : stg_.transitions_of(u)) {
      switch (stg_.label(t).pol) {
        case stg::Polarity::Rise:
          rise_en = mgr_.bdd_or(rise_en, parts_[t].pre);
          break;
        case stg::Polarity::Fall:
          fall_en = mgr_.bdd_or(fall_en, parts_[t].pre);
          break;
        case stg::Polarity::Toggle:
          toggle_en = mgr_.bdd_or(toggle_en, parts_[t].pre);
          break;
        case stg::Polarity::Silent:
          break;
      }
    }
    const NodeId uv = mgr_.var(signal_var(u));
    const NodeId nuv = mgr_.bdd_not(uv);
    // Excited-to-rise/fall; a toggle's direction is the current value's
    // complement, matching how the explicit builder resolves '~' edges.
    const NodeId rise = mgr_.bdd_or(rise_en, mgr_.bdd_and(nuv, toggle_en));
    const NodeId fall = mgr_.bdd_or(fall_en, mgr_.bdd_and(uv, toggle_en));
    // Implied next value (logic::implied_value): 1 while at 1 and not
    // excited to fall, or at 0 and excited to rise.
    const NodeId implied =
        mgr_.bdd_or(mgr_.bdd_and(uv, mgr_.bdd_not(fall)), mgr_.bdd_and(nuv, rise));
    // Project the ON/OFF state sets onto the code space; CSC for u holds
    // iff no code appears on both sides.
    const NodeId on = mgr_.and_exists(r, implied, place_cube_);
    const NodeId off = mgr_.and_exists(r, mgr_.bdd_not(implied), place_cube_);
    if (mgr_.bdd_and(on, off) != kFalse) {
      verdict.holds = false;
      verdict.conflicts.push_back(u);
    }
  }
  span.arg("conflicts", static_cast<std::int64_t>(verdict.conflicts.size()));
  return verdict;
}

}  // namespace mps::bdd

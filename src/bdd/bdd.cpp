#include "bdd/bdd.hpp"

#include <algorithm>
#include <cmath>

#include "util/common.hpp"

namespace mps::bdd {

namespace {
constexpr std::uint32_t kTerminalVar = 0xFFFFFFFFu;
}

Manager::Manager(std::size_t num_vars) : num_vars_(num_vars) {
  nodes_.push_back({kTerminalVar, kFalse, kFalse});  // 0 = false
  nodes_.push_back({kTerminalVar, kTrue, kTrue});    // 1 = true
}

NodeId Manager::make(std::uint32_t v, NodeId low, NodeId high) {
  if (low == high) return low;  // reduction rule
  const Key key{v, low, high};
  if (const auto it = unique_.find(key); it != unique_.end()) return it->second;
  if (max_nodes_ != 0 && nodes_.size() >= max_nodes_) {
    throw util::LimitError("bdd: node budget exceeded (" + std::to_string(max_nodes_) +
                           " nodes)");
  }
  nodes_.push_back({v, low, high});
  const NodeId id = static_cast<NodeId>(nodes_.size() - 1);
  unique_.emplace(key, id);
  return id;
}

void Manager::tick_op() {
  ++stats_.ops;
  if (max_ops_ != 0 && stats_.ops > max_ops_) {
    throw util::LimitError("bdd: operation budget exceeded (" + std::to_string(max_ops_) +
                           " steps)");
  }
}

NodeId Manager::var(std::uint32_t v) {
  MPS_ASSERT(v < num_vars_);
  return make(v, kFalse, kTrue);
}

NodeId Manager::nvar(std::uint32_t v) {
  MPS_ASSERT(v < num_vars_);
  return make(v, kTrue, kFalse);
}

NodeId Manager::top_var(NodeId f, NodeId g, NodeId h) const {
  std::uint32_t top = kTerminalVar;
  for (const NodeId x : {f, g, h}) {
    if (x > kTrue) top = std::min(top, nodes_[x].var);
  }
  return top;
}

NodeId Manager::ite(NodeId f, NodeId g, NodeId h) {
  // Terminal cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;

  const IteKey key{f, g, h};
  if (const auto it = ite_cache_.find(key); it != ite_cache_.end()) {
    ++stats_.cache_hits;
    return it->second;
  }
  ++stats_.cache_misses;
  tick_op();

  const std::uint32_t v = top_var(f, g, h);
  auto cof = [&](NodeId x, bool value) -> NodeId {
    if (x <= kTrue || nodes_[x].var != v) return x;
    return value ? nodes_[x].high : nodes_[x].low;
  };
  const NodeId low = ite(cof(f, false), cof(g, false), cof(h, false));
  const NodeId high = ite(cof(f, true), cof(g, true), cof(h, true));
  const NodeId result = make(v, low, high);
  ite_cache_.emplace(key, result);
  return result;
}

NodeId Manager::restrict(NodeId f, std::uint32_t v, bool value) {
  if (f <= kTrue) return f;
  const Node n = nodes_[f];
  if (n.var > v && n.var != kTerminalVar) return f;   // ordered: v not in support
  if (n.var == v) return value ? n.high : n.low;
  const OpKey key{(value ? kOpRestrict1 : kOpRestrict0) + 8 * v, f, 0, 0};
  if (const auto it = op_cache_.find(key); it != op_cache_.end()) {
    ++stats_.cache_hits;
    return it->second;
  }
  ++stats_.cache_misses;
  tick_op();
  const NodeId low = restrict(n.low, v, value);
  const NodeId high = restrict(n.high, v, value);
  const NodeId result = make(n.var, low, high);
  op_cache_.emplace(key, result);
  return result;
}

NodeId Manager::restrict_nomemo(NodeId f, std::uint32_t v, bool value) {
  if (f <= kTrue) return f;
  const Node n = nodes_[f];
  if (n.var > v && n.var != kTerminalVar) return f;
  if (n.var == v) return value ? n.high : n.low;
  const NodeId low = restrict_nomemo(n.low, v, value);
  const NodeId high = restrict_nomemo(n.high, v, value);
  return make(n.var, low, high);
}

NodeId Manager::exists(NodeId f, std::uint32_t v) {
  return bdd_or(restrict(f, v, false), restrict(f, v, true));
}

NodeId Manager::forall(NodeId f, std::uint32_t v) {
  return bdd_and(restrict(f, v, false), restrict(f, v, true));
}

NodeId Manager::cube(const std::vector<std::uint32_t>& vars) {
  // Built bottom-up so the cube is linear no matter the input order.
  std::vector<std::uint32_t> sorted = vars;
  std::sort(sorted.begin(), sorted.end());
  NodeId c = kTrue;
  for (std::size_t i = sorted.size(); i-- > 0;) {
    MPS_ASSERT(sorted[i] < num_vars_);
    MPS_ASSERT(i == 0 || sorted[i - 1] != sorted[i]);
    c = make(sorted[i], kFalse, c);
  }
  return c;
}

NodeId Manager::exists_cube(NodeId f, NodeId cube) {
  if (f <= kTrue || cube == kTrue) return f;
  MPS_ASSERT(cube != kFalse);
  const Node n = nodes_[f];
  // Skip quantified variables above f's support: ∃x. f = f when x ∉ support.
  while (cube > kTrue && nodes_[cube].var < n.var) cube = nodes_[cube].high;
  if (cube == kTrue) return f;
  const OpKey key{kOpExists, f, cube, 0};
  if (const auto it = op_cache_.find(key); it != op_cache_.end()) {
    ++stats_.cache_hits;
    return it->second;
  }
  ++stats_.cache_misses;
  tick_op();
  NodeId result;
  if (nodes_[cube].var == n.var) {
    const NodeId rest = nodes_[cube].high;
    const NodeId low = exists_cube(n.low, rest);
    // ∨-cutoff: once one cofactor quantifies to ⊤ the disjunction is ⊤.
    result = low == kTrue ? kTrue : bdd_or(low, exists_cube(n.high, rest));
  } else {
    result = make(n.var, exists_cube(n.low, cube), exists_cube(n.high, cube));
  }
  op_cache_.emplace(key, result);
  return result;
}

NodeId Manager::and_exists(NodeId f, NodeId g, NodeId cube) {
  if (f == kFalse || g == kFalse) return kFalse;
  if (f == kTrue && g == kTrue) return kTrue;
  if (cube == kTrue) return bdd_and(f, g);
  if (f == kTrue) return exists_cube(g, cube);
  if (g == kTrue) return exists_cube(f, cube);
  if (f == g) return exists_cube(f, cube);

  const std::uint32_t v = std::min(nodes_[f].var, nodes_[g].var);
  while (cube > kTrue && nodes_[cube].var < v) cube = nodes_[cube].high;
  if (cube == kTrue) return bdd_and(f, g);

  // The cache key orders the unordered pair {f, g} (∧ is commutative).
  const OpKey key{kOpAndExists, std::min(f, g), std::max(f, g), cube};
  if (const auto it = op_cache_.find(key); it != op_cache_.end()) {
    ++stats_.cache_hits;
    return it->second;
  }
  ++stats_.cache_misses;
  tick_op();

  auto cof = [&](NodeId x, bool value) -> NodeId {
    if (x <= kTrue || nodes_[x].var != v) return x;
    return value ? nodes_[x].high : nodes_[x].low;
  };
  NodeId result;
  if (nodes_[cube].var == v) {
    const NodeId rest = nodes_[cube].high;
    const NodeId low = and_exists(cof(f, false), cof(g, false), rest);
    // ∨-cutoff as in exists_cube.
    result = low == kTrue ? kTrue : bdd_or(low, and_exists(cof(f, true), cof(g, true), rest));
  } else {
    result = make(v, and_exists(cof(f, false), cof(g, false), cube),
                  and_exists(cof(f, true), cof(g, true), cube));
  }
  op_cache_.emplace(key, result);
  return result;
}

NodeId Manager::rename_shift_down(NodeId f) {
  if (f <= kTrue) return f;
  const OpKey key{kOpRename, f, 0, 0};
  if (const auto it = op_cache_.find(key); it != op_cache_.end()) {
    ++stats_.cache_hits;
    return it->second;
  }
  ++stats_.cache_misses;
  tick_op();
  const Node n = nodes_[f];
  const std::uint32_t v = (n.var & 1u) ? n.var - 1 : n.var;
  const NodeId low = rename_shift_down(n.low);
  const NodeId high = rename_shift_down(n.high);
  // The substitution is only order-preserving when the renamed children
  // still sit strictly below v — i.e. 2i and 2i+1 never co-occur on a path.
  MPS_ASSERT(low <= kTrue || nodes_[low].var > v);
  MPS_ASSERT(high <= kTrue || nodes_[high].var > v);
  const NodeId result = make(v, low, high);
  op_cache_.emplace(key, result);
  return result;
}

std::size_t Manager::gc(const std::vector<NodeId*>& roots) {
  std::vector<char> mark(nodes_.size(), 0);
  mark[kFalse] = mark[kTrue] = 1;
  std::vector<NodeId> stack;
  for (const NodeId* r : roots) {
    MPS_ASSERT(*r < nodes_.size());
    stack.push_back(*r);
  }
  while (!stack.empty()) {
    const NodeId x = stack.back();
    stack.pop_back();
    if (mark[x]) continue;
    mark[x] = 1;
    stack.push_back(nodes_[x].low);
    stack.push_back(nodes_[x].high);
  }

  // Compact in index order: make() only ever references already-existing
  // children, so children keep smaller ids than their parents.
  std::vector<NodeId> remap(nodes_.size(), kFalse);
  std::vector<Node> kept;
  kept.reserve(nodes_.size());
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (!mark[id]) continue;
    remap[id] = static_cast<NodeId>(kept.size());
    Node n = nodes_[id];
    if (n.var != kTerminalVar) {
      n.low = remap[n.low];
      n.high = remap[n.high];
    }
    kept.push_back(n);
  }
  const std::size_t collected = nodes_.size() - kept.size();
  nodes_ = std::move(kept);

  unique_.clear();
  for (NodeId id = 2; id < nodes_.size(); ++id) {
    unique_.emplace(Key{nodes_[id].var, nodes_[id].low, nodes_[id].high}, id);
  }
  // Every cached result may reference a freed or renumbered node: drop all.
  ite_cache_.clear();
  op_cache_.clear();

  for (NodeId* r : roots) *r = remap[*r];
  ++stats_.gc_runs;
  stats_.nodes_collected += collected;
  return collected;
}

bool Manager::eval(NodeId f, const util::BitVec& assignment) const {
  MPS_ASSERT(assignment.size() >= num_vars_);
  while (f > kTrue) {
    const Node& n = nodes_[f];
    f = assignment.test(n.var) ? n.high : n.low;
  }
  return f == kTrue;
}

double Manager::sat_count(NodeId f) const {
  // Memoized count of assignments below each node, scaled by skipped vars.
  std::unordered_map<NodeId, double> memo;
  auto count = [&](auto&& self, NodeId x) -> double {
    if (x == kFalse) return 0.0;
    if (x == kTrue) return 1.0;
    if (const auto it = memo.find(x); it != memo.end()) return it->second;
    const Node& n = nodes_[x];
    auto weight = [&](NodeId child) {
      const std::uint32_t child_var =
          child <= kTrue ? static_cast<std::uint32_t>(num_vars_) : nodes_[child].var;
      return std::pow(2.0, static_cast<double>(child_var - n.var - 1));
    };
    const double total = self(self, n.low) * weight(n.low) + self(self, n.high) * weight(n.high);
    memo.emplace(x, total);
    return total;
  };
  const std::uint32_t top = f <= kTrue ? static_cast<std::uint32_t>(num_vars_) : nodes_[f].var;
  return count(count, f) * std::pow(2.0, static_cast<double>(top));
}

bool Manager::pick_model(NodeId f, util::BitVec* out) const {
  if (f == kFalse) return false;
  util::BitVec model(num_vars_);
  while (f > kTrue) {
    const Node& n = nodes_[f];
    if (n.high != kFalse) {
      model.set(n.var);
      f = n.high;
    } else {
      f = n.low;
    }
  }
  *out = std::move(model);
  return true;
}

NodeId Manager::from_cover(const logic::Cover& cover) {
  MPS_ASSERT(cover.num_vars() == num_vars_);
  NodeId sum = kFalse;
  for (const logic::Cube& cube : cover.cubes()) {
    NodeId product = kTrue;
    // Build bottom-up (highest variable first) to keep intermediate sizes small.
    for (std::size_t v = num_vars_; v-- > 0;) {
      const auto lit = cube.literal(v);
      if (!lit.has_value()) continue;
      product = ite(var(static_cast<std::uint32_t>(v)), *lit ? product : kFalse,
                    *lit ? kFalse : product);
    }
    sum = bdd_or(sum, product);
  }
  return sum;
}

NodeId Manager::from_minterms(const std::vector<util::BitVec>& codes) {
  NodeId sum = kFalse;
  for (const auto& code : codes) {
    MPS_ASSERT(code.size() == num_vars_);
    NodeId product = kTrue;
    for (std::size_t v = num_vars_; v-- > 0;) {
      product = ite(var(static_cast<std::uint32_t>(v)), code.test(v) ? product : kFalse,
                    code.test(v) ? kFalse : product);
    }
    sum = bdd_or(sum, product);
  }
  return sum;
}

}  // namespace mps::bdd

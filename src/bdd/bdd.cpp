#include "bdd/bdd.hpp"

#include <algorithm>
#include <cmath>

#include "util/common.hpp"

namespace mps::bdd {

namespace {
constexpr std::uint32_t kTerminalVar = 0xFFFFFFFFu;
}

Manager::Manager(std::size_t num_vars) : num_vars_(num_vars) {
  nodes_.push_back({kTerminalVar, kFalse, kFalse});  // 0 = false
  nodes_.push_back({kTerminalVar, kTrue, kTrue});    // 1 = true
}

NodeId Manager::make(std::uint32_t v, NodeId low, NodeId high) {
  if (low == high) return low;  // reduction rule
  const Key key{v, low, high};
  if (const auto it = unique_.find(key); it != unique_.end()) return it->second;
  nodes_.push_back({v, low, high});
  const NodeId id = static_cast<NodeId>(nodes_.size() - 1);
  unique_.emplace(key, id);
  return id;
}

NodeId Manager::var(std::uint32_t v) {
  MPS_ASSERT(v < num_vars_);
  return make(v, kFalse, kTrue);
}

NodeId Manager::nvar(std::uint32_t v) {
  MPS_ASSERT(v < num_vars_);
  return make(v, kTrue, kFalse);
}

NodeId Manager::top_var(NodeId f, NodeId g, NodeId h) const {
  std::uint32_t top = kTerminalVar;
  for (const NodeId x : {f, g, h}) {
    if (x > kTrue) top = std::min(top, nodes_[x].var);
  }
  return top;
}

NodeId Manager::ite(NodeId f, NodeId g, NodeId h) {
  // Terminal cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;

  const IteKey key{f, g, h};
  if (const auto it = ite_cache_.find(key); it != ite_cache_.end()) return it->second;

  const std::uint32_t v = top_var(f, g, h);
  auto cof = [&](NodeId x, bool value) -> NodeId {
    if (x <= kTrue || nodes_[x].var != v) return x;
    return value ? nodes_[x].high : nodes_[x].low;
  };
  const NodeId low = ite(cof(f, false), cof(g, false), cof(h, false));
  const NodeId high = ite(cof(f, true), cof(g, true), cof(h, true));
  const NodeId result = make(v, low, high);
  ite_cache_.emplace(key, result);
  return result;
}

NodeId Manager::restrict(NodeId f, std::uint32_t v, bool value) {
  if (f <= kTrue) return f;
  const Node n = nodes_[f];
  if (n.var > v && n.var != kTerminalVar) return f;   // ordered: v not in support
  if (n.var == v) return value ? n.high : n.low;
  const NodeId low = restrict(n.low, v, value);
  const NodeId high = restrict(n.high, v, value);
  return make(n.var, low, high);
}

NodeId Manager::exists(NodeId f, std::uint32_t v) {
  return bdd_or(restrict(f, v, false), restrict(f, v, true));
}

NodeId Manager::forall(NodeId f, std::uint32_t v) {
  return bdd_and(restrict(f, v, false), restrict(f, v, true));
}

bool Manager::eval(NodeId f, const util::BitVec& assignment) const {
  MPS_ASSERT(assignment.size() >= num_vars_);
  while (f > kTrue) {
    const Node& n = nodes_[f];
    f = assignment.test(n.var) ? n.high : n.low;
  }
  return f == kTrue;
}

double Manager::sat_count(NodeId f) const {
  // Memoized count of assignments below each node, scaled by skipped vars.
  std::unordered_map<NodeId, double> memo;
  auto count = [&](auto&& self, NodeId x) -> double {
    if (x == kFalse) return 0.0;
    if (x == kTrue) return 1.0;
    if (const auto it = memo.find(x); it != memo.end()) return it->second;
    const Node& n = nodes_[x];
    auto weight = [&](NodeId child) {
      const std::uint32_t child_var =
          child <= kTrue ? static_cast<std::uint32_t>(num_vars_) : nodes_[child].var;
      return std::pow(2.0, static_cast<double>(child_var - n.var - 1));
    };
    const double total = self(self, n.low) * weight(n.low) + self(self, n.high) * weight(n.high);
    memo.emplace(x, total);
    return total;
  };
  const std::uint32_t top = f <= kTrue ? static_cast<std::uint32_t>(num_vars_) : nodes_[f].var;
  return count(count, f) * std::pow(2.0, static_cast<double>(top));
}

bool Manager::pick_model(NodeId f, util::BitVec* out) const {
  if (f == kFalse) return false;
  util::BitVec model(num_vars_);
  while (f > kTrue) {
    const Node& n = nodes_[f];
    if (n.high != kFalse) {
      model.set(n.var);
      f = n.high;
    } else {
      f = n.low;
    }
  }
  *out = std::move(model);
  return true;
}

NodeId Manager::from_cover(const logic::Cover& cover) {
  MPS_ASSERT(cover.num_vars() == num_vars_);
  NodeId sum = kFalse;
  for (const logic::Cube& cube : cover.cubes()) {
    NodeId product = kTrue;
    // Build bottom-up (highest variable first) to keep intermediate sizes small.
    for (std::size_t v = num_vars_; v-- > 0;) {
      const auto lit = cube.literal(v);
      if (!lit.has_value()) continue;
      product = ite(var(static_cast<std::uint32_t>(v)), *lit ? product : kFalse,
                    *lit ? kFalse : product);
    }
    sum = bdd_or(sum, product);
  }
  return sum;
}

NodeId Manager::from_minterms(const std::vector<util::BitVec>& codes) {
  NodeId sum = kFalse;
  for (const auto& code : codes) {
    MPS_ASSERT(code.size() == num_vars_);
    NodeId product = kTrue;
    for (std::size_t v = num_vars_; v-- > 0;) {
      product = ite(var(static_cast<std::uint32_t>(v)), code.test(v) ? product : kFalse,
                    code.test(v) ? kFalse : product);
    }
    sum = bdd_or(sum, product);
  }
  return sum;
}

}  // namespace mps::bdd

#include "bdd/csc_bdd.hpp"

#include <algorithm>
#include <vector>

#include "logic/extract.hpp"
#include "util/common.hpp"

namespace mps::bdd {

bool cover_matches_spec(Manager& mgr, const logic::SopSpec& spec, const logic::Cover& cover) {
  MPS_ASSERT(mgr.num_vars() == spec.num_vars && cover.num_vars() == spec.num_vars);
  const NodeId f = mgr.from_cover(cover);
  const NodeId on = mgr.from_minterms(spec.on);
  const NodeId off = mgr.from_minterms(spec.off);
  // ON ⊆ f:  on ∧ ¬f = ⊥;   f ⊆ ¬OFF:  f ∧ off = ⊥.
  if (mgr.bdd_and(on, mgr.bdd_not(f)) != mgr.bdd_false()) return false;
  if (mgr.bdd_and(f, off) != mgr.bdd_false()) return false;
  return true;
}

std::optional<std::vector<bool>> solve_cnf_bdd(const sat::Cnf& cnf, std::size_t max_nodes) {
  Manager mgr(cnf.num_vars());
  mgr.set_max_nodes(max_nodes);
  NodeId f = mgr.bdd_true();
  // Conjoin clauses sorted by their maximum variable: keeps the live
  // frontier narrow under the natural (state-major) variable order the
  // CSC encoding uses.
  std::vector<std::uint32_t> order(cnf.num_clauses());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    sat::Var ma = 0;
    for (const sat::Lit l : cnf.clause(a)) ma = std::max(ma, l.var());
    sat::Var mb = 0;
    for (const sat::Lit l : cnf.clause(b)) mb = std::max(mb, l.var());
    return ma < mb;
  });
  for (const std::uint32_t ci : order) {
    NodeId clause = mgr.bdd_false();
    for (const sat::Lit l : cnf.clause(ci)) {
      clause = mgr.bdd_or(clause, l.negated() ? mgr.nvar(l.var()) : mgr.var(l.var()));
    }
    f = mgr.bdd_and(f, clause);
    if (f == mgr.bdd_false()) return std::nullopt;
  }
  util::BitVec model;
  if (!mgr.pick_model(f, &model)) return std::nullopt;
  std::vector<bool> out(cnf.num_vars(), false);
  for (std::size_t v = 0; v < cnf.num_vars(); ++v) out[v] = model.test(v);
  MPS_ASSERT(cnf.satisfied_by(out));
  return out;
}

}  // namespace mps::bdd

// BDD-based CSC machinery — the paper's reference [19] extension ("A
// Divide and Conquer Approach for Asynchronous Interface Synthesis",
// IHLS'94): characteristic-function formulations of the CSC check and a
// BDD cross-check of extracted covers.
#pragma once

#include <optional>
#include <vector>

#include "bdd/bdd.hpp"
#include "logic/minimize.hpp"
#include "sat/cnf.hpp"
#include "sg/state_graph.hpp"

namespace mps::bdd {

// The enumeration-backed reachable_chi / csc_holds helpers that used to
// live here (building characteristic functions *from* an explicit state
// graph) are gone: SymbolicStg (symbolic.hpp) computes both directly from
// the STG without ever enumerating states.

/// Exact equivalence of a minimized cover against its ON/OFF specification
/// modulo don't-cares:  ON ⊆ cover ⊆ ¬OFF.
bool cover_matches_spec(Manager& mgr, const logic::SopSpec& spec, const logic::Cover& cover);

/// BDD-based constraint satisfaction (the core of ref. [19]'s divide and
/// conquer): conjoin the clauses of a CNF into a characteristic function
/// and extract a model.  Returns nullopt if the formula is unsatisfiable;
/// throws util::LimitError if the intermediate BDD exceeds `max_nodes`
/// (callers fall back to the DPLL solver).
std::optional<std::vector<bool>> solve_cnf_bdd(const sat::Cnf& cnf,
                                               std::size_t max_nodes = 2'000'000);

}  // namespace mps::bdd

// CNF formula representation shared by the DPLL solver, the local-search
// solver and the CSC encoder.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace mps::sat {

using Var = std::uint32_t;
inline constexpr Var kNoVar = 0xFFFFFFFFu;

/// A literal: variable + sign, packed MiniSat-style (2*var + negated).
struct Lit {
  std::uint32_t x = 0xFFFFFFFFu;

  static Lit make(Var v, bool negated = false) { return Lit{(v << 1) | (negated ? 1u : 0u)}; }
  Var var() const { return x >> 1; }
  bool negated() const { return (x & 1) != 0; }
  Lit operator~() const { return Lit{x ^ 1u}; }
  bool operator==(const Lit&) const = default;
  bool valid() const { return x != 0xFFFFFFFFu; }
};

/// Positive literal of v.
inline Lit pos(Var v) { return Lit::make(v, false); }
/// Negative literal of v.
inline Lit neg(Var v) { return Lit::make(v, true); }

/// A (partial or total) assignment: per-variable truth value.
using Model = std::vector<bool>;

class Cnf {
 public:
  Var new_var() { return num_vars_++; }
  /// Reserve `n` fresh variables; returns the first.
  Var new_vars(std::size_t n) {
    const Var first = num_vars_;
    num_vars_ += static_cast<Var>(n);
    return first;
  }

  void add_clause(std::vector<Lit> lits);
  void add_clause(std::initializer_list<Lit> lits) { add_clause(std::vector<Lit>(lits)); }
  /// Convenience: unit clause.
  void add_unit(Lit l) { add_clause({l}); }
  /// Convenience: binary implication a -> b, i.e. clause (~a ∨ b).
  void add_implies(Lit a, Lit b) { add_clause({~a, b}); }

  std::size_t num_vars() const { return num_vars_; }
  std::size_t num_clauses() const { return clauses_.size(); }
  std::size_t num_literals() const { return num_literals_; }
  const std::vector<Lit>& clause(std::size_t i) const { return clauses_[i]; }
  const std::vector<std::vector<Lit>>& clauses() const { return clauses_; }

  /// True if `m` (size >= num_vars) satisfies every clause.
  bool satisfied_by(const Model& m) const;

 private:
  Var num_vars_ = 0;
  std::vector<std::vector<Lit>> clauses_;
  std::size_t num_literals_ = 0;
};

}  // namespace mps::sat

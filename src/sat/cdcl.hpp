// Internal entry point of the CDCL engine (sat/cdcl.cpp); callers go
// through Solver::solve with SolveOptions::engine = Engine::Cdcl, which
// dispatches here and owns the obs span / model check.
#pragma once

#include "sat/solver.hpp"

namespace mps::sat {

Outcome solve_cdcl(const Cnf& cnf, Model* model, SolveStats* stats, const SolveOptions& opts);

}  // namespace mps::sat

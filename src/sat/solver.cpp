#include "sat/solver.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/common.hpp"

namespace mps::sat {

namespace {

constexpr std::int8_t kUnassigned = -1;

/// Internal solver state for one solve() call.
class Dpll {
 public:
  Dpll(const Cnf& cnf, const SolveOptions& opts) : cnf_(cnf), opts_(opts) {
    const std::size_t n = cnf.num_vars();
    assign_.assign(n, kUnassigned);
    watches_.assign(2 * n, {});
    score_.assign(n, 0.0);
    activity_.assign(n, 0.0);
    rng_ = util::Rng(opts.seed);

    // Copy clauses, set up watches; unit clauses go straight on the trail.
    for (const auto& clause : cnf.clauses()) {
      if (clause.empty()) {
        trivially_unsat_ = true;
        return;
      }
      if (clause.size() == 1) {
        if (!enqueue(clause[0])) {
          trivially_unsat_ = true;
          return;
        }
        continue;
      }
      clauses_.push_back(clause);
      const std::uint32_t ci = static_cast<std::uint32_t>(clauses_.size() - 1);
      watches_[clause[0].x].push_back(ci);
      watches_[clause[1].x].push_back(ci);
      // Static branching score: short clauses weigh more (Jeroslow-Wang).
      const double w = std::pow(2.0, -static_cast<double>(clause.size()));
      for (const Lit l : clause) score_[l.var()] += w;
    }
  }

  Outcome run(Model* model, SolveStats* stats) {
    util::Timer timer;
    Outcome outcome = trivially_unsat_ ? Outcome::Unsat : search(timer);
    if (outcome == Outcome::Sat && model != nullptr) {
      model->assign(cnf_.num_vars(), false);
      for (Var v = 0; v < cnf_.num_vars(); ++v) (*model)[v] = assign_[v] == 1;
    }
    if (stats != nullptr) {
      stats->decisions = decisions_;
      stats->backtracks = backtracks_;
      stats->propagations = propagations_;
      stats->restarts = restarts_;
      stats->seconds = timer.seconds();
    }
    return outcome;
  }

 private:
  bool value_true(Lit l) const { return assign_[l.var()] == (l.negated() ? 0 : 1); }
  bool value_false(Lit l) const { return assign_[l.var()] == (l.negated() ? 1 : 0); }
  bool unassigned(Lit l) const { return assign_[l.var()] == kUnassigned; }

  /// Put `l` on the trail; false if it contradicts the current assignment.
  bool enqueue(Lit l) {
    if (value_false(l)) return false;
    if (value_true(l)) return true;
    assign_[l.var()] = l.negated() ? 0 : 1;
    trail_.push_back(l);
    return true;
  }

  /// Two-watched-literal unit propagation.  Returns false on conflict and
  /// records the conflicting clause for activity bumping.
  bool propagate() {
    while (qhead_ < trail_.size()) {
      const Lit p = trail_[qhead_++];
      ++propagations_;
      // Clauses watching ~p must find a new watch or become unit/conflict.
      const Lit false_lit = ~p;
      auto& watch_list = watches_[false_lit.x];
      std::size_t keep = 0;
      bool conflict = false;
      for (std::size_t wi = 0; wi < watch_list.size(); ++wi) {
        const std::uint32_t ci = watch_list[wi];
        if (conflict) {
          watch_list[keep++] = ci;
          continue;
        }
        auto& clause = clauses_[ci];
        // Ensure the false literal is at position 1.
        if (clause[0] == false_lit) std::swap(clause[0], clause[1]);
        if (value_true(clause[0])) {
          watch_list[keep++] = ci;  // already satisfied
          continue;
        }
        // Look for a replacement watch.
        bool moved = false;
        for (std::size_t k = 2; k < clause.size(); ++k) {
          if (!value_false(clause[k])) {
            std::swap(clause[1], clause[k]);
            watches_[clause[1].x].push_back(ci);
            moved = true;
            break;
          }
        }
        if (moved) continue;  // watch moved away, drop from this list
        // Clause is unit (or conflicting) on clause[0].
        watch_list[keep++] = ci;
        if (!enqueue(clause[0])) {
          conflict = true;
          conflict_clause_ = ci;
        }
      }
      watch_list.resize(keep);
      if (conflict) return false;
    }
    return true;
  }

  /// Undo the trail down to `target` length.
  void undo_to(std::size_t target) {
    while (trail_.size() > target) {
      assign_[trail_.back().var()] = kUnassigned;
      trail_.pop_back();
    }
    qhead_ = trail_.size();
  }

  /// Branch phase for `v`: always FALSE first.  CSC-encoding variables at
  /// 0 mean state-signal value Zero, so solutions keep minimal excitation
  /// regions (fewest state splits on expansion); a Jeroslow-Wang polarity
  /// hint was tried here and made downstream synthesis results worse.
  Lit phased(Var v) const { return Lit::make(v, true); }

  Lit pick_branch() {
    // Occasional random decisions diversify the search across restarts.
    if (rng_.chance(0.02)) {
      std::size_t unassigned = 0;
      for (Var v = 0; v < cnf_.num_vars(); ++v) unassigned += assign_[v] == kUnassigned;
      if (unassigned > 0) {
        std::uint64_t pick = rng_.below(unassigned);
        for (Var v = 0; v < cnf_.num_vars(); ++v) {
          if (assign_[v] == kUnassigned && pick-- == 0) return phased(v);
        }
      }
    }
    Var best = kNoVar;
    double best_score = -1.0;
    for (Var v = 0; v < cnf_.num_vars(); ++v) {
      if (assign_[v] == kUnassigned && score_[v] + activity_[v] > best_score) {
        best = v;
        best_score = score_[v] + activity_[v];
      }
    }
    if (best == kNoVar) return Lit{};
    return phased(best);
  }

  /// Conflict-driven activity (VSIDS-style bump/decay) — adaptive
  /// branching without clause learning, in the branch-and-bound spirit of
  /// the original SIS solver.
  void bump_conflict_activity() {
    if (conflict_clause_ == kNoClause) return;
    for (const Lit l : clauses_[conflict_clause_]) {
      activity_[l.var()] += activity_inc_;
    }
    activity_inc_ *= 1.05;
    if (activity_inc_ > 1e100) {
      for (auto& a : activity_) a *= 1e-100;
      activity_inc_ *= 1e-100;
    }
  }

  /// External stop conditions (interrupt token, relative time limit, shared
  /// deadline).  Cheap enough for periodic checks; not for every decision.
  bool should_stop(const util::Timer& timer) const {
    if (opts_.interrupt != nullptr && opts_.interrupt->load(std::memory_order_relaxed)) {
      return true;
    }
    if (opts_.time_limit_s > 0 && timer.seconds() > opts_.time_limit_s) return true;
    if (opts_.deadline != std::chrono::steady_clock::time_point{} &&
        std::chrono::steady_clock::now() > opts_.deadline) {
      return true;
    }
    return false;
  }

  Outcome search(const util::Timer& timer) {
    struct Decision {
      Lit lit;
      std::size_t trail_size;  // trail length *before* the decision
      bool flipped;
    };
    std::vector<Decision> decisions;
    const std::size_t root_trail = trail_.size();  // units assigned up front
    std::int64_t restart_budget = opts_.restart_interval;
    std::int64_t backtracks_since_restart = 0;

    for (;;) {
      if (!propagate()) {
        ++backtracks_;
        ++backtracks_since_restart;
        bump_conflict_activity();
        if (opts_.max_backtracks >= 0 && backtracks_ > opts_.max_backtracks) {
          return Outcome::Limit;
        }
        if ((backtracks_ & 255) == 0 && should_stop(timer)) return Outcome::Limit;
        if (opts_.restart_interval > 0 && backtracks_since_restart >= restart_budget) {
          // Geometric restart: forget decisions, keep activities.
          decisions.clear();
          undo_to(root_trail);
          restart_budget *= 2;
          backtracks_since_restart = 0;
          ++restarts_;
          continue;
        }
        // Backtrack to the deepest unflipped decision and flip it.
        for (;;) {
          if (decisions.empty()) return Outcome::Unsat;
          Decision d = decisions.back();
          decisions.pop_back();
          undo_to(d.trail_size);
          if (!d.flipped) {
            decisions.push_back({~d.lit, d.trail_size, true});
            const bool ok = enqueue(~d.lit);
            MPS_ASSERT(ok);
            break;
          }
        }
        continue;
      }
      // Conflicts are not the only progress marker: a propagation-heavy
      // instance can run for a long time with almost no backtracks, so the
      // stop conditions are also polled on a decision counter.
      if ((decisions_ & 127) == 0 && should_stop(timer)) return Outcome::Limit;
      const Lit branch = pick_branch();
      if (!branch.valid()) return Outcome::Sat;  // total assignment, all clauses satisfied
      ++decisions_;
      decisions.push_back({branch, trail_.size(), false});
      const bool ok = enqueue(branch);
      MPS_ASSERT(ok);
    }
  }

  const Cnf& cnf_;
  const SolveOptions& opts_;
  bool trivially_unsat_ = false;

  std::vector<std::vector<Lit>> clauses_;
  std::vector<std::vector<std::uint32_t>> watches_;  // indexed by Lit.x
  std::vector<std::int8_t> assign_;
  std::vector<Lit> trail_;
  std::size_t qhead_ = 0;
  std::vector<double> score_;
  std::vector<double> activity_;
  double activity_inc_ = 1.0;
  static constexpr std::uint32_t kNoClause = 0xFFFFFFFFu;
  std::uint32_t conflict_clause_ = kNoClause;
  util::Rng rng_;

  std::int64_t decisions_ = 0;
  std::int64_t backtracks_ = 0;
  std::int64_t propagations_ = 0;
  std::int64_t restarts_ = 0;
};

}  // namespace

Outcome Solver::solve(const Cnf& cnf, Model* model, SolveStats* stats, const SolveOptions& opts) {
  Dpll dpll(cnf, opts);
  const Outcome outcome = dpll.run(model, stats);
  if (outcome == Outcome::Sat && model != nullptr) {
    MPS_ASSERT(cnf.satisfied_by(*model));
  }
  return outcome;
}

}  // namespace mps::sat

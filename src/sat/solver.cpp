#include "sat/solver.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "obs/obs.hpp"
#include "sat/cdcl.hpp"
#include "sat/engine.hpp"
#include "util/common.hpp"

namespace mps::sat {

namespace {

/// Internal DPLL state for one solve() call.
///
/// Hot-path layout (DESIGN.md "Hot paths"):
///   * Clauses live in one contiguous Lit arena (`arena_`) addressed by
///     per-clause {offset, size} headers — no per-clause vector, no pointer
///     chasing, and the watch-move scan walks a flat buffer.
///   * Watch entries carry a blocker literal (MiniSat-style): a clause whose
///     cached blocker is true and still watched is kept without running the
///     normalize-and-scan protocol (the stricter still-watched condition is
///     what keeps the search path bit-identical to the reference solver).
///   * Branching pops a lazy max-heap ordered by (score_ + activity_,
///     lowest var id) — the exact total order the previous O(#vars) linear
///     scan maximized, so the selected variable is identical; see the
///     HeapMatchesLinearScanReference regression test.
///
/// The arena, watch and heap mechanics live in sat/engine.hpp, shared with
/// the CDCL engine; this class owns the policy that must never change —
/// its Table-1 quality columns are bit-identity-pinned.
class Dpll {
 public:
  Dpll(const Cnf& cnf, const SolveOptions& opts)
      : cnf_(cnf), opts_(opts), heap_(HeapOrder{this}) {
    const std::size_t n = cnf.num_vars();
    assign_.assign(n, kUnassignedValue);
    watches_.assign(2 * n, {});
    score_.assign(n, 0.0);
    activity_.assign(n, 0.0);
    num_unassigned_ = n;
    rng_ = util::Rng(opts.seed);

    // Copy clauses into the arena, set up watches; unit clauses go straight
    // on the trail.
    arena_.reserve(cnf.num_literals());
    for (const auto& clause : cnf.clauses()) {
      if (clause.empty()) {
        trivially_unsat_ = true;
        return;
      }
      if (clause.size() == 1) {
        if (!enqueue(clause[0])) {
          trivially_unsat_ = true;
          return;
        }
        continue;
      }
      const std::uint32_t ci = static_cast<std::uint32_t>(heads_.size());
      heads_.push_back({static_cast<std::uint32_t>(arena_.size()),
                        static_cast<std::uint32_t>(clause.size())});
      arena_.insert(arena_.end(), clause.begin(), clause.end());
      watches_[clause[0].x].push_back({ci, clause[1]});
      watches_[clause[1].x].push_back({ci, clause[0]});
      // Static branching score: short clauses weigh more (Jeroslow-Wang).
      const double w = std::pow(2.0, -static_cast<double>(clause.size()));
      for (const Lit l : clause) score_[l.var()] += w;
    }
    heap_.build(n);
  }

  Outcome run(Model* model, SolveStats* stats) {
    util::Timer timer;
    Outcome outcome = trivially_unsat_ ? Outcome::Unsat : search(timer);
    if (outcome == Outcome::Sat && model != nullptr) {
      model->assign(cnf_.num_vars(), false);
      for (Var v = 0; v < cnf_.num_vars(); ++v) (*model)[v] = assign_[v] == 1;
    }
    if (stats != nullptr) {
      stats->decisions = decisions_;
      stats->backtracks = backtracks_;
      stats->conflicts = conflicts_;
      stats->propagations = propagations_;
      stats->restarts = restarts_;
      stats->learned = 0;  // branch-and-bound: nothing is ever learned
      stats->seconds = timer.seconds();
    }
    return outcome;
  }

 private:
  bool value_true(Lit l) const { return assign_[l.var()] == (l.negated() ? 0 : 1); }
  bool value_false(Lit l) const { return assign_[l.var()] == (l.negated() ? 1 : 0); }
  bool unassigned(Lit l) const { return assign_[l.var()] == kUnassignedValue; }

  /// Put `l` on the trail; false if it contradicts the current assignment.
  bool enqueue(Lit l) {
    if (value_false(l)) return false;
    if (value_true(l)) return true;
    assign_[l.var()] = l.negated() ? 0 : 1;
    --num_unassigned_;
    trail_.push_back(l);
    return true;
  }

  /// Max-heap order over unassigned (plus lazily stale assigned) variables:
  /// higher score_+activity_ first, lower var id on ties.  The tie-break
  /// makes the order total, so the heap root is the unique maximum — the
  /// same variable a front-to-back linear scan keeping strict improvements
  /// would report.
  struct HeapOrder {
    const Dpll* self;
    bool operator()(Var a, Var b) const {
      const double ka = self->score_[a] + self->activity_[a];
      const double kb = self->score_[b] + self->activity_[b];
      return ka > kb || (ka == kb && a < b);
    }
  };

  /// Two-watched-literal unit propagation.  Returns false on conflict and
  /// records the conflicting clause for activity bumping.
  bool propagate() {
    while (qhead_ < trail_.size()) {
      const Lit p = trail_[qhead_++];
      ++propagations_;
      // Clauses watching ~p must find a new watch or become unit/conflict.
      const Lit false_lit = ~p;
      auto& watch_list = watches_[false_lit.x];
      std::size_t keep = 0;
      bool conflict = false;
      for (std::size_t wi = 0; wi < watch_list.size(); ++wi) {
        const Watch w = watch_list[wi];
        if (conflict) {
          watch_list[keep++] = w;
          continue;
        }
        const ClauseHead h = heads_[w.clause];
        Lit* lits = arena_.data() + h.offset;
        // Blocker fast path: the cached literal is true AND still one of the
        // two watched positions — then it is the *other* watched literal
        // (the false one is being visited), the clause is satisfied, and the
        // reference algorithm kept this watch too.  A stale true blocker
        // that drifted out of the watched pair must NOT short-circuit: the
        // reference scan may move the watch instead, and keeping it changes
        // which conflict is found first and hence the activity-driven search
        // path (observed as diverging Table 1 columns).
        if (value_true(w.blocker) && (lits[0] == w.blocker || lits[1] == w.blocker)) {
          watch_list[keep++] = w;
          continue;
        }
        // Ensure the false literal is at position 1.
        if (lits[0] == false_lit) std::swap(lits[0], lits[1]);
        const Lit first = lits[0];
        if (value_true(first)) {
          watch_list[keep++] = {w.clause, first};  // already satisfied
          continue;
        }
        // Look for a replacement watch.
        bool moved = false;
        for (std::uint32_t k = 2; k < h.size; ++k) {
          if (!value_false(lits[k])) {
            std::swap(lits[1], lits[k]);
            watches_[lits[1].x].push_back({w.clause, first});
            moved = true;
            break;
          }
        }
        if (moved) continue;  // watch moved away, drop from this list
        // Clause is unit (or conflicting) on `first`.
        watch_list[keep++] = {w.clause, first};
        if (!enqueue(first)) {
          conflict = true;
          conflict_clause_ = w.clause;
        }
      }
      watch_list.resize(keep);
      if (conflict) return false;
    }
    return true;
  }

  /// Undo the trail down to `target` length.
  void undo_to(std::size_t target) {
    while (trail_.size() > target) {
      const Var v = trail_.back().var();
      assign_[v] = kUnassignedValue;
      ++num_unassigned_;
      heap_.insert(v);
      trail_.pop_back();
    }
    qhead_ = trail_.size();
  }

  /// Branch phase for `v`: always FALSE first.  CSC-encoding variables at
  /// 0 mean state-signal value Zero, so solutions keep minimal excitation
  /// regions (fewest state splits on expansion); a Jeroslow-Wang polarity
  /// hint was tried here and made downstream synthesis results worse.
  Lit phased(Var v) const { return Lit::make(v, true); }

  Lit pick_branch() {
    // Occasional random decisions diversify the search across restarts.
    // num_unassigned_ is maintained by enqueue()/undo_to(), so this path
    // costs one scan (to the picked variable), not two full ones.
    if (rng_.chance(0.02)) {
      if (num_unassigned_ > 0) {
        std::uint64_t pick = rng_.below(num_unassigned_);
        for (Var v = 0; v < cnf_.num_vars(); ++v) {
          if (assign_[v] == kUnassignedValue && pick-- == 0) return phased(v);
        }
      }
    }
    if (opts_.reference_linear_branching) {
      // Reference implementation pinned by the determinism regression test:
      // the heap below must select exactly this variable.
      Var best = kNoVar;
      double best_score = -1.0;
      for (Var v = 0; v < cnf_.num_vars(); ++v) {
        if (assign_[v] == kUnassignedValue && score_[v] + activity_[v] > best_score) {
          best = v;
          best_score = score_[v] + activity_[v];
        }
      }
      if (best == kNoVar) return Lit{};
      return phased(best);
    }
    for (;;) {
      const Var v = heap_.pop();
      if (v == kNoVar) return Lit{};
      if (assign_[v] == kUnassignedValue) return phased(v);
    }
  }

  /// Conflict-driven activity (VSIDS-style bump/decay) — adaptive
  /// branching without clause learning, in the branch-and-bound spirit of
  /// the original SIS solver.
  void bump_conflict_activity() {
    if (conflict_clause_ == kNoClause) return;
    const ClauseHead h = heads_[conflict_clause_];
    for (std::uint32_t k = 0; k < h.size; ++k) {
      const Var v = arena_[h.offset + k].var();
      activity_[v] += activity_inc_;
      heap_.increased(v);
    }
    activity_inc_ *= 1.05;
    if (activity_inc_ > 1e100) {
      for (auto& a : activity_) a *= 1e-100;
      activity_inc_ *= 1e-100;
      // The rescale shifts score_+activity_ sums non-uniformly; restore the
      // heap invariant wholesale.
      heap_.rebuild();
    }
  }

  /// External stop conditions (interrupt token, relative time limit, shared
  /// deadline).  Cheap enough for periodic checks; not for every decision.
  bool should_stop(const util::Timer& timer) const {
    if (opts_.interrupt != nullptr && opts_.interrupt->load(std::memory_order_relaxed)) {
      return true;
    }
    if (opts_.time_limit_s > 0 && timer.seconds() > opts_.time_limit_s) return true;
    if (opts_.deadline != std::chrono::steady_clock::time_point{} &&
        std::chrono::steady_clock::now() > opts_.deadline) {
      return true;
    }
    return false;
  }

  Outcome search(const util::Timer& timer) {
    struct Decision {
      Lit lit;
      std::size_t trail_size;  // trail length *before* the decision
      bool flipped;
    };
    std::vector<Decision> decisions;
    const std::size_t root_trail = trail_.size();  // units assigned up front
    std::int64_t restart_budget = opts_.restart_interval;
    std::int64_t backtracks_since_restart = 0;

    for (;;) {
      if (!propagate()) {
        // One chronological flip per conflict: the two counts advance in
        // lockstep here by construction (the invariant SolveStats documents).
        ++conflicts_;
        ++backtracks_;
        ++backtracks_since_restart;
        bump_conflict_activity();
        if (opts_.max_backtracks >= 0 && backtracks_ > opts_.max_backtracks) {
          return Outcome::Limit;
        }
        if ((backtracks_ & 255) == 0 && should_stop(timer)) return Outcome::Limit;
        if (opts_.restart_interval > 0 && backtracks_since_restart >= restart_budget) {
          // Geometric restart: forget decisions, keep activities.  The
          // doubling saturates — an unbounded run used to overflow int64
          // after 63 restarts, turning the budget negative.
          decisions.clear();
          undo_to(root_trail);
          restart_budget = saturating_double(restart_budget);
          backtracks_since_restart = 0;
          ++restarts_;
          continue;
        }
        // Backtrack to the deepest unflipped decision and flip it.
        for (;;) {
          if (decisions.empty()) return Outcome::Unsat;
          Decision d = decisions.back();
          decisions.pop_back();
          undo_to(d.trail_size);
          if (!d.flipped) {
            decisions.push_back({~d.lit, d.trail_size, true});
            const bool ok = enqueue(~d.lit);
            MPS_ASSERT(ok);
            break;
          }
        }
        continue;
      }
      // Conflicts are not the only progress marker: a propagation-heavy
      // instance can run for a long time with almost no backtracks, so the
      // stop conditions are also polled on a decision counter.
      if ((decisions_ & 127) == 0 && should_stop(timer)) return Outcome::Limit;
      const Lit branch = pick_branch();
      if (!branch.valid()) return Outcome::Sat;  // total assignment, all clauses satisfied
      ++decisions_;
      if (opts_.decision_log != nullptr) opts_.decision_log->push_back(branch);
      decisions.push_back({branch, trail_.size(), false});
      const bool ok = enqueue(branch);
      MPS_ASSERT(ok);
    }
  }

  const Cnf& cnf_;
  const SolveOptions& opts_;
  bool trivially_unsat_ = false;

  std::vector<Lit> arena_;
  std::vector<ClauseHead> heads_;
  std::vector<std::vector<Watch>> watches_;  // indexed by Lit.x
  std::vector<std::int8_t> assign_;
  std::vector<Lit> trail_;
  std::size_t qhead_ = 0;
  std::size_t num_unassigned_ = 0;
  std::vector<double> score_;
  std::vector<double> activity_;
  double activity_inc_ = 1.0;
  VarHeap<HeapOrder> heap_;
  std::uint32_t conflict_clause_ = kNoClause;
  util::Rng rng_;

  std::int64_t decisions_ = 0;
  std::int64_t backtracks_ = 0;
  std::int64_t conflicts_ = 0;
  std::int64_t propagations_ = 0;
  std::int64_t restarts_ = 0;
};

}  // namespace

const char* engine_name(Engine e) { return e == Engine::Cdcl ? "cdcl" : "dpll"; }

std::optional<Engine> engine_from_name(std::string_view name) {
  if (name == "dpll") return Engine::Dpll;
  if (name == "cdcl") return Engine::Cdcl;
  return std::nullopt;
}

Outcome Solver::solve(const Cnf& cnf, Model* model, SolveStats* stats, const SolveOptions& opts) {
  obs::Span span("sat.solve");
  SolveStats local;
  Outcome outcome;
  if (opts.engine == Engine::Cdcl) {
    outcome = solve_cdcl(cnf, model, &local, opts);
  } else {
    outcome = Dpll(cnf, opts).run(model, &local);
  }
  if (span.active()) {
    // The SolveStats of this call double as the span payload (one source of
    // truth for traces and caller-reported statistics).
    span.arg("vars", static_cast<std::int64_t>(cnf.num_vars()));
    span.arg("clauses", static_cast<std::int64_t>(cnf.num_clauses()));
    span.arg("engine", static_cast<std::int64_t>(opts.engine));
    span.arg("decisions", local.decisions);
    span.arg("propagations", local.propagations);
    span.arg("conflicts", local.conflicts);
    span.arg("backjumps", local.backtracks);
    span.arg("learned", local.learned);
    span.arg("restarts", local.restarts);
    span.arg("outcome", static_cast<std::int64_t>(outcome));
    obs::counter_add("sat.solves", 1);
    obs::counter_add("sat.decisions", local.decisions);
    obs::counter_add("sat.propagations", local.propagations);
    obs::counter_add("sat.conflicts", local.conflicts);
    obs::counter_add("sat.backjumps", local.backtracks);
    obs::counter_add("sat.learned", local.learned);
    obs::counter_add("sat.restarts", local.restarts);
  }
  if (stats != nullptr) *stats = local;
  if (outcome == Outcome::Sat && model != nullptr) {
    MPS_ASSERT(cnf.satisfied_by(*model));
  }
  return outcome;
}

}  // namespace mps::sat

#include "sat/cnf.hpp"

#include <algorithm>

namespace mps::sat {

void Cnf::add_clause(std::vector<Lit> lits) {
  // Normalize: sort, dedup, drop tautologies (x ∨ ~x).
  std::sort(lits.begin(), lits.end(), [](Lit a, Lit b) { return a.x < b.x; });
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  for (std::size_t i = 0; i + 1 < lits.size(); ++i) {
    if (lits[i].var() == lits[i + 1].var()) return;  // tautology
  }
  for (const Lit l : lits) MPS_ASSERT(l.var() < num_vars_);
  num_literals_ += lits.size();
  clauses_.push_back(std::move(lits));
}

bool Cnf::satisfied_by(const Model& m) const {
  MPS_ASSERT(m.size() >= num_vars_);
  for (const auto& clause : clauses_) {
    bool sat = false;
    for (const Lit l : clause) {
      if (m[l.var()] != l.negated()) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

}  // namespace mps::sat

#include "sat/local_search.hpp"

#include <algorithm>

#include "util/common.hpp"

namespace mps::sat {

namespace {

/// Book-keeping for WalkSAT: true-literal counts per clause, occurrence
/// lists, and the set of unsatisfied clauses with positions for O(1)
/// removal.
struct WalkState {
  explicit WalkState(const Cnf& cnf) : cnf(cnf) {
    occur.assign(2 * cnf.num_vars(), {});
    for (std::uint32_t ci = 0; ci < cnf.num_clauses(); ++ci) {
      for (const Lit l : cnf.clause(ci)) occur[l.x].push_back(ci);
    }
    true_count.assign(cnf.num_clauses(), 0);
    unsat_pos.assign(cnf.num_clauses(), -1);
  }

  void init(const Model& m) {
    unsat.clear();
    std::fill(unsat_pos.begin(), unsat_pos.end(), -1);
    for (std::uint32_t ci = 0; ci < cnf.num_clauses(); ++ci) {
      int count = 0;
      for (const Lit l : cnf.clause(ci)) count += m[l.var()] != l.negated();
      true_count[ci] = count;
      if (count == 0) push_unsat(ci);
    }
  }

  void push_unsat(std::uint32_t ci) {
    unsat_pos[ci] = static_cast<int>(unsat.size());
    unsat.push_back(ci);
  }
  void pop_unsat(std::uint32_t ci) {
    const int pos = unsat_pos[ci];
    MPS_ASSERT(pos >= 0);
    const std::uint32_t last = unsat.back();
    unsat[pos] = last;
    unsat_pos[last] = pos;
    unsat.pop_back();
    unsat_pos[ci] = -1;
  }

  /// Flip variable v in model m, updating counts.
  void flip(Model& m, Var v) {
    m[v] = !m[v];
    const Lit now_true = Lit::make(v, !m[v] ? true : false);  // literal that became true
    const Lit now_false = ~now_true;
    for (const std::uint32_t ci : occur[now_true.x]) {
      if (++true_count[ci] == 1) pop_unsat(ci);
    }
    for (const std::uint32_t ci : occur[now_false.x]) {
      if (--true_count[ci] == 0) push_unsat(ci);
    }
  }

  /// Number of clauses that become unsatisfied if v flips ("break count").
  int break_count(const Model& m, Var v) const {
    const Lit true_lit = Lit::make(v, !m[v]);  // the literal of v that is currently true
    int breaks = 0;
    for (const std::uint32_t ci : occur[true_lit.x]) {
      if (true_count[ci] == 1) ++breaks;
    }
    return breaks;
  }

  const Cnf& cnf;
  std::vector<std::vector<std::uint32_t>> occur;
  std::vector<int> true_count;
  std::vector<std::uint32_t> unsat;
  std::vector<int> unsat_pos;
};

}  // namespace

bool walksat(const Cnf& cnf, Model* model, LocalSearchStats* stats,
             const LocalSearchOptions& opts) {
  util::Timer timer;
  for (const auto& clause : cnf.clauses()) {
    if (clause.empty()) return false;  // trivially UNSAT: report "don't know"
  }

  util::Rng rng(opts.seed);
  WalkState state(cnf);
  Model m(cnf.num_vars());
  std::int64_t total_flips = 0;

  for (int attempt = 0; attempt < opts.max_tries; ++attempt) {
    for (Var v = 0; v < cnf.num_vars(); ++v) m[v] = rng.chance(0.5);
    state.init(m);

    for (std::int64_t flip = 0; flip < opts.max_flips; ++flip) {
      if (state.unsat.empty()) {
        if (model != nullptr) *model = m;
        if (stats != nullptr) {
          stats->flips = total_flips;
          stats->tries = attempt + 1;
          stats->seconds = timer.seconds();
        }
        MPS_ASSERT(cnf.satisfied_by(m));
        return true;
      }
      const std::uint32_t ci = state.unsat[rng.below(state.unsat.size())];
      const auto& clause = cnf.clause(ci);
      Var chosen;
      if (rng.chance(opts.noise)) {
        chosen = clause[rng.below(clause.size())].var();
      } else {
        // Greedy: minimal break count (ties broken by first occurrence).
        chosen = clause[0].var();
        int best = state.break_count(m, chosen);
        for (std::size_t i = 1; i < clause.size() && best > 0; ++i) {
          const int b = state.break_count(m, clause[i].var());
          if (b < best) {
            best = b;
            chosen = clause[i].var();
          }
        }
      }
      state.flip(m, chosen);
      ++total_flips;
    }
  }

  if (stats != nullptr) {
    stats->flips = total_flips;
    stats->tries = opts.max_tries;
    stats->seconds = timer.seconds();
  }
  return false;
}

}  // namespace mps::sat

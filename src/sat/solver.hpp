// Two SAT engines behind one entry point, selected by SolveOptions::engine:
//
//   * Engine::Dpll (default) — a branch-and-bound (DPLL) solver with
//     two-watched-literal unit propagation, a from-scratch equivalent of
//     the SIS solver (Stephan, Brayton, Sangiovanni-Vincentelli, ERL
//     M92/112) the paper used.  Deliberately *not* clause-learning: the
//     paper's observation — direct SAT-CSC formulas defeat branch-and-bound
//     search while the modular formulas are trivial — is a statement about
//     this solver class, and Table 1's "SAT Backtrack Limit" entries are
//     reproduced by the same mechanism (the backtrack limit below).  This
//     engine is the pinned Table-1 reference and never changes behavior.
//
//   * Engine::Cdcl — a conflict-driven clause-learning solver (GRASP/Chaff
//     lineage: first-UIP learning with clause minimization, non-
//     chronological backjumping, EVSIDS branching, Luby restarts, LBD-based
//     clause-DB reduction) on the same arena/watcher substrate.  It retires
//     every Table-1 LIMIT row; see DESIGN.md "CDCL engine".
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string_view>

#include "sat/cnf.hpp"

namespace mps::sat {

enum class Outcome { Sat, Unsat, Limit };

/// Search engine selector.  Dpll is the paper-faithful reference whose
/// Table-1 quality columns are bit-identity-pinned; Cdcl is the
/// clause-learning engine.  Result-affecting: both cache fingerprints
/// (core::options_fingerprint, svc::request_fingerprint) include it.
enum class Engine { Dpll, Cdcl };

/// Canonical lower-case name ("dpll" / "cdcl") — the spelling shared by the
/// --engine CLI flags, the svc protocol's "engine" field and bench/table1's
/// JSON schema.
const char* engine_name(Engine e);
/// Inverse of engine_name; nullopt on anything else (callers own the
/// diagnostic).
std::optional<Engine> engine_from_name(std::string_view name);

struct SolveOptions {
  /// Which search loop runs.  Both honor every limit/interrupt field below.
  Engine engine = Engine::Dpll;
  /// Abort with Outcome::Limit beyond this many conflicts (for DPLL:
  /// backtracks — flips of a decision; the two counts coincide there);
  /// <0 = unlimited.
  std::int64_t max_backtracks = -1;
  /// Wall-clock limit in seconds; <=0 = unlimited.  Checked periodically on
  /// both decisions and conflicts, so propagation-heavy runs with few
  /// backtracks still honor it.
  double time_limit_s = 0.0;
  /// Cooperative cancellation: when non-null and set (by another thread),
  /// the search returns Outcome::Limit at its next periodic check.  Used by
  /// the parallel synthesis flow to stop solving modules whose results are
  /// already known to be discarded.
  const std::atomic<bool>* interrupt = nullptr;
  /// Absolute wall-clock cutoff shared by a group of solves (e.g. all
  /// modules of one synthesis round); default-constructed = none.  Combines
  /// with time_limit_s: whichever fires first wins.
  std::chrono::steady_clock::time_point deadline{};
  /// Restart the search (keeping variable activities) after this many
  /// conflicts; 0 disables restarts.  The DPLL engine doubles the budget
  /// after every restart (geometric, saturating at int64 max); the CDCL
  /// engine scales it by the Luby sequence.  Restarts do not affect
  /// completeness — a run that ends by exhausting the search space still
  /// reports Unsat.
  std::int64_t restart_interval = 256;
  /// Seed for branching tie randomization (restarts explore new regions).
  std::uint64_t seed = 0x9E3779B9;
  /// Test/reference hook: select branch variables with the original O(#vars)
  /// linear scan instead of the variable-order heap.  Both maximize the same
  /// total order (score+activity desc, var id asc), so the decision sequence
  /// must be identical — the HeapMatchesLinearScanReference regression test
  /// pins exactly that.  Never set on a production path.
  bool reference_linear_branching = false;
  /// When non-null, every fresh branch decision literal is appended (flips
  /// on backtrack are not logged; they are determined by the decisions).
  /// Test-only observability for the determinism regression tests.
  std::vector<Lit>* decision_log = nullptr;
};

/// Search statistics of one solve() call.  Also the payload of the
/// "sat.solve" span every solve records into obs:: — the trace/stats output
/// and the caller-visible stats are the same numbers by construction.
struct SolveStats {
  std::int64_t decisions = 0;
  /// Backtrack/backjump operations.  The DPLL engine backtracks once per
  /// conflict (no clause learning), so conflicts == backtracks there — an
  /// invariant pinned by the DpllConflictsEqualBacktracks regression test.
  /// The CDCL engine backjumps non-chronologically, and a conflict at
  /// decision level 0 ends the search without any backjump, so the two
  /// counts diverge; `conflicts` is a real counted field, not an alias.
  std::int64_t backtracks = 0;
  /// Conflicting propagations encountered (counted at the conflict site by
  /// both engines).
  std::int64_t conflicts = 0;
  std::int64_t propagations = 0;
  std::int64_t restarts = 0;
  /// Learned clauses recorded (0 for the DPLL engine, which learns none).
  std::int64_t learned = 0;
  double seconds = 0.0;
};

/// Aggregate search effort over a group of solves (one synthesis run, one
/// Table-1 row).  Deliberately order-insensitive sums, so parallel and
/// serial synthesis flows report identical totals.
struct SolverTotals {
  std::int64_t decisions = 0;
  std::int64_t propagations = 0;
  std::int64_t conflicts = 0;
  std::int64_t restarts = 0;
  std::int64_t learned = 0;

  void add(const SolveStats& s) {
    decisions += s.decisions;
    propagations += s.propagations;
    conflicts += s.conflicts;
    restarts += s.restarts;
    learned += s.learned;
  }
};

class Solver {
 public:
  /// Solve `cnf`.  On Sat, `*model` (if non-null) receives a satisfying
  /// total assignment.  `*stats` (if non-null) receives search statistics.
  Outcome solve(const Cnf& cnf, Model* model = nullptr, SolveStats* stats = nullptr,
                const SolveOptions& opts = {});
};

}  // namespace mps::sat

#include "sat/dimacs.hpp"

#include <sstream>

#include "util/text.hpp"

namespace {

long parse_long(const std::string& tok, int line_no) {
  try {
    std::size_t used = 0;
    const long v = std::stol(tok, &used);
    if (used != tok.size()) throw std::invalid_argument(tok);
    return v;
  } catch (const std::exception&) {
    throw mps::util::ParseError("expected an integer, got '" + tok + "'", line_no);
  }
}

}  // namespace

namespace mps::sat {

Cnf parse_dimacs(std::string_view text) {
  Cnf cnf;
  std::istringstream in{std::string(text)};
  std::string line;
  long declared_vars = -1;
  long declared_clauses = -1;
  std::vector<Lit> clause;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto view = util::trim(line);
    if (view.empty() || view[0] == 'c') continue;
    if (view[0] == 'p') {
      const auto toks = util::split_ws(view);
      if (toks.size() != 4 || toks[1] != "cnf") {
        throw util::ParseError("bad DIMACS header", line_no);
      }
      if (declared_vars >= 0) throw util::ParseError("duplicate 'p cnf' header", line_no);
      declared_vars = parse_long(toks[2], line_no);
      declared_clauses = parse_long(toks[3], line_no);
      if (declared_vars < 0 || declared_clauses < 0) {
        throw util::ParseError("negative count in 'p cnf' header", line_no);
      }
      cnf.new_vars(static_cast<std::size_t>(declared_vars));
      continue;
    }
    if (declared_vars < 0) throw util::ParseError("clause before header", line_no);
    for (const auto& tok : util::split_ws(view)) {
      const long v = parse_long(tok, line_no);
      if (v == 0) {
        cnf.add_clause(clause);
        clause.clear();
      } else {
        const long var = v > 0 ? v : -v;
        if (var > declared_vars) throw util::ParseError("variable out of range: " + tok, line_no);
        clause.push_back(Lit::make(static_cast<Var>(var - 1), v < 0));
      }
    }
  }
  if (!clause.empty()) cnf.add_clause(clause);  // tolerate a missing final 0
  // More clauses than declared is accepted (some generators undercount), but
  // fewer indicates a truncated file.
  if (declared_clauses >= 0 && static_cast<long>(cnf.num_clauses()) < declared_clauses) {
    throw util::ParseError(
        "truncated DIMACS: header declares " + std::to_string(declared_clauses) +
            " clauses but only " + std::to_string(cnf.num_clauses()) +
            " present (if a normalizer dropped tautologies, re-emit the header)",
        line_no);
  }
  return cnf;
}

std::string write_dimacs(const Cnf& cnf, const std::string& comment) {
  std::ostringstream out;
  if (!comment.empty()) out << "c " << comment << '\n';
  out << "p cnf " << cnf.num_vars() << ' ' << cnf.num_clauses() << '\n';
  for (const auto& clause : cnf.clauses()) {
    for (const Lit l : clause) {
      out << (l.negated() ? -static_cast<long>(l.var() + 1)
                          : static_cast<long>(l.var() + 1))
          << ' ';
    }
    out << "0\n";
  }
  return out.str();
}

}  // namespace mps::sat

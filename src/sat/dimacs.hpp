// DIMACS CNF reader/writer, so encoded CSC instances can be exported to
// (or cross-checked against) external SAT solvers.
#pragma once

#include <string>
#include <string_view>

#include "sat/cnf.hpp"

namespace mps::sat {

/// Parse DIMACS text ("p cnf V C" header, clauses terminated by 0).
/// Throws util::ParseError on malformed input.
Cnf parse_dimacs(std::string_view text);

/// Render `cnf` in DIMACS format (with an optional comment line).
std::string write_dimacs(const Cnf& cnf, const std::string& comment = {});

}  // namespace mps::sat

// Conflict-driven clause learning on the shared arena/watcher substrate
// (sat/engine.hpp): first-UIP conflict analysis with learned-clause
// minimization, non-chronological backjumping, EVSIDS variable activity on
// the lazy max-heap, Luby restarts, and LBD-based clause-DB reduction with
// arena compaction.  GRASP (Marques-Silva & Sakallah) supplies the
// implication-graph analysis, Chaff (Moskewicz et al.) the watched-literal
// + VSIDS recipe, Glucose (Audemard & Simon) the LBD quality measure.
//
// Everything here may evolve freely: unlike the DPLL engine, whose search
// path is bit-identity-pinned by the Table-1 reference, the CDCL engine is
// pinned only on outcomes (BENCH_table1_cdcl.json — zero LIMIT rows) and on
// agreement with DPLL (tests/sat_fuzz_test.cpp).
#include "sat/cdcl.hpp"

#include <algorithm>
#include <vector>

#include "sat/engine.hpp"
#include "util/common.hpp"

namespace mps::sat {

namespace {

/// Luby sequence value (1,1,2,1,1,2,4,...) for restart scaling — the
/// textbook recursive definition, iterativized as in MiniSat.
std::int64_t luby(std::int64_t i) {
  // Find the finite subsequence containing index i, then the position in it.
  std::int64_t size = 1;
  std::int64_t seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i = i % size;
  }
  return std::int64_t{1} << seq;
}

class Cdcl {
 public:
  Cdcl(const Cnf& cnf, const SolveOptions& opts) : cnf_(cnf), opts_(opts), heap_(Order{this}) {
    const std::size_t n = cnf.num_vars();
    assign_.assign(n, kUnassignedValue);
    level_.assign(n, 0);
    reason_.assign(n, kNoClause);
    phase_.assign(n, 0);  // FALSE-first initial phase, like the DPLL engine
    seen_.assign(n, 0);
    activity_.assign(n, 0.0);
    watches_.assign(2 * n, {});

    arena_.reserve(cnf.num_literals());
    for (const auto& clause : cnf.clauses()) {
      if (clause.empty()) {
        trivially_unsat_ = true;
        return;
      }
      if (clause.size() == 1) {
        if (!enqueue(clause[0], kNoClause)) {
          trivially_unsat_ = true;
          return;
        }
        continue;
      }
      add_clause(clause.data(), clause.size(), /*learned=*/false, /*lbd=*/0);
    }
    num_problem_clauses_ = static_cast<std::uint32_t>(heads_.size());
    heap_.build(n);
    // First clause-DB reduction once the learned set rivals the problem
    // itself; the budget doubles (saturating) after every reduction.
    reduce_budget_ = std::max<std::int64_t>(
        2000, static_cast<std::int64_t>(cnf.num_clauses()) / 2);
  }

  Outcome run(Model* model, SolveStats* stats) {
    util::Timer timer;
    Outcome outcome = trivially_unsat_ ? Outcome::Unsat : search(timer);
    if (outcome == Outcome::Sat && model != nullptr) {
      shrink_model_toward_false();
      model->assign(cnf_.num_vars(), false);
      for (Var v = 0; v < cnf_.num_vars(); ++v) (*model)[v] = assign_[v] == 1;
    }
    if (stats != nullptr) {
      stats->decisions = decisions_;
      stats->backtracks = backtracks_;
      stats->conflicts = conflicts_;
      stats->propagations = propagations_;
      stats->restarts = restarts_;
      stats->learned = learned_total_;
      stats->seconds = timer.seconds();
    }
    return outcome;
  }

 private:
  /// Arena clause header; LBD ("glue") recorded for learned clauses drives
  /// DB reduction.
  struct Head {
    std::uint32_t offset;
    std::uint32_t size;
    std::uint32_t lbd;
    bool learned;
  };

  bool value_true(Lit l) const { return assign_[l.var()] == (l.negated() ? 0 : 1); }
  bool value_false(Lit l) const { return assign_[l.var()] == (l.negated() ? 1 : 0); }
  bool unassigned(Lit l) const { return assign_[l.var()] == kUnassignedValue; }

  int current_level() const { return static_cast<int>(trail_lim_.size()); }

  std::uint32_t add_clause(const Lit* lits, std::size_t size, bool learned, std::uint32_t lbd) {
    const std::uint32_t ci = static_cast<std::uint32_t>(heads_.size());
    heads_.push_back({static_cast<std::uint32_t>(arena_.size()),
                      static_cast<std::uint32_t>(size), lbd, learned});
    arena_.insert(arena_.end(), lits, lits + size);
    watches_[lits[0].x].push_back({ci, lits[1]});
    watches_[lits[1].x].push_back({ci, lits[0]});
    if (learned) learned_idx_.push_back(ci);
    return ci;
  }

  /// Put `l` on the trail at the current level; false if it contradicts the
  /// current assignment.
  bool enqueue(Lit l, std::uint32_t reason) {
    if (value_false(l)) return false;
    if (value_true(l)) return true;
    const Var v = l.var();
    assign_[v] = l.negated() ? 0 : 1;
    level_[v] = current_level();
    reason_[v] = reason;
    trail_.push_back(l);
    return true;
  }

  /// Two-watched-literal unit propagation with implication recording.
  /// Returns the conflicting clause index, or kNoClause.
  std::uint32_t propagate() {
    while (qhead_ < trail_.size()) {
      const Lit p = trail_[qhead_++];
      ++propagations_;
      const Lit false_lit = ~p;
      auto& watch_list = watches_[false_lit.x];
      std::size_t keep = 0;
      std::uint32_t confl = kNoClause;
      for (std::size_t wi = 0; wi < watch_list.size(); ++wi) {
        const Watch w = watch_list[wi];
        if (confl != kNoClause) {
          watch_list[keep++] = w;
          continue;
        }
        // Plain blocker fast path (unlike the DPLL engine there is no
        // reference search path to preserve, so a possibly-stale true
        // blocker may short-circuit).
        if (value_true(w.blocker)) {
          watch_list[keep++] = w;
          continue;
        }
        const Head h = heads_[w.clause];
        Lit* lits = arena_.data() + h.offset;
        if (lits[0] == false_lit) std::swap(lits[0], lits[1]);
        const Lit first = lits[0];
        if (value_true(first)) {
          watch_list[keep++] = {w.clause, first};
          continue;
        }
        bool moved = false;
        for (std::uint32_t k = 2; k < h.size; ++k) {
          if (!value_false(lits[k])) {
            std::swap(lits[1], lits[k]);
            watches_[lits[1].x].push_back({w.clause, first});
            moved = true;
            break;
          }
        }
        if (moved) continue;
        // Unit (implied `first` with this clause as reason) or conflicting.
        watch_list[keep++] = {w.clause, first};
        if (!enqueue(first, w.clause)) confl = w.clause;
      }
      watch_list.resize(keep);
      if (confl != kNoClause) return confl;
    }
    return kNoClause;
  }

  /// Undo every assignment above decision level `lvl`, saving phases.
  void backjump_to(int lvl) {
    if (current_level() <= lvl) return;
    const std::size_t target = trail_lim_[lvl];
    for (std::size_t i = trail_.size(); i-- > target;) {
      const Var v = trail_[i].var();
      phase_[v] = assign_[v];
      assign_[v] = kUnassignedValue;
      reason_[v] = kNoClause;
      heap_.insert(v);
    }
    trail_.resize(target);
    trail_lim_.resize(lvl);
    qhead_ = trail_.size();
  }

  void bump_var(Var v) {
    activity_[v] += var_inc_;
    heap_.increased(v);
    if (activity_[v] > 1e100) {
      for (auto& a : activity_) a *= 1e-100;
      var_inc_ *= 1e-100;
      heap_.rebuild();  // uniform rescale, but cheap and unconditionally safe
    }
  }

  /// First-UIP conflict analysis.  Fills `learnt` (asserting literal first),
  /// returns the backjump level and the clause's LBD.
  void analyze(std::uint32_t confl, std::vector<Lit>* learnt, int* out_level,
               std::uint32_t* out_lbd) {
    learnt->clear();
    learnt->push_back(Lit{});  // slot for the asserting literal
    int counter = 0;           // current-level vars pending resolution
    Lit p{};                   // invalid: the initial conflict resolves all lits
    std::size_t index = trail_.size();

    for (;;) {
      MPS_ASSERT(confl != kNoClause);
      const Head h = heads_[confl];
      for (std::uint32_t k = 0; k < h.size; ++k) {
        const Lit q = arena_[h.offset + k];
        if (p.valid() && q.var() == p.var()) continue;  // the resolved-on literal
        const Var v = q.var();
        if (seen_[v] == 0 && level_[v] > 0) {
          seen_[v] = 1;
          bump_var(v);
          if (level_[v] >= current_level()) {
            ++counter;
          } else {
            learnt->push_back(q);
          }
        }
      }
      // Walk the trail backwards to the next marked literal of this level.
      while (seen_[trail_[index - 1].var()] == 0) --index;
      p = trail_[--index];
      confl = reason_[p.var()];
      seen_[p.var()] = 0;
      if (--counter == 0) break;  // p is the first UIP
    }
    (*learnt)[0] = ~p;

    // Learned-clause minimization (local / "basic" mode): a non-asserting
    // literal is redundant when its reason's other literals are all either
    // marked or at level 0 — resolving it away cannot add anything new.
    // Marks must be wiped for the *pre*-minimization literal set (removed
    // literals keep their mark during the scan, as the algorithm requires),
    // so remember it before filtering.
    seen_[p.var()] = 1;  // the asserting literal counts as marked
    analyze_clear_.clear();
    for (const Lit q : *learnt) analyze_clear_.push_back(q.var());
    std::size_t kept = 1;
    for (std::size_t i = 1; i < learnt->size(); ++i) {
      const Lit q = (*learnt)[i];
      const std::uint32_t r = reason_[q.var()];
      bool redundant = r != kNoClause;
      if (redundant) {
        const Head rh = heads_[r];
        for (std::uint32_t k = 0; k < rh.size; ++k) {
          const Lit x = arena_[rh.offset + k];
          if (x.var() == q.var()) continue;
          if (level_[x.var()] > 0 && seen_[x.var()] == 0) {
            redundant = false;
            break;
          }
        }
      }
      if (!redundant) (*learnt)[kept++] = q;
    }
    learnt->resize(kept);

    // Backjump level: the deepest level below the asserting literal's; move
    // that literal to position 1 so both watches start out sane.
    int blevel = 0;
    if (learnt->size() > 1) {
      std::size_t max_i = 1;
      for (std::size_t i = 2; i < learnt->size(); ++i) {
        if (level_[(*learnt)[i].var()] > level_[(*learnt)[max_i].var()]) max_i = i;
      }
      std::swap((*learnt)[1], (*learnt)[max_i]);
      blevel = level_[(*learnt)[1].var()];
    }
    *out_level = blevel;

    // LBD: number of distinct decision levels in the clause (Glucose's
    // quality measure; low-LBD clauses connect few levels and stay useful).
    ++lbd_stamp_counter_;
    if (lbd_stamp_.size() < trail_lim_.size() + 2) lbd_stamp_.resize(trail_lim_.size() + 2, 0);
    std::uint32_t lbd = 0;
    for (const Lit q : *learnt) {
      const int lv = level_[q.var()];
      if (lbd_stamp_[lv] != lbd_stamp_counter_) {
        lbd_stamp_[lv] = lbd_stamp_counter_;
        ++lbd;
      }
    }
    *out_lbd = lbd;

    for (const Var v : analyze_clear_) seen_[v] = 0;
  }

  /// LBD-based clause-DB reduction with arena compaction.  Only ever called
  /// at decision level 0, where no reason references a stored clause (level-0
  /// implications are never resolved on), so clause indices are free to be
  /// reassigned: survivors are copied into a fresh arena and the watch lists
  /// rebuilt from scratch with normalized (non-false-first) watch positions.
  void reduce_db() {
    MPS_ASSERT(current_level() == 0);
    ++reductions_;
    // Rank learned clauses: glue clauses (LBD <= 2) are always kept, the
    // better (lower-LBD, then shorter) half of the rest survives.
    std::vector<std::uint32_t> removable;
    removable.reserve(learned_idx_.size());
    for (const std::uint32_t ci : learned_idx_) {
      if (heads_[ci].lbd > 2) removable.push_back(ci);
    }
    std::sort(removable.begin(), removable.end(), [&](std::uint32_t a, std::uint32_t b) {
      if (heads_[a].lbd != heads_[b].lbd) return heads_[a].lbd < heads_[b].lbd;
      if (heads_[a].size != heads_[b].size) return heads_[a].size < heads_[b].size;
      return a > b;  // prefer younger clauses on ties
    });
    const std::size_t keep = removable.size() / 2;
    std::vector<char> drop(heads_.size(), 0);
    for (std::size_t i = keep; i < removable.size(); ++i) drop[removable[i]] = 1;

    // Compact: problem clauses keep their order at the front, surviving
    // learned clauses follow.  Reasons are all kNoClause at level 0, so no
    // index remapping is needed anywhere but learned_idx_.
    std::vector<Lit> new_arena;
    new_arena.reserve(arena_.size());
    std::vector<Head> new_heads;
    new_heads.reserve(heads_.size());
    for (std::uint32_t ci = 0; ci < heads_.size(); ++ci) {
      if (drop[ci]) continue;
      const Head h = heads_[ci];
      new_heads.push_back({static_cast<std::uint32_t>(new_arena.size()), h.size, h.lbd,
                           h.learned});
      new_arena.insert(new_arena.end(), arena_.begin() + h.offset,
                       arena_.begin() + h.offset + h.size);
    }
    arena_ = std::move(new_arena);
    heads_ = std::move(new_heads);
    learned_idx_.clear();
    for (std::uint32_t ci = num_problem_clauses_; ci < heads_.size(); ++ci) {
      learned_idx_.push_back(ci);
    }

    // Rebuild watches with the level-0 invariant restored: watch two
    // non-false literals where they exist; a clause unit under the level-0
    // assignment enqueues its literal (permanently true from here on).
    for (auto& wl : watches_) wl.clear();
    for (std::uint32_t ci = 0; ci < heads_.size(); ++ci) {
      const Head h = heads_[ci];
      Lit* lits = arena_.data() + h.offset;
      std::uint32_t nonfalse = 0;
      for (std::uint32_t k = 0; k < h.size && nonfalse < 2; ++k) {
        if (!value_false(lits[k])) std::swap(lits[nonfalse++], lits[k]);
      }
      MPS_ASSERT(nonfalse > 0);  // a falsified clause would have ended the search
      if (nonfalse == 1 && unassigned(lits[0])) {
        const bool ok = enqueue(lits[0], kNoClause);
        MPS_ASSERT(ok);
      }
      watches_[lits[0].x].push_back({ci, lits[1]});
      watches_[lits[1].x].push_back({ci, lits[0]});
    }
    qhead_ = 0;  // replay level-0 propagation against the rebuilt watches
  }

  bool should_stop(const util::Timer& timer) const {
    if (opts_.interrupt != nullptr && opts_.interrupt->load(std::memory_order_relaxed)) {
      return true;
    }
    if (opts_.time_limit_s > 0 && timer.seconds() > opts_.time_limit_s) return true;
    if (opts_.deadline != std::chrono::steady_clock::time_point{} &&
        std::chrono::steady_clock::now() > opts_.deadline) {
      return true;
    }
    return false;
  }

  /// Flip every true variable that no problem clause needs to FALSE, in
  /// ascending variable order — deterministic.  Phase saving finds models
  /// shaped by the search trajectory; the DPLL reference's FALSE-first
  /// branching finds mostly-false ones, and downstream consumers are
  /// sensitive to that shape: the encoding decoders drop constant columns,
  /// and the Lavagno baseline inserts one state signal per non-constant
  /// decoded column, so gratuitous true assignments become gratuitous
  /// inserted signals and blow up the expanded state graph (observed: mr0
  /// Lavagno 2,210 → 14,748 states and a LIMIT before this pass).  One
  /// sweep over the problem clauses restores the mostly-false shape
  /// without constraining the search that found the model.
  void shrink_model_toward_false() {
    const auto& clauses = cnf_.clauses();
    std::vector<std::uint32_t> true_count(clauses.size(), 0);
    std::vector<std::vector<std::uint32_t>> occ(2 * cnf_.num_vars());
    for (std::uint32_t ci = 0; ci < clauses.size(); ++ci) {
      for (const Lit l : clauses[ci]) {
        occ[l.x].push_back(ci);
        if (value_true(l)) ++true_count[ci];
      }
    }
    for (Var v = 0; v < cnf_.num_vars(); ++v) {
      if (assign_[v] != 1) continue;
      const Lit pos = Lit::make(v, false);
      bool needed = false;
      for (const std::uint32_t ci : occ[pos.x]) {
        if (true_count[ci] < 2) {
          needed = true;
          break;
        }
      }
      if (needed) continue;
      assign_[v] = 0;
      for (const std::uint32_t ci : occ[pos.x]) --true_count[ci];
      for (const std::uint32_t ci : occ[Lit::make(v, true).x]) ++true_count[ci];
    }
  }

  Lit phased(Var v) const { return Lit::make(v, phase_[v] != 1); }

  Lit pick_branch() {
    for (;;) {
      const Var v = heap_.pop();
      if (v == kNoVar) return Lit{};
      if (assign_[v] == kUnassignedValue) return phased(v);
    }
  }

  Outcome search(const util::Timer& timer) {
    std::int64_t restart_budget =
        opts_.restart_interval > 0 ? opts_.restart_interval * luby(0) : 0;
    std::int64_t conflicts_since_restart = 0;
    std::int64_t luby_index = 0;
    std::vector<Lit> learnt;

    for (;;) {
      const std::uint32_t confl = propagate();
      if (confl != kNoClause) {
        ++conflicts_;
        ++conflicts_since_restart;
        if (current_level() == 0) return Outcome::Unsat;
        if (opts_.max_backtracks >= 0 && conflicts_ > opts_.max_backtracks) {
          return Outcome::Limit;
        }
        if ((conflicts_ & 255) == 0 && should_stop(timer)) return Outcome::Limit;

        int blevel = 0;
        std::uint32_t lbd = 0;
        analyze(confl, &learnt, &blevel, &lbd);
        backjump_to(blevel);
        ++backtracks_;
        if (learnt.size() == 1) {
          MPS_ASSERT(blevel == 0);
          const bool ok = enqueue(learnt[0], kNoClause);
          MPS_ASSERT(ok);
        } else {
          const std::uint32_t ci = add_clause(learnt.data(), learnt.size(), true, lbd);
          const bool ok = enqueue(learnt[0], ci);
          MPS_ASSERT(ok);
        }
        ++learned_total_;
        var_inc_ *= (1.0 / 0.95);  // EVSIDS: decay by inflating the increment
        continue;
      }
      if ((decisions_ & 127) == 0 && should_stop(timer)) return Outcome::Limit;
      // Restart / clause-DB reduction only at quiescence: reduce_db() needs
      // the level-0 assignment closed under propagation to restore the watch
      // invariant during the arena rebuild.
      const bool restart_due =
          opts_.restart_interval > 0 && conflicts_since_restart >= restart_budget;
      const bool reduce_due =
          static_cast<std::int64_t>(learned_idx_.size()) >= reduce_budget_;
      if (restart_due || reduce_due) {
        backjump_to(0);
        if (reduce_due) {
          reduce_db();
          reduce_budget_ = saturating_double(reduce_budget_);
        }
        if (restart_due) {
          ++restarts_;
          ++luby_index;
          conflicts_since_restart = 0;
          restart_budget = opts_.restart_interval * luby(luby_index);
        }
        continue;  // replay propagation against the rebuilt watches
      }
      const Lit branch = pick_branch();
      if (!branch.valid()) return Outcome::Sat;  // total assignment, all clauses satisfied
      ++decisions_;
      if (opts_.decision_log != nullptr) opts_.decision_log->push_back(branch);
      trail_lim_.push_back(trail_.size());
      const bool ok = enqueue(branch, kNoClause);
      MPS_ASSERT(ok);
    }
  }

  /// EVSIDS order: higher activity first, lower var id on ties.
  struct Order {
    const Cdcl* self;
    bool operator()(Var a, Var b) const {
      return self->activity_[a] > self->activity_[b] ||
             (self->activity_[a] == self->activity_[b] && a < b);
    }
  };

  const Cnf& cnf_;
  const SolveOptions& opts_;
  bool trivially_unsat_ = false;

  std::vector<Lit> arena_;
  std::vector<Head> heads_;
  std::uint32_t num_problem_clauses_ = 0;
  std::vector<std::uint32_t> learned_idx_;  // indices of stored learned clauses
  std::vector<std::vector<Watch>> watches_;  // indexed by Lit.x

  std::vector<std::int8_t> assign_;
  std::vector<std::int32_t> level_;
  std::vector<std::uint32_t> reason_;
  std::vector<std::int8_t> phase_;  // saved polarity per var (0 initial)
  std::vector<std::int8_t> seen_;   // analyze() scratch marks
  std::vector<Var> analyze_clear_;  // vars whose seen_ mark analyze() must wipe
  std::vector<Lit> trail_;
  std::vector<std::size_t> trail_lim_;  // trail length at each decision level
  std::size_t qhead_ = 0;

  std::vector<double> activity_;
  double var_inc_ = 1.0;
  VarHeap<Order> heap_;

  std::vector<std::uint64_t> lbd_stamp_;  // per-level stamps for LBD counting
  std::uint64_t lbd_stamp_counter_ = 0;

  std::int64_t reduce_budget_ = 2000;
  std::int64_t reductions_ = 0;

  std::int64_t decisions_ = 0;
  std::int64_t backtracks_ = 0;
  std::int64_t conflicts_ = 0;
  std::int64_t propagations_ = 0;
  std::int64_t restarts_ = 0;
  std::int64_t learned_total_ = 0;
};

}  // namespace

Outcome solve_cdcl(const Cnf& cnf, Model* model, SolveStats* stats, const SolveOptions& opts) {
  return Cdcl(cnf, opts).run(model, stats);
}

}  // namespace mps::sat

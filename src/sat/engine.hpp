// Engine-shared SAT substrate: the contiguous clause arena layout, the
// blocker-carrying watch entry, and the lazy variable-order max-heap that
// both search loops (the DPLL reference in solver.cpp and the CDCL engine
// in cdcl.cpp) are built on.  Header-only; everything here is layout and
// mechanism — policy (when to bump, what key to order by, how to restart)
// stays with the engines.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "sat/cnf.hpp"

namespace mps::sat {

constexpr std::int8_t kUnassignedValue = -1;
constexpr std::uint32_t kNoClause = 0xFFFFFFFFu;

/// Clause `ci` is arena[offset .. offset+size).
struct ClauseHead {
  std::uint32_t offset;
  std::uint32_t size;
};

/// One watch-list entry: clause index plus a cached literal of that clause
/// (the other watched literal at the time the entry was written); a true
/// blocker lets the propagator skip the normalize-and-scan protocol.
struct Watch {
  std::uint32_t clause;
  Lit blocker;
};

/// Double `v` without wrapping: geometric escalation budgets (restart
/// intervals, clause-DB caps) double on every trigger, and a long-running
/// search would eventually overflow int64 — signed overflow is UB, and even
/// the two's-complement wrap would turn the budget negative, making every
/// subsequent comparison fire.  Saturates at int64 max instead, which
/// behaves as "never again".
inline std::int64_t saturating_double(std::int64_t v) {
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  return v > kMax / 2 ? kMax : v * 2;
}

/// Lazy binary max-heap over candidate branch variables under a strict
/// total order supplied by the engine ("ranks higher" predicate; both
/// engines tie-break on the lowest variable id, which makes the order total
/// and the root the unique maximum).  Assigned variables are popped and
/// dropped lazily; the engine re-inserts on unassignment.  Key increases
/// percolate up via increased(); whole-key rescales rebuild with rebuild().
template <class Before>
class VarHeap {
 public:
  explicit VarHeap(Before before) : before_(before) {}

  /// Fill with every variable in [0, n) and heapify.
  void build(std::size_t n) {
    heap_.resize(n);
    pos_.assign(n, -1);
    for (Var v = 0; v < n; ++v) heap_[v] = v;
    for (std::size_t i = n; i-- > 0;) sift_down(i);
  }

  void insert(Var v) {
    if (pos_[v] >= 0) return;
    heap_.push_back(v);
    sift_up(heap_.size() - 1);
  }

  bool contains(Var v) const { return pos_[v] >= 0; }

  /// Restore heap order after the key of `v` increased (activity bump).
  void increased(Var v) {
    if (pos_[v] >= 0) sift_up(static_cast<std::size_t>(pos_[v]));
  }

  /// Restore the heap invariant wholesale (after a non-uniform rescale).
  void rebuild() {
    for (std::size_t i = heap_.size(); i-- > 0;) sift_down(i);
  }

  /// Pop the maximum-order variable, or kNoVar if the heap is empty.
  Var pop() {
    if (heap_.empty()) return kNoVar;
    const Var top = heap_[0];
    pos_[top] = -1;
    const Var last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      heap_[0] = last;
      pos_[last] = 0;
      sift_down(0);
    }
    return top;
  }

 private:
  void sift_up(std::size_t i) {
    const Var v = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!before_(v, heap_[parent])) break;
      heap_[i] = heap_[parent];
      pos_[heap_[i]] = static_cast<std::int32_t>(i);
      i = parent;
    }
    heap_[i] = v;
    pos_[v] = static_cast<std::int32_t>(i);
  }

  void sift_down(std::size_t i) {
    const Var v = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && before_(heap_[child + 1], heap_[child])) ++child;
      if (!before_(heap_[child], v)) break;
      heap_[i] = heap_[child];
      pos_[heap_[i]] = static_cast<std::int32_t>(i);
      i = child;
    }
    heap_[i] = v;
    pos_[v] = static_cast<std::int32_t>(i);
  }

  Before before_;
  std::vector<Var> heap_;           // binary max-heap of candidate branch vars
  std::vector<std::int32_t> pos_;   // var -> index in heap_, -1 if absent
};

}  // namespace mps::sat

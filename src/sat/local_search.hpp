// WalkSAT/GSAT-style stochastic local search — the SAT algorithm family of
// the paper's second author (Gu, "Local search for satisfiability", IEEE
// TSMC 1993, cited as [4]).  Used as an alternative back-end for the
// modular formulas and in the ablation bench; incomplete (cannot prove
// UNSAT), so partition_sat() only uses it with a DPLL fallback.
#pragma once

#include <cstdint>

#include "sat/cnf.hpp"

namespace mps::sat {

struct LocalSearchOptions {
  std::uint64_t seed = 1;
  std::int64_t max_flips = 100000;   ///< per try
  int max_tries = 10;                ///< random restarts
  double noise = 0.5;                ///< WalkSAT noise parameter
};

struct LocalSearchStats {
  std::int64_t flips = 0;
  int tries = 0;
  double seconds = 0.0;
};

/// Returns true and fills `*model` if a satisfying assignment was found
/// within the limits; false means "don't know".
bool walksat(const Cnf& cnf, Model* model, LocalSearchStats* stats = nullptr,
             const LocalSearchOptions& opts = {});

}  // namespace mps::sat

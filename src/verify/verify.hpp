// End-to-end verification of synthesis results: structural consistency,
// CSC, semi-modularity, and exact (BDD-checked) correspondence between the
// minimized covers and the state graph's next-state functions.  Used by
// integration tests and by the examples to demonstrate that results are
// checked, not assumed.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "logic/cover.hpp"
#include "sg/state_graph.hpp"

namespace mps::verify {

struct Report {
  bool codes_consistent = false;  ///< consistent state assignment along edges
  bool csc_satisfied = false;     ///< no CSC conflicts
  bool semi_modular = false;      ///< no non-input transition ever disabled
  bool covers_valid = false;      ///< covers hit all ON / avoid all OFF minterms
  bool covers_exact = false;      ///< BDD check: ON ⊆ cover ⊆ ¬OFF
  /// Gate level: the complex-gate netlist built from the covers conforms
  /// to the graph and is hazard-free under unbounded gate delays
  /// (netlist::verify_speed_independence).  True when the cover checks are
  /// skipped (empty `covers`).
  bool circuit_ok = false;
  std::vector<std::string> issues;

  bool ok() const {
    return codes_consistent && csc_satisfied && semi_modular && covers_valid &&
           covers_exact && circuit_ok;
  }
};

/// Verify a (final, expanded) state graph and the covers synthesized from
/// it.  `covers` must contain one entry per non-input signal, named to
/// match the graph's signal names (order free); pass an empty vector to
/// skip the cover checks (they then report true).
Report verify_synthesis(const sg::StateGraph& g,
                        const std::vector<std::pair<std::string, logic::Cover>>& covers);

/// Check that the expanded graph simulates the original: every original
/// edge is matched (modulo inserted-signal interleavings) from every
/// expanded state mapping to its source, and every non-inserted expanded
/// edge projects to an original edge.
bool expansion_simulates(const sg::StateGraph& original, const sg::StateGraph& expanded,
                         const std::vector<sg::StateId>& origin);

}  // namespace mps::verify

#include "verify/verify.hpp"

#include <algorithm>
#include <deque>

#include "bdd/csc_bdd.hpp"
#include "logic/extract.hpp"
#include "logic/minimize.hpp"
#include "netlist/build.hpp"
#include "netlist/verify_si.hpp"
#include "sg/csc.hpp"
#include "sg/expand.hpp"
#include "util/text.hpp"

namespace mps::verify {

namespace {

bool check_codes(const sg::StateGraph& g, std::vector<std::string>* issues) {
  bool ok = true;
  for (sg::StateId s = 0; s < g.num_states(); ++s) {
    for (const sg::Edge& e : g.out(s)) {
      if (e.is_silent()) {
        if (!(g.code(s) == g.code(e.to))) {
          issues->push_back(util::format("silent edge %u->%u changes the code", s, e.to));
          ok = false;
        }
        continue;
      }
      const util::BitVec diff = g.code(s) ^ g.code(e.to);
      if (diff.count() != 1 || !diff.test(e.sig) || g.value(s, e.sig) != !e.rise) {
        issues->push_back(util::format("edge %u->%u violates consistent assignment on %s", s,
                                       e.to, g.signal(e.sig).name.c_str()));
        ok = false;
      }
    }
  }
  return ok;
}

}  // namespace

Report verify_synthesis(const sg::StateGraph& g,
                        const std::vector<std::pair<std::string, logic::Cover>>& covers) {
  Report report;
  report.codes_consistent = check_codes(g, &report.issues);

  const auto analysis = sg::analyze_csc(g);
  report.csc_satisfied = analysis.satisfied();
  if (!report.csc_satisfied) {
    report.issues.push_back(util::format("%zu CSC conflict pairs remain",
                                         analysis.conflicts.size()));
  }

  const auto violations = sg::semi_modularity_violations(g, /*allow_input_choice=*/true);
  report.semi_modular = violations.empty();
  for (const auto& [state, sig] : violations) {
    report.issues.push_back(util::format("signal %s disabled entering state %u",
                                         g.signal(sig).name.c_str(), state));
  }

  if (covers.empty()) {
    report.covers_valid = true;
    report.covers_exact = true;
    report.circuit_ok = true;
    return report;
  }
  if (!report.csc_satisfied) {
    // Specs are not well defined under CSC conflicts; report and stop.
    report.covers_valid = false;
    report.covers_exact = false;
    report.circuit_ok = false;
    return report;
  }

  report.covers_valid = true;
  report.covers_exact = true;
  bdd::Manager mgr(g.num_signals());
  for (sg::SignalId s = 0; s < g.num_signals(); ++s) {
    if (g.is_input(s)) continue;
    const auto it =
        std::find_if(covers.begin(), covers.end(),
                     [&](const auto& entry) { return entry.first == g.signal(s).name; });
    if (it == covers.end()) {
      report.issues.push_back("missing cover for signal " + g.signal(s).name);
      report.covers_valid = false;
      report.covers_exact = false;
      continue;
    }
    const logic::SopSpec spec = logic::extract_next_state(g, s);
    if (!logic::cover_is_valid(spec, it->second)) {
      report.issues.push_back("cover of " + g.signal(s).name + " violates its ON/OFF spec");
      report.covers_valid = false;
    }
    if (!bdd::cover_matches_spec(mgr, spec, it->second)) {
      report.issues.push_back("BDD mismatch for cover of " + g.signal(s).name);
      report.covers_exact = false;
    }
  }

  // Gate level: materialize the complex-gate netlist and check it under
  // the unbounded-delay model against the graph it was read off.
  try {
    const netlist::Netlist circuit = netlist::build_netlist(g, covers);
    const netlist::SiResult si = netlist::verify_speed_independence(circuit, g);
    report.circuit_ok = si.ok();
    for (const auto& issue : si.issues) report.issues.push_back("circuit: " + issue);
  } catch (const util::Error& e) {
    report.circuit_ok = false;
    report.issues.push_back(std::string("circuit: ") + e.what());
  }
  return report;
}

bool expansion_simulates(const sg::StateGraph& original, const sg::StateGraph& expanded,
                         const std::vector<sg::StateId>& origin) {
  if (origin.size() != expanded.num_states()) return false;
  const std::size_t n_orig = original.num_signals();

  // Backward: every original-signal edge of the expansion projects to an
  // original edge.
  for (sg::StateId es = 0; es < expanded.num_states(); ++es) {
    for (const sg::Edge& e : expanded.out(es)) {
      if (e.is_silent() || e.sig >= n_orig) continue;
      const sg::StateId from = origin[es];
      const sg::StateId to = origin[e.to];
      bool found = false;
      for (const sg::Edge& oe : original.out(from)) {
        if (!oe.is_silent() && oe.sig == e.sig && oe.rise == e.rise && oe.to == to) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
  }

  // Forward: from every expanded state, every original edge of its origin
  // is reachable through inserted-signal transitions alone.
  for (sg::StateId es = 0; es < expanded.num_states(); ++es) {
    const sg::StateId o = origin[es];
    for (const sg::Edge& oe : original.out(o)) {
      if (oe.is_silent()) continue;
      bool matched = false;
      std::deque<sg::StateId> frontier{es};
      std::vector<bool> seen(expanded.num_states(), false);
      seen[es] = true;
      while (!frontier.empty() && !matched) {
        const sg::StateId cur = frontier.front();
        frontier.pop_front();
        for (const sg::Edge& e : expanded.out(cur)) {
          if (e.sig == oe.sig && e.rise == oe.rise && origin[e.to] == oe.to) {
            matched = true;
            break;
          }
          if (e.sig >= n_orig && !seen[e.to]) {  // inserted-signal step
            seen[e.to] = true;
            frontier.push_back(e.to);
          }
        }
      }
      if (!matched) return false;
    }
  }
  return true;
}

}  // namespace mps::verify

#include "encoding/csc_sat.hpp"

#include <algorithm>

#include "sg/csc.hpp"
#include "util/common.hpp"

namespace mps::encoding {

namespace {

using sg::V4;

/// Footnote-2 boolean encoding of a four-valued assignment.
bool bit_a(V4 v) { return v == V4::Up || v == V4::Down; }
bool bit_b(V4 v) { return v == V4::One || v == V4::Down; }

constexpr V4 kAll[] = {V4::Zero, V4::One, V4::Up, V4::Down};

}  // namespace

Encoding::Encoding(const sg::StateGraph& g, std::size_t num_new_signals,
                   std::vector<std::pair<sg::StateId, sg::StateId>> conflicts,
                   std::vector<std::pair<sg::StateId, sg::StateId>> compatible_pairs,
                   const EncodeOptions& opts)
    : num_states_(g.num_states()), m_(num_new_signals), opts_(opts) {
  MPS_ASSERT(m_ >= 1);
  cnf_.new_vars(num_core_vars());
  encode_edge_coherence(g);
  encode_diamond_semimodularity(g);
  encode_compatibility(compatible_pairs);
  std::vector<std::pair<sg::StateId, sg::StateId>> pairs = std::move(conflicts);
  if (opts_.enforce_usc) {
    // Full unique state coding: separate every code-equal pair.
    for (const auto& cls : sg::code_classes(g)) {
      for (std::size_t i = 0; i < cls.size(); ++i) {
        for (std::size_t j = i + 1; j < cls.size(); ++j) {
          pairs.emplace_back(cls[i], cls[j]);
        }
      }
    }
    std::sort(pairs.begin(), pairs.end());
    pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  }
  encode_separation(pairs);
}

void Encoding::encode_edge_coherence(const sg::StateGraph& g) {
  for (sg::StateId s = 0; s < g.num_states(); ++s) {
    for (const sg::Edge& e : g.out(s)) {
      const bool input_edge = !e.is_silent() && g.is_input(e.sig);
      for (std::size_t k = 0; k < m_; ++k) {
        for (const V4 v : kAll) {
          for (const V4 w : kAll) {
            bool forbidden = !sg::edge_pair_allowed(v, w);
            if (!forbidden && opts_.input_properness && input_edge) {
              // The environment does not wait for internal signals: an
              // inserted transition may not fire "inside" an input edge.
              forbidden = (v == V4::Up && w == V4::One) || (v == V4::Down && w == V4::Zero);
            }
            if (!forbidden) continue;
            cnf_.add_clause({sat::Lit::make(var_a(s, k), bit_a(v)),
                             sat::Lit::make(var_b(s, k), bit_b(v)),
                             sat::Lit::make(var_a(e.to, k), bit_a(w)),
                             sat::Lit::make(var_b(e.to, k), bit_b(w))});
          }
        }
      }
    }
  }
}

void Encoding::encode_diamond_semimodularity(const sg::StateGraph& g) {
  // Semi-modularity across concurrency diamonds (the c2·N_ct term of the
  // §2.1 size model).  For a diamond  M --t--> A,  M --u--> B,  B --t--> C:
  // if t is enabled in phase p of M (entry_phase_ok(v_A, p)) and u fires
  // (phase-preserving, possible iff entry_phase_ok(v_B, p)), then t must
  // still be enabled: entry_phase_ok(v_C, p).  Encoded per phase:
  //   p = 1:  entry_ok(v,1) = (a ∨ b)   (v ≠ 0)
  //   p = 0:  entry_ok(v,0) = (a ∨ ¬b)  (v ≠ 1)
  // forbid  entry_ok(A,p) ∧ entry_ok(B,p) ∧ ¬entry_ok(C,p)  → 4 clauses
  // per phase per diamond per signal.
  for (sg::StateId m = 0; m < g.num_states(); ++m) {
    const auto& edges = g.out(m);
    for (const sg::Edge& t : edges) {
      if (t.is_silent()) continue;
      for (const sg::Edge& u : edges) {
        if (u.is_silent() || (u.sig == t.sig && u.rise == t.rise)) continue;
        for (const sg::Edge& t2 : g.out(u.to)) {
          if (t2.is_silent() || t2.sig != t.sig || t2.rise != t.rise) continue;
          const sg::StateId a = t.to;
          const sg::StateId b = u.to;
          const sg::StateId c = t2.to;
          for (std::size_t k = 0; k < m_; ++k) {
            for (const bool p : {false, true}) {
              // ¬entry_ok(X, p) = ¬a_X ∧ (p ? ¬b_X : b_X)
              const sat::Lit a_lits[2] = {sat::neg(var_a(a, k)),
                                          sat::Lit::make(var_b(a, k), p)};
              const sat::Lit b_lits[2] = {sat::neg(var_a(b, k)),
                                          sat::Lit::make(var_b(b, k), p)};
              const sat::Lit c_entry_a = sat::pos(var_a(c, k));
              const sat::Lit c_entry_b = sat::Lit::make(var_b(c, k), !p);
              for (const sat::Lit la : a_lits) {
                for (const sat::Lit lb : b_lits) {
                  cnf_.add_clause({la, lb, c_entry_a, c_entry_b});
                }
              }
            }
          }
        }
      }
    }
  }
}

void Encoding::encode_compatibility(
    const std::vector<std::pair<sg::StateId, sg::StateId>>& pairs) {
  // A code-equal pair with identical behaviour stays legal only if, for
  // every new signal, the values *match* (no new-signal excitation visible
  // on one side only) — OR some new signal separates the pair outright
  // (then the codes no longer collide and any mismatch is harmless).
  // Mismatched value pairs (one side excited, other stable/opposite):
  // (Up,0), (Down,1), (Up,Down) and mirrors — 6 ordered pairs, c3 = 6.
  //
  // Encoded with one "separates" auxiliary per (pair, signal):
  //   sep_k  ->  ¬a_ik ∧ ¬a_jk ∧ (b_ik ∨ b_jk) ∧ (¬b_ik ∨ ¬b_jk)
  // and, per signal k and forbidden pattern P:
  //   ¬P(i,j,k) ∨ sep_1 ∨ ... ∨ sep_m
  // — 6·m conditional clauses per pair, the N_usc·c3^m term of the §2.1
  // size model in its polynomial (auxiliary-variable) form.
  static constexpr std::pair<V4, V4> kForbidden[] = {
      {V4::Up, V4::Zero},  {V4::Zero, V4::Up},   {V4::Down, V4::One},
      {V4::One, V4::Down}, {V4::Up, V4::Down},   {V4::Down, V4::Up},
  };
  for (const auto& [i, j] : pairs) {
    std::vector<sat::Lit> seps;
    for (std::size_t k = 0; k < m_; ++k) {
      const sat::Var d = cnf_.new_var();
      cnf_.add_clause({sat::neg(d), sat::neg(var_a(i, k))});
      cnf_.add_clause({sat::neg(d), sat::neg(var_a(j, k))});
      cnf_.add_clause({sat::neg(d), sat::pos(var_b(i, k)), sat::pos(var_b(j, k))});
      cnf_.add_clause({sat::neg(d), sat::neg(var_b(i, k)), sat::neg(var_b(j, k))});
      seps.push_back(sat::pos(d));
    }
    for (std::size_t k = 0; k < m_; ++k) {
      for (const auto& [v, w] : kForbidden) {
        std::vector<sat::Lit> clause{sat::Lit::make(var_a(i, k), bit_a(v)),
                                     sat::Lit::make(var_b(i, k), bit_b(v)),
                                     sat::Lit::make(var_a(j, k), bit_a(w)),
                                     sat::Lit::make(var_b(j, k), bit_b(w))};
        clause.insert(clause.end(), seps.begin(), seps.end());
        cnf_.add_clause(std::move(clause));
      }
    }
  }
}

void Encoding::encode_separation(const std::vector<std::pair<sg::StateId, sg::StateId>>& pairs) {
  for (const auto& [i, j] : pairs) {
    if (m_ <= opts_.naive_max_m) {
      add_pair_separation_naive(i, j);
    } else {
      add_pair_separation_tseitin(i, j);
    }
  }
}

void Encoding::add_pair_separation_naive(sg::StateId i, sg::StateId j) {
  // D = OR_k (¬a_ik ∧ ¬a_jk ∧ (b_ik ∨ b_jk) ∧ (¬b_ik ∨ ¬b_jk)):
  // signal k separates the pair iff both values are stable (a = 0) and the
  // b bits differ.  Distributing the conjunctions over the disjunction
  // yields 4^m clauses — the c4^m growth of the paper's size model.
  std::vector<sat::Lit> clause;
  // factor index f in 0..3 selects one conjunct of signal k's term.
  auto factor_lits = [&](std::size_t k, int f) -> std::vector<sat::Lit> {
    switch (f) {
      case 0: return {sat::neg(var_a(i, k))};
      case 1: return {sat::neg(var_a(j, k))};
      case 2: return {sat::pos(var_b(i, k)), sat::pos(var_b(j, k))};
      default: return {sat::neg(var_b(i, k)), sat::neg(var_b(j, k))};
    }
  };
  // Recursive distribution over the m signals.
  std::vector<int> choice(m_, 0);
  for (;;) {
    clause.clear();
    for (std::size_t k = 0; k < m_; ++k) {
      for (const sat::Lit l : factor_lits(k, choice[k])) clause.push_back(l);
    }
    cnf_.add_clause(clause);
    // Increment the mixed-radix counter.
    std::size_t k = 0;
    while (k < m_ && ++choice[k] == 4) {
      choice[k] = 0;
      ++k;
    }
    if (k == m_) break;
  }
}

void Encoding::add_pair_separation_tseitin(sg::StateId i, sg::StateId j) {
  std::vector<sat::Lit> any;
  for (std::size_t k = 0; k < m_; ++k) {
    const sat::Var d = cnf_.new_var();
    cnf_.add_clause({sat::neg(d), sat::neg(var_a(i, k))});
    cnf_.add_clause({sat::neg(d), sat::neg(var_a(j, k))});
    cnf_.add_clause({sat::neg(d), sat::pos(var_b(i, k)), sat::pos(var_b(j, k))});
    cnf_.add_clause({sat::neg(d), sat::neg(var_b(i, k)), sat::neg(var_b(j, k))});
    any.push_back(sat::pos(d));
  }
  cnf_.add_clause(any);
}

void Encoding::decode(const sat::Model& model, sg::Assignments* out,
                      const std::string& name_prefix) const {
  MPS_ASSERT(model.size() >= num_core_vars());
  MPS_ASSERT(out->num_states() == num_states_);
  for (std::size_t k = 0; k < m_; ++k) {
    std::vector<V4> values(num_states_);
    for (sg::StateId s = 0; s < num_states_; ++s) {
      const bool a = model[var_a(s, k)];
      const bool b = model[var_b(s, k)];
      values[s] = a ? (b ? V4::Down : V4::Up) : (b ? V4::One : V4::Zero);
    }
    out->add_signal(name_prefix + std::to_string(out->num_signals()), std::move(values));
  }
}

Encoding encode_csc(const sg::StateGraph& g, std::size_t num_new_signals,
                    const sg::Assignments* existing, const EncodeOptions& opts) {
  const auto analysis = sg::analyze_csc(g, existing);
  return Encoding(g, num_new_signals, analysis.conflicts, analysis.compatible_pairs, opts);
}

}  // namespace mps::encoding

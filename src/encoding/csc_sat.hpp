// The SAT model for CSC satisfaction (§2.1, after Vanbekbergen et al.,
// ICCAD'92).
//
// For a state graph with N states and m new state signals, every state Mi
// gets one four-valued variable per signal n_k, boolean-encoded in two bits
// (a, b) per the paper's footnote 2:
//     {a=0,b=0} = 0,  {a=0,b=1} = 1,  {a=1,b=0} = Up,  {a=1,b=1} = Down
// giving exactly 2·N·m variables.  Clauses enforce:
//   * edge coherence — along every SG edge the (value(from), value(to))
//     pair must be one of the eight allowed pairs (equal, or an excitation
//     boundary (0,Up),(Up,1),(1,Down),(Down,0)); this encodes both the
//     consistent-assignment and the semi-modularity constraints for the
//     inserted signals,
//   * diamond semi-modularity — across every concurrency diamond
//     (M --t--> A, M --u--> B, B --t--> C) the inserted signal's values
//     must not let u's firing disable t (the c2·N_ct clause term of the
//     paper's §2.1 size model),
//   * input properness (optional) — an inserted transition may not be
//     "absorbed" along an input edge ((Up,1) / (Down,0) forbidden when the
//     edge is an input transition), since the environment will not wait
//     for an internal signal,
//   * CSC separation — every conflicting state pair must get stable
//     complementary values on at least one new signal.
//
// Separation constraints can be emitted in two styles:
//   * naive product-of-sums distribution — c^m clauses per conflict pair,
//     the behaviour the paper's §2.1 size model (N_csc·c4^m) describes, or
//   * Tseitin auxiliaries — O(m) clauses per pair (used when m is large).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sat/cnf.hpp"
#include "sg/assignments.hpp"
#include "sg/state_graph.hpp"

namespace mps::encoding {

struct EncodeOptions {
  /// Forbid (Up,1)/(Down,0) across edges labelled by input signals, i.e.
  /// never let an inserted transition delay an input.  The paper (and the
  /// Vanbekbergen formulation it builds on) does NOT impose this — state
  /// signals may be ordered before environment transitions, assuming a
  /// cooperative environment — and several benchmarks are unsolvable with
  /// it, so it defaults off; bench/ablation measures its effect.
  bool input_properness = false;
  /// Largest m for which separation constraints use the naive c^m
  /// expansion; beyond this, Tseitin auxiliaries are introduced.
  std::size_t naive_max_m = 3;
  /// Also separate non-conflicting code-equal pairs (full USC) — used by
  /// the formula-size model bench; off in the synthesis flow.
  bool enforce_usc = false;
};

class Encoding {
 public:
  /// `conflicts` get separation constraints; `compatible_pairs` (code-equal
  /// pairs whose behaviour already matches) get compatibility constraints —
  /// the new signals must not turn them into fresh conflicts (6 forbidden
  /// value pairs, the N_usc·c3^m term).
  Encoding(const sg::StateGraph& g, std::size_t num_new_signals,
           std::vector<std::pair<sg::StateId, sg::StateId>> conflicts,
           std::vector<std::pair<sg::StateId, sg::StateId>> compatible_pairs = {},
           const EncodeOptions& opts = {});

  const sat::Cnf& cnf() const { return cnf_; }
  std::size_t num_new_signals() const { return m_; }
  /// Variables of the core model, 2·N·m (excludes Tseitin auxiliaries).
  std::size_t num_core_vars() const { return 2 * num_states_ * m_; }

  /// The (a, b) variable pair of state signal k in state s.
  sat::Var var_a(sg::StateId s, std::size_t k) const { return 2 * (s * m_ + k); }
  sat::Var var_b(sg::StateId s, std::size_t k) const { return 2 * (s * m_ + k) + 1; }

  /// Decode a model into per-state values for each new signal, appended to
  /// `out` (which must index the same graph) with generated names
  /// "<prefix>0", "<prefix>1", ...
  void decode(const sat::Model& model, sg::Assignments* out,
              const std::string& name_prefix) const;

 private:
  void encode_edge_coherence(const sg::StateGraph& g);
  void encode_diamond_semimodularity(const sg::StateGraph& g);
  void encode_separation(const std::vector<std::pair<sg::StateId, sg::StateId>>& pairs);
  void encode_compatibility(const std::vector<std::pair<sg::StateId, sg::StateId>>& pairs);
  void add_pair_separation_naive(sg::StateId i, sg::StateId j);
  void add_pair_separation_tseitin(sg::StateId i, sg::StateId j);

  sat::Cnf cnf_;
  std::size_t num_states_;
  std::size_t m_;
  EncodeOptions opts_;
};

/// Convenience: encode with the conflicts of a fresh CSC analysis.
Encoding encode_csc(const sg::StateGraph& g, std::size_t num_new_signals,
                    const sg::Assignments* existing = nullptr, const EncodeOptions& opts = {});

}  // namespace mps::encoding

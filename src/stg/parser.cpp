#include "stg/parser.hpp"

#include <fstream>
#include <limits>
#include <map>
#include <sstream>

#include "util/common.hpp"
#include "util/parse.hpp"
#include "util/text.hpp"

namespace mps::stg {

namespace {

struct ParsedTransitionToken {
  std::string signal;
  Polarity pol;
  int instance;
};

/// Try to interpret `tok` as a transition token ("a+", "b-/2", "c~", or a
/// bare dummy-signal name).  `is_dummy` reports whether a name is a
/// declared dummy signal.  Returns false if the token is not a transition.
template <typename IsSignal, typename IsDummy>
bool parse_transition_token(std::string_view tok, const IsSignal& is_signal,
                            const IsDummy& is_dummy, ParsedTransitionToken* out) {
  std::string_view body = tok;
  int instance = 0;
  if (const auto slash = body.rfind('/'); slash != std::string_view::npos) {
    const std::string_view idx = body.substr(slash + 1);
    if (idx.empty() || idx.size() > 9) return false;  // >9 digits would overflow int
    instance = 0;
    for (char c : idx) {
      if (c < '0' || c > '9') return false;
      instance = instance * 10 + (c - '0');
    }
    body = body.substr(0, slash);
  }
  if (body.empty()) return false;
  const char last = body.back();
  if (last == '+' || last == '-' || last == '~') {
    const std::string name(body.substr(0, body.size() - 1));
    if (!is_signal(name)) return false;
    out->signal = name;
    out->pol = last == '+' ? Polarity::Rise : last == '-' ? Polarity::Fall : Polarity::Toggle;
    out->instance = instance;
    return true;
  }
  // Bare name: a transition only if it names a dummy signal.
  const std::string name(body);
  if (!is_dummy(name)) return false;
  out->signal = name;
  out->pol = Polarity::Silent;
  out->instance = instance;
  return true;
}

class GParser {
 public:
  explicit GParser(std::string_view text) : text_(text) {}

  Stg run() {
    read_header_and_graph();
    finish_marking();
    stg_.validate();
    return std::move(stg_);
  }

 private:
  // Node = transition or explicit place, as referenced in .graph lines.
  struct Node {
    bool is_place;
    petri::TransId trans = petri::kNoId;
    petri::PlaceId place = petri::kNoId;
  };

  void read_header_and_graph() {
    std::istringstream in{std::string(text_)};
    std::string raw;
    bool in_graph = false;
    while (std::getline(in, raw)) {
      ++line_;
      std::string line = raw;
      if (const auto hash = line.find('#'); hash != std::string::npos) line.resize(hash);
      const auto view = util::trim(line);
      if (view.empty()) continue;
      auto toks = util::split_ws(view);
      const std::string& head = toks[0];
      if (head == ".model" || head == ".name") {
        if (toks.size() >= 2) stg_.set_name(toks[1]);
      } else if (head == ".inputs" || head == ".outputs" || head == ".internal" ||
                 head == ".dummy") {
        const SignalKind kind = head == ".inputs"    ? SignalKind::Input
                                : head == ".outputs" ? SignalKind::Output
                                : head == ".internal" ? SignalKind::Internal
                                                      : SignalKind::Dummy;
        for (std::size_t i = 1; i < toks.size(); ++i) stg_.add_signal(toks[i], kind);
      } else if (head == ".graph") {
        in_graph = true;
      } else if (head == ".marking") {
        parse_marking(std::string(view));
      } else if (head == ".initial") {
        parse_initial(toks);
      } else if (head == ".end") {
        break;
      } else if (head == ".capacity" || head == ".slowenv" || head == ".coords") {
        // Accepted-and-ignored extensions emitted by other tools.
      } else if (head[0] == '.') {
        throw util::ParseError("unknown directive: " + head, line_);
      } else {
        if (!in_graph) throw util::ParseError("arc line before .graph", line_);
        parse_arc_line(toks);
      }
    }
  }

  bool is_signal_name(const std::string& name) const {
    const SignalId s = stg_.find_signal(name);
    return s != kNoSignal && stg_.signal_kind(s) != SignalKind::Dummy;
  }
  bool is_dummy_name(const std::string& name) const {
    const SignalId s = stg_.find_signal(name);
    return s != kNoSignal && stg_.signal_kind(s) == SignalKind::Dummy;
  }

  Node resolve(const std::string& tok) {
    ParsedTransitionToken pt;
    const auto is_sig = [this](const std::string& n) { return is_signal_name(n); };
    const auto is_dum = [this](const std::string& n) { return is_dummy_name(n); };
    if (parse_transition_token(tok, is_sig, is_dum, &pt)) {
      const std::string key = tok;
      if (const auto it = transitions_.find(key); it != transitions_.end()) {
        return Node{false, it->second, petri::kNoId};
      }
      const SignalId sig = stg_.find_signal(pt.signal);
      const Label label = pt.pol == Polarity::Silent ? Label{sig, Polarity::Silent}
                                                     : Label{sig, pt.pol};
      const petri::TransId t = stg_.add_transition(label, pt.instance);
      transitions_.emplace(key, t);
      return Node{false, t, petri::kNoId};
    }
    // Explicit place.
    if (const auto it = places_.find(tok); it != places_.end()) {
      return Node{true, petri::kNoId, it->second};
    }
    const petri::PlaceId p = stg_.net().add_place(tok);
    places_.emplace(tok, p);
    return Node{true, petri::kNoId, p};
  }

  void parse_arc_line(const std::vector<std::string>& toks) {
    const Node src = resolve(toks[0]);
    for (std::size_t i = 1; i < toks.size(); ++i) {
      const Node dst = resolve(toks[i]);
      if (src.is_place && dst.is_place) {
        throw util::ParseError("arc between two places: " + toks[0] + " -> " + toks[i], line_);
      }
      if (src.is_place) {
        stg_.net().connect_pt(src.place, dst.trans);
      } else if (dst.is_place) {
        stg_.net().connect_tp(src.trans, dst.place);
      } else {
        // Transition -> transition: implicit place.
        const std::string pname = "<" + toks[0] + "," + toks[i] + ">";
        petri::PlaceId p;
        if (const auto it = places_.find(pname); it != places_.end()) {
          p = it->second;
        } else {
          p = stg_.net().add_place(pname);
          places_.emplace(pname, p);
        }
        stg_.net().connect_tp(src.trans, p);
        stg_.net().connect_pt(p, dst.trans);
      }
    }
  }

  void parse_marking(const std::string& line) {
    const auto open = line.find('{');
    const auto close = line.rfind('}');
    if (open == std::string::npos || close == std::string::npos || close < open) {
      throw util::ParseError(".marking must be of the form .marking { ... }", line_);
    }
    marking_body_ = line.substr(open + 1, close - open - 1);
    marking_line_ = line_;  // markings are resolved after .end; keep the line for errors
  }

  void parse_initial(const std::vector<std::string>& toks) {
    for (std::size_t i = 1; i < toks.size(); ++i) {
      const auto parts = util::split_on(toks[i], '=');
      if (parts.size() != 2 || (parts[1] != "0" && parts[1] != "1")) {
        throw util::ParseError(".initial entries must be name=0 or name=1", line_);
      }
      const SignalId s = stg_.find_signal(parts[0]);
      if (s == kNoSignal) throw util::ParseError("unknown signal in .initial: " + parts[0], line_);
      stg_.set_initial_value(s, parts[1] == "1");
    }
  }

  /// A "=count" token-count in the .marking body.  Must consume the whole
  /// string, fit in int, and be at least 1 (a zero or negative token count
  /// is meaningless).
  int parse_marking_count(const std::string& text) const {
    const auto v = util::parse_int(text, 1, std::numeric_limits<int>::max());
    if (!v.has_value()) {
      throw util::ParseError("bad token count in .marking: '=" + text +
                                 "' (expected a positive integer)",
                             marking_line_);
    }
    return static_cast<int>(*v);
  }

  /// Tokenize the marking body: "<a+,b->" is one token; "p1" and "p1=2" too.
  void finish_marking() {
    petri::Marking m(stg_.net().num_places());
    std::string body = marking_body_;
    std::size_t i = 0;
    while (i < body.size()) {
      while (i < body.size() && std::isspace(static_cast<unsigned char>(body[i]))) ++i;
      if (i >= body.size()) break;
      std::size_t j = i;
      if (body[i] == '<') {
        j = body.find('>', i);
        if (j == std::string::npos) {
          throw util::ParseError("unterminated <...> in .marking", marking_line_);
        }
        ++j;
      } else {
        while (j < body.size() && !std::isspace(static_cast<unsigned char>(body[j]))) ++j;
      }
      std::string tok = body.substr(i, j - i);
      // Optional "=count" suffix (also after ">").
      int count = 1;
      if (const auto eq = tok.rfind('='); eq != std::string::npos && tok[0] != '<') {
        count = parse_marking_count(tok.substr(eq + 1));
        tok.resize(eq);
      } else if (j < body.size() && body[j] == '=') {
        std::size_t k = j + 1;
        while (k < body.size() && std::isdigit(static_cast<unsigned char>(body[k]))) ++k;
        count = parse_marking_count(body.substr(j + 1, k - j - 1));
        j = k;
      }
      const auto it = places_.find(tok);
      if (it == places_.end()) {
        throw util::ParseError("marked place not found in graph: " + tok, marking_line_);
      }
      for (int k = 0; k < count; ++k) m.add_token(it->second);
      i = j;
    }
    stg_.set_initial_marking(std::move(m));
  }

  std::string_view text_;
  int line_ = 0;
  int marking_line_ = 0;
  Stg stg_;
  std::map<std::string, petri::TransId> transitions_;
  std::map<std::string, petri::PlaceId> places_;
  std::string marking_body_;
};

}  // namespace

Stg parse_g(std::string_view text) { return GParser(text).run(); }

Stg parse_g_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw util::Error("cannot open file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_g(ss.str());
}

}  // namespace mps::stg

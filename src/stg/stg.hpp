// Signal transition graphs (STGs).
//
// An STG interprets the transitions of a Petri net as rising (a+) / falling
// (a-) edges of circuit signals (§2).  Signals are partitioned into inputs
// (driven by the environment) and non-inputs (outputs and internal signals,
// to be implemented by the synthesized circuit).  Dummy (ε) transitions are
// supported: they fire without changing any signal.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "petri/net.hpp"

namespace mps::stg {

using SignalId = std::uint32_t;
inline constexpr SignalId kNoSignal = 0xFFFFFFFFu;

enum class Polarity : std::uint8_t {
  Rise,    ///< a+
  Fall,    ///< a-
  Toggle,  ///< a~  (either direction; direction resolved by the state graph)
  Silent,  ///< ε / dummy transition
};

enum class SignalKind : std::uint8_t {
  Input,     ///< driven by the environment
  Output,    ///< circuit output, visible to the environment
  Internal,  ///< circuit-internal (state signals inserted by synthesis are Internal)
  Dummy,     ///< carries no signal; its "transitions" are ε
};

/// The STG label of one net transition.
struct Label {
  SignalId sig = kNoSignal;
  Polarity pol = Polarity::Silent;

  bool is_silent() const { return pol == Polarity::Silent; }
  bool operator==(const Label&) const = default;
};

/// Render "a+", "b-", "c~" or "eps".
std::string label_to_string(const Label& label, const class Stg& stg);

class Stg {
 public:
  explicit Stg(std::string name = "stg") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // --- signals ---------------------------------------------------------
  SignalId add_signal(std::string name, SignalKind kind);
  std::size_t num_signals() const { return signals_.size(); }
  const std::string& signal_name(SignalId s) const { return signals_[s].name; }
  SignalKind signal_kind(SignalId s) const { return signals_[s].kind; }
  bool is_input(SignalId s) const { return signals_[s].kind == SignalKind::Input; }
  /// Non-input = output or internal (§2: S_NI).
  bool is_non_input(SignalId s) const {
    return signals_[s].kind == SignalKind::Output || signals_[s].kind == SignalKind::Internal;
  }
  /// Lookup by name; returns kNoSignal if absent.
  SignalId find_signal(std::string_view name) const;

  /// All non-input signal ids in id order.
  std::vector<SignalId> non_input_signals() const;
  std::vector<SignalId> output_signals() const;

  // --- transitions ------------------------------------------------------
  /// Add a labelled net transition.  `instance` distinguishes repeated
  /// transitions of the same signal edge (a+/1, a+/2 in .g syntax).
  petri::TransId add_transition(const Label& label, int instance = 0);
  const Label& label(petri::TransId t) const { return labels_[t]; }
  int instance(petri::TransId t) const { return instances_[t]; }
  /// All transitions labelled with signal `s` (any polarity).
  std::vector<petri::TransId> transitions_of(SignalId s) const;
  /// "a+/1"-style name.
  std::string transition_name(petri::TransId t) const;
  /// Find by signal/polarity/instance; nullopt if absent.
  std::optional<petri::TransId> find_transition(SignalId s, Polarity pol, int instance = 0) const;

  // --- net & marking ----------------------------------------------------
  petri::Net& net() { return net_; }
  const petri::Net& net() const { return net_; }
  const petri::Marking& initial_marking() const { return initial_; }
  void set_initial_marking(petri::Marking m) { initial_ = std::move(m); }

  /// Optional explicitly declared initial signal values ("name=0/1"); when a
  /// signal's value cannot be inferred from the behaviour (it never toggles,
  /// or the graph is acyclic), the state-graph builder consults this.
  void set_initial_value(SignalId s, bool value);
  std::optional<bool> initial_value(SignalId s) const;

  // --- structural queries -----------------------------------------------
  /// Immediate (trigger) input set of signal `o` (§3.2): signals with a
  /// direct causal arc  u* --(place)--> o*  in the STG.
  std::vector<SignalId> trigger_signals(SignalId o) const;

  /// Throws util::SemanticsError if: a signal has no transitions, a marked
  /// place count mismatch, or a transition references a dead signal slot.
  void validate() const;

 private:
  struct Signal {
    std::string name;
    SignalKind kind;
    std::optional<bool> initial_value;
  };

  std::string name_;
  petri::Net net_;
  std::vector<Label> labels_;     // per TransId
  std::vector<int> instances_;    // per TransId
  std::vector<Signal> signals_;
  petri::Marking initial_;
};

}  // namespace mps::stg

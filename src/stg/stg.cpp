#include "stg/stg.hpp"

#include <algorithm>

#include "util/common.hpp"

namespace mps::stg {

std::string label_to_string(const Label& label, const Stg& stg) {
  if (label.is_silent()) {
    return label.sig == kNoSignal ? "eps" : stg.signal_name(label.sig);
  }
  const char* suffix = label.pol == Polarity::Rise ? "+" : label.pol == Polarity::Fall ? "-" : "~";
  return stg.signal_name(label.sig) + suffix;
}

SignalId Stg::add_signal(std::string name, SignalKind kind) {
  if (find_signal(name) != kNoSignal) {
    throw util::SemanticsError("duplicate signal name: " + name);
  }
  signals_.push_back(Signal{std::move(name), kind, std::nullopt});
  return static_cast<SignalId>(signals_.size() - 1);
}

SignalId Stg::find_signal(std::string_view name) const {
  for (SignalId s = 0; s < signals_.size(); ++s) {
    if (signals_[s].name == name) return s;
  }
  return kNoSignal;
}

std::vector<SignalId> Stg::non_input_signals() const {
  std::vector<SignalId> out;
  for (SignalId s = 0; s < signals_.size(); ++s) {
    if (is_non_input(s)) out.push_back(s);
  }
  return out;
}

std::vector<SignalId> Stg::output_signals() const {
  std::vector<SignalId> out;
  for (SignalId s = 0; s < signals_.size(); ++s) {
    if (signals_[s].kind == SignalKind::Output) out.push_back(s);
  }
  return out;
}

petri::TransId Stg::add_transition(const Label& label, int instance) {
  MPS_ASSERT(label.sig == kNoSignal || label.sig < signals_.size());
  std::string name = "t" + std::to_string(net_.num_transitions());
  const petri::TransId t = net_.add_transition(std::move(name));
  labels_.push_back(label);
  instances_.push_back(instance);
  return t;
}

std::vector<petri::TransId> Stg::transitions_of(SignalId s) const {
  std::vector<petri::TransId> out;
  for (petri::TransId t = 0; t < labels_.size(); ++t) {
    if (labels_[t].sig == s) out.push_back(t);
  }
  return out;
}

std::string Stg::transition_name(petri::TransId t) const {
  std::string base = label_to_string(labels_[t], *this);
  if (instances_[t] != 0) base += "/" + std::to_string(instances_[t]);
  return base;
}

std::optional<petri::TransId> Stg::find_transition(SignalId s, Polarity pol, int instance) const {
  for (petri::TransId t = 0; t < labels_.size(); ++t) {
    if (labels_[t].sig == s && labels_[t].pol == pol && instances_[t] == instance) return t;
  }
  return std::nullopt;
}

void Stg::set_initial_value(SignalId s, bool value) {
  MPS_ASSERT(s < signals_.size());
  signals_[s].initial_value = value;
}

std::optional<bool> Stg::initial_value(SignalId s) const {
  MPS_ASSERT(s < signals_.size());
  return signals_[s].initial_value;
}

std::vector<SignalId> Stg::trigger_signals(SignalId o) const {
  std::vector<SignalId> out;
  for (petri::TransId t = 0; t < labels_.size(); ++t) {
    if (labels_[t].sig != o || labels_[t].is_silent()) continue;
    for (petri::PlaceId p : net_.trans_pre(t)) {
      for (petri::TransId u : net_.place_pre(p)) {
        const SignalId s = labels_[u].sig;
        if (s == kNoSignal || s == o || labels_[u].is_silent()) continue;
        if (std::find(out.begin(), out.end(), s) == out.end()) out.push_back(s);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Stg::validate() const {
  if (initial_.size() != net_.num_places()) {
    throw util::SemanticsError("initial marking size does not match place count in " + name_);
  }
  std::vector<bool> seen(signals_.size(), false);
  for (petri::TransId t = 0; t < labels_.size(); ++t) {
    const Label& l = labels_[t];
    if (l.sig != kNoSignal) {
      if (l.sig >= signals_.size()) throw util::SemanticsError("transition with bad signal id");
      seen[l.sig] = true;
      if (signals_[l.sig].kind == SignalKind::Dummy && !l.is_silent()) {
        throw util::SemanticsError("dummy signal used with a polarity: " + signals_[l.sig].name);
      }
    }
    if (net_.trans_pre(t).empty()) {
      throw util::SemanticsError("transition without fan-in place: " + transition_name(t));
    }
  }
  for (SignalId s = 0; s < signals_.size(); ++s) {
    if (!seen[s] && signals_[s].kind != SignalKind::Dummy) {
      throw util::SemanticsError("signal never appears in the graph: " + signals_[s].name);
    }
  }
}

}  // namespace mps::stg

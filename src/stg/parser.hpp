// Parser for the astg ".g" interchange format used by SIS / petrify /
// workcraft — the format the paper's benchmark suite (HP benchmarks,
// Chu's examples) is distributed in.
//
// Supported sections:
//   .model/.name NAME
//   .inputs/.outputs/.internal/.dummy  sig...
//   .graph            arc lines: SRC DST [DST...]
//   .marking { p <t,t'> p2=2 ... }
//   .initial a=0 b=1  (extension: explicit initial signal values)
//   .end
//
// Transition tokens are "a+", "a-", "a~", optionally with an instance
// index "a+/2".  Dummy-signal tokens are bare names.  Any other
// identifier is an explicit place.  Arcs between two transitions create
// an implicit place, rendered "<src,dst>" in .marking.
#pragma once

#include <string>
#include <string_view>

#include "stg/stg.hpp"

namespace mps::stg {

/// Parse .g text.  Throws util::ParseError on syntax errors and
/// util::SemanticsError on inconsistent declarations.
Stg parse_g(std::string_view text);

/// Parse a .g file from disk.
Stg parse_g_file(const std::string& path);

}  // namespace mps::stg

// A fluent builder for constructing STGs in C++ (used by tests, the
// benchmark suite and the random-STG generators).  Mirrors .g syntax:
//
//   auto stg = Builder("xyz")
//                  .inputs({"a"})
//                  .outputs({"x"})
//                  .arc("a+", "x+").arc("x+", "a-")
//                  .arc("a-", "x-").arc("x-", "a+")
//                  .token("x-", "a+")
//                  .build();
//
// Transition tokens use the same grammar as the parser ("a+", "b-/1", bare
// dummy names); unknown bare identifiers denote explicit places.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "stg/stg.hpp"

namespace mps::stg {

class Builder {
 public:
  explicit Builder(std::string name);

  Builder& inputs(std::initializer_list<const char*> names);
  Builder& outputs(std::initializer_list<const char*> names);
  Builder& internals(std::initializer_list<const char*> names);
  Builder& dummies(std::initializer_list<const char*> names);

  Builder& input(const std::string& name);
  Builder& output(const std::string& name);
  Builder& internal(const std::string& name);
  Builder& dummy(const std::string& name);

  /// Add an arc src -> dst (either end may be a transition or an explicit
  /// place; transition->transition arcs create an implicit place).
  Builder& arc(const std::string& src, const std::string& dst);

  /// Chain arcs: path("a+","b+","c-") == arc("a+","b+").arc("b+","c-").
  template <typename... Rest>
  Builder& path(const std::string& a, const std::string& b, Rest&&... rest) {
    arc(a, b);
    if constexpr (sizeof...(rest) > 0) return path(b, std::forward<Rest>(rest)...);
    return *this;
  }

  /// Put an initial token on the implicit place of arc src->dst.
  Builder& token(const std::string& src, const std::string& dst);
  /// Put `count` initial tokens on explicit place `name`.
  Builder& token_on(const std::string& place, int count = 1);

  /// Declare the initial value of a signal (needed only when inference
  /// from the behaviour is ambiguous).
  Builder& initial(const std::string& signal, bool value);

  /// Finalize; validates the STG.  The builder must not be reused.
  Stg build();

 private:
  // Arcs are recorded as token strings and materialized in build() so that
  // signals may be declared after their first use.
  struct Arc {
    std::string src, dst;
  };
  struct TokenReq {
    std::string src, dst;  // dst empty => explicit place `src` with `count`
    int count;
  };

  std::string name_;
  std::vector<std::pair<std::string, SignalKind>> signals_;
  std::vector<Arc> arcs_;
  std::vector<TokenReq> tokens_;
  std::vector<std::pair<std::string, bool>> initials_;
};

}  // namespace mps::stg

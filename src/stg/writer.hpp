// Serializer back to the .g format; parse_g(write_g(stg)) is an identity
// up to place naming (round-trip tested in tests/stg_test.cpp).
#pragma once

#include <string>

#include "stg/stg.hpp"

namespace mps::stg {

/// Render `stg` in .g syntax.  Implicit places (single fan-in, single
/// fan-out, name of the form "<src,dst>") are emitted as direct
/// transition-to-transition arcs; all other places are explicit.
std::string write_g(const Stg& stg);

}  // namespace mps::stg

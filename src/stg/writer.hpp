// Serializer back to the .g format; parse_g(write_g(stg)) is an identity
// up to place naming (round-trip tested in tests/stg_test.cpp).
#pragma once

#include <string>

#include "stg/stg.hpp"

namespace mps::stg {

/// Render `stg` in .g syntax.  Implicit places (single fan-in, single
/// fan-out, name of the form "<src,dst>") are emitted as direct
/// transition-to-transition arcs; all other places are explicit.
std::string write_g(const Stg& stg);

/// Canonical rendering for content addressing (svc::Cache keys): write_g
/// with the .graph section's lines and the .marking tokens sorted
/// lexicographically, so the text is invariant under the arc-line order of
/// the input that produced `stg` (plain write_g emits arcs in first-seen
/// parse order — stable only for an unchanged input file).  Signal
/// declaration order is semantically meaningful (it fixes signal ids and
/// hence cover/output order), so the .inputs/.outputs/.internal/.dummy and
/// .initial lines are NOT reordered.
std::string write_g_canonical(const Stg& stg);

}  // namespace mps::stg

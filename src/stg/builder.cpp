#include "stg/builder.hpp"

#include <sstream>

#include "stg/parser.hpp"

namespace mps::stg {

// The builder lowers to .g text and reuses the parser, so that builder
// programs and .g files have exactly the same token semantics.

Builder::Builder(std::string name) : name_(std::move(name)) {}

Builder& Builder::inputs(std::initializer_list<const char*> names) {
  for (const char* n : names) signals_.emplace_back(n, SignalKind::Input);
  return *this;
}
Builder& Builder::outputs(std::initializer_list<const char*> names) {
  for (const char* n : names) signals_.emplace_back(n, SignalKind::Output);
  return *this;
}
Builder& Builder::internals(std::initializer_list<const char*> names) {
  for (const char* n : names) signals_.emplace_back(n, SignalKind::Internal);
  return *this;
}
Builder& Builder::dummies(std::initializer_list<const char*> names) {
  for (const char* n : names) signals_.emplace_back(n, SignalKind::Dummy);
  return *this;
}
Builder& Builder::input(const std::string& name) {
  signals_.emplace_back(name, SignalKind::Input);
  return *this;
}
Builder& Builder::output(const std::string& name) {
  signals_.emplace_back(name, SignalKind::Output);
  return *this;
}
Builder& Builder::internal(const std::string& name) {
  signals_.emplace_back(name, SignalKind::Internal);
  return *this;
}
Builder& Builder::dummy(const std::string& name) {
  signals_.emplace_back(name, SignalKind::Dummy);
  return *this;
}

Builder& Builder::arc(const std::string& src, const std::string& dst) {
  arcs_.push_back({src, dst});
  return *this;
}

Builder& Builder::token(const std::string& src, const std::string& dst) {
  tokens_.push_back({src, dst, 1});
  return *this;
}

Builder& Builder::token_on(const std::string& place, int count) {
  tokens_.push_back({place, "", count});
  return *this;
}

Builder& Builder::initial(const std::string& signal, bool value) {
  initials_.emplace_back(signal, value);
  return *this;
}

Stg Builder::build() {
  std::ostringstream g;
  g << ".model " << name_ << '\n';
  const char* directives[] = {".inputs", ".outputs", ".internal", ".dummy"};
  for (int kind = 0; kind < 4; ++kind) {
    bool any = false;
    for (const auto& [name, k] : signals_) {
      if (static_cast<int>(k) == kind) {
        if (!any) g << directives[kind];
        g << ' ' << name;
        any = true;
      }
    }
    if (any) g << '\n';
  }
  g << ".graph\n";
  for (const auto& a : arcs_) g << a.src << ' ' << a.dst << '\n';
  g << ".marking {";
  for (const auto& t : tokens_) {
    if (t.dst.empty()) {
      g << ' ' << t.src;
      if (t.count != 1) g << '=' << t.count;
    } else {
      g << " <" << t.src << ',' << t.dst << '>';
    }
  }
  g << " }\n";
  if (!initials_.empty()) {
    g << ".initial";
    for (const auto& [sig, val] : initials_) g << ' ' << sig << '=' << (val ? '1' : '0');
    g << '\n';
  }
  g << ".end\n";
  return parse_g(g.str());
}

}  // namespace mps::stg

#include "stg/writer.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

namespace mps::stg {

namespace {

bool is_implicit(const Stg& stg, petri::PlaceId p) {
  const auto& net = stg.net();
  return !net.place_name(p).empty() && net.place_name(p).front() == '<' &&
         net.place_pre(p).size() == 1 && net.place_post(p).size() == 1;
}

void write_signal_list(std::ostringstream& out, const Stg& stg, SignalKind kind,
                       const char* directive) {
  bool any = false;
  for (SignalId s = 0; s < stg.num_signals(); ++s) {
    if (stg.signal_kind(s) == kind) {
      if (!any) out << directive;
      out << ' ' << stg.signal_name(s);
      any = true;
    }
  }
  if (any) out << '\n';
}

std::string render(const Stg& stg, bool canonical) {
  std::ostringstream out;
  const auto& net = stg.net();

  out << ".model " << stg.name() << '\n';
  write_signal_list(out, stg, SignalKind::Input, ".inputs");
  write_signal_list(out, stg, SignalKind::Output, ".outputs");
  write_signal_list(out, stg, SignalKind::Internal, ".internal");
  write_signal_list(out, stg, SignalKind::Dummy, ".dummy");

  out << ".graph\n";
  std::vector<std::string> graph_lines;
  // Arcs out of transitions: either a direct arc (via an implicit place) or
  // transition -> explicit place.
  for (petri::TransId t = 0; t < net.num_transitions(); ++t) {
    std::ostringstream line;
    bool any = false;
    std::vector<std::string> targets;
    for (petri::PlaceId p : net.trans_post(t)) {
      if (is_implicit(stg, p)) {
        targets.push_back(stg.transition_name(net.place_post(p)[0]));
      } else {
        targets.push_back(net.place_name(p));
      }
      any = true;
    }
    if (canonical) std::sort(targets.begin(), targets.end());
    for (const std::string& target : targets) line << ' ' << target;
    if (any) graph_lines.push_back(stg.transition_name(t) + line.str());
  }
  // Arcs out of explicit places.
  for (petri::PlaceId p = 0; p < net.num_places(); ++p) {
    if (is_implicit(stg, p) || net.place_post(p).empty()) continue;
    std::ostringstream line;
    line << net.place_name(p);
    std::vector<std::string> targets;
    for (petri::TransId t : net.place_post(p)) targets.push_back(stg.transition_name(t));
    if (canonical) std::sort(targets.begin(), targets.end());
    for (const std::string& target : targets) line << ' ' << target;
    graph_lines.push_back(line.str());
  }
  if (canonical) std::sort(graph_lines.begin(), graph_lines.end());
  for (const std::string& line : graph_lines) out << line << '\n';

  out << ".marking {";
  const auto& m = stg.initial_marking();
  std::vector<std::string> marking_tokens;
  for (petri::PlaceId p = 0; p < net.num_places(); ++p) {
    if (m.tokens(p) == 0) continue;
    std::ostringstream tok;
    if (is_implicit(stg, p)) {
      tok << '<' << stg.transition_name(net.place_pre(p)[0]) << ','
          << stg.transition_name(net.place_post(p)[0]) << '>';
    } else {
      tok << net.place_name(p);
    }
    if (m.tokens(p) > 1) tok << '=' << int{m.tokens(p)};
    marking_tokens.push_back(tok.str());
  }
  if (canonical) std::sort(marking_tokens.begin(), marking_tokens.end());
  for (const std::string& tok : marking_tokens) out << ' ' << tok;
  out << " }\n";

  bool any_initial = false;
  for (SignalId s = 0; s < stg.num_signals(); ++s) {
    if (stg.initial_value(s).has_value()) {
      if (!any_initial) out << ".initial";
      out << ' ' << stg.signal_name(s) << '=' << (*stg.initial_value(s) ? '1' : '0');
      any_initial = true;
    }
  }
  if (any_initial) out << '\n';

  out << ".end\n";
  return out.str();
}

}  // namespace

std::string write_g(const Stg& stg) { return render(stg, /*canonical=*/false); }

std::string write_g_canonical(const Stg& stg) { return render(stg, /*canonical=*/true); }

}  // namespace mps::stg

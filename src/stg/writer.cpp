#include "stg/writer.hpp"

#include <sstream>

namespace mps::stg {

namespace {

bool is_implicit(const Stg& stg, petri::PlaceId p) {
  const auto& net = stg.net();
  return !net.place_name(p).empty() && net.place_name(p).front() == '<' &&
         net.place_pre(p).size() == 1 && net.place_post(p).size() == 1;
}

void write_signal_list(std::ostringstream& out, const Stg& stg, SignalKind kind,
                       const char* directive) {
  bool any = false;
  for (SignalId s = 0; s < stg.num_signals(); ++s) {
    if (stg.signal_kind(s) == kind) {
      if (!any) out << directive;
      out << ' ' << stg.signal_name(s);
      any = true;
    }
  }
  if (any) out << '\n';
}

}  // namespace

std::string write_g(const Stg& stg) {
  std::ostringstream out;
  const auto& net = stg.net();

  out << ".model " << stg.name() << '\n';
  write_signal_list(out, stg, SignalKind::Input, ".inputs");
  write_signal_list(out, stg, SignalKind::Output, ".outputs");
  write_signal_list(out, stg, SignalKind::Internal, ".internal");
  write_signal_list(out, stg, SignalKind::Dummy, ".dummy");

  out << ".graph\n";
  // Arcs out of transitions: either a direct arc (via an implicit place) or
  // transition -> explicit place.
  for (petri::TransId t = 0; t < net.num_transitions(); ++t) {
    std::ostringstream line;
    bool any = false;
    for (petri::PlaceId p : net.trans_post(t)) {
      if (is_implicit(stg, p)) {
        line << ' ' << stg.transition_name(net.place_post(p)[0]);
      } else {
        line << ' ' << net.place_name(p);
      }
      any = true;
    }
    if (any) out << stg.transition_name(t) << line.str() << '\n';
  }
  // Arcs out of explicit places.
  for (petri::PlaceId p = 0; p < net.num_places(); ++p) {
    if (is_implicit(stg, p) || net.place_post(p).empty()) continue;
    out << net.place_name(p);
    for (petri::TransId t : net.place_post(p)) out << ' ' << stg.transition_name(t);
    out << '\n';
  }

  out << ".marking {";
  const auto& m = stg.initial_marking();
  for (petri::PlaceId p = 0; p < net.num_places(); ++p) {
    if (m.tokens(p) == 0) continue;
    out << ' ';
    if (is_implicit(stg, p)) {
      out << '<' << stg.transition_name(net.place_pre(p)[0]) << ','
          << stg.transition_name(net.place_post(p)[0]) << '>';
    } else {
      out << net.place_name(p);
    }
    if (m.tokens(p) > 1) out << '=' << int{m.tokens(p)};
  }
  out << " }\n";

  bool any_initial = false;
  for (SignalId s = 0; s < stg.num_signals(); ++s) {
    if (stg.initial_value(s).has_value()) {
      if (!any_initial) out << ".initial";
      out << ' ' << stg.signal_name(s) << '=' << (*stg.initial_value(s) ? '1' : '0');
      any_initial = true;
    }
  }
  if (any_initial) out << '\n';

  out << ".end\n";
  return out.str();
}

}  // namespace mps::stg

#include "util/text.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace mps::util {

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t j = i;
    while (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j]))) ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::vector<std::string> split_on(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

std::string pad(std::string_view s, int width) {
  const std::size_t w = static_cast<std::size_t>(width < 0 ? -width : width);
  std::string out(s);
  if (out.size() >= w) return out;
  const std::string fill(w - out.size(), ' ');
  return width < 0 ? fill + out : out + fill;
}

}  // namespace mps::util

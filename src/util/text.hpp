// Small text helpers shared by the .g / PLA / DIMACS parsers and the
// table-formatting code in bench/.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mps::util {

/// Split on any amount of whitespace; no empty tokens.
std::vector<std::string> split_ws(std::string_view s);

/// Split on a single character delimiter; keeps empty fields.
std::vector<std::string> split_on(std::string_view s, char delim);

/// Strip leading/trailing whitespace.
std::string_view trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Right-pad (positive width) or left-pad (negative) to |width| columns.
std::string pad(std::string_view s, int width);

}  // namespace mps::util

#include "util/parse.hpp"

#include <limits>

namespace mps::util {

std::optional<std::int64_t> parse_int(std::string_view text, std::int64_t min,
                                      std::int64_t max) {
  if (text.empty()) return std::nullopt;
  std::size_t i = 0;
  const bool negative = text[0] == '-';
  if (negative) {
    if (text.size() == 1) return std::nullopt;
    i = 1;
  }
  // Accumulate negated: INT64_MIN has no positive counterpart.
  std::int64_t value = 0;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') return std::nullopt;
    const std::int64_t digit = c - '0';
    if (value < (std::numeric_limits<std::int64_t>::min() + digit) / 10) {
      return std::nullopt;  // would overflow
    }
    value = value * 10 - digit;
  }
  if (!negative) {
    if (value == std::numeric_limits<std::int64_t>::min()) return std::nullopt;
    value = -value;
  }
  if (value < min || value > max) return std::nullopt;
  return value;
}

}  // namespace mps::util

#include "util/thread_pool.hpp"

#include <atomic>

#include "obs/obs.hpp"
#include "util/common.hpp"

namespace mps::util {

namespace {
/// Process-wide worker numbering: lanes from different pools (the table1
/// row pool, each synthesis call's module pool) stay distinguishable in a
/// trace even though every pool starts its own workers at 0.
std::atomic<int> g_worker_seq{0};
}  // namespace

unsigned ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads <= 1) return;
  workers_.reserve(num_threads - 1);
  for (unsigned i = 0; i + 1 < num_threads; ++i) {
    workers_.emplace_back([this](std::stop_token st) { worker_loop(st); });
  }
}

ThreadPool::~ThreadPool() {
  for (auto& w : workers_) w.request_stop();
  work_cv_.notify_all();
  // jthread joins on destruction.
}

void ThreadPool::drain_job(std::unique_lock<std::mutex>& lock) {
  while (next_index_ < job_size_) {
    const std::size_t i = next_index_++;
    ++in_flight_;
    const auto* fn = job_;
    lock.unlock();
    try {
      {
        // One span per claimed index: the per-lane "pool.task" slices are
        // what the utilization numbers in the stats output sum up.
        obs::Span span("pool.task");
        span.arg("index", static_cast<std::int64_t>(i));
        (*fn)(i);
      }
      lock.lock();
    } catch (...) {
      lock.lock();
      if (first_error_ == nullptr) first_error_ = std::current_exception();
      next_index_ = job_size_;  // abandon indices not yet started
    }
    --in_flight_;
  }
  if (in_flight_ == 0) done_cv_.notify_all();
}

void ThreadPool::worker_loop(std::stop_token st) {
  obs::set_thread_name(
      "worker-" + std::to_string(g_worker_seq.fetch_add(1, std::memory_order_relaxed)));
  std::unique_lock lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, st, [&] { return job_ != nullptr && next_index_ < job_size_; });
    if (st.stop_requested()) return;
    drain_job(lock);
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::unique_lock lock(mutex_);
  MPS_ASSERT(job_ == nullptr);  // no nesting on a pool with workers
  job_ = &fn;
  job_size_ = n;
  next_index_ = 0;
  in_flight_ = 0;
  first_error_ = nullptr;
  work_cv_.notify_all();
  drain_job(lock);  // the caller participates
  done_cv_.wait(lock, [&] { return in_flight_ == 0 && next_index_ >= job_size_; });
  job_ = nullptr;
  const std::exception_ptr err = first_error_;
  first_error_ = nullptr;
  lock.unlock();
  if (err != nullptr) std::rethrow_exception(err);
}

}  // namespace mps::util

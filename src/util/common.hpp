// Shared small utilities: error types, timing, deterministic RNG.
//
// Everything in the library throws mps::util::Error (or a subclass) on
// contract violations that depend on user input (malformed .g files,
// inconsistent STGs, resource limits).  Internal invariants use MPS_ASSERT,
// which is active in all build types: this is an EDA tool, a silently wrong
// circuit is worse than an abort.
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace mps::util {

/// Base class for all errors raised by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed textual input (.g / PLA / DIMACS parsing).
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line = 0)
      : Error(line > 0 ? "parse error at line " + std::to_string(line) + ": " + what
                       : "parse error: " + what),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_ = 0;
};

/// Input that parses but violates a semantic requirement
/// (e.g. an STG whose state graph has no consistent binary coding).
class SemanticsError : public Error {
 public:
  using Error::Error;
};

/// A configured resource limit (states, clauses, backtracks, seconds) was hit.
class LimitError : public Error {
 public:
  using Error::Error;
};

[[noreturn]] void assert_fail(const char* expr, const char* file, int line);

#define MPS_ASSERT(expr) \
  ((expr) ? (void)0 : ::mps::util::assert_fail(#expr, __FILE__, __LINE__))

/// Wall-clock stopwatch (steady clock).
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  void reset() { start_ = std::chrono::steady_clock::now(); }
  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Deterministic 64-bit PRNG (xoshiro256**): identical streams on every
/// platform, unlike std::mt19937_64 + distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    for (auto& word : s_) {
      seed += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    auto rotl = [](std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); };
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Bernoulli draw.
  bool chance(double p) { return uniform() < p; }

 private:
  std::uint64_t s_[4];
};

/// 64-bit FNV-1a, used by the hash tables in sg:: and bdd::.
inline std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace mps::util

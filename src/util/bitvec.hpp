// BitVec: a dynamically sized bit vector tuned for state-graph codes.
//
// State codes in this library are short (tens of bits) but are hashed and
// compared millions of times during reachability and CSC analysis, so the
// representation is a flat word array with no virtual dispatch and an
// explicit hash.  Unlike std::vector<bool> it exposes whole-word operations
// (popcount, find_first, subset tests) needed by the logic minimizer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace mps::util {

class BitVec {
 public:
  BitVec() = default;
  /// Construct with `size` bits, all set to `value`.
  explicit BitVec(std::size_t size, bool value = false);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool test(std::size_t i) const {
    MPS_ASSERT(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  bool operator[](std::size_t i) const { return test(i); }

  void set(std::size_t i, bool value = true) {
    MPS_ASSERT(i < size_);
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    if (value)
      words_[i >> 6] |= mask;
    else
      words_[i >> 6] &= ~mask;
  }
  void reset(std::size_t i) { set(i, false); }
  void flip(std::size_t i) {
    MPS_ASSERT(i < size_);
    words_[i >> 6] ^= std::uint64_t{1} << (i & 63);
  }

  void clear_all();
  void set_all();

  /// Append one bit at the end (grows size by 1).
  void push_back(bool value);

  /// Grow or shrink to `size` bits; new bits are zero.
  void resize(std::size_t size);

  /// Number of set bits.
  std::size_t count() const;

  /// Number of positions where *this and other differ (popcount of the XOR),
  /// computed word-wise with no temporary allocation.  Sizes must match.
  std::size_t count_diff(const BitVec& other) const;

  /// Index of the first set bit, or npos if none.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t find_first() const;
  /// Index of the first set bit strictly after `i`, or npos.
  std::size_t find_next(std::size_t i) const;

  /// True if every set bit of *this is also set in other (sizes must match).
  bool is_subset_of(const BitVec& other) const;
  /// True if *this and other share at least one set bit (sizes must match).
  bool intersects(const BitVec& other) const;

  BitVec& operator|=(const BitVec& other);
  BitVec& operator&=(const BitVec& other);
  BitVec& operator^=(const BitVec& other);
  /// this &= ~other
  BitVec& and_not(const BitVec& other);

  friend BitVec operator|(BitVec a, const BitVec& b) { return a |= b; }
  friend BitVec operator&(BitVec a, const BitVec& b) { return a &= b; }
  friend BitVec operator^(BitVec a, const BitVec& b) { return a ^= b; }

  bool operator==(const BitVec& other) const;
  bool operator!=(const BitVec& other) const { return !(*this == other); }

  std::uint64_t hash() const;

  /// Read-only word access (bit i lives in word i/64, bit i%64): lets hot
  /// loops apply masks word-wise without materializing BitVec temporaries.
  std::size_t num_words() const { return words_.size(); }
  std::uint64_t word(std::size_t wi) const { return words_[wi]; }

  /// "0101..." rendering, bit 0 first.
  std::string to_string() const;

 private:
  void trim();  // zero the unused high bits of the last word

  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

struct BitVecHash {
  std::size_t operator()(const BitVec& v) const { return static_cast<std::size_t>(v.hash()); }
};

}  // namespace mps::util

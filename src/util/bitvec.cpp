#include "util/bitvec.hpp"

#include <bit>
#include <cstdio>

namespace mps::util {

namespace {
constexpr std::size_t kWordBits = 64;
std::size_t words_for(std::size_t bits) { return (bits + kWordBits - 1) / kWordBits; }
}  // namespace

BitVec::BitVec(std::size_t size, bool value)
    : words_(words_for(size), value ? ~std::uint64_t{0} : 0), size_(size) {
  trim();
}

void BitVec::trim() {
  const std::size_t used = size_ & 63;
  if (used != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << used) - 1;
  }
}

void BitVec::clear_all() {
  for (auto& w : words_) w = 0;
}

void BitVec::set_all() {
  for (auto& w : words_) w = ~std::uint64_t{0};
  trim();
}

void BitVec::push_back(bool value) {
  if (size_ == words_.size() * kWordBits) words_.push_back(0);
  ++size_;
  set(size_ - 1, value);
}

void BitVec::resize(std::size_t size) {
  words_.resize(words_for(size), 0);
  size_ = size;
  trim();
}

std::size_t BitVec::count() const {
  std::size_t n = 0;
  for (auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

std::size_t BitVec::count_diff(const BitVec& other) const {
  MPS_ASSERT(size_ == other.size_);
  std::size_t n = 0;
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    n += static_cast<std::size_t>(std::popcount(words_[wi] ^ other.words_[wi]));
  }
  return n;
}

std::size_t BitVec::find_first() const {
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    if (words_[wi] != 0) {
      return wi * kWordBits + static_cast<std::size_t>(std::countr_zero(words_[wi]));
    }
  }
  return npos;
}

std::size_t BitVec::find_next(std::size_t i) const {
  ++i;
  if (i >= size_) return npos;
  std::size_t wi = i >> 6;
  std::uint64_t w = words_[wi] & (~std::uint64_t{0} << (i & 63));
  for (;;) {
    if (w != 0) return wi * kWordBits + static_cast<std::size_t>(std::countr_zero(w));
    if (++wi == words_.size()) return npos;
    w = words_[wi];
  }
}

bool BitVec::is_subset_of(const BitVec& other) const {
  MPS_ASSERT(size_ == other.size_);
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    if ((words_[wi] & ~other.words_[wi]) != 0) return false;
  }
  return true;
}

bool BitVec::intersects(const BitVec& other) const {
  MPS_ASSERT(size_ == other.size_);
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    if ((words_[wi] & other.words_[wi]) != 0) return true;
  }
  return false;
}

BitVec& BitVec::operator|=(const BitVec& other) {
  MPS_ASSERT(size_ == other.size_);
  for (std::size_t wi = 0; wi < words_.size(); ++wi) words_[wi] |= other.words_[wi];
  return *this;
}

BitVec& BitVec::operator&=(const BitVec& other) {
  MPS_ASSERT(size_ == other.size_);
  for (std::size_t wi = 0; wi < words_.size(); ++wi) words_[wi] &= other.words_[wi];
  return *this;
}

BitVec& BitVec::operator^=(const BitVec& other) {
  MPS_ASSERT(size_ == other.size_);
  for (std::size_t wi = 0; wi < words_.size(); ++wi) words_[wi] ^= other.words_[wi];
  return *this;
}

BitVec& BitVec::and_not(const BitVec& other) {
  MPS_ASSERT(size_ == other.size_);
  for (std::size_t wi = 0; wi < words_.size(); ++wi) words_[wi] &= ~other.words_[wi];
  return *this;
}

bool BitVec::operator==(const BitVec& other) const {
  return size_ == other.size_ && words_ == other.words_;
}

std::uint64_t BitVec::hash() const {
  std::uint64_t h = 0xCBF29CE484222325ULL ^ size_;
  for (auto w : words_) h = hash_combine(h, w);
  return h;
}

std::string BitVec::to_string() const {
  std::string s;
  s.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) s.push_back(test(i) ? '1' : '0');
  return s;
}

void assert_fail(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "MPS_ASSERT failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace mps::util

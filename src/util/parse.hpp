// Checked number parsing, shared by the .g parser and every CLI flag.
//
// std::atoi / std::stoi either ignore trailing junk ("4x" -> 4) or throw a
// bare std::invalid_argument with no context; both have produced real bugs
// here (see CHANGES.md, PR 4).  parse_int is the one checked entry point:
// the whole string must be a decimal integer inside the caller's range, or
// the caller gets nullopt and reports the error with its own context.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace mps::util {

/// Parse all of `text` as a decimal integer (optional leading '-') in
/// [min, max].  nullopt on empty input, trailing characters, overflow, or a
/// value outside the range.  No locale, no whitespace skipping: "3 " and
/// " 3" both fail — CLI tokens and .g tokens arrive pre-trimmed.
std::optional<std::int64_t> parse_int(std::string_view text, std::int64_t min,
                                      std::int64_t max);

}  // namespace mps::util

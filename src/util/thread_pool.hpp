// A minimal fixed-size worker pool for fork-join parallelism.
//
// The synthesis flow has two embarrassingly-parallel loops (per-output
// modules, per-benchmark table rows).  Both follow the same discipline:
// workers *execute* in whatever order the scheduler picks, but every task
// writes its result into a slot indexed by its task id, and the caller
// *consumes* the slots strictly in index order.  Execution order varies,
// result order never does — that is what keeps parallel runs bit-identical
// to serial ones.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mps::util {

class ThreadPool {
 public:
  /// Creates `num_threads - 1` workers: the thread calling parallel_for()
  /// participates too, so `num_threads` is the total parallelism.
  /// `num_threads <= 1` creates no workers at all and parallel_for()
  /// degenerates to a plain serial loop on the calling thread.
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism of a parallel_for (workers + calling thread).
  unsigned num_threads() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Run fn(i) for every i in [0, n), distributing indices over the workers
  /// and the calling thread; blocks until all invocations finished.  fn must
  /// be safe to call concurrently from several threads.  If any invocation
  /// throws, the first exception is rethrown here after in-flight
  /// invocations drain (indices not yet started are abandoned).
  ///
  /// One job at a time: parallel_for must not be re-entered from inside fn
  /// on a pool that has workers (a pool of size 1 nests fine).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// std::thread::hardware_concurrency(), but never 0.
  static unsigned hardware_threads();

 private:
  void worker_loop(std::stop_token st);
  /// Claim and run indices until the current job is exhausted.
  /// Pre/post-condition: `lock` held.
  void drain_job(std::unique_lock<std::mutex>& lock);

  std::mutex mutex_;
  std::condition_variable_any work_cv_;  // workers wait for a job
  std::condition_variable done_cv_;      // caller waits for completion
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t job_size_ = 0;
  std::size_t next_index_ = 0;
  std::size_t in_flight_ = 0;
  std::exception_ptr first_error_;
  std::vector<std::jthread> workers_;
};

}  // namespace mps::util

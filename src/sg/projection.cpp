#include "sg/projection.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "util/common.hpp"

namespace mps::sg {

namespace {

/// Plain union-find over state ids.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }
  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::uint32_t a, std::uint32_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::uint32_t> parent_;
};

}  // namespace

Projection hide_signals(const StateGraph& g, const util::BitVec& hide,
                        const Assignments* assigns) {
  MPS_ASSERT(hide.size() == g.num_signals());

  const std::size_t n = g.num_states();
  UnionFind uf(n);
  for (StateId s = 0; s < n; ++s) {
    for (const Edge& e : g.out(s)) {
      if (e.is_silent() || hide.test(e.sig)) uf.unite(s, e.to);
    }
  }

  // Number the classes densely, in order of first member.
  Projection proj;
  proj.state_map.assign(n, kNoState);
  std::vector<StateId> class_rep;  // quotient id -> a representative full state
  for (StateId s = 0; s < n; ++s) {
    const StateId root = uf.find(s);
    if (proj.state_map[root] == kNoState) {
      proj.state_map[root] = static_cast<StateId>(class_rep.size());
      class_rep.push_back(root);
    }
    proj.state_map[s] = proj.state_map[root];
  }
  const std::size_t num_classes = class_rep.size();

  // Kept signal table.
  std::vector<SignalId> dense(g.num_signals(), stg::kNoSignal);
  std::vector<SignalInfo> infos;
  for (SignalId sig = 0; sig < g.num_signals(); ++sig) {
    if (hide.test(sig)) continue;
    dense[sig] = static_cast<SignalId>(infos.size());
    infos.push_back(g.signal(sig));
    proj.kept.push_back(sig);
  }

  proj.graph = StateGraph(std::move(infos));
  for (std::size_t c = 0; c < num_classes; ++c) {
    util::BitVec code(proj.kept.size());
    for (std::size_t i = 0; i < proj.kept.size(); ++i) {
      code.set(i, g.code(class_rep[c]).test(proj.kept[i]));
    }
    proj.graph.add_state(std::move(code));
  }
  proj.graph.set_initial(proj.state_map[g.initial()]);

  // Kept edges between classes, deduplicated.
  std::vector<std::unordered_set<std::uint64_t>> seen(num_classes);
  for (StateId s = 0; s < n; ++s) {
    // All members of a class must agree on kept-signal values.
    for (std::size_t i = 0; i < proj.kept.size(); ++i) {
      MPS_ASSERT(g.code(s).test(proj.kept[i]) ==
                 proj.graph.code(proj.state_map[s]).test(static_cast<SignalId>(i)));
    }
    for (const Edge& e : g.out(s)) {
      if (e.is_silent() || hide.test(e.sig)) continue;
      const StateId from = proj.state_map[s];
      const StateId to = proj.state_map[e.to];
      MPS_ASSERT(from != to);  // a kept edge changes a kept signal's value
      const std::uint64_t key =
          (std::uint64_t{dense[e.sig]} << 33) | (std::uint64_t{e.rise} << 32) | to;
      if (seen[from].insert(key).second) {
        proj.graph.add_edge(from, Edge{dense[e.sig], e.rise, to});
      }
    }
  }

  // Merge existing state-signal assignments (Figure 3).
  if (assigns != nullptr && !assigns->empty()) {
    proj.assignments = Assignments(num_classes);
    for (std::size_t k = 0; k < assigns->num_signals(); ++k) {
      std::vector<V4> merged(num_classes, V4::Zero);
      std::vector<bool> has_zero(num_classes, false), has_one(num_classes, false),
          has_up(num_classes, false), has_down(num_classes, false);
      for (StateId s = 0; s < n; ++s) {
        const StateId c = proj.state_map[s];
        switch (assigns->value(k, s)) {
          case V4::Zero: has_zero[c] = true; break;
          case V4::One: has_one[c] = true; break;
          case V4::Up: has_up[c] = true; break;
          case V4::Down: has_down[c] = true; break;
        }
      }
      // Per-edge directed check (the paper's §3.2 restriction, generalized).
      for (StateId s = 0; s < n; ++s) {
        for (const Edge& e : g.out(s)) {
          if (!(e.is_silent() || hide.test(e.sig))) continue;
          if (proj.state_map[s] != proj.state_map[e.to]) continue;
          if (!merge_pair_allowed(assigns->value(k, s), assigns->value(k, e.to))) {
            proj.assignments_consistent = false;
          }
        }
      }
      for (std::size_t c = 0; c < num_classes; ++c) {
        if (has_up[c] && has_down[c]) {
          // The signal both rises and falls inside the merged state: no
          // single value exists (the paper's §3.2 Up/Down restriction).
          proj.assignments_consistent = false;
          merged[c] = has_one[c] ? V4::One : V4::Zero;
        } else if (has_up[c]) {
          merged[c] = V4::Up;  // Figure 3 (f), (g): {0,Up}, {Up,1} -> Up
        } else if (has_down[c]) {
          merged[c] = V4::Down;  // Figure 3 (h), (i): {1,Down}, {Down,0} -> Down
        } else if (has_zero[c] && has_one[c]) {
          // 0 and 1 in one class with no excitation boundary: inconsistent.
          proj.assignments_consistent = false;
          merged[c] = V4::Zero;
        } else {
          merged[c] = has_one[c] ? V4::One : V4::Zero;
        }
      }
      proj.assignments.add_signal(assigns->name(k), std::move(merged));
    }
  } else {
    proj.assignments = Assignments(num_classes);
  }

  return proj;
}

StateGraph contract_silent(const StateGraph& g) {
  util::BitVec hide(g.num_signals());  // hide nothing; ε edges contract anyway
  return hide_signals(g, hide).graph;
}

}  // namespace mps::sg

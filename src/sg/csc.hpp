// Complete state coding analysis (§2): find the state pairs that violate
// CSC, the USC pair count, Max_csc and the lower bound on state signals.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sg/assignments.hpp"
#include "sg/state_graph.hpp"

namespace mps::sg {

struct CscOptions {
  /// When analysing a *module* graph (a projection for output o), CSC is
  /// checked against a restricted non-input set; kNoSignal = all non-inputs.
  /// If set, a pair only conflicts when the excitation or implied value of
  /// this signal differs (plus any state-signal excitation mismatch).
  SignalId focus_signal = stg::kNoSignal;
};

struct CscResult {
  /// Pairs (a < b) of code-equal states whose non-input behaviour differs
  /// and which no existing state signal separates.
  std::vector<std::pair<StateId, StateId>> conflicts;
  /// Code-equal, unseparated pairs with *identical* behaviour — legal under
  /// CSC, but new state signals must keep them compatible (equal values or
  /// full separation) or they would become fresh conflicts; these drive the
  /// N_usc·c3^m clause term of the §2.1 size model.
  std::vector<std::pair<StateId, StateId>> compatible_pairs;
  /// Count of code-equal pairs (unique-state-coding violations), including
  /// the conflicting ones — N_usc of the §2.1 size model.
  std::size_t num_usc_pairs = 0;
  /// Largest set of states sharing one code — Max_csc (paper definition).
  std::size_t max_class_size = 1;
  /// max over code classes of ceil(log2(number of excitation-distinct
  /// groups)) — the number of state signals provably needed.  Tighter than
  /// the paper's ceil(log2(Max_csc)); see DESIGN.md.
  int lower_bound = 0;

  bool satisfied() const { return conflicts.empty(); }
};

/// Analyse `g`; `assigns` (optional) contributes (a) separation — pairs with
/// stable complementary state-signal values are not conflicts — and (b)
/// excitation — states with differing state-signal excitation in the same
/// code class are counted as distinct behaviour groups.
CscResult analyze_csc(const StateGraph& g, const Assignments* assigns = nullptr,
                      const CscOptions& opts = {});

/// ceil(log2(n)) for n >= 1.
int ceil_log2(std::size_t n);

}  // namespace mps::sg

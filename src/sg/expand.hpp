// State-graph expansion (§3.5): realize inserted state signals as real
// transitions.  Each state whose assignment is Up (resp. Down) splits into
// a 0-phase and a 1-phase connected by n+ (resp. n-); original transitions
// into a state with a *stable* target value are only enabled from the
// matching phase — this is what serializes the inserted transition against
// its "trigger" and preserves semi-modularity.
#pragma once

#include <vector>

#include "sg/assignments.hpp"
#include "sg/state_graph.hpp"

namespace mps::sg {

struct Expansion {
  /// Expanded graph: signals = original signals followed by the inserted
  /// state signals (non-input).
  StateGraph graph;
  /// expanded state -> originating state of the source graph.
  std::vector<StateId> origin;
};

/// Expand `g` with the inserted signals of `assigns`.  Requires
/// assigns.check_coherence(g) to pass; throws util::SemanticsError
/// otherwise.  With an empty `assigns` this is a copy.
/// `check_consistency` runs the O(V·E) structural self-check on the result;
/// baseline flows that re-expand in a tight insertion loop pass false
/// (construction guarantees the invariants, the check is defense in depth).
Expansion expand(const StateGraph& g, const Assignments& assigns,
                 bool check_consistency = true);

/// Semi-modularity (§2): no enabled non-input transition is disabled by the
/// firing of another transition.  Input signals may be disabled by other
/// *inputs* (environment choice) without violating speed independence;
/// `allow_input_choice` controls whether such pairs are ignored.
/// Returns the offending (state, disabled signal) pairs (empty = OK).
std::vector<std::pair<StateId, SignalId>> semi_modularity_violations(
    const StateGraph& g, bool allow_input_choice = true);

}  // namespace mps::sg

#include "sg/csc.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "util/common.hpp"

namespace mps::sg {

int ceil_log2(std::size_t n) {
  MPS_ASSERT(n >= 1);
  int bits = 0;
  std::size_t cap = 1;
  while (cap < n) {
    cap <<= 1;
    ++bits;
  }
  return bits;
}

namespace {

/// The behaviour signature compared between code-equal states.  Two states
/// with equal codes and equal signatures are CSC-compatible.
std::string signature(const StateGraph& g, StateId s, const Assignments* assigns,
                      const CscOptions& opts) {
  std::string key;
  if (opts.focus_signal != stg::kNoSignal) {
    key += g.excited_dir(s, opts.focus_signal, true) ? 'R' : '.';
    key += g.excited_dir(s, opts.focus_signal, false) ? 'F' : '.';
  } else {
    key += g.excited_non_input(s).to_string();
  }
  if (assigns != nullptr) {
    for (std::size_t k = 0; k < assigns->num_signals(); ++k) {
      const V4 v = assigns->value(k, s);
      key += v == V4::Up ? 'U' : v == V4::Down ? 'D' : '.';
    }
  }
  return key;
}

}  // namespace

CscResult analyze_csc(const StateGraph& g, const Assignments* assigns, const CscOptions& opts) {
  CscResult result;

  std::unordered_map<util::BitVec, std::vector<StateId>, util::BitVecHash> by_code;
  for (StateId s = 0; s < g.num_states(); ++s) by_code[g.code(s)].push_back(s);

  for (const auto& [code, states] : by_code) {
    const std::size_t k = states.size();
    if (k < 2) continue;
    result.num_usc_pairs += k * (k - 1) / 2;
    result.max_class_size = std::max(result.max_class_size, k);

    std::vector<std::string> sigs(k);
    for (std::size_t i = 0; i < k; ++i) {
      sigs[i] = signature(g, states[i], assigns, opts);
    }

    // Signature groups among states in at least one unresolved conflict:
    // the states that still need distinguishing.
    std::unordered_set<std::string> conflict_sigs;
    bool class_has_conflict = false;
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = i + 1; j < k; ++j) {
        if (assigns != nullptr && assigns->separates_pair(states[i], states[j])) continue;
        StateId a = states[i];
        StateId b = states[j];
        if (a > b) std::swap(a, b);
        if (sigs[i] == sigs[j]) {
          result.compatible_pairs.emplace_back(a, b);
        } else {
          result.conflicts.emplace_back(a, b);
          class_has_conflict = true;
          conflict_sigs.insert(sigs[i]);
          conflict_sigs.insert(sigs[j]);
        }
      }
    }
    if (class_has_conflict) {
      result.lower_bound = std::max(result.lower_bound, ceil_log2(conflict_sigs.size()));
    }
  }

  // Deterministic order regardless of hash iteration.
  std::sort(result.conflicts.begin(), result.conflicts.end());
  std::sort(result.compatible_pairs.begin(), result.compatible_pairs.end());
  return result;
}

}  // namespace mps::sg

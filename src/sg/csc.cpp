#include "sg/csc.hpp"

#include <algorithm>
#include <unordered_map>

#include "obs/obs.hpp"
#include "util/common.hpp"

namespace mps::sg {

int ceil_log2(std::size_t n) {
  MPS_ASSERT(n >= 1);
  int bits = 0;
  std::size_t cap = 1;
  while (cap < n) {
    cap <<= 1;
    ++bits;
  }
  return bits;
}

namespace {

/// The behaviour signature compared between code-equal states, packed into
/// a fixed number of 64-bit words per state instead of a heap-allocated
/// string (DESIGN.md "Hot paths").  Layout: the excitation part first
/// (2 bits for a focus signal, else one bit per signal of the
/// excited-non-input set), then 2 bits per inserted state signal encoding
/// {Up, Down, stable} — the same three-way distinction the old character
/// key made (Zero and One both rendered as '.').  Packing is injective per
/// component, so key equality coincides with string equality.
class SignatureKeys {
 public:
  SignatureKeys(const StateGraph& g, const Assignments* assigns, const CscOptions& opts)
      : g_(g), assigns_(assigns), focus_(opts.focus_signal) {
    const std::size_t excite_bits = focus_ != stg::kNoSignal ? 2 : g.num_signals();
    assign_base_ = excite_bits;
    const std::size_t total_bits =
        excite_bits + 2 * (assigns != nullptr ? assigns->num_signals() : 0);
    words_ = std::max<std::size_t>(1, (total_bits + 63) / 64);
  }

  std::size_t words_per_key() const { return words_; }

  /// Write the signature of state `s` into `out[0 .. words_per_key())`.
  void fill(StateId s, std::uint64_t* out) const {
    std::fill(out, out + words_, 0);
    if (focus_ != stg::kNoSignal) {
      if (g_.excited_dir(s, focus_, true)) out[0] |= 1u;
      if (g_.excited_dir(s, focus_, false)) out[0] |= 2u;
    } else {
      // excited_non_input(s), written straight into the key words: set the
      // bit of every non-silent edge label, then mask the input columns.
      for (const Edge& e : g_.out(s)) {
        if (!e.is_silent()) out[e.sig >> 6] |= std::uint64_t{1} << (e.sig & 63);
      }
      const util::BitVec& inputs = g_.input_mask();
      for (std::size_t wi = 0; wi < inputs.num_words(); ++wi) out[wi] &= ~inputs.word(wi);
    }
    if (assigns_ != nullptr) {
      for (std::size_t k = 0; k < assigns_->num_signals(); ++k) {
        const V4 v = assigns_->value(k, s);
        const std::uint64_t code = v == V4::Up ? 1 : v == V4::Down ? 2 : 0;
        const std::size_t bit = assign_base_ + 2 * k;
        out[bit >> 6] |= code << (bit & 63);
      }
    }
  }

 private:
  const StateGraph& g_;
  const Assignments* assigns_;
  SignalId focus_;
  std::size_t assign_base_ = 0;
  std::size_t words_ = 1;
};

}  // namespace

CscResult analyze_csc(const StateGraph& g, const Assignments* assigns, const CscOptions& opts) {
  obs::Span span("sg.analyze_csc");
  CscResult result;

  std::unordered_map<util::BitVec, std::vector<StateId>, util::BitVecHash> by_code;
  for (StateId s = 0; s < g.num_states(); ++s) by_code[g.code(s)].push_back(s);

  const SignatureKeys keys(g, assigns, opts);
  const std::size_t W = keys.words_per_key();
  std::vector<std::uint64_t> sigs;       // k packed signatures, reused per class
  std::vector<char> in_conflict;         // per class member, reused
  std::vector<std::uint32_t> distinct;   // member indices of distinct conflicted sigs

  for (const auto& [code, states] : by_code) {
    const std::size_t k = states.size();
    if (k < 2) continue;
    result.num_usc_pairs += k * (k - 1) / 2;
    result.max_class_size = std::max(result.max_class_size, k);

    sigs.assign(k * W, 0);
    for (std::size_t i = 0; i < k; ++i) keys.fill(states[i], sigs.data() + i * W);
    const auto same_sig = [&](std::size_t i, std::size_t j) {
      return std::equal(sigs.begin() + i * W, sigs.begin() + (i + 1) * W,
                        sigs.begin() + j * W);
    };

    // States in at least one unresolved conflict: the states that still
    // need distinguishing; the number of distinct signatures among them
    // lower-bounds the state signals this class requires.
    in_conflict.assign(k, 0);
    bool class_has_conflict = false;
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = i + 1; j < k; ++j) {
        if (assigns != nullptr && assigns->separates_pair(states[i], states[j])) continue;
        StateId a = states[i];
        StateId b = states[j];
        if (a > b) std::swap(a, b);
        if (same_sig(i, j)) {
          result.compatible_pairs.emplace_back(a, b);
        } else {
          result.conflicts.emplace_back(a, b);
          class_has_conflict = true;
          in_conflict[i] = in_conflict[j] = 1;
        }
      }
    }
    if (class_has_conflict) {
      distinct.clear();
      for (std::uint32_t i = 0; i < k; ++i) {
        if (!in_conflict[i]) continue;
        bool seen = false;
        for (const std::uint32_t rep : distinct) {
          if (same_sig(i, rep)) {
            seen = true;
            break;
          }
        }
        if (!seen) distinct.push_back(i);
      }
      result.lower_bound = std::max(result.lower_bound, ceil_log2(distinct.size()));
    }
  }

  // Deterministic order regardless of hash iteration.
  std::sort(result.conflicts.begin(), result.conflicts.end());
  std::sort(result.compatible_pairs.begin(), result.compatible_pairs.end());
  span.arg("states", static_cast<std::int64_t>(g.num_states()));
  span.arg("conflicts", static_cast<std::int64_t>(result.conflicts.size()));
  span.arg("usc_pairs", static_cast<std::int64_t>(result.num_usc_pairs));
  return result;
}

}  // namespace mps::sg

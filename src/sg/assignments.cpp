#include "sg/assignments.hpp"

#include "util/common.hpp"

namespace mps::sg {

const char* to_string(V4 v) {
  switch (v) {
    case V4::Zero: return "0";
    case V4::One: return "1";
    case V4::Up: return "Up";
    case V4::Down: return "Down";
  }
  return "?";
}

bool merge_pair_allowed(V4 from, V4 to) {
  if (from == to) return true;
  // The four "excitation boundary" pairs of Figure 3 (f)-(i).
  return (from == V4::Zero && to == V4::Up) || (from == V4::Up && to == V4::One) ||
         (from == V4::One && to == V4::Down) || (from == V4::Down && to == V4::Zero);
}

std::size_t Assignments::add_signal(std::string name) {
  signals_.push_back({std::move(name), std::vector<V4>(num_states_, V4::Zero)});
  return signals_.size() - 1;
}

std::size_t Assignments::add_signal(std::string name, std::vector<V4> values) {
  MPS_ASSERT(values.size() == num_states_);
  signals_.push_back({std::move(name), std::move(values)});
  return signals_.size() - 1;
}

bool Assignments::separates_pair(StateId a, StateId b) const {
  for (const auto& sig : signals_) {
    if (separates(sig.values[a], sig.values[b])) return true;
  }
  return false;
}

Assignments Assignments::subset(const std::vector<std::size_t>& keep) const {
  Assignments out(num_states_);
  for (const std::size_t k : keep) {
    MPS_ASSERT(k < signals_.size());
    out.signals_.push_back(signals_[k]);
  }
  return out;
}

std::optional<Assignments::Incoherence> Assignments::check_coherence(const StateGraph& g) const {
  MPS_ASSERT(g.num_states() == num_states_);
  for (std::size_t k = 0; k < signals_.size(); ++k) {
    const auto& vals = signals_[k].values;
    for (StateId s = 0; s < g.num_states(); ++s) {
      for (const Edge& e : g.out(s)) {
        if (!edge_pair_allowed(vals[s], vals[e.to])) {
          return Incoherence{k, s, e.to};
        }
      }
    }
  }
  return std::nullopt;
}

}  // namespace mps::sg

// Four-valued state-signal assignments (§2.1): each state of a state graph
// is assigned, per inserted state signal, one of {0, 1, Up, Down}.
//   0 / 1 : the signal is stable at that value in the state.
//   Up    : the signal is 0 but excited to rise (n+ enabled) — the state
//           splits into a 0-phase and a 1-phase on expansion.
//   Down  : the signal is 1 but excited to fall.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sg/state_graph.hpp"

namespace mps::sg {

enum class V4 : std::uint8_t { Zero = 0, One = 1, Up = 2, Down = 3 };

const char* to_string(V4 v);

/// The current (pre-switch) binary value of the signal in a state with
/// assignment v: Zero/Up -> 0, One/Down -> 1.
inline bool phase_of(V4 v) { return v == V4::One || v == V4::Down; }

/// True if a pair of code-equal states is *separated* by a signal with these
/// values: only stable complementary values separate, because Up/Down states
/// split on expansion and keep one phase code-equal to the other state
/// (DESIGN.md "Reading notes").
inline bool separates(V4 a, V4 b) {
  return (a == V4::Zero && b == V4::One) || (a == V4::One && b == V4::Zero);
}

/// Figure 3: may two states with values (from, to), connected by an ε edge
/// in that direction, be merged?  Allowed: the four equal pairs plus
/// (0,Up), (Up,1), (1,Down), (Down,0).
bool merge_pair_allowed(V4 from, V4 to);

/// The same relation, used as the edge-coherence constraint of the SAT
/// encoding: values of a state signal across *any* state-graph edge must
/// form an allowed pair (this subsumes consistency and the semi-modularity
/// of the inserted signal: (Up,0) — excitation lost without firing — is
/// forbidden).
inline bool edge_pair_allowed(V4 from, V4 to) { return merge_pair_allowed(from, to); }

/// Expansion arrival rule: entering a state with target value `v`, the
/// inserted signal's phase bit must satisfy this predicate.
inline bool entry_phase_ok(V4 v, bool phase) {
  switch (v) {
    case V4::Zero: return !phase;
    case V4::One: return phase;
    case V4::Up:
    case V4::Down: return true;
  }
  return false;
}

/// A set of inserted state signals with per-state four-valued assignments,
/// indexed against one specific StateGraph (same state count).
class Assignments {
 public:
  Assignments() = default;
  explicit Assignments(std::size_t num_states) : num_states_(num_states) {}

  std::size_t num_states() const { return num_states_; }
  std::size_t num_signals() const { return signals_.size(); }
  bool empty() const { return signals_.empty(); }

  /// Add a signal with all-Zero values; returns its index.
  std::size_t add_signal(std::string name);
  /// Add a signal with explicit values (size must equal num_states()).
  std::size_t add_signal(std::string name, std::vector<V4> values);

  const std::string& name(std::size_t k) const { return signals_[k].name; }
  V4 value(std::size_t k, StateId s) const { return signals_[k].values[s]; }
  void set(std::size_t k, StateId s, V4 v) { signals_[k].values[s] = v; }
  const std::vector<V4>& values(std::size_t k) const { return signals_[k].values; }

  /// True if some signal separates the pair (stable complementary values).
  bool separates_pair(StateId a, StateId b) const;

  /// Excited direction of signal k in state s: Up -> n+ excited,
  /// Down -> n- excited, else not excited.
  std::optional<bool> excited_rise(std::size_t k, StateId s) const {
    const V4 v = signals_[k].values[s];
    if (v == V4::Up) return true;
    if (v == V4::Down) return false;
    return std::nullopt;
  }

  /// Every edge of `g` must carry an allowed value pair for every signal.
  /// Returns the first offending (signal, from, to) or nullopt if coherent.
  struct Incoherence {
    std::size_t signal;
    StateId from, to;
  };
  std::optional<Incoherence> check_coherence(const StateGraph& g) const;

  /// A copy containing only the signals whose indices are in `keep`.
  Assignments subset(const std::vector<std::size_t>& keep) const;

 private:
  struct StateSignal {
    std::string name;
    std::vector<V4> values;
  };
  std::size_t num_states_ = 0;
  std::vector<StateSignal> signals_;
};

}  // namespace mps::sg

// Signal hiding and ε-merging (§3.3): the machinery that turns the complete
// state graph Σ into a modular state graph Σ_o.
//
// Hiding a signal relabels its transitions as ε; states connected by ε
// edges are then merged (the finite-automaton ε-removal the paper cites).
// Existing state-signal assignments are carried into the quotient by the
// Figure-3 merge rules.
#pragma once

#include <optional>
#include <vector>

#include "sg/assignments.hpp"
#include "sg/state_graph.hpp"

namespace mps::sg {

struct Projection {
  /// The quotient graph; its signals are the kept signals, in ascending
  /// original id order.
  StateGraph graph;
  /// cover map (Fig. 5): full-graph state -> quotient state.
  std::vector<StateId> state_map;
  /// kept[i] = original id of quotient signal i.
  std::vector<SignalId> kept;
  /// Existing state-signal assignments merged into the quotient (empty if
  /// no assignments were supplied).
  Assignments assignments;
  /// False if some ε merge violated the Figure-3 rules for an existing
  /// state signal; `assignments` then holds best-effort values and the
  /// caller (determine_input_set) must reject the hiding.
  bool assignments_consistent = true;
};

/// Quotient of `g` by the signals marked in `hide` (indexed by SignalId;
/// silent edges are always contracted).  `assigns`, if given, must index
/// the states of `g`.
Projection hide_signals(const StateGraph& g, const util::BitVec& hide,
                        const Assignments* assigns = nullptr);

/// Contract only the silent (ε / dummy) edges of a graph.
StateGraph contract_silent(const StateGraph& g);

}  // namespace mps::sg

#include "sg/expand.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "util/common.hpp"

namespace mps::sg {

namespace {

/// Key of an expanded state: (original state, phase bits of the inserted
/// signals packed into a word).  Up to 64 inserted signals — far beyond
/// anything synthesis produces.
struct Key {
  StateId state;
  std::uint64_t phases;
  bool operator==(const Key&) const = default;
};
struct KeyHash {
  std::size_t operator()(const Key& k) const {
    return static_cast<std::size_t>(util::hash_combine(k.state, k.phases));
  }
};

}  // namespace

Expansion expand(const StateGraph& g, const Assignments& assigns, bool check_consistency) {
  MPS_ASSERT(assigns.num_states() == g.num_states() || assigns.empty());
  MPS_ASSERT(assigns.num_signals() <= 64);
  if (const auto bad = assigns.check_coherence(g); bad.has_value()) {
    throw util::SemanticsError(
        "cannot expand: state-signal '" + assigns.name(bad->signal) +
        "' has incoherent values across edge " + std::to_string(bad->from) + " -> " +
        std::to_string(bad->to));
  }

  const std::size_t m = assigns.num_signals();

  std::vector<SignalInfo> infos = g.signals();
  const SignalId base = static_cast<SignalId>(infos.size());
  for (std::size_t k = 0; k < m; ++k) {
    infos.push_back(SignalInfo{assigns.name(k), /*is_input=*/false});
  }

  Expansion result;
  result.graph = StateGraph(std::move(infos));

  auto make_code = [&](StateId orig, std::uint64_t phases) {
    util::BitVec code = g.code(orig);
    code.resize(g.num_signals() + m);
    for (std::size_t k = 0; k < m; ++k) {
      code.set(base + k, (phases >> k) & 1);
    }
    return code;
  };

  std::unordered_map<Key, StateId, KeyHash> index;
  auto intern = [&](StateId orig, std::uint64_t phases) {
    const Key key{orig, phases};
    if (const auto it = index.find(key); it != index.end()) return it->second;
    const StateId id = result.graph.add_state(make_code(orig, phases));
    result.origin.push_back(orig);
    index.emplace(key, id);
    return id;
  };

  std::uint64_t init_phases = 0;
  for (std::size_t k = 0; k < m; ++k) {
    if (phase_of(assigns.value(k, g.initial()))) init_phases |= std::uint64_t{1} << k;
  }
  const StateId init = intern(g.initial(), init_phases);
  result.graph.set_initial(init);

  std::deque<StateId> frontier{init};
  while (!frontier.empty()) {
    const StateId cur = frontier.front();
    frontier.pop_front();
    const StateId orig = result.origin[cur];
    const std::uint64_t phases = [&] {
      std::uint64_t p = 0;
      for (std::size_t k = 0; k < m; ++k) {
        if (result.graph.code(cur).test(base + k)) p |= std::uint64_t{1} << k;
      }
      return p;
    }();

    const std::size_t before = result.graph.num_states();
    // Inserted-signal transitions.
    for (std::size_t k = 0; k < m; ++k) {
      const V4 v = assigns.value(k, orig);
      const bool phase = (phases >> k) & 1;
      if (v == V4::Up && !phase) {
        const StateId to = intern(orig, phases | (std::uint64_t{1} << k));
        result.graph.add_edge(cur, Edge{static_cast<SignalId>(base + k), true, to});
      } else if (v == V4::Down && phase) {
        const StateId to = intern(orig, phases & ~(std::uint64_t{1} << k));
        result.graph.add_edge(cur, Edge{static_cast<SignalId>(base + k), false, to});
      }
    }
    // Original transitions, gated by the arrival rule.
    for (const Edge& e : g.out(orig)) {
      bool ok = true;
      for (std::size_t k = 0; k < m && ok; ++k) {
        ok = entry_phase_ok(assigns.value(k, e.to), (phases >> k) & 1);
      }
      if (!ok) continue;
      const StateId to = intern(e.to, phases);
      result.graph.add_edge(cur, Edge{e.sig, e.rise, to});
    }
    for (StateId s = static_cast<StateId>(before); s < result.graph.num_states(); ++s) {
      frontier.push_back(s);
    }
  }

  if (check_consistency) result.graph.check_consistency();
  return result;
}

std::vector<std::pair<StateId, SignalId>> semi_modularity_violations(const StateGraph& g,
                                                                     bool allow_input_choice) {
  std::vector<std::pair<StateId, SignalId>> bad;
  for (StateId s = 0; s < g.num_states(); ++s) {
    for (const Edge& fired : g.out(s)) {
      if (fired.is_silent()) continue;
      // Every other signal enabled at s must still be enabled (same
      // direction) in fired.to.
      for (const Edge& other : g.out(s)) {
        if (other.is_silent() || other.sig == fired.sig) continue;
        if (allow_input_choice && g.is_input(other.sig) && g.is_input(fired.sig)) continue;
        if (!g.excited_dir(fired.to, other.sig, other.rise)) {
          bad.emplace_back(fired.to, other.sig);
        }
      }
    }
  }
  std::sort(bad.begin(), bad.end());
  bad.erase(std::unique(bad.begin(), bad.end()), bad.end());
  return bad;
}

}  // namespace mps::sg

#include "sg/state_graph.hpp"

#include <algorithm>
#include <unordered_map>

#include "obs/obs.hpp"
#include "petri/analysis.hpp"
#include "util/common.hpp"

namespace mps::sg {

SignalId StateGraph::find_signal(std::string_view name) const {
  // Hash lookup instead of a linear scan: several call sites sit inside
  // per-state loops, where O(#signals) per call added up.
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? stg::kNoSignal : it->second;
}

void StateGraph::index_signal(SignalId s) {
  // try_emplace keeps the first (lowest) id on duplicate names, matching
  // the linear scan this index replaced.
  by_name_.try_emplace(signals_[s].name, s);
}

SignalId StateGraph::add_signal(const SignalInfo& info, bool value) {
  signals_.push_back(info);
  for (auto& code : codes_) code.push_back(value);
  const SignalId s = static_cast<SignalId>(signals_.size() - 1);
  index_signal(s);
  input_mask_.push_back(info.is_input);
  return s;
}

StateId StateGraph::add_state(util::BitVec code) {
  MPS_ASSERT(code.size() == signals_.size());
  codes_.push_back(std::move(code));
  out_.emplace_back();
  return static_cast<StateId>(codes_.size() - 1);
}

util::BitVec StateGraph::excited(StateId s) const {
  util::BitVec bits(signals_.size());
  for (const Edge& e : out_[s]) {
    if (!e.is_silent()) bits.set(e.sig);
  }
  return bits;
}

util::BitVec StateGraph::excited_non_input(StateId s) const {
  util::BitVec bits = excited(s);
  bits.and_not(input_mask_);
  return bits;
}

bool StateGraph::excited_dir(StateId s, SignalId sig, bool rise) const {
  for (const Edge& e : out_[s]) {
    if (!e.is_silent() && e.sig == sig && e.rise == rise) return true;
  }
  return false;
}

std::size_t StateGraph::num_concurrent_pairs() const {
  std::size_t n = 0;
  for (StateId s = 0; s < num_states(); ++s) {
    const std::size_t k = excited(s).count();
    n += k >= 2 ? k * (k - 1) / 2 : 0;
  }
  return n;
}

std::vector<std::vector<StateId>> StateGraph::predecessors() const {
  std::vector<std::vector<StateId>> pred(num_states());
  for (StateId s = 0; s < num_states(); ++s) {
    for (const Edge& e : out_[s]) pred[e.to].push_back(s);
  }
  return pred;
}

void StateGraph::check_consistency() const {
  MPS_ASSERT(initial_ < num_states() || num_states() == 0);
  for (StateId s = 0; s < num_states(); ++s) {
    MPS_ASSERT(codes_[s].size() == signals_.size());
    for (const Edge& e : out_[s]) {
      MPS_ASSERT(e.to < num_states());
      if (e.is_silent()) {
        // ε edges must not change any signal value.
        MPS_ASSERT(codes_[s] == codes_[e.to]);
        continue;
      }
      MPS_ASSERT(e.sig < signals_.size());
      // Consistent state assignment (§2): a+ goes 0 -> 1, a- goes 1 -> 0,
      // and all other signals keep their value.
      MPS_ASSERT(codes_[s].test(e.sig) == !e.rise);
      MPS_ASSERT(codes_[e.to].test(e.sig) == e.rise);
      MPS_ASSERT(codes_[s].count_diff(codes_[e.to]) == 1);
    }
  }
}

/// Infer the value of every signal in every marking (consistent state
/// assignment), in ONE pass over the reachability edges for all signals at
/// once (DESIGN.md "Hot paths").  The constraint system per signal s is:
/// non-s edges preserve s's value, s~ flips it, s+ / s- flip it *and* pin
/// the absolute endpoint values (from=0/to=1 resp. from=1/to=0).  Because
/// every relation is "preserve or flip", each state's value is the value at
/// state 0 XOR the flip parity along any path — so one sweep computes
/// per-state codes *relative to state 0* for all signals simultaneously
/// (reachability emits edges in BFS discovery order: an edge's source state
/// is always coded before the edge is scanned).  Rise/fall edges pin the
/// state-0 value base[s]; signals without any rise/fall seed base[s] from
/// the declared initial value.  Non-tree edges are verified against the
/// relative codes; a parity mismatch or conflicting pin on signal s is
/// exactly the contradiction the old per-signal BFS detected, and the
/// lowest such signal id is reported, matching the per-signal scan order.
std::vector<util::BitVec> infer_codes(const stg::Stg& stg,
                                      const petri::ReachabilityResult& reach) {
  const std::size_t num_states = reach.markings.size();
  const std::size_t num_signals = stg.num_signals();
  obs::Span span("sg.infer_codes");
  span.arg("states", static_cast<std::int64_t>(num_states));
  span.arg("signals", static_cast<std::int64_t>(num_signals));

  std::vector<util::BitVec> codes(num_states, util::BitVec(num_signals));
  std::vector<char> coded(num_states, 0);
  coded[0] = 1;

  util::BitVec inconsistent(num_signals);
  util::BitVec base_known(num_signals);
  util::BitVec base(num_signals);
  util::BitVec scratch(num_signals);

  for (const auto& e : reach.edges) {
    const stg::Label& l = stg.label(e.trans);
    if (!coded[e.to]) {
      codes[e.to] = codes[e.from];  // same width: reuses the preallocated words
      if (!l.is_silent()) codes[e.to].flip(l.sig);
      coded[e.to] = 1;
    } else {
      // Non-tree edge: relative codes must agree up to the labelled flip.
      // Any other differing bit means an odd-parity cycle for that signal.
      scratch = codes[e.from];
      scratch ^= codes[e.to];
      if (!l.is_silent()) scratch.flip(l.sig);
      inconsistent |= scratch;
    }
    if (!l.is_silent() && (l.pol == stg::Polarity::Rise || l.pol == stg::Polarity::Fall)) {
      // abs(from) = rel(from) ^ base must be 0 for s+ and 1 for s-.
      const bool want = codes[e.from].test(l.sig) ^ (l.pol == stg::Polarity::Rise ? false : true);
      if (base_known.test(l.sig)) {
        if (base.test(l.sig) != want) inconsistent.set(l.sig);
      } else {
        base_known.set(l.sig);
        base.set(l.sig, want);
      }
    }
  }
  bool all_coded = true;
  for (std::uint32_t st = 0; st < num_states; ++st) all_coded &= coded[st] != 0;

  stg::SignalId first_real = stg::kNoSignal;
  for (stg::SignalId s = 0; s < num_signals; ++s) {
    if (stg.signal_kind(s) == stg::SignalKind::Dummy) continue;
    if (first_real == stg::kNoSignal) first_real = s;
    if (inconsistent.test(s)) {
      throw util::SemanticsError("STG '" + stg.name() +
                                 "' has no consistent state assignment for signal " +
                                 stg.signal_name(s));
    }
    if (!base_known.test(s)) {
      // Signal never rises/falls explicitly: seed from the declared initial
      // value, defaulting to 0.
      const auto declared = stg.initial_value(s);
      base.set(s, declared.value_or(false));
    }
  }
  if (!all_coded && first_real != stg::kNoSignal) {
    // Unreached by the edge sweep: disconnected component (cannot happen for
    // reachability graphs, which are rooted) — but stay defensive.
    throw util::SemanticsError("signal value underdetermined for " +
                               stg.signal_name(first_real));
  }

  // Dummy signals have only silent labels (enforced by the Stg builder), so
  // their columns never flip and their base bits stay 0: dummy columns come
  // out all-zero, exactly as the per-signal scan (which skipped them) left
  // them.
  for (std::uint32_t st = 0; st < num_states; ++st) codes[st] ^= base;
  return codes;
}

StateGraph StateGraph::from_stg(const stg::Stg& stg, const BuildOptions& opts) {
  petri::ReachabilityOptions ropts;
  ropts.max_markings = opts.max_states;
  ropts.max_tokens_per_place = opts.require_safe ? 1 : 255;
  const auto reach = petri::reachability(stg.net(), stg.initial_marking(), ropts);
  if (!reach.complete) {
    throw util::LimitError("state graph of '" + stg.name() + "' exceeds " +
                           std::to_string(opts.max_states) + " states");
  }
  if (opts.require_safe && !reach.safe) {
    throw util::SemanticsError("STG '" + stg.name() + "' is not safe (a place holds >1 token)");
  }

  // Signal table: all non-dummy signals, preserving STG ids.  Dummy signals
  // occupy no code column; their transitions become silent edges.  To keep
  // SignalId stable between the STG and the state graph we require dummies
  // to come after real signals or map densely; simplest is to map densely
  // and remember the mapping.
  std::vector<SignalInfo> infos;
  std::vector<SignalId> dense(stg.num_signals(), stg::kNoSignal);
  for (stg::SignalId s = 0; s < stg.num_signals(); ++s) {
    if (stg.signal_kind(s) == stg::SignalKind::Dummy) continue;
    dense[s] = static_cast<SignalId>(infos.size());
    infos.push_back(SignalInfo{stg.signal_name(s), stg.is_input(s)});
  }

  auto codes = infer_codes(stg, reach);

  const bool has_dummies = infos.size() != stg.num_signals();
  StateGraph g(std::move(infos));
  for (std::uint32_t st = 0; st < reach.markings.size(); ++st) {
    if (!has_dummies) {
      // dense[] is the identity: the inferred code is already the state code.
      g.add_state(std::move(codes[st]));
      continue;
    }
    // Re-pack the code to drop dummy columns.
    util::BitVec packed(g.num_signals());
    for (stg::SignalId s = 0; s < stg.num_signals(); ++s) {
      if (dense[s] != stg::kNoSignal) packed.set(dense[s], codes[st].test(s));
    }
    g.add_state(std::move(packed));
  }
  g.set_initial(0);

  for (const auto& e : reach.edges) {
    const stg::Label& l = stg.label(e.trans);
    Edge edge;
    edge.to = e.to;
    if (l.is_silent()) {
      edge.sig = stg::kNoSignal;
    } else {
      edge.sig = dense[l.sig];
      edge.rise = l.pol == stg::Polarity::Toggle ? g.code(e.to).test(dense[l.sig])
                                                 : l.pol == stg::Polarity::Rise;
    }
    g.add_edge(e.from, edge);
  }

  if (opts.check_consistency) g.check_consistency();
  return g;
}

std::vector<std::vector<StateId>> code_classes(const StateGraph& g) {
  std::unordered_map<util::BitVec, std::vector<StateId>, util::BitVecHash> by_code;
  for (StateId s = 0; s < g.num_states(); ++s) by_code[g.code(s)].push_back(s);
  std::vector<std::vector<StateId>> classes;
  for (auto& [code, states] : by_code) {
    if (states.size() >= 2) classes.push_back(std::move(states));
  }
  // Deterministic order: by smallest member.
  std::sort(classes.begin(), classes.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  return classes;
}

}  // namespace mps::sg

#include "sg/state_graph.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "petri/analysis.hpp"
#include "util/common.hpp"

namespace mps::sg {

SignalId StateGraph::find_signal(std::string_view name) const {
  // Hash lookup instead of a linear scan: several call sites sit inside
  // per-state loops, where O(#signals) per call added up.
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? stg::kNoSignal : it->second;
}

void StateGraph::index_signal(SignalId s) {
  // try_emplace keeps the first (lowest) id on duplicate names, matching
  // the linear scan this index replaced.
  by_name_.try_emplace(signals_[s].name, s);
}

SignalId StateGraph::add_signal(const SignalInfo& info, bool value) {
  signals_.push_back(info);
  for (auto& code : codes_) code.push_back(value);
  const SignalId s = static_cast<SignalId>(signals_.size() - 1);
  index_signal(s);
  return s;
}

StateId StateGraph::add_state(util::BitVec code) {
  MPS_ASSERT(code.size() == signals_.size());
  codes_.push_back(std::move(code));
  out_.emplace_back();
  return static_cast<StateId>(codes_.size() - 1);
}

util::BitVec StateGraph::excited(StateId s) const {
  util::BitVec bits(signals_.size());
  for (const Edge& e : out_[s]) {
    if (!e.is_silent()) bits.set(e.sig);
  }
  return bits;
}

util::BitVec StateGraph::excited_non_input(StateId s) const {
  util::BitVec bits = excited(s);
  for (SignalId sig = 0; sig < signals_.size(); ++sig) {
    if (signals_[sig].is_input) bits.reset(sig);
  }
  return bits;
}

bool StateGraph::excited_dir(StateId s, SignalId sig, bool rise) const {
  for (const Edge& e : out_[s]) {
    if (!e.is_silent() && e.sig == sig && e.rise == rise) return true;
  }
  return false;
}

std::size_t StateGraph::num_edges() const {
  std::size_t n = 0;
  for (const auto& v : out_) n += v.size();
  return n;
}

std::size_t StateGraph::num_concurrent_pairs() const {
  std::size_t n = 0;
  for (StateId s = 0; s < num_states(); ++s) {
    const std::size_t k = excited(s).count();
    n += k >= 2 ? k * (k - 1) / 2 : 0;
  }
  return n;
}

std::vector<std::vector<StateId>> StateGraph::predecessors() const {
  std::vector<std::vector<StateId>> pred(num_states());
  for (StateId s = 0; s < num_states(); ++s) {
    for (const Edge& e : out_[s]) pred[e.to].push_back(s);
  }
  return pred;
}

void StateGraph::check_consistency() const {
  MPS_ASSERT(initial_ < num_states() || num_states() == 0);
  for (StateId s = 0; s < num_states(); ++s) {
    MPS_ASSERT(codes_[s].size() == signals_.size());
    for (const Edge& e : out_[s]) {
      MPS_ASSERT(e.to < num_states());
      if (e.is_silent()) {
        // ε edges must not change any signal value.
        MPS_ASSERT(codes_[s] == codes_[e.to]);
        continue;
      }
      MPS_ASSERT(e.sig < signals_.size());
      // Consistent state assignment (§2): a+ goes 0 -> 1, a- goes 1 -> 0,
      // and all other signals keep their value.
      MPS_ASSERT(codes_[s].test(e.sig) == !e.rise);
      MPS_ASSERT(codes_[e.to].test(e.sig) == e.rise);
      util::BitVec diff = codes_[s] ^ codes_[e.to];
      MPS_ASSERT(diff.count() == 1);
    }
  }
}

namespace {

/// Infer the value of every signal in every marking (consistent state
/// assignment).  Relations between adjacent markings: non-s edges preserve
/// s's value; s+ / s- edges force both endpoint values; s~ flips.
std::vector<util::BitVec> infer_codes(const stg::Stg& stg,
                                      const petri::ReachabilityResult& reach) {
  const std::size_t num_states = reach.markings.size();
  const std::size_t num_signals = stg.num_signals();

  // Adjacency with relation info per signal.
  struct Adj {
    std::uint32_t other;
    std::uint8_t rel;      // 0 = equal, 1 = flip (s~), 2 = forced (dir gives values)
    bool rise;             // for rel==2: edge is s+ (from=0,to=1) or s- (1 -> 0)
    bool forward;          // true if this entry is (from -> to)
  };

  std::vector<util::BitVec> codes(num_states, util::BitVec(num_signals));

  for (stg::SignalId s = 0; s < num_signals; ++s) {
    if (stg.signal_kind(s) == stg::SignalKind::Dummy) continue;
    // Build the per-signal relation graph (undirected propagation).
    std::vector<std::vector<Adj>> adj(num_states);
    bool any_forced = false;
    for (const auto& e : reach.edges) {
      const stg::Label& l = stg.label(e.trans);
      std::uint8_t rel = 0;
      bool rise = false;
      if (l.sig == s && !l.is_silent()) {
        if (l.pol == stg::Polarity::Toggle) {
          rel = 1;
        } else {
          rel = 2;
          rise = l.pol == stg::Polarity::Rise;
          any_forced = true;
        }
      }
      adj[e.from].push_back({e.to, rel, rise, true});
      adj[e.to].push_back({e.from, rel, rise, false});
    }

    std::vector<int> val(num_states, -1);
    std::deque<std::uint32_t> queue;
    auto assign = [&](std::uint32_t state, int v) {
      if (val[state] == -1) {
        val[state] = v;
        queue.push_back(state);
      } else if (val[state] != v) {
        throw util::SemanticsError("STG '" + stg.name() +
                                   "' has no consistent state assignment for signal " +
                                   stg.signal_name(s));
      }
    };

    if (any_forced) {
      for (const auto& e : reach.edges) {
        const stg::Label& l = stg.label(e.trans);
        if (l.sig == s && (l.pol == stg::Polarity::Rise || l.pol == stg::Polarity::Fall)) {
          const bool rise = l.pol == stg::Polarity::Rise;
          assign(e.from, rise ? 0 : 1);
          assign(e.to, rise ? 1 : 0);
        }
      }
    } else {
      // Signal never rises/falls explicitly: seed from the declared initial
      // value, defaulting to 0.
      const auto declared = stg.initial_value(s);
      assign(0, declared.value_or(false) ? 1 : 0);
    }

    while (!queue.empty()) {
      const std::uint32_t u = queue.front();
      queue.pop_front();
      for (const Adj& a : adj[u]) {
        switch (a.rel) {
          case 0:
            assign(a.other, val[u]);
            break;
          case 1:
            assign(a.other, 1 - val[u]);
            break;
          case 2: {
            // Forced edge: endpoint values are fixed regardless of val[u];
            // (already seeded above) but re-derive for safety.
            const int from_v = a.rise ? 0 : 1;
            assign(a.other, a.forward ? 1 - from_v : from_v);
            break;
          }
        }
      }
    }

    for (std::uint32_t st = 0; st < num_states; ++st) {
      if (val[st] == -1) {
        // Unreached by propagation: disconnected component (cannot happen for
        // reachability graphs, which are rooted) — but stay defensive.
        throw util::SemanticsError("signal value underdetermined for " + stg.signal_name(s));
      }
      codes[st].set(s, val[st] == 1);
    }
  }
  return codes;
}

}  // namespace

StateGraph StateGraph::from_stg(const stg::Stg& stg, const BuildOptions& opts) {
  petri::ReachabilityOptions ropts;
  ropts.max_markings = opts.max_states;
  ropts.max_tokens_per_place = opts.require_safe ? 1 : 255;
  const auto reach = petri::reachability(stg.net(), stg.initial_marking(), ropts);
  if (!reach.complete) {
    throw util::LimitError("state graph of '" + stg.name() + "' exceeds " +
                           std::to_string(opts.max_states) + " states");
  }
  if (opts.require_safe && !reach.safe) {
    throw util::SemanticsError("STG '" + stg.name() + "' is not safe (a place holds >1 token)");
  }

  // Signal table: all non-dummy signals, preserving STG ids.  Dummy signals
  // occupy no code column; their transitions become silent edges.  To keep
  // SignalId stable between the STG and the state graph we require dummies
  // to come after real signals or map densely; simplest is to map densely
  // and remember the mapping.
  std::vector<SignalInfo> infos;
  std::vector<SignalId> dense(stg.num_signals(), stg::kNoSignal);
  for (stg::SignalId s = 0; s < stg.num_signals(); ++s) {
    if (stg.signal_kind(s) == stg::SignalKind::Dummy) continue;
    dense[s] = static_cast<SignalId>(infos.size());
    infos.push_back(SignalInfo{stg.signal_name(s), stg.is_input(s)});
  }

  const auto codes = infer_codes(stg, reach);

  StateGraph g(std::move(infos));
  for (std::uint32_t st = 0; st < reach.markings.size(); ++st) {
    // Re-pack the code to drop dummy columns.
    util::BitVec packed(g.num_signals());
    for (stg::SignalId s = 0; s < stg.num_signals(); ++s) {
      if (dense[s] != stg::kNoSignal) packed.set(dense[s], codes[st].test(s));
    }
    g.add_state(std::move(packed));
  }
  g.set_initial(0);

  for (const auto& e : reach.edges) {
    const stg::Label& l = stg.label(e.trans);
    Edge edge;
    edge.to = e.to;
    if (l.is_silent()) {
      edge.sig = stg::kNoSignal;
    } else {
      edge.sig = dense[l.sig];
      edge.rise = l.pol == stg::Polarity::Toggle ? g.code(e.to).test(dense[l.sig])
                                                 : l.pol == stg::Polarity::Rise;
    }
    g.add_edge(e.from, edge);
  }

  g.check_consistency();
  return g;
}

std::vector<std::vector<StateId>> code_classes(const StateGraph& g) {
  std::unordered_map<util::BitVec, std::vector<StateId>, util::BitVecHash> by_code;
  for (StateId s = 0; s < g.num_states(); ++s) by_code[g.code(s)].push_back(s);
  std::vector<std::vector<StateId>> classes;
  for (auto& [code, states] : by_code) {
    if (states.size() >= 2) classes.push_back(std::move(states));
  }
  // Deterministic order: by smallest member.
  std::sort(classes.begin(), classes.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  return classes;
}

}  // namespace mps::sg

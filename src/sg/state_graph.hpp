// State graphs (§2): the finite automaton of all reachable STG markings,
// with a consistent binary code per state.
//
// A StateGraph is self-contained (it carries its own signal table) because
// synthesis repeatedly derives new graphs — projections, quotients and
// expansions — whose signal sets differ from the source STG's.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "petri/net.hpp"
#include "stg/stg.hpp"
#include "util/bitvec.hpp"

namespace mps::petri {
struct ReachabilityResult;
}

namespace mps::sg {

using StateId = std::uint32_t;
using stg::SignalId;
inline constexpr StateId kNoState = 0xFFFFFFFFu;

/// One labelled edge of the state graph: firing a rise/fall of `sig`
/// (or a silent ε step when sig == stg::kNoSignal).
struct Edge {
  SignalId sig = stg::kNoSignal;
  bool rise = false;  ///< meaningless for silent edges
  StateId to = kNoState;

  bool is_silent() const { return sig == stg::kNoSignal; }
  bool operator==(const Edge&) const = default;
};

struct SignalInfo {
  std::string name;
  bool is_input = false;
};

struct BuildOptions {
  std::size_t max_states = 1u << 20;
  /// Require a safe net (every reachable marking 0/1 tokens per place).
  bool require_safe = true;
  /// Run the full O(V·E) structural self-check on the freshly built graph.
  /// The default keeps checking; inner-loop callers that rebuild graphs
  /// repeatedly (baseline re-expansion) may turn it off — construction
  /// itself guarantees the invariants, the check is defense in depth.
  bool check_consistency = true;
};

class StateGraph {
 public:
  StateGraph() = default;
  explicit StateGraph(std::vector<SignalInfo> signals) : signals_(std::move(signals)) {
    input_mask_.resize(signals_.size());
    for (SignalId s = 0; s < signals_.size(); ++s) {
      index_signal(s);
      if (signals_[s].is_input) input_mask_.set(s);
    }
  }

  /// Exhaustive reachability + consistent-code inference (§2).  Throws
  /// util::SemanticsError if the STG admits no consistent state assignment
  /// (e.g. a+ enabled in a state where a is already 1), util::LimitError on
  /// state explosion beyond opts.max_states.  Dummy/ε transitions are kept
  /// as silent edges; see sg::contract_silent() to remove them.
  static StateGraph from_stg(const stg::Stg& stg, const BuildOptions& opts = {});

  // --- signals ---------------------------------------------------------
  std::size_t num_signals() const { return signals_.size(); }
  const SignalInfo& signal(SignalId s) const { return signals_[s]; }
  const std::vector<SignalInfo>& signals() const { return signals_; }
  bool is_input(SignalId s) const { return signals_[s].is_input; }
  /// Bit s set iff signal s is an input — maintained incrementally so hot
  /// loops can mask input signals with one and_not instead of a per-signal
  /// scan.
  const util::BitVec& input_mask() const { return input_mask_; }
  SignalId find_signal(std::string_view name) const;
  /// Append a signal column; every existing state code gets `value` for it.
  SignalId add_signal(const SignalInfo& info, bool value = false);

  // --- states & edges ---------------------------------------------------
  std::size_t num_states() const { return codes_.size(); }
  StateId initial() const { return initial_; }
  void set_initial(StateId s) { initial_ = s; }

  StateId add_state(util::BitVec code);
  void add_edge(StateId from, const Edge& e) {
    out_[from].push_back(e);
    ++num_edges_;
  }

  const util::BitVec& code(StateId s) const { return codes_[s]; }
  bool value(StateId s, SignalId sig) const { return codes_[s].test(sig); }
  const std::vector<Edge>& out(StateId s) const { return out_[s]; }

  /// Signals excited in `s` (those with an outgoing rise/fall edge).
  util::BitVec excited(StateId s) const;
  /// Non-input signals excited in `s` (the CSC-relevant set).
  util::BitVec excited_non_input(StateId s) const;
  /// True if `sig` has an outgoing edge at `s` with the given direction.
  bool excited_dir(StateId s, SignalId sig, bool rise) const;

  /// Total edge count (diagnostics / formula-size model); maintained by
  /// add_edge(), not recomputed.
  std::size_t num_edges() const { return num_edges_; }
  /// Number of (state, unordered transition pair) instances where two
  /// different signals are enabled together — N_ct in the §2.1 size model.
  std::size_t num_concurrent_pairs() const;

  /// Reverse adjacency, built on demand (stable until states/edges change).
  std::vector<std::vector<StateId>> predecessors() const;

  /// Defensive structural check (tests): edges in range, codes consistent
  /// with edge labels, initial in range.
  void check_consistency() const;

 private:
  /// Heterogeneous string hashing so find_signal(string_view) needs no
  /// temporary std::string.
  struct NameHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  void index_signal(SignalId s);

  std::vector<SignalInfo> signals_;
  /// name -> lowest SignalId with that name (same answer as a front-to-back
  /// linear scan); maintained by the constructor and add_signal().
  std::unordered_map<std::string, SignalId, NameHash, std::equal_to<>> by_name_;
  util::BitVec input_mask_;               // bit per signal; see input_mask()
  std::vector<util::BitVec> codes_;       // per state; width == signals_.size()
  std::vector<std::vector<Edge>> out_;    // per state
  std::size_t num_edges_ = 0;
  StateId initial_ = 0;
};

/// Group states by identical code.  Returns class representative list:
/// classes[k] = state ids sharing one code (only classes of size >= 2).
std::vector<std::vector<StateId>> code_classes(const StateGraph& g);

/// Consistent state assignment inference (§2), exposed for tests and
/// microbenchmarks: per-state signal values over the reachability graph, in
/// one pass over its edges.  Throws util::SemanticsError if no consistent
/// assignment exists.  from_stg() is the normal entry point.
std::vector<util::BitVec> infer_codes(const stg::Stg& stg,
                                      const petri::ReachabilityResult& reach);

}  // namespace mps::sg

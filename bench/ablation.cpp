// Ablations over the design choices DESIGN.md calls out:
//   1. input-set hiding order (Figure 2 leaves it unspecified),
//   2. lower-bound seeding of the signal-count loop (Figure 4),
//   3. input properness (not in the paper's constraint set; see DESIGN.md),
//   4. WalkSAT front end vs pure DPLL in partition_sat,
//   5. naive vs Tseitin separation encoding.
// Each variant runs the modular flow over a fixed benchmark set and prints
// inserted signals / final states / area / time.
#include <cstdio>
#include <vector>

#include "mps.hpp"

namespace {

using namespace mps;

const std::vector<const char*> kSet = {"nouse",  "wrdata",         "pa",
                                       "atod",   "alloc-outbound", "nak-pa",
                                       "mmu1",   "sbuf-ram-write", "mmu0"};

struct Totals {
  std::size_t added_signals = 0;
  std::size_t final_states = 0;
  std::size_t literals = 0;
  double seconds = 0.0;
  int failures = 0;
};

Totals run(const core::SynthesisOptions& opts) {
  Totals t;
  for (const char* name : kSet) {
    const auto g = sg::StateGraph::from_stg(benchmarks::find_benchmark(name)->make());
    const auto r = core::modular_synthesis(g, opts);
    if (!r.success) {
      ++t.failures;
      continue;
    }
    t.added_signals += r.final_signals - r.initial_signals;
    t.final_states += r.final_states;
    t.literals += r.total_literals;
    t.seconds += r.seconds;
  }
  return t;
}

void report(const char* label, const Totals& t) {
  std::printf("%-34s  +signals %3zu  states %6zu  literals %5zu  time %6.2fs  fail %d\n",
              label, t.added_signals, t.final_states, t.literals, t.seconds, t.failures);
}

}  // namespace

int main() {
  std::printf("Ablations over %zu benchmarks (totals across the set)\n\n", kSet.size());

  {
    std::printf("-- input-set hiding order (Fig. 2 greedy) --\n");
    for (const auto [order, label] :
         {std::pair{core::InputSetOptions::Order::SignalId, "signal-id order (default)"},
          std::pair{core::InputSetOptions::Order::FewestEdgesFirst, "fewest-edges first"},
          std::pair{core::InputSetOptions::Order::MostEdgesFirst, "most-edges first"}}) {
      core::SynthesisOptions opts;
      opts.input_set.order = order;
      report(label, run(opts));
    }
  }
  {
    std::printf("\n-- lower-bound seeding of the m loop (Fig. 4) --\n");
    core::SynthesisOptions with;
    report("start at lower bound (default)", run(with));
    core::SynthesisOptions without;
    without.sat.seed_lower_bound = false;
    report("always start at m = 1", run(without));
  }
  {
    std::printf("\n-- input properness (extra constraint, not in the paper) --\n");
    core::SynthesisOptions off;
    report("off (paper-faithful, default)", run(off));
    core::SynthesisOptions on;
    on.sat.encode.input_properness = true;
    report("on (inputs never delayed)", run(on));
  }
  {
    std::printf("\n-- SAT back end for the module formulas --\n");
    core::SynthesisOptions dpll;
    report("DPLL only (default)", run(dpll));
    core::SynthesisOptions walk;
    walk.sat.use_local_search = true;
    report("WalkSAT first, DPLL fallback", run(walk));
    core::SynthesisOptions bdd;
    bdd.sat.use_bdd = true;
    report("BDD characteristic function [19]", run(bdd));
  }
  {
    std::printf("\n-- separation clause encoding --\n");
    core::SynthesisOptions naive;
    naive.sat.encode.naive_max_m = 10;
    report("naive 4^m expansion", run(naive));
    core::SynthesisOptions tseitin;
    tseitin.sat.encode.naive_max_m = 0;
    report("Tseitin auxiliaries", run(tseitin));
  }
  std::printf("\nNotes: 'input properness on' may fail on specifications whose only\n");
  std::printf("insertion points sit on input edges; the count appears under 'fail'.\n");
  return 0;
}

// Microbenchmarks pinning the observability layer's cost contract
// (src/obs/obs.hpp): a disabled span or counter site costs one relaxed
// atomic load and a branch — compare BM_SpanDisabled against BM_BaselineLoop
// to see the per-site overhead, and BM_SpanEnabled for the recording cost a
// --trace run pays.
#include <benchmark/benchmark.h>

#include "obs/obs.hpp"

namespace {

/// The empty-loop floor the disabled cases are compared against.
void BM_BaselineLoop(benchmark::State& state) {
  std::int64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(++x);
  }
}
BENCHMARK(BM_BaselineLoop);

void BM_SpanDisabled(benchmark::State& state) {
  mps::obs::set_enabled(false);
  for (auto _ : state) {
    mps::obs::Span span("bench.disabled");
    span.arg("k", 1);
    benchmark::DoNotOptimize(span.active());
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_CounterDisabled(benchmark::State& state) {
  mps::obs::set_enabled(false);
  std::int64_t i = 0;
  for (auto _ : state) {
    mps::obs::counter_add("bench.counter", ++i);
  }
  benchmark::DoNotOptimize(mps::obs::counter_value("bench.counter"));
}
BENCHMARK(BM_CounterDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  mps::obs::set_enabled(true);
  mps::obs::reset();
  for (auto _ : state) {
    mps::obs::Span span("bench.enabled");
    span.arg("k", 1);
  }
  state.counters["events"] = static_cast<double>(mps::obs::num_events());
  mps::obs::set_enabled(false);
  mps::obs::reset();
}
BENCHMARK(BM_SpanEnabled);

void BM_CounterEnabled(benchmark::State& state) {
  mps::obs::set_enabled(true);
  mps::obs::reset();
  std::int64_t i = 0;
  for (auto _ : state) {
    mps::obs::counter_add("bench.counter", ++i);
  }
  mps::obs::set_enabled(false);
  mps::obs::reset();
}
BENCHMARK(BM_CounterEnabled);

}  // namespace

BENCHMARK_MAIN();

// The §2.1 formula-size model:
//
//   clauses ≈ m · (c1·E + c2·N_ct + N_usc·c3^m + N_csc·c4^m)
//   variables = 2 · N · m
//
// This bench sweeps generated STG families over N (graph size) and m
// (state-signal count) and prints the measured clause/variable counts next
// to the model's terms, so the scaling law can be read off directly:
//   * coherence clauses are linear in E and m       (c1 = 8, +2 with input
//     properness on input edges),
//   * diamond semi-modularity is linear in N_ct · m (c2 = 16),
//   * separation clauses grow as 4^m per conflict   (c4 = 4, naive mode),
//   * compatibility clauses grow linearly (6·m + 4·m per pair) in the
//     auxiliary-variable form; the paper's direct expansion is c3^m.
#include <cstdio>

#include "mps.hpp"

namespace {

using namespace mps;

void measure(const char* family, const stg::Stg& stg) {
  const auto g = sg::StateGraph::from_stg(stg);
  const auto a = sg::analyze_csc(g);
  const std::size_t e = g.num_edges();
  const std::size_t nct = g.num_concurrent_pairs();
  std::printf("%-14s N=%5zu E=%5zu N_ct=%5zu N_csc=%5zu N_usc=%5zu\n", family,
              g.num_states(), e, nct, a.conflicts.size(),
              a.compatible_pairs.size());
  encoding::EncodeOptions opts;
  opts.naive_max_m = 10;  // keep the naive expansion for the c4^m series
  for (std::size_t m = 1; m <= 3; ++m) {
    const encoding::Encoding enc(g, m, a.conflicts, a.compatible_pairs, opts);
    const std::size_t model_coherence = 8 * e * m;
    const std::size_t model_diamond = 16 * nct * m;
    std::size_t c4m = 1;
    for (std::size_t i = 0; i < m; ++i) c4m *= 4;
    const std::size_t model_sep = a.conflicts.size() * c4m;
    const std::size_t model_compat = a.compatible_pairs.size() * (6 * m + 4 * m);
    std::printf("  m=%zu: vars %6zu (model 2Nm = %6zu)   clauses %7zu "
                "(model %7zu = %zu coh + %zu dia + %zu sep + %zu compat)\n",
                m, enc.cnf().num_vars(), 2 * g.num_states() * m, enc.cnf().num_clauses(),
                model_coherence + model_diamond + model_sep + model_compat,
                model_coherence, model_diamond, model_sep, model_compat);
  }
}

}  // namespace

int main() {
  std::printf("Formula-size model check (§2.1): measured vs predicted counts\n");
  std::printf("(counts match up to clause normalization, which drops duplicate\n");
  std::printf(" and tautological clauses — the measured value is never larger)\n\n");

  for (int channels = 1; channels <= 3; ++channels) {
    measure("parallelizer", benchmarks::gen_parallelizer(
                                "par" + std::to_string(channels), channels));
  }
  for (int stages = 2; stages <= 6; stages += 2) {
    measure("sequencer",
            benchmarks::gen_sequencer("seq" + std::to_string(stages), stages));
  }
  for (int stages = 1; stages <= 3; ++stages) {
    measure("pipeline",
            benchmarks::gen_pipeline("pipe" + std::to_string(stages), stages));
  }
  for (int signals = 2; signals <= 4; ++signals) {
    measure("pulse-ring",
            benchmarks::gen_toggle_ring("ring" + std::to_string(signals), signals));
  }
  return 0;
}

// Microbenchmarks of the SAT substrate: encoding construction, DPLL and
// WalkSAT on the CSC formulas the synthesis flow actually generates.
#include <benchmark/benchmark.h>

#include <map>
#include <string>

#include "mps.hpp"

namespace {

using namespace mps;

const sg::StateGraph& graph_of(const std::string& name) {
  static std::map<std::string, sg::StateGraph> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    it = cache.emplace(name, sg::StateGraph::from_stg(
                                 benchmarks::find_benchmark(name)->make()))
             .first;
  }
  return it->second;
}

void BM_EncodeCsc(benchmark::State& state, const char* name, std::size_t m) {
  const auto& g = graph_of(name);
  const auto analysis = sg::analyze_csc(g);
  for (auto _ : state) {
    const encoding::Encoding enc(g, m, analysis.conflicts, analysis.compatible_pairs);
    benchmark::DoNotOptimize(enc.cnf().num_clauses());
  }
  state.counters["clauses"] = static_cast<double>(
      encoding::Encoding(g, m, analysis.conflicts, analysis.compatible_pairs)
          .cnf()
          .num_clauses());
}
BENCHMARK_CAPTURE(BM_EncodeCsc, mmu1_m2, "mmu1", 2);
BENCHMARK_CAPTURE(BM_EncodeCsc, mmu0_m3, "mmu0", 3);
BENCHMARK_CAPTURE(BM_EncodeCsc, mr0_m3, "mr0", 3);

void BM_DpllModuleFormula(benchmark::State& state, const char* name) {
  // Solve the first nontrivial module formula of the benchmark.
  const auto& g = graph_of(name);
  sg::Assignments none(g.num_states());
  encoding::Encoding* enc = nullptr;
  for (sg::SignalId o = 0; o < g.num_signals() && enc == nullptr; ++o) {
    if (g.is_input(o)) continue;
    const auto isr = core::determine_input_set(g, o, none);
    const auto module = core::build_module(g, o, isr, none);
    if (module.conflicts.empty()) continue;
    enc = new encoding::Encoding(module.proj.graph,
                                 static_cast<std::size_t>(std::max(1, module.lower_bound)),
                                 module.conflicts, module.compatible_pairs);
  }
  if (enc == nullptr) {
    state.SkipWithError("no module with conflicts");
    return;
  }
  for (auto _ : state) {
    sat::Model model;
    const auto outcome = sat::Solver().solve(enc->cnf(), &model);
    benchmark::DoNotOptimize(outcome);
  }
  state.counters["vars"] = static_cast<double>(enc->cnf().num_vars());
  delete enc;
}
BENCHMARK_CAPTURE(BM_DpllModuleFormula, mmu1, "mmu1");
BENCHMARK_CAPTURE(BM_DpllModuleFormula, nak_pa, "nak-pa");
BENCHMARK_CAPTURE(BM_DpllModuleFormula, sbuf_ram_write, "sbuf-ram-write");

void BM_WalkSatRandom3Sat(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  util::Rng rng(42);
  sat::Cnf cnf;
  cnf.new_vars(vars);
  for (int c = 0; c < vars * 3; ++c) {
    std::vector<sat::Lit> clause;
    for (int k = 0; k < 3; ++k) {
      clause.push_back(
          sat::Lit::make(static_cast<sat::Var>(rng.below(vars)), rng.chance(0.5)));
    }
    cnf.add_clause(clause);
  }
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sat::Model model;
    sat::LocalSearchOptions opts;
    opts.seed = seed++;
    benchmark::DoNotOptimize(sat::walksat(cnf, &model, nullptr, opts));
  }
}
BENCHMARK(BM_WalkSatRandom3Sat)->Arg(50)->Arg(100)->Arg(200);

void BM_DimacsRoundTrip(benchmark::State& state) {
  const auto& g = graph_of("mmu1");
  const auto enc = encoding::encode_csc(g, 2);
  for (auto _ : state) {
    const std::string text = sat::write_dimacs(enc.cnf());
    const sat::Cnf back = sat::parse_dimacs(text);
    benchmark::DoNotOptimize(back.num_clauses());
  }
}
BENCHMARK(BM_DimacsRoundTrip);

}  // namespace

BENCHMARK_MAIN();

// Microbenchmarks of the two-level minimizer (the espresso replacement)
// and the BDD package.
#include <benchmark/benchmark.h>

#include "mps.hpp"

namespace {

using namespace mps;

logic::SopSpec random_spec(std::uint64_t seed, std::size_t vars, double on_p, double off_p) {
  util::Rng rng(seed);
  logic::SopSpec spec;
  spec.num_vars = vars;
  for (std::uint64_t x = 0; x < (std::uint64_t{1} << vars); ++x) {
    util::BitVec c(vars);
    for (std::size_t v = 0; v < vars; ++v) c.set(v, (x >> v) & 1);
    const double dice = rng.uniform();
    if (dice < on_p) {
      spec.on.push_back(c);
    } else if (dice < on_p + off_p) {
      spec.off.push_back(c);
    }
  }
  return spec;
}

void BM_HeuristicMinimize(benchmark::State& state) {
  const auto spec = random_spec(7, static_cast<std::size_t>(state.range(0)), 0.4, 0.4);
  for (auto _ : state) {
    const auto f = logic::heuristic_minimize(spec);
    benchmark::DoNotOptimize(f.literal_count());
  }
}
BENCHMARK(BM_HeuristicMinimize)->Arg(6)->Arg(8)->Arg(10);

void BM_ExactMinimize(benchmark::State& state) {
  const auto spec = random_spec(11, static_cast<std::size_t>(state.range(0)), 0.35, 0.4);
  for (auto _ : state) {
    const auto f = logic::exact_minimize(spec);
    benchmark::DoNotOptimize(f.has_value());
  }
}
BENCHMARK(BM_ExactMinimize)->Arg(6)->Arg(8)->Arg(10);

void BM_ExtractNextState(benchmark::State& state) {
  const auto g =
      sg::StateGraph::from_stg(benchmarks::find_benchmark("sbuf-ram-write")->make());
  const auto r = core::modular_synthesis(g);
  if (!r.success) {
    state.SkipWithError("synthesis failed");
    return;
  }
  sg::SignalId s = 0;
  while (r.final_graph.is_input(s)) ++s;
  for (auto _ : state) {
    const auto spec = logic::extract_next_state(r.final_graph, s);
    benchmark::DoNotOptimize(spec.on.size());
  }
}
BENCHMARK(BM_ExtractNextState);

void BM_DeriveAllLogic(benchmark::State& state, const char* name) {
  const auto g =
      sg::StateGraph::from_stg(benchmarks::find_benchmark(name)->make());
  core::SynthesisOptions opts;
  opts.derive_logic = false;
  const auto r = core::modular_synthesis(g, opts);
  if (!r.success) {
    state.SkipWithError("synthesis failed");
    return;
  }
  for (auto _ : state) {
    const auto lits = core::derive_all_logic(r.final_graph, {}, nullptr);
    benchmark::DoNotOptimize(lits);
  }
}
BENCHMARK_CAPTURE(BM_DeriveAllLogic, mmu1, "mmu1");
BENCHMARK_CAPTURE(BM_DeriveAllLogic, atod, "atod");

void BM_BddFromMinterms(benchmark::State& state) {
  const auto g = sg::StateGraph::from_stg(benchmarks::find_benchmark("mmu0")->make());
  std::vector<mps::util::BitVec> codes;
  for (sg::StateId s = 0; s < g.num_states(); ++s) codes.push_back(g.code(s));
  for (auto _ : state) {
    bdd::Manager mgr(g.num_signals());
    benchmark::DoNotOptimize(mgr.from_minterms(codes));
  }
}
BENCHMARK(BM_BddFromMinterms);

void BM_BddCscCheck(benchmark::State& state) {
  const auto spec = benchmarks::find_benchmark("mmu1")->make();
  for (auto _ : state) {
    bdd::SymbolicStg sym(spec);
    benchmark::DoNotOptimize(sym.check_csc().holds);
  }
}
BENCHMARK(BM_BddCscCheck);

}  // namespace

BENCHMARK_MAIN();

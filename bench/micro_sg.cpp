// Microbenchmarks of the state-graph substrate: reachability + coding,
// CSC analysis, projection (the ε-merge at the heart of the partitioning)
// and expansion.
#include <benchmark/benchmark.h>

#include "mps.hpp"

namespace {

using namespace mps;

void BM_StateGraphFromStg(benchmark::State& state) {
  const auto stg =
      benchmarks::gen_parallelizer("par", static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const auto g = sg::StateGraph::from_stg(stg);
    benchmark::DoNotOptimize(g.num_states());
  }
  state.counters["states"] =
      static_cast<double>(sg::StateGraph::from_stg(stg).num_states());
}
BENCHMARK(BM_StateGraphFromStg)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_Reachability(benchmark::State& state, const char* name) {
  const auto stg = benchmarks::find_benchmark(name)->make();
  for (auto _ : state) {
    const auto r = petri::reachability(stg.net(), stg.initial_marking());
    benchmark::DoNotOptimize(r.markings.size());
  }
  state.counters["markings"] = static_cast<double>(
      petri::reachability(stg.net(), stg.initial_marking()).markings.size());
}
BENCHMARK_CAPTURE(BM_Reachability, mmu0, "mmu0");
BENCHMARK_CAPTURE(BM_Reachability, mr0, "mr0");

void BM_InferCodes(benchmark::State& state, const char* name) {
  const auto stg = benchmarks::find_benchmark(name)->make();
  const auto reach = petri::reachability(stg.net(), stg.initial_marking());
  for (auto _ : state) {
    const auto codes = sg::infer_codes(stg, reach);
    benchmark::DoNotOptimize(codes.size());
  }
}
BENCHMARK_CAPTURE(BM_InferCodes, mmu0, "mmu0");
BENCHMARK_CAPTURE(BM_InferCodes, mr0, "mr0");

void BM_AnalyzeCsc(benchmark::State& state, const char* name) {
  const auto g =
      sg::StateGraph::from_stg(benchmarks::find_benchmark(name)->make());
  for (auto _ : state) {
    const auto a = sg::analyze_csc(g);
    benchmark::DoNotOptimize(a.conflicts.size());
  }
}
BENCHMARK_CAPTURE(BM_AnalyzeCsc, mmu1, "mmu1");
BENCHMARK_CAPTURE(BM_AnalyzeCsc, mmu0, "mmu0");
BENCHMARK_CAPTURE(BM_AnalyzeCsc, mr0, "mr0");

void BM_HideSignals(benchmark::State& state, const char* name) {
  const auto g =
      sg::StateGraph::from_stg(benchmarks::find_benchmark(name)->make());
  util::BitVec hide(g.num_signals());
  for (sg::SignalId s = 1; s < g.num_signals(); s += 2) hide.set(s);
  for (auto _ : state) {
    const auto proj = sg::hide_signals(g, hide);
    benchmark::DoNotOptimize(proj.graph.num_states());
  }
}
BENCHMARK_CAPTURE(BM_HideSignals, mmu0, "mmu0");
BENCHMARK_CAPTURE(BM_HideSignals, mr0, "mr0");

void BM_DetermineInputSet(benchmark::State& state, const char* name) {
  const auto g =
      sg::StateGraph::from_stg(benchmarks::find_benchmark(name)->make());
  sg::Assignments none(g.num_states());
  sg::SignalId o = 0;
  while (g.is_input(o)) ++o;
  for (auto _ : state) {
    const auto isr = core::determine_input_set(g, o, none);
    benchmark::DoNotOptimize(isr.kept.count());
  }
}
BENCHMARK_CAPTURE(BM_DetermineInputSet, mmu1, "mmu1");
BENCHMARK_CAPTURE(BM_DetermineInputSet, mmu0, "mmu0");

void BM_FullModularSynthesis(benchmark::State& state, const char* name) {
  const auto g =
      sg::StateGraph::from_stg(benchmarks::find_benchmark(name)->make());
  core::SynthesisOptions opts;
  opts.derive_logic = false;  // isolate the partitioning + expansion cost
  for (auto _ : state) {
    const auto r = core::modular_synthesis(g, opts);
    benchmark::DoNotOptimize(r.final_states);
  }
}
BENCHMARK_CAPTURE(BM_FullModularSynthesis, mmu1, "mmu1");
BENCHMARK_CAPTURE(BM_FullModularSynthesis, nak_pa, "nak-pa");

void BM_SemiModularityCheck(benchmark::State& state, const char* name) {
  const auto g =
      sg::StateGraph::from_stg(benchmarks::find_benchmark(name)->make());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sg::semi_modularity_violations(g).size());
  }
}
BENCHMARK_CAPTURE(BM_SemiModularityCheck, mr0, "mr0");

}  // namespace

BENCHMARK_MAIN();

// Reproduces the paper's §4 formula-size narrative:
//
//   "For STG benchmark mmu0, the direct SAT formulation requires the
//    solution of a very large SAT formula with 35,386 clauses and 1,044
//    variables.  In comparison, our modular synthesis approach requires
//    the solution of only three very small SAT formulas, one with 85
//    clauses and 18 variables and the other two with 954 clauses and 96
//    variables each."
//
// For each large benchmark this prints the direct encoding's size (at the
// lower-bound signal count, as in the paper) next to every module formula
// the modular flow actually solved.
#include <cstdio>

#include "mps.hpp"

int main() {
  using namespace mps;

  std::printf("Formula sizes: direct (no decomposition) vs per-module (decomposition)\n");
  std::printf("paper reference, mmu0: direct 35386 clauses / 1044 vars; modules 954/96, "
              "954/96, 85/18\n\n");

  for (const char* name : {"mr0", "mr1", "mmu0", "mmu1", "nak-pa", "sbuf-ram-write"}) {
    const auto* b = benchmarks::find_benchmark(name);
    const auto g = sg::StateGraph::from_stg(b->make());
    const auto analysis = sg::analyze_csc(g);
    const std::size_t m = static_cast<std::size_t>(std::max(1, analysis.lower_bound));
    const encoding::Encoding direct(g, m, analysis.conflicts, analysis.compatible_pairs);

    core::SynthesisOptions opts;
    opts.derive_logic = false;
    const auto r = core::modular_synthesis(g, opts);

    std::printf("%-15s states %4zu  conflicts %4zu  lower bound %d\n", name, g.num_states(),
                analysis.conflicts.size(), analysis.lower_bound);
    std::printf("  direct formula        : %7zu clauses, %5zu vars  (m = %zu)\n",
                direct.cnf().num_clauses(), direct.cnf().num_vars(), m);
    std::size_t total = 0;
    std::size_t count = 0;
    for (const auto& module : r.modules) {
      for (const auto& f : module.formulas) {
        std::printf("  module %-12s : %7zu clauses, %5zu vars  (m = %zu, %s)\n",
                    module.output.c_str(), f.num_clauses, f.num_vars, f.num_new_signals,
                    f.outcome == sat::Outcome::Sat     ? "SAT"
                    : f.outcome == sat::Outcome::Unsat ? "UNSAT"
                                                       : "limit");
        total += f.num_clauses;
        ++count;
      }
    }
    if (count > 0) {
      std::printf("  all %zu module formulas together: %zu clauses — %.1fx smaller than "
                  "the direct formula\n",
                  count, total,
                  total > 0 ? static_cast<double>(direct.cnf().num_clauses()) / total : 0.0);
    }
    std::printf("\n");
  }
  return 0;
}

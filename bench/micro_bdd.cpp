// Microbenchmarks of the BDD layer: the memoized-vs-unmemoized restrict
// (the satellite fix this PR pins), the relational product against the
// naive conjoin-then-quantify schedule, and the symbolic engine against
// explicit enumeration on the pipeline family.
#include <benchmark/benchmark.h>

#include <vector>

#include "mps.hpp"

namespace {

using namespace mps;

/// n-variable parity — maximally shared: 2n-1 internal nodes, every one
/// reached along exponentially many paths, so an unmemoized cofactor walk
/// is Θ(2^n) while the memoized one is Θ(n).
bdd::NodeId parity(bdd::Manager& mgr, std::uint32_t n) {
  bdd::NodeId f = bdd::kFalse;
  for (std::uint32_t v = n; v-- > 0;) f = mgr.bdd_xor(mgr.var(v), f);
  return f;
}

void BM_RestrictMemo(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  bdd::Manager mgr(n);
  const bdd::NodeId f = parity(mgr, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.restrict(f, n - 2, true));
  }
}
BENCHMARK(BM_RestrictMemo)->Arg(20);

void BM_RestrictNoMemo(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  bdd::Manager mgr(n);
  const bdd::NodeId f = parity(mgr, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.restrict_nomemo(f, n - 2, true));
  }
}
BENCHMARK(BM_RestrictNoMemo)->Arg(20);

/// One image step of the pipeline engine, comparing the fused relational
/// product with the same computation as conjoin-then-quantify.
struct ImageFixture {
  stg::Stg spec;
  bdd::SymbolicStg sym;
  explicit ImageFixture(int stages)
      : spec(benchmarks::gen_pipeline("pipe", stages)), sym(spec) {
    sym.reachable();
  }
};

void BM_AndExistsFused(benchmark::State& state) {
  static ImageFixture fx(10);
  bdd::Manager& mgr = fx.sym.manager();
  const bdd::NodeId r = fx.sym.reachable();
  // Quantify the places out of the reached set — the projection CSC does.
  std::vector<std::uint32_t> places;
  for (petri::PlaceId p = 0; p < fx.spec.net().num_places(); ++p) {
    places.push_back(fx.sym.place_var(p));
  }
  const bdd::NodeId cube = mgr.cube(places);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.and_exists(r, r, cube));
  }
}
BENCHMARK(BM_AndExistsFused);

void BM_AndThenExists(benchmark::State& state) {
  static ImageFixture fx(10);
  bdd::Manager& mgr = fx.sym.manager();
  const bdd::NodeId r = fx.sym.reachable();
  std::vector<std::uint32_t> places;
  for (petri::PlaceId p = 0; p < fx.spec.net().num_places(); ++p) {
    places.push_back(fx.sym.place_var(p));
  }
  const bdd::NodeId cube = mgr.cube(places);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.exists_cube(mgr.bdd_and(r, r), cube));
  }
}
BENCHMARK(BM_AndThenExists);

void BM_SymbolicReach(benchmark::State& state) {
  const int stages = static_cast<int>(state.range(0));
  const stg::Stg spec = benchmarks::gen_pipeline("pipe", stages);
  double states_reached = 0;
  for (auto _ : state) {
    bdd::SymbolicStg sym(spec);
    states_reached = sym.num_states();
    benchmark::DoNotOptimize(states_reached);
  }
  state.counters["states"] = states_reached;
}
BENCHMARK(BM_SymbolicReach)->Arg(8)->Arg(12);

void BM_ExplicitReach(benchmark::State& state) {
  const int stages = static_cast<int>(state.range(0));
  const stg::Stg spec = benchmarks::gen_pipeline("pipe", stages);
  std::size_t states_reached = 0;
  for (auto _ : state) {
    const sg::StateGraph g = sg::StateGraph::from_stg(spec);
    states_reached = g.num_states();
    benchmark::DoNotOptimize(states_reached);
  }
  state.counters["states"] = static_cast<double>(states_reached);
}
BENCHMARK(BM_ExplicitReach)->Arg(8);

}  // namespace

BENCHMARK_MAIN();

// Table 1 reproduction: all 23 STG benchmarks through the three methods —
// our modular partitioning, Vanbekbergen et al.'s direct (no-decomposition)
// SAT, and the Lavagno/Moon-style monolithic insertion — printing the same
// columns the paper reports, side by side with the paper's values.
//
// Absolute CPU times are not comparable (the paper used a SUN SPARC-2);
// the claims under reproduction are the *shape*: the modular method
// finishes everywhere and fast, the direct method's formulas defeat
// branch-and-bound search on the large entries ("SAT Backtrack Limit"),
// and the monolithic method costs one to three orders of magnitude more
// time than the modular one on large graphs.
//
// The per-benchmark rows are independent, so they are computed on a
// util::ThreadPool (`--threads N`; `--threads 1` reproduces the serial
// run) and printed in table order afterwards.  Each row's synthesis runs
// with num_threads = 1 so the printed per-row cpu columns stay comparable
// with the paper's single-core measurements.  `--json PATH` additionally
// writes a machine-readable report (one record per benchmark × method)
// for the perf-regression harness; see BENCH_table1.json.  `--engine cdcl`
// swaps every sub-solve onto the clause-learning engine (the run that
// retires the LIMIT rows; committed as BENCH_table1_cdcl.json) while the
// default dpll run stays bit-identical to the paper-faithful reference.
// `--cache-dir D`
// routes every (benchmark, method) cell through the svc::Cache result
// cache: a warm re-run reads all rows back from disk (the printed cpu
// columns then show the original cold-run times) and reports the hit rate.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "mps.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace mps;

std::string num(std::size_t v) { return std::to_string(v); }
std::string secs(double s) { return util::format("%.2f", s); }

struct Row {
  std::string name;
  std::string init_states, init_sigs;
  std::string m_states, m_sigs, m_area, m_cpu;
  std::string v_states, v_sigs, v_area, v_cpu;
  std::string l_sigs, l_area, l_cpu;
};

void print_row(const Row& r) {
  std::printf("%-15s|%6s %5s |%7s %5s %5s %8s |%7s %5s %5s %8s |%5s %5s %8s\n",
              r.name.c_str(), r.init_states.c_str(), r.init_sigs.c_str(),
              r.m_states.c_str(), r.m_sigs.c_str(), r.m_area.c_str(), r.m_cpu.c_str(),
              r.v_states.c_str(), r.v_sigs.c_str(), r.v_area.c_str(), r.v_cpu.c_str(),
              r.l_sigs.c_str(), r.l_area.c_str(), r.l_cpu.c_str());
}

/// One (benchmark, method) record of the machine-readable report.
struct JsonRow {
  const char* method;  // "modular" | "direct" | "lavagno"
  std::size_t states = 0, signals = 0, literals = 0;
  std::size_t gates = 0, transistors = 0;  // complex-gate netlist (0 on failure)
  const char* outcome = "ok";  // "ok" | "LIMIT" | "FAIL"
  sat::SolverTotals solver;    // search effort behind this row (schema v3/v4)
  double seconds = 0.0;
};

/// Everything one benchmark contributes: its two printed rows plus the raw
/// numbers the summary needs.  Filled concurrently, consumed in order.
struct BenchResult {
  Row ours;
  Row paper;
  bool m_ok = false, v_ok = false, l_ok = false;
  std::size_t m_area = 0, v_area = 0, l_area = 0;
  double m_secs = 0.0, v_secs = 0.0, l_secs = 0.0;
  JsonRow json[3];
};

/// The table's per-method limits on top of the svc defaults.  The direct
/// and lavagno sub-solve caps are tighter than mps_synth's (a survey over
/// 23 benchmarks, not one user run), so these rows get their own cache
/// digests — a table1 cache never collides with daemon entries.
svc::RequestOptions table_request_options(const std::string& method, sat::Engine engine) {
  svc::RequestOptions ropts = svc::default_request_options(method);
  ropts.threads = 1;  // row-level parallelism only; keeps cpu columns comparable
  ropts.direct.solve.max_backtracks = 5000000;
  ropts.direct.solve.time_limit_s = 60.0;
  ropts.lavagno.solve.max_backtracks = 2000000;
  ropts.lavagno.solve.time_limit_s = 20.0;
  ropts.lavagno.time_limit_s = 300.0;
  svc::set_engine(&ropts, engine);  // part of every fingerprint: distinct cache digests
  return ropts;
}

/// Run one (benchmark, method) cell, through the result cache when one is
/// given.  The quality columns of a cache hit are bit-identical to a fresh
/// run by construction: they are read back from the serialized artifact the
/// fresh run produced.  Only `seconds` is historical (the cold run's time).
svc::Artifact run_method(const stg::Stg& spec, const std::string& method, sat::Engine engine,
                         svc::Cache* cache) {
  const svc::RequestOptions ropts = table_request_options(method, engine);
  if (cache == nullptr) return svc::run_synthesis(spec, ropts);
  const std::string digest = svc::request_digest(spec, ropts);
  if (auto payload = cache->get(digest); payload.has_value()) {
    if (auto cached = svc::Artifact::deserialize(*payload); cached.has_value()) {
      return *std::move(cached);
    }
  }
  svc::Artifact a = svc::run_synthesis(spec, ropts);
  cache->put(digest, a.serialize());
  return a;
}

BenchResult run_benchmark(const benchmarks::Benchmark& b, sat::Engine engine,
                          svc::Cache* cache) {
  BenchResult out;
  const stg::Stg spec = b.make();

  const svc::Artifact m = run_method(spec, "modular", engine, cache);
  const svc::Artifact v = run_method(spec, "direct", engine, cache);
  const svc::Artifact l = run_method(spec, "lavagno", engine, cache);

  Row& ours = out.ours;
  ours.name = b.name;
  ours.init_states = num(m.initial_states);
  ours.init_sigs = num(m.initial_signals);
  if (m.success) {
    ours.m_states = num(m.final_states);
    ours.m_sigs = num(m.final_signals);
    ours.m_area = num(m.literals);
    ours.m_cpu = secs(m.seconds);
  } else {
    ours.m_states = ours.m_sigs = ours.m_area = "-";
    ours.m_cpu = "FAIL";
  }
  if (v.success) {
    ours.v_states = num(v.final_states);
    ours.v_sigs = num(v.final_signals);
    ours.v_area = num(v.literals);
    ours.v_cpu = secs(v.seconds);
  } else {
    ours.v_states = ours.v_sigs = ours.v_area = "-";
    ours.v_cpu = v.hit_limit ? "LIMIT" : "FAIL";
  }
  if (l.success) {
    ours.l_sigs = num(l.final_signals);
    ours.l_area = num(l.literals);
    ours.l_cpu = secs(l.seconds);
  } else {
    ours.l_sigs = ours.l_area = "-";
    ours.l_cpu = l.hit_limit ? "LIMIT" : "FAIL";
  }

  Row& paper = out.paper;
  paper.name = "  (paper)";
  paper.init_states = num(b.paper.initial_states);
  paper.init_sigs = num(b.paper.initial_signals);
  paper.m_states = num(b.paper.m_final_states);
  paper.m_sigs = num(b.paper.m_final_signals);
  paper.m_area = num(b.paper.m_area);
  paper.m_cpu = secs(b.paper.m_cpu_s);
  if (b.paper.v_limit) {
    paper.v_states = paper.v_sigs = paper.v_area = "-";
    paper.v_cpu = "LIMIT";
  } else {
    paper.v_states = num(b.paper.v_final_states);
    paper.v_sigs = num(b.paper.v_final_signals);
    paper.v_area = num(b.paper.v_area);
    paper.v_cpu = secs(b.paper.v_cpu_s);
  }
  if (b.paper.l_note != nullptr) {
    paper.l_sigs = paper.l_area = "-";
    paper.l_cpu = "ERROR";
  } else {
    paper.l_sigs = num(b.paper.l_final_signals);
    paper.l_area = num(b.paper.l_area);
    paper.l_cpu = secs(b.paper.l_cpu_s);
  }

  out.m_ok = m.success;
  out.v_ok = v.success;
  out.l_ok = l.success;
  out.m_area = m.literals;
  out.v_area = v.literals;
  out.l_area = l.literals;
  out.m_secs = m.seconds;
  out.v_secs = v.seconds;
  out.l_secs = l.seconds;

  out.json[0] = {"modular", m.final_states, m.final_signals, m.literals,
                 m.gates, m.transistors, m.success ? "ok" : "FAIL", m.solver, m.seconds};
  out.json[1] = {"direct", v.final_states, v.final_signals, v.literals,
                 v.gates, v.transistors,
                 v.success ? "ok" : (v.hit_limit ? "LIMIT" : "FAIL"), v.solver, v.seconds};
  out.json[2] = {"lavagno", l.final_states, l.final_signals, l.literals,
                 l.gates, l.transistors,
                 l.success ? "ok" : (l.hit_limit ? "LIMIT" : "FAIL"), l.solver, l.seconds};
  return out;
}

/// Machine-readable report for the perf-regression harness: one record per
/// (benchmark, method) with the quality columns and wall time, plus totals.
/// schema_version 2 added the per-row complex-gate netlist columns
/// ("gates", "transistors"); schema_version 3 added the per-row solver
/// effort ("decisions", "propagations", "conflicts"); schema_version 4
/// adds the top-level "engine" and the per-row "restarts"/"learned"
/// (both 0 under dpll).  All earlier fields are unchanged: a schema-3
/// consumer reading only its own fields sees identical values.
/// Compare two runs with a plain diff or jq query; the quality fields must
/// never drift between commits, the seconds may — and so may the solver
/// columns of LIMIT rows whose solve was cut off by wall-clock (the
/// backtrack-capped and finishing rows are search-path-determined).
/// BENCH_table1.json in the repository root is the committed reference run
/// (`--threads 1`); BENCH_table1_cdcl.json is the `--engine cdcl` run.
void write_json(const char* path, const std::vector<benchmarks::Benchmark>& benches,
                const std::vector<BenchResult>& results, sat::Engine engine, unsigned threads,
                double wall, double cpu_total) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    std::exit(1);
  }
  std::fprintf(f,
               "{\n  \"benchmark\": \"table1\",\n  \"schema_version\": 4,\n"
               "  \"engine\": \"%s\",\n  \"threads\": %u,\n  \"rows\": [\n",
               sat::engine_name(engine), threads);
  for (std::size_t i = 0; i < results.size(); ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      const JsonRow& r = results[i].json[j];
      std::fprintf(f,
                   "    {\"bench\": \"%s\", \"method\": \"%s\", \"states\": %zu, "
                   "\"signals\": %zu, \"literals\": %zu, \"gates\": %zu, "
                   "\"transistors\": %zu, \"outcome\": \"%s\", "
                   "\"decisions\": %lld, \"propagations\": %lld, \"conflicts\": %lld, "
                   "\"restarts\": %lld, \"learned\": %lld, "
                   "\"seconds\": %.3f}%s\n",
                   benches[i].name.c_str(), r.method, r.states, r.signals, r.literals,
                   r.gates, r.transistors, r.outcome,
                   static_cast<long long>(r.solver.decisions),
                   static_cast<long long>(r.solver.propagations),
                   static_cast<long long>(r.solver.conflicts),
                   static_cast<long long>(r.solver.restarts),
                   static_cast<long long>(r.solver.learned),
                   r.seconds, (i + 1 == results.size() && j == 2) ? "" : ",");
    }
  }
  int ok = 0, limit = 0, fail = 0;
  for (const BenchResult& r : results) {
    for (const JsonRow& row : r.json) {
      if (std::strcmp(row.outcome, "ok") == 0) ++ok;
      else if (std::strcmp(row.outcome, "LIMIT") == 0) ++limit;
      else ++fail;
    }
  }
  std::fprintf(f,
               "  ],\n  \"totals\": {\"rows_ok\": %d, \"rows_limit\": %d, "
               "\"rows_fail\": %d, \"wall_seconds\": %.3f, \"cpu_seconds\": %.3f}\n}\n",
               ok, limit, fail, wall, cpu_total);
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  unsigned threads = util::ThreadPool::hardware_threads();
  const char* json_path = nullptr;
  const char* cache_dir = nullptr;
  sat::Engine engine = sat::Engine::Dpll;
  for (int i = 1; i < argc; ++i) {
    if ((std::strcmp(argv[i], "--threads") == 0 || std::strcmp(argv[i], "-j") == 0) &&
        i + 1 < argc) {
      const auto n = util::parse_int(argv[++i], 1, 1 << 16);
      if (!n.has_value()) {
        std::fprintf(stderr, "error: --threads expects a positive integer, got '%s'\n",
                     argv[i]);
        return 2;
      }
      threads = static_cast<unsigned>(*n);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--cache-dir") == 0 && i + 1 < argc) {
      cache_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc) {
      const auto e = sat::engine_from_name(argv[++i]);
      if (!e.has_value()) {
        std::fprintf(stderr, "error: unknown --engine: '%s' (expected dpll|cdcl)\n", argv[i]);
        return 2;
      }
      engine = *e;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--threads N] [--engine dpll|cdcl] [--json PATH]"
                   " [--cache-dir DIR]\n",
                   argv[0]);
      return 2;
    }
  }

  const auto& benches = benchmarks::table1_benchmarks();
  std::vector<BenchResult> results(benches.size());

  std::unique_ptr<svc::Cache> cache;
  if (cache_dir != nullptr) {
    svc::CacheOptions copts;
    copts.dir = cache_dir;
    cache = std::make_unique<svc::Cache>(copts);
  }

  util::Timer total;
  util::ThreadPool pool(threads);
  pool.parallel_for(benches.size(), [&](std::size_t i) {
    results[i] = run_benchmark(benches[i], engine, cache.get());
  });
  const double wall = total.seconds();

  std::printf("Table 1 — modular partitioning vs direct SAT vs monolithic insertion\n");
  std::printf("(measured on this machine; 'paper' rows show the published SPARC-2 values)\n\n");
  std::printf("%-15s|%6s %5s |%7s %5s %5s %8s |%7s %5s %5s %8s |%5s %5s %8s\n", "STG",
              "states", "sigs", "states", "sigs", "area", "cpu", "states", "sigs", "area",
              "cpu", "sigs", "area", "cpu");
  std::printf("%-15s|%13s |%28s |%28s |%20s\n", "", "specification",
              "our method (decomposition)", "Vanbekbergen (no decomp.)", "Lavagno-style");
  std::printf("----------------+--------------+-----------------------------+------------------"
              "-----------+---------------------\n");

  double sum_ratio_v = 0.0;
  int count_v = 0;
  double sum_ratio_l = 0.0;
  int count_l = 0;
  double speedup_v = 0.0;
  int speedup_v_n = 0;
  double speedup_l = 0.0;
  int speedup_l_n = 0;
  double cpu_total = 0.0;

  for (const BenchResult& r : results) {
    print_row(r.ours);
    print_row(r.paper);
    cpu_total += r.m_secs + r.v_secs + r.l_secs;
    if (r.m_ok && r.v_ok && r.v_area > 0) {
      sum_ratio_v += static_cast<double>(r.m_area) / r.v_area;
      ++count_v;
      if (r.m_secs > 0) {
        speedup_v += r.v_secs / r.m_secs;
        ++speedup_v_n;
      }
    }
    if (r.m_ok && r.l_ok && r.l_area > 0) {
      sum_ratio_l += static_cast<double>(r.m_area) / r.l_area;
      ++count_l;
      if (r.m_secs > 0) {
        speedup_l += r.l_secs / r.m_secs;
        ++speedup_l_n;
      }
    }
  }

  std::printf("\nSummary (instances where both methods finished):\n");
  if (count_v > 0) {
    std::printf("  area, modular / direct     : %.2fx on average over %d instances"
                "  (paper: 0.88x, i.e. 12%% smaller)\n",
                sum_ratio_v / count_v, count_v);
  }
  if (count_l > 0) {
    std::printf("  area, modular / monolithic : %.2fx on average over %d instances"
                "  (paper: 0.91x, i.e. 9%% smaller)\n",
                sum_ratio_l / count_l, count_l);
  }
  if (speedup_v_n > 0) {
    std::printf("  time, direct / modular     : %.1fx on average over %d instances"
                " (excludes the LIMIT rows where the ratio is unbounded)\n",
                speedup_v / speedup_v_n, speedup_v_n);
  }
  if (speedup_l_n > 0) {
    std::printf("  time, monolithic / modular : %.1fx on average over %d instances\n",
                speedup_l / speedup_l_n, speedup_l_n);
  }
  std::printf("\nTotal: %.2fs wall on %u thread(s) (%.2fs of per-method cpu time)\n", wall,
              pool.num_threads(), cpu_total);
  if (cache != nullptr) {
    const svc::CacheStats cs = cache->stats();
    const std::size_t hits = cs.mem_hits + cs.disk_hits;
    const std::size_t lookups = hits + cs.misses;
    std::printf("Cache: %zu/%zu hits (%.0f%%), %zu misses, %zu corrupt, dir=%s\n", hits,
                lookups, lookups == 0 ? 0.0 : 100.0 * static_cast<double>(hits) / lookups,
                cs.misses, cs.corrupt, cache_dir);
  }
  std::printf("\nSee EXPERIMENTS.md for the row-by-row discussion.\n");

  if (json_path != nullptr) {
    write_json(json_path, benches, results, engine, pool.num_threads(), wall, cpu_total);
    std::printf("Machine-readable report written to %s\n", json_path);
  }
  return 0;
}

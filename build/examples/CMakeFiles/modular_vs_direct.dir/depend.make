# Empty dependencies file for modular_vs_direct.
# This may be replaced when dependencies are built.

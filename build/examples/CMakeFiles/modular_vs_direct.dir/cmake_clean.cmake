file(REMOVE_RECURSE
  "CMakeFiles/modular_vs_direct.dir/modular_vs_direct.cpp.o"
  "CMakeFiles/modular_vs_direct.dir/modular_vs_direct.cpp.o.d"
  "modular_vs_direct"
  "modular_vs_direct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modular_vs_direct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for mps_synth.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mps_synth.dir/mps_synth.cpp.o"
  "CMakeFiles/mps_synth.dir/mps_synth.cpp.o.d"
  "mps_synth"
  "mps_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mps_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

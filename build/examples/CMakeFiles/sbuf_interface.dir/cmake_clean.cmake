file(REMOVE_RECURSE
  "CMakeFiles/sbuf_interface.dir/sbuf_interface.cpp.o"
  "CMakeFiles/sbuf_interface.dir/sbuf_interface.cpp.o.d"
  "sbuf_interface"
  "sbuf_interface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbuf_interface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sbuf_interface.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/memory_controller.dir/memory_controller.cpp.o"
  "CMakeFiles/memory_controller.dir/memory_controller.cpp.o.d"
  "memory_controller"
  "memory_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

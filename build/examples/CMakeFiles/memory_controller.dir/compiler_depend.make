# Empty compiler generated dependencies file for memory_controller.
# This may be replaced when dependencies are built.

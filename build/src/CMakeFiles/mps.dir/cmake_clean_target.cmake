file(REMOVE_RECURSE
  "libmps.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/lavagno.cpp" "src/CMakeFiles/mps.dir/baseline/lavagno.cpp.o" "gcc" "src/CMakeFiles/mps.dir/baseline/lavagno.cpp.o.d"
  "/root/repo/src/baseline/vanbekbergen.cpp" "src/CMakeFiles/mps.dir/baseline/vanbekbergen.cpp.o" "gcc" "src/CMakeFiles/mps.dir/baseline/vanbekbergen.cpp.o.d"
  "/root/repo/src/bdd/bdd.cpp" "src/CMakeFiles/mps.dir/bdd/bdd.cpp.o" "gcc" "src/CMakeFiles/mps.dir/bdd/bdd.cpp.o.d"
  "/root/repo/src/bdd/csc_bdd.cpp" "src/CMakeFiles/mps.dir/bdd/csc_bdd.cpp.o" "gcc" "src/CMakeFiles/mps.dir/bdd/csc_bdd.cpp.o.d"
  "/root/repo/src/benchmarks/benchmarks.cpp" "src/CMakeFiles/mps.dir/benchmarks/benchmarks.cpp.o" "gcc" "src/CMakeFiles/mps.dir/benchmarks/benchmarks.cpp.o.d"
  "/root/repo/src/benchmarks/generators.cpp" "src/CMakeFiles/mps.dir/benchmarks/generators.cpp.o" "gcc" "src/CMakeFiles/mps.dir/benchmarks/generators.cpp.o.d"
  "/root/repo/src/core/input_set.cpp" "src/CMakeFiles/mps.dir/core/input_set.cpp.o" "gcc" "src/CMakeFiles/mps.dir/core/input_set.cpp.o.d"
  "/root/repo/src/core/module_graph.cpp" "src/CMakeFiles/mps.dir/core/module_graph.cpp.o" "gcc" "src/CMakeFiles/mps.dir/core/module_graph.cpp.o.d"
  "/root/repo/src/core/partition_sat.cpp" "src/CMakeFiles/mps.dir/core/partition_sat.cpp.o" "gcc" "src/CMakeFiles/mps.dir/core/partition_sat.cpp.o.d"
  "/root/repo/src/core/synthesis.cpp" "src/CMakeFiles/mps.dir/core/synthesis.cpp.o" "gcc" "src/CMakeFiles/mps.dir/core/synthesis.cpp.o.d"
  "/root/repo/src/encoding/csc_sat.cpp" "src/CMakeFiles/mps.dir/encoding/csc_sat.cpp.o" "gcc" "src/CMakeFiles/mps.dir/encoding/csc_sat.cpp.o.d"
  "/root/repo/src/logic/cover.cpp" "src/CMakeFiles/mps.dir/logic/cover.cpp.o" "gcc" "src/CMakeFiles/mps.dir/logic/cover.cpp.o.d"
  "/root/repo/src/logic/cube.cpp" "src/CMakeFiles/mps.dir/logic/cube.cpp.o" "gcc" "src/CMakeFiles/mps.dir/logic/cube.cpp.o.d"
  "/root/repo/src/logic/extract.cpp" "src/CMakeFiles/mps.dir/logic/extract.cpp.o" "gcc" "src/CMakeFiles/mps.dir/logic/extract.cpp.o.d"
  "/root/repo/src/logic/minimize.cpp" "src/CMakeFiles/mps.dir/logic/minimize.cpp.o" "gcc" "src/CMakeFiles/mps.dir/logic/minimize.cpp.o.d"
  "/root/repo/src/logic/pla.cpp" "src/CMakeFiles/mps.dir/logic/pla.cpp.o" "gcc" "src/CMakeFiles/mps.dir/logic/pla.cpp.o.d"
  "/root/repo/src/petri/analysis.cpp" "src/CMakeFiles/mps.dir/petri/analysis.cpp.o" "gcc" "src/CMakeFiles/mps.dir/petri/analysis.cpp.o.d"
  "/root/repo/src/petri/net.cpp" "src/CMakeFiles/mps.dir/petri/net.cpp.o" "gcc" "src/CMakeFiles/mps.dir/petri/net.cpp.o.d"
  "/root/repo/src/sat/cnf.cpp" "src/CMakeFiles/mps.dir/sat/cnf.cpp.o" "gcc" "src/CMakeFiles/mps.dir/sat/cnf.cpp.o.d"
  "/root/repo/src/sat/dimacs.cpp" "src/CMakeFiles/mps.dir/sat/dimacs.cpp.o" "gcc" "src/CMakeFiles/mps.dir/sat/dimacs.cpp.o.d"
  "/root/repo/src/sat/local_search.cpp" "src/CMakeFiles/mps.dir/sat/local_search.cpp.o" "gcc" "src/CMakeFiles/mps.dir/sat/local_search.cpp.o.d"
  "/root/repo/src/sat/solver.cpp" "src/CMakeFiles/mps.dir/sat/solver.cpp.o" "gcc" "src/CMakeFiles/mps.dir/sat/solver.cpp.o.d"
  "/root/repo/src/sg/assignments.cpp" "src/CMakeFiles/mps.dir/sg/assignments.cpp.o" "gcc" "src/CMakeFiles/mps.dir/sg/assignments.cpp.o.d"
  "/root/repo/src/sg/csc.cpp" "src/CMakeFiles/mps.dir/sg/csc.cpp.o" "gcc" "src/CMakeFiles/mps.dir/sg/csc.cpp.o.d"
  "/root/repo/src/sg/expand.cpp" "src/CMakeFiles/mps.dir/sg/expand.cpp.o" "gcc" "src/CMakeFiles/mps.dir/sg/expand.cpp.o.d"
  "/root/repo/src/sg/projection.cpp" "src/CMakeFiles/mps.dir/sg/projection.cpp.o" "gcc" "src/CMakeFiles/mps.dir/sg/projection.cpp.o.d"
  "/root/repo/src/sg/state_graph.cpp" "src/CMakeFiles/mps.dir/sg/state_graph.cpp.o" "gcc" "src/CMakeFiles/mps.dir/sg/state_graph.cpp.o.d"
  "/root/repo/src/stg/builder.cpp" "src/CMakeFiles/mps.dir/stg/builder.cpp.o" "gcc" "src/CMakeFiles/mps.dir/stg/builder.cpp.o.d"
  "/root/repo/src/stg/parser.cpp" "src/CMakeFiles/mps.dir/stg/parser.cpp.o" "gcc" "src/CMakeFiles/mps.dir/stg/parser.cpp.o.d"
  "/root/repo/src/stg/stg.cpp" "src/CMakeFiles/mps.dir/stg/stg.cpp.o" "gcc" "src/CMakeFiles/mps.dir/stg/stg.cpp.o.d"
  "/root/repo/src/stg/writer.cpp" "src/CMakeFiles/mps.dir/stg/writer.cpp.o" "gcc" "src/CMakeFiles/mps.dir/stg/writer.cpp.o.d"
  "/root/repo/src/util/bitvec.cpp" "src/CMakeFiles/mps.dir/util/bitvec.cpp.o" "gcc" "src/CMakeFiles/mps.dir/util/bitvec.cpp.o.d"
  "/root/repo/src/util/text.cpp" "src/CMakeFiles/mps.dir/util/text.cpp.o" "gcc" "src/CMakeFiles/mps.dir/util/text.cpp.o.d"
  "/root/repo/src/verify/verify.cpp" "src/CMakeFiles/mps.dir/verify/verify.cpp.o" "gcc" "src/CMakeFiles/mps.dir/verify/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for mps.
# This may be replaced when dependencies are built.

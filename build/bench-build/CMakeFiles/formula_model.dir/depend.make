# Empty dependencies file for formula_model.
# This may be replaced when dependencies are built.

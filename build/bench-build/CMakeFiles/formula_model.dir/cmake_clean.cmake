file(REMOVE_RECURSE
  "../bench/formula_model"
  "../bench/formula_model.pdb"
  "CMakeFiles/formula_model.dir/formula_model.cpp.o"
  "CMakeFiles/formula_model.dir/formula_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/formula_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for clause_counts.
# This may be replaced when dependencies are built.

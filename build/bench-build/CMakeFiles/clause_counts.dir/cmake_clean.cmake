file(REMOVE_RECURSE
  "../bench/clause_counts"
  "../bench/clause_counts.pdb"
  "CMakeFiles/clause_counts.dir/clause_counts.cpp.o"
  "CMakeFiles/clause_counts.dir/clause_counts.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clause_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/micro_sat"
  "../bench/micro_sat.pdb"
  "CMakeFiles/micro_sat.dir/micro_sat.cpp.o"
  "CMakeFiles/micro_sat.dir/micro_sat.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/ablation"
  "../bench/ablation.pdb"
  "CMakeFiles/ablation.dir/ablation.cpp.o"
  "CMakeFiles/ablation.dir/ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

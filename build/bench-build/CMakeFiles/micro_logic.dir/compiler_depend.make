# Empty compiler generated dependencies file for micro_logic.
# This may be replaced when dependencies are built.

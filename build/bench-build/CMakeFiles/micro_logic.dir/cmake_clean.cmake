file(REMOVE_RECURSE
  "../bench/micro_logic"
  "../bench/micro_logic.pdb"
  "CMakeFiles/micro_logic.dir/micro_logic.cpp.o"
  "CMakeFiles/micro_logic.dir/micro_logic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

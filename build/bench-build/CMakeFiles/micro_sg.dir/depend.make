# Empty dependencies file for micro_sg.
# This may be replaced when dependencies are built.

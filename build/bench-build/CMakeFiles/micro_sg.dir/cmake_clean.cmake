file(REMOVE_RECURSE
  "../bench/micro_sg"
  "../bench/micro_sg.pdb"
  "CMakeFiles/micro_sg.dir/micro_sg.cpp.o"
  "CMakeFiles/micro_sg.dir/micro_sg.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/table1"
  "../bench/table1.pdb"
  "CMakeFiles/table1.dir/table1.cpp.o"
  "CMakeFiles/table1.dir/table1.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for mps_tests.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baseline_test.cpp" "tests/CMakeFiles/mps_tests.dir/baseline_test.cpp.o" "gcc" "tests/CMakeFiles/mps_tests.dir/baseline_test.cpp.o.d"
  "/root/repo/tests/bdd_test.cpp" "tests/CMakeFiles/mps_tests.dir/bdd_test.cpp.o" "gcc" "tests/CMakeFiles/mps_tests.dir/bdd_test.cpp.o.d"
  "/root/repo/tests/benchmarks_test.cpp" "tests/CMakeFiles/mps_tests.dir/benchmarks_test.cpp.o" "gcc" "tests/CMakeFiles/mps_tests.dir/benchmarks_test.cpp.o.d"
  "/root/repo/tests/core_test.cpp" "tests/CMakeFiles/mps_tests.dir/core_test.cpp.o" "gcc" "tests/CMakeFiles/mps_tests.dir/core_test.cpp.o.d"
  "/root/repo/tests/crosscheck_test.cpp" "tests/CMakeFiles/mps_tests.dir/crosscheck_test.cpp.o" "gcc" "tests/CMakeFiles/mps_tests.dir/crosscheck_test.cpp.o.d"
  "/root/repo/tests/csc_test.cpp" "tests/CMakeFiles/mps_tests.dir/csc_test.cpp.o" "gcc" "tests/CMakeFiles/mps_tests.dir/csc_test.cpp.o.d"
  "/root/repo/tests/encoding_test.cpp" "tests/CMakeFiles/mps_tests.dir/encoding_test.cpp.o" "gcc" "tests/CMakeFiles/mps_tests.dir/encoding_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/mps_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/mps_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/logic_test.cpp" "tests/CMakeFiles/mps_tests.dir/logic_test.cpp.o" "gcc" "tests/CMakeFiles/mps_tests.dir/logic_test.cpp.o.d"
  "/root/repo/tests/petri_test.cpp" "tests/CMakeFiles/mps_tests.dir/petri_test.cpp.o" "gcc" "tests/CMakeFiles/mps_tests.dir/petri_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/mps_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/mps_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/sat_test.cpp" "tests/CMakeFiles/mps_tests.dir/sat_test.cpp.o" "gcc" "tests/CMakeFiles/mps_tests.dir/sat_test.cpp.o.d"
  "/root/repo/tests/sg_test.cpp" "tests/CMakeFiles/mps_tests.dir/sg_test.cpp.o" "gcc" "tests/CMakeFiles/mps_tests.dir/sg_test.cpp.o.d"
  "/root/repo/tests/stg_test.cpp" "tests/CMakeFiles/mps_tests.dir/stg_test.cpp.o" "gcc" "tests/CMakeFiles/mps_tests.dir/stg_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/mps_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/mps_tests.dir/util_test.cpp.o.d"
  "/root/repo/tests/verify_test.cpp" "tests/CMakeFiles/mps_tests.dir/verify_test.cpp.o" "gcc" "tests/CMakeFiles/mps_tests.dir/verify_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

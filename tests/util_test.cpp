#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "util/bitvec.hpp"
#include "util/common.hpp"
#include "util/text.hpp"
#include "util/thread_pool.hpp"

namespace {

using mps::util::BitVec;

TEST(BitVec, ConstructionAndBasicOps) {
  BitVec v(10);
  EXPECT_EQ(v.size(), 10u);
  EXPECT_EQ(v.count(), 0u);
  v.set(3);
  v.set(9);
  EXPECT_TRUE(v.test(3));
  EXPECT_TRUE(v.test(9));
  EXPECT_FALSE(v.test(4));
  EXPECT_EQ(v.count(), 2u);
  v.reset(3);
  EXPECT_FALSE(v.test(3));
  v.flip(0);
  EXPECT_TRUE(v.test(0));
}

TEST(BitVec, AllOnesConstructionTrimsHighBits) {
  BitVec v(70, true);
  EXPECT_EQ(v.count(), 70u);
  BitVec w(70);
  w.set_all();
  EXPECT_EQ(v, w);
}

TEST(BitVec, PushBackGrows) {
  BitVec v;
  for (int i = 0; i < 130; ++i) v.push_back(i % 3 == 0);
  EXPECT_EQ(v.size(), 130u);
  for (int i = 0; i < 130; ++i) EXPECT_EQ(v.test(i), i % 3 == 0) << i;
}

TEST(BitVec, FindFirstAndNext) {
  BitVec v(200);
  EXPECT_EQ(v.find_first(), BitVec::npos);
  v.set(5);
  v.set(64);
  v.set(199);
  EXPECT_EQ(v.find_first(), 5u);
  EXPECT_EQ(v.find_next(5), 64u);
  EXPECT_EQ(v.find_next(64), 199u);
  EXPECT_EQ(v.find_next(199), BitVec::npos);
}

TEST(BitVec, SetOperations) {
  BitVec a(100);
  BitVec b(100);
  a.set(1);
  a.set(70);
  b.set(70);
  b.set(80);
  EXPECT_TRUE((a & b).test(70));
  EXPECT_FALSE((a & b).test(1));
  EXPECT_TRUE((a | b).test(80));
  EXPECT_TRUE((a ^ b).test(1));
  EXPECT_FALSE((a ^ b).test(70));
  EXPECT_TRUE(a.intersects(b));
  BitVec c(100);
  c.set(70);
  EXPECT_TRUE(c.is_subset_of(a));
  EXPECT_FALSE(a.is_subset_of(c));
}

TEST(BitVec, AndNot) {
  BitVec a(10);
  a.set(1);
  a.set(2);
  BitVec b(10);
  b.set(2);
  a.and_not(b);
  EXPECT_TRUE(a.test(1));
  EXPECT_FALSE(a.test(2));
}

TEST(BitVec, HashDistinguishesSizesAndContent) {
  BitVec a(64);
  BitVec b(64);
  EXPECT_EQ(a.hash(), b.hash());
  a.set(63);
  EXPECT_NE(a.hash(), b.hash());
  b.set(63);
  EXPECT_EQ(a, b);
  BitVec c(63);
  EXPECT_NE(a.hash(), c.hash());
}

TEST(BitVec, ToString) {
  BitVec v(4);
  v.set(1);
  v.set(3);
  EXPECT_EQ(v.to_string(), "0101");
}

TEST(BitVec, ResizePreservesPrefixAndZeroesNewBits) {
  BitVec v(4, true);
  v.resize(8);
  EXPECT_EQ(v.to_string(), "11110000");
  v.resize(2);
  EXPECT_EQ(v.count(), 2u);
}

TEST(Rng, DeterministicAcrossInstances) {
  mps::util::Rng a(42);
  mps::util::Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowIsInRange) {
  mps::util::Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, UniformIsInUnitInterval) {
  mps::util::Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Text, SplitWs) {
  const auto t = mps::util::split_ws("  a+  b-/1\tc ");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], "a+");
  EXPECT_EQ(t[1], "b-/1");
  EXPECT_EQ(t[2], "c");
  EXPECT_TRUE(mps::util::split_ws("   ").empty());
}

TEST(Text, SplitOnKeepsEmptyFields) {
  const auto t = mps::util::split_on("a==b", '=');
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[1], "");
}

TEST(Text, Trim) {
  EXPECT_EQ(mps::util::trim("  x "), "x");
  EXPECT_EQ(mps::util::trim(""), "");
  EXPECT_EQ(mps::util::trim(" \t\n"), "");
}

TEST(Text, Format) { EXPECT_EQ(mps::util::format("%d-%s", 7, "x"), "7-x"); }

TEST(Text, Pad) {
  EXPECT_EQ(mps::util::pad("ab", 5), "ab   ");
  EXPECT_EQ(mps::util::pad("ab", -5), "   ab");
  EXPECT_EQ(mps::util::pad("abcdef", 3), "abcdef");
}

TEST(Errors, HierarchyAndMessages) {
  const mps::util::ParseError pe("bad token", 12);
  EXPECT_NE(std::string(pe.what()).find("line 12"), std::string::npos);
  EXPECT_EQ(pe.line(), 12);
  EXPECT_THROW(throw mps::util::SemanticsError("x"), mps::util::Error);
  EXPECT_THROW(throw mps::util::LimitError("y"), mps::util::Error);
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(mps::util::ThreadPool::hardware_threads(), 1u);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    mps::util::ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ResultsLandInIndexedSlots) {
  mps::util::ThreadPool pool(4);
  std::vector<std::size_t> out(257);
  pool.parallel_for(out.size(), [&](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  mps::util::ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int job = 0; job < 20; ++job) {
    pool.parallel_for(10, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 200);
}

TEST(ThreadPool, EmptyJobIsNoOp) {
  mps::util::ThreadPool pool(2);
  pool.parallel_for(0, [&](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, PropagatesException) {
  mps::util::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 42) throw mps::util::LimitError("boom");
                                 }),
               mps::util::LimitError);
  // The pool survives a throwing job.
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, ExceptionAbandonsUnstartedIndices) {
  mps::util::ThreadPool pool(4);
  std::atomic<int> executed{0};
  const std::size_t n = 100000;
  EXPECT_THROW(pool.parallel_for(n,
                                 [&](std::size_t i) {
                                   executed.fetch_add(1);
                                   if (i == 0) throw mps::util::Error("first task fails");
                                 }),
               mps::util::Error);
  // Index 0 is always claimed by the caller (it holds the pool mutex when
  // the job is posted) and throws immediately, which sets next_index_ to
  // job_size_.  Workers can only claim tasks during the tiny window before
  // that, so nearly all of the n indices must be abandoned.  The bound is
  // deliberately loose — the property being pinned is "not all n ran".
  EXPECT_GE(executed.load(), 1);
  EXPECT_LT(executed.load(), static_cast<int>(n) / 2);
}

TEST(ThreadPool, SerialPathPropagatesAndAbandons) {
  mps::util::ThreadPool pool(1);  // no workers: the caller runs indices in order
  int executed = 0;
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   ++executed;
                                   if (i == 3) throw mps::util::LimitError("stop");
                                 }),
               mps::util::LimitError);
  EXPECT_EQ(executed, 4);  // 0..3 ran; 4..99 abandoned
  // The serial pool is reusable after a throw, same as the threaded one.
  executed = 0;
  pool.parallel_for(5, [&](std::size_t) { ++executed; });
  EXPECT_EQ(executed, 5);
}

TEST(ThreadPool, SingleThreadRunsInOrder) {
  mps::util::ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.parallel_for(16, [&](std::size_t i) { order.push_back(i); });
  std::vector<std::size_t> expect(16);
  std::iota(expect.begin(), expect.end(), 0u);
  EXPECT_EQ(order, expect);
}

}  // namespace

#include <gtest/gtest.h>

#include "baseline/lavagno.hpp"
#include "baseline/vanbekbergen.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/synthesis.hpp"
#include "sg/csc.hpp"
#include "stg/builder.hpp"
#include "verify/verify.hpp"

namespace {

using namespace mps;

stg::Stg toggle_stg() {
  return stg::Builder("toggle")
      .outputs({"x", "y"})
      .path("x+", "x-", "y+", "y-")
      .arc("y-", "x+")
      .token("y-", "x+")
      .build();
}

TEST(Direct, SolvesToggle) {
  const auto r = baseline::direct_synthesis(toggle_stg());
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_FALSE(r.hit_limit);
  EXPECT_EQ(r.final_signals, 3u);
  EXPECT_EQ(r.total_literals, 7u);
  EXPECT_TRUE(sg::analyze_csc(r.final_graph).satisfied());
}

TEST(Direct, CleanSpecNeedsNothing) {
  const auto hs = stg::Builder("hs")
                      .inputs({"r"})
                      .outputs({"a"})
                      .path("r+", "a+", "r-", "a-")
                      .arc("a-", "r+")
                      .token("a-", "r+")
                      .build();
  const auto r = baseline::direct_synthesis(hs);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.final_signals, r.initial_signals);
  EXPECT_EQ(r.rounds, 0);
}

TEST(Direct, BacktrackLimitProducesLimitRow) {
  // The paper's "SAT Backtrack Limit" behaviour: with a tiny budget the
  // direct method gives up on a large instance and reports it.
  const auto g =
      sg::StateGraph::from_stg(benchmarks::find_benchmark("mmu1")->make());
  baseline::DirectOptions opts;
  opts.solve.max_backtracks = 10;
  const auto r = baseline::direct_synthesis(g, opts);
  EXPECT_FALSE(r.success);
  EXPECT_TRUE(r.hit_limit);
  EXPECT_FALSE(r.formulas.empty());
  EXPECT_EQ(r.formulas.back().outcome, sat::Outcome::Limit);
}

TEST(Direct, FormulaSizesMatchTheModel) {
  // vars = 2*N*m for the core encoding (§2.1).
  const auto g = sg::StateGraph::from_stg(toggle_stg());
  baseline::DirectOptions opts;
  const auto r = baseline::direct_synthesis(g, opts);
  ASSERT_TRUE(r.success);
  ASSERT_FALSE(r.formulas.empty());
  const auto& f = r.formulas.front();
  EXPECT_GE(f.num_vars, 2 * g.num_states() * f.num_new_signals);
}

TEST(Direct, ResultVerifiesEndToEnd) {
  const auto r =
      baseline::direct_synthesis(benchmarks::find_benchmark("atod")->make());
  ASSERT_TRUE(r.success);
  const auto report = verify::verify_synthesis(r.final_graph, r.covers);
  EXPECT_TRUE(report.codes_consistent);
  EXPECT_TRUE(report.csc_satisfied);
  EXPECT_TRUE(report.covers_valid);
  EXPECT_TRUE(report.covers_exact);
}

TEST(Lavagno, SolvesToggle) {
  const auto r = baseline::lavagno_synthesis(toggle_stg());
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_EQ(r.insertions, 1);
  EXPECT_EQ(r.final_signals, 3u);
  EXPECT_TRUE(sg::analyze_csc(r.final_graph).satisfied());
}

TEST(Lavagno, InsertsIncrementally) {
  // Needs more than one signal: the insertion count reflects the steps.
  const auto r =
      baseline::lavagno_synthesis(benchmarks::find_benchmark("pa")->make());
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_GE(r.insertions, 2);
  EXPECT_EQ(r.final_signals, r.initial_signals + static_cast<std::size_t>(r.insertions));
}

TEST(Lavagno, TimeLimitReported) {
  baseline::LavagnoOptions opts;
  opts.time_limit_s = 1e-9;  // expires immediately
  const auto r =
      baseline::lavagno_synthesis(benchmarks::find_benchmark("pa")->make(), opts);
  EXPECT_FALSE(r.success);
  EXPECT_TRUE(r.hit_limit);
}

TEST(Lavagno, ResultVerifiesEndToEnd) {
  const auto r =
      baseline::lavagno_synthesis(benchmarks::find_benchmark("wrdata")->make());
  ASSERT_TRUE(r.success);
  const auto report = verify::verify_synthesis(r.final_graph, r.covers);
  EXPECT_TRUE(report.codes_consistent);
  EXPECT_TRUE(report.csc_satisfied);
  EXPECT_TRUE(report.covers_valid);
  EXPECT_TRUE(report.covers_exact);
}

TEST(Comparison, AllThreeMethodsAgreeOnCscSatisfaction) {
  for (const char* name : {"vbe-ex1", "nouse", "nousc-ser", "sbuf-read-ctl"}) {
    const auto g = sg::StateGraph::from_stg(benchmarks::find_benchmark(name)->make());
    const auto m = core::modular_synthesis(g);
    const auto v = baseline::direct_synthesis(g);
    const auto l = baseline::lavagno_synthesis(g);
    ASSERT_TRUE(m.success) << name;
    ASSERT_TRUE(v.success) << name;
    ASSERT_TRUE(l.success) << name;
    EXPECT_TRUE(sg::analyze_csc(m.final_graph).satisfied()) << name;
    EXPECT_TRUE(sg::analyze_csc(v.final_graph).satisfied()) << name;
    EXPECT_TRUE(sg::analyze_csc(l.final_graph).satisfied()) << name;
  }
}

TEST(Comparison, ModularBeatsDirectOnLargeInstances) {
  // The headline claim, in miniature: on a big graph the modular method
  // finishes while the direct method's limited search does not.
  const auto g = sg::StateGraph::from_stg(benchmarks::find_benchmark("mr1")->make());
  core::SynthesisOptions mopts;
  mopts.derive_logic = false;
  const auto m = core::modular_synthesis(g, mopts);
  EXPECT_TRUE(m.success);

  baseline::DirectOptions vopts;
  vopts.derive_logic = false;
  vopts.solve.max_backtracks = 50000;  // small budget: the direct formula defeats it
  const auto v = baseline::direct_synthesis(g, vopts);
  EXPECT_FALSE(v.success);
  EXPECT_TRUE(v.hit_limit);
}

}  // namespace

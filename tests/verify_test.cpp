#include <gtest/gtest.h>

#include "core/synthesis.hpp"
#include "logic/extract.hpp"
#include "logic/minimize.hpp"
#include "sg/expand.hpp"
#include "sg/state_graph.hpp"
#include "stg/builder.hpp"
#include "verify/verify.hpp"

namespace {

using namespace mps;
using sg::V4;

stg::Stg toggle_stg() {
  return stg::Builder("toggle")
      .outputs({"x", "y"})
      .path("x+", "x-", "y+", "y-")
      .arc("y-", "x+")
      .token("y-", "x+")
      .build();
}

stg::Stg handshake_stg() {
  return stg::Builder("hs")
      .inputs({"r"})
      .outputs({"a"})
      .path("r+", "a+", "r-", "a-")
      .arc("a-", "r+")
      .token("a-", "r+")
      .build();
}

TEST(Verify, CleanGraphWithoutCoversPasses) {
  const auto g = sg::StateGraph::from_stg(handshake_stg());
  const auto report = verify::verify_synthesis(g, {});
  EXPECT_TRUE(report.ok()) << (report.issues.empty() ? "" : report.issues.front());
}

TEST(Verify, CscViolationReported) {
  const auto g = sg::StateGraph::from_stg(toggle_stg());
  const auto report = verify::verify_synthesis(g, {});
  EXPECT_TRUE(report.codes_consistent);
  EXPECT_FALSE(report.csc_satisfied);
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.issues.empty());
}

TEST(Verify, FullSynthesisResultPasses) {
  const auto r = core::modular_synthesis(toggle_stg());
  ASSERT_TRUE(r.success);
  const auto report = verify::verify_synthesis(r.final_graph, r.covers);
  EXPECT_TRUE(report.ok()) << (report.issues.empty() ? "" : report.issues.front());
}

TEST(Verify, MissingCoverFlagged) {
  const auto r = core::modular_synthesis(toggle_stg());
  ASSERT_TRUE(r.success);
  auto covers = r.covers;
  covers.pop_back();
  const auto report = verify::verify_synthesis(r.final_graph, covers);
  EXPECT_FALSE(report.covers_valid);
}

TEST(Verify, WrongCoverFlagged) {
  const auto r = core::modular_synthesis(toggle_stg());
  ASSERT_TRUE(r.success);
  auto covers = r.covers;
  // Corrupt one cover: make it the constant-1 function.
  covers[0].second = logic::Cover(r.final_graph.num_signals());
  covers[0].second.add(logic::Cube(r.final_graph.num_signals()));
  const auto report = verify::verify_synthesis(r.final_graph, covers);
  EXPECT_FALSE(report.covers_valid && report.covers_exact);
}

TEST(ExpansionSimulates, HoldsForRealExpansion) {
  const auto g = sg::StateGraph::from_stg(handshake_stg());
  sg::Assignments assigns(g.num_states());
  assigns.add_signal("n", {V4::Zero, V4::Up, V4::One, V4::Down});
  const auto ex = sg::expand(g, assigns);
  EXPECT_TRUE(verify::expansion_simulates(g, ex.graph, ex.origin));
}

TEST(ExpansionSimulates, DetectsMissingBehaviour) {
  const auto g = sg::StateGraph::from_stg(handshake_stg());
  sg::Assignments assigns(g.num_states());
  assigns.add_signal("n", {V4::Zero, V4::Up, V4::One, V4::Down});
  auto ex = sg::expand(g, assigns);
  // Truncate: remove all outgoing edges of one expanded state.
  sg::StateGraph broken(std::vector<sg::SignalInfo>(ex.graph.signals()));
  for (sg::StateId s = 0; s < ex.graph.num_states(); ++s) {
    broken.add_state(ex.graph.code(s));
  }
  for (sg::StateId s = 0; s + 1 < ex.graph.num_states(); ++s) {
    for (const auto& e : ex.graph.out(s)) broken.add_edge(s, e);
  }
  EXPECT_FALSE(verify::expansion_simulates(g, broken, ex.origin));
}

TEST(ExpansionSimulates, DetectsSingleDroppedOriginalEdge) {
  // Drop exactly one non-silent original-signal edge: the expansion no
  // longer simulates the original behaviour.
  const auto g = sg::StateGraph::from_stg(handshake_stg());
  sg::Assignments assigns(g.num_states());
  assigns.add_signal("n", {V4::Zero, V4::Up, V4::One, V4::Down});
  const auto ex = sg::expand(g, assigns);
  bool dropped = false;
  sg::StateGraph broken(std::vector<sg::SignalInfo>(ex.graph.signals()));
  for (sg::StateId s = 0; s < ex.graph.num_states(); ++s) {
    broken.add_state(ex.graph.code(s));
  }
  for (sg::StateId s = 0; s < ex.graph.num_states(); ++s) {
    for (const auto& e : ex.graph.out(s)) {
      if (!dropped && !e.is_silent() && e.sig < g.num_signals()) {
        dropped = true;
        continue;
      }
      broken.add_edge(s, e);
    }
  }
  ASSERT_TRUE(dropped);
  EXPECT_FALSE(verify::expansion_simulates(g, broken, ex.origin));
}

TEST(ExpansionSimulates, DetectsExtraNonInsertedEdge) {
  // Splice in an original-signal edge the original graph never had (a
  // spurious a- from the initial state): extra non-inserted behaviour
  // must be rejected, not just missing behaviour.
  const auto g = sg::StateGraph::from_stg(handshake_stg());
  sg::Assignments assigns(g.num_states());
  assigns.add_signal("n", {V4::Zero, V4::Up, V4::One, V4::Down});
  const auto ex = sg::expand(g, assigns);
  sg::StateGraph broken(std::vector<sg::SignalInfo>(ex.graph.signals()));
  for (sg::StateId s = 0; s < ex.graph.num_states(); ++s) {
    broken.add_state(ex.graph.code(s));
  }
  for (sg::StateId s = 0; s < ex.graph.num_states(); ++s) {
    for (const auto& e : ex.graph.out(s)) broken.add_edge(s, e);
  }
  const sg::SignalId a = g.find_signal("a");
  sg::StateId from = sg::kNoState, to = sg::kNoState;
  for (sg::StateId s = 0; s < broken.num_states() && to == sg::kNoState; ++s) {
    for (const auto& e : broken.out(s)) {
      if (e.sig == a && e.rise) {
        from = e.to;  // a is 1 here, so a- is codable
        // Reuse the a+ edge's source as the bogus target: codes differ
        // exactly in signal a, matching a fall of a.
        to = s;
      }
    }
  }
  ASSERT_NE(to, sg::kNoState);
  broken.add_edge(from, {a, /*rise=*/false, to});
  EXPECT_FALSE(verify::expansion_simulates(g, broken, ex.origin));
}

TEST(ExpansionSimulates, DetectsWrongOriginMapping) {
  // Right-sized origin vector pointing at the wrong original states.
  const auto g = sg::StateGraph::from_stg(handshake_stg());
  sg::Assignments assigns(g.num_states());
  assigns.add_signal("n", {V4::Zero, V4::Up, V4::One, V4::Down});
  const auto ex = sg::expand(g, assigns);
  ASSERT_TRUE(verify::expansion_simulates(g, ex.graph, ex.origin));
  auto wrong = ex.origin;
  wrong[0] = (wrong[0] + 1) % g.num_states();
  EXPECT_FALSE(verify::expansion_simulates(g, ex.graph, wrong));
}

TEST(ExpansionSimulates, RejectsSizeMismatch) {
  const auto g = sg::StateGraph::from_stg(handshake_stg());
  const auto ex = sg::expand(g, sg::Assignments(g.num_states()));
  std::vector<sg::StateId> wrong_origin(ex.origin.begin(), ex.origin.end() - 1);
  EXPECT_FALSE(verify::expansion_simulates(g, ex.graph, wrong_origin));
}

TEST(ExpansionSimulates, WholeSynthesisPreservesBehaviour) {
  // Run the pieces manually so the origin map is available.
  const auto g = sg::StateGraph::from_stg(toggle_stg());
  core::SynthesisOptions opts;
  opts.derive_logic = false;
  const auto r = core::modular_synthesis(g, opts);
  ASSERT_TRUE(r.success);
  // Re-derive the expansion from the final graph's origin: instead,
  // verify the final graph projects back onto the original signal set.
  util::BitVec hide(r.final_graph.num_signals());
  for (sg::SignalId s = g.num_signals(); s < r.final_graph.num_signals(); ++s) hide.set(s);
  const auto proj = sg::hide_signals(r.final_graph, hide);
  // The quotient by the inserted signals is exactly the original graph
  // (same state count, edges and codes) for this small example.
  EXPECT_EQ(proj.graph.num_states(), g.num_states());
  EXPECT_EQ(proj.graph.num_edges(), g.num_edges());
}

}  // namespace

// End-to-end integration tests: full synthesis runs over the Table-1
// benchmark suite with complete verification, plus cross-method sanity.
#include <gtest/gtest.h>

#include "baseline/lavagno.hpp"
#include "baseline/vanbekbergen.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/synthesis.hpp"
#include "sg/csc.hpp"
#include "sg/expand.hpp"
#include "stg/parser.hpp"
#include "stg/writer.hpp"
#include "verify/verify.hpp"

namespace {

using namespace mps;

/// Modular synthesis on every small/medium benchmark, fully verified.
/// (alex-nonfc contains an arbiter — output choice — so semi-modularity is
/// not expected there; all other checks still hold.)
class ModularOnBenchmark : public ::testing::TestWithParam<const char*> {};

TEST_P(ModularOnBenchmark, SynthesizesAndVerifies) {
  const auto* b = benchmarks::find_benchmark(GetParam());
  ASSERT_NE(b, nullptr);
  const auto r = core::modular_synthesis(b->make());
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_GT(r.final_signals, r.initial_signals);  // all rows insert signals
  EXPECT_GE(r.final_states, r.initial_states);
  EXPECT_GT(r.total_literals, 0u);

  const auto report = verify::verify_synthesis(r.final_graph, r.covers);
  EXPECT_TRUE(report.codes_consistent) << GetParam();
  EXPECT_TRUE(report.csc_satisfied) << GetParam();
  EXPECT_TRUE(report.covers_valid) << GetParam();
  EXPECT_TRUE(report.covers_exact) << GetParam();
  // The gate-level check holds even for alex-nonfc: its arbiter makes the
  // *spec* non-semi-modular (output choice), but the circuit's disablings
  // are exactly the spec's own, which the SI verifier sanctions.
  EXPECT_TRUE(report.circuit_ok)
      << GetParam() << ": " << (report.issues.empty() ? "" : report.issues.back());
  if (std::string(GetParam()) != "alex-nonfc") {
    EXPECT_TRUE(report.semi_modular) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(SmallAndMedium, ModularOnBenchmark,
                         ::testing::Values("vbe-ex1", "sendr-done", "nousc-ser", "vbe-ex2",
                                           "nouse", "sbuf-read-ctl", "fifo", "wrdata",
                                           "alloc-outbound", "pa", "atod", "sbuf-send-ctl",
                                           "sbuf-send-pkt2", "alex-nonfc", "ram-read-sbuf",
                                           "pe-rcv-ifc-fc", "nak-pa", "vbe4a",
                                           "sbuf-ram-write", "mmu1"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(Integration, LargeBenchmarksSynthesizeQuickly) {
  // The headline property: the big four finish in seconds.
  for (const char* name : {"mmu0", "mr1", "mr0"}) {
    const auto* b = benchmarks::find_benchmark(name);
    core::SynthesisOptions opts;
    const auto r = core::modular_synthesis(b->make(), opts);
    ASSERT_TRUE(r.success) << name << ": " << r.failure_reason;
    EXPECT_TRUE(sg::analyze_csc(r.final_graph).satisfied()) << name;
    EXPECT_LT(r.seconds, 60.0) << name;
  }
}

TEST(Integration, GFileRoundTripThenSynthesis) {
  // Write a benchmark to .g text, re-parse, synthesize: same result.
  const auto* b = benchmarks::find_benchmark("atod");
  const auto original = b->make();
  const auto reparsed = stg::parse_g(stg::write_g(original));
  const auto r1 = core::modular_synthesis(original);
  const auto r2 = core::modular_synthesis(reparsed);
  ASSERT_TRUE(r1.success);
  ASSERT_TRUE(r2.success);
  EXPECT_EQ(r1.final_states, r2.final_states);
  EXPECT_EQ(r1.final_signals, r2.final_signals);
  EXPECT_EQ(r1.total_literals, r2.total_literals);
}

TEST(Integration, ModuleFormulasAreOrdersOfMagnitudeSmaller) {
  // The paper's mmu0 narrative: the direct formula is enormous, the
  // modular formulas are tiny.
  const auto* b = benchmarks::find_benchmark("mmu0");
  const auto g = sg::StateGraph::from_stg(b->make());
  const auto analysis = sg::analyze_csc(g);
  const encoding::Encoding direct(g, static_cast<std::size_t>(analysis.lower_bound),
                                  analysis.conflicts, analysis.compatible_pairs);
  core::SynthesisOptions opts;
  opts.derive_logic = false;
  const auto r = core::modular_synthesis(g, opts);
  ASSERT_TRUE(r.success);
  std::size_t largest_module_formula = 0;
  for (const auto& m : r.modules) {
    for (const auto& f : m.formulas) {
      largest_module_formula = std::max(largest_module_formula, f.num_clauses);
    }
  }
  ASSERT_GT(largest_module_formula, 0u);
  std::size_t total_module_clauses = 0;
  for (const auto& m : r.modules) {
    for (const auto& f : m.formulas) total_module_clauses += f.num_clauses;
  }
  EXPECT_GT(direct.cnf().num_clauses(), 2 * largest_module_formula)
      << "direct " << direct.cnf().num_clauses() << " vs largest module "
      << largest_module_formula;
  EXPECT_GT(direct.cnf().num_clauses(), total_module_clauses)
      << "direct " << direct.cnf().num_clauses() << " vs all modules "
      << total_module_clauses;
}

TEST(Integration, AreasAreWithinFamilyRange) {
  // Literal counts of the three methods stay within a small factor of each
  // other on instances all three solve.
  for (const char* name : {"vbe-ex1", "nouse", "sbuf-read-ctl", "atod"}) {
    const auto g = sg::StateGraph::from_stg(benchmarks::find_benchmark(name)->make());
    const auto m = core::modular_synthesis(g);
    const auto v = baseline::direct_synthesis(g);
    ASSERT_TRUE(m.success && v.success) << name;
    EXPECT_LE(m.total_literals, 3 * v.total_literals) << name;
    EXPECT_LE(v.total_literals, 3 * m.total_literals) << name;
  }
}

TEST(Integration, RepeatedSynthesisOnExpandedGraphIsIdempotent) {
  // Synthesizing an already CSC-clean result changes nothing.
  const auto r1 = core::modular_synthesis(
      sg::StateGraph::from_stg(benchmarks::find_benchmark("nouse")->make()));
  ASSERT_TRUE(r1.success);
  const auto r2 = core::modular_synthesis(r1.final_graph);
  ASSERT_TRUE(r2.success);
  EXPECT_EQ(r2.final_states, r1.final_states);
  EXPECT_EQ(r2.final_signals, r1.final_signals);
  EXPECT_EQ(r2.rounds, 0);
}

}  // namespace

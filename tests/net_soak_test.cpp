// Multi-node soak for the network layer: a real net::FrontDoor routing over
// TCP to two real svc::Server workers, all in-process (so tsan sees every
// thread) on kernel-assigned ports (so `ctest -j` never collides).
//
// What must hold:
//   - every response through front door -> worker -> front door -> client is
//     byte-identical to running the same synthesis locally (the relay is
//     verbatim and the artifact encoding is deterministic);
//   - synth requests route to their digest's shard owner (fleet-wide
//     single-flight: each distinct digest is synthesized on exactly one
//     node, however many clients ask);
//   - a worker hard-killed mid-request costs nothing but a retry: the
//     front door fails the request over to the surviving worker and the
//     client still gets the byte-identical answer;
//   - local validation: malformed specs are answered by the front door
//     without touching a worker, and a fleet of dead workers yields a clean
//     `unavailable` error, not a hang.
#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mps.hpp"

namespace {

using namespace mps;

std::string bench_g_text(const char* name) {
  const auto* b = benchmarks::find_benchmark(name);
  if (b == nullptr) ADD_FAILURE() << "unknown benchmark " << name;
  return stg::write_g(b->make());
}

/// The request object svc::Client::synth() sends, built the same way.
svc::Json synth_request(const std::string& g_text, const std::string& method) {
  svc::Json j = svc::Json::object();
  j.set("op", "synth");
  j.set("g", g_text);
  j.set("method", method);
  j.set("threads", svc::Json(static_cast<std::int64_t>(1)));
  return j;
}

/// `artifact` re-dumped with the one nondeterministic field ("seconds", the
/// measured wall-clock of the cold run) dropped.  Everything else — covers,
/// Verilog, solver counters — must be byte-for-byte reproducible.
std::string strip_seconds(const svc::Json& artifact) {
  svc::Json j = svc::Json::object();
  for (const auto& [key, value] : artifact.members()) {
    if (key != "seconds") j.set(key, value);
  }
  return j.dump();
}

/// What any node must answer for this request, computed locally: parse the
/// wire request exactly as a worker would, run the synthesis in-process, and
/// serialize the artifact.  Identity (up to the measured "seconds" field)
/// against this string proves the whole relay chain (client -> front door ->
/// worker and back) is verbatim; *cross-client* responses are compared with
/// no normalization at all.
std::string expected_artifact_dump(const svc::Json& req) {
  std::string error_line;
  const auto parsed = svc::parse_synth_request(req, &error_line);
  if (!parsed) {
    ADD_FAILURE() << "request did not validate: " << error_line;
    return "";
  }
  const svc::Artifact art = svc::run_synthesis(parsed->spec, parsed->options);
  return strip_seconds(svc::Json::parse(art.serialize()));
}

/// The digest a worker/front door computes for this request (routing key).
std::string request_digest_of(const svc::Json& req) {
  std::string error_line;
  const auto parsed = svc::parse_synth_request(req, &error_line);
  if (!parsed) ADD_FAILURE() << error_line;
  return parsed ? parsed->digest : "";
}

struct Worker {
  explicit Worker(const std::string& cache_dir) {
    svc::ServerOptions opts;
    opts.listen = "127.0.0.1:0";
    opts.service.cache.dir = cache_dir;
    opts.service.sched.num_threads = 2;
    server = std::make_unique<svc::Server>(opts);
    server->start();
    thread = std::thread([this] { server->run(); });
  }
  ~Worker() { stop(); }
  void stop() {
    if (thread.joinable()) {
      server->request_drain();
      thread.join();
    }
  }
  void kill_hard() {
    if (thread.joinable()) {
      server->shutdown_hard();
      thread.join();
    }
  }
  std::string address() const { return server->bound_endpoint().str(); }

  std::unique_ptr<svc::Server> server;
  std::thread thread;
};

struct Fleet {
  explicit Fleet(const char* tag, int num_workers = 2) {
    const std::string base = testing::TempDir() + "net_fleet_" + tag;
    for (int i = 0; i < num_workers; ++i) {
      const std::string dir = base + "_w" + std::to_string(i);
      std::filesystem::remove_all(dir);
      workers.push_back(std::make_unique<Worker>(dir));
    }
    net::FrontDoorOptions fopts;
    fopts.listen = "127.0.0.1:0";
    for (const auto& w : workers) fopts.workers.push_back(w->address());
    fopts.backoff.base_s = 0.01;
    fopts.backoff.max_s = 0.05;
    fopts.worker_connect_timeout_s = 2.0;
    door = std::make_unique<net::FrontDoor>(fopts);
    door->start();
    door_thread = std::thread([this] { door->run(); });
  }
  ~Fleet() {
    stop_door();
    for (auto& w : workers) w->stop();
  }
  void stop_door() {
    if (door_thread.joinable()) {
      door->request_drain();
      door_thread.join();
    }
  }
  std::string address() const { return door->bound_endpoint().str(); }

  std::vector<std::unique_ptr<Worker>> workers;
  std::unique_ptr<net::FrontDoor> door;
  std::thread door_thread;
};

TEST(NetFleet, SoakRoutesByShardAndRelaysByteIdentically) {
  Fleet fleet("soak");

  // Three distinct specs -> three digests, owners decided by shard_of.
  const std::vector<const char*> benches = {"alloc-outbound", "atod", "mr1"};
  std::vector<svc::Json> requests;
  std::vector<std::string> expected;
  for (const char* b : benches) {
    requests.push_back(synth_request(bench_g_text(b), "modular"));
    expected.push_back(expected_artifact_dump(requests.back()));
    ASSERT_FALSE(expected.back().empty());
  }

  // >= 8 concurrent clients, each sending every benchmark (24 requests).
  constexpr int kClients = 8;
  std::vector<std::string> errors(kClients);
  std::vector<std::vector<std::string>> got(kClients);
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      try {
        svc::ClientOptions copts;
        copts.handshake = true;  // exercise the version handshake under load
        svc::Client client(fleet.address(), copts);
        ready.fetch_add(1);
        while (!go.load()) std::this_thread::yield();
        for (std::size_t r = 0; r < requests.size(); ++r) {
          const svc::Json resp = client.request(requests[r]);
          if (!resp.get_bool("ok", false)) {
            errors[i] = resp.dump();
            return;
          }
          got[i].push_back(resp.find("artifact")->dump());
        }
      } catch (const std::exception& e) {
        errors[i] = e.what();
      }
    });
  }
  while (ready.load() < kClients) std::this_thread::yield();
  go.store(true);
  for (auto& t : threads) t.join();

  for (int i = 0; i < kClients; ++i) {
    ASSERT_EQ(errors[i], "") << "client " << i;
    ASSERT_EQ(got[i].size(), requests.size());
    for (std::size_t r = 0; r < requests.size(); ++r) {
      // However a response was served (fresh run, single-flight join, cache
      // hit, whichever worker), all clients must see the same bytes...
      EXPECT_EQ(got[i][r], got[0][r])
          << "client " << i << " bench " << benches[r]
          << ": responses must be byte-identical across clients";
      // ...and those bytes must match a local run of the same request, up
      // to the measured wall-clock field.
      EXPECT_EQ(strip_seconds(svc::Json::parse(got[i][r])), expected[r])
          << "client " << i << " bench " << benches[r]
          << ": relayed artifact must match a local run";
    }
  }

  // Routing: all workers alive -> every request went to its shard owner,
  // nothing failed over.
  const net::FrontDoorStats stats = fleet.door->stats();
  EXPECT_EQ(stats.synth_requests, kClients * static_cast<int>(benches.size()));
  EXPECT_EQ(stats.synth_relayed, stats.synth_requests);
  EXPECT_EQ(stats.shard_hits, stats.synth_requests);
  EXPECT_EQ(stats.shard_fallbacks, 0);
  EXPECT_EQ(stats.failovers, 0);
  EXPECT_EQ(stats.synth_unavailable, 0);

  // Fleet-wide single-flight: each distinct digest was synthesized on
  // exactly one node, once — 24 requests, <= 3 submissions fleet-wide.
  std::int64_t submitted = 0;
  for (auto& w : fleet.workers) {
    submitted += w->server->service().scheduler().stats().submitted;
  }
  EXPECT_LE(submitted, static_cast<std::int64_t>(benches.size()))
      << "digest sharding must collapse identical requests fleet-wide";
  EXPECT_GE(submitted, 1);

  // The stats op answers locally with routing counters and latency
  // percentiles (what EXPERIMENTS.md's tail-latency table reads).
  svc::Client client(fleet.address());
  const svc::Json s = client.stats();
  EXPECT_TRUE(s.get_bool("ok", false));
  const svc::Json* latency = s.find("latency");
  ASSERT_NE(latency, nullptr) << s.dump();
  EXPECT_EQ(latency->get_int("count", -1), stats.synth_relayed);
  EXPECT_GE(latency->get_double("p99_ms", -1.0), latency->get_double("p50_ms", -1.0));
  const svc::Json* workers = s.find("workers");
  ASSERT_NE(workers, nullptr);
  EXPECT_EQ(workers->items().size(), fleet.workers.size());

  // In-band drain through the front door: answered, then run() returns.
  EXPECT_TRUE(client.drain().get_bool("ok", false));
  fleet.door_thread.join();
}

TEST(NetFleet, WorkerKilledMidRequestFailsOverByteIdentically) {
  Fleet fleet("kill");

  // Two specs, one owned by each worker (mr0 and mr1 differ in digest; find
  // which worker owns which instead of assuming).
  const svc::Json req_a = synth_request(bench_g_text("mr0"), "modular");
  const std::size_t owner_a =
      net::shard_of(request_digest_of(req_a), fleet.workers.size());

  // Kill the owner while its request is in flight: connect, fire the
  // request from a thread, wait until the front door shows the owner
  // serving it, then hard-kill the owner.
  std::string resp_line;
  std::string client_error;
  std::thread requester([&] {
    try {
      svc::Client client(fleet.address());
      resp_line = client.request(req_a).dump();
    } catch (const std::exception& e) {
      client_error = e.what();
    }
  });

  bool saw_inflight = false;
  for (int i = 0; i < 5000 && !saw_inflight; ++i) {
    saw_inflight = fleet.door->workers().inflight(owner_a) > 0;
    if (!saw_inflight) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(saw_inflight) << "request never reached the owner worker";
  fleet.workers[owner_a]->kill_hard();  // mid-request: peers see EOF/reset
  requester.join();

  ASSERT_EQ(client_error, "");
  const svc::Json resp = svc::Json::parse(resp_line);
  ASSERT_TRUE(resp.get_bool("ok", false)) << resp_line;
  const std::string expected = expected_artifact_dump(req_a);
  EXPECT_EQ(strip_seconds(*resp.find("artifact")), expected)
      << "the failed-over answer must still match a local run";

  const net::FrontDoorStats stats = fleet.door->stats();
  EXPECT_GE(stats.failovers, 1) << "the owner's death must be counted";
  EXPECT_GE(stats.retries, 1);

  // The dead worker is on backoff now: further requests it owns go straight
  // to the survivor (fallback), still correct.
  const svc::Json resp2 = [&] {
    svc::Client client(fleet.address());
    return client.request(req_a);
  }();
  ASSERT_TRUE(resp2.get_bool("ok", false)) << resp2.dump();
  // Served from the survivor's cache: the exact bytes of the failed-over
  // answer, and still a local-run match.
  EXPECT_EQ(resp2.find("artifact")->dump(), resp.find("artifact")->dump());
  EXPECT_EQ(strip_seconds(*resp2.find("artifact")), expected);
}

TEST(NetFleet, FrontDoorValidatesLocallyAndReportsDeadFleet) {
  // One worker at a closed port: the fleet is entirely dead.
  net::FrontDoorOptions fopts;
  fopts.listen = "127.0.0.1:0";
  fopts.workers.push_back("127.0.0.1:1");
  fopts.worker_connect_timeout_s = 0.5;
  fopts.backoff.base_s = 0.01;
  fopts.backoff.max_s = 0.02;
  fopts.max_attempts = 2;
  net::FrontDoor door(fopts);
  door.start();
  std::thread door_thread([&] { door.run(); });

  svc::Client client(door.bound_endpoint().str());

  // Malformed spec: answered by the front door itself (kind: parse), no
  // worker involved — a bad request must never tie up the fleet.
  const svc::Json bad = client.synth("this is not a .g file", "modular");
  EXPECT_FALSE(bad.get_bool("ok", true));
  EXPECT_EQ(bad.get_string("kind", ""), "parse");

  // Valid spec, dead fleet: clean `unavailable` error, bounded time.
  const auto t0 = std::chrono::steady_clock::now();
  const svc::Json resp = client.synth(bench_g_text("alloc-outbound"), "modular");
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_FALSE(resp.get_bool("ok", true)) << resp.dump();
  EXPECT_EQ(resp.get_string("kind", ""), "unavailable") << resp.dump();
  EXPECT_LT(waited, 10.0) << "a dead fleet must fail fast, not hang";

  const net::FrontDoorStats stats = door.stats();
  EXPECT_EQ(stats.synth_unavailable, 1);
  EXPECT_EQ(stats.synth_relayed, 0);

  door.request_drain();
  door_thread.join();
}

}  // namespace

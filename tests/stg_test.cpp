#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "stg/builder.hpp"
#include "stg/parser.hpp"
#include "stg/stg.hpp"
#include "stg/writer.hpp"

namespace {

using namespace mps::stg;

const char* kToggle = R"(
# classic two-signal cycle with a CSC violation
.model toggle
.outputs x y
.graph
x+ x-
x- y+
y+ y-
y- x+
.marking { <y-,x+> }
.end
)";

TEST(Parser, ParsesSignalsAndKinds) {
  const Stg stg = parse_g(kToggle);
  EXPECT_EQ(stg.name(), "toggle");
  ASSERT_EQ(stg.num_signals(), 2u);
  EXPECT_EQ(stg.signal_name(0), "x");
  EXPECT_EQ(stg.signal_kind(0), SignalKind::Output);
  EXPECT_TRUE(stg.is_non_input(0));
  EXPECT_EQ(stg.find_signal("y"), 1u);
  EXPECT_EQ(stg.find_signal("nope"), kNoSignal);
}

TEST(Parser, BuildsTransitionsAndPlaces) {
  const Stg stg = parse_g(kToggle);
  EXPECT_EQ(stg.net().num_transitions(), 4u);
  EXPECT_EQ(stg.net().num_places(), 4u);  // all implicit
  const auto xp = stg.find_transition(0, Polarity::Rise);
  ASSERT_TRUE(xp.has_value());
  EXPECT_EQ(stg.transition_name(*xp), "x+");
}

TEST(Parser, InitialMarkingOnImplicitPlace) {
  const Stg stg = parse_g(kToggle);
  int marked = 0;
  for (mps::petri::PlaceId p = 0; p < stg.net().num_places(); ++p) {
    marked += stg.initial_marking().tokens(p);
  }
  EXPECT_EQ(marked, 1);
}

TEST(Parser, ExplicitPlacesAndChoice) {
  const char* text = R"(
.model choice
.inputs a b
.outputs c
.graph
p0 a+ b+
a+ c+
b+ c+/1
c+ p1
c+/1 p1
p1 c-
c- p0
.marking { p0 }
.end
)";
  const Stg stg = parse_g(text);
  EXPECT_EQ(stg.net().num_places(), 2u + 2u);  // p0, p1 + 2 implicit
  const auto c1 = stg.find_transition(2, Polarity::Rise, 1);
  ASSERT_TRUE(c1.has_value());
  EXPECT_EQ(stg.transition_name(*c1), "c+/1");
}

TEST(Parser, DummySignalsMakeSilentTransitions) {
  const char* text = R"(
.model dum
.outputs x
.dummy eps1
.graph
x+ eps1
eps1 x-
x- x+
.marking { <x-,x+> }
.end
)";
  const Stg stg = parse_g(text);
  const SignalId d = stg.find_signal("eps1");
  ASSERT_NE(d, kNoSignal);
  EXPECT_EQ(stg.signal_kind(d), SignalKind::Dummy);
  const auto ts = stg.transitions_of(d);
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_TRUE(stg.label(ts[0]).is_silent());
}

TEST(Parser, InitialValuesExtension) {
  const char* text = R"(
.model iv
.inputs a
.outputs x
.graph
a+ x+
x+ a-
a- x-
x- a+
.marking { <x-,a+> }
.initial a=0 x=1
.end
)";
  const Stg stg = parse_g(text);
  EXPECT_EQ(stg.initial_value(stg.find_signal("x")), std::optional<bool>(true));
  EXPECT_EQ(stg.initial_value(stg.find_signal("a")), std::optional<bool>(false));
}

TEST(Parser, Errors) {
  EXPECT_THROW(parse_g(".model x\n.bogus\n.end\n"), mps::util::ParseError);
  EXPECT_THROW(parse_g(".model x\n.outputs a\na+ a-\n.marking{}\n.end\n"),
               mps::util::ParseError);  // arc before .graph
  // Arc between two places.
  EXPECT_THROW(parse_g(".model x\n.outputs a\n.graph\np1 p2\n.marking { p1 }\n.end\n"),
               mps::util::ParseError);
  // Marked place that does not exist.
  EXPECT_THROW(parse_g(".model x\n.outputs a\n.graph\na+ a-\na- a+\n.marking { nope }\n.end\n"),
               mps::util::ParseError);
}

TEST(Parser, MarkingCountSuffix) {
  const char* good =
      ".model m\n.outputs a\n.graph\np0 a+\na+ a-\na- p0\n.marking { p0=2 }\n.end\n";
  const Stg stg = parse_g(good);
  int total = 0;
  for (mps::petri::PlaceId p = 0; p < stg.net().num_places(); ++p) {
    total += stg.initial_marking().tokens(p);
  }
  EXPECT_EQ(total, 2);
}

// Regression: malformed "=count" suffixes in .marking escaped as raw
// std::stoi exceptions (std::invalid_argument / std::out_of_range) with no
// line information.  They must surface as ParseError naming the .marking line.
TEST(Parser, MarkingCountErrorsAreParseErrors) {
  const auto with_marking = [](const std::string& marking) {
    return ".model m\n.outputs a\n.graph\np0 a+\na+ a-\na- p0\n.marking { " + marking +
           " }\n.end\n";
  };
  for (const char* bad : {"p0=x", "p0=", "p0=99999999999999999999", "p0=0", "p0=-1"}) {
    try {
      parse_g(with_marking(bad));
      FAIL() << "expected ParseError for marking '" << bad << "'";
    } catch (const mps::util::ParseError& e) {
      EXPECT_NE(std::string(e.what()).find("line 7"), std::string::npos) << e.what();
    }
  }
  // The "<src,dst>=count" form takes the second parse site (count read from
  // the body after the token, not from within it).
  EXPECT_THROW(
      parse_g(".model m\n.outputs a\n.graph\na+ a-\na- a+\n.marking { <a-,a+>=abc }\n.end\n"),
      mps::util::ParseError);
}

TEST(Parser, ValidationRejectsUnusedSignal) {
  EXPECT_THROW(
      parse_g(".model x\n.outputs a b\n.graph\na+ a-\na- a+\n.marking { <a-,a+> }\n.end\n"),
      mps::util::SemanticsError);
}

TEST(Writer, RoundTripPreservesStructure) {
  const Stg original = parse_g(kToggle);
  const std::string text = write_g(original);
  const Stg reparsed = parse_g(text);
  EXPECT_EQ(reparsed.num_signals(), original.num_signals());
  EXPECT_EQ(reparsed.net().num_transitions(), original.net().num_transitions());
  EXPECT_EQ(reparsed.net().num_places(), original.net().num_places());
  // Same marked-token count.
  int orig_tokens = 0;
  int new_tokens = 0;
  for (mps::petri::PlaceId p = 0; p < original.net().num_places(); ++p) {
    orig_tokens += original.initial_marking().tokens(p);
  }
  for (mps::petri::PlaceId p = 0; p < reparsed.net().num_places(); ++p) {
    new_tokens += reparsed.initial_marking().tokens(p);
  }
  EXPECT_EQ(orig_tokens, new_tokens);
}

TEST(Writer, RoundTripsEveryBenchmark) {
  for (const auto& b : mps::benchmarks::table1_benchmarks()) {
    const Stg original = b.make();
    const Stg reparsed = parse_g(write_g(original));
    EXPECT_EQ(reparsed.num_signals(), original.num_signals()) << b.name;
    EXPECT_EQ(reparsed.net().num_transitions(), original.net().num_transitions()) << b.name;
    EXPECT_NO_THROW(reparsed.validate()) << b.name;
  }
}

TEST(Builder, BuildsSameAsParser) {
  const Stg built = Builder("toggle")
                        .outputs({"x", "y"})
                        .path("x+", "x-", "y+", "y-")
                        .arc("y-", "x+")
                        .token("y-", "x+")
                        .build();
  const Stg parsed = parse_g(kToggle);
  EXPECT_EQ(built.num_signals(), parsed.num_signals());
  EXPECT_EQ(built.net().num_transitions(), parsed.net().num_transitions());
}

TEST(Builder, ExplicitPlacesAndCounts) {
  const Stg stg = Builder("counts")
                      .inputs({"a"})
                      .outputs({"x"})
                      .arc("a+", "x+")
                      .arc("x+", "a-")
                      .arc("a-", "x-")
                      .arc("x-", "pend")
                      .arc("pend", "a+")
                      .token_on("pend")
                      .build();
  const auto pend = stg.net().num_places();
  EXPECT_GE(pend, 1u);
  int tokens = 0;
  for (mps::petri::PlaceId p = 0; p < stg.net().num_places(); ++p) {
    tokens += stg.initial_marking().tokens(p);
  }
  EXPECT_EQ(tokens, 1);
}

TEST(TriggerSignals, ImmediateCausality) {
  const char* text = R"(
.model trig
.inputs a b
.outputs x
.graph
a+ x+
b+ x+
x+ a- b-
a- x-
b- x-
x- a+ b+
.marking { <x-,a+> <x-,b+> }
.end
)";
  const Stg stg = parse_g(text);
  const auto trig = stg.trigger_signals(stg.find_signal("x"));
  ASSERT_EQ(trig.size(), 2u);  // a and b both directly precede x*
  EXPECT_EQ(stg.signal_name(trig[0]), "a");
  EXPECT_EQ(stg.signal_name(trig[1]), "b");
}

TEST(Labels, ToString) {
  const Stg stg = parse_g(kToggle);
  EXPECT_EQ(label_to_string(Label{0, Polarity::Rise}, stg), "x+");
  EXPECT_EQ(label_to_string(Label{1, Polarity::Fall}, stg), "y-");
  EXPECT_EQ(label_to_string(Label{0, Polarity::Toggle}, stg), "x~");
  EXPECT_EQ(label_to_string(Label{kNoSignal, Polarity::Silent}, stg), "eps");
}

}  // namespace

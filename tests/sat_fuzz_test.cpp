// Differential fuzzing of the two SAT engines: random CNFs — mixed clause
// widths, densities spanning the easy-SAT / phase-transition / easy-UNSAT
// bands — solved by both the DPLL reference and the CDCL engine, outcomes
// cross-checked against each other and (on satisfiable instances) against
// WalkSAT.  Three independent deciders agreeing on hundreds of instances is
// the completeness argument for the clause-learning machinery (learning,
// minimization, backjumping, restarts, DB reduction) that no hand-written
// unit test pins: any unsound learned clause or lost propagation shows up
// as an outcome mismatch or a model that fails satisfied_by().  A fourth
// decider — the BDD characteristic-function solver — is exact and complete,
// so it must agree on *every* instance it finishes within its node budget.
#include <gtest/gtest.h>

#include "bdd/csc_bdd.hpp"
#include "sat/cnf.hpp"
#include "sat/local_search.hpp"
#include "sat/solver.hpp"
#include "util/common.hpp"

namespace {

using namespace mps::sat;

/// Random CNF with clause widths in [1, 4] (mostly 3), `vars` variables and
/// about `density * vars` clauses.  Width-1/2 clauses force propagation
/// chains; width-4 clauses keep instances from collapsing to pure 3-SAT.
Cnf random_cnf(mps::util::Rng& rng, int vars, double density) {
  Cnf cnf;
  cnf.new_vars(vars);
  const int clauses = static_cast<int>(density * vars);
  for (int c = 0; c < clauses; ++c) {
    int width = 3;
    const double r = rng.uniform();
    if (r < 0.05) {
      width = 1;
    } else if (r < 0.25) {
      width = 2;
    } else if (r < 0.85) {
      width = 3;
    } else {
      width = 4;
    }
    std::vector<Lit> clause;
    for (int k = 0; k < width; ++k) {
      clause.push_back(Lit::make(static_cast<Var>(rng.below(vars)), rng.chance(0.5)));
    }
    cnf.add_clause(clause);
  }
  return cnf;
}

struct EngineRun {
  Outcome outcome;
  Model model;
  SolveStats stats;
};

EngineRun run_engine(const Cnf& cnf, Engine engine, std::int64_t restart_interval = 256) {
  EngineRun r;
  SolveOptions opts;
  opts.engine = engine;
  opts.restart_interval = restart_interval;
  r.outcome = Solver().solve(cnf, &r.model, &r.stats, opts);
  return r;
}

/// One differential round: both engines must agree on the outcome, every
/// Sat model must satisfy the formula, and a WalkSAT success on an
/// "Unsat"-declared instance is an immediate soundness failure.
void check_instance(const Cnf& cnf, int tag, std::int64_t cdcl_restart_interval) {
  const EngineRun dpll = run_engine(cnf, Engine::Dpll);
  const EngineRun cdcl = run_engine(cnf, Engine::Cdcl, cdcl_restart_interval);
  ASSERT_EQ(dpll.outcome, cdcl.outcome) << "engines disagree on instance " << tag;
  // The BDD engine is exact: whenever it completes under the node budget,
  // its Sat/Unsat verdict must match the search engines and its model must
  // check out.  Budget hits are skipped, not failures — exhaustion is the
  // documented contract (callers fall back to DPLL).
  try {
    const auto bdd_model = mps::bdd::solve_cnf_bdd(cnf, /*max_nodes=*/200'000);
    EXPECT_EQ(bdd_model.has_value(), dpll.outcome == Outcome::Sat)
        << "BDD engine disagrees on instance " << tag;
    if (bdd_model.has_value()) {
      EXPECT_TRUE(cnf.satisfied_by(*bdd_model)) << "BDD model invalid, instance " << tag;
    }
  } catch (const mps::util::LimitError&) {
    // Node budget exceeded — no verdict to compare.
  }
  if (dpll.outcome == Outcome::Sat) {
    EXPECT_TRUE(cnf.satisfied_by(dpll.model)) << "DPLL model invalid, instance " << tag;
    EXPECT_TRUE(cnf.satisfied_by(cdcl.model)) << "CDCL model invalid, instance " << tag;
    // The third decider: local search must never contradict Sat (it cannot
    // prove Unsat, so it only ever strengthens the Sat verdict).
    Model ls_model;
    LocalSearchOptions ls_opts;
    ls_opts.max_tries = 2;
    ls_opts.max_flips = 2000;
    if (walksat(cnf, &ls_model, nullptr, ls_opts)) {
      EXPECT_TRUE(cnf.satisfied_by(ls_model)) << "WalkSAT model invalid, instance " << tag;
    }
  } else {
    ASSERT_EQ(dpll.outcome, Outcome::Unsat) << "unexpected Limit on instance " << tag;
    Model ls_model;
    LocalSearchOptions ls_opts;
    ls_opts.max_tries = 2;
    ls_opts.max_flips = 2000;
    EXPECT_FALSE(walksat(cnf, &ls_model, nullptr, ls_opts))
        << "WalkSAT found a model for an instance both engines call Unsat, instance " << tag;
  }
}

TEST(SatFuzz, EnginesAgreeAcrossTheDensitySpectrum) {
  mps::util::Rng rng(0xC0FFEE);
  // Low density (mostly Sat), the 3-SAT phase transition (hardest mix),
  // and high density (mostly Unsat with short proofs).
  const double densities[] = {2.0, 3.5, 4.3, 5.5};
  int tag = 0;
  for (const double density : densities) {
    for (int i = 0; i < 40; ++i) {
      const int vars = 8 + static_cast<int>(rng.below(25));
      check_instance(random_cnf(rng, vars, density), tag++, /*cdcl_restart_interval=*/256);
    }
  }
}

TEST(SatFuzz, AgreementHoldsUnderAggressiveCdclRestarts) {
  // A tiny Luby unit forces constant restarts, stressing the interaction of
  // restarts with learned-clause retention and phase saving.
  mps::util::Rng rng(0xFEEDFACE);
  for (int i = 0; i < 40; ++i) {
    const int vars = 8 + static_cast<int>(rng.below(17));
    check_instance(random_cnf(rng, vars, 4.3), 1000 + i, /*cdcl_restart_interval=*/2);
  }
}

TEST(SatFuzz, AgreementHoldsOnWidePropagationChains) {
  // Implication-ladder instances: random binary implications plus a few
  // random wider clauses.  Unit-heavy formulas probe the propagation /
  // reason-tracking code rather than the search heuristics.
  mps::util::Rng rng(0xDEADBEEF);
  for (int i = 0; i < 30; ++i) {
    const int vars = 12 + static_cast<int>(rng.below(20));
    Cnf cnf;
    cnf.new_vars(vars);
    for (int c = 0; c < vars * 3; ++c) {
      cnf.add_clause({Lit::make(static_cast<Var>(rng.below(vars)), rng.chance(0.5)),
                      Lit::make(static_cast<Var>(rng.below(vars)), rng.chance(0.5))});
    }
    for (int c = 0; c < vars / 2; ++c) {
      cnf.add_clause({Lit::make(static_cast<Var>(rng.below(vars)), rng.chance(0.5)),
                      Lit::make(static_cast<Var>(rng.below(vars)), rng.chance(0.5)),
                      Lit::make(static_cast<Var>(rng.below(vars)), rng.chance(0.5))});
    }
    check_instance(cnf, 2000 + i, /*cdcl_restart_interval=*/256);
  }
}

}  // namespace

.model broken
.inputs r
.outputs a
.graph
r+ a+
a+ r-
r- a-
a- r+
this line is not an arc nor a directive !!!
.marking { <a-,r+> }
.end

.model handshake
.inputs r
.outputs a
.graph
r+ a+
a+ r-
r- a-
a- r+
.marking { <a-,r+> }
.end

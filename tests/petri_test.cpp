#include <gtest/gtest.h>

#include "petri/analysis.hpp"
#include "petri/net.hpp"

namespace {

using namespace mps::petri;

/// a -> p -> b -> q -> a  (two-transition ring, token on p).
Net make_ring(Marking* m0) {
  Net net;
  const TransId a = net.add_transition("a");
  const TransId b = net.add_transition("b");
  const PlaceId p = net.add_place("p");
  const PlaceId q = net.add_place("q");
  net.connect_tp(a, p);
  net.connect_pt(p, b);
  net.connect_tp(b, q);
  net.connect_pt(q, a);
  *m0 = net.empty_marking();
  m0->add_token(q);
  return net;
}

TEST(Marking, TokenAccounting) {
  Marking m(3);
  EXPECT_EQ(m.tokens(0), 0);
  m.add_token(0);
  m.add_token(0);
  EXPECT_EQ(m.tokens(0), 2);
  EXPECT_FALSE(m.is_safe());
  m.remove_token(0);
  EXPECT_TRUE(m.is_safe());
}

TEST(Marking, EqualityAndHash) {
  Marking a(4);
  Marking b(4);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  a.add_token(2);
  EXPECT_NE(a, b);
}

TEST(Marking, OverflowThrows) {
  Marking m(1);
  for (int i = 0; i < 255; ++i) m.add_token(0);
  EXPECT_THROW(m.add_token(0), mps::util::SemanticsError);
}

TEST(Net, EnablednessAndFiring) {
  Marking m0;
  const Net net = make_ring(&m0);
  EXPECT_TRUE(net.enabled(m0, 0));   // a has its token in q
  EXPECT_FALSE(net.enabled(m0, 1));  // b waits on p
  const Marking m1 = net.fire(m0, 0);
  EXPECT_FALSE(net.enabled(m1, 0));
  EXPECT_TRUE(net.enabled(m1, 1));
  const Marking m2 = net.fire(m1, 1);
  EXPECT_EQ(m2, m0);  // the ring closes
}

TEST(Net, EnabledTransitionsList) {
  Net net;
  const TransId t0 = net.add_transition("t0");
  const TransId t1 = net.add_transition("t1");
  const PlaceId p = net.add_place("p");
  net.connect_pt(p, t0);
  net.connect_pt(p, t1);
  Marking m = net.empty_marking();
  m.add_token(p);
  const auto enabled = net.enabled_transitions(m);
  ASSERT_EQ(enabled.size(), 2u);
  EXPECT_EQ(enabled[0], t0);
  EXPECT_EQ(enabled[1], t1);
}

TEST(Structure, MarkedGraphDetection) {
  Marking m0;
  const Net ring = make_ring(&m0);
  EXPECT_TRUE(is_marked_graph(ring));
  // Add a choice place feeding both transitions: no longer a marked graph.
  Net net = ring;
  const PlaceId c = net.add_place("c");
  net.connect_pt(c, 0);
  net.connect_pt(c, 1);
  EXPECT_FALSE(is_marked_graph(net));
}

TEST(Structure, FreeChoiceDetection) {
  // Free choice: place feeds t0 and t1, and it is the whole preset of both.
  Net fc;
  const TransId t0 = fc.add_transition("t0");
  const TransId t1 = fc.add_transition("t1");
  const PlaceId p = fc.add_place("p");
  fc.connect_pt(p, t0);
  fc.connect_pt(p, t1);
  EXPECT_TRUE(is_free_choice(fc));
  // Non-free choice: t1 gains a second fan-in place.
  const PlaceId q = fc.add_place("q");
  fc.connect_pt(q, t1);
  EXPECT_FALSE(is_free_choice(fc));
}

TEST(Reachability, RingHasTwoMarkings) {
  Marking m0;
  const Net net = make_ring(&m0);
  const auto r = reachability(net, m0);
  EXPECT_EQ(r.markings.size(), 2u);
  EXPECT_EQ(r.edges.size(), 2u);
  EXPECT_TRUE(r.safe);
  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(is_strongly_connected(r));
  EXPECT_TRUE(is_live(net, r));
}

TEST(Reachability, ConcurrencyEnumeratesInterleavings) {
  // fork -> (a || b) -> join
  Net net;
  const TransId fork = net.add_transition("fork");
  const TransId a = net.add_transition("a");
  const TransId b = net.add_transition("b");
  const TransId join = net.add_transition("join");
  const PlaceId pa = net.add_place("pa");
  const PlaceId pb = net.add_place("pb");
  const PlaceId qa = net.add_place("qa");
  const PlaceId qb = net.add_place("qb");
  const PlaceId back = net.add_place("back");
  net.connect_tp(fork, pa);
  net.connect_tp(fork, pb);
  net.connect_pt(pa, a);
  net.connect_pt(pb, b);
  net.connect_tp(a, qa);
  net.connect_tp(b, qb);
  net.connect_pt(qa, join);
  net.connect_pt(qb, join);
  net.connect_tp(join, back);
  net.connect_pt(back, fork);
  Marking m0 = net.empty_marking();
  m0.add_token(back);
  const auto r = reachability(net, m0);
  // back, (pa,pb), (qa,pb), (pa,qb), (qa,qb) = 5 markings.
  EXPECT_EQ(r.markings.size(), 5u);
  EXPECT_TRUE(is_live(net, r));
}

TEST(Reachability, MaxMarkingsCap) {
  Marking m0;
  const Net net = make_ring(&m0);
  ReachabilityOptions opts;
  opts.max_markings = 1;
  const auto r = reachability(net, m0, opts);
  EXPECT_FALSE(r.complete);
}

TEST(Reachability, UnsafeNetDetected) {
  // t produces two tokens into p per firing of a one-token loop: unsafe.
  Net net;
  const TransId t = net.add_transition("t");
  const TransId u = net.add_transition("u");
  const PlaceId p = net.add_place("p");
  const PlaceId loop = net.add_place("loop");
  net.connect_pt(loop, t);
  net.connect_tp(t, loop);
  net.connect_tp(t, p);
  net.connect_pt(p, u);  // u drains p (but slower than t fills it)
  Marking m0 = net.empty_marking();
  m0.add_token(loop);
  ReachabilityOptions opts;
  opts.max_tokens_per_place = 1;
  opts.max_markings = 100;
  const auto r = reachability(net, m0, opts);
  EXPECT_FALSE(r.safe);
}

TEST(Liveness, DeadTransitionMakesNetNotLive) {
  // Ring plus a transition guarded by a never-marked place.
  Net net;
  const TransId a = net.add_transition("a");
  const TransId b = net.add_transition("b");
  const TransId dead = net.add_transition("dead");
  const PlaceId p = net.add_place("p");
  const PlaceId q = net.add_place("q");
  const PlaceId never = net.add_place("never");
  net.connect_tp(a, p);
  net.connect_pt(p, b);
  net.connect_tp(b, q);
  net.connect_pt(q, a);
  net.connect_pt(never, dead);
  Marking m0 = net.empty_marking();
  m0.add_token(q);
  const auto r = reachability(net, m0);
  EXPECT_FALSE(is_live(net, r));
}

}  // namespace

// The symbolic engine against the explicit one: reachable-state counts,
// CSC verdicts and reachable codes must agree on every Table-1 benchmark
// and on randomly generated STGs; the pipeline family exercises the scale
// (10⁵–10⁶ states) the explicit engine cannot reach comfortably.  Runs as
// its own target under the `bdd` ctest label.
#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "bdd/symbolic.hpp"
#include "benchmarks/benchmarks.hpp"
#include "benchmarks/generators.hpp"
#include "sg/csc.hpp"
#include "sg/state_graph.hpp"
#include "stg/parser.hpp"
#include "util/common.hpp"

namespace {

using namespace mps;
using bdd::SymbolicStg;
using util::BitVec;

/// Number of distinct reachable codes per the symbolic engine: code_chi
/// depends only on the signal variables, so its sat-count over all
/// 2·num_bits variables is (#codes) · 2^(num_vars − num_signals).
double symbolic_code_count(SymbolicStg& sym, std::size_t num_signals) {
  const double total = sym.manager().sat_count(sym.code_chi());
  const double free_vars =
      static_cast<double>(sym.manager().num_vars()) - static_cast<double>(num_signals);
  return total / std::pow(2.0, free_vars);
}

TEST(SymbolicVsExplicit, AgreesOnEveryTable1Benchmark) {
  for (const auto& b : benchmarks::table1_benchmarks()) {
    const stg::Stg spec = b.make();
    const sg::StateGraph g = sg::StateGraph::from_stg(spec);
    const sg::CscResult explicit_csc = sg::analyze_csc(g);

    SymbolicStg sym(spec);
    EXPECT_DOUBLE_EQ(sym.num_states(), static_cast<double>(g.num_states())) << b.name;
    EXPECT_EQ(sym.check_csc().holds, explicit_csc.satisfied()) << b.name;
    EXPECT_EQ(sym.initial_code(), g.code(g.initial())) << b.name;

    std::unordered_set<BitVec, util::BitVecHash> codes;
    for (sg::StateId s = 0; s < g.num_states(); ++s) {
      codes.insert(g.code(s));
      EXPECT_TRUE(sym.code_reachable(g.code(s))) << b.name << " state " << s;
    }
    EXPECT_DOUBLE_EQ(symbolic_code_count(sym, g.num_signals()),
                     static_cast<double>(codes.size()))
        << b.name;
  }
}

TEST(SymbolicVsExplicit, AgreesOnRandomStgs) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    util::Rng rng(seed);
    const stg::Stg spec = benchmarks::random_stg(rng);
    const sg::StateGraph g = sg::StateGraph::from_stg(spec);
    SymbolicStg sym(spec);
    EXPECT_DOUBLE_EQ(sym.num_states(), static_cast<double>(g.num_states()))
        << "seed " << seed;
    EXPECT_EQ(sym.check_csc().holds, sg::analyze_csc(g).satisfied()) << "seed " << seed;
  }
}

TEST(SymbolicVsExplicit, ToggleRingViolatesCscInBothEngines) {
  const stg::Stg spec = benchmarks::gen_toggle_ring("ring", 3);
  const sg::StateGraph g = sg::StateGraph::from_stg(spec);
  EXPECT_FALSE(sg::analyze_csc(g).satisfied());
  SymbolicStg sym(spec);
  const bdd::CscVerdict v = sym.check_csc();
  EXPECT_FALSE(v.holds);
  EXPECT_FALSE(v.conflicts.empty());
}

TEST(SymbolicScaling, PipelineCrossCheckAt1e5States) {
  // pipe10: 118,100 reachable states — explicit still (slowly) manages, so
  // the two engines can be compared head to head at 10⁵.
  const stg::Stg spec = benchmarks::gen_pipeline("pipe", 10);
  sg::BuildOptions opts;
  opts.max_states = 1u << 21;
  const sg::StateGraph g = sg::StateGraph::from_stg(spec, opts);
  ASSERT_EQ(g.num_states(), 118100u);
  SymbolicStg sym(spec);
  EXPECT_DOUBLE_EQ(sym.num_states(), 118100.0);
  EXPECT_EQ(sym.check_csc().holds, sg::analyze_csc(g).satisfied());
}

TEST(SymbolicScaling, PipelineBeyondExplicitLimit) {
  // pipe14: 9,565,940 states — beyond the explicit builder's 2^21 default
  // limit (and its 2^22 ceiling); the symbolic engine finishes in well
  // under a second.
  const stg::Stg spec = benchmarks::gen_pipeline("pipe", 14);
  SymbolicStg sym(spec);
  EXPECT_DOUBLE_EQ(sym.num_states(), 9565940.0);
  EXPECT_EQ(sym.num_iterations(), 60u);
  EXPECT_FALSE(sym.check_csc().holds);
}

TEST(SymbolicScaling, GcPreservesTheFixedPoint) {
  // A threshold small enough to force collections mid-reachability: the
  // result must not change, and the collector must actually have run.
  bdd::SymbolicOptions opts;
  opts.gc_node_threshold = 2000;
  const stg::Stg spec = benchmarks::gen_pipeline("pipe", 8);
  SymbolicStg sym(spec, opts);
  EXPECT_DOUBLE_EQ(sym.num_states(), 13124.0);
  EXPECT_GT(sym.manager().stats().gc_runs, 0u);
  EXPECT_FALSE(sym.check_csc().holds);
}

TEST(SymbolicBudget, NodeLimitSurfacesAsLimitError) {
  bdd::SymbolicOptions opts;
  opts.max_nodes = 500;
  SymbolicStg sym(benchmarks::gen_pipeline("pipe", 8), opts);
  EXPECT_THROW(sym.reachable(), util::LimitError);
}

TEST(SymbolicBudget, IterationCapSurfacesAsLimitError) {
  bdd::SymbolicOptions opts;
  opts.max_iterations = 3;
  SymbolicStg sym(benchmarks::gen_pipeline("pipe", 8), opts);
  EXPECT_THROW(sym.reachable(), util::LimitError);
}

TEST(SymbolicErrors, InconsistentStgRejectedLikeExplicit) {
  // x rises twice in a row — the same spec sg_test pins for the explicit
  // builder's SemanticsError.
  const char* bad = R"(
.model bad
.outputs x
.graph
x+ x+/1
x+/1 x-
x- x+
.marking { <x-,x+> }
.end
)";
  const stg::Stg spec = stg::parse_g(bad);
  EXPECT_THROW(sg::StateGraph::from_stg(spec), util::SemanticsError);
  SymbolicStg sym(spec);
  EXPECT_THROW(sym.reachable(), util::SemanticsError);
}

TEST(SymbolicErrors, UnsafeInitialMarkingRejected) {
  stg::Stg spec("unsafe");
  const stg::SignalId x = spec.add_signal("x", stg::SignalKind::Output);
  const petri::TransId up = spec.add_transition({x, stg::Polarity::Rise});
  const petri::TransId dn = spec.add_transition({x, stg::Polarity::Fall});
  const petri::PlaceId p0 = spec.net().add_place("p0");
  const petri::PlaceId p1 = spec.net().add_place("p1");
  spec.net().connect_pt(p0, up);
  spec.net().connect_tp(up, p1);
  spec.net().connect_pt(p1, dn);
  spec.net().connect_tp(dn, p0);
  petri::Marking m(2);
  m.add_token(p0);
  m.add_token(p0);  // two tokens in one place
  spec.set_initial_marking(m);
  SymbolicStg sym(spec);
  EXPECT_THROW(sym.reachable(), util::SemanticsError);
}

TEST(SymbolicErrors, ReachableContactRejected) {
  // x+ and y+ both produce into the place x- consumes; firing both before
  // x- is contact.  Both engines must reject with SemanticsError.
  stg::Stg spec("contact");
  const stg::SignalId x = spec.add_signal("x", stg::SignalKind::Output);
  const stg::SignalId y = spec.add_signal("y", stg::SignalKind::Output);
  const petri::TransId xup = spec.add_transition({x, stg::Polarity::Rise});
  const petri::TransId xdn = spec.add_transition({x, stg::Polarity::Fall});
  const petri::TransId yup = spec.add_transition({y, stg::Polarity::Rise});
  const petri::PlaceId px = spec.net().add_place("px");
  const petri::PlaceId py = spec.net().add_place("py");
  const petri::PlaceId mid = spec.net().add_place("mid");
  spec.net().connect_pt(px, xup);
  spec.net().connect_pt(py, yup);
  spec.net().connect_tp(xup, mid);
  spec.net().connect_tp(yup, mid);
  spec.net().connect_pt(mid, xdn);
  petri::Marking m(3);
  m.add_token(px);
  m.add_token(py);
  spec.set_initial_marking(m);
  EXPECT_THROW(sg::StateGraph::from_stg(spec), util::SemanticsError);
  SymbolicStg sym(spec);
  EXPECT_THROW(sym.reachable(), util::SemanticsError);
}

}  // namespace

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "core/input_set.hpp"
#include "core/module_graph.hpp"
#include "core/partition_sat.hpp"
#include "core/synthesis.hpp"
#include "logic/extract.hpp"
#include "sg/csc.hpp"
#include "sg/expand.hpp"
#include "stg/builder.hpp"

namespace {

using namespace mps;
using sg::V4;

stg::Stg toggle_stg() {
  return stg::Builder("toggle")
      .outputs({"x", "y"})
      .path("x+", "x-", "y+", "y-")
      .arc("y-", "x+")
      .token("y-", "x+")
      .build();
}

/// fork: a+ -> (b || c) -> a-; output b's logic depends only on a.
stg::Stg fork_stg() {
  return stg::Builder("fork")
      .inputs({"a"})
      .outputs({"b", "c"})
      .arc("a+", "b+")
      .arc("a+", "c+")
      .path("b+", "b-")
      .path("c+", "c-")
      .arc("b-", "a-")
      .arc("c-", "a-")
      .arc("a-", "a+")
      .token("a-", "a+")
      .build();
}

TEST(TriggerSignals, SgLevelTriggers) {
  const auto g = sg::StateGraph::from_stg(fork_stg());
  const auto trig_b = core::sg_trigger_signals(g, g.find_signal("b"));
  ASSERT_EQ(trig_b.size(), 1u);
  EXPECT_EQ(g.signal(trig_b[0]).name, "a");
}

TEST(InputSet, KeepsOutputAndTriggers) {
  const auto g = sg::StateGraph::from_stg(fork_stg());
  const sg::SignalId b = g.find_signal("b");
  const auto isr = core::determine_input_set(g, b, sg::Assignments(g.num_states()));
  EXPECT_TRUE(isr.kept.test(b));
  EXPECT_TRUE(isr.kept.test(g.find_signal("a")));
}

TEST(InputSet, HidesIrrelevantSignals) {
  // In the fork, c is concurrent with b; hiding it must not increase the
  // b-focused conflicts, so the greedy pass removes it.
  const auto g = sg::StateGraph::from_stg(fork_stg());
  const sg::SignalId b = g.find_signal("b");
  const auto isr = core::determine_input_set(g, b, sg::Assignments(g.num_states()));
  EXPECT_FALSE(isr.kept.test(g.find_signal("c")));
}

TEST(InputSet, CandidateOrdersGiveValidSets) {
  const auto g =
      sg::StateGraph::from_stg(benchmarks::find_benchmark("sbuf-ram-write")->make());
  for (const auto order : {core::InputSetOptions::Order::SignalId,
                           core::InputSetOptions::Order::FewestEdgesFirst,
                           core::InputSetOptions::Order::MostEdgesFirst}) {
    core::InputSetOptions opts;
    opts.order = order;
    const sg::SignalId o = g.find_signal("w1");
    const auto isr = core::determine_input_set(g, o, sg::Assignments(g.num_states()), opts);
    EXPECT_TRUE(isr.kept.test(o));
    EXPECT_GE(isr.kept.count(), 1u);
  }
}

TEST(InputSet, RetainsSeparatingStateSignals) {
  const auto g = sg::StateGraph::from_stg(toggle_stg());
  sg::Assignments assigns(g.num_states());
  // This signal separates the only conflict: dropping it would re-create
  // the conflict, so it must be retained.
  assigns.add_signal("n", {V4::Zero, V4::Up, V4::One, V4::Down});
  const auto isr = core::determine_input_set(g, g.find_signal("x"), assigns);
  ASSERT_EQ(isr.kept_state_signals.size(), 1u);
  EXPECT_EQ(isr.kept_state_signals[0], 0u);
}

TEST(InputSet, DropsUselessStateSignals) {
  const auto g = sg::StateGraph::from_stg(toggle_stg());
  sg::Assignments assigns(g.num_states());
  assigns.add_signal("junk", {V4::Zero, V4::Zero, V4::Zero, V4::Zero});
  const auto isr = core::determine_input_set(g, g.find_signal("x"), assigns);
  EXPECT_TRUE(isr.kept_state_signals.empty());
}

TEST(ModuleGraph, ProjectsToInputSet) {
  const auto g = sg::StateGraph::from_stg(fork_stg());
  const sg::SignalId b = g.find_signal("b");
  const sg::Assignments none(g.num_states());
  const auto isr = core::determine_input_set(g, b, none);
  const auto module = core::build_module(g, b, isr, none);
  EXPECT_EQ(module.proj.kept.size(), isr.kept.count());
  EXPECT_LT(module.proj.graph.num_states(), g.num_states());
  // Focus is b remapped into module space.
  EXPECT_EQ(module.proj.graph.signal(module.focus).name, "b");
}

TEST(PartitionSat, NoConflictsMeansNoSignals) {
  const auto hs = stg::Builder("hs")
                      .inputs({"r"})
                      .outputs({"a"})
                      .path("r+", "a+", "r-", "a-")
                      .arc("a-", "r+")
                      .token("a-", "r+")
                      .build();
  const auto g = sg::StateGraph::from_stg(hs);
  const sg::Assignments none(g.num_states());
  const auto isr = core::determine_input_set(g, g.find_signal("a"), none);
  const auto module = core::build_module(g, g.find_signal("a"), isr, none);
  EXPECT_TRUE(module.conflicts.empty());
  const auto psr = core::partition_sat(module, "n");
  EXPECT_TRUE(psr.success);
  EXPECT_EQ(psr.module_assignments.num_signals(), 0u);
}

TEST(PartitionSat, SolvesToggleModule) {
  const auto g = sg::StateGraph::from_stg(toggle_stg());
  const sg::Assignments none(g.num_states());
  const sg::SignalId x = g.find_signal("x");
  const auto isr = core::determine_input_set(g, x, none);
  const auto module = core::build_module(g, x, isr, none);
  ASSERT_FALSE(module.conflicts.empty());
  const auto psr = core::partition_sat(module, "n");
  ASSERT_TRUE(psr.success);
  EXPECT_GE(psr.module_assignments.num_signals(), 1u);
  ASSERT_FALSE(psr.formulas.empty());
  EXPECT_EQ(psr.formulas.back().outcome, sat::Outcome::Sat);
  // Formula size bookkeeping: 2*N*m core variables.
  EXPECT_GE(psr.formulas.back().num_vars,
            2 * module.proj.graph.num_states() * psr.formulas.back().num_new_signals);
}

TEST(Propagate, CopiesThroughCoverMap) {
  const auto g = sg::StateGraph::from_stg(toggle_stg());
  const sg::Assignments none(g.num_states());
  const sg::SignalId x = g.find_signal("x");
  const auto isr = core::determine_input_set(g, x, none);
  const auto module = core::build_module(g, x, isr, none);
  const auto psr = core::partition_sat(module, "n");
  ASSERT_TRUE(psr.success);
  sg::Assignments global(g.num_states());
  core::propagate(module, psr.module_assignments, &global, g.num_signals());
  ASSERT_EQ(global.num_signals(), psr.module_assignments.num_signals());
  for (sg::StateId s = 0; s < g.num_states(); ++s) {
    EXPECT_EQ(global.value(0, s),
              psr.module_assignments.value(0, module.proj.state_map[s]));
  }
  // Propagated assignments are coherent on the complete graph.
  EXPECT_FALSE(global.check_coherence(g).has_value());
}

TEST(Synthesis, ToggleEndToEnd) {
  const auto r = core::modular_synthesis(toggle_stg());
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_EQ(r.initial_states, 4u);
  EXPECT_EQ(r.initial_signals, 2u);
  EXPECT_EQ(r.final_signals, 3u);     // one inserted signal
  EXPECT_EQ(r.final_states, 6u);      // two split states
  EXPECT_EQ(r.total_literals, 7u);    // matches the paper's vbe-ex1 area
  EXPECT_TRUE(sg::analyze_csc(r.final_graph).satisfied());
  ASSERT_EQ(r.covers.size(), 3u);     // x, y and the state signal
}

TEST(Synthesis, AlreadyCleanSpecIsUntouched) {
  const auto hs = stg::Builder("hs")
                      .inputs({"r"})
                      .outputs({"a"})
                      .path("r+", "a+", "r-", "a-")
                      .arc("a-", "r+")
                      .token("a-", "r+")
                      .build();
  const auto r = core::modular_synthesis(hs);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.final_signals, r.initial_signals);
  EXPECT_EQ(r.final_states, r.initial_states);
  EXPECT_EQ(r.rounds, 0);
}

TEST(Synthesis, ReportsModules) {
  const auto r = core::modular_synthesis(toggle_stg());
  ASSERT_TRUE(r.success);
  ASSERT_FALSE(r.modules.empty());
  bool some_module_inserted = false;
  for (const auto& m : r.modules) {
    EXPECT_FALSE(m.output.empty());
    some_module_inserted |= m.new_signals > 0;
  }
  EXPECT_TRUE(some_module_inserted);
}

TEST(Synthesis, DeriveLogicCanBeDisabled) {
  core::SynthesisOptions opts;
  opts.derive_logic = false;
  const auto r = core::modular_synthesis(toggle_stg(), opts);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(r.covers.empty());
  EXPECT_EQ(r.total_literals, 0u);
}

TEST(Synthesis, CoversMatchFinalGraphFunctions) {
  const auto r = core::modular_synthesis(fork_stg());
  ASSERT_TRUE(r.success);
  for (const auto& [name, cover] : r.covers) {
    const auto sig = r.final_graph.find_signal(name);
    ASSERT_NE(sig, stg::kNoSignal) << name;
    const auto spec = logic::extract_next_state(r.final_graph, sig);
    EXPECT_TRUE(logic::cover_is_valid(spec, cover)) << name;
  }
}

TEST(Synthesis, DeterministicAcrossRuns) {
  const auto a = core::modular_synthesis(toggle_stg());
  const auto b = core::modular_synthesis(toggle_stg());
  EXPECT_EQ(a.final_states, b.final_states);
  EXPECT_EQ(a.final_signals, b.final_signals);
  EXPECT_EQ(a.total_literals, b.total_literals);
}

TEST(Synthesis, StgOverloadContractsDummies) {
  const auto stg = stg::Builder("dum")
                       .outputs({"x", "y"})
                       .dummies({"eps"})
                       .path("x+", "x-", "eps", "y+", "y-")
                       .arc("y-", "x+")
                       .token("y-", "x+")
                       .build();
  const auto r = core::modular_synthesis(stg);
  ASSERT_TRUE(r.success);
  // The ε transition is contracted away before synthesis.
  for (sg::StateId s = 0; s < r.final_graph.num_states(); ++s) {
    for (const auto& e : r.final_graph.out(s)) EXPECT_FALSE(e.is_silent());
  }
}

// The determinism guarantee behind SynthesisOptions::num_threads
// (DESIGN.md "Parallel synthesis"): any thread count yields the same
// synthesis, bit for bit, as the fully serial flow — across the whole
// Table-1 benchmark suite.
TEST(Synthesis, ParallelMatchesSerialOnBenchmarkSuite) {
  for (const auto& b : benchmarks::table1_benchmarks()) {
    const auto g = sg::StateGraph::from_stg(b.make());

    core::SynthesisOptions serial;
    serial.num_threads = 1;
    const auto s = core::modular_synthesis(g, serial);

    core::SynthesisOptions parallel = serial;
    parallel.num_threads = 4;
    const auto p = core::modular_synthesis(g, parallel);

    EXPECT_EQ(p.success, s.success) << b.name;
    EXPECT_EQ(p.final_states, s.final_states) << b.name;
    EXPECT_EQ(p.final_signals, s.final_signals) << b.name;
    EXPECT_EQ(p.total_literals, s.total_literals) << b.name;
    EXPECT_EQ(p.rounds, s.rounds) << b.name;
    ASSERT_EQ(p.covers.size(), s.covers.size()) << b.name;
    for (std::size_t i = 0; i < s.covers.size(); ++i) {
      EXPECT_EQ(p.covers[i].first, s.covers[i].first) << b.name;
      EXPECT_EQ(p.covers[i].second.to_string(), s.covers[i].second.to_string())
          << b.name << " signal " << s.covers[i].first;
    }
    // The per-module reports line up too (same outputs, same formulas).
    ASSERT_EQ(p.modules.size(), s.modules.size()) << b.name;
    for (std::size_t i = 0; i < s.modules.size(); ++i) {
      EXPECT_EQ(p.modules[i].output, s.modules[i].output) << b.name;
      EXPECT_EQ(p.modules[i].new_signals, s.modules[i].new_signals) << b.name;
      EXPECT_EQ(p.modules[i].module_states, s.modules[i].module_states) << b.name;
    }
  }
}

TEST(Synthesis, ModuleReportsRecordWallTime) {
  const auto r = core::modular_synthesis(toggle_stg());
  ASSERT_TRUE(r.success);
  ASSERT_FALSE(r.modules.empty());
  for (const auto& m : r.modules) EXPECT_GE(m.seconds, 0.0);
}

TEST(Synthesis, RoundTimeLimitStillTerminates) {
  // An absurdly small round budget must not wedge or crash the flow: module
  // solves get cut off like a backtrack limit, and the rescue path (which
  // has no deadline) or later rounds finish the job — possibly with a
  // different (still CSC-valid) result, so only structural properties are
  // asserted here.
  core::SynthesisOptions opts;
  opts.round_time_limit_s = 1e-9;
  const auto r = core::modular_synthesis(toggle_stg(), opts);
  EXPECT_GE(r.rounds, 1);
  if (r.success) {
    EXPECT_TRUE(sg::analyze_csc(r.final_graph).satisfied());
  }
}

TEST(Synthesis, DerivedAllLogicCountsEveryNonInput) {
  const auto r = core::modular_synthesis(fork_stg());
  ASSERT_TRUE(r.success);
  std::size_t non_inputs = 0;
  for (sg::SignalId s = 0; s < r.final_graph.num_signals(); ++s) {
    non_inputs += r.final_graph.is_input(s) ? 0 : 1;
  }
  EXPECT_EQ(r.covers.size(), non_inputs);
}

}  // namespace

#include <gtest/gtest.h>

#include "benchmarks/generators.hpp"
#include "sg/assignments.hpp"
#include "sg/expand.hpp"
#include "sg/projection.hpp"
#include "sg/state_graph.hpp"
#include "stg/builder.hpp"
#include "stg/parser.hpp"

namespace {

using namespace mps;
using sg::StateGraph;
using sg::V4;

stg::Stg toggle_stg() {
  return stg::Builder("toggle")
      .outputs({"x", "y"})
      .path("x+", "x-", "y+", "y-")
      .arc("y-", "x+")
      .token("y-", "x+")
      .build();
}

stg::Stg handshake_stg() {
  return stg::Builder("hs")
      .inputs({"r"})
      .outputs({"a"})
      .path("r+", "a+", "r-", "a-")
      .arc("a-", "r+")
      .token("a-", "r+")
      .build();
}

TEST(StateGraph, HandshakeHasFourDistinctCodes) {
  const StateGraph g = StateGraph::from_stg(handshake_stg());
  EXPECT_EQ(g.num_states(), 4u);
  EXPECT_EQ(g.num_signals(), 2u);
  std::set<std::string> codes;
  for (sg::StateId s = 0; s < g.num_states(); ++s) codes.insert(g.code(s).to_string());
  EXPECT_EQ(codes.size(), 4u);
  g.check_consistency();
}

TEST(StateGraph, InitialStateHasInferredZeroValues) {
  const StateGraph g = StateGraph::from_stg(handshake_stg());
  // r+ is enabled at the initial state, so r must be 0 there; a falls last,
  // so a is 0 too.
  EXPECT_FALSE(g.value(g.initial(), g.find_signal("r")));
  EXPECT_FALSE(g.value(g.initial(), g.find_signal("a")));
}

TEST(StateGraph, ToggleCycleRepeatsCodes) {
  const StateGraph g = StateGraph::from_stg(toggle_stg());
  EXPECT_EQ(g.num_states(), 4u);
  std::set<std::string> codes;
  for (sg::StateId s = 0; s < g.num_states(); ++s) codes.insert(g.code(s).to_string());
  EXPECT_EQ(codes.size(), 3u);  // "00" repeats
}

TEST(StateGraph, ExcitationSets) {
  const StateGraph g = StateGraph::from_stg(handshake_stg());
  const sg::SignalId r = g.find_signal("r");
  const sg::SignalId a = g.find_signal("a");
  const auto excited0 = g.excited(g.initial());
  EXPECT_TRUE(excited0.test(r));
  EXPECT_FALSE(excited0.test(a));
  // Non-input excitation excludes r.
  EXPECT_FALSE(g.excited_non_input(g.initial()).test(r));
  EXPECT_TRUE(g.excited_dir(g.initial(), r, true));
  EXPECT_FALSE(g.excited_dir(g.initial(), r, false));
}

TEST(StateGraph, InconsistentStgRejected) {
  // x rises twice in a row: no consistent assignment.
  const char* bad = R"(
.model bad
.outputs x
.graph
x+ x+/1
x+/1 x-
x- x+
.marking { <x-,x+> }
.end
)";
  EXPECT_THROW(StateGraph::from_stg(stg::parse_g(bad)), mps::util::SemanticsError);
}

TEST(StateGraph, StateLimitEnforced) {
  const auto big = mps::benchmarks::gen_parallelizer("big", 4);
  sg::BuildOptions opts;
  opts.max_states = 10;
  EXPECT_THROW(StateGraph::from_stg(big, opts), mps::util::LimitError);
}

TEST(StateGraph, AddSignalExtendsCodes) {
  StateGraph g = StateGraph::from_stg(handshake_stg());
  const auto before = g.num_signals();
  g.add_signal(sg::SignalInfo{"n", false}, true);
  EXPECT_EQ(g.num_signals(), before + 1);
  for (sg::StateId s = 0; s < g.num_states(); ++s) {
    EXPECT_TRUE(g.code(s).test(before));
  }
}

TEST(StateGraph, ConcurrentPairsCount) {
  // par of two pulses: the fork state enables both.
  const auto stg = mps::benchmarks::gen_parallelizer("p2", 2);
  const StateGraph g = StateGraph::from_stg(stg);
  EXPECT_GT(g.num_concurrent_pairs(), 0u);
}

TEST(StateGraph, Predecessors) {
  const StateGraph g = StateGraph::from_stg(handshake_stg());
  const auto pred = g.predecessors();
  std::size_t total = 0;
  for (const auto& p : pred) total += p.size();
  EXPECT_EQ(total, g.num_edges());
}

// --- projection --------------------------------------------------------

TEST(Projection, HidingMergesStates) {
  const StateGraph g = StateGraph::from_stg(toggle_stg());
  util::BitVec hide(g.num_signals());
  hide.set(g.find_signal("y"));
  const auto proj = sg::hide_signals(g, hide);
  // y's two transitions merge 3 states into 1: x+ x- remain.
  EXPECT_EQ(proj.graph.num_states(), 2u);
  EXPECT_EQ(proj.kept.size(), 1u);
  EXPECT_EQ(proj.graph.signal(0).name, "x");
  // Cover map is total and in range.
  for (const sg::StateId c : proj.state_map) EXPECT_LT(c, proj.graph.num_states());
}

TEST(Projection, KeptCodesAgreeWithOriginals) {
  const auto stg = mps::benchmarks::gen_sequencer("seq", 2);
  const StateGraph g = StateGraph::from_stg(stg);
  util::BitVec hide(g.num_signals());
  hide.set(1);
  hide.set(3);
  const auto proj = sg::hide_signals(g, hide);
  for (sg::StateId s = 0; s < g.num_states(); ++s) {
    for (std::size_t i = 0; i < proj.kept.size(); ++i) {
      EXPECT_EQ(g.code(s).test(proj.kept[i]),
                proj.graph.code(proj.state_map[s]).test(static_cast<sg::SignalId>(i)));
    }
  }
}

TEST(Projection, HideNothingIsIsomorphic) {
  const StateGraph g = StateGraph::from_stg(handshake_stg());
  const util::BitVec hide(g.num_signals());
  const auto proj = sg::hide_signals(g, hide);
  EXPECT_EQ(proj.graph.num_states(), g.num_states());
  EXPECT_EQ(proj.graph.num_edges(), g.num_edges());
}

TEST(Projection, AssignmentMergeFollowsFigure3) {
  // Graph: chain of 4 states via x+ x- y+ (y hidden); state signal values
  // 0, Up, 1, 1 should merge by (0,Up)->Up rules where states merge.
  const StateGraph g = StateGraph::from_stg(toggle_stg());
  // States: 0 -x+-> 1 -x-> 2 -y+-> 3 -y-> 0.
  sg::Assignments assigns(g.num_states());
  assigns.add_signal("n", {V4::Zero, V4::Up, V4::One, V4::One});
  util::BitVec hide(g.num_signals());
  hide.set(g.find_signal("x"));  // merges 0,1,2 into one class
  const auto proj = sg::hide_signals(g, hide, &assigns);
  EXPECT_TRUE(proj.assignments_consistent);
  ASSERT_EQ(proj.assignments.num_signals(), 1u);
  // Merged class {0,1,2} has Up (0,Up,1 pattern); class {3} keeps One.
  const sg::StateId merged = proj.state_map[0];
  EXPECT_EQ(proj.assignments.value(0, merged), V4::Up);
  EXPECT_EQ(proj.assignments.value(0, proj.state_map[3]), V4::One);
}

TEST(Projection, InconsistentMergeDetected) {
  const StateGraph g = StateGraph::from_stg(toggle_stg());
  sg::Assignments assigns(g.num_states());
  // 0 and 1 in one ε-class with no excitation boundary: inconsistent.
  assigns.add_signal("n", {V4::Zero, V4::One, V4::One, V4::One});
  util::BitVec hide(g.num_signals());
  hide.set(g.find_signal("x"));
  const auto proj = sg::hide_signals(g, hide, &assigns);
  EXPECT_FALSE(proj.assignments_consistent);
}

TEST(Projection, UpAndDownInOneClassRejected) {
  const StateGraph g = StateGraph::from_stg(toggle_stg());
  sg::Assignments assigns(g.num_states());
  assigns.add_signal("n", {V4::Up, V4::Down, V4::Zero, V4::Zero});
  util::BitVec hide(g.num_signals());
  hide.set(g.find_signal("x"));
  const auto proj = sg::hide_signals(g, hide, &assigns);
  EXPECT_FALSE(proj.assignments_consistent);
}

// --- assignments / V4 --------------------------------------------------

TEST(V4, MergeRules) {
  using sg::merge_pair_allowed;
  // Equal pairs.
  for (const V4 v : {V4::Zero, V4::One, V4::Up, V4::Down}) {
    EXPECT_TRUE(merge_pair_allowed(v, v));
  }
  // Excitation boundaries (directed).
  EXPECT_TRUE(merge_pair_allowed(V4::Zero, V4::Up));
  EXPECT_TRUE(merge_pair_allowed(V4::Up, V4::One));
  EXPECT_TRUE(merge_pair_allowed(V4::One, V4::Down));
  EXPECT_TRUE(merge_pair_allowed(V4::Down, V4::Zero));
  // The reverse directions are inconsistent.
  EXPECT_FALSE(merge_pair_allowed(V4::Up, V4::Zero));
  EXPECT_FALSE(merge_pair_allowed(V4::One, V4::Up));
  EXPECT_FALSE(merge_pair_allowed(V4::Down, V4::One));
  EXPECT_FALSE(merge_pair_allowed(V4::Zero, V4::Down));
  // Plain contradictions.
  EXPECT_FALSE(merge_pair_allowed(V4::Zero, V4::One));
  EXPECT_FALSE(merge_pair_allowed(V4::One, V4::Zero));
  EXPECT_FALSE(merge_pair_allowed(V4::Up, V4::Down));
  EXPECT_FALSE(merge_pair_allowed(V4::Down, V4::Up));
}

TEST(V4, SeparationIsStableComplementOnly) {
  EXPECT_TRUE(sg::separates(V4::Zero, V4::One));
  EXPECT_TRUE(sg::separates(V4::One, V4::Zero));
  EXPECT_FALSE(sg::separates(V4::Up, V4::One));
  EXPECT_FALSE(sg::separates(V4::Zero, V4::Down));
  EXPECT_FALSE(sg::separates(V4::Up, V4::Down));
}

TEST(Assignments, CoherenceCheck) {
  const StateGraph g = StateGraph::from_stg(handshake_stg());
  sg::Assignments good(g.num_states());
  // 0 -r+-> 1 -a+-> 2 -r-> 3 -a-> 0: rise across 1, fall across 3.
  good.add_signal("n", {V4::Zero, V4::Up, V4::One, V4::Down});
  EXPECT_FALSE(good.check_coherence(g).has_value());

  sg::Assignments bad(g.num_states());
  bad.add_signal("n", {V4::Zero, V4::One, V4::One, V4::Zero});  // 0->1 jump
  EXPECT_TRUE(bad.check_coherence(g).has_value());
}

TEST(Assignments, Subset) {
  sg::Assignments a(3);
  a.add_signal("p", {V4::Zero, V4::One, V4::Zero});
  a.add_signal("q", {V4::Up, V4::Up, V4::Up});
  const auto sub = a.subset({1});
  EXPECT_EQ(sub.num_signals(), 1u);
  EXPECT_EQ(sub.name(0), "q");
  EXPECT_EQ(sub.value(0, 2), V4::Up);
}

// --- expansion ----------------------------------------------------------

TEST(Expand, EmptyAssignmentsIsCopy) {
  const StateGraph g = StateGraph::from_stg(handshake_stg());
  const auto ex = sg::expand(g, sg::Assignments(g.num_states()));
  EXPECT_EQ(ex.graph.num_states(), g.num_states());
  EXPECT_EQ(ex.graph.num_edges(), g.num_edges());
}

TEST(Expand, SplitsExcitedStates) {
  const StateGraph g = StateGraph::from_stg(handshake_stg());
  sg::Assignments assigns(g.num_states());
  assigns.add_signal("n", {V4::Zero, V4::Up, V4::One, V4::Down});
  const auto ex = sg::expand(g, assigns);
  // Two excited states split: 4 + 2 = 6 states; signal column added.
  EXPECT_EQ(ex.graph.num_states(), 6u);
  EXPECT_EQ(ex.graph.num_signals(), 3u);
  EXPECT_FALSE(ex.graph.is_input(2));
  ex.graph.check_consistency();
  // The inserted signal has both a rising and a falling edge.
  bool rise = false;
  bool fall = false;
  for (sg::StateId s = 0; s < ex.graph.num_states(); ++s) {
    for (const sg::Edge& e : ex.graph.out(s)) {
      if (e.sig == 2) (e.rise ? rise : fall) = true;
    }
  }
  EXPECT_TRUE(rise);
  EXPECT_TRUE(fall);
}

TEST(Expand, IncoherentAssignmentThrows) {
  const StateGraph g = StateGraph::from_stg(handshake_stg());
  sg::Assignments assigns(g.num_states());
  assigns.add_signal("n", {V4::Zero, V4::One, V4::Zero, V4::One});
  EXPECT_THROW(sg::expand(g, assigns), mps::util::SemanticsError);
}

TEST(Expand, OriginMapsBackToSource) {
  const StateGraph g = StateGraph::from_stg(handshake_stg());
  sg::Assignments assigns(g.num_states());
  assigns.add_signal("n", {V4::Zero, V4::Up, V4::One, V4::Down});
  const auto ex = sg::expand(g, assigns);
  ASSERT_EQ(ex.origin.size(), ex.graph.num_states());
  for (const sg::StateId o : ex.origin) EXPECT_LT(o, g.num_states());
}

TEST(SemiModularity, HandshakeIsSemiModular) {
  const StateGraph g = StateGraph::from_stg(handshake_stg());
  EXPECT_TRUE(sg::semi_modularity_violations(g).empty());
}

TEST(SemiModularity, OutputChoiceDetected) {
  // A place choosing between two output transitions: firing one disables
  // the other.
  const char* text = R"(
.model oc
.outputs x y z
.graph
p0 x+ y+
x+ z+
y+ z+/1
z+ z-
z+/1 z-/1
z- x-
z-/1 y-
x- p0
y- p0
.marking { p0 }
.end
)";
  const StateGraph g = StateGraph::from_stg(stg::parse_g(text));
  EXPECT_FALSE(sg::semi_modularity_violations(g).empty());
}

TEST(CodeClasses, GroupsByCode) {
  const StateGraph g = StateGraph::from_stg(toggle_stg());
  const auto classes = sg::code_classes(g);
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes[0].size(), 2u);  // the two "00" states
}

}  // namespace

#include <gtest/gtest.h>

#include <limits>

#include "sat/cnf.hpp"
#include "sat/dimacs.hpp"
#include "sat/engine.hpp"
#include "sat/local_search.hpp"
#include "sat/solver.hpp"
#include "util/common.hpp"

namespace {

using namespace mps::sat;

TEST(Lit, PackingRoundTrips) {
  const Lit a = pos(7);
  EXPECT_EQ(a.var(), 7u);
  EXPECT_FALSE(a.negated());
  const Lit b = ~a;
  EXPECT_EQ(b.var(), 7u);
  EXPECT_TRUE(b.negated());
  EXPECT_EQ(~b, a);
  EXPECT_FALSE(Lit{}.valid());
}

TEST(Cnf, NormalizationDedupsAndDropsTautologies) {
  Cnf cnf;
  const Var x = cnf.new_var();
  const Var y = cnf.new_var();
  cnf.add_clause({pos(x), pos(x), neg(y)});
  EXPECT_EQ(cnf.num_clauses(), 1u);
  EXPECT_EQ(cnf.clause(0).size(), 2u);  // duplicate literal removed
  cnf.add_clause({pos(x), neg(x)});     // tautology: dropped
  EXPECT_EQ(cnf.num_clauses(), 1u);
}

TEST(Cnf, SatisfiedBy) {
  Cnf cnf;
  const Var x = cnf.new_var();
  const Var y = cnf.new_var();
  cnf.add_clause({pos(x), pos(y)});
  cnf.add_clause({neg(x)});
  Model m{false, true};
  EXPECT_TRUE(cnf.satisfied_by(m));
  m[1] = false;
  EXPECT_FALSE(cnf.satisfied_by(m));
}

TEST(Solver, TrivialSat) {
  Cnf cnf;
  const Var x = cnf.new_var();
  cnf.add_clause({pos(x)});
  Model m;
  EXPECT_EQ(Solver().solve(cnf, &m), Outcome::Sat);
  EXPECT_TRUE(m[x]);
}

TEST(Solver, TrivialUnsat) {
  Cnf cnf;
  const Var x = cnf.new_var();
  cnf.add_clause({pos(x)});
  cnf.add_clause({neg(x)});
  EXPECT_EQ(Solver().solve(cnf), Outcome::Unsat);
}

TEST(Solver, EmptyClauseIsUnsat) {
  Cnf cnf;
  cnf.new_var();
  cnf.add_clause(std::vector<Lit>{});
  EXPECT_EQ(Solver().solve(cnf), Outcome::Unsat);
}

TEST(Solver, EmptyFormulaIsSat) {
  Cnf cnf;
  cnf.new_vars(3);
  Model m;
  EXPECT_EQ(Solver().solve(cnf, &m), Outcome::Sat);
  EXPECT_EQ(m.size(), 3u);
}

TEST(Solver, AllFourBinaryCombinationsUnsat) {
  Cnf cnf;
  const Var x = cnf.new_var();
  const Var y = cnf.new_var();
  cnf.add_clause({pos(x), pos(y)});
  cnf.add_clause({pos(x), neg(y)});
  cnf.add_clause({neg(x), pos(y)});
  cnf.add_clause({neg(x), neg(y)});
  EXPECT_EQ(Solver().solve(cnf), Outcome::Unsat);
}

/// Pigeonhole PHP(n+1, n): classically hard for resolution-style search;
/// small instances prove the solver's completeness on structured UNSAT.
Cnf pigeonhole(int pigeons, int holes) {
  Cnf cnf;
  std::vector<std::vector<Var>> at(pigeons, std::vector<Var>(holes));
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) at[p][h] = cnf.new_var();
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(pos(at[p][h]));
    cnf.add_clause(clause);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        cnf.add_clause({neg(at[p1][h]), neg(at[p2][h])});
      }
    }
  }
  return cnf;
}

TEST(Solver, PigeonholeUnsat) {
  EXPECT_EQ(Solver().solve(pigeonhole(4, 3)), Outcome::Unsat);
  EXPECT_EQ(Solver().solve(pigeonhole(5, 4)), Outcome::Unsat);
}

TEST(Solver, PigeonholeSatWhenEnoughHoles) {
  Model m;
  const Cnf cnf = pigeonhole(4, 4);
  EXPECT_EQ(Solver().solve(cnf, &m), Outcome::Sat);
  EXPECT_TRUE(cnf.satisfied_by(m));
}

TEST(Solver, BacktrackLimitReported) {
  SolveOptions opts;
  opts.max_backtracks = 1;
  const Outcome out = Solver().solve(pigeonhole(6, 5), nullptr, nullptr, opts);
  EXPECT_EQ(out, Outcome::Limit);
}

TEST(Solver, StatsArePopulated) {
  SolveStats stats;
  Model m;
  Solver().solve(pigeonhole(4, 4), &m, &stats);
  EXPECT_GT(stats.decisions, 0);
  EXPECT_GE(stats.propagations, 0);
  EXPECT_GE(stats.seconds, 0.0);
}

/// Random 3-SAT at low clause density: almost surely satisfiable.
Cnf random_3sat(mps::util::Rng& rng, int vars, int clauses) {
  Cnf cnf;
  cnf.new_vars(vars);
  for (int c = 0; c < clauses; ++c) {
    std::vector<Lit> clause;
    for (int k = 0; k < 3; ++k) {
      clause.push_back(Lit::make(static_cast<Var>(rng.below(vars)), rng.chance(0.5)));
    }
    cnf.add_clause(clause);
  }
  return cnf;
}

TEST(Solver, RandomEasySatInstances) {
  mps::util::Rng rng(99);
  for (int i = 0; i < 20; ++i) {
    const Cnf cnf = random_3sat(rng, 30, 60);  // density 2.0: easy SAT
    Model m;
    ASSERT_EQ(Solver().solve(cnf, &m), Outcome::Sat);
    EXPECT_TRUE(cnf.satisfied_by(m));
  }
}

TEST(Solver, AgreesWithBruteForceOnSmallFormulas) {
  mps::util::Rng rng(123);
  for (int i = 0; i < 50; ++i) {
    const int vars = 6;
    const Cnf cnf = random_3sat(rng, vars, 24);  // density 4.0: mixed outcomes
    bool brute_sat = false;
    for (int x = 0; x < (1 << vars) && !brute_sat; ++x) {
      Model m(vars);
      for (int v = 0; v < vars; ++v) m[v] = (x >> v) & 1;
      brute_sat = cnf.satisfied_by(m);
    }
    Model m;
    const Outcome out = Solver().solve(cnf, &m);
    EXPECT_EQ(out, brute_sat ? Outcome::Sat : Outcome::Unsat) << "instance " << i;
  }
}

TEST(WalkSat, FindsEasySolutions) {
  mps::util::Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    const Cnf cnf = random_3sat(rng, 25, 50);
    Model m;
    if (walksat(cnf, &m)) {
      EXPECT_TRUE(cnf.satisfied_by(m));
    }
  }
}

TEST(WalkSat, SolvesForcedAssignments) {
  Cnf cnf;
  const Var x = cnf.new_var();
  const Var y = cnf.new_var();
  cnf.add_clause({pos(x)});
  cnf.add_clause({neg(x), pos(y)});
  Model m;
  LocalSearchStats stats;
  ASSERT_TRUE(walksat(cnf, &m, &stats));
  EXPECT_TRUE(m[x]);
  EXPECT_TRUE(m[y]);
  EXPECT_GE(stats.tries, 1);
}

TEST(WalkSat, GivesUpOnUnsat) {
  LocalSearchOptions opts;
  opts.max_flips = 2000;
  opts.max_tries = 2;
  EXPECT_FALSE(walksat(pigeonhole(4, 3), nullptr, nullptr, opts));
}

TEST(Dimacs, WriteParseRoundTrip) {
  Cnf cnf;
  const Var x = cnf.new_var();
  const Var y = cnf.new_var();
  const Var z = cnf.new_var();
  cnf.add_clause({pos(x), neg(y)});
  cnf.add_clause({pos(y), pos(z)});
  cnf.add_clause({neg(z)});
  const std::string text = write_dimacs(cnf, "round trip");
  const Cnf back = parse_dimacs(text);
  EXPECT_EQ(back.num_vars(), cnf.num_vars());
  EXPECT_EQ(back.num_clauses(), cnf.num_clauses());
  // Equisatisfiable with identical models.
  Model m;
  ASSERT_EQ(Solver().solve(back, &m), Outcome::Sat);
  EXPECT_TRUE(cnf.satisfied_by(m));
}

TEST(Dimacs, ParsesCommentsAndNegatives) {
  const Cnf cnf = parse_dimacs("c hello\np cnf 2 2\n1 -2 0\n-1 2 0\n");
  EXPECT_EQ(cnf.num_vars(), 2u);
  EXPECT_EQ(cnf.num_clauses(), 2u);
}

TEST(Dimacs, RejectsMalformedInput) {
  EXPECT_THROW(parse_dimacs("p cnf x y\n"), mps::util::Error);
  EXPECT_THROW(parse_dimacs("1 2 0\n"), mps::util::ParseError);       // clause before header
  EXPECT_THROW(parse_dimacs("p cnf 1 1\n5 0\n"), mps::util::ParseError);  // var out of range
}

// Regression: the truncation check compared the declared clause count
// against the declared clause count (always equal), so a truncated file —
// fewer clauses than the header promises — parsed silently.
TEST(Dimacs, RejectsFewerClausesThanDeclared) {
  try {
    parse_dimacs("p cnf 2 3\n1 2 0\n-1 0\n");
    FAIL() << "truncated DIMACS must not parse";
  } catch (const mps::util::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos) << e.what();
  }
  // A dropped tautology also trips the check; the message points at the
  // header so the producer knows to re-emit it.
  EXPECT_THROW(parse_dimacs("p cnf 2 2\n1 -1 0\n1 2 0\n"), mps::util::ParseError);
}

TEST(Dimacs, AcceptsMoreClausesThanDeclared) {
  // Some generators undercount; extra clauses are kept, not rejected.
  const Cnf cnf = parse_dimacs("p cnf 2 1\n1 2 0\n-1 2 0\n-2 0\n");
  EXPECT_EQ(cnf.num_clauses(), 3u);
}

TEST(Dimacs, RejectsBadHeaders) {
  EXPECT_THROW(parse_dimacs("p cnf 2 1\np cnf 2 1\n1 0\n"), mps::util::ParseError);  // duplicate
  EXPECT_THROW(parse_dimacs("p cnf -1 1\n"), mps::util::ParseError);  // negative var count
  EXPECT_THROW(parse_dimacs("p cnf 2 -1\n"), mps::util::ParseError);  // negative clause count
}

/// Thousands of forced not-equal pairs: (a ∨ b) ∧ (¬a ∨ ¬b).  Every
/// decision triggers a unit propagation and none ever conflicts, so the
/// search runs decision-after-decision with zero backtracks — the shape
/// that used to dodge the time-limit check entirely (it only ran every 256
/// backtracks).
Cnf propagation_heavy(int pairs) {
  Cnf cnf;
  for (int i = 0; i < pairs; ++i) {
    const Var a = cnf.new_var();
    const Var b = cnf.new_var();
    cnf.add_clause({pos(a), pos(b)});
    cnf.add_clause({neg(a), neg(b)});
  }
  return cnf;
}

TEST(Solver, TimeLimitHonoredWithoutBacktracks) {
  SolveOptions opts;
  opts.time_limit_s = 1e-3;
  SolveStats stats;
  mps::util::Timer timer;
  const Outcome out = Solver().solve(propagation_heavy(30000), nullptr, &stats, opts);
  EXPECT_EQ(out, Outcome::Limit);
  EXPECT_EQ(stats.backtracks, 0);  // the conflict-path check cannot have fired
  EXPECT_LT(timer.seconds(), 5.0);
}

TEST(Solver, PropagationHeavyInstanceIsSatWithoutLimits) {
  Model m;
  const Cnf cnf = propagation_heavy(500);
  SolveStats stats;
  ASSERT_EQ(Solver().solve(cnf, &m, &stats), Outcome::Sat);
  EXPECT_TRUE(cnf.satisfied_by(m));
  EXPECT_EQ(stats.backtracks, 0);
}

TEST(Solver, InterruptTokenStopsSearch) {
  std::atomic<bool> interrupt{true};  // pre-set: must stop at the first check
  SolveOptions opts;
  opts.interrupt = &interrupt;
  mps::util::Timer timer;
  EXPECT_EQ(Solver().solve(pigeonhole(8, 7), nullptr, nullptr, opts), Outcome::Limit);
  EXPECT_LT(timer.seconds(), 1.0);
  interrupt = false;
  EXPECT_EQ(Solver().solve(pigeonhole(4, 3), nullptr, nullptr, opts), Outcome::Unsat);
}

TEST(Solver, DeadlineStopsSearch) {
  SolveOptions opts;
  opts.deadline = std::chrono::steady_clock::now() - std::chrono::seconds(1);
  EXPECT_EQ(Solver().solve(pigeonhole(8, 7), nullptr, nullptr, opts), Outcome::Limit);
  opts.deadline = std::chrono::steady_clock::now() + std::chrono::hours(1);
  EXPECT_EQ(Solver().solve(pigeonhole(4, 3), nullptr, nullptr, opts), Outcome::Unsat);
}

TEST(Solver, BranchesFalseFirstEvenWithPositiveMajority) {
  // Regression test for the removal of the dead `polarity_` accumulator:
  // branching must stay FALSE-first regardless of literal sign balance.
  // The CSC encoding relies on this (state-signal value Zero keeps
  // excitation regions minimal), and a Jeroslow-Wang phase hint measurably
  // worsened downstream synthesis results on the Table 1 suite.  Here
  // v0..v2 appear only positively; FALSE-first decides two of them false
  // and propagation forces exactly one true (a TRUE-first hint would have
  // set all three true).
  Cnf cnf;
  const Var v0 = cnf.new_var();
  const Var v1 = cnf.new_var();
  const Var v2 = cnf.new_var();
  cnf.add_clause({pos(v0), pos(v1), pos(v2)});
  Model m;
  SolveStats stats;
  ASSERT_EQ(Solver().solve(cnf, &m, &stats), Outcome::Sat);
  EXPECT_EQ(static_cast<int>(m[v0]) + static_cast<int>(m[v1]) + static_cast<int>(m[v2]), 1);
  EXPECT_EQ(stats.backtracks, 0);
}

TEST(Solver, HeapMatchesLinearScanReference) {
  // The lazy variable-order heap must select, at every decision, the exact
  // variable the original O(#vars) linear scan selected (DESIGN.md "Hot
  // paths": both maximize the same strict total order — higher
  // score+activity first, lower var id on ties).  Identical decision
  // sequences imply identical search trees, which is what keeps the Table 1
  // quality columns reproducible.  Mixed SAT/UNSAT instances at density
  // 4.3 exercise conflicts, activity bumps, restarts and random decisions.
  mps::util::Rng rng(2024);
  for (int i = 0; i < 25; ++i) {
    const int vars = 20 + static_cast<int>(rng.below(21));
    const Cnf cnf = random_3sat(rng, vars, (vars * 43) / 10);
    std::vector<Lit> heap_log, linear_log;
    SolveOptions heap_opts, linear_opts;
    heap_opts.seed = linear_opts.seed = 7 + i;
    heap_opts.decision_log = &heap_log;
    linear_opts.decision_log = &linear_log;
    linear_opts.reference_linear_branching = true;
    Model heap_model, linear_model;
    SolveStats heap_stats, linear_stats;
    const Outcome heap_out = Solver().solve(cnf, &heap_model, &heap_stats, heap_opts);
    const Outcome linear_out = Solver().solve(cnf, &linear_model, &linear_stats, linear_opts);
    ASSERT_EQ(heap_out, linear_out) << "instance " << i;
    ASSERT_EQ(heap_log.size(), linear_log.size()) << "instance " << i;
    for (std::size_t d = 0; d < heap_log.size(); ++d) {
      ASSERT_EQ(heap_log[d].x, linear_log[d].x) << "instance " << i << " decision " << d;
    }
    EXPECT_EQ(heap_model, linear_model) << "instance " << i;
    EXPECT_EQ(heap_stats.decisions, linear_stats.decisions) << "instance " << i;
    EXPECT_EQ(heap_stats.backtracks, linear_stats.backtracks) << "instance " << i;
    EXPECT_EQ(heap_stats.propagations, linear_stats.propagations) << "instance " << i;
  }
}

TEST(Solver, DeterministicWithFixedSeed) {
  mps::util::Rng rng(7);
  const Cnf cnf = random_3sat(rng, 40, 120);
  SolveStats s1, s2;
  Model m1, m2;
  SolveOptions opts;
  opts.seed = 42;
  Solver().solve(cnf, &m1, &s1, opts);
  Solver().solve(cnf, &m2, &s2, opts);
  EXPECT_EQ(m1, m2);
  EXPECT_EQ(s1.decisions, s2.decisions);
}

// Regression (stats bugfix): SolveStats::conflicts used to be an accessor
// hard-aliasing `backtracks`.  For the DPLL engine the two counts genuinely
// coincide (one chronological backtrack per conflict) — that invariant is
// pinned here, on instances with plenty of conflicts.
TEST(Solver, DpllConflictsEqualBacktracks) {
  SolveStats stats;
  ASSERT_EQ(Solver().solve(pigeonhole(5, 4), nullptr, &stats), Outcome::Unsat);
  EXPECT_GT(stats.conflicts, 0);
  EXPECT_EQ(stats.conflicts, stats.backtracks);
  EXPECT_EQ(stats.learned, 0);  // DPLL never learns clauses
  mps::util::Rng rng(31);
  for (int i = 0; i < 10; ++i) {
    const Cnf cnf = random_3sat(rng, 25, 107);  // density 4.3: mixed outcomes
    SolveStats s;
    Solver().solve(cnf, nullptr, &s);
    EXPECT_EQ(s.conflicts, s.backtracks) << "instance " << i;
  }
}

// Regression (overflow bugfix): the DPLL geometric restart escalation used
// a bare `restart_budget *= 2`, which is UB once the budget passes
// int64 max / 2 on a long-running search.  The shared helper saturates.
TEST(Engine, SaturatingDoubleSaturatesAtInt64Max) {
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  EXPECT_EQ(saturating_double(3), 6);
  EXPECT_EQ(saturating_double(0), 0);
  EXPECT_EQ(saturating_double(kMax / 2), kMax - 1);  // largest non-saturating input
  EXPECT_EQ(saturating_double(kMax / 2 + 1), kMax);
  EXPECT_EQ(saturating_double(kMax), kMax);
}

TEST(Engine, DpllSearchSurvivesCappedRestartBudget) {
  // A restart budget near int64 max must not wrap negative (which would
  // make every conflict trigger a restart — or worse, UB).  The search
  // doubles the budget on its first restart; with the interval at
  // int64max/2 the doubled value saturates instead of overflowing.
  SolveOptions opts;
  opts.restart_interval = std::numeric_limits<std::int64_t>::max() / 2;
  EXPECT_EQ(Solver().solve(pigeonhole(4, 3), nullptr, nullptr, opts), Outcome::Unsat);
}

SolveOptions cdcl_opts() {
  SolveOptions opts;
  opts.engine = Engine::Cdcl;
  return opts;
}

TEST(Cdcl, TrivialOutcomes) {
  {
    Cnf cnf;
    const Var x = cnf.new_var();
    cnf.add_clause({pos(x)});
    Model m;
    EXPECT_EQ(Solver().solve(cnf, &m, nullptr, cdcl_opts()), Outcome::Sat);
    EXPECT_TRUE(m[x]);
    cnf.add_clause({neg(x)});
    EXPECT_EQ(Solver().solve(cnf, nullptr, nullptr, cdcl_opts()), Outcome::Unsat);
  }
  {
    Cnf cnf;
    cnf.new_var();
    cnf.add_clause(std::vector<Lit>{});
    EXPECT_EQ(Solver().solve(cnf, nullptr, nullptr, cdcl_opts()), Outcome::Unsat);
  }
  {
    Cnf cnf;
    cnf.new_vars(3);
    Model m;
    EXPECT_EQ(Solver().solve(cnf, &m, nullptr, cdcl_opts()), Outcome::Sat);
    EXPECT_EQ(m.size(), 3u);
  }
}

TEST(Cdcl, PigeonholeOutcomesAndLearning) {
  SolveStats stats;
  EXPECT_EQ(Solver().solve(pigeonhole(5, 4), nullptr, &stats, cdcl_opts()), Outcome::Unsat);
  EXPECT_GT(stats.conflicts, 0);
  EXPECT_GT(stats.learned, 0);
  // Non-chronological backjumping: a level-0 conflict ends the search with
  // no backjump, so the alias the old accessor assumed does not hold here.
  EXPECT_LT(stats.backtracks, stats.conflicts);
  Model m;
  const Cnf sat_cnf = pigeonhole(4, 4);
  ASSERT_EQ(Solver().solve(sat_cnf, &m, nullptr, cdcl_opts()), Outcome::Sat);
  EXPECT_TRUE(sat_cnf.satisfied_by(m));
}

TEST(Cdcl, AgreesWithBruteForceOnSmallFormulas) {
  mps::util::Rng rng(123);
  for (int i = 0; i < 50; ++i) {
    const int vars = 6;
    const Cnf cnf = random_3sat(rng, vars, 24);
    bool brute_sat = false;
    for (int x = 0; x < (1 << vars) && !brute_sat; ++x) {
      Model m(vars);
      for (int v = 0; v < vars; ++v) m[v] = (x >> v) & 1;
      brute_sat = cnf.satisfied_by(m);
    }
    Model m;
    const Outcome out = Solver().solve(cnf, &m, nullptr, cdcl_opts());
    EXPECT_EQ(out, brute_sat ? Outcome::Sat : Outcome::Unsat) << "instance " << i;
  }
}

TEST(Cdcl, ConflictLimitReported) {
  SolveOptions opts = cdcl_opts();
  opts.max_backtracks = 1;  // caps *conflicts* for this engine
  SolveStats stats;
  EXPECT_EQ(Solver().solve(pigeonhole(6, 5), nullptr, &stats, opts), Outcome::Limit);
  EXPECT_LE(stats.conflicts, 2);
}

TEST(Cdcl, TimeLimitHonoredWithoutConflicts) {
  SolveOptions opts = cdcl_opts();
  opts.time_limit_s = 1e-3;
  SolveStats stats;
  mps::util::Timer timer;
  const Outcome out = Solver().solve(propagation_heavy(30000), nullptr, &stats, opts);
  EXPECT_EQ(out, Outcome::Limit);
  EXPECT_EQ(stats.conflicts, 0);  // the conflict-path check cannot have fired
  EXPECT_LT(timer.seconds(), 5.0);
}

TEST(Cdcl, InterruptAndDeadlineStopSearch) {
  std::atomic<bool> interrupt{true};
  SolveOptions opts = cdcl_opts();
  opts.interrupt = &interrupt;
  EXPECT_EQ(Solver().solve(pigeonhole(8, 7), nullptr, nullptr, opts), Outcome::Limit);
  interrupt = false;
  opts.deadline = std::chrono::steady_clock::now() - std::chrono::seconds(1);
  EXPECT_EQ(Solver().solve(pigeonhole(8, 7), nullptr, nullptr, opts), Outcome::Limit);
  opts.deadline = std::chrono::steady_clock::now() + std::chrono::hours(1);
  EXPECT_EQ(Solver().solve(pigeonhole(4, 3), nullptr, nullptr, opts), Outcome::Unsat);
}

TEST(Cdcl, AggressiveRestartsKeepCompleteness) {
  // Luby restarts with a tiny base unit: the search restarts constantly but
  // keeps learned clauses, so it still terminates with the right answer.
  SolveOptions opts = cdcl_opts();
  opts.restart_interval = 2;
  SolveStats stats;
  EXPECT_EQ(Solver().solve(pigeonhole(5, 4), nullptr, &stats, opts), Outcome::Unsat);
  EXPECT_GT(stats.restarts, 0);
  Model m;
  const Cnf sat_cnf = pigeonhole(5, 5);
  ASSERT_EQ(Solver().solve(sat_cnf, &m, nullptr, opts), Outcome::Sat);
  EXPECT_TRUE(sat_cnf.satisfied_by(m));
}

TEST(Cdcl, RestartsDisabledStillComplete) {
  SolveOptions opts = cdcl_opts();
  opts.restart_interval = 0;
  SolveStats stats;
  EXPECT_EQ(Solver().solve(pigeonhole(5, 4), nullptr, &stats, opts), Outcome::Unsat);
  EXPECT_EQ(stats.restarts, 0);
}

TEST(Cdcl, ClauseDatabaseReductionUnderSustainedConflicts) {
  // PHP(8,7) is resolution-hard enough to push the stored learned-clause
  // count past the first reduction budget (max(2000, #clauses/2) = 2000),
  // exercising the LBD-based reduce + arena compaction path on a formula
  // whose answer is known.  Learned-total > 2000 implies at least one
  // reduction fired (units aside, every learned clause is stored).
  SolveStats stats;
  ASSERT_EQ(Solver().solve(pigeonhole(8, 7), nullptr, &stats, cdcl_opts()), Outcome::Unsat);
  EXPECT_GT(stats.learned, 2000);
}

TEST(Cdcl, SatModelsCarryNoGratuitousTrueAssignments) {
  // Phase saving can leave a stale saved-TRUE polarity on a variable no
  // clause needs: here deciding a=F propagates b=T, z=T and deciding p=F
  // propagates q=T into a conflict whose 1UIP unit (p) backjumps to level
  // 0, throwing q's TRUE phase into the saved-polarity store.  When q is
  // re-decided after the restart it comes back TRUE — a gratuitous
  // assignment that downstream consumers (the Lavagno insertion decode
  // drops constant columns) turn into gratuitous inserted state signals.
  // The post-Sat shrink pass must return it to FALSE.
  Cnf cnf;
  const Var a = cnf.new_var(), b = cnf.new_var(), z = cnf.new_var();
  const Var p = cnf.new_var(), q = cnf.new_var();
  cnf.add_clause({pos(a), pos(b)});
  cnf.add_clause({neg(b), pos(z)});
  cnf.add_clause({pos(p), pos(q)});
  cnf.add_clause({pos(p), neg(q)});
  SolveOptions opts = cdcl_opts();
  opts.restart_interval = 1;  // restart on the first conflict
  Model m;
  ASSERT_EQ(Solver().solve(cnf, &m, nullptr, opts), Outcome::Sat);
  EXPECT_TRUE(cnf.satisfied_by(m));
  EXPECT_TRUE(m[p]) << "p is implied at level 0";
  EXPECT_FALSE(m[q]) << "no clause needs q once p holds";
  int trues = 0;
  for (const bool v : m) trues += v ? 1 : 0;
  EXPECT_LE(trues, 3) << "model should be mostly-false like the DPLL reference";
}

TEST(Cdcl, DeterministicAcrossRuns) {
  mps::util::Rng rng(7);
  const Cnf cnf = random_3sat(rng, 40, 170);
  SolveStats s1, s2;
  Model m1, m2;
  const Outcome o1 = Solver().solve(cnf, &m1, &s1, cdcl_opts());
  const Outcome o2 = Solver().solve(cnf, &m2, &s2, cdcl_opts());
  EXPECT_EQ(o1, o2);
  EXPECT_EQ(m1, m2);
  EXPECT_EQ(s1.decisions, s2.decisions);
  EXPECT_EQ(s1.conflicts, s2.conflicts);
  EXPECT_EQ(s1.learned, s2.learned);
}

}  // namespace

// Service-layer unit tests: JSON wire format, SHA-256 digests, the
// two-tier result cache, the single-flight bounded scheduler, canonical .g
// rendering, option fingerprints, artifact round-trips, and the
// transport-independent Service protocol handler.  Socket-level behaviour
// (daemon boot, drain-on-SIGTERM, client byte-identity) is covered by
// tests/check_protocol.cmake and svc_soak_test.cpp.
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <mutex>
#include <thread>

#include <gtest/gtest.h>

#include "mps.hpp"

namespace {

using namespace mps;

// ---------------------------------------------------------------- JSON --

TEST(SvcJson, RoundTripIsByteIdentical) {
  const std::string text =
      R"({"name":"demo","count":42,"ratio":0.5,"ok":true,"missing":null,)"
      R"("list":[1,2,3],"nested":{"a":"b"}})";
  const svc::Json j = svc::Json::parse(text);
  EXPECT_EQ(j.dump(), text);
  // And a second round trip through the dumped form.
  EXPECT_EQ(svc::Json::parse(j.dump()).dump(), text);
}

TEST(SvcJson, ObjectOrderIsPreserved) {
  svc::Json j = svc::Json::object();
  j.set("zebra", 1);
  j.set("apple", 2);
  EXPECT_EQ(j.dump(), R"({"zebra":1,"apple":2})");
}

TEST(SvcJson, IntegersNeverGainDecimalPoints) {
  svc::Json j = svc::Json::object();
  j.set("n", svc::Json(std::int64_t{5}));
  j.set("d", svc::Json(5.0));
  const std::string dumped = j.dump();
  EXPECT_NE(dumped.find("\"n\":5,"), std::string::npos) << dumped;
  const svc::Json back = svc::Json::parse(dumped);
  EXPECT_EQ(back.find("n")->kind(), svc::Json::Kind::Int);
  EXPECT_EQ(back.find("d")->kind(), svc::Json::Kind::Double);
  EXPECT_EQ(back.dump(), dumped);
}

TEST(SvcJson, StringEscapes) {
  svc::Json j = svc::Json::object();
  j.set("s", std::string("line1\nline2\t\"quoted\" \\ \x01"));
  const svc::Json back = svc::Json::parse(j.dump());
  EXPECT_EQ(back.get_string("s", ""), "line1\nline2\t\"quoted\" \\ \x01");
  // \uXXXX escapes decode to UTF-8.
  EXPECT_EQ(svc::Json::parse("\"a\\u00e9b\"").as_string(),
            "a\xc3\xa9" "b");  // split: \xa9b would greedily parse as \xa9b
}

TEST(SvcJson, ParseErrors) {
  EXPECT_THROW(svc::Json::parse(""), util::ParseError);
  EXPECT_THROW(svc::Json::parse("{"), util::ParseError);
  EXPECT_THROW(svc::Json::parse("[1,]"), util::ParseError);
  EXPECT_THROW(svc::Json::parse("\"unterminated"), util::ParseError);
  EXPECT_THROW(svc::Json::parse("{} trailing"), util::ParseError);
  EXPECT_THROW(svc::Json::parse("nul"), util::ParseError);
}

TEST(SvcJson, TypedGettersFallBack) {
  const svc::Json j = svc::Json::parse(R"({"n":3,"s":"x"})");
  EXPECT_EQ(j.get_int("n", -1), 3);
  EXPECT_EQ(j.get_int("s", -1), -1);    // wrong kind
  EXPECT_EQ(j.get_int("absent", -1), -1);
  EXPECT_EQ(j.get_string("s", "d"), "x");
  EXPECT_EQ(j.get_string("n", "d"), "d");
}

// -------------------------------------------------------------- SHA-256 --

TEST(SvcDigest, FipsVectors) {
  // FIPS 180-4 / NIST test vectors.
  EXPECT_EQ(svc::sha256_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(svc::sha256_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(svc::sha256_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  EXPECT_EQ(svc::sha256_hex(std::string(1'000'000, 'a')),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(SvcDigest, IncrementalMatchesOneShot) {
  svc::Sha256 h;
  h.update("ab");
  h.update("");
  h.update("c");
  EXPECT_EQ(h.hex_digest(), svc::sha256_hex("abc"));
}

// ---------------------------------------------------------------- Cache --

std::string test_digest(char fill) { return std::string(64, fill); }

TEST(SvcCache, MemoryTierPutGet) {
  svc::Cache cache;  // memory-only
  EXPECT_FALSE(cache.get(test_digest('a')).has_value());
  cache.put(test_digest('a'), "payload-a");
  const auto hit = cache.get(test_digest('a'));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "payload-a");
  const auto s = cache.stats();
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.mem_hits, 1);
  EXPECT_EQ(s.puts, 1);
}

TEST(SvcCache, DiskTierSurvivesRestart) {
  const std::string dir = testing::TempDir() + "svc_cache_restart";
  std::filesystem::remove_all(dir);
  {
    svc::CacheOptions opts;
    opts.dir = dir;
    svc::Cache cache(opts);
    cache.put(test_digest('b'), "payload-b");
  }
  svc::CacheOptions opts;
  opts.dir = dir;
  svc::Cache cache(opts);  // fresh instance: memory tier empty
  const auto hit = cache.get(test_digest('b'));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "payload-b");
  EXPECT_EQ(cache.stats().disk_hits, 1);
  // The disk hit was promoted: a second get is a memory hit.
  EXPECT_TRUE(cache.get(test_digest('b')).has_value());
  EXPECT_EQ(cache.stats().mem_hits, 1);
}

TEST(SvcCache, CorruptEntriesAreMissesNotErrors) {
  const std::string dir = testing::TempDir() + "svc_cache_corrupt";
  std::filesystem::remove_all(dir);
  svc::CacheOptions opts;
  opts.dir = dir;
  opts.mem_entries = 0;  // force every get to the disk tier
  svc::Cache cache(opts);
  cache.put(test_digest('c'), "payload-c");
  ASSERT_TRUE(cache.get(test_digest('c')).has_value());

  // Truncate the entry mid-payload.
  const std::string path = cache.entry_path(test_digest('c'));
  ASSERT_FALSE(path.empty());
  { std::ofstream(path, std::ios::trunc) << "mps-cache "; }
  EXPECT_FALSE(cache.get(test_digest('c')).has_value());
  EXPECT_EQ(cache.stats().corrupt, 1);
  // The corrupt file was removed, so the next lookup is a clean miss.
  EXPECT_FALSE(std::filesystem::exists(path));

  // An entry whose header digest disagrees with its filename is foreign.
  cache.put(test_digest('d'), "payload-d");
  std::filesystem::copy_file(cache.entry_path(test_digest('d')),
                             cache.entry_path(test_digest('e')));
  EXPECT_FALSE(cache.get(test_digest('e')).has_value());
  EXPECT_EQ(cache.stats().corrupt, 2);
}

TEST(SvcCache, LruEvictsOldest) {
  svc::CacheOptions opts;
  opts.mem_entries = 2;
  svc::Cache cache(opts);  // memory-only, capacity 2
  cache.put(test_digest('1'), "p1");
  cache.put(test_digest('2'), "p2");
  ASSERT_TRUE(cache.get(test_digest('1')).has_value());  // 1 is now most-recent
  cache.put(test_digest('3'), "p3");                     // evicts 2
  EXPECT_TRUE(cache.get(test_digest('1')).has_value());
  EXPECT_FALSE(cache.get(test_digest('2')).has_value());
  EXPECT_TRUE(cache.get(test_digest('3')).has_value());
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(cache.stats().entries_mem, 2);
}

// ------------------------------------------------------------ Scheduler --

TEST(SvcScheduler, RunsJobsAndReportsResults) {
  svc::Scheduler sched({.num_threads = 2, .queue_cap = 8});
  auto [admit, ticket] = sched.submit("job-1", [] {
    svc::Scheduler::Result r;
    r.payload = "done";
    return r;
  });
  ASSERT_EQ(admit, svc::Scheduler::Admit::Started);
  const auto& result = ticket.wait();
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.payload, "done");
  EXPECT_EQ(sched.stats().completed, 1);
}

TEST(SvcScheduler, ThrowingWorkPoisonsTheJobNotTheWorker) {
  svc::Scheduler sched({.num_threads = 1, .queue_cap = 8});
  auto [admit, ticket] =
      sched.submit("boom", []() -> svc::Scheduler::Result { throw util::Error("kaboom"); });
  ASSERT_EQ(admit, svc::Scheduler::Admit::Started);
  EXPECT_FALSE(ticket.wait().ok());
  EXPECT_NE(ticket.wait().error.find("kaboom"), std::string::npos);
  // The worker survived: a following job still runs.
  auto [admit2, ticket2] = sched.submit("after", [] {
    return svc::Scheduler::Result{"ok", ""};
  });
  ASSERT_EQ(admit2, svc::Scheduler::Admit::Started);
  EXPECT_EQ(ticket2.wait().payload, "ok");
}

/// A latch the tests use to hold a job "running" deterministically.
struct Gate {
  std::mutex m;
  std::condition_variable cv;
  bool open = false;
  bool entered = false;
  void wait_open() {
    std::unique_lock<std::mutex> lock(m);
    entered = true;
    cv.notify_all();
    cv.wait(lock, [&] { return open; });
  }
  void wait_entered() {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return entered; });
  }
  void release() {
    std::lock_guard<std::mutex> lock(m);
    open = true;
    cv.notify_all();
  }
};

TEST(SvcScheduler, SingleFlightCollapsesIdenticalKeys) {
  svc::Scheduler sched({.num_threads = 1, .queue_cap = 8});
  Gate gate;
  std::atomic<int> runs{0};
  auto work = [&] {
    ++runs;
    gate.wait_open();
    return svc::Scheduler::Result{"shared", ""};
  };
  auto [a1, t1] = sched.submit("same-key", work);
  ASSERT_EQ(a1, svc::Scheduler::Admit::Started);
  gate.wait_entered();  // job is running now
  auto [a2, t2] = sched.submit("same-key", work);
  EXPECT_EQ(a2, svc::Scheduler::Admit::Joined);
  auto [a3, t3] = sched.submit("same-key", work);
  EXPECT_EQ(a3, svc::Scheduler::Admit::Joined);
  gate.release();
  EXPECT_EQ(t1.wait().payload, "shared");
  EXPECT_EQ(t2.wait().payload, "shared");
  EXPECT_EQ(t3.wait().payload, "shared");
  EXPECT_EQ(runs.load(), 1);  // one synthesis for three requests
  EXPECT_EQ(sched.stats().joined, 2);
  EXPECT_EQ(sched.stats().submitted, 1);
}

TEST(SvcScheduler, QueueCapRejectsImmediately) {
  svc::Scheduler sched({.num_threads = 1, .queue_cap = 1});
  Gate gate;
  auto blocker = [&] {
    gate.wait_open();
    return svc::Scheduler::Result{"a", ""};
  };
  auto [a1, t1] = sched.submit("a", blocker);
  ASSERT_EQ(a1, svc::Scheduler::Admit::Started);
  gate.wait_entered();  // worker busy; queue empty
  auto [a2, t2] = sched.submit("b", [] { return svc::Scheduler::Result{"b", ""}; });
  ASSERT_EQ(a2, svc::Scheduler::Admit::Started);  // fills the queue (cap 1)
  auto [a3, t3] = sched.submit("c", [] { return svc::Scheduler::Result{"c", ""}; });
  EXPECT_EQ(a3, svc::Scheduler::Admit::Overloaded);
  EXPECT_FALSE(t3.valid());
  EXPECT_EQ(sched.stats().rejected, 1);
  gate.release();
  EXPECT_EQ(t1.wait().payload, "a");
  EXPECT_EQ(t2.wait().payload, "b");
}

TEST(SvcScheduler, DrainCompletesAdmittedThenRejects) {
  svc::Scheduler sched({.num_threads = 1, .queue_cap = 8});
  Gate gate;
  auto [a1, t1] = sched.submit("slow", [&] {
    gate.wait_open();
    return svc::Scheduler::Result{"finished", ""};
  });
  ASSERT_EQ(a1, svc::Scheduler::Admit::Started);
  auto [a2, t2] = sched.submit("queued", [] { return svc::Scheduler::Result{"also", ""}; });
  ASSERT_EQ(a2, svc::Scheduler::Admit::Started);
  gate.wait_entered();

  std::thread release_later([&] { gate.release(); });
  sched.drain();  // must complete both admitted jobs before returning
  release_later.join();
  EXPECT_EQ(t1.wait().payload, "finished");
  EXPECT_EQ(t2.wait().payload, "also");
  auto [a3, t3] = sched.submit("late", [] { return svc::Scheduler::Result{"no", ""}; });
  EXPECT_EQ(a3, svc::Scheduler::Admit::Overloaded);  // draining ⇒ no admission
}

// ----------------------------------------------- canonical .g rendering --

TEST(SvcCanonicalG, InvariantUnderInputReordering) {
  // The same net written with its graph lines (and per-line targets) in a
  // different order must canonicalize identically.
  const char* variant_a =
      ".model perm\n.inputs a\n.outputs b\n.graph\n"
      "a+ b+\nb+ a-\na- b-\nb- a+\n.marking { <b-,a+> }\n.end\n";
  const char* variant_b =
      ".model perm\n.inputs a\n.outputs b\n.graph\n"
      "b- a+\na- b-\nb+ a-\na+ b+\n.marking { <b-,a+> }\n.end\n";
  const auto ca = stg::write_g_canonical(stg::parse_g(variant_a));
  const auto cb = stg::write_g_canonical(stg::parse_g(variant_b));
  EXPECT_EQ(ca, cb);
  // Canonical text is still valid .g and a fixed point of canonicalization.
  EXPECT_EQ(stg::write_g_canonical(stg::parse_g(ca)), ca);
}

TEST(SvcCanonicalG, SignalOrderIsPreserved) {
  // Signal declaration order is semantic (it fixes signal ids and the cube
  // variable order), so canonicalization must NOT sort it away.
  const char* spec =
      ".model order\n.inputs z a\n.outputs m\n.graph\n"
      "z+ a+\na+ m+\nm+ z-\nz- a-\na- m-\nm- z+\n.marking { <m-,z+> }\n.end\n";
  const auto canon = stg::write_g_canonical(stg::parse_g(spec));
  EXPECT_NE(canon.find(".inputs z a"), std::string::npos) << canon;
}

// ----------------------------------------------------------- fingerprints --

TEST(SvcFingerprint, ThreadsAreExcludedResultAffectingFieldsIncluded) {
  svc::RequestOptions base = svc::default_request_options("modular");

  svc::RequestOptions threads8 = base;
  threads8.threads = 8;
  EXPECT_EQ(svc::request_fingerprint(base), svc::request_fingerprint(threads8))
      << "num_threads must not change the cache key (results are bit-identical)";

  svc::RequestOptions deadline = base;
  deadline.deadline_s = 5.0;
  EXPECT_NE(svc::request_fingerprint(base), svc::request_fingerprint(deadline));

  svc::RequestOptions seed = base;
  seed.modular.sat.solve.seed += 1;
  EXPECT_NE(svc::request_fingerprint(base), svc::request_fingerprint(seed));

  EXPECT_NE(svc::request_fingerprint(svc::default_request_options("direct")),
            svc::request_fingerprint(svc::default_request_options("lavagno")));
}

TEST(SvcFingerprint, EngineSelectorChangesEveryMethodsFingerprint) {
  // A cached DPLL artifact must never satisfy a CDCL request (and vice
  // versa): the engines explore different search paths, so solver-effort
  // fields and LIMIT outcomes differ even when the circuit agrees.
  for (const char* method : {"modular", "direct", "lavagno"}) {
    const svc::RequestOptions dpll = svc::default_request_options(method);
    svc::RequestOptions cdcl = dpll;
    svc::set_engine(&cdcl, sat::Engine::Cdcl);
    EXPECT_NE(svc::request_fingerprint(dpll), svc::request_fingerprint(cdcl))
        << method << ": engine must be part of the cache key";
  }
}

TEST(SvcFingerprint, DigestBindsSpecAndOptions) {
  const stg::Stg spec_a = stg::parse_g(
      ".model a\n.inputs x\n.outputs y\n.graph\nx+ y+\ny+ x-\nx- y-\ny- x+\n"
      ".marking { <y-,x+> }\n.end\n");
  const auto opts = svc::default_request_options("modular");
  const std::string d1 = svc::request_digest(spec_a, opts);
  EXPECT_EQ(d1.size(), 64u);
  EXPECT_EQ(d1, svc::request_digest(spec_a, opts)) << "digest must be deterministic";

  auto direct = svc::default_request_options("direct");
  EXPECT_NE(d1, svc::request_digest(spec_a, direct));

  auto cdcl = opts;
  svc::set_engine(&cdcl, sat::Engine::Cdcl);
  EXPECT_NE(d1, svc::request_digest(spec_a, cdcl))
      << "same spec, different engine must hash to a different cache entry";
}

// ------------------------------------------------------------- Artifact --

svc::Artifact sample_artifact() {
  svc::Artifact a;
  a.name = "sample";
  a.method = "modular";
  a.success = true;
  a.initial_states = 18;
  a.initial_signals = 4;
  a.final_states = 28;
  a.final_signals = 5;
  a.literals = 21;
  a.signal_names = {"req", "ack", "d", "q", "csc0"};
  a.inserted_signals = {"csc0"};
  a.covers = {{"ack", {"10-1-", "01--0"}}, {"d", {"--1-1"}}};
  a.verilog = "module sample;\nendmodule\n";
  a.gates = 3;
  a.transistors = 14;
  a.verify_ok = true;
  a.solver.decisions = 100;
  a.solver.propagations = 2000;
  a.solver.conflicts = 7;
  a.solver.restarts = 3;
  a.solver.learned = 42;
  a.seconds = 0.125;
  return a;
}

TEST(SvcArtifact, SerializeDeserializeRoundTrip) {
  const svc::Artifact a = sample_artifact();
  const std::string wire = a.serialize();
  const auto back = svc::Artifact::deserialize(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->serialize(), wire) << "round trip must be byte-identical";
  EXPECT_EQ(back->name, "sample");
  EXPECT_EQ(back->covers, a.covers);
  EXPECT_EQ(back->signal_names, a.signal_names);
  EXPECT_EQ(back->solver.propagations, 2000);
  EXPECT_EQ(back->solver.restarts, 3);
  EXPECT_EQ(back->solver.learned, 42);
  EXPECT_DOUBLE_EQ(back->seconds, 0.125);
}

TEST(SvcArtifact, VersionMismatchAndGarbageAreRejected) {
  EXPECT_FALSE(svc::Artifact::deserialize("not json").has_value());
  EXPECT_FALSE(svc::Artifact::deserialize("{}").has_value());
  svc::Json j = sample_artifact().to_json();
  j.members();  // ensure object
  std::string wire = j.dump();
  const std::string needle = "\"artifact_version\":" + std::to_string(svc::Artifact::kVersion);
  const auto pos = wire.find(needle);
  ASSERT_NE(pos, std::string::npos);
  wire.replace(pos, needle.size(), "\"artifact_version\":999");
  EXPECT_FALSE(svc::Artifact::deserialize(wire).has_value());
}

TEST(SvcArtifact, RebuildCoversMatchesCubeStrings) {
  const svc::Artifact a = sample_artifact();
  const auto covers = a.rebuild_covers();
  ASSERT_EQ(covers.size(), 2u);
  EXPECT_EQ(covers[0].first, "ack");
  ASSERT_EQ(covers[0].second.size(), 2u);
  EXPECT_EQ(covers[0].second.cubes()[0].to_string(), "10-1-");
  EXPECT_EQ(covers[1].second.cubes()[0].to_string(), "--1-1");
}

// ----------------------------------------------------------- run_synthesis --

stg::Stg tiny_spec() {
  return stg::Builder("tinyio")
      .inputs({"req"})
      .outputs({"ack"})
      .path("req+", "ack+", "req-", "ack-")
      .arc("ack-", "req+")
      .token("ack-", "req+")
      .build();
}

TEST(SvcRunSynthesis, ProducesAVerifiedArtifact) {
  const svc::Artifact a = svc::run_synthesis(tiny_spec(), svc::default_request_options("modular"));
  EXPECT_TRUE(a.success) << a.failure_reason;
  EXPECT_TRUE(a.verify_ok);
  EXPECT_EQ(a.name, "tinyio");
  EXPECT_EQ(a.signal_names.size(), a.final_signals);
  EXPECT_FALSE(a.covers.empty());
  // Serialized form survives the cache round trip bit-exactly.
  const auto back = svc::Artifact::deserialize(a.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->serialize(), a.serialize());
}

TEST(SvcRunSynthesis, ExpiredDeadlineFailsFast) {
  auto opts = svc::default_request_options("modular");
  opts.deadline_s = 1e-9;  // expires before the first round starts
  const svc::Artifact a = svc::run_synthesis(tiny_spec(), opts);
  EXPECT_FALSE(a.success);
  EXPECT_NE(a.failure_reason.find("deadline"), std::string::npos) << a.failure_reason;
}

// -------------------------------------------------------------- Service --

svc::ServiceOptions fast_service_options() {
  svc::ServiceOptions opts;
  opts.sched.num_threads = 2;
  opts.sched.queue_cap = 8;
  return opts;
}

TEST(SvcService, PingStatsAndUnknownOps) {
  svc::Service service(fast_service_options());
  EXPECT_EQ(service.handle_line(R"({"op":"ping"})"), R"({"ok":true,"op":"ping"})");

  const svc::Json stats = svc::Json::parse(service.handle_line(R"({"op":"stats"})"));
  EXPECT_TRUE(stats.get_bool("ok", false));
  ASSERT_NE(stats.find("scheduler"), nullptr);
  EXPECT_EQ(stats.find("scheduler")->get_int("queue_cap", -1), 8);

  const svc::Json bad = svc::Json::parse(service.handle_line(R"({"op":"frobnicate"})"));
  EXPECT_FALSE(bad.get_bool("ok", true));
  EXPECT_EQ(bad.get_string("kind", ""), "bad_request");

  const svc::Json garbage = svc::Json::parse(service.handle_line("][ not json"));
  EXPECT_FALSE(garbage.get_bool("ok", true));
  EXPECT_EQ(garbage.get_string("kind", ""), "bad_request");
}

TEST(SvcService, SynthRunsCachesAndReportsParseErrors) {
  svc::Service service(fast_service_options());
  const std::string g_text = stg::write_g(tiny_spec());

  svc::Json req = svc::Json::object();
  req.set("op", "synth");
  req.set("g", g_text);
  req.set("method", "modular");
  const svc::Json r1 = svc::Json::parse(service.handle_line(req.dump()));
  ASSERT_TRUE(r1.get_bool("ok", false)) << r1.dump();
  EXPECT_FALSE(r1.get_bool("cached", true));
  ASSERT_NE(r1.find("artifact"), nullptr);
  EXPECT_TRUE(r1.find("artifact")->get_bool("success", false));

  // Identical request: a cache hit with a byte-identical artifact.
  const svc::Json r2 = svc::Json::parse(service.handle_line(req.dump()));
  EXPECT_TRUE(r2.get_bool("cached", false));
  EXPECT_EQ(r1.find("artifact")->dump(), r2.find("artifact")->dump());
  EXPECT_EQ(r1.get_string("digest", "1"), r2.get_string("digest", "2"));

  // Malformed .g text is a protocol-level parse error, not a crash.
  svc::Json bad = svc::Json::object();
  bad.set("op", "synth");
  bad.set("g", ".model broken\n.inputs a\n.graph\nnonsense\n");
  const svc::Json r3 = svc::Json::parse(service.handle_line(bad.dump()));
  EXPECT_FALSE(r3.get_bool("ok", true));
  EXPECT_EQ(r3.get_string("kind", ""), "parse");

  // Missing 'g' and unknown method are bad requests.
  const svc::Json r4 = svc::Json::parse(service.handle_line(R"({"op":"synth"})"));
  EXPECT_EQ(r4.get_string("kind", ""), "bad_request");
  const svc::Json r5 = svc::Json::parse(
      service.handle_line(R"({"op":"synth","g":"x","method":"quantum"})"));
  EXPECT_EQ(r5.get_string("kind", ""), "bad_request");
}

TEST(SvcService, SynthCarriesTheEngineSelector) {
  svc::Service service(fast_service_options());
  const std::string g_text = stg::write_g(tiny_spec());

  auto synth = [&](const char* engine) {
    svc::Json req = svc::Json::object();
    req.set("op", "synth");
    req.set("g", g_text);
    req.set("method", "modular");
    if (engine != nullptr) req.set("engine", engine);
    return svc::Json::parse(service.handle_line(req.dump()));
  };

  // Both engines synthesize the spec; their cache digests must differ, and
  // the quality columns must agree (the engines disagree only on effort).
  const svc::Json dpll = synth("dpll");
  const svc::Json cdcl = synth("cdcl");
  ASSERT_TRUE(dpll.get_bool("ok", false)) << dpll.dump();
  ASSERT_TRUE(cdcl.get_bool("ok", false)) << cdcl.dump();
  EXPECT_NE(dpll.get_string("digest", "x"), cdcl.get_string("digest", "x"));
  const svc::Json* da = dpll.find("artifact");
  const svc::Json* ca = cdcl.find("artifact");
  ASSERT_NE(da, nullptr);
  ASSERT_NE(ca, nullptr);
  EXPECT_EQ(da->get_int("literals", -1), ca->get_int("literals", -2));
  EXPECT_EQ(da->get_int("final_states", -1), ca->get_int("final_states", -2));

  // Omitted engine defaults to dpll: same digest, now a cache hit.
  const svc::Json dflt = synth(nullptr);
  ASSERT_TRUE(dflt.get_bool("ok", false)) << dflt.dump();
  EXPECT_EQ(dflt.get_string("digest", "x"), dpll.get_string("digest", "y"));
  EXPECT_TRUE(dflt.get_bool("cached", false));

  // An unknown engine is a bad request, not a silent default.
  const svc::Json bad = synth("quantum");
  EXPECT_FALSE(bad.get_bool("ok", true));
  EXPECT_EQ(bad.get_string("kind", ""), "bad_request");
  EXPECT_NE(bad.get_string("error", "").find("engine"), std::string::npos) << bad.dump();
}

TEST(SvcService, DrainOpSetsTheFlag) {
  svc::Service service(fast_service_options());
  EXPECT_FALSE(service.drain_requested());
  const svc::Json r = svc::Json::parse(service.handle_line(R"({"op":"drain"})"));
  EXPECT_TRUE(r.get_bool("ok", false));
  EXPECT_TRUE(service.drain_requested());
  service.drain();
}

// ------------------------------------------------------------ util::parse --

TEST(SvcParseInt, AcceptsWholeDecimalIntegersOnly) {
  EXPECT_EQ(util::parse_int("42", 0, 100), 42);
  EXPECT_EQ(util::parse_int("-7", -10, 10), -7);
  EXPECT_FALSE(util::parse_int("", 0, 100).has_value());
  EXPECT_FALSE(util::parse_int("12abc", 0, 100).has_value());
  EXPECT_FALSE(util::parse_int("abc", 0, 100).has_value());
  EXPECT_FALSE(util::parse_int(" 5", 0, 100).has_value());  // no whitespace skipping
  EXPECT_FALSE(util::parse_int("4.2", 0, 100).has_value());
  EXPECT_FALSE(util::parse_int("101", 0, 100).has_value());  // above max
  EXPECT_FALSE(util::parse_int("-1", 0, 100).has_value());   // below min
  // Overflow never wraps.
  EXPECT_FALSE(util::parse_int("99999999999999999999999", 0,
                               std::numeric_limits<std::int64_t>::max())
                   .has_value());
  EXPECT_EQ(util::parse_int("-9223372036854775808",
                            std::numeric_limits<std::int64_t>::min(), 0),
            std::numeric_limits<std::int64_t>::min());
}

}  // namespace

// The acceptance gate of the netlist backend: on every Table-1 benchmark
// the modular method's complex-gate netlist conforms to its final state
// graph and is hazard-free under unbounded gate delays, and the emitted
// Verilog round-trips through the reader byte-identically.  Runs all 23
// modular syntheses, so it lives in the `slow` suite.
#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "core/synthesis.hpp"
#include "netlist/build.hpp"
#include "netlist/verilog.hpp"
#include "netlist/verify_si.hpp"
#include "sg/state_graph.hpp"

namespace {

using namespace mps;

TEST(NetlistTable1, ModularNetlistsVerifyAndRoundTripOnAllBenchmarks) {
  for (const auto& b : benchmarks::table1_benchmarks()) {
    core::SynthesisOptions opts;
    opts.num_threads = 1;
    const auto r = core::modular_synthesis(sg::StateGraph::from_stg(b.make()), opts);
    ASSERT_TRUE(r.success) << b.name << ": " << r.failure_reason;

    const auto n = netlist::build_netlist(r.final_graph, r.covers);
    EXPECT_GT(n.num_gates(), 0u) << b.name;

    const auto si = netlist::verify_speed_independence(n, r.final_graph);
    EXPECT_TRUE(si.ok()) << b.name << ": "
                         << (si.issues.empty() ? "(no issue)" : si.issues.front());

    const std::string text = netlist::write_verilog(n);
    EXPECT_EQ(netlist::write_verilog(netlist::parse_verilog(text)), text) << b.name;
  }
}

}  // namespace

# End-to-end protocol check for the mps_serve daemon (expects -DSERVE,
# -DCLIENT, -DSYNTH pointing at the three binaries and -DOUT_DIR).
#
# Drives the full service lifecycle twice:
#   1. boot -> ping -> synth two benchmarks via mps_client -> byte-compare
#      every Verilog/PLA artifact against a local mps_synth run of the same
#      .g files -> warm-cache synth -> stats sanity -> in-band drain, and
#      assert the daemon exits 0;
#   2. boot again -> ping -> SIGTERM, and assert the graceful-drain exit 0.
# The client's stdout must equal mps_synth's up to the timing field (the
# daemon reports the cold run's seconds; everything else is identical).
set(work ${OUT_DIR}/protocol_check)
file(REMOVE_RECURSE ${work})
file(MAKE_DIRECTORY ${work})

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env SERVE=${SERVE} CLIENT=${CLIENT} SYNTH=${SYNTH}
          sh -e -c [=[
SOCK=./d.sock
# Per-benchmark artifact dirs: the two specs may share signal names, so
# their PLA files must not land in one directory.
mkdir -p ref/alloc ref/atod got/alloc got/atod

# Reference: plain mps_synth runs on materialized .g specs.
"$SYNTH" --bench alloc-outbound --dump-g alloc.g --quiet > /dev/null
"$SYNTH" --bench atod --dump-g atod.g --quiet > /dev/null
"$SYNTH" alloc.g --out-verilog ref/alloc.v --out-pla ref/alloc/ > ref_alloc.out
"$SYNTH" atod.g  --out-verilog ref/atod.v  --out-pla ref/atod/  > ref_atod.out

"$SERVE" --socket $SOCK --cache-dir cache --threads 2 --queue-cap 8 > serve.log 2>&1 &
SERVE_PID=$!
for i in $(seq 1 100); do [ -S $SOCK ] && break; sleep 0.1; done
[ -S $SOCK ] || { echo "daemon socket never appeared"; cat serve.log; exit 1; }

"$CLIENT" --socket $SOCK ping | grep -q '"ok":true'

"$CLIENT" --socket $SOCK synth alloc.g --out-verilog got/alloc.v --out-pla got/alloc/ > got_alloc.out
"$CLIENT" --socket $SOCK synth atod.g  --out-verilog got/atod.v  --out-pla got/atod/  > got_atod.out

# Primary outputs must be byte-identical to the local runs.
diff -r ref got

# Stdout identity up to the timing field ("0.098s," -> "T,"); the 'wrote'
# lines name different paths by construction, so drop them.
norm() { sed -E 's/[0-9]+\.[0-9]+s,/T,/' "$1" | grep -v '^wrote '; }
norm ref_alloc.out > ref_alloc.norm; norm got_alloc.out > got_alloc.norm
norm ref_atod.out  > ref_atod.norm;  norm got_atod.out  > got_atod.norm
diff ref_alloc.norm got_alloc.norm
diff ref_atod.norm  got_atod.norm

# Warm path: repeating a synth is served from the cache.
"$CLIENT" --socket $SOCK synth alloc.g > warm.out
grep -q 'ok,' warm.out
"$CLIENT" --socket $SOCK stats > stats.json
grep -q '"misses":2' stats.json
grep -q '"mem_hits":1' stats.json

# In-band drain: answered, then a clean exit 0.
"$CLIENT" --socket $SOCK drain | grep -q '"ok":true'
wait $SERVE_PID
grep -q 'drained, exiting' serve.log

# Round 2: SIGTERM must drain gracefully (exit 0, not killed).
"$SERVE" --socket $SOCK --cache-dir cache > serve2.log 2>&1 &
PID2=$!
for i in $(seq 1 100); do [ -S $SOCK ] && break; sleep 0.1; done
"$CLIENT" --socket $SOCK ping > /dev/null
kill -TERM $PID2
wait $PID2
grep -q 'drained, exiting' serve2.log
echo PROTOCOL_OK
]=]
  WORKING_DIRECTORY ${work}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

if(NOT rc EQUAL 0)
  message(FATAL_ERROR "protocol check failed (rc=${rc}).\nstdout: ${out}\nstderr: ${err}")
endif()
if(NOT out MATCHES "PROTOCOL_OK")
  message(FATAL_ERROR "protocol check did not complete.\nstdout: ${out}\nstderr: ${err}")
endif()

# End-to-end multi-node check: mps_frontdoor routing over TCP to two
# mps_serve workers (expects -DSERVE, -DCLIENT, -DSYNTH, -DFRONTDOOR,
# -DOUT_DIR, and -DMODE=SMOKE|SOAK).
#
# Port-collision safety: every process binds 127.0.0.1:0 and the script
# parses the kernel-assigned port back out of its "listening on" line, so
# any number of these checks can run under `ctest -j` concurrently.
#
# SMOKE: boot 2 workers + front door, ping, round-trip one benchmark
#   through the front door and byte-compare the Verilog against a local
#   mps_synth run, check the routing stats, drain everything cleanly.
# SOAK: reference 3 benchmarks locally, fire 8 concurrent clients (each
#   synthesizing all 3, two rounds) through the front door, kill -9 one
#   worker mid-soak, and require every single output byte-identical to the
#   local runs anyway; then report the front door's latency percentiles and
#   drain.  SIGTERM to the front door must drain gracefully (exit 0).
if(NOT MODE MATCHES "^(SMOKE|SOAK)$")
  message(FATAL_ERROR "check_frontdoor.cmake needs -DMODE=SMOKE or -DMODE=SOAK")
endif()
string(TOLOWER ${MODE} mode_dir)
set(work ${OUT_DIR}/frontdoor_${mode_dir})
file(REMOVE_RECURSE ${work})
file(MAKE_DIRECTORY ${work})

set(common_sh [=[
# Parse the kernel-assigned port out of a daemon's "listening on" line.
port_of() { sed -n 's/.*listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' "$1" | head -n 1; }
wait_port() {
  for i in $(seq 1 100); do
    P=$(port_of "$1"); [ -n "$P" ] && return 0
    sleep 0.1
  done
  echo "no listening line in $1:"; cat "$1"; return 1
}

"$SERVE" --listen 127.0.0.1:0 --cache-dir cache1 --threads 2 --queue-cap 32 > w1.log 2>&1 &
W1=$!
"$SERVE" --listen 127.0.0.1:0 --cache-dir cache2 --threads 2 --queue-cap 32 > w2.log 2>&1 &
W2=$!
wait_port w1.log; wait_port w2.log
P1=$(port_of w1.log); P2=$(port_of w2.log)

"$FRONTDOOR" --listen 127.0.0.1:0 --worker 127.0.0.1:$P1 --worker 127.0.0.1:$P2 > fd.log 2>&1 &
FD=$!
wait_port fd.log
FP=$(port_of fd.log)
DOOR="127.0.0.1:$FP"

"$CLIENT" --connect $DOOR --timeout-s 60 ping | grep -q '"ok":true'
]=])

if(MODE STREQUAL "SMOKE")
  set(mode_sh [=[
# One benchmark through the fleet, byte-compared against a local run.
"$SYNTH" --bench alloc-outbound --dump-g alloc.g --quiet > /dev/null
"$SYNTH" alloc.g --out-verilog ref.v > /dev/null
"$CLIENT" --connect $DOOR synth alloc.g --out-verilog got.v > /dev/null
diff ref.v got.v

# The front door must have routed it to the digest's shard owner.
"$CLIENT" --connect $DOOR stats > stats.json
grep -q '"synth_relayed":1' stats.json
grep -q '"shard_hits":1' stats.json
grep -q '"failovers":0' stats.json

# In-band drain of the front door (workers keep running), then SIGTERM the
# workers: all three must exit 0 with their "drained" line.
"$CLIENT" --connect $DOOR drain | grep -q '"ok":true'
wait $FD
grep -q 'drained, exiting' fd.log
kill -TERM $W1 $W2
wait $W1; wait $W2
grep -q 'drained, exiting' w1.log
grep -q 'drained, exiting' w2.log
echo FRONTDOOR_OK
]=])
else()
  set(mode_sh [=[
# References: local mps_synth artifacts for three distinct benchmarks.
mkdir -p out
for b in alloc-outbound atod mr1; do
  "$SYNTH" --bench $b --dump-g $b.g --quiet > /dev/null
  "$SYNTH" $b.g --out-verilog ref_$b.v > /dev/null
done

# 8 concurrent clients x 3 benchmarks x 2 rounds = 48 requests through the
# front door.  Round 2 is the warm path (fleet-wide cache).
for c in 1 2 3 4 5 6 7 8; do
  (
    for round in 1 2; do
      for b in alloc-outbound atod mr1; do
        "$CLIENT" --connect $DOOR --timeout-s 300 synth $b.g \
          --out-verilog out/c${c}_r${round}_$b.v > /dev/null || exit 1
      done
    done
  ) &
  eval "C$c=$!"
done

# Kill one worker mid-soak (-9: no drain, mid-request EOF for its peers).
# The front door must fail its shards over to the survivor; every client
# still gets byte-identical artifacts.
sleep 0.5
kill -9 $W2
wait $W2 || true

rc=0
for c in 1 2 3 4 5 6 7 8; do
  eval "wait \$C$c" || rc=1
done
[ $rc -eq 0 ] || { echo "a soak client failed"; cat fd.log; exit 1; }

for c in 1 2 3 4 5 6 7 8; do
  for round in 1 2; do
    for b in alloc-outbound atod mr1; do
      diff ref_$b.v out/c${c}_r${round}_$b.v || exit 1
    done
  done
done

# Tail latency through the fleet (EXPERIMENTS.md quotes these).
"$CLIENT" --connect $DOOR stats > stats.json
grep -q '"synth_relayed":48' stats.json
echo "frontdoor latency: $(sed -n 's/.*"latency":{\([^}]*\)}.*/\1/p' stats.json)"
echo "frontdoor stats: $(sed -n 's/.*\("failovers":[0-9]*\).*/\1/p' stats.json) $(sed -n 's/.*\("shard_fallbacks":[0-9]*\).*/\1/p' stats.json)"

# SIGTERM drain of front door and surviving worker: both exit 0.
kill -TERM $FD
wait $FD
grep -q 'drained, exiting' fd.log
kill -TERM $W1
wait $W1
grep -q 'drained, exiting' w1.log
echo FRONTDOOR_OK
]=])
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env SERVE=${SERVE} CLIENT=${CLIENT} SYNTH=${SYNTH}
          FRONTDOOR=${FRONTDOOR} sh -e -c "${common_sh}${mode_sh}"
  WORKING_DIRECTORY ${work}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

message(STATUS "frontdoor ${MODE} output:\n${out}")
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "frontdoor ${MODE} check failed (rc=${rc}).\nstdout: ${out}\nstderr: ${err}")
endif()
if(NOT out MATCHES "FRONTDOOR_OK")
  message(FATAL_ERROR "frontdoor ${MODE} check did not complete.\nstdout: ${out}\nstderr: ${err}")
endif()

# Run ${CMD} ${ARGS} (ARGS is ;-separated) and assert that it (a) exits
# nonzero and (b) prints a diagnostic matching ${PATTERN} on stderr.
# ctest's WILL_FAIL checks only the exit code and PASS_REGULAR_EXPRESSION
# overrides it, so error-path tests need both checks scripted.
execute_process(
  COMMAND ${CMD} ${ARGS}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "${CMD} ${ARGS}: expected a nonzero exit code, got 0")
endif()
if(NOT err MATCHES "${PATTERN}")
  message(FATAL_ERROR "${CMD} ${ARGS}: stderr does not match '${PATTERN}'.\n"
                      "stderr: ${err}\nstdout: ${out}")
endif()

// Pins the Table 1 quality columns (final states, final signals, area in
// literals, LIMIT outcomes) to the values of the reference run recorded in
// BENCH_table1.json.  The hot-path optimizations (clause arena, blocker
// literals, variable-order heap, single-pass code inference, packed CSC
// signatures — DESIGN.md "Hot paths") are all behavior-preserving by
// construction; this test is the executable form of that claim, in the
// spirit of Synthesis.ParallelMatchesSerialOnBenchmarkSuite.
//
// The modular method is pinned on all 23 benchmarks.  The direct
// (Vanbekbergen) and monolithic (Lavagno-style) baselines are pinned on the
// sub-second rows only: the large rows run minutes into their solver limits
// and belong to bench/table1, not the unit suite.  Seconds are never
// asserted — only search-path-determined quantities.
#include <gtest/gtest.h>

#include "baseline/lavagno.hpp"
#include "baseline/vanbekbergen.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/synthesis.hpp"
#include "sg/state_graph.hpp"

namespace {

using namespace mps;

struct ModularPin {
  const char* name;
  std::size_t init_states, init_signals;
  std::size_t states, signals, literals;
};

// Quality columns of `bench/table1 --threads 1` (same values as the
// committed BENCH_table1.json), in table order.
constexpr ModularPin kModularPins[] = {
    {"mr0", 304, 11, 1094, 17, 88},
    {"mr1", 194, 8, 554, 13, 42},
    {"mmu0", 180, 8, 554, 13, 35},
    {"mmu1", 80, 8, 170, 11, 20},
    {"sbuf-ram-write", 52, 10, 105, 14, 42},
    {"vbe4a", 58, 6, 157, 10, 56},
    {"nak-pa", 58, 9, 143, 15, 60},
    {"pe-rcv-ifc-fc", 35, 8, 85, 13, 52},
    {"ram-read-sbuf", 38, 10, 87, 14, 38},
    {"alex-nonfc", 20, 6, 56, 8, 20},
    {"sbuf-send-pkt2", 22, 6, 64, 10, 29},
    {"sbuf-send-ctl", 20, 6, 40, 9, 19},
    {"atod", 20, 6, 38, 8, 13},
    {"pa", 18, 4, 38, 7, 28},
    {"alloc-outbound", 18, 7, 28, 9, 21},
    {"wrdata", 18, 4, 38, 7, 26},
    {"fifo", 18, 4, 43, 8, 28},
    {"sbuf-read-ctl", 16, 6, 23, 7, 12},
    {"nouse", 10, 3, 20, 5, 10},
    {"vbe-ex2", 8, 2, 12, 3, 7},
    {"nousc-ser", 8, 3, 10, 4, 12},
    {"sendr-done", 8, 3, 16, 5, 16},
    {"vbe-ex1", 4, 2, 6, 3, 7},
};

TEST(Table1Pin, ModularQualityColumnsArePinned) {
  for (const ModularPin& pin : kModularPins) {
    const auto* b = benchmarks::find_benchmark(pin.name);
    ASSERT_NE(b, nullptr) << pin.name;
    const auto g = sg::StateGraph::from_stg(b->make());
    EXPECT_EQ(g.num_states(), pin.init_states) << pin.name;
    EXPECT_EQ(g.num_signals(), pin.init_signals) << pin.name;

    core::SynthesisOptions opts;
    opts.num_threads = 1;  // same per-row configuration as bench/table1
    const auto m = core::modular_synthesis(g, opts);
    ASSERT_TRUE(m.success) << pin.name;
    EXPECT_EQ(m.final_states, pin.states) << pin.name;
    EXPECT_EQ(m.final_signals, pin.signals) << pin.name;
    EXPECT_EQ(m.total_literals, pin.literals) << pin.name;
  }
}

struct BaselinePin {
  const char* name;
  // direct (Vanbekbergen): final states/signals/literals
  std::size_t v_states, v_signals, v_literals;
  // monolithic (Lavagno-style): final signals/literals
  std::size_t l_signals, l_literals;
};

constexpr BaselinePin kBaselinePins[] = {
    {"mmu1", 156, 11, 29, 11, 23},
    {"sbuf-ram-write", 96, 13, 69, 13, 86},
    {"atod", 32, 8, 19, 8, 31},
    {"pa", 38, 7, 28, 7, 27},
    {"alloc-outbound", 22, 9, 23, 9, 23},
    {"wrdata", 38, 7, 26, 7, 31},
    {"fifo", 31, 7, 25, 8, 66},
    {"sbuf-read-ctl", 18, 7, 16, 7, 14},
    {"nouse", 20, 5, 10, 5, 10},
    {"vbe-ex2", 12, 3, 7, 3, 7},
    {"nousc-ser", 10, 4, 12, 7, 39},
    {"sendr-done", 13, 5, 11, 5, 18},
    {"vbe-ex1", 6, 3, 7, 3, 7},
};

TEST(Table1Pin, BaselineQualityColumnsArePinnedOnFastRows) {
  for (const BaselinePin& pin : kBaselinePins) {
    const auto* b = benchmarks::find_benchmark(pin.name);
    ASSERT_NE(b, nullptr) << pin.name;
    const auto g = sg::StateGraph::from_stg(b->make());

    baseline::DirectOptions vopts;  // bench/table1's configuration
    vopts.solve.max_backtracks = 5000000;
    vopts.solve.time_limit_s = 60.0;
    const auto v = baseline::direct_synthesis(g, vopts);
    ASSERT_TRUE(v.success) << pin.name;
    EXPECT_EQ(v.final_states, pin.v_states) << pin.name;
    EXPECT_EQ(v.final_signals, pin.v_signals) << pin.name;
    EXPECT_EQ(v.total_literals, pin.v_literals) << pin.name;

    baseline::LavagnoOptions lopts;
    lopts.solve.max_backtracks = 2000000;
    lopts.solve.time_limit_s = 20.0;
    lopts.time_limit_s = 300.0;
    const auto l = baseline::lavagno_synthesis(g, lopts);
    ASSERT_TRUE(l.success) << pin.name;
    EXPECT_EQ(l.final_signals, pin.l_signals) << pin.name;
    EXPECT_EQ(l.total_literals, pin.l_literals) << pin.name;
  }
}

}  // namespace

// Gate-level netlist backend: IR structure, builder mappings, Verilog
// round-trip, and the speed-independence verifier — including that it
// *finds* planted conformance violations and hazards, not only that it
// passes good circuits.
#include <gtest/gtest.h>

#include "core/synthesis.hpp"
#include "netlist/build.hpp"
#include "netlist/netlist.hpp"
#include "netlist/verilog.hpp"
#include "netlist/verify_si.hpp"
#include "sg/state_graph.hpp"
#include "stg/builder.hpp"
#include "util/common.hpp"

namespace {

using namespace mps;

stg::Stg handshake_stg() {
  return stg::Builder("hs")
      .inputs({"r"})
      .outputs({"a"})
      .path("r+", "a+", "r-", "a-")
      .arc("a-", "r+")
      .token("a-", "r+")
      .build();
}

/// The C-element specification: inputs a and b rise concurrently, c rises
/// after both; they fall concurrently, c falls after both.
stg::Stg celement_stg() {
  return stg::Builder("cel")
      .inputs({"a", "b"})
      .outputs({"c"})
      .arc("a+", "c+")
      .arc("b+", "c+")
      .arc("c+", "a-")
      .arc("c+", "b-")
      .arc("a-", "c-")
      .arc("b-", "c-")
      .arc("c-", "a+")
      .arc("c-", "b+")
      .token("c-", "a+")
      .token("c-", "b+")
      .build();
}

/// Synthesize and return (final graph, covers) of a spec.
std::pair<sg::StateGraph, std::vector<std::pair<std::string, logic::Cover>>> synth(
    const stg::Stg& spec) {
  auto r = core::modular_synthesis(sg::StateGraph::from_stg(spec));
  EXPECT_TRUE(r.success) << r.failure_reason;
  return {std::move(r.final_graph), std::move(r.covers)};
}

TEST(Netlist, ComplexGateBuildFromSynthesis) {
  const auto [g, covers] = synth(handshake_stg());
  const auto n = netlist::build_netlist(g, covers);
  std::size_t non_inputs = 0;
  for (sg::SignalId s = 0; s < g.num_signals(); ++s) {
    if (!g.is_input(s)) ++non_inputs;
  }
  EXPECT_EQ(n.num_gates(), non_inputs);  // one complex gate per output
  EXPECT_EQ(n.num_wires(), g.num_signals());
  EXPECT_GT(n.total_literals(), 0u);
  EXPECT_GT(n.transistor_estimate(), 0u);
  EXPECT_NO_THROW(n.check());
}

TEST(Netlist, StandardCBuildAddsLatchesAndInternalNodes) {
  const auto [g, covers] = synth(handshake_stg());
  netlist::BuildNetlistOptions opts;
  opts.mapping = netlist::Mapping::kStandardC;
  const auto n = netlist::build_netlist(g, covers, opts);
  std::size_t latches = 0, sops = 0, internal = 0;
  for (const auto& gate : n.gates()) {
    (gate.kind == netlist::GateKind::kC ? latches : sops) += 1;
  }
  for (const auto& w : n.wires()) {
    if (w.role == netlist::WireRole::kInternal) ++internal;
  }
  EXPECT_GT(latches, 0u);
  EXPECT_EQ(sops, 2 * latches);      // one set and one reset network per latch
  EXPECT_EQ(internal, 2 * latches);  // their output nodes
  EXPECT_NO_THROW(n.check());
}

TEST(Netlist, TransistorEstimateCountsInverterSharing) {
  // c = ~a alone is one inverter: 2 transistors (no input-inverter charge
  // because the gate itself is the inverter... the complemented-fanin
  // charge applies, making 4 total: documented estimate, not a layout).
  netlist::Netlist n("inv");
  const auto a = n.add_wire({"a", netlist::WireRole::kInput});
  const auto c = n.add_wire({"c", netlist::WireRole::kOutput});
  netlist::Gate g;
  g.kind = netlist::GateKind::kSop;
  g.out = c;
  g.fanins = {a};
  logic::Cover fn(1);
  {
    logic::Cube cube(1);
    cube.set_literal(0, false);
    fn.add(cube);
  }
  g.fn = fn;
  n.add_gate(g);
  EXPECT_EQ(n.transistor_estimate(), 2u + 2u);
  EXPECT_EQ(n.total_literals(), 1u);
}

TEST(Netlist, CheckRejectsDoubleDriverAndUndrivenOutput) {
  netlist::Netlist n("bad");
  n.add_wire({"a", netlist::WireRole::kInput});
  n.add_wire({"c", netlist::WireRole::kOutput});
  EXPECT_THROW(n.check(), util::SemanticsError);  // c undriven
}

// --- Verilog ------------------------------------------------------------

TEST(Verilog, WriteParseWriteIsIdentity) {
  for (const bool standard_c : {false, true}) {
    const auto [g, covers] = synth(celement_stg());
    netlist::BuildNetlistOptions opts;
    opts.mapping =
        standard_c ? netlist::Mapping::kStandardC : netlist::Mapping::kComplexGate;
    const auto n = netlist::build_netlist(g, covers, opts);
    const std::string once = netlist::write_verilog(n);
    const auto reparsed = netlist::parse_verilog(once);
    EXPECT_EQ(netlist::write_verilog(reparsed), once) << "standard_c=" << standard_c;
    EXPECT_EQ(reparsed.num_gates(), n.num_gates());
    EXPECT_EQ(reparsed.num_wires(), n.num_wires());
    EXPECT_EQ(reparsed.total_literals(), n.total_literals());
    EXPECT_EQ(reparsed.transistor_estimate(), n.transistor_estimate());
  }
}

TEST(Verilog, ParsedNetlistStillVerifies) {
  const auto [g, covers] = synth(handshake_stg());
  const auto n = netlist::parse_verilog(netlist::write_verilog(netlist::build_netlist(g, covers)));
  const auto si = netlist::verify_speed_independence(n, g);
  EXPECT_TRUE(si.ok()) << (si.issues.empty() ? "" : si.issues.front());
}

TEST(Verilog, ParserRejectsGarbage) {
  EXPECT_THROW(netlist::parse_verilog("modul x (); endmodule"), util::ParseError);
  EXPECT_THROW(netlist::parse_verilog("module x (a);\n input a;\n"), util::ParseError);
  EXPECT_THROW(netlist::parse_verilog("module x (a);\n  input a;\n  assign q = a;\n"
                                      "endmodule\n"),
               util::SemanticsError);  // q undeclared
  EXPECT_THROW(netlist::parse_verilog("module x (a);\n  input a;\n  output c;\n"
                                      "  assign c = a |;\nendmodule\n"),
               util::ParseError);
}

TEST(Verilog, ConstantFunctionsRoundTrip) {
  netlist::Netlist n("consts");
  const auto z = n.add_wire({"z", netlist::WireRole::kOutput});
  const auto o = n.add_wire({"o", netlist::WireRole::kOutput});
  netlist::Gate gz;
  gz.kind = netlist::GateKind::kSop;
  gz.out = z;
  gz.fn = logic::Cover(0);
  n.add_gate(gz);
  netlist::Gate go;
  go.kind = netlist::GateKind::kSop;
  go.out = o;
  logic::Cover one(0);
  one.add(logic::Cube(static_cast<std::size_t>(0)));
  go.fn = one;
  n.add_gate(go);
  const std::string text = netlist::write_verilog(n);
  EXPECT_NE(text.find("1'b0"), std::string::npos);
  EXPECT_NE(text.find("1'b1"), std::string::npos);
  EXPECT_EQ(netlist::write_verilog(netlist::parse_verilog(text)), text);
}

// --- speed-independence verifier ---------------------------------------

TEST(VerifySi, ComplexGateHandshakeIsSpeedIndependent) {
  const auto [g, covers] = synth(handshake_stg());
  const auto n = netlist::build_netlist(g, covers);
  const auto si = netlist::verify_speed_independence(n, g);
  EXPECT_TRUE(si.ok()) << (si.issues.empty() ? "" : si.issues.front());
  EXPECT_GT(si.states_explored, 0u);
  EXPECT_TRUE(si.trace.empty());
}

TEST(VerifySi, StandardCCelementIsSpeedIndependent) {
  const auto [g, covers] = synth(celement_stg());
  netlist::BuildNetlistOptions opts;
  opts.mapping = netlist::Mapping::kStandardC;
  const auto n = netlist::build_netlist(g, covers, opts);
  const auto si = netlist::verify_speed_independence(n, g);
  EXPECT_TRUE(si.ok()) << (si.issues.empty() ? "" : si.issues.front());
}

TEST(VerifySi, DetectsNonConformingGate) {
  // Implement the handshake's output as a = ~r: fires a+ immediately in
  // the initial state, which the spec does not enable.
  const auto g = sg::StateGraph::from_stg(handshake_stg());
  netlist::Netlist n("broken");
  const auto r = n.add_wire({"r", netlist::WireRole::kInput});
  const auto a = n.add_wire({"a", netlist::WireRole::kOutput});
  netlist::Gate gate;
  gate.kind = netlist::GateKind::kSop;
  gate.out = a;
  gate.fanins = {r};
  logic::Cover fn(1);
  logic::Cube cube(1);
  cube.set_literal(0, false);
  fn.add(cube);
  gate.fn = fn;
  n.add_gate(gate);

  const auto si = netlist::verify_speed_independence(n, g);
  EXPECT_FALSE(si.ok());
  EXPECT_FALSE(si.conforms);
  ASSERT_FALSE(si.trace.empty());
  EXPECT_EQ(si.trace.back(), "a+");
}

TEST(VerifySi, DetectsHazardOnInternalNode) {
  // Correct majority gate for c, plus an internal node e = a & ~b that a
  // concurrent b+ disables while excited: a gate-level hazard the spec
  // never sanctions.
  const auto g = sg::StateGraph::from_stg(celement_stg());
  netlist::Netlist n("hazardous");
  const auto a = n.add_wire({"a", netlist::WireRole::kInput});
  const auto b = n.add_wire({"b", netlist::WireRole::kInput});
  const auto c = n.add_wire({"c", netlist::WireRole::kOutput});
  const auto e = n.add_wire({"e", netlist::WireRole::kInternal});

  netlist::Gate maj;
  maj.kind = netlist::GateKind::kSop;
  maj.out = c;
  maj.fanins = {a, b, c};
  logic::Cover fn(3);
  for (const auto& [x, y] : {std::pair{0, 1}, {0, 2}, {1, 2}}) {
    logic::Cube cube(3);
    cube.set_literal(x, true);
    cube.set_literal(y, true);
    fn.add(cube);
  }
  maj.fn = fn;
  n.add_gate(maj);

  netlist::Gate junk;
  junk.kind = netlist::GateKind::kSop;
  junk.out = e;
  junk.fanins = {a, b};
  logic::Cover efn(2);
  logic::Cube ecube(2);
  ecube.set_literal(0, true);
  ecube.set_literal(1, false);
  efn.add(ecube);
  junk.fn = efn;
  n.add_gate(junk);

  const auto si = netlist::verify_speed_independence(n, g);
  EXPECT_FALSE(si.ok());
  EXPECT_FALSE(si.hazard_free);
  EXPECT_FALSE(si.trace.empty());
}

TEST(VerifySi, DetectsPrematureQuiescence) {
  // c stuck at constant 0: after a+ and b+ the spec requires c+, but no
  // gate is excited.
  const auto g = sg::StateGraph::from_stg(celement_stg());
  netlist::Netlist n("stuck");
  n.add_wire({"a", netlist::WireRole::kInput});
  n.add_wire({"b", netlist::WireRole::kInput});
  const auto c = n.add_wire({"c", netlist::WireRole::kOutput});
  netlist::Gate gate;
  gate.kind = netlist::GateKind::kSop;
  gate.out = c;
  gate.fn = logic::Cover(0);  // constant 0
  n.add_gate(gate);

  const auto si = netlist::verify_speed_independence(n, g);
  EXPECT_FALSE(si.ok());
  EXPECT_FALSE(si.quiescence_ok);
}

TEST(VerifySi, ReportsBindingFailures) {
  const auto g = sg::StateGraph::from_stg(handshake_stg());
  netlist::Netlist n("empty");
  const auto si = netlist::verify_speed_independence(n, g);
  EXPECT_FALSE(si.ok());
  EXPECT_FALSE(si.bound);
  EXPECT_FALSE(si.issues.empty());
}

TEST(VerifySi, SetResetSpecsAreMonotonicCovers) {
  // Handshake codes for a: ER(a+)={r1 a0}, ER(a-)={r0 a1}, and two
  // quiescent codes.  The set spec must leave QR(a+) (a stable at 1) as a
  // don't-care so the minimized set network can stay high after a+ fires
  // — the monotonic-cover condition — and dually for reset.
  const auto g = sg::StateGraph::from_stg(handshake_stg());
  const sg::SignalId a = g.find_signal("a");
  ASSERT_FALSE(g.is_input(a));
  const auto [set_spec, reset_spec] = netlist::extract_set_reset(g, a);
  ASSERT_EQ(set_spec.on.size(), 1u);
  ASSERT_EQ(reset_spec.on.size(), 1u);
  EXPECT_FALSE(set_spec.on[0].test(a));
  EXPECT_TRUE(reset_spec.on[0].test(a));
  // 4 reachable codes; each spec lists 3 (its own QR is don't-care).
  EXPECT_EQ(set_spec.on.size() + set_spec.off.size(), 3u);
  EXPECT_EQ(reset_spec.on.size() + reset_spec.off.size(), 3u);
  for (const auto& code : set_spec.off) {
    EXPECT_TRUE(!code.test(a) || code == reset_spec.on[0]);  // QR(a+) absent
  }
  for (const auto& code : reset_spec.off) {
    EXPECT_TRUE(code.test(a) || code == set_spec.on[0]);  // QR(a-) absent
  }
}

}  // namespace

#include <gtest/gtest.h>

#include "logic/cover.hpp"
#include "logic/cube.hpp"
#include "logic/extract.hpp"
#include "logic/minimize.hpp"
#include "logic/pla.hpp"
#include "sg/state_graph.hpp"
#include "stg/builder.hpp"
#include "util/common.hpp"

namespace {

using namespace mps::logic;
using mps::util::BitVec;

BitVec code(const std::string& bits) {
  BitVec v(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) v.set(i, bits[i] == '1');
  return v;
}

TEST(Cube, MintermAndContainment) {
  const Cube m = Cube::minterm(code("101"));
  EXPECT_EQ(m.literal_count(), 3u);
  EXPECT_TRUE(m.contains_code(code("101")));
  EXPECT_FALSE(m.contains_code(code("100")));
  const Cube u(3);  // universal
  EXPECT_TRUE(u.contains(m));
  EXPECT_FALSE(m.contains(u));
  EXPECT_TRUE(m.contains(m));
}

TEST(Cube, FromStringAndToString) {
  const Cube c = Cube::from_string("1-0");
  EXPECT_EQ(c.to_string(), "1-0");
  EXPECT_EQ(c.literal_count(), 2u);
  EXPECT_EQ(c.literal(0), std::optional<bool>(true));
  EXPECT_EQ(c.literal(1), std::nullopt);
  EXPECT_EQ(c.literal(2), std::optional<bool>(false));
  EXPECT_THROW(Cube::from_string("1x0"), mps::util::ParseError);
}

TEST(Cube, SetAndFreeLiterals) {
  Cube c(3);
  c.set_literal(1, true);
  EXPECT_TRUE(c.has_literal(1));
  EXPECT_TRUE(c.contains_code(code("011")));
  EXPECT_FALSE(c.contains_code(code("001")));
  c.free_var(1);
  EXPECT_FALSE(c.has_literal(1));
  EXPECT_EQ(c.literal_count(), 0u);
}

TEST(Cube, IntersectionAndEmptiness) {
  const Cube a = Cube::from_string("1--");
  const Cube b = Cube::from_string("0--");
  EXPECT_FALSE(a.intersects(b));
  EXPECT_TRUE(a.intersect(b).is_empty());
  const Cube c = Cube::from_string("-1-");
  EXPECT_TRUE(a.intersects(c));
  EXPECT_EQ(a.intersect(c).to_string(), "11-");
}

TEST(Cube, Supercube) {
  const Cube a = Cube::from_string("110");
  const Cube b = Cube::from_string("100");
  EXPECT_EQ(a.supercube(b).to_string(), "1-0");
}

TEST(Cube, DistanceAndConsensus) {
  const Cube a = Cube::from_string("10-");
  const Cube b = Cube::from_string("11-");
  EXPECT_EQ(a.distance(b), 1u);
  const auto cons = a.consensus(b);
  ASSERT_TRUE(cons.has_value());
  EXPECT_EQ(cons->to_string(), "1--");
  const Cube c = Cube::from_string("01-");
  EXPECT_EQ(a.distance(c), 2u);
  EXPECT_FALSE(a.consensus(c).has_value());
}

TEST(Cover, CoversAndLiteralCount) {
  Cover f(3);
  f.add(Cube::from_string("1--"));
  f.add(Cube::from_string("-11"));
  EXPECT_TRUE(f.covers_code(code("100")));
  EXPECT_TRUE(f.covers_code(code("011")));
  EXPECT_FALSE(f.covers_code(code("001")));
  EXPECT_EQ(f.literal_count(), 3u);
}

TEST(Cover, SingleCubeContainmentRemoval) {
  Cover f(3);
  f.add(Cube::from_string("1--"));
  f.add(Cube::from_string("11-"));  // contained
  f.add(Cube::from_string("-00"));
  f.remove_single_cube_containment();
  EXPECT_EQ(f.size(), 2u);
}

TEST(Cover, Expressions) {
  Cover f(2);
  f.add(Cube::from_string("10"));
  f.add(Cube::from_string("-1"));
  EXPECT_EQ(f.to_expression({"a", "b"}), "a b' + b");
  EXPECT_EQ(Cover(2).to_expression({"a", "b"}), "0");
}

// --- minimization -------------------------------------------------------

SopSpec spec_from(std::size_t vars, const std::vector<std::string>& on,
                  const std::vector<std::string>& off) {
  SopSpec s;
  s.num_vars = vars;
  for (const auto& c : on) s.on.push_back(code(c));
  for (const auto& c : off) s.off.push_back(code(c));
  return s;
}

TEST(Minimize, SingleMintermStaysMinterm) {
  const auto spec = spec_from(2, {"11"}, {"00", "01", "10"});
  const Cover f = minimize(spec);
  EXPECT_EQ(f.size(), 1u);
  EXPECT_EQ(f.literal_count(), 2u);
  EXPECT_TRUE(cover_is_valid(spec, f));
}

TEST(Minimize, FullOnSetBecomesTautology) {
  const auto spec = spec_from(2, {"00", "01", "10", "11"}, {});
  const Cover f = minimize(spec);
  EXPECT_EQ(f.size(), 1u);
  EXPECT_EQ(f.literal_count(), 0u);
}

TEST(Minimize, DontCaresAreUsed) {
  // ON = {11}, OFF = {00}; 01 and 10 are don't cares: a single literal
  // suffices.
  const auto spec = spec_from(2, {"11"}, {"00"});
  const Cover f = minimize(spec);
  EXPECT_EQ(f.literal_count(), 1u);
  EXPECT_TRUE(cover_is_valid(spec, f));
}

TEST(Minimize, XorNeedsTwoCubes) {
  const auto spec = spec_from(2, {"01", "10"}, {"00", "11"});
  const Cover f = minimize(spec);
  EXPECT_EQ(f.size(), 2u);
  EXPECT_EQ(f.literal_count(), 4u);
  EXPECT_TRUE(cover_is_valid(spec, f));
  EXPECT_TRUE(cover_is_irredundant(spec, f));
  for (const Cube& c : f.cubes()) EXPECT_TRUE(cube_is_prime(spec, c));
}

TEST(Minimize, ClassicTextbookFunction) {
  // f = Σm(0,1,2,5,6,7) over 3 vars: minimal SOP has 3 cubes / 6 literals
  // (one of two symmetric solutions).
  const auto spec =
      spec_from(3, {"000", "100", "010", "101", "011", "111"}, {"110", "001"});
  const Cover f = minimize(spec);
  EXPECT_TRUE(cover_is_valid(spec, f));
  EXPECT_LE(f.literal_count(), 6u);
  EXPECT_GE(f.literal_count(), 6u);
}

TEST(Minimize, HeuristicMatchesExactOnSmallRandomFunctions) {
  mps::util::Rng rng(2024);
  for (int trial = 0; trial < 30; ++trial) {
    SopSpec spec;
    spec.num_vars = 4;
    for (int x = 0; x < 16; ++x) {
      BitVec c(4);
      for (int v = 0; v < 4; ++v) c.set(v, (x >> v) & 1);
      const double dice = rng.uniform();
      if (dice < 0.4) {
        spec.on.push_back(c);
      } else if (dice < 0.8) {
        spec.off.push_back(c);
      }  // else don't care
    }
    if (spec.on.empty()) continue;
    const Cover heur = heuristic_minimize(spec);
    const auto exact = exact_minimize(spec);
    ASSERT_TRUE(exact.has_value());
    EXPECT_TRUE(cover_is_valid(spec, heur));
    EXPECT_TRUE(cover_is_valid(spec, *exact));
    // Heuristic is within 2x of exact on these tiny functions.
    EXPECT_LE(heur.literal_count(), 2 * std::max<std::size_t>(1, exact->literal_count()));
    EXPECT_LE(exact->literal_count(), heur.literal_count());
  }
}

TEST(Minimize, PrimeAndIrredundantProperties) {
  mps::util::Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    SopSpec spec;
    spec.num_vars = 5;
    for (int x = 0; x < 32; ++x) {
      BitVec c(5);
      for (int v = 0; v < 5; ++v) c.set(v, (x >> v) & 1);
      if (rng.chance(0.45)) {
        spec.on.push_back(c);
      } else if (rng.chance(0.8)) {
        spec.off.push_back(c);
      }
    }
    if (spec.on.empty()) continue;
    const Cover f = heuristic_minimize(spec);
    EXPECT_TRUE(cover_is_valid(spec, f));
    EXPECT_TRUE(cover_is_irredundant(spec, f)) << "trial " << trial;
    for (const Cube& c : f.cubes()) {
      EXPECT_TRUE(cube_is_prime(spec, c)) << "trial " << trial;
    }
  }
}

TEST(Minimize, EmptyOnSetGivesEmptyCover) {
  const auto spec = spec_from(2, {}, {"00"});
  EXPECT_TRUE(minimize(spec).empty());
}

TEST(ExactMinimize, RefusesOversizedInstances) {
  SopSpec spec;
  spec.num_vars = 40;  // way past the DC enumeration cap
  spec.on.push_back(BitVec(40));
  EXPECT_FALSE(exact_minimize(spec).has_value());
}

// --- extraction ---------------------------------------------------------

TEST(Extract, HandshakeNextStateFunctions) {
  const auto stg = mps::stg::Builder("hs")
                       .inputs({"r"})
                       .outputs({"a"})
                       .path("r+", "a+", "r-", "a-")
                       .arc("a-", "r+")
                       .token("a-", "r+")
                       .build();
  const auto g = mps::sg::StateGraph::from_stg(stg);
  const auto spec = extract_next_state(g, g.find_signal("a"));
  // a follows r: F_a = r.  States 10 and 11 are ON; 00, 01 OFF.
  const Cover f = minimize(spec);
  EXPECT_TRUE(cover_is_valid(spec, f));
  EXPECT_EQ(f.literal_count(), 1u);
  EXPECT_EQ(f.size(), 1u);
}

TEST(Extract, ImpliedValueSemantics) {
  const auto stg = mps::stg::Builder("hs")
                       .inputs({"r"})
                       .outputs({"a"})
                       .path("r+", "a+", "r-", "a-")
                       .arc("a-", "r+")
                       .token("a-", "r+")
                       .build();
  const auto g = mps::sg::StateGraph::from_stg(stg);
  const auto a = g.find_signal("a");
  for (mps::sg::StateId s = 0; s < g.num_states(); ++s) {
    const bool v = implied_value(g, s, a);
    if (g.excited_dir(s, a, true)) EXPECT_TRUE(v);    // rising-excited -> 1
    if (g.excited_dir(s, a, false)) EXPECT_FALSE(v);  // falling-excited -> 0
  }
}

TEST(Extract, CscViolationDetected) {
  const auto stg = mps::stg::Builder("toggle")
                       .outputs({"x", "y"})
                       .path("x+", "x-", "y+", "y-")
                       .arc("y-", "x+")
                       .token("y-", "x+")
                       .build();
  const auto g = mps::sg::StateGraph::from_stg(stg);
  EXPECT_THROW(extract_next_state(g, g.find_signal("x")), mps::util::SemanticsError);
}

// --- PLA I/O -------------------------------------------------------------

TEST(Pla, WriteCoverAndSpec) {
  Cover f(3);
  f.add(Cube::from_string("1-0"));
  const std::string text = write_pla(f, {"a", "b", "c"});
  EXPECT_NE(text.find(".i 3"), std::string::npos);
  EXPECT_NE(text.find("1-0 1"), std::string::npos);
  EXPECT_NE(text.find(".ilb a b c"), std::string::npos);
}

TEST(Pla, ParseRoundTrip) {
  const auto spec = spec_from(3, {"101", "111"}, {"000"});
  const SopSpec back = parse_pla(write_pla(spec));
  EXPECT_EQ(back.num_vars, 3u);
  EXPECT_EQ(back.on.size(), 2u);
  EXPECT_EQ(back.off.size(), 1u);
}

TEST(Pla, DashExpansion) {
  const SopSpec spec = parse_pla(".i 3\n.o 1\n1-- 1\n000 0\n.e\n");
  EXPECT_EQ(spec.on.size(), 4u);  // 1-- expands to 4 minterms
  EXPECT_EQ(spec.off.size(), 1u);
}

TEST(Pla, Errors) {
  EXPECT_THROW(parse_pla(".i 2\n.o 2\n"), mps::util::ParseError);
  EXPECT_THROW(parse_pla("11 1\n"), mps::util::ParseError);
  EXPECT_THROW(parse_pla(".i 2\n.o 1\n111 1\n"), mps::util::ParseError);
}

}  // namespace

#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "bdd/csc_bdd.hpp"
#include "bdd/symbolic.hpp"
#include "core/synthesis.hpp"
#include "sat/solver.hpp"
#include "logic/minimize.hpp"
#include "sg/state_graph.hpp"
#include "stg/builder.hpp"

namespace {

using namespace mps::bdd;
using mps::util::BitVec;

BitVec code(const std::string& bits) {
  BitVec v(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) v.set(i, bits[i] == '1');
  return v;
}

TEST(Bdd, Terminals) {
  Manager mgr(3);
  EXPECT_EQ(mgr.bdd_false(), kFalse);
  EXPECT_EQ(mgr.bdd_true(), kTrue);
  EXPECT_EQ(mgr.bdd_not(kTrue), kFalse);
  EXPECT_EQ(mgr.bdd_not(kFalse), kTrue);
}

TEST(Bdd, VariablesAreCanonical) {
  Manager mgr(3);
  EXPECT_EQ(mgr.var(0), mgr.var(0));  // hash-consed
  EXPECT_NE(mgr.var(0), mgr.var(1));
  EXPECT_EQ(mgr.bdd_not(mgr.var(0)), mgr.nvar(0));
}

TEST(Bdd, BooleanAlgebraLaws) {
  Manager mgr(4);
  const NodeId a = mgr.var(0);
  const NodeId b = mgr.var(1);
  const NodeId c = mgr.var(2);
  // Canonicity makes law checking equality checking.
  EXPECT_EQ(mgr.bdd_and(a, b), mgr.bdd_and(b, a));
  EXPECT_EQ(mgr.bdd_or(a, mgr.bdd_or(b, c)), mgr.bdd_or(mgr.bdd_or(a, b), c));
  EXPECT_EQ(mgr.bdd_and(a, mgr.bdd_or(b, c)),
            mgr.bdd_or(mgr.bdd_and(a, b), mgr.bdd_and(a, c)));
  EXPECT_EQ(mgr.bdd_not(mgr.bdd_and(a, b)),
            mgr.bdd_or(mgr.bdd_not(a), mgr.bdd_not(b)));  // De Morgan
  EXPECT_EQ(mgr.bdd_and(a, mgr.bdd_not(a)), kFalse);
  EXPECT_EQ(mgr.bdd_or(a, mgr.bdd_not(a)), kTrue);
  EXPECT_EQ(mgr.bdd_xor(a, a), kFalse);
  EXPECT_EQ(mgr.bdd_xor(a, kFalse), a);
  EXPECT_EQ(mgr.bdd_implies(a, a), kTrue);
}

TEST(Bdd, EvalAgainstTruthTable) {
  Manager mgr(3);
  const NodeId f = mgr.bdd_or(mgr.bdd_and(mgr.var(0), mgr.var(1)), mgr.nvar(2));
  for (int x = 0; x < 8; ++x) {
    BitVec assignment(3);
    for (int v = 0; v < 3; ++v) assignment.set(v, (x >> v) & 1);
    const bool expected =
        (assignment.test(0) && assignment.test(1)) || !assignment.test(2);
    EXPECT_EQ(mgr.eval(f, assignment), expected) << x;
  }
}

TEST(Bdd, RestrictAndQuantify) {
  Manager mgr(3);
  const NodeId f = mgr.bdd_and(mgr.var(0), mgr.var(1));
  EXPECT_EQ(mgr.restrict(f, 0, true), mgr.var(1));
  EXPECT_EQ(mgr.restrict(f, 0, false), kFalse);
  EXPECT_EQ(mgr.exists(f, 0), mgr.var(1));
  EXPECT_EQ(mgr.forall(f, 0), kFalse);
  const NodeId g = mgr.bdd_or(mgr.var(0), mgr.var(1));
  EXPECT_EQ(mgr.forall(g, 0), mgr.var(1));
}

TEST(Bdd, SatCount) {
  Manager mgr(4);
  EXPECT_DOUBLE_EQ(mgr.sat_count(kTrue), 16.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(kFalse), 0.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.var(0)), 8.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.bdd_and(mgr.var(0), mgr.var(3))), 4.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.bdd_xor(mgr.var(1), mgr.var(2))), 8.0);
}

TEST(Bdd, PickModel) {
  Manager mgr(3);
  const NodeId f = mgr.bdd_and(mgr.var(0), mgr.nvar(2));
  BitVec model;
  ASSERT_TRUE(mgr.pick_model(f, &model));
  EXPECT_TRUE(mgr.eval(f, model));
  EXPECT_FALSE(mgr.pick_model(kFalse, &model));
}

TEST(Bdd, FromCoverMatchesSemantics) {
  Manager mgr(3);
  mps::logic::Cover cover(3);
  cover.add(mps::logic::Cube::from_string("1-0"));
  cover.add(mps::logic::Cube::from_string("01-"));
  const NodeId f = mgr.from_cover(cover);
  for (int x = 0; x < 8; ++x) {
    BitVec assignment(3);
    for (int v = 0; v < 3; ++v) assignment.set(v, (x >> v) & 1);
    EXPECT_EQ(mgr.eval(f, assignment), cover.covers_code(assignment)) << x;
  }
}

TEST(Bdd, FromMintermsMatchesList) {
  Manager mgr(3);
  const std::vector<BitVec> minterms = {code("101"), code("010"), code("111")};
  const NodeId f = mgr.from_minterms(minterms);
  EXPECT_DOUBLE_EQ(mgr.sat_count(f), 3.0);
  for (const auto& m : minterms) EXPECT_TRUE(mgr.eval(f, m));
  EXPECT_FALSE(mgr.eval(f, code("000")));
}

TEST(Bdd, SharingKeepsNodeCountSmall) {
  Manager mgr(10);
  // x0 xor x1 xor ... xor x9 — linear-size BDD thanks to sharing.
  NodeId f = kFalse;
  for (std::uint32_t v = 0; v < 10; ++v) f = mgr.bdd_xor(f, mgr.var(v));
  // No GC: intermediates stay in the unique table, but growth is linear.
  EXPECT_LT(mgr.num_nodes(), 128u);
  EXPECT_DOUBLE_EQ(mgr.sat_count(f), 512.0);
}

/// A pseudo-random function over `nv` variables, distinct per seed.
NodeId random_function(Manager& mgr, std::uint32_t nv, std::uint32_t seed) {
  mps::util::Rng rng(seed);
  std::vector<BitVec> minterms;
  for (int i = 0; i < 12; ++i) {
    BitVec m(nv);
    for (std::uint32_t v = 0; v < nv; ++v) m.set(v, rng.chance(0.5));
    minterms.push_back(m);
  }
  return mgr.from_minterms(minterms);
}

TEST(BddQuantify, CubeMatchesIteratedExists) {
  Manager mgr(6);
  for (std::uint32_t seed = 0; seed < 10; ++seed) {
    const NodeId f = random_function(mgr, 6, seed);
    const NodeId via_cube = mgr.exists_cube(f, mgr.cube({1, 3, 4}));
    NodeId iterated = f;
    for (const std::uint32_t v : {1u, 3u, 4u}) iterated = mgr.exists(iterated, v);
    EXPECT_EQ(via_cube, iterated) << "seed " << seed;
  }
}

TEST(BddQuantify, ExistsDistributesOverOr) {
  Manager mgr(6);
  const NodeId f = random_function(mgr, 6, 1);
  const NodeId g = random_function(mgr, 6, 2);
  const NodeId c = mgr.cube({0, 2, 5});
  EXPECT_EQ(mgr.exists_cube(mgr.bdd_or(f, g), c),
            mgr.bdd_or(mgr.exists_cube(f, c), mgr.exists_cube(g, c)));
}

TEST(BddQuantify, AndExistsMatchesConjoinThenQuantify) {
  Manager mgr(8);
  for (std::uint32_t seed = 0; seed < 10; ++seed) {
    const NodeId f = random_function(mgr, 8, 3 * seed);
    const NodeId g = random_function(mgr, 8, 3 * seed + 1);
    const NodeId c = mgr.cube({0, 1, 4, 6});
    EXPECT_EQ(mgr.and_exists(f, g, c), mgr.exists_cube(mgr.bdd_and(f, g), c))
        << "seed " << seed;
    EXPECT_EQ(mgr.and_exists(f, g, c), mgr.and_exists(g, f, c));  // commutes
    EXPECT_EQ(mgr.and_exists(f, g, kTrue), mgr.bdd_and(f, g));    // empty cube
  }
}

TEST(BddQuantify, RenameShiftDown) {
  Manager mgr(8);
  // f over next variables {1, 3, 7} only; renaming maps it onto {0, 2, 6}.
  const NodeId f =
      mgr.bdd_or(mgr.bdd_and(mgr.var(1), mgr.nvar(3)), mgr.bdd_and(mgr.var(3), mgr.var(7)));
  const NodeId expected =
      mgr.bdd_or(mgr.bdd_and(mgr.var(0), mgr.nvar(2)), mgr.bdd_and(mgr.var(2), mgr.var(6)));
  EXPECT_EQ(mgr.rename_shift_down(f), expected);
  EXPECT_EQ(mgr.rename_shift_down(kTrue), kTrue);
  // Functions already over even variables pass through unchanged.
  EXPECT_EQ(mgr.rename_shift_down(expected), expected);
}

TEST(BddRestrict, MemoizedMatchesReference) {
  Manager mgr(8);
  for (std::uint32_t seed = 0; seed < 10; ++seed) {
    const NodeId f = random_function(mgr, 8, seed);
    for (std::uint32_t v = 0; v < 8; ++v) {
      EXPECT_EQ(mgr.restrict(f, v, true), mgr.restrict_nomemo(f, v, true));
      EXPECT_EQ(mgr.restrict(f, v, false), mgr.restrict_nomemo(f, v, false));
    }
  }
}

TEST(BddGc, KeepsLiveRootsAndCollectsGarbage) {
  Manager mgr(10);
  NodeId keep = random_function(mgr, 10, 7);
  // Record the full truth table so the post-GC (re-numbered) root can be
  // checked semantically.
  std::vector<bool> truth(1024);
  for (std::uint32_t x = 0; x < 1024; ++x) {
    BitVec a(10);
    for (std::uint32_t v = 0; v < 10; ++v) a.set(v, (x >> v) & 1);
    truth[x] = mgr.eval(keep, a);
  }
  for (std::uint32_t seed = 100; seed < 120; ++seed) random_function(mgr, 10, seed);
  const std::size_t before = mgr.num_nodes();
  std::vector<NodeId*> roots{&keep};
  const std::size_t collected = mgr.gc(roots);
  EXPECT_GT(collected, 0u);
  EXPECT_EQ(mgr.num_nodes(), before - collected);
  EXPECT_EQ(mgr.stats().gc_runs, 1u);
  for (std::uint32_t x = 0; x < 1024; ++x) {
    BitVec a(10);
    for (std::uint32_t v = 0; v < 10; ++v) a.set(v, (x >> v) & 1);
    EXPECT_EQ(mgr.eval(keep, a), truth[x]) << x;
  }
  // The manager keeps working after compaction: fresh ops, fresh caches.
  EXPECT_EQ(mgr.bdd_and(keep, mgr.bdd_not(keep)), kFalse);
}

TEST(BddBudget, NodeLimitThrows) {
  Manager mgr(64);
  mgr.set_max_nodes(24);
  EXPECT_THROW(
      {
        NodeId f = kFalse;
        for (std::uint32_t v = 0; v < 64; ++v) f = mgr.bdd_xor(f, mgr.var(v));
      },
      mps::util::LimitError);
}

TEST(BddBudget, OpLimitThrows) {
  Manager mgr(32);
  NodeId f = kFalse;
  for (std::uint32_t v = 0; v < 32; ++v) f = mgr.bdd_xor(f, mgr.var(v));
  mgr.set_max_ops(8);
  EXPECT_THROW(
      {
        // Fresh structure so the ite cache cannot answer from memory.
        const NodeId g = random_function(mgr, 32, 9);
        mgr.bdd_and(f, g);
      },
      mps::util::LimitError);
}

TEST(SymbolicStg, ReachableCodesMatchExplicit) {
  const auto stg = mps::stg::Builder("hs")
                       .inputs({"r"})
                       .outputs({"a"})
                       .path("r+", "a+", "r-", "a-")
                       .arc("a-", "r+")
                       .token("a-", "r+")
                       .build();
  const auto g = mps::sg::StateGraph::from_stg(stg);
  SymbolicStg sym(stg);
  EXPECT_DOUBLE_EQ(sym.num_states(), static_cast<double>(g.num_states()));
  for (mps::sg::StateId s = 0; s < g.num_states(); ++s) {
    EXPECT_TRUE(sym.code_reachable(g.code(s)));
  }
}

TEST(SymbolicStg, DetectsViolationAndSatisfaction) {
  const auto bad = mps::stg::Builder("toggle")
                       .outputs({"x", "y"})
                       .path("x+", "x-", "y+", "y-")
                       .arc("y-", "x+")
                       .token("y-", "x+")
                       .build();
  SymbolicStg sym_bad(bad);
  EXPECT_FALSE(sym_bad.check_csc().holds);
  // Code 11 never occurs: x and y pulse one after the other.
  EXPECT_FALSE(sym_bad.code_reachable(code("11")));

  const auto good = mps::stg::Builder("hs")
                        .inputs({"r"})
                        .outputs({"a"})
                        .path("r+", "a+", "r-", "a-")
                        .arc("a-", "r+")
                        .token("a-", "r+")
                        .build();
  SymbolicStg sym_good(good);
  const CscVerdict verdict = sym_good.check_csc();
  EXPECT_TRUE(verdict.holds);
  EXPECT_TRUE(verdict.conflicts.empty());
}

TEST(CscBdd, CoverMatchesSpecExactly) {
  mps::logic::SopSpec spec;
  spec.num_vars = 3;
  spec.on = {code("110"), code("111")};
  spec.off = {code("000"), code("001")};
  Manager mgr(3);
  mps::logic::Cover good(3);
  good.add(mps::logic::Cube::from_string("11-"));
  EXPECT_TRUE(cover_matches_spec(mgr, spec, good));

  mps::logic::Cover overreach(3);
  overreach.add(mps::logic::Cube::from_string("---"));  // hits the OFF set
  EXPECT_FALSE(cover_matches_spec(mgr, spec, overreach));

  mps::logic::Cover undershoot(3);
  undershoot.add(mps::logic::Cube::from_string("111"));  // misses ON 110
  EXPECT_FALSE(cover_matches_spec(mgr, spec, undershoot));

  // Dipping into don't-care space is allowed.
  mps::logic::Cover dc(3);
  dc.add(mps::logic::Cube::from_string("1--"));  // covers DC 100, 101
  EXPECT_TRUE(cover_matches_spec(mgr, spec, dc));
}

TEST(SolveCnfBdd, AgreesWithDpll) {
  mps::util::Rng rng(77);
  for (int i = 0; i < 20; ++i) {
    mps::sat::Cnf cnf;
    cnf.new_vars(8);
    for (int c = 0; c < 24; ++c) {
      std::vector<mps::sat::Lit> clause;
      for (int k = 0; k < 3; ++k) {
        clause.push_back(mps::sat::Lit::make(
            static_cast<mps::sat::Var>(rng.below(8)), rng.chance(0.5)));
      }
      cnf.add_clause(clause);
    }
    const auto bdd_model = solve_cnf_bdd(cnf);
    const auto dpll = mps::sat::Solver().solve(cnf);
    EXPECT_EQ(bdd_model.has_value(), dpll == mps::sat::Outcome::Sat) << "instance " << i;
    if (bdd_model.has_value()) EXPECT_TRUE(cnf.satisfied_by(*bdd_model));
  }
}

TEST(SolveCnfBdd, NodeCapThrows) {
  // A parity chain forces exponential growth under a hostile clause order;
  // with a tiny cap the limit error must fire (or the instance solves —
  // either way, never a wrong answer).
  mps::util::Rng rng(5);
  mps::sat::Cnf cnf;
  cnf.new_vars(24);
  for (int c = 0; c < 60; ++c) {
    std::vector<mps::sat::Lit> clause;
    for (int k = 0; k < 3; ++k) {
      clause.push_back(mps::sat::Lit::make(
          static_cast<mps::sat::Var>(rng.below(24)), rng.chance(0.5)));
    }
    cnf.add_clause(clause);
  }
  try {
    const auto model = solve_cnf_bdd(cnf, /*max_nodes=*/64);
    if (model.has_value()) EXPECT_TRUE(cnf.satisfied_by(*model));
  } catch (const mps::util::LimitError&) {
    SUCCEED();
  }
}

TEST(SolveCnfBdd, ModuleBackendSynthesizes) {
  // The [19] extension end-to-end: modular synthesis with the BDD backend.
  const auto stg = mps::stg::Builder("toggle")
                       .outputs({"x", "y"})
                       .path("x+", "x-", "y+", "y-")
                       .arc("y-", "x+")
                       .token("y-", "x+")
                       .build();
  mps::core::SynthesisOptions opts;
  opts.sat.use_bdd = true;
  const auto r = mps::core::modular_synthesis(stg, opts);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_EQ(r.total_literals, 7u);
}

}  // namespace

#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "bdd/csc_bdd.hpp"
#include "core/synthesis.hpp"
#include "sat/solver.hpp"
#include "logic/minimize.hpp"
#include "sg/state_graph.hpp"
#include "stg/builder.hpp"

namespace {

using namespace mps::bdd;
using mps::util::BitVec;

BitVec code(const std::string& bits) {
  BitVec v(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) v.set(i, bits[i] == '1');
  return v;
}

TEST(Bdd, Terminals) {
  Manager mgr(3);
  EXPECT_EQ(mgr.bdd_false(), kFalse);
  EXPECT_EQ(mgr.bdd_true(), kTrue);
  EXPECT_EQ(mgr.bdd_not(kTrue), kFalse);
  EXPECT_EQ(mgr.bdd_not(kFalse), kTrue);
}

TEST(Bdd, VariablesAreCanonical) {
  Manager mgr(3);
  EXPECT_EQ(mgr.var(0), mgr.var(0));  // hash-consed
  EXPECT_NE(mgr.var(0), mgr.var(1));
  EXPECT_EQ(mgr.bdd_not(mgr.var(0)), mgr.nvar(0));
}

TEST(Bdd, BooleanAlgebraLaws) {
  Manager mgr(4);
  const NodeId a = mgr.var(0);
  const NodeId b = mgr.var(1);
  const NodeId c = mgr.var(2);
  // Canonicity makes law checking equality checking.
  EXPECT_EQ(mgr.bdd_and(a, b), mgr.bdd_and(b, a));
  EXPECT_EQ(mgr.bdd_or(a, mgr.bdd_or(b, c)), mgr.bdd_or(mgr.bdd_or(a, b), c));
  EXPECT_EQ(mgr.bdd_and(a, mgr.bdd_or(b, c)),
            mgr.bdd_or(mgr.bdd_and(a, b), mgr.bdd_and(a, c)));
  EXPECT_EQ(mgr.bdd_not(mgr.bdd_and(a, b)),
            mgr.bdd_or(mgr.bdd_not(a), mgr.bdd_not(b)));  // De Morgan
  EXPECT_EQ(mgr.bdd_and(a, mgr.bdd_not(a)), kFalse);
  EXPECT_EQ(mgr.bdd_or(a, mgr.bdd_not(a)), kTrue);
  EXPECT_EQ(mgr.bdd_xor(a, a), kFalse);
  EXPECT_EQ(mgr.bdd_xor(a, kFalse), a);
  EXPECT_EQ(mgr.bdd_implies(a, a), kTrue);
}

TEST(Bdd, EvalAgainstTruthTable) {
  Manager mgr(3);
  const NodeId f = mgr.bdd_or(mgr.bdd_and(mgr.var(0), mgr.var(1)), mgr.nvar(2));
  for (int x = 0; x < 8; ++x) {
    BitVec assignment(3);
    for (int v = 0; v < 3; ++v) assignment.set(v, (x >> v) & 1);
    const bool expected =
        (assignment.test(0) && assignment.test(1)) || !assignment.test(2);
    EXPECT_EQ(mgr.eval(f, assignment), expected) << x;
  }
}

TEST(Bdd, RestrictAndQuantify) {
  Manager mgr(3);
  const NodeId f = mgr.bdd_and(mgr.var(0), mgr.var(1));
  EXPECT_EQ(mgr.restrict(f, 0, true), mgr.var(1));
  EXPECT_EQ(mgr.restrict(f, 0, false), kFalse);
  EXPECT_EQ(mgr.exists(f, 0), mgr.var(1));
  EXPECT_EQ(mgr.forall(f, 0), kFalse);
  const NodeId g = mgr.bdd_or(mgr.var(0), mgr.var(1));
  EXPECT_EQ(mgr.forall(g, 0), mgr.var(1));
}

TEST(Bdd, SatCount) {
  Manager mgr(4);
  EXPECT_DOUBLE_EQ(mgr.sat_count(kTrue), 16.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(kFalse), 0.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.var(0)), 8.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.bdd_and(mgr.var(0), mgr.var(3))), 4.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.bdd_xor(mgr.var(1), mgr.var(2))), 8.0);
}

TEST(Bdd, PickModel) {
  Manager mgr(3);
  const NodeId f = mgr.bdd_and(mgr.var(0), mgr.nvar(2));
  BitVec model;
  ASSERT_TRUE(mgr.pick_model(f, &model));
  EXPECT_TRUE(mgr.eval(f, model));
  EXPECT_FALSE(mgr.pick_model(kFalse, &model));
}

TEST(Bdd, FromCoverMatchesSemantics) {
  Manager mgr(3);
  mps::logic::Cover cover(3);
  cover.add(mps::logic::Cube::from_string("1-0"));
  cover.add(mps::logic::Cube::from_string("01-"));
  const NodeId f = mgr.from_cover(cover);
  for (int x = 0; x < 8; ++x) {
    BitVec assignment(3);
    for (int v = 0; v < 3; ++v) assignment.set(v, (x >> v) & 1);
    EXPECT_EQ(mgr.eval(f, assignment), cover.covers_code(assignment)) << x;
  }
}

TEST(Bdd, FromMintermsMatchesList) {
  Manager mgr(3);
  const std::vector<BitVec> minterms = {code("101"), code("010"), code("111")};
  const NodeId f = mgr.from_minterms(minterms);
  EXPECT_DOUBLE_EQ(mgr.sat_count(f), 3.0);
  for (const auto& m : minterms) EXPECT_TRUE(mgr.eval(f, m));
  EXPECT_FALSE(mgr.eval(f, code("000")));
}

TEST(Bdd, SharingKeepsNodeCountSmall) {
  Manager mgr(10);
  // x0 xor x1 xor ... xor x9 — linear-size BDD thanks to sharing.
  NodeId f = kFalse;
  for (std::uint32_t v = 0; v < 10; ++v) f = mgr.bdd_xor(f, mgr.var(v));
  // No GC: intermediates stay in the unique table, but growth is linear.
  EXPECT_LT(mgr.num_nodes(), 128u);
  EXPECT_DOUBLE_EQ(mgr.sat_count(f), 512.0);
}

TEST(CscBdd, ReachableChi) {
  const auto stg = mps::stg::Builder("hs")
                       .inputs({"r"})
                       .outputs({"a"})
                       .path("r+", "a+", "r-", "a-")
                       .arc("a-", "r+")
                       .token("a-", "r+")
                       .build();
  const auto g = mps::sg::StateGraph::from_stg(stg);
  Manager mgr(g.num_signals());
  const NodeId chi = reachable_chi(mgr, g);
  EXPECT_DOUBLE_EQ(mgr.sat_count(chi), 4.0);  // 4 distinct codes
  for (mps::sg::StateId s = 0; s < g.num_states(); ++s) {
    EXPECT_TRUE(mgr.eval(chi, g.code(s)));
  }
}

TEST(CscBdd, DetectsViolationAndSatisfaction) {
  const auto bad = mps::stg::Builder("toggle")
                       .outputs({"x", "y"})
                       .path("x+", "x-", "y+", "y-")
                       .arc("y-", "x+")
                       .token("y-", "x+")
                       .build();
  const auto g_bad = mps::sg::StateGraph::from_stg(bad);
  Manager m1(g_bad.num_signals());
  EXPECT_FALSE(csc_holds(m1, g_bad));

  const auto good = mps::stg::Builder("hs")
                        .inputs({"r"})
                        .outputs({"a"})
                        .path("r+", "a+", "r-", "a-")
                        .arc("a-", "r+")
                        .token("a-", "r+")
                        .build();
  const auto g_good = mps::sg::StateGraph::from_stg(good);
  Manager m2(g_good.num_signals());
  EXPECT_TRUE(csc_holds(m2, g_good));
}

TEST(CscBdd, CoverMatchesSpecExactly) {
  mps::logic::SopSpec spec;
  spec.num_vars = 3;
  spec.on = {code("110"), code("111")};
  spec.off = {code("000"), code("001")};
  Manager mgr(3);
  mps::logic::Cover good(3);
  good.add(mps::logic::Cube::from_string("11-"));
  EXPECT_TRUE(cover_matches_spec(mgr, spec, good));

  mps::logic::Cover overreach(3);
  overreach.add(mps::logic::Cube::from_string("---"));  // hits the OFF set
  EXPECT_FALSE(cover_matches_spec(mgr, spec, overreach));

  mps::logic::Cover undershoot(3);
  undershoot.add(mps::logic::Cube::from_string("111"));  // misses ON 110
  EXPECT_FALSE(cover_matches_spec(mgr, spec, undershoot));

  // Dipping into don't-care space is allowed.
  mps::logic::Cover dc(3);
  dc.add(mps::logic::Cube::from_string("1--"));  // covers DC 100, 101
  EXPECT_TRUE(cover_matches_spec(mgr, spec, dc));
}

TEST(SolveCnfBdd, AgreesWithDpll) {
  mps::util::Rng rng(77);
  for (int i = 0; i < 20; ++i) {
    mps::sat::Cnf cnf;
    cnf.new_vars(8);
    for (int c = 0; c < 24; ++c) {
      std::vector<mps::sat::Lit> clause;
      for (int k = 0; k < 3; ++k) {
        clause.push_back(mps::sat::Lit::make(
            static_cast<mps::sat::Var>(rng.below(8)), rng.chance(0.5)));
      }
      cnf.add_clause(clause);
    }
    const auto bdd_model = solve_cnf_bdd(cnf);
    const auto dpll = mps::sat::Solver().solve(cnf);
    EXPECT_EQ(bdd_model.has_value(), dpll == mps::sat::Outcome::Sat) << "instance " << i;
    if (bdd_model.has_value()) EXPECT_TRUE(cnf.satisfied_by(*bdd_model));
  }
}

TEST(SolveCnfBdd, NodeCapThrows) {
  // A parity chain forces exponential growth under a hostile clause order;
  // with a tiny cap the limit error must fire (or the instance solves —
  // either way, never a wrong answer).
  mps::util::Rng rng(5);
  mps::sat::Cnf cnf;
  cnf.new_vars(24);
  for (int c = 0; c < 60; ++c) {
    std::vector<mps::sat::Lit> clause;
    for (int k = 0; k < 3; ++k) {
      clause.push_back(mps::sat::Lit::make(
          static_cast<mps::sat::Var>(rng.below(24)), rng.chance(0.5)));
    }
    cnf.add_clause(clause);
  }
  try {
    const auto model = solve_cnf_bdd(cnf, /*max_nodes=*/64);
    if (model.has_value()) EXPECT_TRUE(cnf.satisfied_by(*model));
  } catch (const mps::util::LimitError&) {
    SUCCEED();
  }
}

TEST(SolveCnfBdd, ModuleBackendSynthesizes) {
  // The [19] extension end-to-end: modular synthesis with the BDD backend.
  const auto stg = mps::stg::Builder("toggle")
                       .outputs({"x", "y"})
                       .path("x+", "x-", "y+", "y-")
                       .arc("y-", "x+")
                       .token("y-", "x+")
                       .build();
  mps::core::SynthesisOptions opts;
  opts.sat.use_bdd = true;
  const auto r = mps::core::modular_synthesis(stg, opts);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_EQ(r.total_literals, 7u);
}

}  // namespace

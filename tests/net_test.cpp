// Unit tests for the network layer (src/net/): endpoint parsing and
// ephemeral-port binding, digest-prefix sharding and the worker table's
// failover/backoff policy, the NDJSON session state machine over real
// socketpairs, and the wire protocol failure modes over real TCP sockets
// (malformed frames, oversized frames, truncated frames, version handshake
// mismatch, client timeouts, bounded reconnect).
//
// Port-collision safety: every TCP test binds 127.0.0.1:0 and reads the
// kernel-assigned port back via net::bound_endpoint(), so the suite is safe
// under `ctest -j` with any number of concurrent TCP tests.
#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "mps.hpp"
#include "util/common.hpp"

namespace {

using namespace mps;
using net::Deadline;
using net::Endpoint;
using net::Session;
using net::SessionLimits;

// ---------------------------------------------------------------------------
// Endpoint

TEST(NetEndpoint, ParsesUnixForms) {
  const Endpoint abs = Endpoint::parse("/tmp/mps_test.sock");
  EXPECT_EQ(abs.kind, Endpoint::Kind::Unix);
  EXPECT_EQ(abs.path, "/tmp/mps_test.sock");
  EXPECT_FALSE(abs.is_tcp());

  const Endpoint rel = Endpoint::parse("./daemon.sock");
  EXPECT_EQ(rel.kind, Endpoint::Kind::Unix);
  EXPECT_EQ(rel.path, "./daemon.sock");

  // unix: prefix claims paths with no '/' (and even ones with a colon).
  const Endpoint pfx = Endpoint::parse("unix:plain.sock");
  EXPECT_EQ(pfx.kind, Endpoint::Kind::Unix);
  EXPECT_EQ(pfx.path, "plain.sock");
}

TEST(NetEndpoint, ParsesTcpForms) {
  const Endpoint ip = Endpoint::parse("127.0.0.1:9000");
  EXPECT_EQ(ip.kind, Endpoint::Kind::Tcp);
  EXPECT_EQ(ip.host, "127.0.0.1");
  EXPECT_EQ(ip.port, 9000);

  const Endpoint named = Endpoint::parse("tcp:localhost:80");
  EXPECT_EQ(named.kind, Endpoint::Kind::Tcp);
  EXPECT_EQ(named.host, "localhost");
  EXPECT_EQ(named.port, 80);

  const Endpoint zero = Endpoint::parse("localhost:0");
  EXPECT_EQ(zero.port, 0) << "port 0 (kernel-assigned) must be accepted";
}

TEST(NetEndpoint, StrRoundTrips) {
  for (const char* text : {"/tmp/a.sock", "127.0.0.1:8080", "localhost:0"}) {
    const Endpoint ep = Endpoint::parse(text);
    const Endpoint again = Endpoint::parse(ep.str());
    EXPECT_EQ(again.kind, ep.kind) << text;
    EXPECT_EQ(again.str(), ep.str()) << text;
  }
}

TEST(NetEndpoint, RejectsMalformedText) {
  EXPECT_THROW(Endpoint::parse(""), util::Error);
  EXPECT_THROW(Endpoint::parse("host:99999"), util::Error);   // > 65535
  EXPECT_THROW(Endpoint::parse("host:notaport"), util::Error);
  EXPECT_THROW(Endpoint::parse("host:"), util::Error);
  EXPECT_THROW(Endpoint::parse(":123"), util::Error);  // empty host
  // sockaddr_un paths are length-limited (~108 bytes).
  EXPECT_THROW(Endpoint::parse("/" + std::string(200, 'x')), util::Error);
}

TEST(NetEndpoint, EphemeralPortsAreDistinctAndResolved) {
  // Two listeners on port 0: the kernel must hand out two distinct real
  // ports, and bound_endpoint() must report them (this is the helper that
  // makes parallel TCP ctests collision-free).
  const Endpoint want = Endpoint::tcp("127.0.0.1", 0);
  const int fd_a = net::listen_on(want, 4);
  const int fd_b = net::listen_on(want, 4);
  const Endpoint a = net::bound_endpoint(fd_a, want);
  const Endpoint b = net::bound_endpoint(fd_b, want);
  EXPECT_NE(a.port, 0);
  EXPECT_NE(b.port, 0);
  EXPECT_NE(a.port, b.port);
  EXPECT_EQ(a.host, "127.0.0.1");
  ::close(fd_a);
  ::close(fd_b);
}

// ---------------------------------------------------------------------------
// Sharding + worker table

TEST(NetShard, IsDeterministicAndInRange) {
  const std::string digest = "f00dfeed0123456789abcdef0123456789abcdef0123456789abcdef01234567";
  for (std::size_t n : {1u, 2u, 3u, 7u, 64u}) {
    const std::size_t s = net::shard_of(digest, n);
    EXPECT_LT(s, n);
    EXPECT_EQ(s, net::shard_of(digest, n)) << "same digest, same shard";
  }
  // The first 32 bits (8 hex chars) decide the shard, nothing after them.
  EXPECT_EQ(net::shard_of("00000005ffffffff", 4), 5u % 4u);
  EXPECT_EQ(net::shard_of("00000005deadbeef", 4), 5u % 4u);
  EXPECT_EQ(net::shard_of("0000000A00000000", 16), 10u) << "upper-case hex";
}

TEST(NetShard, PrefixesSpreadAcrossShards) {
  // SHA-256 prefixes are uniform; even a crude spread of synthetic prefixes
  // must touch every shard of a small fleet.
  std::vector<int> hits(4, 0);
  for (std::uint32_t i = 0; i < 64; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "%08x", i * 2654435761u);
    hits[net::shard_of(buf, hits.size())]++;
  }
  for (std::size_t s = 0; s < hits.size(); ++s) {
    EXPECT_GT(hits[s], 0) << "shard " << s << " never hit";
  }
}

TEST(NetShard, WorkerTablePrefersTheShardOwner) {
  net::WorkerTable table({Endpoint::tcp("127.0.0.1", 1), Endpoint::tcp("127.0.0.1", 2)},
                         {});
  // Pick digests owned by each worker.
  const std::string d0 = "00000000aaaaaaaa";  // 0 % 2 == 0
  const std::string d1 = "00000001aaaaaaaa";  // 1 % 2 == 1
  ASSERT_EQ(table.owner(d0), 0u);
  ASSERT_EQ(table.owner(d1), 1u);

  bool was_owner = false;
  EXPECT_EQ(table.pick(d0, 0, &was_owner), 0u);
  EXPECT_TRUE(was_owner);
  EXPECT_EQ(table.pick(d1, 0, &was_owner), 1u);
  EXPECT_TRUE(was_owner);
}

TEST(NetShard, PickFallsBackWhenOwnerTriedOrBackingOff) {
  net::WorkerBackoff backoff;
  backoff.base_s = 60.0;  // one failure parks the worker for the whole test
  backoff.max_s = 60.0;
  net::WorkerTable table({Endpoint::tcp("127.0.0.1", 1), Endpoint::tcp("127.0.0.1", 2)},
                         backoff);
  const std::string d0 = "00000000aaaaaaaa";  // owner: worker 0

  // Owner already tried this request -> the sibling.
  bool was_owner = true;
  EXPECT_EQ(table.pick(d0, /*tried_mask=*/1ull << 0, &was_owner), 1u);
  EXPECT_FALSE(was_owner);
  // Every worker tried -> size() (give up).
  EXPECT_EQ(table.pick(d0, 0b11, &was_owner), table.size());

  // Owner backing off -> fallback; after report_success it owns again.
  table.report_failure(0);
  EXPECT_FALSE(table.available(0));
  EXPECT_EQ(table.pick(d0, 0, &was_owner), 1u);
  EXPECT_FALSE(was_owner);
  table.report_success(0);
  EXPECT_TRUE(table.available(0));
  EXPECT_EQ(table.pick(d0, 0, &was_owner), 0u);
  EXPECT_TRUE(was_owner);
}

TEST(NetShard, PickNeverAbandonsTheLastUntriedWorker) {
  // Both workers backing off: a request with untried workers left must still
  // get one (backoff sheds load, it must not fabricate failures).
  net::WorkerBackoff backoff;
  backoff.base_s = 60.0;
  backoff.max_s = 60.0;
  net::WorkerTable table({Endpoint::tcp("127.0.0.1", 1), Endpoint::tcp("127.0.0.1", 2)},
                         backoff);
  table.report_failure(0);
  table.report_failure(1);
  bool was_owner = false;
  const std::size_t pick = table.pick("00000000aaaaaaaa", 0, &was_owner);
  EXPECT_LT(pick, table.size());
}

TEST(NetShard, BackoffExpiresAndIsBounded) {
  net::WorkerBackoff backoff;
  backoff.base_s = 0.01;
  backoff.max_s = 0.03;
  net::WorkerTable table({Endpoint::tcp("127.0.0.1", 1)}, backoff);
  for (int i = 0; i < 10; ++i) table.report_failure(0);  // streak way past the cap
  EXPECT_FALSE(table.available(0));
  // The cap bounds the wait: well within 10x max_s the worker is retryable.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_TRUE(table.available(0)) << "backoff must be capped at max_s";
  EXPECT_EQ(table.failures(0), 10);
}

TEST(NetShard, LeastLoadedBreaksFallbackTies) {
  net::WorkerTable table({Endpoint::tcp("127.0.0.1", 1), Endpoint::tcp("127.0.0.1", 2),
                          Endpoint::tcp("127.0.0.1", 3)},
                         {});
  const std::string d0 = "00000000aaaaaaaa";  // owner: worker 0
  table.begin_request(1);  // worker 1 busier than worker 2
  bool was_owner = true;
  EXPECT_EQ(table.pick(d0, /*tried_mask=*/1ull << 0, &was_owner), 2u)
      << "fallback must go to the least-loaded untried worker";
  EXPECT_FALSE(was_owner);
  table.end_request(1);
}

// ---------------------------------------------------------------------------
// Session state machine (over socketpairs: no ports, no races)

struct SessionPair {
  SessionPair(const SessionLimits& limits) {
    int sv[2];
    MPS_ASSERT(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0);
    session = std::make_shared<Session>(sv[0], limits);
    peer_fd = sv[1];
  }
  ~SessionPair() {
    if (peer_fd >= 0) ::close(peer_fd);
  }
  void peer_write(const std::string& bytes) {
    ASSERT_EQ(net::write_all(peer_fd, bytes, Deadline::after(5.0)), net::IoStatus::Ok);
  }
  void peer_close() {
    ::close(peer_fd);
    peer_fd = -1;
  }
  std::shared_ptr<Session> session;
  int peer_fd = -1;
};

TEST(NetSession, ReadsFramesAndStripsLineEndings) {
  SessionPair p({});
  p.peer_write("first\r\nsecond\n");
  std::string line;
  EXPECT_EQ(p.session->read_line(&line, Deadline::after(5.0)), Session::Read::Line);
  EXPECT_EQ(line, "first") << "CRLF must be stripped";
  EXPECT_TRUE(p.session->has_buffered_line());
  EXPECT_EQ(p.session->read_line(&line, Deadline::after(5.0)), Session::Read::Line);
  EXPECT_EQ(line, "second");
}

TEST(NetSession, RejectsOversizedCompleteFrame) {
  SessionLimits limits;
  limits.max_line_bytes = 8;
  SessionPair p(limits);
  p.peer_write(std::string(32, 'x') + "\n");  // complete frame, one chunk
  std::string line;
  EXPECT_EQ(p.session->read_line(&line, Deadline::after(5.0)), Session::Read::Oversized);
}

TEST(NetSession, RejectsOversizedStreamingFrame) {
  SessionLimits limits;
  limits.max_line_bytes = 8;
  SessionPair p(limits);
  p.peer_write(std::string(32, 'x'));  // no newline yet: reject while buffering
  std::string line;
  EXPECT_EQ(p.session->read_line(&line, Deadline::after(5.0)), Session::Read::Oversized);
}

TEST(NetSession, ReportsEofAndDropsTruncatedFrame) {
  SessionPair p({});
  p.peer_write("{\"op\":\"ping\"");  // truncated: never newline-terminated
  p.peer_close();
  std::string line;
  EXPECT_EQ(p.session->read_line(&line, Deadline::after(5.0)), Session::Read::Eof)
      << "a truncated trailing frame is dropped, not delivered";
}

TEST(NetSession, FrameTimeoutFiresOnSlowFrames) {
  SessionLimits limits;
  limits.frame_timeout_s = 0.05;  // slow-loris guard
  SessionPair p(limits);
  p.peer_write("stall");  // frame starts, never completes
  std::string line;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(p.session->read_line(&line, Deadline::after(10.0)), Session::Read::FrameTimeout);
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_LT(waited, 5.0) << "frame timeout must beat the idle budget";
}

TEST(NetSession, IdleWhenNoFrameInProgress) {
  SessionPair p({});
  std::string line;
  EXPECT_EQ(p.session->read_line(&line, Deadline::after(0.05)), Session::Read::Idle)
      << "silence with no frame under way is idleness, not a timeout error";
}

TEST(NetSession, StateMachineIsForwardOnly) {
  SessionPair p({});
  EXPECT_EQ(p.session->state(), net::SessionState::Handshake);
  p.session->advance(net::SessionState::Streaming);
  EXPECT_EQ(p.session->state(), net::SessionState::Streaming);
  p.session->advance(net::SessionState::Handshake);  // backwards: ignored
  EXPECT_EQ(p.session->state(), net::SessionState::Streaming);
  p.session->advance(net::SessionState::Draining);
  EXPECT_EQ(p.session->state(), net::SessionState::Draining);
  EXPECT_STREQ(net::session_state_name(p.session->state()), "draining");
}

TEST(NetSession, WriteLineAppendsNewline) {
  SessionPair p({});
  ASSERT_EQ(p.session->write_line("{\"ok\":true}"), net::IoStatus::Ok);
  std::string got;
  ASSERT_EQ(net::read_chunk(p.peer_fd, &got, Deadline::after(5.0)), net::IoStatus::Ok);
  EXPECT_EQ(got, "{\"ok\":true}\n");
}

// ---------------------------------------------------------------------------
// Protocol failure modes over a real TCP server

struct TcpServer {
  explicit TcpServer(svc::ServerOptions opts) : server(patch(std::move(opts))) {
    server.start();
    thread = std::thread([this] { server.run(); });
  }
  ~TcpServer() {
    server.request_drain();
    if (thread.joinable()) thread.join();
  }
  static svc::ServerOptions patch(svc::ServerOptions opts) {
    opts.listen = "127.0.0.1:0";
    if (opts.service.sched.num_threads == 0) opts.service.sched.num_threads = 1;
    return opts;
  }
  std::string address() const { return server.bound_endpoint().str(); }

  svc::Server server;
  std::thread thread;
};

/// One raw NDJSON round-trip on a pre-connected fd (for frames svc::Client
/// refuses to send).
std::string raw_roundtrip(int fd, const std::string& line) {
  if (net::write_all(fd, line + "\n", Deadline::after(5.0)) != net::IoStatus::Ok) {
    return "";
  }
  std::string buf;
  while (buf.find('\n') == std::string::npos) {
    if (net::read_chunk(fd, &buf, Deadline::after(10.0)) != net::IoStatus::Ok) return "";
  }
  return buf.substr(0, buf.find('\n'));
}

TEST(NetProtocol, VersionHandshakeAcceptsAndRejects) {
  TcpServer ts({});
  // A matching handshake succeeds (Client sends it when asked to).
  svc::ClientOptions copts;
  copts.handshake = true;
  svc::Client client(ts.address(), copts);
  const svc::Json ok = client.version();
  EXPECT_TRUE(ok.get_bool("ok", false));
  EXPECT_EQ(ok.get_int("protocol", -1), svc::kProtocolVersion);

  // A mismatched version gets kind:"version" plus the server's version, so
  // the client can say what it wanted vs what the server speaks.
  const int fd = net::connect_to(ts.server.bound_endpoint(), 5.0);
  ASSERT_GE(fd, 0);
  const std::string resp = raw_roundtrip(fd, "{\"op\":\"version\",\"protocol\":99}");
  const svc::Json j = svc::Json::parse(resp);
  EXPECT_FALSE(j.get_bool("ok", true));
  EXPECT_EQ(j.get_string("kind", ""), "version");
  EXPECT_EQ(j.get_int("protocol", -1), svc::kProtocolVersion);
  ::close(fd);
}

TEST(NetProtocol, MalformedFrameAnswersErrorAndKeepsConnection) {
  TcpServer ts({});
  const int fd = net::connect_to(ts.server.bound_endpoint(), 5.0);
  ASSERT_GE(fd, 0);
  const std::string resp = raw_roundtrip(fd, "this is not json");
  const svc::Json j = svc::Json::parse(resp);
  EXPECT_FALSE(j.get_bool("ok", true));
  // Unparseable JSON is a bad *request* (kind "parse" is reserved for a
  // well-formed request whose .g spec fails to parse).
  EXPECT_EQ(j.get_string("kind", ""), "bad_request");
  // The connection survives one bad frame: a valid ping still answers.
  const std::string pong = raw_roundtrip(fd, "{\"op\":\"ping\"}");
  EXPECT_TRUE(svc::Json::parse(pong).get_bool("ok", false));
  ::close(fd);
}

TEST(NetProtocol, OversizedFrameIsRejectedWithJsonErrorThenClosed) {
  svc::ServerOptions opts;
  opts.max_line_bytes = 1024;
  TcpServer ts(opts);
  const int fd = net::connect_to(ts.server.bound_endpoint(), 5.0);
  ASSERT_GE(fd, 0);
  const std::string resp = raw_roundtrip(fd, std::string(4096, 'x'));
  const svc::Json j = svc::Json::parse(resp);
  EXPECT_FALSE(j.get_bool("ok", true));
  EXPECT_EQ(j.get_string("kind", ""), "bad_request");
  EXPECT_NE(j.get_string("error", "").find("exceeds"), std::string::npos) << resp;
  // A peer that floods past the cap is disconnected (we cannot resync a
  // stream whose frame we discarded mid-line).  EOF or reset both qualify —
  // closing with unread bytes in the kernel buffer may RST.
  std::string rest;
  net::IoStatus st = net::read_chunk(fd, &rest, Deadline::after(5.0));
  while (st == net::IoStatus::Ok) st = net::read_chunk(fd, &rest, Deadline::after(5.0));
  EXPECT_TRUE(st == net::IoStatus::Eof || st == net::IoStatus::Error)
      << "connection must be terminated after an oversized frame";
  ::close(fd);
}

TEST(NetProtocol, TruncatedFrameDoesNotWedgeTheServer) {
  TcpServer ts({});
  {
    // Connect, send half a frame, vanish.
    const int fd = net::connect_to(ts.server.bound_endpoint(), 5.0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(net::write_all(fd, "{\"op\":\"pi", Deadline::after(5.0)), net::IoStatus::Ok);
    ::close(fd);
  }
  // The server must shrug it off and keep serving new connections.
  svc::Client client(ts.address());
  EXPECT_TRUE(client.ping().get_bool("ok", false));
}

TEST(NetProtocol, ClientRequestTimesOutAgainstSilentPeer) {
  // A listener that never accepts: connect lands in the backlog (succeeds at
  // TCP level) but no response ever comes.  The per-request io timeout must
  // turn that into a clean error instead of a hung recv.
  const Endpoint want = Endpoint::tcp("127.0.0.1", 0);
  const int listen_fd = net::listen_on(want, 4);
  const Endpoint ep = net::bound_endpoint(listen_fd, want);

  svc::ClientOptions copts;
  copts.io_timeout_s = 0.2;
  svc::Client client(ep, copts);
  const auto t0 = std::chrono::steady_clock::now();
  try {
    client.ping();
    FAIL() << "ping against a silent peer must throw";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("no response"), std::string::npos) << e.what();
  }
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_LT(waited, 5.0) << "timeout must be bounded by io_timeout_s, not hang";
  ::close(listen_fd);
}

TEST(NetProtocol, ConnectRetriesAreBoundedAndReported) {
  // Port 1 on loopback: virtually guaranteed closed -> instant refusals.
  svc::ClientOptions copts;
  copts.connect_attempts = 3;
  copts.connect_timeout_s = 1.0;
  copts.backoff_s = 0.01;
  copts.backoff_max_s = 0.02;
  try {
    svc::Client client(Endpoint::tcp("127.0.0.1", 1), copts);
    FAIL() << "connect to a closed port must throw";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("after 3 attempt"), std::string::npos)
        << e.what();
  }
}

TEST(NetProtocol, ServerCountsNetTraffic) {
  // Counters only record while the obs layer is on (mps_serve enables it
  // under --stats-json; tests enable it explicitly).
  obs::set_enabled(true);
  TcpServer ts({});
  svc::Client client(ts.address());
  ASSERT_TRUE(client.ping().get_bool("ok", false));
  const svc::Json stats = client.stats();
  const svc::Json* counters = stats.find("counters");
  ASSERT_NE(counters, nullptr) << stats.dump();
  EXPECT_GE(counters->get_int("net.accepted", -1), 1) << stats.dump();
  EXPECT_GE(counters->get_int("net.requests", -1), 1) << stats.dump();
  // Counters are process-global (other tests in this binary may have
  // tripped the oversized path already) — presence, not a fixed value.
  EXPECT_GE(counters->get_int("net.oversized", -1), 0) << stats.dump();
  obs::set_enabled(false);
}

}  // namespace

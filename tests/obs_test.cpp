#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "core/synthesis.hpp"
#include "encoding/csc_sat.hpp"
#include "sat/solver.hpp"
#include "sg/state_graph.hpp"
#include "stg/builder.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace mps;

/// Every test leaves the process-wide sink disabled and empty: other suites
/// in this binary (solver, synthesis) run instrumented code and must not
/// see stray recording costs or inherit this suite's events.
class Obs : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(false);
    obs::reset();
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::reset();
  }
};

stg::Stg toggle_stg() {
  return stg::Builder("toggle")
      .outputs({"x", "y"})
      .path("x+", "x-", "y+", "y-")
      .arc("y-", "x+")
      .token("y-", "x+")
      .build();
}

TEST_F(Obs, DisabledRecordsNothing) {
  ASSERT_FALSE(obs::enabled());
  {
    obs::Span span("test.disabled");
    span.arg("k", 1);
    EXPECT_FALSE(span.active());
  }
  obs::counter_add("test.counter", 5);
  EXPECT_EQ(obs::num_events(), 0u);
  EXPECT_EQ(obs::counter_value("test.counter"), 0);
}

TEST_F(Obs, SpanAndCounterAppearWhenEnabled) {
  obs::set_enabled(true);
  obs::set_thread_name("obs-test");
  {
    obs::Span span("test.span", "detail-string");
    span.arg("answer", 42);
    EXPECT_TRUE(span.active());
  }
  obs::counter_add("test.counter", 3);
  obs::counter_add("test.counter", 4);
  EXPECT_EQ(obs::num_events(), 1u);
  EXPECT_EQ(obs::counter_value("test.counter"), 7);

  const std::string trace = obs::chrome_trace_json();
  EXPECT_NE(trace.find("\"test.span\""), std::string::npos);
  EXPECT_NE(trace.find("detail-string"), std::string::npos);
  EXPECT_NE(trace.find("\"answer\""), std::string::npos);
  EXPECT_NE(trace.find("\"obs-test\""), std::string::npos);  // lane metadata
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);

  const std::string stats = obs::stats_json();
  EXPECT_NE(stats.find("\"test.span\""), std::string::npos);
  EXPECT_NE(stats.find("\"test.counter\": 7"), std::string::npos);
}

TEST_F(Obs, ResetDropsEventsAndCounters) {
  obs::set_enabled(true);
  { obs::Span span("test.reset"); }
  obs::counter_add("test.reset", 1);
  ASSERT_GE(obs::num_events(), 1u);
  obs::reset();
  EXPECT_EQ(obs::num_events(), 0u);
  EXPECT_EQ(obs::counter_value("test.reset"), 0);
}

TEST_F(Obs, SolverEmitsSpanAndCounters) {
  obs::set_enabled(true);
  const auto g = sg::StateGraph::from_stg(toggle_stg());
  const auto enc = encoding::encode_csc(g, 1);
  sat::Model model;
  sat::SolveStats stats;
  ASSERT_EQ(sat::Solver().solve(enc.cnf(), &model, &stats), sat::Outcome::Sat);
  EXPECT_EQ(obs::counter_value("sat.solves"), 1);
  EXPECT_EQ(obs::counter_value("sat.decisions"), stats.decisions);
  EXPECT_EQ(obs::counter_value("sat.propagations"), stats.propagations);
  EXPECT_EQ(obs::counter_value("sat.conflicts"), stats.conflicts);
  const std::string trace = obs::chrome_trace_json();
  EXPECT_NE(trace.find("\"sat.solve\""), std::string::npos);
  EXPECT_NE(trace.find("\"outcome\""), std::string::npos);
}

TEST_F(Obs, SynthesisEmitsModuleAndWaveSpans) {
  obs::set_enabled(true);
  const auto r = core::modular_synthesis(sg::StateGraph::from_stg(toggle_stg()));
  ASSERT_TRUE(r.success) << r.failure_reason;
  const std::string trace = obs::chrome_trace_json();
  EXPECT_NE(trace.find("\"synth.modular\""), std::string::npos);
  EXPECT_NE(trace.find("\"synth.wave\""), std::string::npos);
  EXPECT_NE(trace.find("\"synth.module\""), std::string::npos);
  EXPECT_NE(trace.find("\"sg.infer_codes\""), std::string::npos);
  EXPECT_NE(trace.find("\"sg.analyze_csc\""), std::string::npos);
  // The totals surfaced on the result are the same numbers the counters saw
  // for adopted modules; counters additionally include cancelled/speculative
  // work, so they can only be >=.
  EXPECT_GE(obs::counter_value("sat.decisions"), r.solver_totals.decisions);
}

TEST_F(Obs, PoolTasksGetSpansAndWorkerLanes) {
  obs::set_enabled(true);
  std::atomic<int> count{0};
  {
    util::ThreadPool pool(3);
    pool.parallel_for(16, [&](std::size_t) { count.fetch_add(1); });
  }  // joining the workers guarantees their startup lane registration ran
  EXPECT_EQ(count.load(), 16);
  const std::string trace = obs::chrome_trace_json();
  EXPECT_NE(trace.find("\"pool.task\""), std::string::npos);
  // Workers register lanes on startup even if the caller drained every
  // index before they were scheduled (single-core machines).
  EXPECT_NE(trace.find("\"worker-"), std::string::npos);
}

}  // namespace

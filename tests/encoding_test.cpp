#include <gtest/gtest.h>

#include "encoding/csc_sat.hpp"
#include "sat/solver.hpp"
#include "sg/csc.hpp"
#include "sg/expand.hpp"
#include "sg/state_graph.hpp"
#include "stg/builder.hpp"

namespace {

using namespace mps;
using sg::V4;

stg::Stg toggle_stg() {
  return stg::Builder("toggle")
      .outputs({"x", "y"})
      .path("x+", "x-", "y+", "y-")
      .arc("y-", "x+")
      .token("y-", "x+")
      .build();
}

/// Decode a model into assignments for easier checking.
sg::Assignments decode(const encoding::Encoding& enc, const sat::Model& model,
                       std::size_t num_states) {
  sg::Assignments a(num_states);
  enc.decode(model, &a, "n");
  return a;
}

TEST(Encoding, VariableLayoutIsTwoPerStatePerSignal) {
  const auto g = sg::StateGraph::from_stg(toggle_stg());
  const auto analysis = sg::analyze_csc(g);
  const encoding::Encoding enc(g, 2, analysis.conflicts, analysis.compatible_pairs);
  EXPECT_EQ(enc.num_core_vars(), 2 * g.num_states() * 2);
  EXPECT_EQ(enc.var_a(1, 0), 4u);
  EXPECT_EQ(enc.var_b(1, 0), 5u);
  EXPECT_EQ(enc.var_a(0, 1), 2u);
  // Auxiliaries (if any) come after the core block.
  EXPECT_GE(enc.cnf().num_vars(), enc.num_core_vars());
}

TEST(Encoding, ToggleSolvableWithOneSignal) {
  const auto g = sg::StateGraph::from_stg(toggle_stg());
  const auto analysis = sg::analyze_csc(g);
  ASSERT_EQ(analysis.conflicts.size(), 1u);
  const encoding::Encoding enc(g, 1, analysis.conflicts, analysis.compatible_pairs);
  sat::Model model;
  ASSERT_EQ(sat::Solver().solve(enc.cnf(), &model), sat::Outcome::Sat);

  const auto assigns = decode(enc, model, g.num_states());
  // The decoded assignment separates the conflict and is edge-coherent.
  const auto [s1, s2] = analysis.conflicts[0];
  EXPECT_TRUE(sg::separates(assigns.value(0, s1), assigns.value(0, s2)));
  EXPECT_FALSE(assigns.check_coherence(g).has_value());
}

TEST(Encoding, SolutionsSurviveExpansionCscCheck) {
  const auto g = sg::StateGraph::from_stg(toggle_stg());
  const auto analysis = sg::analyze_csc(g);
  const encoding::Encoding enc(g, 1, analysis.conflicts, analysis.compatible_pairs);
  sat::Model model;
  ASSERT_EQ(sat::Solver().solve(enc.cnf(), &model), sat::Outcome::Sat);
  const auto assigns = decode(enc, model, g.num_states());
  const auto ex = sg::expand(g, assigns);
  EXPECT_TRUE(sg::analyze_csc(ex.graph).satisfied());
  EXPECT_TRUE(sg::semi_modularity_violations(ex.graph).empty());
}

TEST(Encoding, AdjacentStatesCannotBeSeparated) {
  // Separation needs stable complementary values, but coherence along the
  // connecting edge forbids (0,1): a formula demanding it is UNSAT.
  const auto g = sg::StateGraph::from_stg(toggle_stg());
  std::vector<std::pair<sg::StateId, sg::StateId>> fake = {{0, 1}};  // adjacent
  const encoding::Encoding enc(g, 1, fake, {});
  EXPECT_EQ(sat::Solver().solve(enc.cnf()), sat::Outcome::Unsat);
}

TEST(Encoding, InputPropernessRestrictsSolutions) {
  // Handshake-gated pulse: with input properness the inserted transition
  // cannot hide inside the input edges, removing some solutions.
  const auto stg = stg::Builder("prop")
                       .inputs({"r"})
                       .outputs({"x"})
                       .path("r+", "x+", "x-", "x+/1", "x-/1", "r-")
                       .arc("r-", "r+")
                       .token("r-", "r+")
                       .build();
  const auto g = sg::StateGraph::from_stg(stg);
  const auto analysis = sg::analyze_csc(g);
  ASSERT_FALSE(analysis.conflicts.empty());

  encoding::EncodeOptions strict;
  strict.input_properness = true;
  encoding::EncodeOptions loose;
  loose.input_properness = false;
  const encoding::Encoding enc_strict(g, 1, analysis.conflicts, analysis.compatible_pairs,
                                      strict);
  const encoding::Encoding enc_loose(g, 1, analysis.conflicts, analysis.compatible_pairs,
                                     loose);
  EXPECT_GT(enc_strict.cnf().num_clauses(), enc_loose.cnf().num_clauses());
  // Strictness is monotone: any strict model also satisfies the loose CNF.
  sat::Model model;
  if (sat::Solver().solve(enc_strict.cnf(), &model) == sat::Outcome::Sat) {
    sat::Model trimmed(model.begin(), model.begin() + enc_loose.cnf().num_vars());
    EXPECT_TRUE(enc_loose.cnf().satisfied_by(model));
  }
}

TEST(Encoding, NaiveSeparationClauseCountGrowsGeometrically) {
  const auto g = sg::StateGraph::from_stg(toggle_stg());
  const auto analysis = sg::analyze_csc(g);
  // Force naive expansion at every m and measure the per-pair cost: 4^m.
  encoding::EncodeOptions opts;
  opts.naive_max_m = 10;
  std::size_t prev_total = 0;
  std::size_t prev_sep = 0;
  for (std::size_t m = 1; m <= 3; ++m) {
    const encoding::Encoding with(g, m, analysis.conflicts, {}, opts);
    const encoding::Encoding without(g, m, {}, {}, opts);
    const std::size_t sep = with.cnf().num_clauses() - without.cnf().num_clauses();
    if (m > 1) {
      EXPECT_EQ(sep, 4 * prev_sep) << "m=" << m;
      EXPECT_GT(with.cnf().num_clauses(), prev_total);
    } else {
      EXPECT_EQ(sep, 4u);  // 4 clauses for one pair at m=1
    }
    prev_sep = sep;
    prev_total = with.cnf().num_clauses();
  }
}

TEST(Encoding, TseitinKeepsClauseCountLinear) {
  const auto g = sg::StateGraph::from_stg(toggle_stg());
  const auto analysis = sg::analyze_csc(g);
  encoding::EncodeOptions opts;
  opts.naive_max_m = 0;  // always Tseitin
  const encoding::Encoding e1(g, 1, analysis.conflicts, {}, opts);
  const encoding::Encoding e4(g, 4, analysis.conflicts, {}, opts);
  const encoding::Encoding e1n(g, 1, {}, {}, opts);
  const encoding::Encoding e4n(g, 4, {}, {}, opts);
  const std::size_t sep1 = e1.cnf().num_clauses() - e1n.cnf().num_clauses();
  const std::size_t sep4 = e4.cnf().num_clauses() - e4n.cnf().num_clauses();
  EXPECT_EQ(sep1, 4u + 1u);       // 4 defining clauses + 1 disjunction
  EXPECT_EQ(sep4, 4u * 4u + 1u);  // linear in m
  // And Tseitin solutions are real solutions.
  sat::Model model;
  ASSERT_EQ(sat::Solver().solve(e4.cnf(), &model), sat::Outcome::Sat);
  const auto assigns = decode(e4, model, g.num_states());
  const auto [s1, s2] = analysis.conflicts[0];
  bool separated = false;
  for (std::size_t k = 0; k < assigns.num_signals(); ++k) {
    separated |= sg::separates(assigns.value(k, s1), assigns.value(k, s2));
  }
  EXPECT_TRUE(separated);
}

TEST(Encoding, CompatibilityPreventsFreshConflicts) {
  // Two x-pulses: idle states are compatible pairs.  Any solution must not
  // leave them with mismatched excitation unless fully separated.
  const auto stg = stg::Builder("pp")
                       .inputs({"a"})
                       .outputs({"x"})
                       .path("a+", "x+", "x-", "x+/1", "x-/1", "a-")
                       .arc("a-", "a+")
                       .token("a-", "a+")
                       .build();
  const auto g = sg::StateGraph::from_stg(stg);
  const auto analysis = sg::analyze_csc(g);
  ASSERT_FALSE(analysis.compatible_pairs.empty());
  for (std::size_t m = 1; m <= 3; ++m) {
    const encoding::Encoding enc(g, m, analysis.conflicts, analysis.compatible_pairs);
    sat::Model model;
    if (sat::Solver().solve(enc.cnf(), &model) != sat::Outcome::Sat) continue;
    const auto assigns = decode(enc, model, g.num_states());
    const auto ex = sg::expand(g, assigns);
    EXPECT_TRUE(sg::analyze_csc(ex.graph).satisfied()) << "m=" << m;
    return;
  }
  FAIL() << "no m in 1..3 solved the double-pulse instance";
}

TEST(Encoding, DiamondConstraintsPreserveSemiModularity) {
  // A concurrent fork: solutions must not let the inserted signal disable
  // a concurrent transition.
  const auto stg = stg::Builder("fork")
                       .inputs({"a"})
                       .outputs({"b", "c"})
                       .arc("a+", "b+")
                       .arc("a+", "c+")
                       .path("b+", "b-")
                       .path("c+", "c-")
                       .arc("b-", "a-")
                       .arc("c-", "a-")
                       .arc("a-", "a+")
                       .token("a-", "a+")
                       .build();
  const auto g = sg::StateGraph::from_stg(stg);
  ASSERT_TRUE(sg::semi_modularity_violations(g).empty());
  const auto analysis = sg::analyze_csc(g);
  ASSERT_FALSE(analysis.conflicts.empty());
  for (std::size_t m = 1; m <= 3; ++m) {
    const encoding::Encoding enc(g, m, analysis.conflicts, analysis.compatible_pairs);
    sat::Model model;
    if (sat::Solver().solve(enc.cnf(), &model) != sat::Outcome::Sat) continue;
    const auto assigns = decode(enc, model, g.num_states());
    const auto ex = sg::expand(g, assigns);
    EXPECT_TRUE(sg::semi_modularity_violations(ex.graph).empty()) << "m=" << m;
    return;
  }
  FAIL() << "no m in 1..3 solved the fork instance";
}

TEST(Encoding, EnforceUscSeparatesEverything) {
  const auto g = sg::StateGraph::from_stg(toggle_stg());
  const auto analysis = sg::analyze_csc(g);
  encoding::EncodeOptions opts;
  opts.enforce_usc = true;
  const encoding::Encoding enc(g, 1, analysis.conflicts, {}, opts);
  sat::Model model;
  if (sat::Solver().solve(enc.cnf(), &model) == sat::Outcome::Sat) {
    const auto assigns = decode(enc, model, g.num_states());
    const auto ex = sg::expand(g, assigns);
    // Unique codes everywhere (USC) implies max class size 1.
    EXPECT_EQ(sg::analyze_csc(ex.graph).max_class_size, 1u);
  }
}

TEST(Encoding, EncodeCscConvenienceMatchesManual) {
  const auto g = sg::StateGraph::from_stg(toggle_stg());
  const auto analysis = sg::analyze_csc(g);
  const auto a = encoding::encode_csc(g, 1);
  const encoding::Encoding b(g, 1, analysis.conflicts, analysis.compatible_pairs);
  EXPECT_EQ(a.cnf().num_clauses(), b.cnf().num_clauses());
  EXPECT_EQ(a.cnf().num_vars(), b.cnf().num_vars());
}

}  // namespace

// Cross-check suites: independent implementations must agree —
// SAT vs BDD on satisfiability, espresso-style vs exact minimization vs
// BDD equivalence, state-graph CSC analysis vs its BDD formulation, and
// the three synthesis methods on end-state invariants.
#include <gtest/gtest.h>

#include "baseline/vanbekbergen.hpp"
#include "bdd/csc_bdd.hpp"
#include "bdd/symbolic.hpp"
#include "benchmarks/benchmarks.hpp"
#include "benchmarks/generators.hpp"
#include "core/synthesis.hpp"
#include "logic/extract.hpp"
#include "sat/solver.hpp"
#include "sg/csc.hpp"

namespace {

using namespace mps;

class SatVsBddOnCscFormulas : public ::testing::TestWithParam<const char*> {};

TEST_P(SatVsBddOnCscFormulas, SameSatisfiability) {
  const auto g = sg::StateGraph::from_stg(benchmarks::find_benchmark(GetParam())->make());
  const auto analysis = sg::analyze_csc(g);
  for (std::size_t m = 1; m <= 2; ++m) {
    const encoding::Encoding enc(g, m, analysis.conflicts, analysis.compatible_pairs);
    sat::Model model;
    sat::SolveOptions opts;
    opts.max_backtracks = 500000;
    const auto dpll = sat::Solver().solve(enc.cnf(), &model, nullptr, opts);
    if (dpll == sat::Outcome::Limit) continue;
    try {
      const auto bdd_model = bdd::solve_cnf_bdd(enc.cnf(), 500000);
      EXPECT_EQ(bdd_model.has_value(), dpll == sat::Outcome::Sat)
          << GetParam() << " m=" << m;
    } catch (const util::LimitError&) {
      // BDD blow-up: nothing to compare.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallBenchmarks, SatVsBddOnCscFormulas,
                         ::testing::Values("vbe-ex1", "vbe-ex2", "nousc-ser", "nouse",
                                           "sendr-done", "sbuf-read-ctl", "wrdata",
                                           "fifo", "pa", "atod"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(CscAnalysisVsBdd, AgreeOnSpecsAndSynthesisFixesThem) {
  for (const char* name : {"vbe-ex1", "nouse", "atod", "alloc-outbound", "mmu1"}) {
    const stg::Stg spec = benchmarks::find_benchmark(name)->make();
    const auto g = sg::StateGraph::from_stg(spec);
    // Spec-side: the symbolic engine (which never enumerates) against the
    // explicit token-game analysis.
    bdd::SymbolicStg sym(spec);
    EXPECT_EQ(sym.check_csc().holds, sg::analyze_csc(g).satisfied()) << name;
    EXPECT_DOUBLE_EQ(sym.num_states(), static_cast<double>(g.num_states())) << name;
    // Post-synthesis graphs have no STG to compile, so the explicit
    // analysis alone pins that synthesis actually established CSC.
    const auto r = core::modular_synthesis(g);
    ASSERT_TRUE(r.success) << name;
    EXPECT_TRUE(sg::analyze_csc(r.final_graph).satisfied()) << name;
  }
}

TEST(MinimizerVsBdd, EveryCoverEquivalentToItsSpec) {
  util::Rng rng(20260706);
  for (int trial = 0; trial < 10; ++trial) {
    benchmarks::RandomStgOptions opts;
    opts.num_signals = 5;
    const auto g = sg::StateGraph::from_stg(benchmarks::random_stg(rng, opts));
    const auto r = core::modular_synthesis(g);
    if (!r.success) continue;
    bdd::Manager mgr(r.final_graph.num_signals());
    for (const auto& [name, cover] : r.covers) {
      const auto sig = r.final_graph.find_signal(name);
      const auto spec = logic::extract_next_state(r.final_graph, sig);
      EXPECT_TRUE(bdd::cover_matches_spec(mgr, spec, cover)) << name << " trial " << trial;
    }
  }
}

TEST(ModularVsDirect, FinalGraphsImplementTheSameFunctionsWhenSignalsMatch) {
  // When both methods insert the same signal count, the original outputs'
  // functions restricted to the original signals must agree on reachable
  // original codes (the inserted signals differ, the visible behaviour
  // must not).
  for (const char* name : {"vbe-ex1", "vbe-ex2", "nouse"}) {
    const auto g = sg::StateGraph::from_stg(benchmarks::find_benchmark(name)->make());
    const auto m = core::modular_synthesis(g);
    const auto v = baseline::direct_synthesis(g);
    ASSERT_TRUE(m.success && v.success) << name;
    if (m.final_signals != v.final_signals) continue;
    // Same state count and literal totals on these symmetric examples.
    EXPECT_EQ(m.total_literals, v.total_literals) << name;
  }
}

TEST(ExactVsHeuristicOnSynthesizedFunctions, ExactNeverWorse) {
  const auto g = sg::StateGraph::from_stg(benchmarks::find_benchmark("atod")->make());
  const auto r = core::modular_synthesis(g);
  ASSERT_TRUE(r.success);
  for (sg::SignalId s = 0; s < r.final_graph.num_signals(); ++s) {
    if (r.final_graph.is_input(s)) continue;
    const auto spec = logic::extract_next_state(r.final_graph, s);
    if (spec.num_vars > 12) continue;
    const auto heur = logic::heuristic_minimize(spec);
    const auto exact = logic::exact_minimize(spec);
    if (exact.has_value()) {
      EXPECT_LE(exact->literal_count(), heur.literal_count())
          << r.final_graph.signal(s).name;
    }
  }
}

}  // namespace

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "benchmarks/generators.hpp"
#include "petri/analysis.hpp"
#include "sg/csc.hpp"
#include "sg/state_graph.hpp"

namespace {

using namespace mps;

TEST(Suite, HasAll23Table1Rows) {
  const auto& all = benchmarks::table1_benchmarks();
  EXPECT_EQ(all.size(), 23u);
  for (const char* name :
       {"mr0", "mr1", "mmu0", "mmu1", "sbuf-ram-write", "vbe4a", "nak-pa",
        "pe-rcv-ifc-fc", "ram-read-sbuf", "alex-nonfc", "sbuf-send-pkt2",
        "sbuf-send-ctl", "atod", "pa", "alloc-outbound", "wrdata", "fifo",
        "sbuf-read-ctl", "nouse", "vbe-ex2", "nousc-ser", "sendr-done", "vbe-ex1"}) {
    EXPECT_NE(benchmarks::find_benchmark(name), nullptr) << name;
  }
  EXPECT_EQ(benchmarks::find_benchmark("not-a-benchmark"), nullptr);
}

TEST(Suite, SignalCountsMatchThePaperExactly) {
  for (const auto& b : benchmarks::table1_benchmarks()) {
    const auto stg = b.make();
    EXPECT_EQ(static_cast<int>(stg.num_signals()), b.paper.initial_signals) << b.name;
  }
}

TEST(Suite, StateCountsLandNearThePaper) {
  // The original HP/SIS nets are not redistributable (DESIGN.md §2); the
  // re-authored STGs must land in the same state-count regime: within 35%
  // or ±6 states of the published initial counts.
  for (const auto& b : benchmarks::table1_benchmarks()) {
    const auto g = sg::StateGraph::from_stg(b.make());
    const double paper = b.paper.initial_states;
    const double ours = static_cast<double>(g.num_states());
    EXPECT_LE(std::abs(ours - paper), std::max(0.35 * paper, 6.0))
        << b.name << ": ours " << ours << " vs paper " << paper;
  }
}

TEST(Suite, AllBenchmarksAreLiveSafeAndConsistent) {
  for (const auto& b : benchmarks::table1_benchmarks()) {
    const auto stg = b.make();
    ASSERT_NO_THROW(stg.validate()) << b.name;
    const auto reach = petri::reachability(stg.net(), stg.initial_marking());
    EXPECT_TRUE(reach.complete) << b.name;
    EXPECT_TRUE(reach.safe) << b.name;
    EXPECT_TRUE(petri::is_live(stg.net(), reach)) << b.name;
    // Consistent state assignment exists (from_stg throws otherwise).
    EXPECT_NO_THROW(sg::StateGraph::from_stg(stg)) << b.name;
  }
}

TEST(Suite, AlexNonFcIsTheOnlyNonFreeChoiceEntry) {
  for (const auto& b : benchmarks::table1_benchmarks()) {
    const bool fc = petri::is_free_choice(b.make().net());
    if (b.name == "alex-nonfc") {
      EXPECT_FALSE(fc) << "alex-nonfc must be non-free-choice";
    } else {
      EXPECT_TRUE(fc) << b.name;
    }
  }
}

TEST(Suite, PaperRowsCarryTable1Data) {
  const auto* mr0 = benchmarks::find_benchmark("mr0");
  ASSERT_NE(mr0, nullptr);
  EXPECT_EQ(mr0->paper.initial_states, 302);
  EXPECT_TRUE(mr0->paper.v_limit);
  EXPECT_EQ(mr0->paper.l_area, 86);
  const auto* vbe = benchmarks::find_benchmark("vbe-ex1");
  EXPECT_EQ(vbe->paper.m_area, 7);
  EXPECT_EQ(vbe->paper.m_final_signals, 3);
  const auto* mmu0 = benchmarks::find_benchmark("mmu0");
  EXPECT_STREQ(mmu0->paper.l_note, "Internal State Error");
}

// --- generators ----------------------------------------------------------

TEST(Generators, ParallelizerScalesStates) {
  const auto g1 = sg::StateGraph::from_stg(benchmarks::gen_parallelizer("p1", 1));
  const auto g2 = sg::StateGraph::from_stg(benchmarks::gen_parallelizer("p2", 2));
  const auto g3 = sg::StateGraph::from_stg(benchmarks::gen_parallelizer("p3", 3));
  EXPECT_LT(g1.num_states(), g2.num_states());
  EXPECT_LT(g2.num_states(), g3.num_states());
  // Channels are 5-position chains: the par region multiplies.
  EXPECT_GE(g3.num_states(), 125u);
}

TEST(Generators, SequencerIsLinear) {
  const auto g2 = sg::StateGraph::from_stg(benchmarks::gen_sequencer("s2", 2));
  const auto g4 = sg::StateGraph::from_stg(benchmarks::gen_sequencer("s4", 4));
  EXPECT_EQ(g4.num_states() - g2.num_states(), 8u);  // 4 transitions per stage
}

TEST(Generators, SequencerHasConflicts) {
  const auto g = sg::StateGraph::from_stg(benchmarks::gen_sequencer("s3", 3));
  EXPECT_FALSE(sg::analyze_csc(g).satisfied());
}

TEST(Generators, PipelineAndToggleRing) {
  const auto p = sg::StateGraph::from_stg(benchmarks::gen_pipeline("pl", 3));
  EXPECT_GT(p.num_states(), 8u);
  const auto t = sg::StateGraph::from_stg(benchmarks::gen_toggle_ring("tr", 3));
  EXPECT_EQ(t.num_states(), 6u);
  EXPECT_FALSE(sg::analyze_csc(t).satisfied());
}

TEST(Generators, RandomStgsAreWellFormed) {
  mps::util::Rng rng(314159);
  for (int i = 0; i < 25; ++i) {
    benchmarks::RandomStgOptions opts;
    opts.num_signals = 4 + static_cast<int>(rng.below(5));
    const auto stg = benchmarks::random_stg(rng, opts);
    ASSERT_NO_THROW(stg.validate()) << "seed iteration " << i;
    const auto reach = petri::reachability(stg.net(), stg.initial_marking());
    EXPECT_TRUE(reach.safe) << i;
    EXPECT_TRUE(reach.complete) << i;
    EXPECT_NO_THROW(sg::StateGraph::from_stg(stg)) << i;
  }
}

TEST(Generators, RandomStgsAreDeterministicPerSeed) {
  mps::util::Rng rng1(7);
  mps::util::Rng rng2(7);
  const auto a = benchmarks::random_stg(rng1);
  const auto b = benchmarks::random_stg(rng2);
  EXPECT_EQ(a.num_signals(), b.num_signals());
  EXPECT_EQ(a.net().num_transitions(), b.net().num_transitions());
}

}  // namespace

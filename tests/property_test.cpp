// Property-based suites (parameterized over seeds): invariants that must
// hold on *every* well-formed STG, exercised on randomly generated ones.
#include <gtest/gtest.h>

#include "benchmarks/generators.hpp"
#include "core/synthesis.hpp"
#include "encoding/csc_sat.hpp"
#include "logic/extract.hpp"
#include "logic/minimize.hpp"
#include "sat/solver.hpp"
#include "sg/csc.hpp"
#include "sg/expand.hpp"
#include "sg/projection.hpp"
#include "sg/state_graph.hpp"
#include "stg/parser.hpp"
#include "stg/writer.hpp"
#include "verify/verify.hpp"

namespace {

using namespace mps;

sg::StateGraph random_graph(std::uint64_t seed, int signals = 6) {
  util::Rng rng(seed);
  benchmarks::RandomStgOptions opts;
  opts.num_signals = signals;
  return sg::StateGraph::from_stg(benchmarks::random_stg(rng, opts));
}

class RandomStgProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomStgProperty, CodesAreConsistentAlongEveryEdge) {
  const auto g = random_graph(GetParam());
  g.check_consistency();  // aborts on violation
  SUCCEED();
}

TEST_P(RandomStgProperty, ProjectionCommutesWithCodes) {
  const auto g = random_graph(GetParam());
  util::Rng rng(GetParam() ^ 0xABCD);
  util::BitVec hide(g.num_signals());
  for (sg::SignalId s = 0; s < g.num_signals(); ++s) {
    if (rng.chance(0.4)) hide.set(s);
  }
  if (hide.count() == g.num_signals()) hide.reset(0);
  const auto proj = sg::hide_signals(g, hide);
  // Every original state maps somewhere; kept-signal values agree.
  for (sg::StateId s = 0; s < g.num_states(); ++s) {
    const sg::StateId c = proj.state_map[s];
    ASSERT_LT(c, proj.graph.num_states());
    for (std::size_t i = 0; i < proj.kept.size(); ++i) {
      ASSERT_EQ(g.code(s).test(proj.kept[i]),
                proj.graph.code(c).test(static_cast<sg::SignalId>(i)));
    }
  }
  // Quotient edges all come from original kept edges.
  std::size_t quotient_edges = proj.graph.num_edges();
  std::size_t kept_originals = 0;
  for (sg::StateId s = 0; s < g.num_states(); ++s) {
    for (const auto& e : g.out(s)) {
      if (!e.is_silent() && !hide.test(e.sig)) ++kept_originals;
    }
  }
  EXPECT_LE(quotient_edges, kept_originals);
}

TEST_P(RandomStgProperty, GWriterRoundTripsToIdentity) {
  // parse_g(write_g(stg)) is the identity on the STG itself: same
  // signals (name, kind, order), same net size, and the same unrolled
  // state graph state-for-state.  (The .g *text* is only stable up to
  // arc-line order — the writer emits transition-creation order, the
  // parser re-creates in first-appearance order — so byte equality is
  // not part of the contract; the structure is.)
  util::Rng rng(GetParam());
  benchmarks::RandomStgOptions opts;
  opts.num_signals = 6;
  const stg::Stg original = benchmarks::random_stg(rng, opts);
  const stg::Stg reparsed = stg::parse_g(stg::write_g(original));
  ASSERT_EQ(reparsed.num_signals(), original.num_signals());
  for (stg::SignalId s = 0; s < original.num_signals(); ++s) {
    EXPECT_EQ(reparsed.signal_name(s), original.signal_name(s));
    EXPECT_EQ(reparsed.signal_kind(s), original.signal_kind(s));
  }
  EXPECT_EQ(reparsed.net().num_transitions(), original.net().num_transitions());
  const auto g1 = sg::StateGraph::from_stg(original);
  const auto g2 = sg::StateGraph::from_stg(reparsed);
  ASSERT_EQ(g1.num_states(), g2.num_states());
  ASSERT_EQ(g1.num_edges(), g2.num_edges());
  ASSERT_EQ(g1.num_signals(), g2.num_signals());
  for (sg::StateId s = 0; s < g1.num_states(); ++s) {
    EXPECT_EQ(g1.code(s), g2.code(s));
    ASSERT_EQ(g1.out(s).size(), g2.out(s).size());
    for (std::size_t i = 0; i < g1.out(s).size(); ++i) {
      EXPECT_EQ(g1.out(s)[i], g2.out(s)[i]);
    }
  }
}

TEST_P(RandomStgProperty, CscConflictsAreSymmetricInvariants) {
  const auto g = random_graph(GetParam());
  const auto a = sg::analyze_csc(g);
  for (const auto& [s1, s2] : a.conflicts) {
    EXPECT_EQ(g.code(s1), g.code(s2));
    EXPECT_LT(s1, s2);
  }
  EXPECT_LE(a.conflicts.size() + a.compatible_pairs.size(), a.num_usc_pairs);
}

TEST_P(RandomStgProperty, ExtractedFunctionsAreWellDefinedAfterSynthesis) {
  const auto g = random_graph(GetParam());
  core::SynthesisOptions opts;
  opts.derive_logic = false;
  const auto r = core::modular_synthesis(g, opts);
  if (!r.success) GTEST_SKIP() << "synthesis failed: " << r.failure_reason;
  for (sg::SignalId s = 0; s < r.final_graph.num_signals(); ++s) {
    if (r.final_graph.is_input(s)) continue;
    const auto spec = logic::extract_next_state(r.final_graph, s);
    // ON and OFF are disjoint and cover all reachable codes.
    EXPECT_EQ(spec.on.size() + spec.off.size(),
              [&] {
                std::set<std::string> codes;
                for (sg::StateId st = 0; st < r.final_graph.num_states(); ++st) {
                  codes.insert(r.final_graph.code(st).to_string());
                }
                return codes.size();
              }());
  }
}

TEST_P(RandomStgProperty, MinimizedCoversAreValidPrimeAndIrredundant) {
  const auto g = random_graph(GetParam());
  const auto r = core::modular_synthesis(g);
  if (!r.success) GTEST_SKIP();
  for (const auto& [name, cover] : r.covers) {
    const auto sig = r.final_graph.find_signal(name);
    const auto spec = logic::extract_next_state(r.final_graph, sig);
    EXPECT_TRUE(logic::cover_is_valid(spec, cover)) << name;
    EXPECT_TRUE(logic::cover_is_irredundant(spec, cover)) << name;
    for (const auto& cube : cover.cubes()) {
      EXPECT_TRUE(logic::cube_is_prime(spec, cube)) << name;
    }
  }
}

TEST_P(RandomStgProperty, SynthesisFixesAllConflicts) {
  const auto g = random_graph(GetParam());
  core::SynthesisOptions opts;
  opts.derive_logic = false;
  const auto r = core::modular_synthesis(g, opts);
  if (!r.success) GTEST_SKIP();
  EXPECT_TRUE(sg::analyze_csc(r.final_graph).satisfied());
  const auto report = verify::verify_synthesis(r.final_graph, {});
  EXPECT_TRUE(report.codes_consistent);
  EXPECT_TRUE(report.csc_satisfied);
}

TEST_P(RandomStgProperty, EncodedSolutionsAlwaysDecodeCoherently) {
  const auto g = random_graph(GetParam(), 5);
  const auto analysis = sg::analyze_csc(g);
  if (analysis.conflicts.empty()) GTEST_SKIP();
  for (std::size_t m = 1; m <= 2; ++m) {
    const encoding::Encoding enc(g, m, analysis.conflicts, analysis.compatible_pairs);
    sat::Model model;
    sat::SolveOptions sopts;
    sopts.max_backtracks = 200000;
    if (sat::Solver().solve(enc.cnf(), &model, nullptr, sopts) != sat::Outcome::Sat) {
      continue;
    }
    sg::Assignments assigns(g.num_states());
    enc.decode(model, &assigns, "n");
    EXPECT_FALSE(assigns.check_coherence(g).has_value()) << "m=" << m;
    // Expansion must preserve behaviour.
    const auto ex = sg::expand(g, assigns);
    EXPECT_TRUE(verify::expansion_simulates(g, ex.graph, ex.origin)) << "m=" << m;
    return;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomStgProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233,
                                           377, 610, 987, 1597));

// --- minimizer property sweep -------------------------------------------

class MinimizerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MinimizerProperty, HeuristicNeverBeatenByMoreThanExactBound) {
  util::Rng rng(GetParam());
  logic::SopSpec spec;
  spec.num_vars = 5;
  for (int x = 0; x < 32; ++x) {
    util::BitVec c(5);
    for (int v = 0; v < 5; ++v) c.set(v, (x >> v) & 1);
    const double dice = rng.uniform();
    if (dice < 0.35) {
      spec.on.push_back(c);
    } else if (dice < 0.75) {
      spec.off.push_back(c);
    }
  }
  if (spec.on.empty()) GTEST_SKIP();
  const auto exact = logic::exact_minimize(spec);
  ASSERT_TRUE(exact.has_value());
  const auto result = logic::minimize(spec);
  EXPECT_TRUE(logic::cover_is_valid(spec, result));
  // minimize() picks the better of both: never worse than exact.
  EXPECT_LE(result.literal_count(), exact->literal_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimizerProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88, 99, 110));

}  // namespace

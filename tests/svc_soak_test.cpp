// Socket-level concurrency soak for the service layer: a real svc::Server
// on a Unix socket, many concurrent svc::Clients.
//
// What must hold under concurrency:
//   - every client gets a complete, well-formed response (no torn lines,
//     no lost replies);
//   - identical requests produce byte-identical artifacts, however they
//     were served (fresh run, single-flight join, or cache hit);
//   - single-flight collapses the identical concurrent burst to (almost)
//     one synthesis;
//   - a full queue yields an immediate, clean `overloaded` error — not a
//     hang and not a dropped connection;
//   - an in-band {"op":"drain"} shuts the server down cleanly.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "mps.hpp"

namespace {

using namespace mps;

std::string temp_socket_path(const char* tag) {
  // Socket paths are length-limited (~108 bytes); keep them short and unique.
  return "/tmp/mps_" + std::string(tag) + "_" + std::to_string(::getpid()) + ".sock";
}

std::string bench_g_text(const char* name) {
  const auto* b = benchmarks::find_benchmark(name);
  if (b == nullptr) ADD_FAILURE() << "unknown benchmark " << name;
  return stg::write_g(b->make());
}

/// Poll the daemon's stats until `pred` holds (or ~5 s elapsed).
template <typename Pred>
bool wait_for_stats(svc::Client& client, Pred pred) {
  for (int i = 0; i < 500; ++i) {
    const svc::Json stats = client.stats();
    if (pred(stats)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

TEST(SvcSoak, ConcurrentIdenticalRequestsCollapseAndAgree) {
  const std::string socket = temp_socket_path("soak");
  const std::string cache_dir = testing::TempDir() + "svc_soak_cache";
  std::filesystem::remove_all(cache_dir);

  svc::ServerOptions opts;
  opts.socket_path = socket;
  opts.service.cache.dir = cache_dir;
  opts.service.sched.num_threads = 2;
  opts.service.sched.queue_cap = 32;
  svc::Server server(opts);
  server.start();
  std::thread server_thread([&] { server.run(); });

  const std::string g_text = bench_g_text("mr1");
  constexpr int kClients = 8;
  std::vector<std::string> artifacts(kClients);
  std::vector<std::string> errors(kClients);
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};

  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      try {
        svc::Client client(socket);  // connect before the barrier
        ready.fetch_add(1);
        while (!go.load()) std::this_thread::yield();
        const svc::Json resp = client.synth(g_text, "modular");
        if (!resp.get_bool("ok", false)) {
          errors[i] = resp.dump();
          return;
        }
        artifacts[i] = resp.find("artifact")->dump();
      } catch (const std::exception& e) {
        errors[i] = e.what();
      }
    });
  }
  while (ready.load() < kClients) std::this_thread::yield();
  go.store(true);  // fire all requests as one burst
  for (auto& t : clients) t.join();

  for (int i = 0; i < kClients; ++i) EXPECT_EQ(errors[i], "") << "client " << i;
  for (int i = 1; i < kClients; ++i) {
    EXPECT_EQ(artifacts[i], artifacts[0])
        << "responses must be byte-identical regardless of how they were served";
  }
  EXPECT_FALSE(artifacts[0].empty());

  // The burst must have collapsed: with single-flight plus the cache, 8
  // identical requests may not cost anywhere near 8 syntheses.
  const svc::SchedulerStats sched = server.service().scheduler().stats();
  EXPECT_GE(sched.joined + server.service().cache().stats().mem_hits +
                server.service().cache().stats().disk_hits,
            kClients - 2)
      << "submitted=" << sched.submitted << " joined=" << sched.joined;
  EXPECT_LE(sched.submitted, 2);

  // In-band drain: the server must answer, then shut down cleanly.
  {
    svc::Client client(socket);
    const svc::Json resp = client.drain();
    EXPECT_TRUE(resp.get_bool("ok", false));
  }
  server_thread.join();  // run() returned ⇒ graceful drain completed
}

TEST(SvcSoak, QueueOverflowAnswersOverloadedImmediately) {
  const std::string socket = temp_socket_path("ovfl");
  svc::ServerOptions opts;
  opts.socket_path = socket;
  opts.service.sched.num_threads = 1;
  opts.service.sched.queue_cap = 1;
  svc::Server server(opts);
  server.start();
  std::thread server_thread([&] { server.run(); });

  // Three *distinct* requests (deadline_s participates in the cache key, so
  // distinct values mean distinct jobs): A occupies the single worker, B
  // fills the single queue slot, C must bounce.
  const std::string g_text = bench_g_text("mr0");
  std::string resp_a, resp_b;
  std::thread client_a([&] {
    svc::Client c(socket);
    resp_a = c.synth(g_text, "modular", 1, 1000.0).dump();
  });

  svc::Client watcher(socket);
  ASSERT_TRUE(wait_for_stats(watcher, [](const svc::Json& s) {
    return s.find("scheduler")->get_int("running", 0) == 1;
  })) << "job A never started running";

  std::thread client_b([&] {
    svc::Client c(socket);
    resp_b = c.synth(g_text, "modular", 1, 1001.0).dump();
  });
  ASSERT_TRUE(wait_for_stats(watcher, [](const svc::Json& s) {
    return s.find("scheduler")->get_int("queue_depth", 0) == 1;
  })) << "job B never queued";

  // C: queue full ⇒ immediate overloaded error, connection still healthy.
  svc::Client client_c(socket);
  const auto t0 = std::chrono::steady_clock::now();
  const svc::Json resp_c = client_c.synth(g_text, "modular", 1, 1002.0);
  const double reject_s = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - t0).count();
  EXPECT_FALSE(resp_c.get_bool("ok", true));
  EXPECT_EQ(resp_c.get_string("kind", ""), "overloaded");
  EXPECT_LT(reject_s, 1.0) << "rejection must not wait for the queue";
  EXPECT_TRUE(client_c.ping().get_bool("ok", false))
      << "an overloaded reply must not wreck the connection";

  client_a.join();
  client_b.join();
  // A and B were admitted, so both must have real (successful) responses.
  EXPECT_NE(resp_a.find("\"ok\":true"), std::string::npos) << resp_a;
  EXPECT_NE(resp_b.find("\"ok\":true"), std::string::npos) << resp_b;
  EXPECT_EQ(server.service().scheduler().stats().rejected, 1);

  server.request_drain();
  server_thread.join();
}

}  // namespace

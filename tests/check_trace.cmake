# Run ${CMD} (mps_synth) on a small benchmark with --trace/--stats-json and
# validate the observability output end-to-end: both files must be
# well-formed JSON (string(JSON) parses them), the trace must contain every
# span name the instrumented layers emit, and with --threads 4 the lane
# metadata must show at least two worker lanes (workers register their lanes
# on startup, so this holds even on a single-core machine where the caller
# drains every task itself).
set(trace_file ${OUT_DIR}/trace_check.json)
set(stats_file ${OUT_DIR}/stats_check.json)
execute_process(
  COMMAND ${CMD} --bench ${BENCH} --threads 4 --quiet
          --trace ${trace_file} --stats-json ${stats_file}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${CMD} --bench ${BENCH} failed (rc=${rc}).\n"
                      "stderr: ${err}\nstdout: ${out}")
endif()

file(READ ${trace_file} trace)
string(JSON n_events LENGTH "${trace}")  # fatal if not valid JSON
if(n_events LESS 10)
  message(FATAL_ERROR "trace has only ${n_events} events")
endif()

foreach(span sat.solve petri.reachability sg.infer_codes sg.analyze_csc
             synth.modular synth.wave synth.module pool.task)
  if(NOT trace MATCHES "\"name\":\"${span}\"")
    message(FATAL_ERROR "trace is missing span '${span}'")
  endif()
endforeach()

string(REGEX MATCHALL "\"name\":\"worker-[0-9]+\"" worker_lanes "${trace}")
list(REMOVE_DUPLICATES worker_lanes)
list(LENGTH worker_lanes n_workers)
if(n_workers LESS 2)
  message(FATAL_ERROR "expected >= 2 worker lanes with --threads 4, "
                      "found ${n_workers}: ${worker_lanes}")
endif()

file(READ ${stats_file} stats)
string(JSON solves GET "${stats}" counters sat.solves)  # fatal if absent
if(solves LESS 1)
  message(FATAL_ERROR "stats counters report ${solves} sat.solves")
endif()
string(JSON modular_count GET "${stats}" spans synth.modular count)
if(NOT modular_count EQUAL 1)
  message(FATAL_ERROR "expected exactly one synth.modular span, got ${modular_count}")
endif()

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "sg/csc.hpp"
#include "sg/state_graph.hpp"
#include "stg/builder.hpp"

namespace {

using namespace mps;
using sg::StateGraph;
using sg::V4;

stg::Stg toggle_stg() {
  return stg::Builder("toggle")
      .outputs({"x", "y"})
      .path("x+", "x-", "y+", "y-")
      .arc("y-", "x+")
      .token("y-", "x+")
      .build();
}

stg::Stg handshake_stg() {
  return stg::Builder("hs")
      .inputs({"r"})
      .outputs({"a"})
      .path("r+", "a+", "r-", "a-")
      .arc("a-", "r+")
      .token("a-", "r+")
      .build();
}

TEST(CeilLog2, Values) {
  EXPECT_EQ(sg::ceil_log2(1), 0);
  EXPECT_EQ(sg::ceil_log2(2), 1);
  EXPECT_EQ(sg::ceil_log2(3), 2);
  EXPECT_EQ(sg::ceil_log2(4), 2);
  EXPECT_EQ(sg::ceil_log2(5), 3);
  EXPECT_EQ(sg::ceil_log2(8), 3);
  EXPECT_EQ(sg::ceil_log2(9), 4);
}

TEST(Csc, HandshakeSatisfiesCsc) {
  const auto g = StateGraph::from_stg(handshake_stg());
  const auto a = sg::analyze_csc(g);
  EXPECT_TRUE(a.satisfied());
  EXPECT_EQ(a.num_usc_pairs, 0u);
  EXPECT_EQ(a.max_class_size, 1u);
  EXPECT_EQ(a.lower_bound, 0);
}

TEST(Csc, ToggleHasOneConflict) {
  const auto g = StateGraph::from_stg(toggle_stg());
  const auto a = sg::analyze_csc(g);
  ASSERT_EQ(a.conflicts.size(), 1u);
  EXPECT_EQ(a.num_usc_pairs, 1u);
  EXPECT_EQ(a.max_class_size, 2u);
  EXPECT_EQ(a.lower_bound, 1);
  // The two "00" states: one excites x+, the other y+.
  const auto [s1, s2] = a.conflicts[0];
  EXPECT_EQ(g.code(s1), g.code(s2));
  EXPECT_NE(g.excited_non_input(s1), g.excited_non_input(s2));
}

TEST(Csc, InputOnlyDifferenceIsNotAConflict) {
  // Two code-equal states differing only in which *input* is enabled do
  // not violate CSC.
  const auto stg = stg::Builder("inp")
                       .inputs({"a", "b"})
                       .outputs({"x"})
                       .path("a+", "x+", "a-", "b+", "x-", "b-")
                       .arc("b-", "a+")
                       .token("b-", "a+")
                       .build();
  const auto g = StateGraph::from_stg(stg);
  const auto a = sg::analyze_csc(g);
  // Classes may exist, but conflicts require differing non-input behaviour.
  for (const auto& [s1, s2] : a.conflicts) {
    EXPECT_NE(g.excited_non_input(s1).to_string(), g.excited_non_input(s2).to_string());
  }
}

TEST(Csc, ExistingSignalSeparationRemovesConflict) {
  const auto g = StateGraph::from_stg(toggle_stg());
  sg::Assignments assigns(g.num_states());
  // States: 0 -x+-> 1 -x-> 2 -y+-> 3 -y-> 0; conflict between 0 and 2.
  assigns.add_signal("n", {V4::Zero, V4::Up, V4::One, V4::Down});
  const auto a = sg::analyze_csc(g, &assigns);
  EXPECT_TRUE(a.satisfied()) << "stable 0/1 separation must clear the conflict";
}

TEST(Csc, ExcitedSignalDoesNotSeparate) {
  const auto g = StateGraph::from_stg(toggle_stg());
  sg::Assignments assigns(g.num_states());
  // Up at one of the conflicting states does NOT separate (phase overlap).
  assigns.add_signal("n", {V4::Zero, V4::Zero, V4::Up, V4::One});
  const auto a = sg::analyze_csc(g, &assigns);
  EXPECT_FALSE(a.satisfied());
}

TEST(Csc, StateSignalExcitationCreatesConflict) {
  // Code-equal states where the carried state signal is excited in one but
  // stable in the other: distinct behaviour.
  const auto g = StateGraph::from_stg(toggle_stg());
  sg::Assignments assigns(g.num_states());
  assigns.add_signal("n", {V4::Zero, V4::Up, V4::One, V4::Down});
  assigns.add_signal("p", {V4::Zero, V4::Zero, V4::Up, V4::One});
  const auto a = sg::analyze_csc(g, &assigns);
  // n separates the only code class pair, so no conflict can remain.
  EXPECT_TRUE(a.satisfied());
}

TEST(Csc, CompatiblePairsReported) {
  // Two pulses of the same signal in sequence: the idle states between
  // pulses share codes and behaviour.
  const auto stg = stg::Builder("pp")
                       .inputs({"a"})
                       .outputs({"x"})
                       .path("a+", "x+", "x-", "x+/1", "x-/1", "a-")
                       .arc("a-", "a+")
                       .token("a-", "a+")
                       .build();
  const auto g = StateGraph::from_stg(stg);
  const auto a = sg::analyze_csc(g);
  EXPECT_FALSE(a.conflicts.empty());
  EXPECT_FALSE(a.compatible_pairs.empty());
  // Conflicts and compatible pairs partition the unseparated USC pairs.
  EXPECT_EQ(a.conflicts.size() + a.compatible_pairs.size(), a.num_usc_pairs);
}

TEST(Csc, FocusSignalRestrictsConflicts) {
  const auto g = StateGraph::from_stg(toggle_stg());
  sg::CscOptions focus_x;
  focus_x.focus_signal = g.find_signal("x");
  const auto ax = sg::analyze_csc(g, nullptr, focus_x);
  // The 00 states differ in x-excitation, so the conflict remains.
  EXPECT_EQ(ax.conflicts.size(), 1u);

  // A pair differing only in y-excitation is invisible under focus x...
  sg::CscOptions focus_y;
  focus_y.focus_signal = g.find_signal("y");
  const auto ay = sg::analyze_csc(g, nullptr, focus_y);
  EXPECT_EQ(ay.conflicts.size(), 1u);  // ...but here both x+ and y+ differ.
}

TEST(Csc, LowerBoundCountsConflictGroupsOnly) {
  // Class with 4 states: 2 behaviour groups -> 1 signal suffices.
  const auto stg = stg::Builder("lb")
                       .outputs({"x", "y"})
                       .path("x+", "x-", "y+", "y-", "x+/1", "x-/1", "y+/1", "y-/1")
                       .arc("y-/1", "x+")
                       .token("y-/1", "x+")
                       .build();
  const auto g = StateGraph::from_stg(stg);
  const auto a = sg::analyze_csc(g);
  EXPECT_EQ(a.max_class_size, 4u);  // four all-zero states
  EXPECT_EQ(a.lower_bound, 1);      // but only two behaviours (x+ vs y+)
}

TEST(Csc, PaperBenchmarksAllViolateCscInitially) {
  for (const auto& b : mps::benchmarks::table1_benchmarks()) {
    const auto g = StateGraph::from_stg(b.make());
    const auto a = sg::analyze_csc(g);
    EXPECT_FALSE(a.satisfied()) << b.name << " should need state signals";
    EXPECT_GE(a.lower_bound, 1) << b.name;
  }
}

TEST(Csc, ConflictsAreOrderedAndUnique) {
  const auto g = StateGraph::from_stg(mps::benchmarks::find_benchmark("pa")->make());
  // Re-analysis of an already-built graph must be deterministic.
  const auto a1 = sg::analyze_csc(g);
  const auto a2 = sg::analyze_csc(g);
  EXPECT_EQ(a1.conflicts, a2.conflicts);
  for (std::size_t i = 0; i + 1 < a1.conflicts.size(); ++i) {
    EXPECT_LT(a1.conflicts[i], a1.conflicts[i + 1]);
  }
  for (const auto& [s1, s2] : a1.conflicts) EXPECT_LT(s1, s2);
}

}  // namespace

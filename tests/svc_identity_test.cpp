// Daemon/CLI identity acceptance: for every Table-1 benchmark, the service
// path (svc::run_synthesis with the options mps_serve and mps_client use)
// must agree with the library path (core::modular_synthesis with the
// options examples/mps_synth uses) on every quality number, and the
// serialized artifact must survive a cache round trip byte-identically.
// This is the in-process form of the "mps_client output == mps_synth
// output" contract; the socket form (two benchmarks end to end) runs in
// tests/check_protocol.cmake.
#include <gtest/gtest.h>

#include "mps.hpp"

namespace {

using namespace mps;

TEST(SvcIdentity, ServicePathMatchesCliPathOnAllTable1Benchmarks) {
  for (const auto& b : benchmarks::table1_benchmarks()) {
    SCOPED_TRACE(b.name);
    const stg::Stg spec = b.make();

    // The CLI path: exactly what examples/mps_synth --method modular runs.
    const svc::RequestOptions ropts = svc::default_request_options("modular");
    const sg::StateGraph g = sg::StateGraph::from_stg(spec);
    const auto cli = core::modular_synthesis(g, ropts.modular);

    // The service path: what mps_serve runs for a synth request, including
    // a round trip through the wire/cache serialization.
    const svc::Artifact direct = svc::run_synthesis(spec, ropts);
    const auto restored = svc::Artifact::deserialize(direct.serialize());
    ASSERT_TRUE(restored.has_value());
    EXPECT_EQ(restored->serialize(), direct.serialize());
    const svc::Artifact& a = *restored;

    ASSERT_EQ(a.success, cli.success);
    if (!cli.success) continue;
    EXPECT_EQ(a.initial_states, cli.initial_states);
    EXPECT_EQ(a.final_states, cli.final_states);
    EXPECT_EQ(a.initial_signals, cli.initial_signals);
    EXPECT_EQ(a.final_signals, cli.final_signals);
    EXPECT_EQ(a.literals, cli.total_literals);

    // Covers must match cube for cube (the PLA output is derived from
    // these, so equality here implies byte-identical PLA files).
    ASSERT_EQ(a.covers.size(), cli.covers.size());
    for (std::size_t i = 0; i < cli.covers.size(); ++i) {
      EXPECT_EQ(a.covers[i].first, cli.covers[i].first);
      const auto& cubes = cli.covers[i].second.cubes();
      ASSERT_EQ(a.covers[i].second.size(), cubes.size());
      for (std::size_t c = 0; c < cubes.size(); ++c) {
        EXPECT_EQ(a.covers[i].second[c], cubes[c].to_string());
      }
    }

    // And the Verilog the daemon ships is the Verilog mps_synth writes.
    const auto n = netlist::build_netlist(cli.final_graph, cli.covers);
    EXPECT_EQ(a.verilog, netlist::write_verilog(n));
    EXPECT_EQ(a.gates, n.num_gates());
    EXPECT_EQ(a.transistors, n.transistor_estimate());

    // The digest is a pure function of (spec, options): a second
    // computation — e.g. on the client side — lands on the same cache key.
    EXPECT_EQ(svc::request_digest(spec, ropts), svc::request_digest(spec, ropts));
  }
}

}  // namespace

// Domain example: the send-buffer interface family (sbuf-*), loaded from
// .g text exactly as a user would load their own specifications from disk,
// then synthesized and exported:
//   * the CSC-satisfying STG is written back in .g format,
//   * each next-state function is written as a Berkeley PLA,
//   * the SAT instance of the first module is written in DIMACS.
#include <cstdio>

#include "mps.hpp"

namespace {

// A send-buffer control written directly in the .g interchange format.
const char* kSbufCtl = R"(
.model sbuf-ctl-example
.inputs send e0 e1
.outputs done c0 c1
.graph
send+ c0+
c0+ e0+
e0+ c0-
c0- e0-
e0- c1+
c1+ e1+
e1+ c1-
c1- e1-
e1- done+
done+ send-
send- done-
done- send+
.marking { <done-,send+> }
.end
)";

}  // namespace

int main() {
  using namespace mps;

  const stg::Stg spec = stg::parse_g(kSbufCtl);
  std::printf("loaded '%s': %zu signals, %zu transitions\n", spec.name().c_str(),
              spec.num_signals(), spec.net().num_transitions());

  const auto result = core::modular_synthesis(spec);
  if (!result.success) {
    std::printf("synthesis failed: %s\n", result.failure_reason.c_str());
    return 1;
  }
  std::printf("synthesized: %zu -> %zu states, %zu -> %zu signals, %zu literals\n\n",
              result.initial_states, result.final_states, result.initial_signals,
              result.final_signals, result.total_literals);

  // Export 1: every cover as a PLA (what espresso would consume/produce).
  std::vector<std::string> names;
  for (sg::SignalId s = 0; s < result.final_graph.num_signals(); ++s) {
    names.push_back(result.final_graph.signal(s).name);
  }
  for (const auto& [name, cover] : result.covers) {
    std::printf("PLA for %s:\n%s\n", name.c_str(),
                logic::write_pla(cover, names).c_str());
  }

  // Export 2: the direct CSC SAT instance in DIMACS, for use with any
  // external solver.
  const auto g = sg::StateGraph::from_stg(spec);
  const auto enc = encoding::encode_csc(g, 1);
  const std::string dimacs = sat::write_dimacs(enc.cnf(), "CSC instance of " + spec.name());
  std::printf("DIMACS export of the direct CSC instance: %zu vars, %zu clauses "
              "(first 3 lines):\n",
              enc.cnf().num_vars(), enc.cnf().num_clauses());
  std::size_t shown = 0;
  for (std::size_t i = 0; i < dimacs.size() && shown < 3; ++i) {
    std::putchar(dimacs[i]);
    if (dimacs[i] == '\n') ++shown;
  }

  std::printf("...\n\nverification: %s\n",
              verify::verify_synthesis(result.final_graph, result.covers).ok()
                  ? "all checks passed"
                  : "FAILED");
  return 0;
}

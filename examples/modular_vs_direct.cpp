// Walks one benchmark through BOTH synthesis paths of the paper's
// Figure 1 and prints what each step does:
//
//   (a) direct approach:        STG -> Σ -> one big SAT formula -> circuit
//   (b) modular partitioning:   STG -> Σ -> {Σ_o1, Σ_o2, ...} -> small SAT
//                               formulas -> propagate -> expand -> circuit
//
//   $ ./modular_vs_direct [benchmark]     (default mmu1)
#include <cstdio>
#include <string>

#include "mps.hpp"

int main(int argc, char** argv) {
  using namespace mps;

  const std::string name = argc > 1 ? argv[1] : "mmu1";
  const auto* bench = benchmarks::find_benchmark(name);
  if (bench == nullptr) {
    std::printf("unknown benchmark '%s'; available:\n", name.c_str());
    for (const auto& b : benchmarks::table1_benchmarks()) std::printf("  %s\n", b.name.c_str());
    return 1;
  }

  const auto g = sg::StateGraph::from_stg(bench->make());
  const auto analysis = sg::analyze_csc(g);
  std::printf("=== %s: complete state graph ===\n", name.c_str());
  std::printf("states %zu, edges %zu, concurrent pairs %zu\n", g.num_states(), g.num_edges(),
              g.num_concurrent_pairs());
  std::printf("CSC conflicts %zu, USC pairs %zu, Max_csc %zu, lower bound %d\n\n",
              analysis.conflicts.size(), analysis.num_usc_pairs, analysis.max_class_size,
              analysis.lower_bound);

  // --- Figure 1(a): the direct approach --------------------------------
  std::printf("=== direct approach (Figure 1a) ===\n");
  const std::size_t m0 = static_cast<std::size_t>(std::max(1, analysis.lower_bound));
  const encoding::Encoding direct(g, m0, analysis.conflicts, analysis.compatible_pairs);
  std::printf("one SAT formula over the whole graph: %zu clauses, %zu variables (m=%zu)\n",
              direct.cnf().num_clauses(), direct.cnf().num_vars(), m0);
  baseline::DirectOptions vopts;
  vopts.solve.max_backtracks = 2'000'000;
  vopts.solve.time_limit_s = 30.0;
  const auto v = baseline::direct_synthesis(g, vopts);
  if (v.success) {
    std::printf("solved: +%zu signals, %zu final states, %zu literals, %.3fs\n\n",
                v.final_signals - v.initial_signals, v.final_states, v.total_literals,
                v.seconds);
  } else {
    std::printf("NOT solved within the budget (%s), %.3fs — the paper's 'SAT Backtrack "
                "Limit' row\n\n",
                v.failure_reason.c_str(), v.seconds);
  }

  // --- Figure 1(b): the modular topology --------------------------------
  std::printf("=== modular partitioning (Figure 1b) ===\n");
  const auto m = core::modular_synthesis(g);
  for (const auto& module : m.modules) {
    std::printf("module for output %-8s: input set %zu signals, %zu states, %zu conflicts",
                module.output.c_str(), module.input_set_size, module.module_states,
                module.module_conflicts);
    if (module.formulas.empty()) {
      std::printf(" (no SAT needed)");
    }
    for (const auto& f : module.formulas) {
      std::printf("\n    SAT formula: m=%zu, %zu clauses, %zu vars -> %s", f.num_new_signals,
                  f.num_clauses, f.num_vars,
                  f.outcome == sat::Outcome::Sat     ? "SAT"
                  : f.outcome == sat::Outcome::Unsat ? "UNSAT, add a signal"
                                                     : "limit");
    }
    std::printf("\n");
  }
  std::printf("result: %s, +%zu signals, %zu final states, %zu literals, %.3fs in %d "
              "round(s)\n",
              m.success ? "ok" : "FAILED", m.final_signals - m.initial_signals,
              m.final_states, m.total_literals, m.seconds, m.rounds);

  if (m.success && v.success && m.seconds > 0.0) {
    std::printf("\nspeedup over the direct approach: %.1fx\n", v.seconds / m.seconds);
  }
  return m.success ? 0 : 1;
}

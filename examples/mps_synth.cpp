// mps_synth: a command-line synthesis driver — the shape of tool a
// downstream user actually runs.
//
//   mps_synth <spec.g> [options]
//     --method modular|direct|lavagno   (default modular)
//     --engine dpll|cdcl   SAT engine for every formula the method solves
//                          (default dpll, the paper-faithful Table-1
//                          reference; cdcl is the clause-learning engine
//                          that retires the Table-1 LIMIT rows)
//     --out-pla <prefix>   write one PLA per non-input signal to <prefix><name>.pla
//     --out-verilog <file> write the gate-level netlist as structural Verilog
//     --check-circuit      verbose gate-level report: gate/transistor counts and
//                          the speed-independence verifier's verdict (with a
//                          counterexample trace on failure)
//     --csc-check explicit|bdd
//                          analysis mode: skip synthesis, just decide CSC.
//                          'explicit' enumerates the state graph and runs the
//                          token-game analysis; 'bdd' runs the symbolic engine
//                          (partitioned transition relation + BDD reachability,
//                          src/bdd/symbolic.hpp), which never enumerates states
//                          and scales past 10^9 reachable states.  Prints one
//                          summary line; exits 0 whether or not CSC holds (a
//                          violated spec is an answer, not an error)
//     --gen <family:n>     use a generated spec instead of a file/--bench:
//                          pipeline:N, sequencer:N, parallelizer:N, toggle:N
//                          (toggle rings violate CSC by construction)
//     --dimacs <file>      export the direct CSC SAT instance
//     --dump-g <file>      write the input specification back out as .g text
//                          (materializes --bench specs for other tools, e.g.
//                          feeding mps_client the same spec)
//     --trace <file>       write a Chrome trace-event JSON of the run (load in
//                          chrome://tracing or Perfetto; one lane per thread)
//     --stats-json <file>  write aggregate span/counter statistics as JSON
//     --threads N          worker threads for the modular method's module
//                          loop (results are bit-identical for any N)
//     --quiet              only the summary line
//
// With no arguments it synthesizes a built-in demo specification.
//
// Error contract (tested by ctest): every misuse — unreadable file, .g
// parse error, unknown --method/--bench/flag — prints one clear
// diagnostic to stderr and exits nonzero (2 for usage errors, 1 for
// input/verification failures).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "mps.hpp"

namespace {

using namespace mps;

int usage() {
  std::fprintf(stderr,
               "usage: mps_synth <spec.g> [--method modular|direct|lavagno]\n"
               "                 [--engine dpll|cdcl] [--csc-check explicit|bdd]\n"
               "                 [--out-pla <prefix>] [--out-verilog <file>]\n"
               "                 [--check-circuit] [--dimacs <file>] [--dump-g <file>]\n"
               "                 [--quiet] [--trace <file>] [--stats-json <file>]\n"
               "                 [--threads N]\n"
               "       mps_synth --bench <name>   (use a built-in Table-1 benchmark)\n"
               "       mps_synth --gen <family:n> (use a generated spec: pipeline:10,\n"
               "                                   sequencer:8, parallelizer:4, toggle:3)\n");
  return 2;
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) throw util::Error("cannot open " + path + " for writing");
  out << text;
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path;
  std::string bench_name;
  std::string gen_spec;
  std::string csc_check;
  std::string method = "modular";
  std::string engine_str = "dpll";
  std::string pla_prefix;
  std::string verilog_path;
  std::string dimacs_path;
  std::string dump_g_path;
  std::string trace_path;
  std::string stats_path;
  unsigned threads = 0;  // 0 = SynthesisOptions default (one per hardware thread)
  bool check_circuit = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--method") {
      const char* v = next();
      if (v == nullptr) return usage();
      method = v;
    } else if (arg == "--engine") {
      const char* v = next();
      if (v == nullptr) return usage();
      engine_str = v;
    } else if (arg == "--bench") {
      const char* v = next();
      if (v == nullptr) return usage();
      bench_name = v;
    } else if (arg == "--gen") {
      const char* v = next();
      if (v == nullptr) return usage();
      gen_spec = v;
    } else if (arg == "--csc-check") {
      const char* v = next();
      if (v == nullptr) return usage();
      csc_check = v;
    } else if (arg == "--out-pla") {
      const char* v = next();
      if (v == nullptr) return usage();
      pla_prefix = v;
    } else if (arg == "--out-verilog") {
      const char* v = next();
      if (v == nullptr) return usage();
      verilog_path = v;
    } else if (arg == "--check-circuit") {
      check_circuit = true;
    } else if (arg == "--dimacs") {
      const char* v = next();
      if (v == nullptr) return usage();
      dimacs_path = v;
    } else if (arg == "--dump-g") {
      const char* v = next();
      if (v == nullptr) return usage();
      dump_g_path = v;
    } else if (arg == "--trace") {
      const char* v = next();
      if (v == nullptr) return usage();
      trace_path = v;
    } else if (arg == "--stats-json") {
      const char* v = next();
      if (v == nullptr) return usage();
      stats_path = v;
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return usage();
      const auto n = util::parse_int(v, 1, 1 << 16);
      if (!n.has_value()) {
        std::fprintf(stderr, "error: --threads expects a positive integer, got '%s'\n", v);
        return 2;
      }
      threads = static_cast<unsigned>(*n);
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown flag: %s\n", arg.c_str());
      return usage();
    } else {
      spec_path = arg;
    }
  }
  if (method != "modular" && method != "direct" && method != "lavagno") {
    std::fprintf(stderr, "error: unknown --method: %s (expected modular|direct|lavagno)\n",
                 method.c_str());
    return 2;
  }
  const auto engine = sat::engine_from_name(engine_str);
  if (!engine.has_value()) {
    std::fprintf(stderr, "error: unknown --engine: %s (expected dpll|cdcl)\n",
                 engine_str.c_str());
    return 2;
  }
  if (!csc_check.empty() && csc_check != "explicit" && csc_check != "bdd") {
    std::fprintf(stderr, "error: unknown --csc-check engine: %s (expected explicit|bdd)\n",
                 csc_check.c_str());
    return 2;
  }

  if (!trace_path.empty() || !stats_path.empty()) {
    obs::set_enabled(true);  // before any pool/solver work so every span lands
    obs::set_thread_name("main");
  }

  try {
    stg::Stg spec = [&] {
      if (!bench_name.empty()) {
        const auto* b = benchmarks::find_benchmark(bench_name);
        if (b == nullptr) throw util::Error("unknown benchmark: " + bench_name);
        return b->make();
      }
      if (!gen_spec.empty()) {
        const auto colon = gen_spec.find(':');
        const std::string family = gen_spec.substr(0, colon);
        std::optional<std::int64_t> n;
        if (colon != std::string::npos) {
          n = util::parse_int(gen_spec.substr(colon + 1), 1, 1 << 10);
        }
        if (!n.has_value()) {
          throw util::Error("--gen expects family:n (e.g. pipeline:10), got '" + gen_spec +
                            "'");
        }
        const int k = static_cast<int>(*n);
        const std::string name = family + std::to_string(k);
        if (family == "pipeline") return benchmarks::gen_pipeline(name, k);
        if (family == "sequencer") return benchmarks::gen_sequencer(name, k);
        if (family == "parallelizer") return benchmarks::gen_parallelizer(name, k);
        if (family == "toggle") return benchmarks::gen_toggle_ring(name, std::max(k, 2));
        throw util::Error("unknown --gen family: " + family +
                          " (expected pipeline|sequencer|parallelizer|toggle)");
      }
      if (!spec_path.empty()) return stg::parse_g_file(spec_path);
      // Demo: a one-bank memory controller with a data strobe.
      return stg::Builder("demo")
          .inputs({"req", "a0"})
          .outputs({"ack", "r0", "d"})
          .path("req+", "r0+", "a0+", "r0-", "a0-")
          .path("a0-", "d+", "d-", "ack+", "req-", "ack-")
          .arc("ack-", "req+")
          .token("ack-", "req+")
          .build();
    }();

    if (!quiet) {
      std::printf("%s: %zu signals, %zu transitions, method=%s\n", spec.name().c_str(),
                  spec.num_signals(), spec.net().num_transitions(), method.c_str());
    }
    if (!dump_g_path.empty()) write_file(dump_g_path, stg::write_g(spec));

    if (!csc_check.empty()) {
      // Analysis mode: decide CSC and stop.  Exit 0 either way — the
      // verdict is the answer; only build/infrastructure errors are errors.
      const auto t0 = std::chrono::steady_clock::now();
      bool holds = false;
      double states = 0;
      std::size_t conflicts = 0;
      std::string detail;
      if (csc_check == "bdd") {
        bdd::SymbolicStg sym(spec);
        states = sym.num_states();
        const bdd::CscVerdict v = sym.check_csc();
        holds = v.holds;
        conflicts = v.conflicts.size();
        detail = " iterations=" + std::to_string(sym.num_iterations()) +
                 " nodes=" + std::to_string(sym.manager().num_nodes());
      } else {
        const sg::StateGraph g = sg::StateGraph::from_stg(spec);
        const sg::CscResult r = sg::analyze_csc(g);
        holds = r.satisfied();
        states = static_cast<double>(g.num_states());
        conflicts = r.conflicts.size();
      }
      const double dt =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      std::printf("%s: csc-check engine=%s states=%.0f%s csc=%s conflicts=%zu (%.3fs)\n",
                  spec.name().c_str(), csc_check.c_str(), states, detail.c_str(),
                  holds ? "satisfied" : "violated", conflicts, dt);
      if (!trace_path.empty()) {
        obs::write_chrome_trace(trace_path);
        if (!quiet) std::printf("wrote %s\n", trace_path.c_str());
      }
      if (!stats_path.empty()) {
        obs::write_stats_json(stats_path);
        if (!quiet) std::printf("wrote %s\n", stats_path.c_str());
      }
      return 0;
    }

    const sg::StateGraph g = sg::StateGraph::from_stg(spec);
    sg::StateGraph final_graph;
    std::vector<std::pair<std::string, logic::Cover>> covers;
    std::size_t literals = 0;
    double seconds = 0;
    bool ok = false;
    std::string failure;

    // Per-method limits come from svc::default_request_options so this CLI
    // and the mps_serve daemon cannot drift apart (the byte-identity
    // contract tested by tests/check_protocol.cmake).
    svc::RequestOptions ropts = svc::default_request_options(method);
    svc::set_engine(&ropts, *engine);
    if (method == "modular") {
      core::SynthesisOptions opts = ropts.modular;
      if (threads != 0) opts.num_threads = threads;
      auto r = core::modular_synthesis(g, opts);
      ok = r.success;
      failure = r.failure_reason;
      final_graph = std::move(r.final_graph);
      covers = std::move(r.covers);
      literals = r.total_literals;
      seconds = r.seconds;
    } else if (method == "direct") {
      auto r = baseline::direct_synthesis(g, ropts.direct);
      ok = r.success;
      failure = r.failure_reason;
      final_graph = std::move(r.final_graph);
      covers = std::move(r.covers);
      literals = r.total_literals;
      seconds = r.seconds;
    } else {
      auto r = baseline::lavagno_synthesis(g, ropts.lavagno);
      ok = r.success;
      failure = r.failure_reason;
      final_graph = std::move(r.final_graph);
      covers = std::move(r.covers);
      literals = r.total_literals;
      seconds = r.seconds;
    }

    // Trace/stats cover the synthesis itself; written even when it failed —
    // a failing run is exactly the one worth profiling.
    if (!trace_path.empty()) {
      obs::write_chrome_trace(trace_path);
      if (!quiet) std::printf("wrote %s\n", trace_path.c_str());
    }
    if (!stats_path.empty()) {
      obs::write_stats_json(stats_path);
      if (!quiet) std::printf("wrote %s\n", stats_path.c_str());
    }

    if (!ok) {
      std::fprintf(stderr, "error: synthesis failed: %s\n", failure.c_str());
      return 1;
    }
    const auto report = verify::verify_synthesis(final_graph, covers);
    std::printf("%s: ok, %zu -> %zu states, %zu -> %zu signals, %zu literals, %.3fs, "
                "verification %s\n",
                spec.name().c_str(), g.num_states(), final_graph.num_states(),
                g.num_signals(), final_graph.num_signals(), literals, seconds,
                report.ok() ? "passed" : "FAILED");
    if (!report.ok()) {
      for (const auto& issue : report.issues) std::printf("  issue: %s\n", issue.c_str());
    }

    const netlist::Netlist circuit = netlist::build_netlist(final_graph, covers);
    if (check_circuit) {
      const auto si = netlist::verify_speed_independence(circuit, final_graph);
      std::printf("circuit: %zu gates, %zu literals, ~%zu transistors; "
                  "speed-independence %s (%zu composed states)\n",
                  circuit.num_gates(), circuit.total_literals(),
                  circuit.transistor_estimate(), si.ok() ? "passed" : "FAILED",
                  si.states_explored);
      if (!si.ok()) {
        for (const auto& issue : si.issues) std::printf("  issue: %s\n", issue.c_str());
        if (!si.trace.empty()) {
          std::string trace;
          for (const auto& step : si.trace) {
            if (!trace.empty()) trace += " ";
            trace += step;
          }
          std::printf("  counterexample: %s\n", trace.c_str());
        }
        return 1;
      }
    }

    if (!pla_prefix.empty()) {
      std::vector<std::string> names;
      for (sg::SignalId s = 0; s < final_graph.num_signals(); ++s) {
        names.push_back(final_graph.signal(s).name);
      }
      for (const auto& [name, cover] : covers) {
        write_file(pla_prefix + name + ".pla", logic::write_pla(cover, names));
      }
    }
    if (!verilog_path.empty()) {
      write_file(verilog_path, netlist::write_verilog(circuit));
    }
    if (!dimacs_path.empty()) {
      const auto enc = encoding::encode_csc(g, 1);
      write_file(dimacs_path, sat::write_dimacs(enc.cnf(), "CSC of " + spec.name()));
    }
    return report.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

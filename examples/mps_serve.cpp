// mps_serve: the synthesis daemon — svc::Server behind a CLI.
//
//   mps_serve --socket PATH | --listen HOST:PORT|PATH
//             [--threads N] [--cache-dir DIR] [--queue-cap K]
//             [--mem-entries M] [--backlog N] [--max-request-bytes B]
//             [--trace FILE]
//
// Speaks newline-delimited JSON over a Unix domain socket (--socket) or TCP
// (--listen host:port; port 0 binds a kernel-assigned port, reported on the
// "listening on" line).  One request object per line, one response per
// line; see src/svc/service.hpp and DESIGN.md §10–11 for the grammar.
// Ops: ping, version, synth, stats, drain.
//
// Shutdown: SIGTERM/SIGINT or a {"op":"drain"} request triggers a graceful
// drain — stop accepting, answer everything already admitted, exit 0.
//
// --trace FILE enables the obs layer and writes a Chrome trace on exit.
// It is off by default: a long-lived daemon would otherwise accumulate
// span events without bound.
#include <cstdio>
#include <string>
#include <thread>

#include "mps.hpp"

namespace {

using namespace mps;

int usage() {
  std::fprintf(stderr,
               "usage: mps_serve --socket PATH | --listen HOST:PORT|PATH\n"
               "                 [--threads N] [--cache-dir DIR] [--queue-cap K]\n"
               "                 [--mem-entries M] [--backlog N] [--max-request-bytes B]\n"
               "                 [--trace FILE]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  svc::ServerOptions opts;
  std::string trace_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--socket") {
      const char* v = next();
      if (v == nullptr) return usage();
      opts.socket_path = v;
    } else if (arg == "--listen") {
      const char* v = next();
      if (v == nullptr) return usage();
      opts.listen = v;
    } else if (arg == "--backlog") {
      const char* v = next();
      if (v == nullptr) return usage();
      const auto n = util::parse_int(v, 1, 1 << 16);
      if (!n.has_value()) {
        std::fprintf(stderr, "error: --backlog expects an integer in 1..65536, got '%s'\n", v);
        return 2;
      }
      opts.backlog = static_cast<int>(*n);
    } else if (arg == "--max-request-bytes") {
      const char* v = next();
      if (v == nullptr) return usage();
      const auto n = util::parse_int(v, 1, 1ll << 32);
      if (!n.has_value()) {
        std::fprintf(stderr,
                     "error: --max-request-bytes expects a positive integer, got '%s'\n", v);
        return 2;
      }
      opts.max_line_bytes = static_cast<std::size_t>(*n);
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return usage();
      const auto n = util::parse_int(v, 1, 1 << 10);
      if (!n.has_value()) {
        std::fprintf(stderr, "error: --threads expects an integer in 1..1024, got '%s'\n", v);
        return 2;
      }
      opts.service.sched.num_threads = static_cast<unsigned>(*n);
    } else if (arg == "--cache-dir") {
      const char* v = next();
      if (v == nullptr) return usage();
      opts.service.cache.dir = v;
    } else if (arg == "--queue-cap") {
      const char* v = next();
      if (v == nullptr) return usage();
      const auto n = util::parse_int(v, 1, 1 << 20);
      if (!n.has_value()) {
        std::fprintf(stderr, "error: --queue-cap expects a positive integer, got '%s'\n", v);
        return 2;
      }
      opts.service.sched.queue_cap = static_cast<std::size_t>(*n);
    } else if (arg == "--mem-entries") {
      const char* v = next();
      if (v == nullptr) return usage();
      const auto n = util::parse_int(v, 0, 1 << 20);
      if (!n.has_value()) {
        std::fprintf(stderr, "error: --mem-entries expects a non-negative integer, got '%s'\n",
                     v);
        return 2;
      }
      opts.service.cache.mem_entries = static_cast<std::size_t>(*n);
    } else if (arg == "--trace") {
      const char* v = next();
      if (v == nullptr) return usage();
      trace_path = v;
    } else {
      std::fprintf(stderr, "error: unknown flag: %s\n", arg.c_str());
      return usage();
    }
  }
  if (opts.socket_path.empty() && opts.listen.empty()) {
    std::fprintf(stderr, "error: --socket PATH or --listen HOST:PORT is required\n");
    return usage();
  }

  if (!trace_path.empty()) {
    obs::set_enabled(true);
    obs::set_thread_name("accept");
  }

  try {
    svc::Server server(opts);
    server.start();
    server.install_signal_handlers();
    std::printf("mps_serve: listening on %s (threads=%u, queue-cap=%zu, cache=%s)\n",
                server.bound_endpoint().str().c_str(),
                opts.service.sched.num_threads == 0 ? std::thread::hardware_concurrency()
                                                    : opts.service.sched.num_threads,
                opts.service.sched.queue_cap,
                opts.service.cache.dir.empty() ? "<memory only>"
                                               : opts.service.cache.dir.c_str());
    std::fflush(stdout);  // let wrappers wait for the "listening" line
    server.run();
    std::printf("mps_serve: drained, exiting\n");
    if (!trace_path.empty()) {
      obs::write_chrome_trace(trace_path);
      std::printf("wrote %s\n", trace_path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

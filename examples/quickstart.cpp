// Quickstart: specify a small asynchronous controller as an STG, run the
// modular partitioning synthesis, and print the resulting next-state logic.
//
//   $ ./quickstart
//
// The controller is the classic two-pulse cycle (the paper's vbe-ex1
// shape): outputs x and y pulse alternately, which violates complete state
// coding — the state after x's pulse and the state before it carry the
// same code.  Synthesis inserts one state signal to distinguish them.
#include <cstdio>

#include "mps.hpp"

int main() {
  using namespace mps;

  // 1. Build the specification.  The same STG can be written in the .g
  //    interchange format and loaded with stg::parse_g / parse_g_file.
  const stg::Stg spec = stg::Builder("quickstart")
                            .outputs({"x", "y"})
                            .path("x+", "x-", "y+", "y-")
                            .arc("y-", "x+")
                            .token("y-", "x+")  // initial token: x+ fires first
                            .build();
  std::printf("specification (.g format):\n%s\n", stg::write_g(spec).c_str());

  // 2. Inspect the state graph: 4 states, one CSC conflict.
  const sg::StateGraph g = sg::StateGraph::from_stg(spec);
  const auto analysis = sg::analyze_csc(g);
  std::printf("state graph: %zu states, %zu edges, %zu CSC conflict pair(s)\n\n",
              g.num_states(), g.num_edges(), analysis.conflicts.size());

  // 3. Synthesize.
  const core::SynthesisResult result = core::modular_synthesis(spec);
  if (!result.success) {
    std::printf("synthesis failed: %s\n", result.failure_reason.c_str());
    return 1;
  }
  std::printf("synthesis: %zu -> %zu states, %zu -> %zu signals, %zu literals, %.3fs\n",
              result.initial_states, result.final_states, result.initial_signals,
              result.final_signals, result.total_literals, result.seconds);

  // 4. Print the logic: one sum-of-products cover per non-input signal.
  std::vector<std::string> names;
  for (sg::SignalId s = 0; s < result.final_graph.num_signals(); ++s) {
    names.push_back(result.final_graph.signal(s).name);
  }
  std::printf("\nnext-state functions:\n");
  for (const auto& [name, cover] : result.covers) {
    std::printf("  %-5s = %s\n", name.c_str(), cover.to_expression(names).c_str());
  }

  // 5. Verify: consistency, CSC, semi-modularity, and exact (BDD-checked)
  //    equivalence of the covers against the state graph.
  const auto report = verify::verify_synthesis(result.final_graph, result.covers);
  std::printf("\nverification: %s\n", report.ok() ? "all checks passed" : "FAILED");
  for (const auto& issue : report.issues) std::printf("  issue: %s\n", issue.c_str());
  return report.ok() ? 0 : 1;
}

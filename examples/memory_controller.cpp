// Domain example: a multi-bank memory-read controller — the workload class
// behind the paper's largest benchmarks (mr0/mr1).  A CPU-side request
// forks into concurrent bank handshakes; the controller acknowledges after
// all banks respond.  This is where the direct SAT formulation explodes
// and the modular partitioning shines.
//
//   $ ./memory_controller [banks]        (default 3)
#include <cstdio>

#include "mps.hpp"

int main(int argc, char** argv) {
  using namespace mps;

  int banks = 3;
  if (argc > 1) {
    const auto n = util::parse_int(argv[1], 1, 4);
    if (!n.has_value()) {
      std::fprintf(stderr, "error: banks must be an integer in 1..4, got '%s'\n", argv[1]);
      return 2;
    }
    banks = static_cast<int>(*n);
  }

  // Build the controller with the series/parallel fragment algebra.
  benchmarks::SpStg s("memctl");
  s.input("req").output("ack");
  std::vector<benchmarks::Frag> channels;
  for (int i = 0; i < banks; ++i) {
    const std::string r = "r" + std::to_string(i);
    const std::string a = "a" + std::to_string(i);
    s.output(r).input(a);
    channels.push_back(s.chain({r + "+", a + "+", r + "-", a + "-"}));
  }
  const benchmarks::Frag body =
      banks == 1 ? s.seq({s.chain({"req+"}), channels[0], s.chain({"ack+", "req-", "ack-"})})
                 : s.seq({s.chain({"req+"}), s.par(channels),
                          s.chain({"ack+", "req-", "ack-"})});
  const stg::Stg spec = s.close_loop(body);

  const sg::StateGraph g = sg::StateGraph::from_stg(spec);
  const auto analysis = sg::analyze_csc(g);
  std::printf("memory controller with %d banks: %zu states, %zu CSC conflicts, "
              "lower bound %d state signal(s)\n\n",
              banks, g.num_states(), analysis.conflicts.size(), analysis.lower_bound);

  // Modular partitioning.
  const auto modular = core::modular_synthesis(g);
  std::printf("modular    : %-4s %zu signals, %zu states, %zu literals, %.3fs\n",
              modular.success ? "ok," : "FAIL,", modular.final_signals,
              modular.final_states, modular.total_literals, modular.seconds);
  std::printf("  modules:\n");
  for (const auto& m : modular.modules) {
    std::printf("    output %-6s %3zu module states, %3zu conflicts, +%zu signal(s)",
                m.output.c_str(), m.module_states, m.module_conflicts, m.new_signals);
    for (const auto& f : m.formulas) {
      std::printf("  [%zu clauses/%zu vars]", f.num_clauses, f.num_vars);
    }
    std::printf("\n");
  }

  // Direct SAT with a realistic budget, for contrast.
  baseline::DirectOptions vopts;
  vopts.solve.max_backtracks = 2'000'000;
  vopts.solve.time_limit_s = 30.0;
  const auto direct = baseline::direct_synthesis(g, vopts);
  if (direct.success) {
    std::printf("direct SAT : ok,  %zu signals, %zu states, %zu literals, %.3fs\n",
                direct.final_signals, direct.final_states, direct.total_literals,
                direct.seconds);
  } else {
    std::printf("direct SAT : %s after %.3fs (formula: %zu clauses)\n",
                direct.hit_limit ? "backtrack/time limit" : "failed", direct.seconds,
                direct.formulas.empty() ? 0 : direct.formulas.back().num_clauses);
  }

  const auto report = verify::verify_synthesis(modular.final_graph, modular.covers);
  std::printf("\nverification of the modular result: %s\n",
              report.ok() ? "all checks passed" : "FAILED");
  return modular.success && report.ok() ? 0 : 1;
}

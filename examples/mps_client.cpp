// mps_client: blocking client for the mps_serve daemon / mps_frontdoor.
//
//   mps_client --socket PATH | --connect HOST:PORT|PATH
//              synth FILE.g [--method modular|direct|lavagno]
//              [--engine dpll|cdcl] [--threads N] [--deadline SECONDS]
//              [--timeout-s S] [--retries N]
//              [--out-pla <prefix>] [--out-verilog <file>] [--quiet]
//   mps_client (--socket PATH | --connect TARGET) ping|stats|drain
//
// --timeout-s bounds both the connect and every response wait: a dead or
// hung server yields a clean error + exit 1 instead of blocking forever.
// --retries N retries a refused connect with bounded backoff (a worker
// that is restarting).
//
// `synth` prints the same report mps_synth prints for the same spec and
// method — identical except the seconds field, which is the daemon's
// measurement of the original (cold) synthesis rather than a local timer.
// PLA and Verilog outputs are byte-identical to mps_synth's (verified by
// tests/check_protocol.cmake).  ping/stats/drain print the raw JSON
// response line.
//
// Exit codes mirror mps_synth: 2 usage, 1 synthesis/verification failure
// or daemon error, 0 success.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "mps.hpp"

namespace {

using namespace mps;

int usage() {
  std::fprintf(stderr,
               "usage: mps_client (--socket PATH | --connect HOST:PORT|PATH) synth FILE.g\n"
               "                  [--method modular|direct|lavagno] [--engine dpll|cdcl]\n"
               "                  [--threads N] [--deadline SECONDS] [--timeout-s S]\n"
               "                  [--retries N] [--out-pla <prefix>] [--out-verilog <file>]\n"
               "                  [--quiet]\n"
               "       mps_client (--socket PATH | --connect TARGET) ping|stats|drain\n");
  return 2;
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) throw util::Error("cannot open " + path + " for writing");
  out << text;
  std::printf("wrote %s\n", path.c_str());
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw util::Error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string target;
  std::string op;
  svc::ClientOptions copts;
  std::string spec_path;
  std::string method = "modular";
  std::string engine;
  std::string pla_prefix;
  std::string verilog_path;
  unsigned threads = 1;
  double deadline_s = 0.0;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--socket" || arg == "--connect") {
      const char* v = next();
      if (v == nullptr) return usage();
      target = arg == "--socket" ? "unix:" + std::string(v) : std::string(v);
    } else if (arg == "--timeout-s") {
      const char* v = next();
      if (v == nullptr) return usage();
      char* end = nullptr;
      const double s = std::strtod(v, &end);
      if (end == v || *end != '\0' || s <= 0) {
        std::fprintf(stderr, "error: --timeout-s expects positive seconds, got '%s'\n", v);
        return 2;
      }
      copts.connect_timeout_s = s;
      copts.io_timeout_s = s;
    } else if (arg == "--retries") {
      const char* v = next();
      if (v == nullptr) return usage();
      const auto n = util::parse_int(v, 0, 100);
      if (!n.has_value()) {
        std::fprintf(stderr, "error: --retries expects an integer in 0..100, got '%s'\n", v);
        return 2;
      }
      copts.connect_attempts = 1 + static_cast<int>(*n);
    } else if (arg == "--method") {
      const char* v = next();
      if (v == nullptr) return usage();
      method = v;
    } else if (arg == "--engine") {
      const char* v = next();
      if (v == nullptr) return usage();
      if (!sat::engine_from_name(v).has_value()) {
        std::fprintf(stderr, "error: unknown --engine: '%s' (expected dpll|cdcl)\n", v);
        return 2;
      }
      engine = v;
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return usage();
      const auto n = util::parse_int(v, 1, 1 << 16);
      if (!n.has_value()) {
        std::fprintf(stderr, "error: --threads expects a positive integer, got '%s'\n", v);
        return 2;
      }
      threads = static_cast<unsigned>(*n);
    } else if (arg == "--deadline") {
      const char* v = next();
      if (v == nullptr) return usage();
      char* end = nullptr;
      deadline_s = std::strtod(v, &end);
      if (end == v || *end != '\0' || deadline_s < 0) {
        std::fprintf(stderr, "error: --deadline expects seconds, got '%s'\n", v);
        return 2;
      }
    } else if (arg == "--out-pla") {
      const char* v = next();
      if (v == nullptr) return usage();
      pla_prefix = v;
    } else if (arg == "--out-verilog") {
      const char* v = next();
      if (v == nullptr) return usage();
      verilog_path = v;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown flag: %s\n", arg.c_str());
      return usage();
    } else if (op.empty()) {
      op = arg;
    } else if (op == "synth" && spec_path.empty()) {
      spec_path = arg;
    } else {
      return usage();
    }
  }
  if (target.empty() || op.empty()) return usage();

  try {
    svc::Client client(target, copts);

    if (op == "ping" || op == "stats" || op == "drain") {
      svc::Json req = svc::Json::object();
      req.set("op", op);
      const svc::Json resp = client.request(req);
      std::printf("%s\n", resp.dump().c_str());
      return resp.get_bool("ok", false) ? 0 : 1;
    }
    if (op != "synth") {
      std::fprintf(stderr, "error: unknown op: %s\n", op.c_str());
      return usage();
    }
    if (spec_path.empty()) {
      std::fprintf(stderr, "error: synth requires a FILE.g argument\n");
      return usage();
    }

    const std::string g_text = read_file(spec_path);
    // Parse locally too: the header line reports sizes, and a malformed
    // spec is diagnosed with the same message a local run would print.
    const stg::Stg spec = stg::parse_g(g_text);
    if (!quiet) {
      std::printf("%s: %zu signals, %zu transitions, method=%s\n", spec.name().c_str(),
                  spec.num_signals(), spec.net().num_transitions(), method.c_str());
    }

    const svc::Json resp = client.synth(g_text, method, threads, deadline_s, engine);
    if (!resp.get_bool("ok", false)) {
      std::fprintf(stderr, "error: daemon: [%s] %s\n", resp.get_string("kind", "?").c_str(),
                   resp.get_string("error", "unknown error").c_str());
      return 1;
    }
    const svc::Json* artifact_json = resp.find("artifact");
    if (artifact_json == nullptr) {
      std::fprintf(stderr, "error: daemon response has no artifact\n");
      return 1;
    }
    const auto artifact = svc::Artifact::deserialize(artifact_json->dump());
    if (!artifact.has_value()) {
      std::fprintf(stderr, "error: cannot decode artifact (version mismatch?)\n");
      return 1;
    }
    const svc::Artifact& a = *artifact;

    if (!a.success) {
      std::fprintf(stderr, "error: synthesis failed: %s\n", a.failure_reason.c_str());
      return 1;
    }
    std::printf("%s: ok, %zu -> %zu states, %zu -> %zu signals, %zu literals, %.3fs, "
                "verification %s\n",
                a.name.c_str(), a.initial_states, a.final_states, a.initial_signals,
                a.final_signals, a.literals, a.seconds, a.verify_ok ? "passed" : "FAILED");
    if (!a.verify_ok) {
      for (const auto& issue : a.verify_issues) std::printf("  issue: %s\n", issue.c_str());
    }

    if (!pla_prefix.empty()) {
      const auto covers = a.rebuild_covers();
      for (const auto& [name, cover] : covers) {
        write_file(pla_prefix + name + ".pla", logic::write_pla(cover, a.signal_names));
      }
    }
    if (!verilog_path.empty()) {
      write_file(verilog_path, a.verilog);
    }
    return a.verify_ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

// mps_frontdoor: the fleet's load-balancing front door — net::FrontDoor
// behind a CLI.
//
//   mps_frontdoor --listen HOST:PORT|PATH --worker HOST:PORT|PATH
//                 [--worker ...] [--backlog N] [--max-request-bytes B]
//                 [--max-attempts N] [--worker-timeout-s S]
//
// Clients speak the exact mps_serve protocol to the front door; synth
// requests are routed to workers by digest shard (owner first, least-loaded
// fallback, bounded-backoff retry on worker death) and responses are
// relayed byte-identically.  `--listen host:0` binds a kernel-assigned port
// and prints it, so parallel test harnesses never race on port numbers.
//
// Shutdown: SIGTERM/SIGINT or {"op":"drain"} — stop accepting, answer
// everything already received, exit 0.  Workers are left running.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "mps.hpp"

namespace {

using namespace mps;

int usage() {
  std::fprintf(stderr,
               "usage: mps_frontdoor --listen HOST:PORT|PATH --worker HOST:PORT|PATH\n"
               "                     [--worker ...] [--backlog N] [--max-request-bytes B]\n"
               "                     [--max-attempts N] [--worker-timeout-s S]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  net::FrontDoorOptions opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--listen") {
      const char* v = next();
      if (v == nullptr) return usage();
      opts.listen = v;
    } else if (arg == "--worker") {
      const char* v = next();
      if (v == nullptr) return usage();
      opts.workers.emplace_back(v);
    } else if (arg == "--backlog") {
      const char* v = next();
      if (v == nullptr) return usage();
      const auto n = util::parse_int(v, 1, 1 << 16);
      if (!n.has_value()) {
        std::fprintf(stderr, "error: --backlog expects an integer in 1..65536, got '%s'\n", v);
        return 2;
      }
      opts.backlog = static_cast<int>(*n);
    } else if (arg == "--max-request-bytes") {
      const char* v = next();
      if (v == nullptr) return usage();
      const auto n = util::parse_int(v, 1, 1ll << 32);
      if (!n.has_value()) {
        std::fprintf(stderr, "error: --max-request-bytes expects a positive integer, got '%s'\n",
                     v);
        return 2;
      }
      opts.max_line_bytes = static_cast<std::size_t>(*n);
    } else if (arg == "--max-attempts") {
      const char* v = next();
      if (v == nullptr) return usage();
      const auto n = util::parse_int(v, 1, 64);
      if (!n.has_value()) {
        std::fprintf(stderr, "error: --max-attempts expects an integer in 1..64, got '%s'\n", v);
        return 2;
      }
      opts.max_attempts = static_cast<int>(*n);
    } else if (arg == "--worker-timeout-s") {
      const char* v = next();
      if (v == nullptr) return usage();
      char* end = nullptr;
      const double s = std::strtod(v, &end);
      if (end == v || *end != '\0' || s <= 0) {
        std::fprintf(stderr, "error: --worker-timeout-s expects seconds, got '%s'\n", v);
        return 2;
      }
      opts.worker_io_timeout_s = s;
    } else {
      std::fprintf(stderr, "error: unknown flag: %s\n", arg.c_str());
      return usage();
    }
  }
  if (opts.listen.empty()) {
    std::fprintf(stderr, "error: --listen is required\n");
    return usage();
  }
  if (opts.workers.empty()) {
    std::fprintf(stderr, "error: at least one --worker is required\n");
    return usage();
  }

  try {
    net::FrontDoor door(opts);
    door.start();
    door.install_signal_handlers();
    std::printf("mps_frontdoor: listening on %s (%zu workers, max-attempts=%d)\n",
                door.bound_endpoint().str().c_str(), opts.workers.size(), opts.max_attempts);
    std::fflush(stdout);  // let wrappers parse the bound endpoint
    door.run();
    std::printf("mps_frontdoor: drained, exiting\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
